# eotora — build, test, and reproduction targets.

GO ?= go
# BENCHTIME bounds each benchmark in `make bench` (go test -benchtime);
# CI shrinks it to keep the non-gating bench job fast.
BENCHTIME ?= 1s
REV := $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)

.PHONY: all verify build lint vet test race cover fuzz soak bench bench-json bench-quick examples paper smoke-serve serve-demo compare-demo clean

all: build vet test

# verify is the pre-merge flow: correctness, the race detector over the
# mutable Engine/P2A reuse paths, and a compile-and-run pass over every
# benchmark.
verify: build lint test race bench-quick

build:
	$(GO) build ./...

# lint gates on formatting, static analysis, godoc coverage of the core
# packages (cmd/doccheck), and the repository's relative markdown links
# (cmd/linkcheck). staticcheck is optional locally (skipped with a notice
# when not installed); CI installs it.
lint: vet
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/doccheck ./internal/core ./internal/game ./internal/obs ./internal/par ./internal/faults ./internal/trace ./internal/solver ./internal/serve ./internal/policy
	$(GO) run ./cmd/linkcheck .
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

# Short fuzz pass over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzLoadColumnCSV -fuzztime=15s ./internal/trace/
	$(GO) test -fuzz=FuzzLoadPriceCSV -fuzztime=15s ./internal/trace/
	$(GO) test -fuzz=FuzzReadJSON -fuzztime=15s ./internal/topology/
	$(GO) test -fuzz=FuzzReadCheckpoint -fuzztime=15s ./internal/core/
	$(GO) test -fuzz=FuzzParallelEquivalence -fuzztime=15s ./internal/core/
	$(GO) test -fuzz=FuzzChurnEquivalence -fuzztime=15s ./internal/core/
	$(GO) test -fuzz=FuzzEngineEquivalence -fuzztime=15s ./internal/game/
	$(GO) test -fuzz=FuzzIncrementalBestResponseEquivalence -fuzztime=15s ./internal/game/
	$(GO) test -fuzz=FuzzShardedEquivalence -fuzztime=15s ./internal/game/
	$(GO) test -fuzz=FuzzSanitizeState -fuzztime=15s ./internal/trace/
	$(GO) test -fuzz=FuzzPolicySeamEquivalence -fuzztime=15s ./internal/policy/

# Long fault-injection soak: 10k slots of corrupted traces, outages, and
# stalls under the race detector (the nightly configuration; see
# internal/sim/soak_test.go). The second leg repeats the run with
# population churn superimposed on the fault stream.
soak:
	FAULT_SOAK_SLOTS=10000 $(GO) test -race -run TestFaultSoak -count=1 -v ./internal/sim/
	FAULT_SOAK_SLOTS=10000 FAULT_SOAK_CHURN=1 $(GO) test -race -run TestFaultSoak -count=1 -v ./internal/sim/

# Full benchmark sweep with allocation stats (minutes). The raw benchstat
# stream lands in bench.out and a machine-readable BENCH_<rev>.json next
# to it (see cmd/benchjson).
bench:
	$(GO) test -run=^$$ -bench=. -benchmem -benchtime=$(BENCHTIME) ./internal/... | tee bench.out
	$(GO) run ./cmd/benchjson -rev $(REV) -out BENCH_$(REV).json < bench.out
	@echo "wrote BENCH_$(REV).json"

# bench-json is the CI entry point: same as bench, named for intent.
bench-json: bench

# One-iteration pass over the benchmarks: compiles and exercises every
# benchmark body without timing them (part of verify).
bench-quick:
	$(GO) test -run=^$$ -bench=. -benchmem -benchtime=1x ./internal/...

# End-to-end serve-mode smoke: boot cmd/eotorad, stream 200 slots of
# state diffs through cmd/loadgen in lockstep, scrape /metrics, and gate
# on zero shed + zero degraded slots (the CI serve-smoke job). See
# OPERATIONS.md §11.
smoke-serve:
	sh scripts/serve_smoke.sh

# The EXPERIMENTS.md serve-mode appendix run: a nominal-rate leg writing
# the per-slot stream CSV (serve_stream.csv) plus a deterministic
# overload leg demonstrating shed accounting and backpressure
# escalation.
serve-demo:
	sh scripts/serve_demo.sh

# The EXPERIMENTS.md policy appendix run: the six-policy comparison
# figure (every baseline + BDMA on one trace) and the V/λ auto-tuner
# trajectory, at quick scale into results/compare.
compare-demo:
	$(GO) run ./cmd/experiments -fig compare -out results/compare
	$(GO) run ./cmd/experiments -fig tuner -out results/compare

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vrgaming
	$(GO) run ./examples/iotfleet
	$(GO) run ./examples/greenbudget
	$(GO) run ./examples/multiroom
	$(GO) run ./examples/realprices

# Full paper-scale evaluation into results/ (tens of minutes).
paper:
	$(GO) run ./cmd/experiments -fig all -scale paper -out results/paper

clean:
	rm -rf results/paper results/compare
