# eotora — build, test, and reproduction targets.

GO ?= go

.PHONY: all build vet test race cover fuzz bench bench-quick examples paper clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/ ./internal/game/

cover:
	$(GO) test -cover ./internal/...

# Short fuzz pass over every fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzLoadColumnCSV -fuzztime=15s ./internal/trace/
	$(GO) test -fuzz=FuzzLoadPriceCSV -fuzztime=15s ./internal/trace/
	$(GO) test -fuzz=FuzzReadJSON -fuzztime=15s ./internal/topology/
	$(GO) test -fuzz=FuzzReadCheckpoint -fuzztime=15s ./internal/core/

# Reduced-scale benches for every paper figure + ablations (minutes).
bench:
	$(GO) test -bench=. -benchmem -run=NONE ./...

bench-quick:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/vrgaming
	$(GO) run ./examples/iotfleet
	$(GO) run ./examples/greenbudget
	$(GO) run ./examples/multiroom
	$(GO) run ./examples/realprices

# Full paper-scale evaluation into results/ (tens of minutes).
paper:
	$(GO) run ./cmd/experiments -fig all -scale paper -out results/paper

clean:
	rm -rf results/paper
