// Benchmarks regenerating every figure of the paper's evaluation
// (Section VI, Figures 2–9) plus the DESIGN.md §5 ablations. Each bench
// runs the corresponding internal/experiments harness at reduced scale so
// `go test -bench=. -benchmem` completes on a laptop; paper-scale sweeps
// are available through `go run ./cmd/experiments -scale paper`.
//
// Custom metrics reported per bench surface the figure's headline numbers
// (objective ratios, backlog slopes, budget slack) so a bench run doubles
// as a quick shape check against EXPERIMENTS.md.
package eotora_test

import (
	"testing"

	"eotora/internal/experiments"
	"eotora/internal/stats"
)

func BenchmarkFig2Traces(b *testing.B) {
	cfg := experiments.DefaultFig2Config()
	cfg.Days = 7
	var ratio float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = fig.Series[0].Y[20] // touch the data
		_ = ratio
	}
}

func BenchmarkFig3EnergyFit(b *testing.B) {
	cfg := experiments.DefaultFig3Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4P2AQuality(b *testing.B) {
	cfg := experiments.QuickP2ASweepConfig()
	var ratio float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.P2ASweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		ratio = last.Objective["CGBA"] / last.Objective["OPT"]
	}
	b.ReportMetric(ratio, "cgba/opt-ratio")
}

func BenchmarkFig5P2ATime(b *testing.B) {
	cfg := experiments.QuickP2ASweepConfig()
	var speedup float64
	for i := 0; i < b.N; i++ {
		points, err := experiments.P2ASweep(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		if cgba := last.Elapsed["CGBA"]; cgba > 0 {
			speedup = float64(last.Elapsed["OPT"]) / float64(cgba)
		}
	}
	b.ReportMetric(speedup, "opt/cgba-time")
}

func BenchmarkFig6Lambda(b *testing.B) {
	cfg := experiments.QuickFig6Config()
	var iterDrop float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		iters := fig.Series[1].Y
		if iters[len(iters)-1] > 0 {
			iterDrop = iters[0] / iters[len(iters)-1]
		}
	}
	b.ReportMetric(iterDrop, "iters(λ=0)/iters(λmax)")
}

func BenchmarkFig7Backlog(b *testing.B) {
	cfg := experiments.QuickFig7Config()
	var converged float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		q := fig.Series[0].Y
		converged = stats.Mean(q[len(q)/2:])
	}
	b.ReportMetric(converged, "converged-backlog")
}

func BenchmarkFig8VSweep(b *testing.B) {
	cfg := experiments.QuickFig8Config()
	var slope float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if fit, err := stats.FitLine(fig.Series[0].X, fig.Series[0].Y); err == nil {
			slope = fit.Slope
		}
	}
	b.ReportMetric(slope, "backlog-vs-V-slope")
}

func BenchmarkFig9Budget(b *testing.B) {
	cfg := experiments.QuickFig9Config()
	var slack float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var budgets, realized []float64
		for _, s := range fig.Series {
			switch s.Name {
			case "budget line":
				budgets = s.Y
			case "BDMA-DPP realized cost":
				realized = s.Y
			}
		}
		slack = 0
		for p := range budgets {
			slack += (budgets[p] - realized[p]) / budgets[p]
		}
		slack /= float64(len(budgets))
	}
	b.ReportMetric(slack, "avg-budget-slack")
}

func BenchmarkAblationBDMAZ(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBDMAZ(cfg, []int{1, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationP2BSolver(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationP2BSolver(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIID(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationIID(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFronthaulJitter(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFronthaulJitter(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPivot(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPivot(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationComputeBound(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	cfg.Slots = 48
	cfg.Warmup = 12
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationComputeBound(cfg, []float64{10, 500}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSeeds(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	cfg.Slots = 36
	cfg.Warmup = 8
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationSeeds(cfg, []int64{1, 2, 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFlashCrowd(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	cfg.Slots = 48
	cfg.Warmup = 8
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFlashCrowd(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPerRoomBudgets(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	cfg.Slots = 48
	cfg.Warmup = 8
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPerRoomBudgets(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStaleObservation(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	cfg.Slots = 48
	cfg.Warmup = 8
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationStaleObservation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationConvergence(b *testing.B) {
	cfg := experiments.QuickAblationConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationConvergence(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
