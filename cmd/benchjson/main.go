// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document, so benchmark runs can be archived per
// revision (BENCH_<rev>.json) and diffed across PRs. The input is the
// standard benchmark format benchstat consumes; context lines (goos,
// goarch, cpu, pkg) are folded into the header, everything else passes
// through untouched in each entry's Raw field.
//
// It also diffs two archived reports:
//
//	benchjson -compare BENCH_old.json,BENCH_new.json -threshold 1.25
//
// prints a per-benchmark ratio table (new/old ns/op for benchmarks present
// in both) and exits non-zero when any common benchmark regressed past the
// threshold. Machines differ across CI runs, so the compare is advisory —
// CI's informational bench job runs it without gating the build.
//
// The gating mode layers a hard budget on top of the same compare:
//
//	benchjson -compare old.json,new.json -max-regress 0.15 -gate 'ControllerStep|CGBA'
//
// fails (exit 2) when any common benchmark matching -gate regressed more
// than 15% in ns/op, or allocated more per op at all (allocs/op is
// machine-independent, so its budget is zero). CI's bench-gate job runs
// this against the newest committed BENCH_<rev>.json baseline.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./internal/... | benchjson -rev abc1234 -out BENCH_abc1234.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one result line.
type Benchmark struct {
	// Name is the full benchmark path without the -procs suffix, e.g.
	// "BenchmarkControllerStep/devices=300".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the run (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported timing.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the ns/op column.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns; absent
	// columns stay zero with Benchmem false.
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Benchmem records whether allocation columns were present.
	Benchmem bool `json:"benchmem"`
	// Raw is the unmodified input line, for benchstat replay.
	Raw string `json:"raw"`
}

// Report is the document benchjson emits.
type Report struct {
	// Rev identifies the source revision (-rev flag).
	Rev string `json:"rev"`
	// Go, GOOS, GOARCH, and CPU describe the machine that ran the
	// benchmarks; the first three fall back to the converting toolchain
	// when the input lacks context lines.
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu,omitempty"`
	// Packages lists the pkg: lines seen, in order.
	Packages []string `json:"packages,omitempty"`
	// Benchmarks holds every parsed result line, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rev := flag.String("rev", "unknown", "revision identifier recorded in the report")
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.String("compare", "", "compare two archived reports: old.json,new.json (skips stdin conversion)")
	threshold := flag.Float64("threshold", 1.25, "with -compare, exit non-zero when any common benchmark's new/old ns/op ratio exceeds this")
	maxRegress := flag.Float64("max-regress", 0, "with -compare, gate hard: fail when a -gate benchmark regressed more than this fraction in ns/op (e.g. 0.15 = 15%) or added any allocs/op; 0 keeps the advisory -threshold mode")
	gate := flag.String("gate", "ControllerStep|CGBA", "with -max-regress, regexp selecting the gated benchmark names")
	flag.Parse()

	if *compare != "" {
		gateRE, err := regexp.Compile(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -gate:", err)
			os.Exit(1)
		}
		regressed, err := runCompare(os.Stdout, *compare, *threshold, *maxRegress, gateRE)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(2)
		}
		return
	}

	report, err := parse(os.Stdin, *rev)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader, rev string) (*Report, error) {
	report := &Report{
		Rev:    rev,
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			report.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			report.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			report.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			report.Packages = append(report.Packages, strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(report.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on input")
	}
	return report, nil
}

// runCompare loads "old.json,new.json", prints a ratio table of the
// benchmarks common to both, and reports whether anything regressed.
// With maxRegress == 0 it is the advisory mode: any common benchmark
// whose ns/op ratio exceeds threshold regresses the result. With
// maxRegress > 0 it is the gating mode: only benchmarks matching gateRE
// are budgeted — more than maxRegress fractional ns/op growth, or any
// allocs/op growth (allocation counts are machine-independent), fails.
// Benchmarks present on only one side are listed but never regress the
// result.
func runCompare(w io.Writer, spec string, threshold, maxRegress float64, gateRE *regexp.Regexp) (regressed bool, err error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return false, fmt.Errorf("-compare wants old.json,new.json, got %q", spec)
	}
	oldRep, err := loadReport(strings.TrimSpace(parts[0]))
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(strings.TrimSpace(parts[1]))
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]Benchmark, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[fmt.Sprintf("%s-%d", b.Name, b.Procs)] = b
	}
	if maxRegress > 0 {
		fmt.Fprintf(w, "comparing %s (%s) -> %s (%s), gating %q at +%.0f%% ns/op, +0 allocs/op\n",
			parts[0], oldRep.Rev, parts[1], newRep.Rev, gateRE, 100*maxRegress)
	} else {
		fmt.Fprintf(w, "comparing %s (%s) -> %s (%s), threshold %.2fx\n",
			parts[0], oldRep.Rev, parts[1], newRep.Rev, threshold)
	}
	common := 0
	for _, b := range newRep.Benchmarks {
		key := fmt.Sprintf("%s-%d", b.Name, b.Procs)
		prev, ok := oldBy[key]
		if !ok {
			fmt.Fprintf(w, "  %-60s new benchmark (%.0f ns/op)\n", key, b.NsPerOp)
			continue
		}
		common++
		delete(oldBy, key)
		ratio := b.NsPerOp / prev.NsPerOp
		mark := ""
		switch {
		case maxRegress > 0:
			if !gateRE.MatchString(b.Name) {
				mark = "  (ungated)"
				break
			}
			if ratio > 1+maxRegress {
				mark = "  REGRESSED (ns/op)"
				regressed = true
			}
			if prev.Benchmem && b.Benchmem && b.AllocsPerOp > prev.AllocsPerOp {
				mark += fmt.Sprintf("  REGRESSED (allocs/op %.0f -> %.0f)", prev.AllocsPerOp, b.AllocsPerOp)
				regressed = true
			}
		case ratio > threshold:
			mark = "  REGRESSED"
			regressed = true
		}
		fmt.Fprintf(w, "  %-60s %.0f -> %.0f ns/op (%.2fx)%s\n", key, prev.NsPerOp, b.NsPerOp, ratio, mark)
	}
	for key := range oldBy {
		fmt.Fprintf(w, "  %-60s removed\n", key)
	}
	if common == 0 {
		fmt.Fprintln(w, "  no common benchmarks")
	}
	return regressed, nil
}

// loadReport reads one archived benchjson document.
func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	return &rep, nil
}

// parseBenchLine decodes one "BenchmarkName-P N v ns/op [v B/op v
// allocs/op] ..." line. Unknown unit columns are ignored rather than
// rejected, so custom b.ReportMetric units pass through via Raw.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Procs: 1, Raw: line}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = n
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp, sawNs = v, true
		case "B/op":
			b.BytesPerOp, b.Benchmem = v, true
		case "allocs/op":
			b.AllocsPerOp, b.Benchmem = v, true
		}
	}
	return b, sawNs
}
