package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: eotora/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkControllerStep/devices=25-8         	    1024	   1170531 ns/op	     120 B/op	       3 allocs/op
BenchmarkControllerStep/devices=300-8        	      24	  48012345 ns/op	     512 B/op	       9 allocs/op
BenchmarkSolveP2B-8   	  250000	      4569 ns/op
PASS
ok  	eotora/internal/core	12.3s
`

func TestParse(t *testing.T) {
	r, err := parse(strings.NewReader(sample), "abc1234")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rev != "abc1234" || r.GOOS != "linux" || r.GOARCH != "amd64" {
		t.Errorf("header = %+v", r)
	}
	if r.CPU == "" || len(r.Packages) != 1 {
		t.Errorf("context lines lost: %+v", r)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(r.Benchmarks))
	}
	b := r.Benchmarks[1]
	if b.Name != "BenchmarkControllerStep/devices=300" || b.Procs != 8 {
		t.Errorf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 24 || b.NsPerOp != 48012345 || b.AllocsPerOp != 9 || !b.Benchmem {
		t.Errorf("columns = %+v", b)
	}
	if p2b := r.Benchmarks[2]; p2b.Benchmem || p2b.NsPerOp != 4569 {
		t.Errorf("no-benchmem line = %+v", p2b)
	}
	if !strings.Contains(r.Benchmarks[0].Raw, "1170531 ns/op") {
		t.Errorf("raw line lost: %q", r.Benchmarks[0].Raw)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n"), "x"); err == nil {
		t.Error("benchmark-free input accepted")
	}
}

// writeReport marshals a Report into dir and returns its path.
func writeReport(t *testing.T, dir, name string, rep Report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareMaxRegress covers the gating mode's budget arithmetic: the
// ns/op fraction, the zero allocs/op budget, and the gate filter.
func TestCompareMaxRegress(t *testing.T) {
	base := Report{Rev: "old", Benchmarks: []Benchmark{
		{Name: "BenchmarkControllerStep/devices=300", Procs: 8, NsPerOp: 1000, AllocsPerOp: 5, Benchmem: true},
		{Name: "BenchmarkCGBA", Procs: 8, NsPerOp: 500, AllocsPerOp: 2, Benchmem: true},
		{Name: "BenchmarkSolveP2B", Procs: 8, NsPerOp: 100},
	}}
	gate := regexp.MustCompile("ControllerStep|CGBA")
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", base)

	cases := []struct {
		name      string
		mutate    func(*Benchmark)
		regressed bool
	}{
		{"within budget", func(b *Benchmark) { b.NsPerOp *= 1.10 }, false},
		{"ns/op over budget", func(b *Benchmark) { b.NsPerOp *= 1.20 }, true},
		{"any alloc growth", func(b *Benchmark) { b.AllocsPerOp++ }, true},
		{"improvement", func(b *Benchmark) { b.NsPerOp *= 0.5 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := base
			rep.Rev = "new"
			rep.Benchmarks = append([]Benchmark(nil), base.Benchmarks...)
			tc.mutate(&rep.Benchmarks[0])
			newPath := writeReport(t, dir, "new.json", rep)
			var out strings.Builder
			got, err := runCompare(&out, oldPath+","+newPath, 1.25, 0.15, gate)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.regressed {
				t.Errorf("regressed = %v, want %v\n%s", got, tc.regressed, out.String())
			}
		})
	}

	// An ungated benchmark may regress arbitrarily without failing the
	// gate; the advisory mode (maxRegress 0) still catches it.
	rep := base
	rep.Rev = "new"
	rep.Benchmarks = append([]Benchmark(nil), base.Benchmarks...)
	rep.Benchmarks[2].NsPerOp *= 10
	newPath := writeReport(t, dir, "ungated.json", rep)
	var out strings.Builder
	if got, err := runCompare(&out, oldPath+","+newPath, 1.25, 0.15, gate); err != nil || got {
		t.Errorf("ungated regression gated: regressed=%v err=%v\n%s", got, err, out.String())
	}
	if got, err := runCompare(&out, oldPath+","+newPath, 1.25, 0, gate); err != nil || !got {
		t.Errorf("advisory mode missed a 10x regression: regressed=%v err=%v", got, err)
	}
}

func TestParseBenchLineMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",                     // too few fields
		"BenchmarkX-8 notanumber 12 ns/op", // bad iteration count
		"BenchmarkX-8 10 12 bogounits",     // no ns/op column
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("malformed line accepted: %q", line)
		}
	}
	// A name without a -procs suffix (GOMAXPROCS=1 runs) defaults to 1.
	b, ok := parseBenchLine("BenchmarkX/mode=fast 10 12 ns/op")
	if !ok || b.Procs != 1 || b.Name != "BenchmarkX/mode=fast" {
		t.Errorf("suffix handling = %+v ok=%v", b, ok)
	}
}
