package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: eotora/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkControllerStep/devices=25-8         	    1024	   1170531 ns/op	     120 B/op	       3 allocs/op
BenchmarkControllerStep/devices=300-8        	      24	  48012345 ns/op	     512 B/op	       9 allocs/op
BenchmarkSolveP2B-8   	  250000	      4569 ns/op
PASS
ok  	eotora/internal/core	12.3s
`

func TestParse(t *testing.T) {
	r, err := parse(strings.NewReader(sample), "abc1234")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rev != "abc1234" || r.GOOS != "linux" || r.GOARCH != "amd64" {
		t.Errorf("header = %+v", r)
	}
	if r.CPU == "" || len(r.Packages) != 1 {
		t.Errorf("context lines lost: %+v", r)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(r.Benchmarks))
	}
	b := r.Benchmarks[1]
	if b.Name != "BenchmarkControllerStep/devices=300" || b.Procs != 8 {
		t.Errorf("name/procs = %q/%d", b.Name, b.Procs)
	}
	if b.Iterations != 24 || b.NsPerOp != 48012345 || b.AllocsPerOp != 9 || !b.Benchmem {
		t.Errorf("columns = %+v", b)
	}
	if p2b := r.Benchmarks[2]; p2b.Benchmem || p2b.NsPerOp != 4569 {
		t.Errorf("no-benchmem line = %+v", p2b)
	}
	if !strings.Contains(r.Benchmarks[0].Raw, "1170531 ns/op") {
		t.Errorf("raw line lost: %q", r.Benchmarks[0].Raw)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\n"), "x"); err == nil {
		t.Error("benchmark-free input accepted")
	}
}

func TestParseBenchLineMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",                     // too few fields
		"BenchmarkX-8 notanumber 12 ns/op", // bad iteration count
		"BenchmarkX-8 10 12 bogounits",     // no ns/op column
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("malformed line accepted: %q", line)
		}
	}
	// A name without a -procs suffix (GOMAXPROCS=1 runs) defaults to 1.
	b, ok := parseBenchLine("BenchmarkX/mode=fast 10 12 ns/op")
	if !ok || b.Procs != 1 || b.Name != "BenchmarkX/mode=fast" {
		t.Errorf("suffix handling = %+v ok=%v", b, ok)
	}
}
