// Command doccheck enforces godoc coverage: every exported identifier in
// the packages given on the command line — functions, methods on exported
// types, types, grouped consts/vars, struct fields, and interface
// methods — must carry a doc comment. It is part of `make lint`, so an
// undocumented new exported identifier fails CI.
//
// Usage:
//
//	doccheck ./internal/core ./internal/game
//
// Grouped const/var declarations are satisfied by a doc comment on the
// group; struct fields and interface methods accept either a doc comment
// above or a trailing line comment. Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [<package-dir>...]")
		os.Exit(2)
	}
	var missing []string
	for _, dir := range os.Args[1:] {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Println(m)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without a doc comment\n", len(missing))
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and returns a
// "file:line: identifier" entry for every undocumented exported
// identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s is exported but undocumented",
			filepath.ToSlash(p.Filename), p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return missing, nil
}

// checkFunc flags undocumented exported functions and undocumented
// exported methods on exported receivers.
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	name := d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv == "" || !ast.IsExported(recv) {
			return // method on an unexported type: not exported API
		}
		name = recv + "." + name
	}
	report(d.Name.Pos(), "func "+name)
}

// checkGen flags undocumented exported types, consts, and vars, then
// descends into exported struct fields and interface methods. A doc
// comment on the declaration group covers its specs.
func checkGen(d *ast.GenDecl, report func(token.Pos, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			documented := groupDoc || s.Doc != nil || s.Comment != nil
			if s.Name.IsExported() && !documented {
				report(s.Name.Pos(), "type "+s.Name.Name)
			}
			if !s.Name.IsExported() {
				continue
			}
			switch t := s.Type.(type) {
			case *ast.StructType:
				checkFields(s.Name.Name, t.Fields, "field", report)
			case *ast.InterfaceType:
				checkFields(s.Name.Name, t.Methods, "method", report)
			}
		case *ast.ValueSpec:
			documented := groupDoc || s.Doc != nil || s.Comment != nil
			if documented {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), kindWord(d.Tok)+" "+n.Name)
				}
			}
		}
	}
}

// checkFields flags undocumented exported struct fields or interface
// methods of an exported type. Embedded fields (no name of their own) are
// skipped: their documentation lives on the embedded type.
func checkFields(owner string, fields *ast.FieldList, what string, report func(token.Pos, string)) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, n := range f.Names {
			if n.IsExported() {
				report(n.Pos(), fmt.Sprintf("%s %s.%s", what, owner, n.Name))
			}
		}
	}
}

// receiverName extracts the receiver's type name from its AST expression.
func receiverName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverName(t.X)
	case *ast.IndexExpr: // generic receiver
		return receiverName(t.X)
	case *ast.IndexListExpr:
		return receiverName(t.X)
	}
	return ""
}

// kindWord renders the declaration keyword for a report line.
func kindWord(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
