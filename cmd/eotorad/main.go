// Command eotorad is the EOTORA streaming controller daemon: the online
// serve mode of the paper's per-slot Lyapunov controller. It ingests
// state-update events over HTTP (device churn, channel reports, demand
// moves, price ticks, server lifecycle), batches them into slot ticks on
// a configurable cadence, drives the incremental slot solve — churn-
// mutation path, shortlists, sharding, and the degradation ladder all
// apply — and publishes per-slot decisions to poll/long-poll consumers.
// See OPERATIONS.md §11 for the runbook and DESIGN.md §14 for the
// architecture.
//
// Usage:
//
//	eotorad -listen :8080 -devices 150 -tick 100ms
//	eotorad -restore snap.json -snapshot snap.json -snapshot-every 30s
//	eotorad -tick 0            # manual mode: slots advance via POST /v1/tick
//	eotorad -policy greedy-energy -tick 100ms   # serve a comparison baseline
//
// Drive it with cmd/loadgen, or directly:
//
//	curl -s -X POST localhost:8080/v1/events -d '[{"kind":"price","value":83.5}]'
//	curl -s 'localhost:8080/v1/decisions?since=12&wait=5s'
//	curl -s localhost:8080/v1/status
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"eotora/internal/core"
	"eotora/internal/experiments"
	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/policy"
	"eotora/internal/serve"
	"eotora/internal/topology"
	"eotora/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eotorad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eotorad", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", ":8080", "HTTP listen address for the API, /debug/vars, and /debug/pprof")
		devices    = fs.Int("devices", 100, "number of mobile devices I in the fixed universe")
		topoName   = fs.String("topology", "default", "topology preset: default, urban, rural, campus, or metro")
		budgetFrac = fs.Float64("budget-frac", 0.5, "budget position in [all-F^L, all-F^U] cost range")
		v          = fs.Float64("v", 100, "drift-plus-penalty weight V")
		z          = fs.Int("z", 5, "BDMA alternation rounds")
		lambda     = fs.Float64("lambda", 0, "CGBA λ in [0, 0.125)")
		seed       = fs.Int64("seed", 1, "random seed shared with the load source")
		polName    = fs.String("policy", policy.BDMA, "decision policy: "+strings.Join(policy.Names(), ", "))
		churn      = fs.Float64("churn", 0, "churn intensity of the expected stream (must match the load source so the initial population agrees)")
		tick       = fs.Duration("tick", 100*time.Millisecond, "slot cadence (0 = manual: slots advance only via POST /v1/tick)")
		queueCap   = fs.Int("queue-cap", 65536, "ingest queue bound in events; overflow is shed and counted")
		maxBatch   = fs.Int("max-batch", 0, "max events applied per tick, rest carried (0 = whole queue)")
		degradeAt  = fs.Float64("degrade-at", 0.75, "queue-occupancy fraction that escalates to the tighter slot budget (0 = never)")
		escDL      = fs.Duration("escalate-deadline", 0, "wall-clock slot budget while escalated (0 = tick/2 when escalation is armed)")
		escChecks  = fs.Int("escalate-checks", 0, "counted slot budget while escalated (deterministic alternative)")
		slotDL     = fs.Duration("slot-deadline", 0, "steady-state wall-clock slot budget (0 = none; see OPERATIONS.md)")
		slotChecks = fs.Int("slot-checks", 0, "steady-state counted slot budget (0 = none)")
		slotWork   = fs.Int("slot-workers", 0, "intra-slot solver workers (0 = all cores, 1 = serial)")
		shortlist  = fs.Int("shortlist", 0, "CGBA shortlist width k (0 = library default, -1 = exact)")
		shards     = fs.Int("shards", 0, "shard the slot solve (0/1 = off, -1 = one per cluster, ≥2 = at most that many)")
		snapshotTo = fs.String("snapshot", "", "snapshot file written every -snapshot-every and on shutdown")
		snapEvery  = fs.Duration("snapshot-every", 30*time.Second, "periodic snapshot cadence (with -snapshot)")
		restore    = fs.String("restore", "", "snapshot file to restore before serving (resume without warmup)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := topology.SpecByName(*topoName, *devices)
	if err != nil {
		return err
	}
	sc, err := experiments.NewScenario(experiments.ScenarioOptions{
		Devices:        *devices,
		Spec:           &spec,
		BudgetFraction: *budgetFrac,
	}, *seed)
	if err != nil {
		return err
	}
	gen, err := sc.Generator(trace.DefaultGeneratorConfig())
	if err != nil {
		return err
	}
	// The initial state β_1 is derived from the shared seed, exactly as
	// the load source derives it — with churn armed, through an identical
	// churn schedule so the initial population agrees too.
	var src trace.Source = gen
	if *churn > 0 {
		src, err = trace.NewChurnSchedule(scaledChurn(*churn, *seed), sc.Net, gen)
		if err != nil {
			return err
		}
	}
	initial := src.Next()

	var pol policy.Policy
	if *polName == policy.BDMA {
		ctrl, err := core.NewBDMAController(sc.Sys, *v, *z, *lambda, *seed)
		if err != nil {
			return err
		}
		if *shortlist != 0 {
			if err := ctrl.SetShortlist(*shortlist); err != nil {
				return err
			}
		}
		if *shards != 0 {
			if err := ctrl.SetShards(*shards); err != nil {
				return err
			}
		}
		pol = ctrl
	} else {
		// The controller-only knobs stay with -policy bdma: the tuner owns
		// its own shortlist schedule, and the baselines run no solver.
		if *shortlist != 0 || *shards != 0 {
			return fmt.Errorf("-shortlist/-shards apply only to -policy bdma (got -policy %s)", *polName)
		}
		pol, err = policy.New(*polName, sc.Sys, policy.Config{
			V: *v, Rounds: *z, Lambda: *lambda, Seed: *seed,
		})
		if err != nil {
			return err
		}
	}
	if *slotWork != 1 {
		if ps, ok := pol.(policy.PoolSetter); ok {
			pool := par.New(*slotWork)
			defer pool.Close()
			ps.SetPool(pool)
		}
	}

	_, canDeadline := pol.(policy.DeadlineSetter)
	if *degradeAt > 0 && *escDL == 0 && *escChecks == 0 && *tick > 0 && canDeadline {
		// Escalation armed with no explicit budget: give an escalated
		// slot half the tick so the queue drains within a cadence or two.
		*escDL = *tick / 2
	}
	if *degradeAt > 0 && !canDeadline {
		// Policies without a degradation ladder cannot solve under a
		// tighter budget; backpressure still sheds at the queue bound.
		*degradeAt = 0
	}
	daemon, err := serve.NewDaemon(pol, initial, serve.Config{
		Tick:             *tick,
		QueueCap:         *queueCap,
		MaxBatch:         *maxBatch,
		DegradeAt:        *degradeAt,
		EscalateDeadline: *escDL,
		EscalateChecks:   *escChecks,
		SlotDeadline:     *slotDL,
		SlotChecks:       *slotChecks,
	})
	if err != nil {
		return err
	}
	reg := obs.New()
	daemon.SetObs(reg)
	if err := reg.PublishExpvar("eotora"); err != nil {
		return err
	}

	if *restore != "" {
		f, err := os.Open(*restore)
		if err != nil {
			return err
		}
		snap, err := serve.ReadSnapshot(f)
		closeErr := f.Close()
		if err != nil {
			return fmt.Errorf("reading snapshot %s: %w", *restore, err)
		}
		if closeErr != nil {
			return closeErr
		}
		if err := daemon.Restore(snap); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "eotorad: restored %s at slot %d (backlog %.3f)\n",
			*restore, daemon.Status().Slot, daemon.Status().Backlog)
	}

	mux := http.NewServeMux()
	mux.Handle("/", daemon.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return fmt.Errorf("listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	k, m, n, i := sc.Net.Counts()
	polDesc := "policy " + pol.Name()
	if sn, ok := pol.(policy.SolverNamer); ok {
		polDesc = fmt.Sprintf("policy %s (%s-based DPP)", pol.Name(), sn.SolverName())
	}
	fmt.Fprintf(os.Stderr, "eotorad: %s topology (%d stations, %d rooms, %d servers, %d devices), %s V=%g, seed %d\n",
		*topoName, k, m, n, i, polDesc, *v, *seed)
	if *tick > 0 {
		fmt.Fprintf(os.Stderr, "eotorad: ticking every %v; API on http://%s\n", *tick, ln.Addr())
		go func() {
			_ = daemon.Run(ctx, func(err error) {
				fmt.Fprintln(os.Stderr, "eotorad:", err)
			})
		}()
	} else {
		fmt.Fprintf(os.Stderr, "eotorad: manual mode (POST /v1/tick); API on http://%s\n", ln.Addr())
	}

	if *snapshotTo != "" && *snapEvery > 0 {
		go func() {
			tk := time.NewTicker(*snapEvery)
			defer tk.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tk.C:
					if err := writeSnapshotFile(daemon, *snapshotTo); err != nil {
						fmt.Fprintln(os.Stderr, "eotorad: snapshot:", err)
					}
				}
			}
		}()
	}

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	if *snapshotTo != "" {
		if err := writeSnapshotFile(daemon, *snapshotTo); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		fmt.Fprintf(os.Stderr, "eotorad: snapshot written to %s at slot %d\n", *snapshotTo, daemon.Status().Slot)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}

// writeSnapshotFile writes the snapshot atomically: to a temp file in the
// target directory, then rename, so a crash mid-write never corrupts the
// restore point.
func writeSnapshotFile(d *serve.Daemon, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := d.WriteSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// scaledChurn returns the default churn regime with every event
// probability multiplied by intensity (clamped to 1) — identical to
// cmd/eotorasim and cmd/loadgen so shared-seed populations agree.
func scaledChurn(intensity float64, seed int64) trace.ChurnConfig {
	cfg := trace.DefaultChurnConfig(seed)
	clamp := func(p float64) float64 {
		p *= intensity
		if p > 1 {
			return 1
		}
		return p
	}
	cfg.DeviceJoinProb = clamp(cfg.DeviceJoinProb)
	cfg.DeviceLeaveProb = clamp(cfg.DeviceLeaveProb)
	cfg.HandoverProb = clamp(cfg.HandoverProb)
	cfg.ServerRemoveProb = clamp(cfg.ServerRemoveProb)
	cfg.ServerAddProb = clamp(cfg.ServerAddProb)
	return cfg
}
