// Command eotorasim runs a full online EOTORA simulation: it generates the
// paper's Section VI-A scenario, drives a decision policy slot by slot,
// and prints either a summary or the per-slot metric series as CSV.
//
// Usage:
//
//	eotorasim -devices 100 -slots 240 -v 100 -z 5
//	eotorasim -solver ropt -budget-frac 0.3 -csv > run.csv
//	eotorasim -policy greedy-energy -slots 240
//	eotorasim -policy bdma-tuned -v 100 -lambda 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"eotora/internal/core"
	"eotora/internal/experiments"
	"eotora/internal/faults"
	"eotora/internal/par"
	"eotora/internal/policy"
	"eotora/internal/sim"
	"eotora/internal/topology"
	"eotora/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eotorasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eotorasim", flag.ContinueOnError)
	var (
		devices    = fs.Int("devices", 100, "number of mobile devices I")
		slots      = fs.Int("slots", 240, "slots to simulate")
		warmup     = fs.Int("warmup", 48, "warmup slots excluded from averages")
		v          = fs.Float64("v", 100, "drift-plus-penalty weight V")
		z          = fs.Int("z", 5, "BDMA alternation rounds")
		lambda     = fs.Float64("lambda", 0, "CGBA λ in [0, 0.125)")
		solverName = fs.String("solver", "cgba", "P2-A solver for -policy bdma: cgba, mcba, or ropt")
		polName    = fs.String("policy", policy.BDMA, "decision policy: "+strings.Join(policy.Names(), ", "))
		budgetFrac = fs.Float64("budget-frac", 0.5, "budget position in [all-F^L, all-F^U] cost range")
		seed       = fs.Int64("seed", 1, "random seed")
		csv        = fs.Bool("csv", false, "emit per-slot CSV instead of a summary")
		priceCSV   = fs.String("price-csv", "", "CSV file with real electricity prices (replaces the synthetic process)")
		priceCol   = fs.String("price-column", "LBMP ($/MWHr)", "price column name in -price-csv")
		resumeFrom = fs.String("resume", "", "checkpoint file to resume from (see -checkpoint)")
		configFile = fs.String("config", "", "JSON run-spec file; flags for scenario/controller are ignored when set")
		saveTo     = fs.String("checkpoint", "", "write a checkpoint file after the run")
		metrics    = fs.String("metrics", "", "serve expvar (/debug/vars) and pprof (/debug/pprof) on this address during the run, e.g. :6060")
		obsOut     = fs.String("obs-out", "", "write the observability snapshot here after the run (.csv → CSV, else JSON)")
		slotWork   = fs.Int("slot-workers", 0, "intra-slot solver workers (0 = all cores, 1 = serial); results are bit-identical at any setting")
		slotDL     = fs.Duration("slot-deadline", 0, "per-slot wall-clock budget for the solver (0 = none); expired slots fall down the degradation ladder (see OPERATIONS.md)")
		slotChecks = fs.Int("slot-checks", 0, "per-slot solver checkpoint budget (0 = none); deterministic alternative to -slot-deadline")
		faultsOn   = fs.Bool("faults", false, "inject seeded faults (trace corruption, outages, capacity loss, solver stalls) with the soak profile; repairs via trace.Sanitizer stay on")
		churn      = fs.Float64("churn", 0, "population churn intensity: scales the default join/leave/handover/server-event probabilities (0 = fixed population, 1 = default regime)")
		shortlist  = fs.Int("shortlist", 0, "CGBA best-response shortlist width k (0 = library default, -1 = exact unpruned path; see OPERATIONS.md)")
		failDegrad = fs.Bool("fail-degraded", false, "exit non-zero if any slot was decided below RungFull (degradation ladder engaged); the scale-smoke CI gate")
		topoName   = fs.String("topology", "default", "topology preset: default, urban, rural, campus, or metro")
		shards     = fs.Int("shards", 0, "shard the slot solve into per-cluster games (0 or 1 = off, -1 = one shard per topology cluster, ≥2 = at most that many; see OPERATIONS.md)")
		shardAudit = fs.Int("shard-audit", 0, "audit the sharded solve's optimality gap every N full-rung slots (0 = off; requires -shards)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *configFile != "" {
		return runFromConfig(*configFile, *csv, *saveTo, *resumeFrom, *metrics, *obsOut, *slotWork)
	}

	spec, err := topology.SpecByName(*topoName, *devices)
	if err != nil {
		return err
	}
	sc, err := experiments.NewScenario(experiments.ScenarioOptions{
		Devices:        *devices,
		Spec:           &spec,
		BudgetFraction: *budgetFrac,
	}, *seed)
	if err != nil {
		return err
	}
	genCfg := trace.DefaultGeneratorConfig()
	if *priceCSV != "" {
		f, err := os.Open(*priceCSV)
		if err != nil {
			return err
		}
		prices, err := trace.LoadPriceCSV(f, *priceCol)
		closeErr := f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", *priceCSV, err)
		}
		if closeErr != nil {
			return closeErr
		}
		genCfg.PriceSeries = prices
	}
	gen, err := sc.Generator(genCfg)
	if err != nil {
		return err
	}

	var pol policy.Policy
	if *polName == policy.BDMA {
		var ctrl *core.Controller
		switch *solverName {
		case "cgba":
			ctrl, err = core.NewBDMAController(sc.Sys, *v, *z, *lambda, *seed)
		case "mcba":
			ctrl, err = core.NewMCBAController(sc.Sys, *v, *z, *seed)
		case "ropt":
			ctrl, err = core.NewROPTController(sc.Sys, *v, *z, *seed)
		default:
			return fmt.Errorf("unknown solver %q (want cgba, mcba, or ropt)", *solverName)
		}
		if err != nil {
			return err
		}
		if *shortlist != 0 {
			if err := ctrl.SetShortlist(*shortlist); err != nil {
				return err
			}
		}
		if *shards != 0 {
			if err := ctrl.SetShards(*shards); err != nil {
				return err
			}
		}
		if *shardAudit > 0 {
			if *shards == 0 {
				return fmt.Errorf("-shard-audit requires -shards")
			}
			ctrl.SetShardAudit(*shardAudit)
		}
		pol = ctrl
	} else {
		// The controller-only knobs stay with -policy bdma: the tuner owns
		// its own shortlist schedule, and the baselines run no solver.
		if *solverName != "cgba" {
			return fmt.Errorf("-solver applies only to -policy bdma (got -policy %s)", *polName)
		}
		if *shortlist != 0 || *shards != 0 || *shardAudit > 0 {
			return fmt.Errorf("-shortlist/-shards/-shard-audit apply only to -policy bdma (got -policy %s)", *polName)
		}
		pol, err = policy.New(*polName, sc.Sys, policy.Config{
			V: *v, Rounds: *z, Lambda: *lambda, Seed: *seed,
		})
		if err != nil {
			return err
		}
	}

	reg, err := attachObs(pol, *metrics, *obsOut)
	if err != nil {
		return err
	}
	defer attachPool(pol, *slotWork)()

	if *resumeFrom != "" {
		f, err := os.Open(*resumeFrom)
		if err != nil {
			return err
		}
		cp, err := core.ReadCheckpoint(f)
		closeErr := f.Close()
		if err != nil {
			return fmt.Errorf("reading checkpoint %s: %w", *resumeFrom, err)
		}
		if closeErr != nil {
			return closeErr
		}
		if err := pol.Restore(cp); err != nil {
			return err
		}
		// Fast-forward the state source past the slots already simulated:
		// the generator is deterministic, so skipping cp.Slot states
		// resumes the exact trace.
		for s := 0; s < cp.Slot; s++ {
			gen.Next()
		}
	}

	var base trace.Source = gen
	if *churn > 0 {
		base, err = trace.NewChurnSchedule(scaledChurn(*churn, *seed), sc.Net, gen)
		if err != nil {
			return err
		}
	}
	src, inj, err := applyRobustness(pol, base, *slotDL, *slotChecks, *faultsOn, *seed)
	if err != nil {
		return err
	}

	res, err := sim.Run(pol, src, sim.Config{Slots: *slots, Warmup: *warmup})
	if err != nil {
		return err
	}

	if *obsOut != "" {
		if err := writeObsSnapshot(*obsOut, reg); err != nil {
			return err
		}
	}

	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			return err
		}
		if err := core.WriteCheckpointTo(f, pol.Checkpoint()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// The degradation gate runs after outputs are written so a failing
	// CI run still ships its diagnostics.
	degradedGate := func() error {
		if !*failDegrad {
			return nil
		}
		if d := res.DegradedSlots(); d > 0 {
			return fmt.Errorf("%d of %d slots decided below RungFull (-fail-degraded)", d, *slots)
		}
		return nil
	}

	if *csv {
		if err := res.WriteCSV(os.Stdout); err != nil {
			return err
		}
		return degradedGate()
	}

	k, m, n, i := sc.Net.Counts()
	fmt.Printf("scenario: %s topology, %d base stations, %d rooms, %d servers, %d devices (seed %d)\n", *topoName, k, m, n, i, *seed)
	if sn, ok := pol.(policy.SolverNamer); ok {
		fmt.Printf("policy:   %s (%s-based DPP), V=%g, z=%d, λ=%g\n", pol.Name(), sn.SolverName(), *v, *z, *lambda)
	} else {
		fmt.Printf("policy:   %s, V=%g\n", pol.Name(), *v)
	}
	if *shards != 0 {
		if *shards == core.ShardsAuto {
			fmt.Printf("sharding: one shard per topology cluster (-shards -1)\n")
		} else {
			fmt.Printf("sharding: up to %d shards\n", *shards)
		}
	}
	fmt.Printf("budget:   $%.4f per slot\n", sc.Sys.Budget.Dollars())
	fmt.Printf("slots:    %d (%d warmup)\n\n", *slots, *warmup)
	fmt.Printf("avg latency:       %.4f s (sum over devices per slot)\n", res.AvgLatency())
	fmt.Printf("avg energy cost:   $%.4f per slot\n", res.AvgCost())
	fmt.Printf("budget satisfied:  %v (realized/budget = %.3f)\n",
		res.BudgetSatisfied(0.02), res.AvgCost()/res.Budget)
	fmt.Printf("avg queue backlog: %.3f\n", res.AvgBacklog())
	fmt.Printf("avg decision time: %v per slot\n", res.AvgDecisionTime())
	if a := res.AuditedSlots(); a > 0 {
		fmt.Printf("avg shard gap:     %+.4f%% over %d audited slots\n", res.AvgShardGap()*100, a)
	}
	if d := res.DegradedSlots(); d > 0 {
		fmt.Printf("degraded slots:    %d of %d (fallback ladder; see OPERATIONS.md)\n", d, *slots)
	}
	if inj != nil {
		fmt.Printf("faults injected:   %d\n", inj.Injections())
	}
	if *churn > 0 {
		events := 0
		for _, c := range res.ChurnEvents {
			events += c
		}
		fmt.Printf("churn events:      %d across %d slots (final population %d devices, %d servers)\n",
			events, *slots, res.ActiveDevices[len(res.ActiveDevices)-1], res.ActiveServers[len(res.ActiveServers)-1])
	}
	return degradedGate()
}

// scaledChurn returns the default churn regime with every event
// probability multiplied by intensity (clamped to 1).
func scaledChurn(intensity float64, seed int64) trace.ChurnConfig {
	cfg := trace.DefaultChurnConfig(seed)
	clamp := func(p float64) float64 {
		p *= intensity
		if p > 1 {
			return 1
		}
		return p
	}
	cfg.DeviceJoinProb = clamp(cfg.DeviceJoinProb)
	cfg.DeviceLeaveProb = clamp(cfg.DeviceLeaveProb)
	cfg.HandoverProb = clamp(cfg.HandoverProb)
	cfg.ServerRemoveProb = clamp(cfg.ServerRemoveProb)
	cfg.ServerAddProb = clamp(cfg.ServerAddProb)
	return cfg
}

// applyRobustness arms the policy's per-slot deadline (when either budget
// is set; an error when the policy has no deadline capability) and, when
// injectFaults is on, wraps src in a seeded fault injector with a
// repairing trace.Sanitizer on top. The returned source is what the
// simulation should consume; the injector is returned for post-run
// reporting (nil when fault injection is off). Policies without a timed
// solve skip the stall leg but still see the corrupted traces.
func applyRobustness(pol policy.Policy, src trace.Source, deadline time.Duration, checks int, injectFaults bool, seed int64) (trace.Source, *faults.Injector, error) {
	if deadline > 0 || checks > 0 {
		ds, ok := pol.(policy.DeadlineSetter)
		if !ok {
			return nil, nil, fmt.Errorf("-slot-deadline/-slot-checks apply only to the bdma family (policy %s has no degradation ladder)", pol.Name())
		}
		ds.SetSlotDeadline(deadline, checks)
	}
	if !injectFaults {
		return src, nil, nil
	}
	inj, err := faults.NewInjector(faults.DefaultConfig(seed), len(pol.System().Net.Servers), src)
	if err != nil {
		return nil, nil, err
	}
	if st, ok := pol.(faults.Staller); ok {
		inj.Attach(st)
	}
	return trace.NewSanitizer(inj), inj, nil
}

// attachPool gives the policy an intra-slot worker pool of the requested
// size (0 = GOMAXPROCS, ≤1 = stay serial) and returns the cleanup that
// releases the workers. Parallel slot solves are bit-identical to serial,
// so the flag only changes wall-clock time; policies without the
// capability simply stay serial.
func attachPool(pol policy.Policy, workers int) func() {
	ps, ok := pol.(policy.PoolSetter)
	if !ok || workers == 1 {
		return func() {}
	}
	pool := par.New(workers)
	ps.SetPool(pool)
	return pool.Close
}

// runFromConfig executes a JSON run spec.
func runFromConfig(path string, csv bool, saveTo, resumeFrom, metricsAddr, obsOut string, slotWork int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	spec, err := experiments.LoadRunSpec(f)
	closeErr := f.Close()
	if err != nil {
		return fmt.Errorf("loading %s: %w", path, err)
	}
	if closeErr != nil {
		return closeErr
	}
	sc, gen, ctrl, cfg, err := spec.Build()
	if err != nil {
		return err
	}
	reg, err := attachObs(ctrl, metricsAddr, obsOut)
	if err != nil {
		return err
	}
	defer attachPool(ctrl, slotWork)()
	if resumeFrom != "" {
		cf, err := os.Open(resumeFrom)
		if err != nil {
			return err
		}
		cp, err := core.ReadCheckpoint(cf)
		closeErr := cf.Close()
		if err != nil {
			return fmt.Errorf("reading checkpoint %s: %w", resumeFrom, err)
		}
		if closeErr != nil {
			return closeErr
		}
		if err := ctrl.Restore(cp); err != nil {
			return err
		}
		for s := 0; s < cp.Slot; s++ {
			gen.Next()
		}
	}
	metrics, err := sim.Run(ctrl, gen, cfg)
	if err != nil {
		return err
	}
	if obsOut != "" {
		if err := writeObsSnapshot(obsOut, reg); err != nil {
			return err
		}
	}
	if saveTo != "" {
		cf, err := os.Create(saveTo)
		if err != nil {
			return err
		}
		if err := ctrl.WriteCheckpoint(cf); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
	}
	if csv {
		return metrics.WriteCSV(os.Stdout)
	}
	k, m, n, i := sc.Net.Counts()
	fmt.Printf("config:   %s\n", path)
	fmt.Printf("scenario: %d base stations, %d rooms, %d servers, %d devices\n", k, m, n, i)
	fmt.Printf("controller: %s-based DPP, V=%g\n", ctrl.SolverName(), ctrl.V())
	fmt.Printf("budget:   $%.4f per slot\n\n", sc.Sys.Budget.Dollars())
	fmt.Printf("avg latency:       %.4f s\n", metrics.AvgLatency())
	fmt.Printf("avg energy cost:   $%.4f per slot (within budget: %v)\n", metrics.AvgCost(), metrics.BudgetSatisfied(0.02))
	fmt.Printf("avg queue backlog: %.3f\n", metrics.AvgBacklog())
	fmt.Printf("avg decision time: %v per slot\n", metrics.AvgDecisionTime())
	return nil
}
