package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmallSimulation(t *testing.T) {
	if err := run([]string{"-devices", "5", "-slots", "6", "-warmup", "1", "-z", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown solver", []string{"-devices", "5", "-slots", "4", "-solver", "magic"}},
		{"bad flag", []string{"-nope"}},
		{"missing price csv", []string{"-devices", "5", "-slots", "4", "-price-csv", "/nonexistent.csv"}},
		{"missing config", []string{"-config", "/nonexistent.json"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("invalid arguments accepted")
			}
		})
	}
}

func TestRunCheckpointRoundtripViaCLI(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "cp.json")
	if err := run([]string{"-devices", "5", "-slots", "6", "-warmup", "1", "-z", "1", "-checkpoint", cp}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cp); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if err := run([]string{"-devices", "5", "-slots", "6", "-warmup", "1", "-z", "1", "-resume", cp}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromConfigFile(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "run.json")
	if err := os.WriteFile(cfg, []byte(`{"devices": 5, "slots": 6, "z": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", cfg}); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"bogus": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", bad}); err == nil {
		t.Error("unknown config field accepted")
	}
}
