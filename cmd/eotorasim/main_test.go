package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eotora/internal/core"
	"eotora/internal/obs"
)

func TestRunSmallSimulation(t *testing.T) {
	if err := run([]string{"-devices", "5", "-slots", "6", "-warmup", "1", "-z", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunShardedMetro(t *testing.T) {
	if err := run([]string{"-topology", "metro", "-devices", "60", "-slots", "4", "-warmup", "1",
		"-z", "1", "-shards", "-1", "-shard-audit", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown solver", []string{"-devices", "5", "-slots", "4", "-solver", "magic"}},
		{"bad flag", []string{"-nope"}},
		{"missing price csv", []string{"-devices", "5", "-slots", "4", "-price-csv", "/nonexistent.csv"}},
		{"missing config", []string{"-config", "/nonexistent.json"}},
		{"unknown topology", []string{"-devices", "5", "-slots", "4", "-topology", "ocean"}},
		{"bad shards", []string{"-devices", "5", "-slots", "4", "-shards", "-2"}},
		{"shards on mcba", []string{"-devices", "5", "-slots", "4", "-solver", "mcba", "-shards", "2"}},
		{"audit without shards", []string{"-devices", "5", "-slots", "4", "-shard-audit", "3"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("invalid arguments accepted")
			}
		})
	}
}

func TestRunCheckpointRoundtripViaCLI(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "cp.json")
	if err := run([]string{"-devices", "5", "-slots", "6", "-warmup", "1", "-z", "1", "-checkpoint", cp}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cp); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if err := run([]string{"-devices", "5", "-slots", "6", "-warmup", "1", "-z", "1", "-resume", cp}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromConfigFile(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "run.json")
	if err := os.WriteFile(cfg, []byte(`{"devices": 5, "slots": 6, "z": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", cfg}); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"bogus": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", bad}); err == nil {
		t.Error("unknown config field accepted")
	}
}

func TestRunWithObsOut(t *testing.T) {
	dir := t.TempDir()
	jsonOut := filepath.Join(dir, "obs.json")
	if err := run([]string{"-devices", "5", "-slots", "6", "-warmup", "1", "-z", "1", "-obs-out", jsonOut}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters[core.MetricSlots] != 6 {
		t.Errorf("controller.slots = %d, want 6", snap.Counters[core.MetricSlots])
	}
	for _, name := range []string{core.MetricDecisionSeconds, core.MetricLatencySeconds, core.MetricBacklog} {
		if h, ok := snap.Histograms[name]; !ok || h.Count != 6 {
			t.Errorf("histogram %s = %+v, want 6 observations", name, h)
		}
	}
	if snap.Counters[core.MetricCGBASolves] == 0 || snap.Counters[core.MetricP2BSolves] == 0 {
		t.Error("solver instruments not recorded")
	}

	csvOut := filepath.Join(dir, "obs.csv")
	if err := run([]string{"-devices", "5", "-slots", "4", "-z", "1", "-warmup", "1", "-obs-out", csvOut}); err != nil {
		t.Fatal(err)
	}
	csvRaw, err := os.ReadFile(csvOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvRaw), "kind,name,field,value\n") {
		t.Errorf("CSV snapshot missing header:\n%s", csvRaw)
	}
}

func TestMetricsServerSmoke(t *testing.T) {
	reg := obs.New()
	reg.Counter(core.MetricSlots).Add(3)
	ln, err := startMetricsServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, `"eotora"`) || !strings.Contains(vars, "controller.slots") {
		t.Errorf("/debug/vars missing eotora registry:\n%.400s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%.200s", idx)
	}
	get("/debug/pprof/cmdline")

	// The full CLI path: -metrics with an ephemeral port must run clean.
	if err := run([]string{"-devices", "5", "-slots", "4", "-warmup", "1", "-z", "1", "-metrics", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
}
