package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"

	"eotora/internal/obs"
	"eotora/internal/policy"
)

// attachObs instruments the policy when -metrics or -obs-out asks for
// observability: it attaches a fresh registry and, with a non-empty addr,
// starts the expvar/pprof server and logs the bound address (addr may use
// port 0 to pick a free port). It returns the registry, nil when
// observability is off.
func attachObs(pol policy.Policy, addr, obsOut string) (*obs.Registry, error) {
	if addr == "" && obsOut == "" {
		return nil, nil
	}
	reg := obs.New()
	pol.SetObs(reg)
	if addr != "" {
		ln, err := startMetricsServer(addr, reg)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "eotorasim: metrics on http://%s/debug/vars (pprof on /debug/pprof/)\n", ln.Addr())
	}
	return reg, nil
}

// startMetricsServer publishes the registry under the "eotora" expvar and
// serves /debug/vars (expvar) plus /debug/pprof/* on addr. It returns the
// bound listener (addr may carry port 0) — the server runs until the
// process exits, which for this one-shot CLI is when the run finishes.
func startMetricsServer(addr string, reg *obs.Registry) (net.Listener, error) {
	if err := reg.PublishExpvar("eotora"); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "eotorasim: metrics server:", err)
		}
	}()
	return ln, nil
}

// writeObsSnapshot dumps the registry's end-of-run snapshot to path: CSV
// when the path ends in .csv, indented JSON otherwise.
func writeObsSnapshot(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	snap := reg.Snapshot()
	if strings.HasSuffix(path, ".csv") {
		err = snap.WriteCSV(f)
	} else {
		err = snap.WriteJSON(f)
	}
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	return err
}
