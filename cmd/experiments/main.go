// Command experiments regenerates the paper's evaluation figures
// (Figures 2–9) and the DESIGN.md ablation studies.
//
// Usage:
//
//	experiments -fig 4                 # one figure, reduced scale
//	experiments -fig 9 -scale paper    # paper-scale sweep (slow)
//	experiments -fig all -format csv   # everything, CSV output
//
// Figure IDs: 2–9, ablation-bdma-z, ablation-p2b, ablation-iid,
// ablation-fronthaul, degrade, churn, compare (policy roster on one
// trace), tuner (fixed knobs vs the online V/λ auto-tuner), all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"eotora/internal/experiments"
	"eotora/internal/plot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		figID  = fs.String("fig", "all", "figure to regenerate: 2..9, ablation-bdma-z, ablation-p2b, ablation-iid, ablation-fronthaul, ablation-pivot, degrade, churn, compare, tuner, all")
		scale  = fs.String("scale", "quick", "experiment scale: quick or paper")
		format = fs.String("format", "table", "output format: table, csv, plot, or markdown")
		seed   = fs.Int64("seed", 1, "random seed")
		outDir = fs.String("out", "", "write each figure to <out>/<id>.{txt,csv,md} instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	paper := false
	switch *scale {
	case "quick":
	case "paper":
		paper = true
	default:
		return fmt.Errorf("unknown scale %q (want quick or paper)", *scale)
	}
	switch *format {
	case "table", "csv", "plot", "markdown":
	default:
		return fmt.Errorf("unknown format %q (want table, csv, plot, or markdown)", *format)
	}

	ids := []string{*figID}
	if *figID == "all" {
		ids = []string{"2", "3", "4", "5", "6", "7", "8", "9",
			"ablation-bdma-z", "ablation-p2b", "ablation-iid", "ablation-fronthaul", "ablation-pivot", "ablation-compute-bound", "ablation-seeds", "ablation-flashcrowd", "ablation-per-room", "ablation-stale", "ablation-convergence", "degrade", "churn", "compare", "tuner"}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		fig, err := build(id, paper, *seed)
		if err != nil {
			return fmt.Errorf("fig %s: %w", id, err)
		}
		if *outDir != "" {
			if err := writeFigureFiles(*outDir, fig); err != nil {
				return err
			}
			fmt.Printf("wrote %s/%s.{txt,csv,md}\n", *outDir, fig.ID)
			continue
		}
		switch *format {
		case "csv":
			if err := fig.WriteCSV(os.Stdout); err != nil {
				return err
			}
		case "plot":
			if err := renderPlot(fig); err != nil {
				return err
			}
		case "markdown":
			if err := fig.WriteMarkdown(os.Stdout); err != nil {
				return err
			}
		default:
			if err := fig.Render(os.Stdout); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	return nil
}

func build(id string, paper bool, seed int64) (*experiments.Figure, error) {
	switch id {
	case "2":
		cfg := experiments.DefaultFig2Config()
		cfg.Seed = seed
		if !paper {
			cfg.Days = 7
			cfg.Devices = 30
		}
		return experiments.Fig2(cfg)
	case "3":
		cfg := experiments.DefaultFig3Config()
		cfg.Seed = seed
		return experiments.Fig3(cfg)
	case "4", "5":
		cfg := experiments.QuickP2ASweepConfig()
		if paper {
			cfg = experiments.DefaultP2ASweepConfig()
		}
		cfg.Seed = seed
		if id == "4" {
			return experiments.Fig4(cfg)
		}
		return experiments.Fig5(cfg)
	case "6":
		cfg := experiments.QuickFig6Config()
		if paper {
			cfg = experiments.DefaultFig6Config()
		}
		cfg.Seed = seed
		return experiments.Fig6(cfg)
	case "7":
		cfg := experiments.QuickFig7Config()
		if paper {
			cfg = experiments.DefaultFig7Config()
		}
		cfg.Seed = seed
		return experiments.Fig7(cfg)
	case "8":
		cfg := experiments.QuickFig8Config()
		if paper {
			cfg = experiments.DefaultFig8Config()
		}
		cfg.Seed = seed
		return experiments.Fig8(cfg)
	case "9":
		cfg := experiments.QuickFig9Config()
		if paper {
			cfg = experiments.DefaultFig9Config()
		}
		cfg.Seed = seed
		return experiments.Fig9(cfg)
	case "ablation-bdma-z":
		return experiments.AblationBDMAZ(ablationCfg(paper, seed), nil)
	case "ablation-p2b":
		return experiments.AblationP2BSolver(ablationCfg(paper, seed))
	case "ablation-iid":
		return experiments.AblationIID(ablationCfg(paper, seed))
	case "ablation-fronthaul":
		return experiments.AblationFronthaulJitter(ablationCfg(paper, seed))
	case "ablation-pivot":
		return experiments.AblationPivot(ablationCfg(paper, seed))
	case "ablation-compute-bound":
		return experiments.AblationComputeBound(ablationCfg(paper, seed), nil)
	case "ablation-seeds":
		return experiments.AblationSeeds(ablationCfg(paper, seed), nil)
	case "ablation-flashcrowd":
		return experiments.AblationFlashCrowd(ablationCfg(paper, seed))
	case "ablation-per-room":
		return experiments.AblationPerRoomBudgets(ablationCfg(paper, seed))
	case "ablation-stale":
		return experiments.AblationStaleObservation(ablationCfg(paper, seed))
	case "ablation-convergence":
		return experiments.AblationConvergence(ablationCfg(paper, seed), nil)
	case "degrade":
		return experiments.FigDegrade(ablationCfg(paper, seed), nil)
	case "churn":
		return experiments.FigChurn(ablationCfg(paper, seed), nil)
	case "compare":
		return experiments.ComparePolicies(compareCfg(paper, seed))
	case "tuner":
		return experiments.TunerDemo(compareCfg(paper, seed))
	default:
		return nil, fmt.Errorf("unknown figure id %q", id)
	}
}

func ablationCfg(paper bool, seed int64) experiments.AblationConfig {
	cfg := experiments.QuickAblationConfig()
	if paper {
		cfg = experiments.DefaultAblationConfig()
	}
	cfg.Seed = seed
	return cfg
}

func compareCfg(paper bool, seed int64) experiments.CompareConfig {
	cfg := experiments.QuickCompareConfig()
	if paper {
		cfg = experiments.DefaultCompareConfig()
	}
	cfg.Seed = seed
	return cfg
}

// renderPlot draws the figure's series as an ASCII chart, followed by the
// notes. Figures with more series than plot markers fall back to tables.
func renderPlot(fig *experiments.Figure) error {
	if len(fig.Series) > 8 {
		return fig.Render(os.Stdout)
	}
	series := make([]plot.Series, 0, len(fig.Series))
	for _, s := range fig.Series {
		series = append(series, plot.Series{Name: s.Name, X: s.X, Y: s.Y})
	}
	cfg := plot.Config{
		Title:  fmt.Sprintf("%s: %s", fig.ID, fig.Title),
		XLabel: fig.XLabel,
		YLabel: fig.YLabel,
	}
	if err := plot.Lines(os.Stdout, cfg, series...); err != nil {
		return err
	}
	for _, n := range fig.Notes {
		fmt.Println("note:", n)
	}
	return nil
}

// writeFigureFiles renders the figure in every format under dir.
func writeFigureFiles(dir string, fig *experiments.Figure) error {
	write := func(ext string, render func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, fig.ID+ext))
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(".txt", fig.Render); err != nil {
		return err
	}
	if err := write(".csv", fig.WriteCSV); err != nil {
		return err
	}
	return write(".md", fig.WriteMarkdown)
}
