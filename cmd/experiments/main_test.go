package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunArgumentValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown scale", []string{"-fig", "3", "-scale", "huge"}},
		{"unknown format", []string{"-fig", "3", "-format", "pdf"}},
		{"unknown figure", []string{"-fig", "99"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("invalid arguments accepted")
			}
		})
	}
}

func TestBuildKnownFigures(t *testing.T) {
	// Only the cheap figures — the full set is covered by the benches.
	for _, id := range []string{"2", "3"} {
		fig, err := build(id, false, 1)
		if err != nil {
			t.Fatalf("fig %s: %v", id, err)
		}
		if fig.ID != "fig"+id {
			t.Errorf("fig ID = %q", fig.ID)
		}
		if len(fig.Series) == 0 {
			t.Errorf("fig %s has no series", id)
		}
	}
	if _, err := build("nope", false, 1); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestAblationCfgScales(t *testing.T) {
	quick := ablationCfg(false, 7)
	paper := ablationCfg(true, 7)
	if quick.Seed != 7 || paper.Seed != 7 {
		t.Error("seed not propagated")
	}
	if paper.Devices <= quick.Devices {
		t.Errorf("paper devices %d not above quick %d", paper.Devices, quick.Devices)
	}
}

func TestWriteFigureFiles(t *testing.T) {
	dir := t.TempDir()
	fig, err := build("3", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFigureFiles(dir, fig); err != nil {
		t.Fatal(err)
	}
	// CSV has no figure-id header; check content markers per format.
	markers := map[string]string{
		".txt": "fig3",
		".csv": "frequency [GHz]",
		".md":  "## fig3",
	}
	for ext, want := range markers {
		data, err := os.ReadFile(filepath.Join(dir, "fig3"+ext))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), want) {
			t.Errorf("%s output missing %q", ext, want)
		}
	}
}
