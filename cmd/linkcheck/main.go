// Command linkcheck verifies the relative links in the repository's
// markdown files: every `[text](target)` or `![alt](target)` whose target
// is not an external URL or a pure in-page anchor must resolve to an
// existing file or directory relative to the file containing it. It is
// part of `make lint`, so renaming a document without updating its
// references fails CI.
//
// Usage:
//
//	linkcheck [root]
//
// root defaults to the current directory; .git and vendor trees are
// skipped. External schemes (http, https, mailto) are not fetched — this
// is an offline structural check only.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe captures the target of inline markdown links and images. It
// deliberately stops at whitespace or a closing paren, which also strips
// optional link titles.
var linkRe = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var broken []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "vendor", "node_modules", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.EqualFold(filepath.Ext(path), ".md") {
			return nil
		}
		b, err := checkFile(path)
		if err != nil {
			return err
		}
		broken = append(broken, b...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "linkcheck:", err)
		os.Exit(2)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Println(b)
		}
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken relative link(s)\n", len(broken))
		os.Exit(1)
	}
}

// checkFile scans one markdown file and returns a report line for every
// relative link target that does not exist on disk.
func checkFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	dir := filepath.Dir(path)
	for lineNo, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skippable(target) {
				continue
			}
			// Drop an in-page anchor suffix; the file part must exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(dir, filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: broken link %q",
					filepath.ToSlash(path), lineNo+1, m[1]))
			}
		}
	}
	return broken, nil
}

// skippable reports targets outside this check's scope: external schemes
// and pure in-page anchors.
func skippable(target string) bool {
	if strings.HasPrefix(target, "#") {
		return true
	}
	for _, scheme := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, scheme) {
			return true
		}
	}
	return false
}
