// Command loadgen replays a deterministic EOTORA state stream against a
// running eotorad daemon: it derives the same generator (optionally
// wrapped in a trace.ChurnSchedule) from the shared seed, diffs each
// consecutive state pair into the event batch that reproduces the
// transition (serve.DiffStates), and streams the batches over HTTP. It is
// the realistic load target the serve-mode perf work measures against
// (ROADMAP serve-mode item) and the driver of the CI serve smoke.
//
// Two pacing modes:
//
//   - lockstep (-tick 0): each batch is followed by POST /v1/tick and the
//     slot's decision is collected synchronously — deterministic, used by
//     the smoke gate and the kill/restore drill;
//   - timer (-tick > 0): batches are posted on the given cadence while
//     the daemon ticks on its own clock, and decisions are collected by a
//     long-poll goroutine — the realistic streaming regime.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -devices 150 -slots 200
//	loadgen -tick 100ms -slots 600 -csv > stream.csv
//	loadgen -skip 120 ...   # resume streaming after a daemon restore at slot 120
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"eotora/internal/experiments"
	"eotora/internal/serve"
	"eotora/internal/topology"
	"eotora/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "http://localhost:8080", "eotorad base URL")
		devices    = fs.Int("devices", 100, "devices I (must match the daemon)")
		topoName   = fs.String("topology", "default", "topology preset (must match the daemon)")
		budgetFrac = fs.Float64("budget-frac", 0.5, "budget fraction (must match the daemon)")
		seed       = fs.Int64("seed", 1, "random seed (must match the daemon)")
		churn      = fs.Float64("churn", 0, "churn intensity (must match the daemon's -churn)")
		slots      = fs.Int("slots", 200, "slots to stream")
		tick       = fs.Duration("tick", 0, "pacing: 0 = lockstep (POST /v1/tick per batch), >0 = post batches on this cadence")
		skip       = fs.Int("skip", 0, "skip this many leading slots (resume streaming after a daemon -restore)")
		csvOut     = fs.Bool("csv", false, "emit per-slot CSV (slot,events,accepted,shed,rung,elapsed_us,backlog) to stdout")
		failDegrad = fs.Bool("fail-degraded", false, "exit non-zero if the daemon reports any slot below RungFull (CI gate)")
		failShed   = fs.Bool("fail-shed", false, "exit non-zero if the daemon shed any event (CI gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *slots < 2 {
		return fmt.Errorf("need at least 2 slots to stream a transition, got %d", *slots)
	}

	spec, err := topology.SpecByName(*topoName, *devices)
	if err != nil {
		return err
	}
	sc, err := experiments.NewScenario(experiments.ScenarioOptions{
		Devices:        *devices,
		Spec:           &spec,
		BudgetFraction: *budgetFrac,
	}, *seed)
	if err != nil {
		return err
	}
	gen, err := sc.Generator(trace.DefaultGeneratorConfig())
	if err != nil {
		return err
	}
	var src trace.Source = gen
	if *churn > 0 {
		src, err = trace.NewChurnSchedule(scaledChurn(*churn, *seed), sc.Net, gen)
		if err != nil {
			return err
		}
	}

	cli := &client{base: *addr, hc: &http.Client{Timeout: 30 * time.Second}}

	// β_1 is the daemon's initial state — never streamed. A -skip fast-
	// forwards past slots the daemon already decided before its restore.
	prev := src.Next()
	for s := 1; s < *skip; s++ {
		prev = src.Next()
	}

	var w *csvWriter
	if *csvOut {
		w = newCSVWriter(os.Stdout)
	}

	// Decision collection: lockstep gets each decision synchronously from
	// POST /v1/tick; timer mode long-polls in the background.
	lockstep := *tick <= 0
	var collect *collector
	if !lockstep {
		collect = newCollector(cli, w)
		defer collect.stop()
	}

	if lockstep && *skip == 0 {
		// Slot 1 decides the daemon's initial state with no events.
		dec, err := cli.tick()
		if err != nil {
			return fmt.Errorf("slot 1 tick: %w", err)
		}
		w.row(1, 0, 0, 0, dec)
	}

	start := time.Now()
	sent, acceptedN, shedN := 0, 0, 0
	first := *skip
	if first < 2 {
		first = 2
	}
	for s := first; s <= *slots; s++ {
		next := src.Next()
		events := serve.DiffStates(prev, next)
		prev = next
		resp, err := cli.post(events)
		if err != nil {
			return fmt.Errorf("slot %d ingest: %w", s, err)
		}
		sent += len(events)
		acceptedN += resp.Accepted
		shedN += resp.Shed
		if lockstep {
			dec, err := cli.tick()
			if err != nil {
				return fmt.Errorf("slot %d tick: %w", s, err)
			}
			w.row(s, len(events), resp.Accepted, resp.Shed, dec)
		} else {
			time.Sleep(*tick)
		}
	}
	elapsed := time.Since(start)
	if collect != nil {
		collect.drain(2 * *tick)
	}

	status, err := cli.status()
	if err != nil {
		return fmt.Errorf("final status: %w", err)
	}
	streamed := *slots - first + 1
	fmt.Fprintf(os.Stderr, "loadgen: %d slots streamed in %v (%.0f events/slot, %.0f events/s)\n",
		streamed, elapsed.Round(time.Millisecond),
		float64(sent)/float64(streamed), float64(sent)/elapsed.Seconds())
	fmt.Fprintf(os.Stderr, "loadgen: daemon at slot %d: shed %d of %d ingested, %d degraded slots, %d escalations, backlog %.3f\n",
		status.Slot, status.EventsShed, status.EventsIngested+status.EventsShed,
		status.DegradedSlots, status.Escalations, status.Backlog)

	if *failShed && status.EventsShed > 0 {
		return fmt.Errorf("%d events shed (-fail-shed)", status.EventsShed)
	}
	if *failDegrad && status.DegradedSlots > 0 {
		return fmt.Errorf("%d slots decided below RungFull (-fail-degraded)", status.DegradedSlots)
	}
	return nil
}

// client is the minimal eotorad HTTP client.
type client struct {
	base string
	hc   *http.Client
}

// post sends one event batch to /v1/events.
func (c *client) post(events []serve.Event) (serve.IngestResponse, error) {
	body, err := json.Marshal(events)
	if err != nil {
		return serve.IngestResponse{}, err
	}
	resp, err := c.hc.Post(c.base+"/v1/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.IngestResponse{}, err
	}
	var out serve.IngestResponse
	err = decodeJSON(resp, &out)
	return out, err
}

// tick advances one slot via POST /v1/tick and returns its decision.
func (c *client) tick() (*serve.Decision, error) {
	resp, err := c.hc.Post(c.base+"/v1/tick", "application/json", nil)
	if err != nil {
		return nil, err
	}
	var out serve.Decision
	if err := decodeJSON(resp, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// status fetches /v1/status.
func (c *client) status() (serve.Status, error) {
	resp, err := c.hc.Get(c.base + "/v1/status")
	if err != nil {
		return serve.Status{}, err
	}
	var out serve.Status
	err = decodeJSON(resp, &out)
	return out, err
}

// decisions long-polls /v1/decisions.
func (c *client) decisions(since int, wait time.Duration) (*serve.Decision, bool, error) {
	resp, err := c.hc.Get(fmt.Sprintf("%s/v1/decisions?since=%d&wait=%s", c.base, since, wait))
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode == http.StatusNoContent {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, false, nil
	}
	var out serve.Decision
	if err := decodeJSON(resp, &out); err != nil {
		return nil, false, err
	}
	return &out, true, nil
}

// decodeJSON reads a JSON response, mapping non-2xx statuses to errors.
func decodeJSON(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// collector long-polls decisions in the background (timer mode).
type collector struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// newCollector starts the long-poll loop, writing rows as decisions land.
func newCollector(cli *client, w *csvWriter) *collector {
	ctx, cancel := context.WithCancel(context.Background())
	c := &collector{cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(c.done)
		since := 0
		for ctx.Err() == nil {
			dec, ok, err := cli.decisions(since, 2*time.Second)
			if err != nil || !ok {
				continue
			}
			since = dec.Slot
			w.row(dec.Slot, dec.EventsApplied, dec.EventsApplied, 0, dec)
		}
	}()
	return c
}

// drain gives in-flight decisions a grace period, then stops.
func (c *collector) drain(grace time.Duration) {
	time.Sleep(grace)
	c.stop()
}

// stop cancels the long-poll loop and waits for it to exit.
func (c *collector) stop() {
	c.cancel()
	<-c.done
}

// csvWriter emits the per-slot stream CSV. A nil receiver discards rows,
// so call sites stay branch-free.
type csvWriter struct{ w io.Writer }

// newCSVWriter writes the header and returns the writer.
func newCSVWriter(w io.Writer) *csvWriter {
	fmt.Fprintln(w, "slot,events,accepted,shed,rung,elapsed_us,backlog")
	return &csvWriter{w: w}
}

// row writes one per-slot record.
func (c *csvWriter) row(slot, events, accepted, shed int, dec *serve.Decision) {
	if c == nil || dec == nil {
		return
	}
	fmt.Fprintf(c.w, "%d,%d,%d,%d,%d,%d,%g\n",
		slot, events, accepted, shed, dec.Rung, dec.ElapsedMicros, dec.Backlog)
}

// scaledChurn returns the default churn regime with every probability
// multiplied by intensity (clamped to 1) — identical to cmd/eotorad so
// shared-seed populations agree.
func scaledChurn(intensity float64, seed int64) trace.ChurnConfig {
	cfg := trace.DefaultChurnConfig(seed)
	clamp := func(p float64) float64 {
		p *= intensity
		if p > 1 {
			return 1
		}
		return p
	}
	cfg.DeviceJoinProb = clamp(cfg.DeviceJoinProb)
	cfg.DeviceLeaveProb = clamp(cfg.DeviceLeaveProb)
	cfg.HandoverProb = clamp(cfg.HandoverProb)
	cfg.ServerRemoveProb = clamp(cfg.ServerRemoveProb)
	cfg.ServerAddProb = clamp(cfg.ServerAddProb)
	return cfg
}
