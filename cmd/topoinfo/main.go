// Command topoinfo generates, inspects, and converts MEC network
// topologies. It emits either a human-readable summary or the JSON wire
// format that can be fed back in for reproducible experiments.
//
// Usage:
//
//	topoinfo -devices 100 -seed 42                 # summary of a generated network
//	topoinfo -devices 100 -json > net.json         # save as JSON
//	topoinfo -load net.json                        # summarize a saved network
package main

import (
	"flag"
	"fmt"
	"os"

	"eotora/internal/plot"
	"eotora/internal/rng"
	"eotora/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topoinfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topoinfo", flag.ContinueOnError)
	var (
		devices  = fs.Int("devices", 100, "number of mobile devices (generation)")
		seed     = fs.Int64("seed", 1, "random seed (generation)")
		wireless = fs.Bool("wireless-fronthaul", false, "use wireless mmWave fronthaul to every room")
		load     = fs.String("load", "", "load a network from this JSON file instead of generating")
		asJSON   = fs.Bool("json", false, "emit JSON instead of a summary")
		asMap    = fs.Bool("map", false, "draw an ASCII map of the deployment (Figure 1 style)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		net *topology.Network
		err error
	)
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		net, err = topology.ReadJSON(f)
		if err != nil {
			return err
		}
	} else {
		spec := topology.DefaultSpec(*devices)
		spec.WirelessFronthaul = *wireless
		net, err = topology.Generate(spec, rng.New(*seed))
		if err != nil {
			return err
		}
	}

	if *asJSON {
		return net.WriteJSON(os.Stdout)
	}
	if *asMap {
		return drawMap(net)
	}
	return summarize(net)
}

// drawMap renders the network geometry as an ASCII scatter plot — the
// reproduction of the paper's Figure 1 topology diagram.
func drawMap(net *topology.Network) error {
	var lowX, lowY, midX, midY, roomX, roomY, devX, devY []float64
	for _, bs := range net.BaseStations {
		if bs.Band == topology.LowBand {
			lowX = append(lowX, bs.Pos.X)
			lowY = append(lowY, bs.Pos.Y)
		} else {
			midX = append(midX, bs.Pos.X)
			midY = append(midY, bs.Pos.Y)
		}
	}
	for _, r := range net.Rooms {
		roomX = append(roomX, r.Pos.X)
		roomY = append(roomY, r.Pos.Y)
	}
	for _, d := range net.Devices {
		devX = append(devX, d.Pos.X)
		devY = append(devY, d.Pos.Y)
	}
	series := []plot.Series{
		{Name: "device", X: devX, Y: devY},
		{Name: "mid-band BS", X: midX, Y: midY},
		{Name: "low-band BS", X: lowX, Y: lowY},
		{Name: "server room", X: roomX, Y: roomY},
	}
	// Drop empty series (plot requires x/y pairs but tolerates empties;
	// keep legend clean).
	kept := series[:0]
	for _, s := range series {
		if len(s.X) > 0 {
			kept = append(kept, s)
		}
	}
	return plot.Lines(os.Stdout, plot.Config{
		Title:  "MEC deployment map",
		Width:  76,
		Height: 24,
		XLabel: "x [m]",
		YLabel: "y [m]",
	}, kept...)
}

func summarize(net *topology.Network) error {
	k, m, n, i := net.Counts()
	fmt.Printf("network: %d base stations, %d server rooms, %d servers, %d devices\n\n", k, m, n, i)

	fmt.Println("base stations:")
	for _, bs := range net.BaseStations {
		fmt.Printf("  %-6s %-10s cover %6.0fm  access %-9s fronthaul %-9s (%s) rooms %v → %d servers\n",
			bs.Name, bs.Band, bs.CoverageRadius, bs.AccessBandwidth, bs.FronthaulBandwidth,
			bs.Fronthaul, bs.Rooms, len(net.ReachableServers(bs.ID)))
	}

	fmt.Println("\nserver rooms:")
	for _, r := range net.Rooms {
		servers := net.ServersInRoom(r.ID)
		cores := 0
		for _, idx := range servers {
			cores += net.Servers[idx].Cores
		}
		fmt.Printf("  room-%d: %d servers, %d cores total\n", r.ID, len(servers), cores)
	}

	// Coverage: how many (station, server) options does each device have?
	minPairs, maxPairs, sumPairs := 1<<30, 0, 0
	for _, d := range net.Devices {
		pairs := len(net.FeasiblePairs(d.Pos))
		if pairs < minPairs {
			minPairs = pairs
		}
		if pairs > maxPairs {
			maxPairs = pairs
		}
		sumPairs += pairs
	}
	fmt.Printf("\nfeasible (station, server) pairs per device: min %d, avg %.1f, max %d\n",
		minPairs, float64(sumPairs)/float64(i), maxPairs)
	if err := net.CheckFeasible(); err != nil {
		fmt.Printf("FEASIBILITY WARNING: %v\n", err)
	} else {
		fmt.Println("feasibility: every device has at least one option ✓")
	}
	return nil
}
