package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunGenerateSummary(t *testing.T) {
	// Summary and map paths both execute on a generated network.
	if err := run([]string{"-devices", "5", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-devices", "5", "-seed", "2", "-map"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONRoundtripViaFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")

	// Generate + save by redirecting stdout.
	old := os.Stdout
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	err = run([]string{"-devices", "4", "-seed", "3", "-json"})
	os.Stdout = old
	if cerr := f.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}

	// Load it back and summarize.
	if err := run([]string{"-load", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-load", "/nonexistent/net.json"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
