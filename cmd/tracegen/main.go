// Command tracegen emits the synthetic system-state traces the simulator
// feeds the controller: hourly electricity prices, per-slot aggregate
// workload, and (optionally) the full per-device channel matrix.
//
// Usage:
//
//	tracegen -days 14 > traces.csv
//	tracegen -what channels -devices 20 -days 1
package main

import (
	"flag"
	"fmt"
	"os"

	"eotora/internal/plot"
	"eotora/internal/rng"
	"eotora/internal/stats"
	"eotora/internal/topology"
	"eotora/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		days    = fs.Int("days", 14, "days of hourly slots to emit")
		devices = fs.Int("devices", 100, "number of devices")
		seed    = fs.Int64("seed", 1, "random seed")
		what    = fs.String("what", "inputs", "trace to emit: inputs (price+workload), channels, or summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *days <= 0 || *devices <= 0 {
		return fmt.Errorf("days and devices must be positive, got %d/%d", *days, *devices)
	}

	switch *what {
	case "inputs":
		return emitInputs(*days, *devices, *seed)
	case "channels":
		return emitChannels(*days, *devices, *seed)
	case "summary":
		return emitSummary(*days, *devices, *seed)
	default:
		return fmt.Errorf("unknown trace %q (want inputs, channels, or summary)", *what)
	}
}

// emitSummary prints descriptive statistics plus sparklines of the first
// week of each generated series.
func emitSummary(days, devices int, seed int64) error {
	src := rng.New(seed)
	net, err := topology.Generate(topology.DefaultSpec(devices), src.Derive("net"))
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), seed)
	if err != nil {
		return err
	}
	slots := days * 24
	prices := make([]float64, 0, slots)
	tasks := make([]float64, 0, slots)
	coverage := make([]float64, 0, slots)
	for t := 0; t < slots; t++ {
		st := gen.Next()
		prices = append(prices, st.Price.PerMWh())
		var totalF float64
		for _, f := range st.TaskSizes {
			totalF += f.Count()
		}
		tasks = append(tasks, totalF/1e6)
		covered := 0
		for i := range st.Channels {
			for k := range st.Channels[i] {
				if st.Covered(i, k) {
					covered++
				}
			}
		}
		coverage = append(coverage, float64(covered)/float64(devices))
	}
	week := slots
	if week > 168 {
		week = 168
	}
	report := func(name string, series []float64, unit string) {
		fmt.Printf("%-22s mean %10.2f  min %10.2f  max %10.2f  σ %8.2f  %s\n",
			name, stats.Mean(series), stats.Min(series), stats.Max(series), stats.StdDev(series), unit)
		fmt.Printf("%-22s %s\n", "", plot.Sparkline(series[:week]))
	}
	fmt.Printf("trace summary: %d devices, %d days hourly (seed %d)\n\n", devices, days, seed)
	report("price", prices, "$/MWh")
	report("total task size", tasks, "Mcycles/slot")
	report("avg stations/device", coverage, "stations")
	return nil
}

func emitInputs(days, devices int, seed int64) error {
	root := rng.New(seed)
	price := trace.NewPriceProcess(trace.DefaultPriceConfig(), root.Derive("price"))
	demand := trace.NewDemandProcess(trace.DefaultDemandConfig(), devices, root.Derive("demand"))
	fmt.Println("slot,price_usd_mwh,total_task_mcycles,total_data_mbits")
	for t := 1; t <= days*24; t++ {
		p := price.Next()
		tasks, data := demand.Next()
		var totalF, totalD float64
		for i := range tasks {
			totalF += tasks[i].Count()
			totalD += data[i].Bits()
		}
		fmt.Printf("%d,%.4f,%.3f,%.3f\n", t, p.PerMWh(), totalF/1e6, totalD/1e6)
	}
	return nil
}

func emitChannels(days, devices int, seed int64) error {
	src := rng.New(seed)
	net, err := topology.Generate(topology.DefaultSpec(devices), src.Derive("net"))
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), seed)
	if err != nil {
		return err
	}
	fmt.Println("slot,device,station,spectral_efficiency_bps_hz")
	for t := 1; t <= days*24; t++ {
		st := gen.Next()
		for i := range st.Channels {
			for k, se := range st.Channels[i] {
				if se == 0 {
					continue // out of coverage
				}
				fmt.Printf("%d,%d,%d,%.3f\n", t, i, k, se.BpsPerHz())
			}
		}
	}
	return nil
}
