package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture redirects stdout while fn runs and returns what was printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = f
	runErr := fn()
	os.Stdout = old
	if cerr := f.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestEmitInputsCSV(t *testing.T) {
	out := capture(t, func() error {
		return run([]string{"-days", "1", "-devices", "4", "-what", "inputs"})
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 25 { // header + 24 hourly rows
		t.Fatalf("lines = %d, want 25", len(lines))
	}
	if !strings.HasPrefix(lines[0], "slot,price_usd_mwh") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestEmitChannelsCSV(t *testing.T) {
	out := capture(t, func() error {
		return run([]string{"-days", "1", "-devices", "3", "-what", "channels"})
	})
	if !strings.HasPrefix(out, "slot,device,station") {
		t.Errorf("header missing: %q", out[:40])
	}
}

func TestEmitSummary(t *testing.T) {
	out := capture(t, func() error {
		return run([]string{"-days", "2", "-devices", "5", "-what", "summary"})
	})
	for _, want := range []string{"trace summary", "price", "total task size", "$/MWh"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-days", "0"}); err == nil {
		t.Error("zero days accepted")
	}
	if err := run([]string{"-what", "nonsense"}); err == nil {
		t.Error("unknown trace kind accepted")
	}
}
