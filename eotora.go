// Package eotora is a Go implementation of "Energy-Aware Online Task
// Offloading and Resource Allocation for Mobile Edge Computing" (Liu, Mao,
// Shang, Liu, Yang — ICDCS 2023).
//
// The library models a heterogeneous MEC system (base stations, edge-server
// rooms, mobile devices) operating in discrete time slots. Each slot the
// controller observes the system state β_t — task sizes, input data
// lengths, channel conditions, electricity price — and makes the joint
// online decision α_t: base-station selection, server selection, bandwidth
// allocation, computing allocation, and per-server CPU frequency scaling.
// The objective is minimum time-average latency subject to a time-average
// energy-cost budget.
//
// The package re-exports the implementation so downstream users need a
// single import:
//
//	sc, _ := eotora.NewScenario(eotora.ScenarioOptions{Devices: 100}, 42)
//	gen, _ := sc.DefaultGenerator()
//	ctrl, _ := eotora.NewBDMAController(sc.Sys, 100 /* V */, 5 /* z */, 0 /* λ */, 42)
//	metrics, _ := eotora.Run(ctrl, gen, eotora.SimConfig{Slots: 240, Warmup: 48})
//	fmt.Println(metrics.AvgLatency(), metrics.AvgCost())
//
// Algorithms implemented (paper Section V):
//
//   - DPP — the drift-plus-penalty online controller (Algorithm 1) with
//     virtual queue Q(t+1) = max{Q(t) + C_t − C̄, 0}.
//   - BDMA — the Benders'-decomposition-motivated alternation between the
//     binary selection subproblem P2-A and the convex frequency subproblem
//     P2-B (Algorithm 2).
//   - CGBA — the weighted-congestion-game best-response solver for P2-A
//     with the 2.62/(1−8λ) approximation guarantee (Algorithm 3).
//   - Baselines — MCBA (Markov-chain Monte Carlo), ROPT (random selection
//     with optimal allocation), and an exact branch-and-bound optimum.
//
// The evaluation harnesses under internal/experiments regenerate every
// figure of the paper's Section VI; see EXPERIMENTS.md.
package eotora

import (
	"eotora/internal/core"
	"eotora/internal/energy"
	"eotora/internal/experiments"
	"eotora/internal/game"
	"eotora/internal/policy"
	"eotora/internal/sim"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// Core problem and controller types.
type (
	// System bundles the static EOTORA data: topology, energy models,
	// slot length, and budget.
	System = core.System
	// Controller is the online DPP controller (Algorithm 1).
	Controller = core.Controller
	// ControllerConfig parameterizes a Controller.
	ControllerConfig = core.ControllerConfig
	// SlotResult reports one slot's decision and metrics.
	SlotResult = core.SlotResult
	// Decision is the full per-slot decision α_t.
	Decision = core.Decision
	// Selection is the binary part (x_t, y_t) of a decision.
	Selection = core.Selection
	// Allocation is the continuous share part (Ψ_t, Φ_t).
	Allocation = core.Allocation
	// Frequencies is Ω_t, per-server per-core clock frequencies.
	Frequencies = core.Frequencies
	// BDMAConfig parameterizes Algorithm 2.
	BDMAConfig = core.BDMAConfig
	// BDMAResult is Algorithm 2's decision plus statistics.
	BDMAResult = core.BDMAResult
	// P2ASolver solves the per-slot binary subproblem.
	P2ASolver = core.P2ASolver
	// CGBASolver is the paper's congestion-game solver (Algorithm 3).
	CGBASolver = core.CGBASolver
	// MCBASolver is the MCMC baseline.
	MCBASolver = core.MCBASolver
	// RandomSolver is the ROPT baseline's selection step.
	RandomSolver = core.RandomSolver
	// OptimalSolver is the exact branch-and-bound baseline.
	OptimalSolver = core.OptimalSolver
)

// Topology types.
type (
	// Network is the static MEC topology.
	Network = topology.Network
	// NetworkSpec parameterizes random topology generation.
	NetworkSpec = topology.Spec
	// BaseStation, Room, Server, Device are topology elements.
	BaseStation = topology.BaseStation
	Room        = topology.Room
	Server      = topology.Server
	Device      = topology.Device
)

// State-generation types.
type (
	// State is the per-slot system state β_t.
	State = trace.State
	// StateSource produces consecutive states.
	StateSource = trace.Source
	// StateGenerator is the synthetic non-iid state source.
	StateGenerator = trace.Generator
	// GeneratorConfig parameterizes the state processes.
	GeneratorConfig = trace.GeneratorConfig
)

// Simulation types.
type (
	// SimConfig bounds a simulation run.
	SimConfig = sim.Config
	// Metrics holds a run's per-slot series and summaries.
	Metrics = sim.Metrics
)

// Policy-seam types (DESIGN.md §15): every slot driver programs against
// Policy, with the Controller as the flagship implementation.
type (
	// Policy is the decision-policy interface between state ingestion
	// and decision publication.
	Policy = policy.Policy
	// PolicyConfig parameterizes NewPolicy.
	PolicyConfig = policy.Config
	// TunerConfig overrides the bdma-tuned V/λ auto-tuner schedule.
	TunerConfig = policy.TunerConfig
)

// Energy-model types.
type (
	// EnergyModel is a convex per-core power function g_n(·).
	EnergyModel = energy.Model
	// QuadraticEnergy is the paper's fitted quadratic model.
	QuadraticEnergy = energy.Quadratic
	// LinearEnergy is the linear model of related work.
	LinearEnergy = energy.Linear
)

// Scenario types for paper-parameterized setups.
type (
	// Scenario is a generated paper-configuration system.
	Scenario = experiments.Scenario
	// ScenarioOptions parameterizes NewScenario.
	ScenarioOptions = experiments.ScenarioOptions
	// Figure is a reproduced evaluation plot.
	Figure = experiments.Figure
	// Per-figure configurations (see internal/experiments for the
	// Default*/Quick* constructors re-exported below).
	Fig2Config     = experiments.Fig2Config
	Fig3Config     = experiments.Fig3Config
	P2ASweepConfig = experiments.P2ASweepConfig
	Fig6Config     = experiments.Fig6Config
	Fig7Config     = experiments.Fig7Config
	Fig8Config     = experiments.Fig8Config
	Fig9Config     = experiments.Fig9Config
	AblationConfig = experiments.AblationConfig
	// RunSpec is a JSON-serializable experiment definition.
	RunSpec = experiments.RunSpec
)

// Checkpointing types.
type (
	// Checkpoint is a controller's serializable resume state.
	Checkpoint = core.Checkpoint
)

// Game types for advanced use (custom P2-A solvers).
type (
	// CongestionGame is the weighted congestion game behind P2-A.
	CongestionGame = game.Game
	// GameProfile is one strategy per player.
	GameProfile = game.Profile
)

// Quantity types.
type (
	Frequency          = units.Frequency
	DataSize           = units.DataSize
	Cycles             = units.Cycles
	SpectralEfficiency = units.SpectralEfficiency
	Power              = units.Power
	EnergyAmount       = units.Energy
	Price              = units.Price
	Money              = units.Money
	Seconds            = units.Seconds
)

// Re-exported constructors and helpers.
var (
	// NewSystem builds a System from a finalized network.
	NewSystem = core.NewSystem
	// NewController builds a DPP controller from a full config.
	NewController = core.NewController
	// NewBDMAController builds the paper's BDMA-based DPP (CGBA(λ), z
	// BDMA rounds).
	NewBDMAController = core.NewBDMAController
	// NewROPTController and NewMCBAController build the Figure 9
	// baselines.
	NewROPTController = core.NewROPTController
	NewMCBAController = core.NewMCBAController
	// NewOptimalController builds the near-optimal reference of equation
	// (30): branch-and-bound P2-A each slot (slow; budget it).
	NewOptimalController = core.NewOptimalController
	// NewScenario generates the paper's Section VI-A setup.
	NewScenario = experiments.NewScenario
	// DefaultNetworkSpec is the paper's topology parameterization.
	DefaultNetworkSpec = topology.DefaultSpec
	// DefaultGeneratorConfig is the paper's state-process configuration.
	DefaultGeneratorConfig = trace.DefaultGeneratorConfig
	// NewPolicy constructs a named decision policy ("bdma",
	// "greedy-energy", "bdma-tuned", ...; see PolicyNames).
	NewPolicy = policy.New
	// PolicyNames lists the constructible policy names.
	PolicyNames = policy.Names
	// Run simulates a policy over a state source.
	Run = sim.Run
	// RunAll simulates several policies over one shared trace.
	RunAll = sim.RunAll
	// LoadRunSpec parses a JSON experiment definition.
	LoadRunSpec = experiments.LoadRunSpec
	// ReadCheckpoint parses a controller checkpoint.
	ReadCheckpoint = core.ReadCheckpoint
	// LoadPriceCSV reads real electricity prices (e.g. NYISO exports).
	LoadPriceCSV = trace.LoadPriceCSV
	// NormalizeLevels rescales a real demand trace into [0, 1] levels.
	NormalizeLevels = trace.NormalizeLevels
)

// Figure regeneration entry points (see EXPERIMENTS.md).
var (
	Fig2 = experiments.Fig2
	Fig3 = experiments.Fig3
	Fig4 = experiments.Fig4
	Fig5 = experiments.Fig5
	Fig6 = experiments.Fig6
	Fig7 = experiments.Fig7
	Fig8 = experiments.Fig8
	Fig9 = experiments.Fig9

	// Paper-scale figure configurations (Section VI parameters).
	DefaultFig2Config     = experiments.DefaultFig2Config
	DefaultFig3Config     = experiments.DefaultFig3Config
	DefaultP2ASweepConfig = experiments.DefaultP2ASweepConfig
	DefaultFig6Config     = experiments.DefaultFig6Config
	DefaultFig7Config     = experiments.DefaultFig7Config
	DefaultFig8Config     = experiments.DefaultFig8Config
	DefaultFig9Config     = experiments.DefaultFig9Config

	// Reduced-scale configurations for quick runs and CI.
	QuickP2ASweepConfig = experiments.QuickP2ASweepConfig
	QuickFig6Config     = experiments.QuickFig6Config
	QuickFig7Config     = experiments.QuickFig7Config
	QuickFig8Config     = experiments.QuickFig8Config
	QuickFig9Config     = experiments.QuickFig9Config
)
