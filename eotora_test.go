package eotora_test

import (
	"math"
	"strings"
	"testing"

	"eotora"
)

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quickstart does: scenario → generator → controller → run → metrics.
func TestFacadeEndToEnd(t *testing.T) {
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: 10}, 42)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := eotora.NewBDMAController(sc.Sys, 100, 2, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := eotora.Run(ctrl, gen, eotora.SimConfig{Slots: 24, Warmup: 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots() != 24 {
		t.Errorf("Slots = %d, want 24", m.Slots())
	}
	if m.AvgLatency() <= 0 || math.IsNaN(m.AvgLatency()) {
		t.Errorf("AvgLatency = %v", m.AvgLatency())
	}
	if m.AvgCost() <= 0 {
		t.Errorf("AvgCost = %v", m.AvgCost())
	}
}

// TestFacadeBaselines builds every controller variant through the facade.
func TestFacadeBaselines(t *testing.T) {
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	builders := map[string]func() (*eotora.Controller, error){
		"CGBA": func() (*eotora.Controller, error) { return eotora.NewBDMAController(sc.Sys, 50, 1, 0, 1) },
		"MCBA": func() (*eotora.Controller, error) { return eotora.NewMCBAController(sc.Sys, 50, 1, 1) },
		"ROPT": func() (*eotora.Controller, error) { return eotora.NewROPTController(sc.Sys, 50, 1, 1) },
	}
	for want, build := range builders {
		ctrl, err := build()
		if err != nil {
			t.Fatalf("%s: %v", want, err)
		}
		if got := ctrl.SolverName(); got != want {
			t.Errorf("SolverName = %q, want %q", got, want)
		}
		gen, err := sc.DefaultGenerator()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ctrl.Step(gen.Next()); err != nil {
			t.Errorf("%s Step: %v", want, err)
		}
	}
}

// TestFacadeRunAll drives the Figure 9 comparison through the facade.
func TestFacadeRunAll(t *testing.T) {
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: 8, BudgetFraction: 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		t.Fatal(err)
	}
	a, err := eotora.NewBDMAController(sc.Sys, 50, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eotora.NewROPTController(sc.Sys, 50, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := eotora.RunAll([]eotora.Policy{a, b}, gen, eotora.SimConfig{Slots: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("metric sets = %d", len(ms))
	}
}

// TestFacadeFigures regenerates two figures through the facade entry points.
func TestFacadeFigures(t *testing.T) {
	fig2, err := eotora.Fig2(eotora.Fig2Config{Days: 2, Devices: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fig2.ID != "fig2" {
		t.Errorf("fig ID = %q", fig2.ID)
	}
	fig3, err := eotora.Fig3(eotora.DefaultFig3Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig3.Series) < 2 {
		t.Error("fig3 missing series")
	}
}

// TestFacadeQuantities checks unit aliases work end to end.
func TestFacadeQuantities(t *testing.T) {
	var f eotora.Frequency = 2.4e9
	if f.GigaHertz() != 2.4 {
		t.Errorf("GigaHertz = %v", f.GigaHertz())
	}
	var p eotora.Price = 50
	cost := p.Cost(3.6e9) // 1 MWh
	if math.Abs(cost.Dollars()-50) > 1e-9 {
		t.Errorf("Cost = %v", cost)
	}
}

// TestFacadeRunSpec drives the JSON run-spec pipeline through the facade.
func TestFacadeRunSpec(t *testing.T) {
	spec, err := eotora.LoadRunSpec(strings.NewReader(`{"devices": 6, "slots": 8, "z": 1, "layout": "hex"}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, gen, ctrl, cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc == nil || gen == nil || ctrl == nil || cfg.Slots != 8 {
		t.Fatalf("build outputs: %v %v %v %+v", sc, gen, ctrl, cfg)
	}
	m, err := eotora.Run(ctrl, gen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots() != 8 {
		t.Errorf("ran %d slots", m.Slots())
	}
}

// TestFacadeCheckpoint round-trips a checkpoint through the facade API.
func TestFacadeCheckpoint(t *testing.T) {
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: 6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := eotora.NewBDMAController(sc.Sys, 50, 1, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(gen.Next()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ctrl.WriteCheckpoint(&sb); err != nil {
		t.Fatal(err)
	}
	cp, err := eotora.ReadCheckpoint(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if cp.Slot != 1 {
		t.Errorf("checkpoint slot = %d, want 1", cp.Slot)
	}
	var c eotora.Checkpoint = cp // alias usable as the exported type
	_ = c
}

// TestFacadePriceCSV exercises the real-data entry points via the facade.
func TestFacadePriceCSV(t *testing.T) {
	prices, err := eotora.LoadPriceCSV(strings.NewReader("p\n42.5\n38.1\n"), "p")
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) != 2 || prices[0] != 42.5 {
		t.Errorf("prices = %v", prices)
	}
	levels, err := eotora.NormalizeLevels([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if levels[0] != 0 || levels[1] != 1 {
		t.Errorf("levels = %v", levels)
	}
}
