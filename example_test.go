package eotora_test

import (
	"fmt"
	"log"

	"eotora"
)

// Example runs the paper's BDMA-based DPP controller on a small scenario
// and reports whether the time-average energy-cost constraint held.
func Example() {
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: 10}, 42)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := eotora.NewBDMAController(sc.Sys, 100 /* V */, 2 /* z */, 0 /* λ */, 42)
	if err != nil {
		log.Fatal(err)
	}
	m, err := eotora.Run(ctrl, gen, eotora.SimConfig{Slots: 96, Warmup: 24})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("solver:", m.Solver)
	fmt.Println("within budget:", m.BudgetSatisfied(0.05))
	// Output:
	// solver: CGBA
	// within budget: true
}

// ExampleNewScenario shows the paper's Section VI-A topology dimensions.
func ExampleNewScenario() {
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: 100}, 1)
	if err != nil {
		log.Fatal(err)
	}
	stations, rooms, servers, devices := sc.Net.Counts()
	fmt.Printf("%d base stations, %d rooms, %d servers, %d devices\n",
		stations, rooms, servers, devices)
	// Output:
	// 6 base stations, 2 rooms, 16 servers, 100 devices
}

// ExampleController_Step makes a single online decision by hand.
func ExampleController_Step() {
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: 5}, 7)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := eotora.NewBDMAController(sc.Sys, 50, 1, 0, 7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ctrl.Step(gen.Next())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("slot:", res.Slot)
	fmt.Println("devices served:", len(res.PerDevice))
	fmt.Println("frequencies chosen:", len(res.Decision.Freq))
	// Output:
	// slot: 1
	// devices served: 5
	// frequencies chosen: 16
}
