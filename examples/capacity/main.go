// Capacity planning: a downstream-operator use of the library. Given a
// growing device population and a p95 per-device latency target, how many
// edge servers per room does the deployment need? The study sweeps the
// provisioning level, runs the paper's controller on each candidate, and
// reports the smallest deployment that meets the SLA.
//
// Run with:
//
//	go run ./examples/capacity
package main

import (
	"fmt"
	"log"

	"eotora"
	"eotora/internal/topology"
)

const (
	devices   = 60
	slots     = 48
	warmup    = 12
	seed      = 23
	slaP95Sec = 0.055 // 55 ms per-device p95 target
)

func main() {
	fmt.Printf("Capacity planning: %d devices, p95 SLA %.0f ms\n\n", devices, slaP95Sec*1e3)
	fmt.Printf("%16s  %10s  %12s  %12s  %8s\n", "servers/room", "p95 [ms]", "mean [ms]", "cost [$/h]", "meets")

	var chosen int
	for serversPerRoom := 2; serversPerRoom <= 8; serversPerRoom += 2 {
		p95, mean, cost, err := evaluate(serversPerRoom)
		if err != nil {
			log.Fatal(err)
		}
		meets := p95 <= slaP95Sec
		fmt.Printf("%16d  %10.1f  %12.1f  %12.3f  %8v\n",
			serversPerRoom, p95*1e3, mean*1e3, cost, meets)
		if meets && chosen == 0 {
			chosen = serversPerRoom
		}
	}
	if chosen == 0 {
		fmt.Println("\nno candidate met the SLA — provision more than 8 servers/room or relax the target")
		return
	}
	fmt.Printf("\n→ provision %d servers per room (smallest deployment meeting the SLA)\n", chosen)
}

func evaluate(serversPerRoom int) (p95, mean, cost float64, err error) {
	spec := topology.DefaultSpec(devices)
	spec.ServersPerRoom = serversPerRoom
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{
		Devices: devices,
		Spec:    &spec,
	}, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		return 0, 0, 0, err
	}
	ctrl, err := eotora.NewBDMAController(sc.Sys, 100, 3, 0, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	m, err := eotora.Run(ctrl, gen, eotora.SimConfig{
		Slots:           slots,
		Warmup:          warmup,
		RecordPerDevice: true,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	return m.DeviceLatencyQuantile(0.95), m.DeviceLatencyQuantile(0.5), m.AvgCost(), nil
}
