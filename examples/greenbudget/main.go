// Green budget: price-aware frequency scaling under a shrinking energy
// budget. The drift-plus-penalty controller shifts compute into cheap
// hours — exactly the Figure 7 phenomenon: the virtual queue charges up
// when electricity is expensive and drains when it is cheap, and the
// chosen clock frequencies follow in anti-phase with the price.
//
// Run with:
//
//	go run ./examples/greenbudget
package main

import (
	"fmt"
	"log"

	"eotora"
)

const (
	devices = 25
	days    = 5
	seed    = 3
)

func main() {
	// A deliberately tight budget: 30% into the feasible range.
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{
		Devices:        devices,
		BudgetFraction: 0.3,
	}, seed)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := eotora.NewBDMAController(sc.Sys, 50, 3, 0, seed)
	if err != nil {
		log.Fatal(err)
	}

	slots := days * 24
	var (
		priceByHour  [24]float64
		freqByHour   [24]float64
		costByHour   [24]float64
		countByHour  [24]int
		totalCost    float64
		totalBacklog float64
	)
	for t := 0; t < slots; t++ {
		st := gen.Next()
		res, err := ctrl.Step(st)
		if err != nil {
			log.Fatal(err)
		}
		h := t % 24
		priceByHour[h] += st.Price.PerMWh()
		freqByHour[h] += meanGHz(res.Decision.Freq)
		costByHour[h] += res.EnergyCost.Dollars()
		countByHour[h]++
		totalCost += res.EnergyCost.Dollars()
		totalBacklog += res.Backlog
	}

	fmt.Printf("Green budget — DVFS chasing cheap power over %d days (budget $%.3f/slot)\n\n", days, sc.Sys.Budget.Dollars())
	fmt.Printf("%5s  %14s  %16s  %12s\n", "hour", "price [$/MWh]", "mean clock [GHz]", "cost [$]")
	for h := 0; h < 24; h += 3 {
		n := float64(countByHour[h])
		fmt.Printf("%5d  %14.1f  %16.2f  %12.3f\n",
			h, priceByHour[h]/n, freqByHour[h]/n, costByHour[h]/n)
	}
	fmt.Printf("\nrealized avg cost: $%.4f per slot (budget $%.4f)\n", totalCost/float64(slots), sc.Sys.Budget.Dollars())
	fmt.Printf("avg queue backlog: %.3f\n", totalBacklog/float64(slots))
	fmt.Println("\nExpensive evening hours run lower clocks; the virtual queue spends")
	fmt.Println("its accumulated slack on cheap overnight power.")
}

func meanGHz(freq eotora.Frequencies) float64 {
	sum := 0.0
	for _, f := range freq {
		sum += f.GigaHertz()
	}
	return sum / float64(len(freq))
}
