// IoT fleet: many small-data devices under mobility. Uploads are tiny
// (0.2–1 Mb) and tasks light (10–40 mega-cycles), but the fleet moves, so
// the controller keeps re-selecting base stations as channels drift. The
// example reports how the online controller handles handovers: how often
// selections change slot-to-slot, and how latency tracks channel churn.
//
// Run with:
//
//	go run ./examples/iotfleet
package main

import (
	"fmt"
	"log"

	"eotora"
	"eotora/internal/trace"
	"eotora/internal/units"
)

const (
	devices = 50
	slots   = 72
	seed    = 11
)

func main() {
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: devices}, seed)
	if err != nil {
		log.Fatal(err)
	}

	cfg := trace.DefaultGeneratorConfig()
	cfg.Demand.TaskMin = 10 * units.MegaCycles
	cfg.Demand.TaskMax = 40 * units.MegaCycles
	cfg.Demand.DataMin = 200 * units.Kilobit
	cfg.Demand.DataMax = 1 * units.Megabit
	// Fast channel churn: weaker slot-to-slot memory, bigger fades.
	cfg.Channel.ARCoeff = 0.3
	cfg.Channel.NoiseSigma = 8

	gen, err := sc.Generator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := eotora.NewBDMAController(sc.Sys, 100, 3, 0, seed)
	if err != nil {
		log.Fatal(err)
	}

	var (
		prevStation   []int
		prevServer    []int
		bsHandovers   int
		srvMigrations int
		totalLatency  float64
	)
	fmt.Println("IoT fleet under mobility — handover behaviour of the online controller")
	fmt.Printf("%6s  %14s  %12s  %12s\n", "slot", "latency [ms]", "BS changes", "srv changes")
	for t := 1; t <= slots; t++ {
		res, err := ctrl.Step(gen.Next())
		if err != nil {
			log.Fatal(err)
		}
		bsC, srvC := 0, 0
		if prevStation != nil {
			for i := range res.Decision.Station {
				if res.Decision.Station[i] != prevStation[i] {
					bsC++
				}
				if res.Decision.Server[i] != prevServer[i] {
					srvC++
				}
			}
		}
		bsHandovers += bsC
		srvMigrations += srvC
		totalLatency += res.Latency.Value()
		prevStation = append(prevStation[:0], res.Decision.Station...)
		prevServer = append(prevServer[:0], res.Decision.Server...)
		if t%12 == 0 {
			fmt.Printf("%6d  %14.2f  %12d  %12d\n", t, res.Latency.Value()*1e3, bsC, srvC)
		}
	}
	perSlot := float64(slots - 1)
	fmt.Printf("\nfleet of %d devices over %d slots:\n", devices, slots)
	fmt.Printf("  avg total latency:      %.2f ms per slot\n", totalLatency/float64(slots)*1e3)
	fmt.Printf("  avg BS handovers:       %.1f devices/slot (%.0f%% of fleet)\n",
		float64(bsHandovers)/perSlot, 100*float64(bsHandovers)/perSlot/devices)
	fmt.Printf("  avg server migrations:  %.1f devices/slot\n", float64(srvMigrations)/perSlot)
	fmt.Println("\nThe congestion game re-balances every slot: devices chase good")
	fmt.Println("channels while the square-root allocation keeps shares fair.")
}
