// Multi-room budgets: the per-room extension of the paper's single
// energy-cost constraint. Each edge-server room runs under its own
// time-average budget with its own virtual queue — here room 0 is capped
// tightly (e.g. a site on expensive grid power) while room 1 is generous.
// The controller shifts clock frequency — and, through the congestion
// game, load — toward the cheap room.
//
// Run with:
//
//	go run ./examples/multiroom
package main

import (
	"fmt"
	"log"

	"eotora"
	"eotora/internal/units"
)

const (
	devices = 25
	slots   = 120
	seed    = 17
)

func main() {
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: devices}, seed)
	if err != nil {
		log.Fatal(err)
	}

	// Budget room 0 at 15% of its feasible cost range, room 1 at 85%.
	ref := eotora.Price(50)
	lows := sc.Sys.RoomEnergyCosts(sc.Sys.LowestFrequencies(), ref)
	highs := sc.Sys.RoomEnergyCosts(sc.Sys.HighestFrequencies(), ref)
	sc.Sys.RoomBudgets = map[int]eotora.Money{
		0: lows[0] + units.Money(0.15*float64(highs[0]-lows[0])),
		1: lows[1] + units.Money(0.85*float64(highs[1]-lows[1])),
	}

	gen, err := sc.DefaultGenerator()
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := eotora.NewBDMAController(sc.Sys, 100, 3, 0, seed)
	if err != nil {
		log.Fatal(err)
	}

	roomCost := map[int]float64{}
	roomFreq := map[int]float64{}
	roomLoad := map[int]int{}
	freqCount := map[int]int{}
	var lastBacklogs map[int]float64
	for t := 0; t < slots; t++ {
		st := gen.Next()
		res, err := ctrl.Step(st)
		if err != nil {
			log.Fatal(err)
		}
		for room, c := range sc.Sys.RoomEnergyCosts(res.Decision.Freq, st.Price) {
			roomCost[room] += c.Dollars()
		}
		for n, f := range res.Decision.Freq {
			room := sc.Sys.Net.Servers[n].Room
			roomFreq[room] += f.GigaHertz()
			freqCount[room]++
		}
		for _, n := range res.Decision.Server {
			roomLoad[sc.Sys.Net.Servers[n].Room]++
		}
		lastBacklogs = res.RoomBacklogs
	}

	fmt.Printf("Per-room energy budgets over %d slots (%d devices)\n\n", slots, devices)
	fmt.Printf("%6s  %12s  %12s  %12s  %14s  %10s\n",
		"room", "budget [$]", "avg cost [$]", "mean [GHz]", "devices/slot", "backlog")
	for _, room := range []int{0, 1} {
		fmt.Printf("%6d  %12.4f  %12.4f  %12.2f  %14.1f  %10.3f\n",
			room,
			sc.Sys.RoomBudgets[room].Dollars(),
			roomCost[room]/slots,
			roomFreq[room]/float64(freqCount[room]),
			float64(roomLoad[room])/slots,
			lastBacklogs[room],
		)
	}
	fmt.Println("\nThe tight room runs lower clocks and sheds load to the generous room;")
	fmt.Println("each room's average cost converges under its own cap.")
}
