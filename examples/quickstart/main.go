// Quickstart: build the paper's simulation scenario, run the BDMA-based
// DPP controller for two simulated days, and print the headline metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"eotora"
)

func main() {
	// The paper's Section VI-A setup: 6 base stations, 2 server rooms with
	// 8 edge servers each, here with 40 mobile devices to keep the demo
	// fast (the paper uses ~100).
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: 40}, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Non-iid system states: diurnal electricity prices, diurnal demand,
	// mobility-driven channels.
	gen, err := sc.DefaultGenerator()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's algorithm: DPP with V=100 trading latency against the
	// energy budget, BDMA with z=5 alternating rounds, CGBA(λ=0) for the
	// NP-hard selection subproblem.
	ctrl, err := eotora.NewBDMAController(sc.Sys, 100, 5, 0, 42)
	if err != nil {
		log.Fatal(err)
	}

	metrics, err := eotora.Run(ctrl, gen, eotora.SimConfig{Slots: 168, Warmup: 24})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("EOTORA quickstart — BDMA-based DPP over one simulated week")
	fmt.Printf("  budget:            $%.4f per slot\n", sc.Sys.Budget.Dollars())
	fmt.Printf("  avg total latency: %.4f s per slot\n", metrics.AvgLatency())
	fmt.Printf("  avg energy cost:   $%.4f per slot (%.1f%% of budget)\n",
		metrics.AvgCost(), 100*metrics.AvgCost()/metrics.Budget)
	fmt.Printf("  avg queue backlog: %.3f\n", metrics.AvgBacklog())
	fmt.Printf("  decision time:     %v per slot\n", metrics.AvgDecisionTime())

	if metrics.BudgetSatisfied(0.02) {
		fmt.Println("  ✓ time-average energy-cost constraint satisfied")
	} else {
		fmt.Println("  ✗ budget exceeded — increase the horizon or V")
	}
}
