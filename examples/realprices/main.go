// Real electricity prices: feed an NYISO-format CSV export into the
// simulator in place of the synthetic price process (the paper drives its
// simulations with real NYISO hourly prices). The embedded sample below
// follows the NYISO real-time market export format; point the loader at a
// downloaded file to reproduce with actual market data:
//
//	eotorasim -price-csv nyiso.csv -price-column "LBMP ($/MWHr)"
//
// Run with:
//
//	go run ./examples/realprices
package main

import (
	"fmt"
	"log"
	"strings"

	"eotora"
	"eotora/internal/trace"
)

// nyisoSample is 48 hours in the NYISO real-time export format: a cheap
// overnight trough, a morning shoulder, and an expensive evening peak.
const nyisoSample = `Time Stamp,Name,PTID,LBMP ($/MWHr)
01/01/2026 00:00,N.Y.C.,61761,28.41
01/01/2026 01:00,N.Y.C.,61761,26.03
01/01/2026 02:00,N.Y.C.,61761,24.92
01/01/2026 03:00,N.Y.C.,61761,24.15
01/01/2026 04:00,N.Y.C.,61761,24.88
01/01/2026 05:00,N.Y.C.,61761,27.30
01/01/2026 06:00,N.Y.C.,61761,33.65
01/01/2026 07:00,N.Y.C.,61761,42.18
01/01/2026 08:00,N.Y.C.,61761,48.77
01/01/2026 09:00,N.Y.C.,61761,51.24
01/01/2026 10:00,N.Y.C.,61761,49.93
01/01/2026 11:00,N.Y.C.,61761,47.15
01/01/2026 12:00,N.Y.C.,61761,45.86
01/01/2026 13:00,N.Y.C.,61761,44.92
01/01/2026 14:00,N.Y.C.,61761,45.63
01/01/2026 15:00,N.Y.C.,61761,48.19
01/01/2026 16:00,N.Y.C.,61761,55.41
01/01/2026 17:00,N.Y.C.,61761,67.88
01/01/2026 18:00,N.Y.C.,61761,78.52
01/01/2026 19:00,N.Y.C.,61761,81.07
01/01/2026 20:00,N.Y.C.,61761,74.36
01/01/2026 21:00,N.Y.C.,61761,61.49
01/01/2026 22:00,N.Y.C.,61761,45.27
01/01/2026 23:00,N.Y.C.,61761,34.81
01/02/2026 00:00,N.Y.C.,61761,29.66
01/02/2026 01:00,N.Y.C.,61761,26.88
01/02/2026 02:00,N.Y.C.,61761,25.34
01/02/2026 03:00,N.Y.C.,61761,24.71
01/02/2026 04:00,N.Y.C.,61761,25.42
01/02/2026 05:00,N.Y.C.,61761,28.19
01/02/2026 06:00,N.Y.C.,61761,35.07
01/02/2026 07:00,N.Y.C.,61761,44.25
01/02/2026 08:00,N.Y.C.,61761,50.93
01/02/2026 09:00,N.Y.C.,61761,53.11
01/02/2026 10:00,N.Y.C.,61761,51.78
01/02/2026 11:00,N.Y.C.,61761,48.66
01/02/2026 12:00,N.Y.C.,61761,47.02
01/02/2026 13:00,N.Y.C.,61761,46.38
01/02/2026 14:00,N.Y.C.,61761,47.20
01/02/2026 15:00,N.Y.C.,61761,50.12
01/02/2026 16:00,N.Y.C.,61761,58.27
01/02/2026 17:00,N.Y.C.,61761,92.45
01/02/2026 18:00,N.Y.C.,61761,103.18
01/02/2026 19:00,N.Y.C.,61761,96.60
01/02/2026 20:00,N.Y.C.,61761,79.14
01/02/2026 21:00,N.Y.C.,61761,63.02
01/02/2026 22:00,N.Y.C.,61761,47.55
01/02/2026 23:00,N.Y.C.,61761,36.29
`

func main() {
	prices, err := trace.LoadPriceCSV(strings.NewReader(nyisoSample), "LBMP ($/MWHr)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d hourly prices (min $%.2f, max $%.2f per MWh)\n\n",
		len(prices), minPrice(prices), maxPrice(prices))

	sc, err := eotora.NewScenario(eotora.ScenarioOptions{Devices: 20, BudgetFraction: 0.4}, 5)
	if err != nil {
		log.Fatal(err)
	}
	cfg := eotora.DefaultGeneratorConfig()
	cfg.PriceSeries = prices // replay the real prices cyclically
	gen, err := sc.Generator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := eotora.NewBDMAController(sc.Sys, 75, 3, 0, 5)
	if err != nil {
		log.Fatal(err)
	}

	m, err := eotora.Run(ctrl, gen, eotora.SimConfig{Slots: 96, Warmup: 24})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budget:            $%.4f per slot\n", m.Budget)
	fmt.Printf("avg energy cost:   $%.4f per slot (within budget: %v)\n",
		m.AvgCost(), m.BudgetSatisfied(0.05))
	fmt.Printf("avg total latency: %.4f s per slot\n", m.AvgLatency())

	// The DVFS response: mean clock in the cheapest vs priciest quartile
	// of hours.
	cheapF, pricyF := splitByPrice(m)
	fmt.Printf("mean processing latency in cheap hours:     %.4f s\n", cheapF)
	fmt.Printf("mean processing latency in expensive hours: %.4f s\n", pricyF)
	fmt.Println("\nExpensive real-market hours force lower clocks (higher processing")
	fmt.Println("latency); the virtual queue spends its slack on cheap hours.")
}

func minPrice(ps []eotora.Price) float64 {
	m := ps[0].PerMWh()
	for _, p := range ps[1:] {
		if p.PerMWh() < m {
			m = p.PerMWh()
		}
	}
	return m
}

func maxPrice(ps []eotora.Price) float64 {
	m := ps[0].PerMWh()
	for _, p := range ps[1:] {
		if p.PerMWh() > m {
			m = p.PerMWh()
		}
	}
	return m
}

// splitByPrice returns the mean processing latency during the cheapest and
// most expensive quartiles of slots.
func splitByPrice(m *eotora.Metrics) (cheap, pricey float64) {
	type slot struct{ price, proc float64 }
	slots := make([]slot, len(m.Price))
	for i := range m.Price {
		slots[i] = slot{price: m.Price[i], proc: m.ProcLatency[i]}
	}
	// Simple selection by sorting.
	for i := 1; i < len(slots); i++ {
		for j := i; j > 0 && slots[j].price < slots[j-1].price; j-- {
			slots[j], slots[j-1] = slots[j-1], slots[j]
		}
	}
	q := len(slots) / 4
	if q == 0 {
		q = 1
	}
	var cheapSum, priceySum float64
	for i := 0; i < q; i++ {
		cheapSum += slots[i].proc
		priceySum += slots[len(slots)-1-i].proc
	}
	return cheapSum / float64(q), priceySum / float64(q)
}
