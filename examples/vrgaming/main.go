// VR gaming: the latency-critical, compute-heavy workload the paper's
// introduction motivates. Tasks are 4× the default size (frame rendering
// at 200–800 mega-cycles) with larger uploads, under a tight energy
// budget. The example compares the paper's CGBA-driven controller against
// the ROPT baseline on per-device latency — the metric a VR session
// actually experiences — including tail latency.
//
// Run with:
//
//	go run ./examples/vrgaming
package main

import (
	"fmt"
	"log"
	"sort"

	"eotora"
	"eotora/internal/trace"
	"eotora/internal/units"
)

const (
	devices = 30
	slots   = 48
	seed    = 7
)

func main() {
	sc, err := eotora.NewScenario(eotora.ScenarioOptions{
		Devices:        devices,
		BudgetFraction: 0.35, // tight budget: DVFS pressure is real
	}, seed)
	if err != nil {
		log.Fatal(err)
	}

	// Heavy VR frames: 200–800 mega-cycles, 10–25 Mb uploads.
	cfg := trace.DefaultGeneratorConfig()
	cfg.Demand.TaskMin = 200 * units.MegaCycles
	cfg.Demand.TaskMax = 800 * units.MegaCycles
	cfg.Demand.DataMin = 10 * units.Megabit
	cfg.Demand.DataMax = 25 * units.Megabit

	fmt.Println("VR gaming offloading — per-device latency under a tight energy budget")
	fmt.Printf("%-10s  %12s  %12s  %12s  %10s\n", "controller", "mean [ms]", "p95 [ms]", "worst [ms]", "cost/budget")

	for _, build := range []func() (*eotora.Controller, error){
		func() (*eotora.Controller, error) { return eotora.NewBDMAController(sc.Sys, 200, 5, 0, seed) },
		func() (*eotora.Controller, error) { return eotora.NewROPTController(sc.Sys, 200, 5, seed) },
	} {
		ctrl, err := build()
		if err != nil {
			log.Fatal(err)
		}
		gen, err := sc.Generator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		mean, p95, worst, costRatio := drive(ctrl, gen)
		fmt.Printf("%-10s  %12.2f  %12.2f  %12.2f  %10.3f\n",
			ctrl.SolverName(), mean*1e3, p95*1e3, worst*1e3, costRatio)
	}
	fmt.Println("\nCGBA packs devices onto suitable servers and good channels; random")
	fmt.Println("selection pays for collisions with long tails.")
}

// drive steps the controller manually to collect per-device latencies (the
// sim package records only per-slot totals).
func drive(ctrl *eotora.Controller, gen eotora.StateSource) (mean, p95, worst, costRatio float64) {
	var all []float64
	var totalCost float64
	for t := 0; t < slots; t++ {
		res, err := ctrl.Step(gen.Next())
		if err != nil {
			log.Fatal(err)
		}
		for _, lb := range res.PerDevice {
			all = append(all, lb.Total().Value())
		}
		totalCost += res.EnergyCost.Dollars()
	}
	sort.Float64s(all)
	sum := 0.0
	for _, v := range all {
		sum += v
	}
	mean = sum / float64(len(all))
	p95 = all[int(0.95*float64(len(all)-1))]
	worst = all[len(all)-1]
	costRatio = totalCost / slots / ctrl.System().Budget.Dollars()
	return mean, p95, worst, costRatio
}
