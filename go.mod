module eotora

go 1.22
