module eotora

go 1.23
