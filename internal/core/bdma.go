package core

import (
	"errors"
	"fmt"
	"math"

	"eotora/internal/game"
	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/solver"
	"eotora/internal/trace"
)

// ErrSlotDeadline reports that a slot deadline expired before any feasible
// decision was produced. The controller's fallback ladder treats it as a
// signal to descend a rung (reuse the previous decision, then the greedy
// baseline); any other solver error still propagates as a hard failure.
var ErrSlotDeadline = errors.New("core: slot deadline expired before a decision was found")

// BDMAConfig parameterizes Algorithm 2.
type BDMAConfig struct {
	// Iterations is z, the number of alternating rounds (paper: z = 5 for
	// the DPP experiments). Zero selects 1, the value used by the
	// Theorem 3 proof.
	Iterations int
	// Solver solves P2-A each round; nil selects CGBA(0).
	Solver P2ASolver
}

// BDMAResult is the decision of Algorithm 2 plus solver statistics.
type BDMAResult struct {
	// Selection is (x̄_t, ȳ_t).
	Selection Selection
	// Freq is Ω̄_t.
	Freq Frequencies
	// Objective is f(x̄, ȳ, Ω̄) = V·T_t + Q·Θ.
	Objective float64
	// Latency is T_t(x̄, ȳ, Ω̄, β) in seconds summed over devices.
	Latency float64
	// Theta is Θ(Ω̄, p_t) = C_t − C̄.
	Theta float64
	// SolverIterations accumulates the P2-A solver's iterations across
	// the z rounds (the Figure 5/6 complexity metric).
	SolverIterations int
	// RoomThetas holds the per-room violations Θ_m under the per-room
	// budget extension (nil in the paper's global-budget mode).
	RoomThetas map[int]float64
	// Degraded reports that the slot deadline expired during the solve:
	// the decision is the best feasible iterate found before expiry (an
	// anytime result) and does not carry the full z-round Theorem 3
	// guarantee. Always false when no deadline is armed.
	Degraded bool
}

// BDMA runs Algorithm 2, the Benders'-decomposition-motivated alternation:
// starting from Ω = Ω^L it repeats z times — solve P2-A for (x, y) under
// the current Ω, then solve P2-B for Ω under the new (x, y) — and returns
// the best iterate under the P2 objective f = V·T_t + Q·Θ.
//
// Theorem 3: the returned decision satisfies
// V·T(ᾱ) + Q·Θ(Ω̄) ≤ R·V·T(α) + Q·Θ(Ω) for any feasible α, with
// R = 2.62·R_F/(1−8λ) and R_F = max_n F_n^U/F_n^L.
func (s *System) BDMA(st *trace.State, v, q float64, cfg BDMAConfig, src *rng.Source) (BDMAResult, error) {
	return s.bdmaScratch(st, v, q, cfg, src, nil, solveInstr{}, nil, nil)
}

// bdmaScratch is BDMA with an optional reusable P2A; the controller passes
// its per-instance scratch so steady-state slots rebuild the game arena in
// place instead of reallocating it, plus its solve instruments and its
// worker pool (nil = serial; results are bit-identical either way). dl is
// the optional slot deadline threaded down to the round checkpoints, the
// P2-A engine, and P2-B (nil never expires).
func (s *System) bdmaScratch(st *trace.State, v, q float64, cfg BDMAConfig, src *rng.Source, scratch *P2A, in solveInstr, pool *par.Pool, dl *solver.Deadline) (BDMAResult, error) {
	if q < 0 || math.IsNaN(q) {
		return BDMAResult{}, fmt.Errorf("core: BDMA needs Q ≥ 0, got %v", q)
	}
	solve := func(sel Selection, sdl *solver.Deadline) (Frequencies, error) {
		return s.solveP2B(sel, st, v, func(int) float64 { return q }, in, pool, sdl)
	}
	objective := func(sel Selection, freq Frequencies) float64 {
		return s.p2Objective(sel, freq, st, v, q, pool)
	}
	best, err := s.bdmaLoop(st, cfg, src, solve, objective, scratch, in, pool, dl)
	if err != nil {
		return BDMAResult{}, err
	}
	best.Theta = s.ThetaActive(best.Freq, st.Price, st.ServerActive)
	return best, nil
}

// bdmaLoop is the shared alternation body of Algorithm 2, parameterized by
// the P2-B solver and the P2 objective so the global-budget and per-room
// variants share one implementation. scratch, when non-nil, supplies a
// reusable P2A; round 0 rebuilds it for the slot state and later rounds
// only reweight the N compute resources (the sole Ω-dependent part of the
// game), skipping the structural rebuild entirely. in records the
// alternation's round statistics (zero value records nothing); pool is
// the intra-slot worker pool handed down to the P2-A engine (sharded
// best-response scoring) — P2-B and the objective closures captured it
// already.
//
// dl, when non-nil, is the slot deadline. Checkpoints sit at round
// boundaries, inside the P2-A engine's iteration loop, and at P2-B entry.
// On expiry the loop returns the best feasible decision found so far with
// Degraded set (the anytime contract); a truncated P2-A solve is still
// priced by a deadline-free P2-B pass — a bounded grace completion — so
// its iterate becomes a full (x, y, Ω) decision rather than being thrown
// away. ErrSlotDeadline is returned only when expiry precedes the first
// complete round, i.e. there is no decision to degrade to.
func (s *System) bdmaLoop(
	st *trace.State,
	cfg BDMAConfig,
	src *rng.Source,
	solveP2B func(Selection, *solver.Deadline) (Frequencies, error),
	objective func(Selection, Frequencies) float64,
	scratch *P2A,
	in solveInstr,
	pool *par.Pool,
	dl *solver.Deadline,
) (BDMAResult, error) {
	if err := s.CheckState(st); err != nil {
		return BDMAResult{}, err
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 1
	}
	p2aSolver := cfg.Solver
	if p2aSolver == nil {
		p2aSolver = CGBASolver{}
	}
	if scratch == nil {
		scratch = new(P2A)
	}
	scratch.SetPool(pool)
	scratch.SetDeadline(dl)

	freq := s.LowestFrequencies()
	best := BDMAResult{Objective: math.Inf(1)}
	bestRound := 0
	rounds := 0
	var warm game.Profile
	for iter := 0; iter < iters; iter++ {
		// Round-boundary checkpoint: one poll per round, so counted
		// budgets degrade identically at every pool size.
		if iter > 0 && dl.Expired() {
			best.Degraded = true
			break
		}
		var err error
		if iter == 0 {
			// ApplyChurn re-solves only the population delta against the
			// previous slot's structure; a fresh scratch falls back to the
			// full BuildP2A automatically.
			err = s.ApplyChurn(scratch, st, freq)
		} else {
			err = scratch.Reweight(freq)
		}
		if err != nil {
			return BDMAResult{}, fmt.Errorf("core: BDMA round %d: %w", iter, err)
		}
		// Rounds after the first warm-start from the previous round's
		// profile when the solver supports it: only the compute weights
		// changed since, so the old equilibrium is a near-equilibrium of
		// the new game and the best-response transient collapses. The warm
		// profile never crosses a slot boundary — churned and rebuilt
		// instances run the same rounds on the same inputs.
		var res game.Result
		var err2 error
		if ws, ok := p2aSolver.(warmStartSolver); ok && warm != nil {
			res, err2 = ws.SolveFrom(scratch, warm, src)
		} else {
			res, err2 = p2aSolver.Solve(scratch, src)
		}
		if err2 != nil {
			return BDMAResult{}, fmt.Errorf("core: BDMA round %d (%s): %w", iter, p2aSolver.Name(), err2)
		}
		warm = res.Profile
		best.SolverIterations += res.Iterations
		sel := scratch.Selection(res.Profile)

		// A truncated P2-A iterate is still a feasible profile; price it
		// with a deadline-free P2-B grace pass (bounded: N golden-section
		// solves) so the anytime result is a complete decision.
		sdl := dl
		if res.Truncated {
			best.Degraded = true
			sdl = nil
		}
		freq, err = solveP2B(sel, sdl)
		if err != nil {
			if errors.Is(err, ErrSlotDeadline) {
				best.Degraded = true
				break
			}
			return BDMAResult{}, fmt.Errorf("core: BDMA round %d: %w", iter, err)
		}

		rounds++
		if obj := objective(sel, freq); obj < best.Objective {
			best.Objective = obj
			best.Selection = sel.Clone()
			best.Freq = freq.Clone()
			bestRound = iter + 1
		}
		if res.Truncated {
			break
		}
	}
	if best.Selection.Station == nil {
		if best.Degraded {
			return BDMAResult{}, fmt.Errorf("core: BDMA: %w", ErrSlotDeadline)
		}
		return BDMAResult{}, errors.New("core: BDMA produced no decision")
	}
	in.bdmaRounds.Add(int64(rounds))
	in.bdmaBestRound.Observe(float64(bestRound))
	best.Latency = s.reducedLatency(best.Selection, best.Freq, st, pool).Value()
	return best, nil
}

// ApproxRatio returns the R of Theorem 3 for this system and λ:
// R = 2.62·R_F/(1−8λ), with R_F the largest frequency-range ratio.
func (s *System) ApproxRatio(lambda float64) (float64, error) {
	if lambda < 0 || lambda >= 0.125 {
		return 0, fmt.Errorf("core: λ = %v outside [0, 0.125)", lambda)
	}
	rf := 0.0
	for n := range s.Net.Servers {
		r := float64(s.Net.Servers[n].MaxFreq) / float64(s.Net.Servers[n].MinFreq)
		if r > rf {
			rf = r
		}
	}
	return 2.62 * rf / (1 - 8*lambda), nil
}
