package core

import (
	"fmt"
	"testing"

	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/trace"
)

func benchSystem(b *testing.B, devices int) (*System, *trace.Generator) {
	b.Helper()
	src := rng.New(1)
	net, err := topology.Generate(topology.DefaultSpec(devices), src.Derive("net"))
	if err != nil {
		b.Fatal(err)
	}
	models := DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
	sys, err := NewSystem(net, models, 3600, 1)
	if err != nil {
		b.Fatal(err)
	}
	low := sys.EnergyCost(sys.LowestFrequencies(), 50)
	high := sys.EnergyCost(sys.HighestFrequencies(), 50)
	sys.Budget = (low + high) / 2
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return sys, gen
}

// benchMetroSystem is benchSystem on the metro preset — the wide gridded
// topology whose station–room graph decomposes into ~25 resource-disjoint
// clusters (topology.MetroSpec), the setting the sharded solve targets.
func benchMetroSystem(b *testing.B, devices int) (*System, *trace.Generator) {
	b.Helper()
	src := rng.New(1)
	net, err := topology.Generate(topology.MetroSpec(devices), src.Derive("net"))
	if err != nil {
		b.Fatal(err)
	}
	models := DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
	sys, err := NewSystem(net, models, 3600, 1)
	if err != nil {
		b.Fatal(err)
	}
	low := sys.EnergyCost(sys.LowestFrequencies(), 50)
	high := sys.EnergyCost(sys.HighestFrequencies(), 50)
	sys.Budget = (low + high) / 2
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return sys, gen
}

// BenchmarkControllerStepSharded is the metro-scale headline pair: full
// slots on the metro topology with the per-cluster sharded solve
// (shards=auto) against the unsharded path on the identical system and
// trace. z=2 and λ=0.05 are the metro operating point (OPERATIONS.md):
// the λ slack is what arms the drift-bound sweep pruning, and the
// unsharded 100k solve is far too slow to time, so the off mode stops at
// 10k. The name matches the bench-gate regexp (ControllerStep).
func BenchmarkControllerStepSharded(b *testing.B) {
	for _, devices := range []int{1000, 10000, 100000} {
		for _, mode := range []struct {
			name   string
			shards int
		}{{"off", 0}, {"auto", ShardsAuto}} {
			if devices == 100000 && mode.shards == 0 {
				continue
			}
			b.Run(fmt.Sprintf("devices=%d/shards=%s", devices, mode.name), func(b *testing.B) {
				sys, gen := benchMetroSystem(b, devices)
				ctrl, err := NewBDMAController(sys, 100, 2, 0.05, 1)
				if err != nil {
					b.Fatal(err)
				}
				if mode.shards != 0 {
					if err := ctrl.SetShards(mode.shards); err != nil {
						b.Fatal(err)
					}
				}
				// Metro states are large (100k × 49 channel rows); two still
				// alternate enough to defeat cross-slot caching artifacts.
				states := trace.Record(gen, 2)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ctrl.Step(states[i%len(states)]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkControllerStep(b *testing.B) {
	for _, devices := range []int{25, 50, 100, 300, 1000, 10000} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			sys, gen := benchSystem(b, devices)
			ctrl, err := NewBDMAController(sys, 100, 5, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			// Metro-scale states are expensive to record; 8 still cycles
			// the trace enough to defeat cross-slot caching artifacts.
			recorded := 32
			if devices >= 1000 {
				recorded = 8
			}
			states := trace.Record(gen, recorded)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctrl.Step(states[i%len(states)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkControllerStepPar is BenchmarkControllerStep with a
// GOMAXPROCS-sized worker pool attached — the benchstat pair for the
// serial-vs-parallel speedup table in README.md. Decisions are
// bit-identical to the serial run (TestControllerPoolMatrix), so the
// pair isolates pure scheduling cost/benefit.
func BenchmarkControllerStepPar(b *testing.B) {
	for _, devices := range []int{25, 50, 100, 300} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			sys, gen := benchSystem(b, devices)
			ctrl, err := NewBDMAController(sys, 100, 5, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			pool := par.New(0)
			defer pool.Close()
			ctrl.SetPool(pool)
			states := trace.Record(gen, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctrl.Step(states[i%len(states)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkControllerStepObs is BenchmarkControllerStep with a live obs
// registry attached — the -benchmem pair for the observability overhead
// budget: within ~5% of the uninstrumented run and zero additional
// allocations per slot from obs itself.
func BenchmarkControllerStepObs(b *testing.B) {
	for _, devices := range []int{25, 50, 100} {
		b.Run(fmt.Sprintf("devices=%d", devices), func(b *testing.B) {
			sys, gen := benchSystem(b, devices)
			ctrl, err := NewBDMAController(sys, 100, 5, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			ctrl.SetObs(obs.New())
			states := trace.Record(gen, 32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctrl.Step(states[i%len(states)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBDMA(b *testing.B) {
	sys, gen := benchSystem(b, 100)
	st := gen.Next()
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.BDMA(st, 100, 10, BDMAConfig{Iterations: 5}, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewP2A(b *testing.B) {
	sys, gen := benchSystem(b, 100)
	st := gen.Next()
	freq := sys.LowestFrequencies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.NewP2A(st, freq); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveP2B(b *testing.B) {
	sys, gen := benchSystem(b, 100)
	st := gen.Next()
	sel := feasibleSelection(b, sys, st, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SolveP2B(sel, st, 100, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveP2BPar shards the per-server golden-section solves over
// a GOMAXPROCS-sized pool.
func BenchmarkSolveP2BPar(b *testing.B) {
	sys, gen := benchSystem(b, 100)
	st := gen.Next()
	sel := feasibleSelection(b, sys, st, 1)
	pool := par.New(0)
	defer pool.Close()
	qOf := func(int) float64 { return 10 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.solveP2B(sel, st, 100, qOf, solveInstr{}, pool, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReducedLatency(b *testing.B) {
	sys, gen := benchSystem(b, 100)
	st := gen.Next()
	sel := feasibleSelection(b, sys, st, 2)
	freq := sys.LowestFrequencies()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.ReducedLatency(sel, freq, st)
	}
}

func BenchmarkOptimalAllocation(b *testing.B) {
	sys, gen := benchSystem(b, 100)
	st := gen.Next()
	sel := feasibleSelection(b, sys, st, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.OptimalAllocation(sel, st)
	}
}
