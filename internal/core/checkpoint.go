package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"eotora/internal/lyapunov"
	"eotora/internal/units"
)

// Checkpoint is the serializable resume state of a Controller. Because the
// controller derives its per-slot randomness from (Seed, slot), the
// checkpoint needs only the slot counter and the virtual-queue backlog to
// resume bit-identically; the configuration fields are included to detect
// mismatched restores.
type Checkpoint struct {
	// Slot is the last completed slot index.
	Slot int `json:"slot"`
	// Backlog is the virtual-queue backlog Q(Slot+1).
	Backlog float64 `json:"backlog"`
	// V is the controller's penalty weight (restore guard).
	V float64 `json:"v"`
	// Solver names the P2-A solver (restore guard).
	Solver string `json:"solver"`
	// Seed is the controller's randomness seed (restore guard).
	Seed int64 `json:"seed"`
	// RoomBacklogs holds per-room backlogs in per-room budget mode; nil
	// otherwise.
	RoomBacklogs map[int]float64 `json:"room_backlogs,omitempty"`
	// PrevStation/PrevServer/PrevFreq carry the previous slot's decision
	// backing the RungPrevious fallback, so a controller restored under a
	// slot deadline can still re-price the pre-restart decision instead
	// of dropping straight to the greedy rung on its first deadline miss.
	// Empty on controllers that never armed a deadline (the fields are
	// only maintained when a slot budget is configured).
	PrevStation []int `json:"prev_station,omitempty"`
	// PrevServer mirrors PrevStation for the server choice.
	PrevServer []int `json:"prev_server,omitempty"`
	// PrevFreq holds the previous slot's frequency vector in Hz.
	PrevFreq []float64 `json:"prev_freq,omitempty"`
	// Extra carries policy-wrapper state (internal/policy): the online
	// auto-tuner records its adapted knobs and window accumulators here.
	// The Controller itself never writes or reads it, so plain-bdma
	// checkpoints serialize exactly as before the policy seam existed.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Checkpoint captures the controller's resume state.
func (c *Controller) Checkpoint() Checkpoint {
	cp := Checkpoint{
		Slot:    c.slot,
		Backlog: c.dpp.Queue.Backlog(),
		V:       c.cfg.V,
		Solver:  c.SolverName(),
		Seed:    c.cfg.Seed,
	}
	if c.rooms != nil {
		cp.RoomBacklogs = c.rooms.Backlogs()
		cp.Backlog = c.rooms.TotalBacklog()
	}
	if c.havePrev {
		cp.PrevStation = append([]int(nil), c.prevSel.Station...)
		cp.PrevServer = append([]int(nil), c.prevSel.Server...)
		cp.PrevFreq = make([]float64, len(c.prevFreq))
		for n, f := range c.prevFreq {
			cp.PrevFreq[n] = float64(f)
		}
	}
	return cp
}

// Restore rewinds (or fast-forwards) the controller to a checkpoint taken
// from a controller with identical configuration. It fails when V, the
// solver, or the seed differ — resuming under a different configuration
// would silently change the experiment.
func (c *Controller) Restore(cp Checkpoint) error {
	switch {
	case cp.Slot < 0:
		return fmt.Errorf("core: checkpoint slot %d negative", cp.Slot)
	case cp.Backlog < 0:
		return fmt.Errorf("core: checkpoint backlog %v negative", cp.Backlog)
	case cp.V != c.cfg.V:
		return fmt.Errorf("core: checkpoint V = %v, controller V = %v", cp.V, c.cfg.V)
	case cp.Solver != c.SolverName():
		return fmt.Errorf("core: checkpoint solver %q, controller %q", cp.Solver, c.SolverName())
	case cp.Seed != c.cfg.Seed:
		return fmt.Errorf("core: checkpoint seed %d, controller seed %d", cp.Seed, c.cfg.Seed)
	case len(cp.Extra) != 0:
		return errors.New("core: checkpoint carries policy-wrapper state; restore it through the owning policy")
	}
	if (cp.RoomBacklogs != nil) != (c.rooms != nil) {
		return errors.New("core: checkpoint budget mode differs from controller")
	}
	if c.rooms != nil {
		for room, backlog := range cp.RoomBacklogs {
			if backlog < 0 {
				return fmt.Errorf("core: checkpoint room %d backlog %v negative", room, backlog)
			}
			c.rooms.Set(room, backlog)
		}
	}
	if len(cp.PrevStation) != len(cp.PrevServer) {
		return fmt.Errorf("core: checkpoint previous decision has %d stations, %d servers",
			len(cp.PrevStation), len(cp.PrevServer))
	}
	c.slot = cp.Slot
	// Rebuild the scalar queue at the recorded backlog (unused but kept
	// consistent in per-room mode).
	c.dpp.Queue = lyapunov.NewQueue(cp.Backlog)
	// Rehydrate the RungPrevious fallback state, reusing capacity like
	// the per-slot path does.
	c.havePrev = len(cp.PrevStation) > 0
	c.prevSel.Station = append(c.prevSel.Station[:0], cp.PrevStation...)
	c.prevSel.Server = append(c.prevSel.Server[:0], cp.PrevServer...)
	c.prevFreq = c.prevFreq[:0]
	for _, f := range cp.PrevFreq {
		c.prevFreq = append(c.prevFreq, units.Frequency(f))
	}
	return nil
}

// WriteCheckpoint serializes the controller's checkpoint as JSON.
func (c *Controller) WriteCheckpoint(w io.Writer) error {
	return WriteCheckpointTo(w, c.Checkpoint())
}

// WriteCheckpointTo serializes cp as indented JSON — the format
// ReadCheckpoint parses. Drivers working through the policy seam use it
// to persist any policy's Checkpoint(), not just a Controller's.
func WriteCheckpointTo(w io.Writer, cp Checkpoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp)
}

// ReadCheckpoint parses a checkpoint written by WriteCheckpoint.
func ReadCheckpoint(r io.Reader) (Checkpoint, error) {
	var cp Checkpoint
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cp); err != nil {
		return Checkpoint{}, fmt.Errorf("core: decoding checkpoint: %w", err)
	}
	return cp, nil
}
