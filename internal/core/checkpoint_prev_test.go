package core

import (
	"math"
	"strings"
	"testing"
)

// TestCheckpointCarriesPreviousDecision asserts the RungPrevious
// continuity state survives a checkpoint/restore: a controller running
// under a counted slot budget checkpoints its previous decision, a fresh
// controller restores it, and a post-restore reprice reproduces the
// uninterrupted twin's reprice bit for bit — instead of failing for want
// of a previous decision and dropping the ladder straight to greedy.
func TestCheckpointCarriesPreviousDecision(t *testing.T) {
	sysA, genA := buildSystem(t, 10, 81)
	sysB, genB := buildSystem(t, 10, 81)
	ctrlA, err := NewBDMAController(sysA, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctrlB, err := NewBDMAController(sysB, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	// A generous counted budget arms the ladder (so the previous decision
	// is maintained) without ever degrading the warmup slots.
	ctrlA.SetSlotDeadline(0, 1<<30)
	ctrlB.SetSlotDeadline(0, 1<<30)

	for slot := 0; slot < 3; slot++ {
		genB.Next()
		if _, err := ctrlA.Step(genA.Next()); err != nil {
			t.Fatal(err)
		}
	}
	cp := ctrlA.Checkpoint()
	if len(cp.PrevStation) == 0 || len(cp.PrevServer) != len(cp.PrevStation) || len(cp.PrevFreq) == 0 {
		t.Fatalf("checkpoint previous decision empty: %d stations, %d servers, %d freqs",
			len(cp.PrevStation), len(cp.PrevServer), len(cp.PrevFreq))
	}
	// Without the restore, a fresh controller has no previous decision and
	// the RungPrevious rung is unreachable.
	stA, stB := genA.Next(), genB.Next()
	if _, err := ctrlB.repriceDecision(stB); err == nil {
		t.Fatal("fresh controller repriced without a previous decision")
	}
	if err := ctrlB.Restore(cp); err != nil {
		t.Fatal(err)
	}

	resA, err := ctrlA.repriceDecision(stA)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := ctrlB.repriceDecision(stB)
	if err != nil {
		t.Fatalf("restored controller failed to reprice: %v", err)
	}
	if math.Float64bits(resA.Objective) != math.Float64bits(resB.Objective) {
		t.Fatalf("repriced objectives diverge: %v, %v", resA.Objective, resB.Objective)
	}
	for i := range resA.Selection.Station {
		if resA.Selection.Station[i] != resB.Selection.Station[i] ||
			resA.Selection.Server[i] != resB.Selection.Server[i] {
			t.Fatalf("device %d repriced selections diverge", i)
		}
	}
	for n := range resA.Freq {
		if resA.Freq[n] != resB.Freq[n] {
			t.Fatalf("server %d repriced frequencies diverge", n)
		}
	}
}

// TestRestoreRejectsMismatchedPreviousDecision asserts the checkpoint
// guard on ragged previous-decision vectors.
func TestRestoreRejectsMismatchedPreviousDecision(t *testing.T) {
	sys, gen := buildSystem(t, 8, 83)
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(gen.Next()); err != nil {
		t.Fatal(err)
	}
	cp := ctrl.Checkpoint()
	cp.PrevStation = []int{1, 2}
	cp.PrevServer = []int{1}
	if err := ctrl.Restore(cp); err == nil || !strings.Contains(err.Error(), "previous decision") {
		t.Fatalf("ragged previous decision accepted: %v", err)
	}
}
