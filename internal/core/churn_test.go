package core

import (
	"math"
	"testing"

	"eotora/internal/game"
	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// aggressiveChurn returns a churn regime hot enough that a short test run
// sees joins, leaves, handovers, and server add/remove events.
func aggressiveChurn(seed int64) trace.ChurnConfig {
	return trace.ChurnConfig{
		Seed:                  seed,
		DeviceJoinProb:        0.30,
		DeviceLeaveProb:       0.30,
		HandoverProb:          0.20,
		ServerRemoveProb:      0.25,
		ServerAddProb:         0.25,
		MinActiveDevices:      1,
		InitialActiveFraction: 0.8,
	}
}

// pinnedSource replays one base state through fresh shallow copies, so the
// only slot-to-slot differences are the churn deltas layered on top — the
// slow-inputs regime the incremental ApplyChurn path is built for.
type pinnedSource struct {
	base *trace.State
	slot int
}

var _ trace.Source = (*pinnedSource)(nil)

func (s *pinnedSource) Next() *trace.State {
	st := *s.base
	// Fresh top-level channel slice: the churn schedule's copy-on-write
	// handover edits must not leak back into the shared base rows.
	st.Channels = append([][]units.SpectralEfficiency(nil), s.base.Channels...)
	s.slot++
	st.Slot = s.slot
	return &st
}

func (s *pinnedSource) Period() int { return 1 }

// midFrequencies returns a vector strictly inside every server's range,
// distinct from LowestFrequencies, for exercising reweight paths.
func midFrequencies(sys *System) Frequencies {
	freq := make(Frequencies, len(sys.Net.Servers))
	for n := range freq {
		srv := &sys.Net.Servers[n]
		freq[n] = srv.MinFreq + (srv.MaxFreq-srv.MinFreq)/3
	}
	return freq
}

// requireSameGame fails when the two built P2A instances differ anywhere a
// solver or the controller can see: dimensions, per-player strategy
// structure and uses, resource weights, or the strategy → (station,
// server) mapping.
func requireSameGame(t testing.TB, slot int, inc, fresh *P2A) {
	t.Helper()
	a, b := inc.Game(), fresh.Game()
	if a.Players() != b.Players() || a.Resources() != b.Resources() {
		t.Fatalf("slot %d: dims (%d players, %d resources), fresh (%d, %d)",
			slot, a.Players(), a.Resources(), b.Players(), b.Resources())
	}
	for i := 0; i < a.Players(); i++ {
		if a.StrategyCount(i) != b.StrategyCount(i) {
			t.Fatalf("slot %d: player %d has %d strategies, fresh %d",
				slot, i, a.StrategyCount(i), b.StrategyCount(i))
		}
		for s := 0; s < a.StrategyCount(i); s++ {
			ua, ub := a.StrategyUses(i, s), b.StrategyUses(i, s)
			if len(ua) != len(ub) {
				t.Fatalf("slot %d: player %d strategy %d has %d uses, fresh %d",
					slot, i, s, len(ua), len(ub))
			}
			for k := range ua {
				if ua[k].Resource != ub[k].Resource ||
					math.Float64bits(ua[k].Weight) != math.Float64bits(ub[k].Weight) {
					t.Fatalf("slot %d: player %d strategy %d use %d: %+v, fresh %+v",
						slot, i, s, k, ua[k], ub[k])
				}
			}
		}
	}
	for r := 0; r < a.Resources(); r++ {
		if math.Float64bits(a.ResourceWeight(r)) != math.Float64bits(b.ResourceWeight(r)) {
			t.Fatalf("slot %d: resource %d weight %v, fresh %v",
				slot, r, a.ResourceWeight(r), b.ResourceWeight(r))
		}
	}
	// The pair mapping must agree: every profile decodes to the same
	// universe-sized selection and round-trips through Profile.
	profile := make(game.Profile, a.Players())
	selA, selB := inc.Selection(profile), fresh.Selection(profile)
	for i := range selA.Station {
		if selA.Station[i] != selB.Station[i] || selA.Server[i] != selB.Server[i] {
			t.Fatalf("slot %d: device %d decodes to (%d, %d), fresh (%d, %d)",
				slot, i, selA.Station[i], selA.Server[i], selB.Station[i], selB.Server[i])
		}
	}
	back, err := inc.Profile(selA)
	if err != nil {
		t.Fatalf("slot %d: incremental Profile round trip: %v", slot, err)
	}
	for i := range profile {
		if back[i] != profile[i] {
			t.Fatalf("slot %d: profile round trip %v → %v", slot, profile, back)
		}
	}
}

// requireSameSolve runs CGBA on both instances with identical seeds and
// requires bit-identical results — the incremental engine carries caches
// across mutations, the fresh one starts cold, and neither may influence
// the outcome.
func requireSameSolve(t testing.TB, slot int, inc, fresh *P2A, seed int64) {
	t.Helper()
	ra, err := (CGBASolver{}).Solve(inc, rng.New(seed))
	if err != nil {
		t.Fatalf("slot %d: incremental CGBA: %v", slot, err)
	}
	rb, err := (CGBASolver{}).Solve(fresh, rng.New(seed))
	if err != nil {
		t.Fatalf("slot %d: fresh CGBA: %v", slot, err)
	}
	if math.Float64bits(ra.Objective) != math.Float64bits(rb.Objective) || ra.Iterations != rb.Iterations {
		t.Fatalf("slot %d: incremental CGBA (%v, %d), fresh (%v, %d)",
			slot, ra.Objective, ra.Iterations, rb.Objective, rb.Iterations)
	}
	for i := range ra.Profile {
		if ra.Profile[i] != rb.Profile[i] {
			t.Fatalf("slot %d: CGBA profiles diverge at player %d", slot, i)
		}
	}
}

// TestZeroChurnBitIdentity is acceptance criterion (a): a churn schedule
// with every probability zero and a full initial population is a bit-exact
// passthrough, so controller runs over it match plain-source runs slot for
// slot — decisions, latency, cost, and backlog — at every pool size.
func TestZeroChurnBitIdentity(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		sysA, genA := buildSystem(t, 16, 51)
		sysB, genB := buildSystem(t, 16, 51)
		sched, err := trace.NewChurnSchedule(trace.ChurnConfig{
			Seed:                  5,
			MinActiveDevices:      1,
			InitialActiveFraction: 1,
		}, sysA.Net, genA)
		if err != nil {
			t.Fatal(err)
		}
		ctrlA, err := NewBDMAController(sysA, 120, 3, 0.05, 17)
		if err != nil {
			t.Fatal(err)
		}
		ctrlB, err := NewBDMAController(sysB, 120, 3, 0.05, 17)
		if err != nil {
			t.Fatal(err)
		}
		if workers > 0 {
			pool := par.New(workers)
			ctrlA.SetPool(pool)
			defer pool.Close()
		}
		for slot := 0; slot < 8; slot++ {
			st := sched.Next()
			if st.DeviceActive != nil || st.ServerActive != nil || st.Churn != nil {
				t.Fatalf("workers %d slot %d: zero churn published masks/events", workers, slot)
			}
			ra, err := ctrlA.Step(st)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := ctrlB.Step(genB.Next())
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(ra.Latency.Value()) != math.Float64bits(rb.Latency.Value()) ||
				math.Float64bits(ra.EnergyCost.Dollars()) != math.Float64bits(rb.EnergyCost.Dollars()) ||
				math.Float64bits(ra.Backlog) != math.Float64bits(rb.Backlog) {
				t.Fatalf("workers %d slot %d: churned run (%v, %v, %v), plain (%v, %v, %v)",
					workers, slot, ra.Latency, ra.EnergyCost, ra.Backlog, rb.Latency, rb.EnergyCost, rb.Backlog)
			}
			for i := range ra.Decision.Station {
				if ra.Decision.Station[i] != rb.Decision.Station[i] ||
					ra.Decision.Server[i] != rb.Decision.Server[i] {
					t.Fatalf("workers %d slot %d: decisions diverge at device %d", workers, slot, i)
				}
			}
		}
	}
}

// TestApplyChurnMatchesRebuild is acceptance criterion (b) in the
// fast-varying regime: every slot redraws tasks, data, and channels, so
// ApplyChurn's keep test fails for most devices and the mutation merge
// restreams them. The committed game, pair mapping, and solver results
// must still be bit-identical to a from-scratch build.
func TestApplyChurnMatchesRebuild(t *testing.T) {
	sys, gen := buildSystem(t, 24, 52)
	sched, err := trace.NewChurnSchedule(aggressiveChurn(19), sys.Net, gen)
	if err != nil {
		t.Fatal(err)
	}
	states := trace.Record(sched, 24)
	low, mid := sys.LowestFrequencies(), midFrequencies(sys)

	inc := new(P2A)
	churnSlots := 0
	for slot, st := range states {
		freq := low
		if slot%3 == 1 {
			freq = mid
		}
		if err := sys.ApplyChurn(inc, st, freq); err != nil {
			t.Fatalf("slot %d: ApplyChurn: %v", slot, err)
		}
		fresh, err := sys.NewP2A(st, freq)
		if err != nil {
			t.Fatalf("slot %d: NewP2A: %v", slot, err)
		}
		requireSameGame(t, slot, inc, fresh)
		requireSameSolve(t, slot, inc, fresh, int64(900+slot))
		if len(st.Churn) > 0 {
			churnSlots++
		}
	}
	if churnSlots == 0 {
		t.Fatal("churn never fired; the equivalence property was tested vacuously")
	}
}

// TestApplyChurnKeepPathMatchesRebuild is criterion (b) in the
// slow-varying regime: the base state is pinned, so churn deltas are the
// only slot-to-slot difference and ApplyChurn keeps untouched players
// verbatim (including whole fullKeep slots that reduce to a Reweight).
// The kept spans, caches, and mappings must be indistinguishable from a
// fresh build.
func TestApplyChurnKeepPathMatchesRebuild(t *testing.T) {
	sys, gen := buildSystem(t, 24, 57)
	base := gen.Next()
	// Mild enough that some slots stay event-free (fullKeep → Reweight),
	// hot enough that keeps, drops, joins, and server events all occur.
	mild := trace.ChurnConfig{
		Seed:                  23,
		DeviceJoinProb:        0.03,
		DeviceLeaveProb:       0.03,
		HandoverProb:          0.02,
		ServerRemoveProb:      0.05,
		ServerAddProb:         0.05,
		MinActiveDevices:      1,
		InitialActiveFraction: 0.9,
	}
	sched, err := trace.NewChurnSchedule(mild, sys.Net, &pinnedSource{base: base})
	if err != nil {
		t.Fatal(err)
	}
	states := trace.Record(sched, 40)
	low, mid := sys.LowestFrequencies(), midFrequencies(sys)

	inc := new(P2A)
	churnSlots, quietSlots := 0, 0
	for slot, st := range states {
		freq := low
		if slot%2 == 1 {
			freq = mid
		}
		if err := sys.ApplyChurn(inc, st, freq); err != nil {
			t.Fatalf("slot %d: ApplyChurn: %v", slot, err)
		}
		fresh, err := sys.NewP2A(st, freq)
		if err != nil {
			t.Fatalf("slot %d: NewP2A: %v", slot, err)
		}
		requireSameGame(t, slot, inc, fresh)
		requireSameSolve(t, slot, inc, fresh, int64(700+slot))
		if len(st.Churn) > 0 {
			churnSlots++
		} else {
			quietSlots++
		}
	}
	if churnSlots == 0 || quietSlots == 0 {
		t.Fatalf("want both churn and quiet slots, got %d churned / %d quiet", churnSlots, quietSlots)
	}
}

// TestApplyChurnFallback checks the automatic degradation to BuildP2A: a
// fresh P2A has no snapshot, and a P2A built under another system must not
// trust its snapshot. The method form additionally rejects a P2A that was
// never built.
func TestApplyChurnFallback(t *testing.T) {
	sysA, genA := buildSystem(t, 10, 58)
	sysB, _ := buildSystem(t, 10, 59)
	st := genA.Next()
	freq := sysA.LowestFrequencies()

	var unbuilt P2A
	if err := unbuilt.ApplyChurn(st, freq); err == nil {
		t.Error("ApplyChurn on an unbuilt P2A succeeded")
	}

	fresh := new(P2A)
	if err := sysA.ApplyChurn(fresh, st, freq); err != nil {
		t.Fatalf("ApplyChurn on a snapshot-free P2A: %v", err)
	}
	want, err := sysA.NewP2A(st, freq)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGame(t, 0, fresh, want)

	// Built under sysA, applied under sysB: must rebuild, not merge.
	if err := sysB.ApplyChurn(fresh, st, freq); err != nil {
		t.Fatalf("ApplyChurn across systems: %v", err)
	}
	wantB, err := sysB.NewP2A(st, freq)
	if err != nil {
		t.Fatal(err)
	}
	requireSameGame(t, 0, fresh, wantB)
}

// TestSelectionProfileChurnRoundTrip covers the population-aware
// Selection/Profile pair: inactive devices decode to (-1, -1) and are
// ignored on the way back, active devices round-trip exactly, and an
// active device forced to (-1, -1) is rejected.
func TestSelectionProfileChurnRoundTrip(t *testing.T) {
	sys, gen := buildSystem(t, 12, 53)
	st := gen.Next()
	mask := make([]bool, 12)
	for i := range mask {
		mask[i] = true
	}
	mask[2], mask[7] = false, false
	st.DeviceActive = mask

	p, err := sys.NewP2A(st, sys.LowestFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	g := p.Game()
	if g.Players() != 10 {
		t.Fatalf("10 active devices produced %d players", g.Players())
	}
	src := rng.New(61)
	profile := make(game.Profile, g.Players())
	for trial := 0; trial < 32; trial++ {
		for i := range profile {
			profile[i] = src.Intn(g.StrategyCount(i))
		}
		sel := p.Selection(profile)
		if len(sel.Station) != 12 || len(sel.Server) != 12 {
			t.Fatalf("selection sized (%d, %d), want universe 12", len(sel.Station), len(sel.Server))
		}
		for _, i := range []int{2, 7} {
			if sel.Station[i] != -1 || sel.Server[i] != -1 {
				t.Fatalf("inactive device %d decoded to (%d, %d)", i, sel.Station[i], sel.Server[i])
			}
		}
		back, err := p.Profile(sel)
		if err != nil {
			t.Fatal(err)
		}
		for i := range profile {
			if back[i] != profile[i] {
				t.Fatalf("round trip %v → %v", profile, back)
			}
		}
		// Inactive entries are dead on the way back in: junk there must
		// not disturb the conversion.
		junk := sel.Clone()
		junk.Station[2], junk.Server[2] = 99, 99
		if _, err := p.Profile(junk); err != nil {
			t.Fatalf("Profile read an inactive device's entry: %v", err)
		}
	}
	sel := p.Selection(make(game.Profile, g.Players()))
	sel.Station[0], sel.Server[0] = -1, -1
	if _, err := p.Profile(sel); err == nil {
		t.Error("Profile accepted (-1, -1) for an active device")
	}
}

// TestResizeHelpersShrinkGrow exercises the slice helpers that carry the
// churn traffic: resizeNegInt32 must return all −1 entries at every
// length, including regrowth over a dirty backing array, and
// resizeBoolSlice must honor the requested length.
func TestResizeHelpersShrinkGrow(t *testing.T) {
	s := resizeNegInt32(nil, 4)
	if len(s) != 4 {
		t.Fatalf("len %d, want 4", len(s))
	}
	for i := range s {
		s[i] = int32(i) // dirty the backing array
	}
	s = resizeNegInt32(s, 2)
	if len(s) != 2 || s[0] != -1 || s[1] != -1 {
		t.Fatalf("after shrink: %v", s)
	}
	s = resizeNegInt32(s, 4) // regrow within the dirty capacity
	if len(s) != 4 {
		t.Fatalf("len %d, want 4", len(s))
	}
	for i, v := range s {
		if v != -1 {
			t.Fatalf("entry %d = %d after regrow, want -1", i, v)
		}
	}
	s = resizeNegInt32(s, 129) // beyond capacity
	if len(s) != 129 {
		t.Fatalf("len %d, want 129", len(s))
	}
	for i, v := range s {
		if v != -1 {
			t.Fatalf("entry %d = %d after growth, want -1", i, v)
		}
	}
	if s = resizeNegInt32(s, 0); len(s) != 0 {
		t.Fatalf("len %d, want 0", len(s))
	}

	b := resizeBoolSlice(nil, 3)
	if len(b) != 3 {
		t.Fatalf("bool len %d, want 3", len(b))
	}
	prev := &b[0]
	b = resizeBoolSlice(b, 2)
	if len(b) != 2 || &b[0] != prev {
		t.Fatalf("bool shrink reallocated (len %d)", len(b))
	}
	b = resizeBoolSlice(b, 3)
	if len(b) != 3 || &b[0] != prev {
		t.Fatalf("bool regrow within capacity reallocated (len %d)", len(b))
	}
	if b = resizeBoolSlice(b, 64); len(b) != 64 {
		t.Fatalf("bool len %d, want 64", len(b))
	}
}

// TestRepriceRemovedServer is the Previous-rung regression for structural
// removal: after a decided slot, the next state removes a server the
// previous selection used. repriceDecision must repair the affected
// devices onto feasible pairs instead of failing, keep every untouched
// device on its previous pair, and never select the removed server.
func TestRepriceRemovedServer(t *testing.T) {
	sys, gen := buildSystem(t, 30, 53)
	states := trace.Record(gen, 1)
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetSlotDeadline(0, 1<<30) // arm so the decision is remembered
	first, err := ctrl.Step(states[0])
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for i := range first.Decision.Server {
		if first.Decision.Server[i] >= 0 {
			victim = first.Decision.Server[i]
			break
		}
	}
	if victim < 0 {
		t.Fatal("first decision offloaded nothing")
	}
	mask := make([]bool, len(sys.Net.Servers))
	for n := range mask {
		mask[n] = true
	}
	mask[victim] = false
	st := *states[0]
	st.ServerActive = mask

	res, err := ctrl.repriceDecision(&st)
	if err != nil {
		t.Fatalf("repriceDecision failed on a removed server: %v", err)
	}
	if err := sys.Validate(res.Selection, &st); err != nil {
		t.Errorf("repaired selection infeasible: %v", err)
	}
	moved := 0
	for i := range res.Selection.Server {
		if res.Selection.Server[i] == victim {
			t.Errorf("device %d still selects removed server %d", i, victim)
		}
		if first.Decision.Server[i] == victim {
			moved++
			continue
		}
		if res.Selection.Station[i] != first.Decision.Station[i] ||
			res.Selection.Server[i] != first.Decision.Server[i] {
			t.Errorf("device %d moved off an unaffected previous pair", i)
		}
	}
	if moved == 0 {
		t.Fatal("no device used the removed server; the regression is vacuous")
	}
}

// FuzzChurnEquivalence fuzzes acceptance criterion (b): for arbitrary
// churn probabilities and sequence lengths, incremental ApplyChurn must
// commit a game bit-identical to a from-scratch rebuild at every slot.
func FuzzChurnEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(30), uint8(30), uint8(20), uint8(25), uint8(25), uint8(80))
	f.Add(int64(7), uint8(3), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(100))
	f.Add(int64(42), uint8(9), uint8(100), uint8(100), uint8(100), uint8(100), uint8(100), uint8(50))
	f.Fuzz(func(t *testing.T, seed int64, slots, joinP, leaveP, hoP, rmP, addP, initP uint8) {
		cfg := trace.ChurnConfig{
			Seed:                  seed,
			DeviceJoinProb:        float64(joinP%101) / 100,
			DeviceLeaveProb:       float64(leaveP%101) / 100,
			HandoverProb:          float64(hoP%101) / 100,
			ServerRemoveProb:      float64(rmP%101) / 100,
			ServerAddProb:         float64(addP%101) / 100,
			MinActiveDevices:      1,
			InitialActiveFraction: float64(initP%100+1) / 100,
		}
		sys, gen := buildSystem(t, 10, 71)
		var base trace.Source = gen
		if seed%2 == 0 {
			base = &pinnedSource{base: gen.Next()}
		}
		sched, err := trace.NewChurnSchedule(cfg, sys.Net, base)
		if err != nil {
			t.Fatal(err)
		}
		freq := sys.LowestFrequencies()
		inc := new(P2A)
		n := 2 + int(slots%8)
		for slot := 0; slot < n; slot++ {
			st := sched.Next()
			if err := sys.ApplyChurn(inc, st, freq); err != nil {
				t.Fatalf("slot %d: ApplyChurn: %v", slot, err)
			}
			fresh, err := sys.NewP2A(st, freq)
			if err != nil {
				t.Fatalf("slot %d: NewP2A: %v", slot, err)
			}
			requireSameGame(t, slot, inc, fresh)
		}
	})
}

// BenchmarkChurnSlot measures the slot-update cost on a large population
// in the slow-inputs regime (pinned base state, default churn): the
// incremental ApplyChurn merge against the full BuildP2A rebuild it is
// bit-identical to.
func BenchmarkChurnSlot(b *testing.B) {
	sys, gen := buildSystem(b, 300, 61)
	sched, err := trace.NewChurnSchedule(trace.DefaultChurnConfig(13), sys.Net, &pinnedSource{base: gen.Next()})
	if err != nil {
		b.Fatal(err)
	}
	states := trace.Record(sched, 64)
	freq := sys.LowestFrequencies()

	b.Run("incremental", func(b *testing.B) {
		p := new(P2A)
		if err := sys.BuildP2A(p, states[0], freq); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := states[1+i%(len(states)-1)]
			if err := sys.ApplyChurn(p, st, freq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		p := new(P2A)
		if err := sys.BuildP2A(p, states[0], freq); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := states[1+i%(len(states)-1)]
			if err := sys.BuildP2A(p, st, freq); err != nil {
				b.Fatal(err)
			}
		}
	})
}
