package core

import (
	"errors"
	"fmt"
	"time"

	"eotora/internal/game"
	"eotora/internal/lyapunov"
	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/solver"
	"eotora/internal/stats"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// ControllerConfig parameterizes Algorithm 1 (the online DPP controller).
type ControllerConfig struct {
	// V is the drift-plus-penalty weight (paper: 10–500).
	V float64
	// InitialBacklog is Q(1); the paper initializes it to 0.
	InitialBacklog float64
	// BDMA configures the per-slot P2 solver (z rounds + P2-A solver).
	BDMA BDMAConfig
	// Seed drives the controller's internal randomness (solver starts).
	Seed int64
	// SlotDeadline is the wall-clock budget for each slot's solve; when it
	// expires the controller descends the degradation ladder (anytime BDMA
	// → previous decision → greedy) instead of running to convergence.
	// Zero disables the timed budget.
	SlotDeadline time.Duration
	// SlotChecks is a deterministic alternative to SlotDeadline: the solve
	// expires after this many deadline checkpoints (BDMA round boundaries,
	// CGBA/MCBA iterations, P2-B entries), machine-independently and
	// identically at every pool size. Zero disables the counted budget.
	// Both budgets may be armed; whichever exhausts first wins.
	SlotChecks int
}

// Fallback-ladder rungs recorded in SlotResult.Rung: each slot is decided
// at the lowest-numbered rung that produced a feasible decision before the
// slot deadline. See OPERATIONS.md for alerting guidance.
const (
	// RungFull is the normal path: BDMA ran to completion.
	RungFull = 0
	// RungAnytime is a truncated solve: the deadline expired mid-BDMA and
	// the best feasible iterate found so far was kept.
	RungAnytime = 1
	// RungPrevious re-prices the previous slot's (x, y, Ω) under the
	// current state (Lemma-1 allocation and objective recomputed).
	RungPrevious = 2
	// RungGreedy is the last resort: a deterministic one-pass greedy
	// profile at the lowest frequencies Ω^L.
	RungGreedy = 3
)

// SlotResult records everything Algorithm 1 did in one slot.
type SlotResult struct {
	// Slot is the slot index t.
	Slot int
	// Decision is the full α_t performed, with the Lemma-1 allocation
	// materialized.
	Decision Decision
	// Latency is T_t, the slot's overall latency (sum over devices).
	Latency units.Seconds
	// PerDevice itemizes each device's latency.
	PerDevice []LatencyBreakdown
	// EnergyCost is C_t.
	EnergyCost units.Money
	// Theta is θ(t) = C_t − C̄.
	Theta float64
	// Backlog is Q(t+1), the backlog after this slot's update (the total
	// across rooms in per-room budget mode).
	Backlog float64
	// RoomBacklogs holds the per-room backlogs Q_m(t+1) when the system
	// uses per-room budgets; nil otherwise.
	RoomBacklogs map[int]float64
	// Objective is the P2 objective value of the performed decision.
	Objective float64
	// SolverIterations is the P2-A solver work across BDMA rounds.
	SolverIterations int
	// Elapsed is the wall-clock decision time for the slot.
	Elapsed time.Duration
	// Degraded reports that the slot deadline expired and the decision
	// came from below the full-solve rung. Always false with no deadline
	// configured.
	Degraded bool
	// Rung is the fallback-ladder rung that produced the decision (one of
	// the Rung* constants; RungFull when the solve completed normally).
	Rung int
	// ShardGap is the sharded-vs-unsharded optimality gap measured on
	// this slot when the shard audit sampled it (SetShardAudit):
	// (sharded − reference)/reference social cost on the slot's final
	// P2-A game. Meaningful only when ShardAudited is true.
	ShardGap float64
	// ShardAudited reports that this slot ran the shard audit.
	ShardAudited bool
}

// Controller runs Algorithm 1: at each slot it observes β_t, calls BDMA
// for (x̄, ȳ, Ω̄), materializes the Lemma-1 allocation, performs the
// decision, and updates the virtual queue by equation (21).
//
// The controller's solver randomness is derived per slot from
// (Seed, slot), so a controller restored from a Checkpoint continues
// bit-identically to one that never stopped.
type Controller struct {
	sys   *System
	dpp   *lyapunov.DPP
	rooms *lyapunov.QueueSet // per-room queues; nil in global-budget mode
	cfg   ControllerConfig
	slot  int
	p2a   P2A // reusable P2-A instance; BDMA rebuilds it in place each slot

	// pool is the intra-slot worker pool attached with SetPool (nil =
	// serial); it parallelizes the per-slot solve without changing any
	// decision bit.
	pool *par.Pool

	// Slot-deadline state. dl is the controller-owned deadline re-armed
	// each slot when a budget is configured (value, not pointer: no
	// per-slot allocation); stall is a fault-injected artificial solver
	// delay charged against the timed budget (SetStall). prevSel/prevFreq
	// hold the last decision for the RungPrevious fallback, copied into
	// reused capacity only when a deadline is configured so the default
	// path stays allocation-free.
	dl       solver.Deadline
	stall    time.Duration
	prevSel  Selection
	prevFreq Frequencies
	havePrev bool

	// shardAuditEvery samples the sharded-vs-unsharded optimality gap on
	// every N-th full-rung slot (SetShardAudit; 0 = off).
	shardAuditEvery int

	// Observability (see instr.go). obs is the registry attached with
	// SetObs (nil = off); instr holds the pre-resolved instrument handles
	// the per-slot path records through.
	obs   *obs.Registry
	instr ctrlInstr
}

// NewController builds a controller over a system. Systems with
// RoomBudgets set run in per-room budget mode with one virtual queue per
// room.
func NewController(sys *System, cfg ControllerConfig) (*Controller, error) {
	if sys == nil {
		return nil, errors.New("core: nil system")
	}
	dpp, err := lyapunov.NewDPP(cfg.V, cfg.InitialBacklog)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	c := &Controller{
		sys: sys,
		dpp: dpp,
		cfg: cfg,
	}
	if sys.RoomBudgets != nil {
		if err := sys.ValidateRoomBudgets(); err != nil {
			return nil, err
		}
		keys := make([]int, 0, len(sys.Net.Rooms))
		for _, r := range sys.Net.Rooms {
			keys = append(keys, r.ID)
		}
		c.rooms = lyapunov.NewQueueSet(keys)
	}
	return c, nil
}

// System returns the controller's system.
func (c *Controller) System() *System { return c.sys }

// Name identifies the controller as the flagship "bdma" policy behind the
// policy seam (internal/policy): the paper's full DPP + BDMA alternation,
// whatever P2-A solver drives it. SolverName distinguishes the solver.
func (c *Controller) Name() string { return "bdma" }

// Slot returns the last completed slot index (0 before the first step,
// the checkpointed slot right after a Restore).
func (c *Controller) Slot() int { return c.slot }

// Decide is the policy-seam entry point (internal/policy.Policy): it
// checks that the caller's slot index is the controller's next slot and
// then runs Step. The explicit index exists so drivers that own the slot
// numbering (the serve daemon's tick counter, the simulator's loop)
// fail loudly on a desynchronized restore instead of silently deciding a
// different slot than they publish.
func (c *Controller) Decide(slot int, st *trace.State) (*SlotResult, error) {
	if slot != c.slot+1 {
		return nil, fmt.Errorf("core: Decide slot %d, controller expects %d", slot, c.slot+1)
	}
	return c.Step(st)
}

// Backlog returns the current virtual-queue backlog Q(t) — the total
// across rooms in per-room budget mode.
func (c *Controller) Backlog() float64 {
	if c.rooms != nil {
		return c.rooms.TotalBacklog()
	}
	return c.dpp.Queue.Backlog()
}

// RoomBacklogs returns the per-room backlogs, or nil in global-budget
// mode.
func (c *Controller) RoomBacklogs() map[int]float64 {
	if c.rooms == nil {
		return nil
	}
	return c.rooms.Backlogs()
}

// V returns the configured penalty weight.
func (c *Controller) V() float64 { return c.cfg.V }

// SetV retunes the drift-plus-penalty weight V between slots — the
// latency-vs-backlog dial the online auto-tuner (internal/policy) turns.
// The virtual queue carries over unchanged; only the penalty weighting of
// subsequent slots moves. Checkpoints taken after a SetV record the new V,
// so a restore into a fixed-V controller of the old weight fails loudly.
func (c *Controller) SetV(v float64) error {
	if err := lyapunov.CheckV(v); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	c.cfg.V = v
	c.dpp.V = v
	return nil
}

// SetLambda retunes the CGBA approximation slack λ between slots (see
// game.CGBAConfig.Lambda: larger λ certifies a looser equilibrium in
// fewer iterations). It errors when the controller's P2-A solver is not
// CGBA, or when λ leaves [0, 0.125) — beyond that the congestion-game
// approximation bound diverges.
func (c *Controller) SetLambda(lambda float64) error {
	if lambda < 0 || lambda >= 0.125 {
		return fmt.Errorf("core: λ = %v outside [0, 0.125)", lambda)
	}
	s, err := c.cgbaSolver("λ")
	if err != nil {
		return err
	}
	s.Lambda = lambda
	c.cfg.BDMA.Solver = s
	return nil
}

// SetPool attaches a worker pool to the controller's per-slot solve:
// P2-B's per-server minimizations, the P2-A engine's best-response
// rescans, and the Lemma-1 accumulators run sharded across the pool's
// workers. Decisions, objectives, iteration counts, and the RNG draw
// sequence are bit-identical to the serial path for every pool size
// (DESIGN.md §9); nil detaches the pool. The pool must not be shared by
// controllers stepping concurrently — give each concurrent controller
// its own (as sim.Sweep does).
func (c *Controller) SetPool(p *par.Pool) {
	c.pool = p
	c.p2a.SetPool(p)
	p.Instrument(c.obs)
}

// Pool returns the pool attached with SetPool, or nil.
func (c *Controller) Pool() *par.Pool { return c.pool }

// SetShortlist overrides the CGBA best-response shortlist width for this
// controller's slot solves (see game.CGBAConfig.Shortlist: 0 keeps the
// game package's default, game.ShortlistFull forces the exact path).
// It errors when the controller's P2-A solver is not CGBA — the knob has
// no meaning for the MCBA/ROPT baselines.
func (c *Controller) SetShortlist(k int) error {
	s, err := c.cgbaSolver("shortlist width")
	if err != nil {
		return err
	}
	s.Shortlist = k
	c.cfg.BDMA.Solver = s
	return nil
}

// SetShards configures the sharded slot solve (DESIGN.md §13): the
// per-slot P2-A game is partitioned into resource-disjoint topology
// clusters solved concurrently over the attached pool, with boundary
// players reconciled serially until the global λ-equilibrium certifies.
// n = 0 or 1 disables sharding (bit-identical to the unsharded path at
// every pool size), n ≥ 2 uses at most n shards (clamped to the
// topology's cluster count), and ShardsAuto uses one shard per cluster.
// It errors when the controller's P2-A solver is not CGBA — the
// MCBA/ROPT/OPT baselines have no sharded path.
func (c *Controller) SetShards(n int) error {
	if n < ShardsAuto {
		return fmt.Errorf("core: invalid shard count %d", n)
	}
	s, err := c.cgbaSolver("sharding")
	if err != nil {
		return err
	}
	s.Shards = n
	c.cfg.BDMA.Solver = s
	return nil
}

// SetShardAudit samples the sharded solve's optimality gap on every
// N-th slot decided at RungFull with sharding active: the performed
// selection's social cost on the slot's final P2-A game is compared
// against a fresh unsharded, deadline-free CGBA reference solve of the
// same game, and the relative gap is exported through the shard.*
// metrics (and SlotResult.ShardGap). The reference solve runs
// uninstrumented so its work never lands in the cgba.*/engine.*
// series; it costs roughly one extra unsharded solve per audited slot,
// so keep `every` large in production (OPERATIONS.md). 0 disables the
// audit.
func (c *Controller) SetShardAudit(every int) { c.shardAuditEvery = every }

// cgbaSolver returns the controller's CGBA solver config for mutation,
// materializing the implicit default when no solver was configured. The
// error names the knob that has no meaning for non-CGBA baselines.
func (c *Controller) cgbaSolver(what string) (CGBASolver, error) {
	if c.cfg.BDMA.Solver == nil {
		return CGBASolver{}, nil
	}
	s, ok := c.cfg.BDMA.Solver.(CGBASolver)
	if !ok {
		return CGBASolver{}, fmt.Errorf("core: %s applies to the CGBA solver, not %s", what, c.SolverName())
	}
	return s, nil
}

// SolverName identifies the P2-A solver driving this controller
// ("CGBA" for the paper's algorithm, "MCBA"/"ROPT" for baselines).
func (c *Controller) SolverName() string {
	if c.cfg.BDMA.Solver == nil {
		return CGBASolver{}.Name()
	}
	return c.cfg.BDMA.Solver.Name()
}

// Step executes one slot of Algorithm 1 against the observed state.
func (c *Controller) Step(st *trace.State) (*SlotResult, error) {
	return c.StepWithObservation(st, st)
}

// StepWithObservation makes the slot's decision from `observed` — which
// may be a forecast or a stale reading — but performs and accounts it
// against `realized`. With observed == realized it is exactly Algorithm 1;
// with a persistence forecast (observed = last slot's state) it quantifies
// the value of the paper's assumption that β_t is observed before
// deciding (cf. the imperfect-estimation setting of [31]).
//
// The realized state must be feasible for the chosen selection: a device
// whose observed coverage disappeared in the realized state yields an
// error, mirroring a failed handover.
func (c *Controller) StepWithObservation(observed, realized *trace.State) (*SlotResult, error) {
	start := time.Now()
	c.slot++
	src := rng.New(c.cfg.Seed).Derive(fmt.Sprintf("controller-slot-%d", c.slot))

	// Arm the slot deadline only when a budget is configured; dl stays nil
	// otherwise, so the undeadlined path performs only nil checks and the
	// decisions stay bit-identical to builds without the ladder.
	var dl *solver.Deadline
	if c.cfg.SlotDeadline > 0 || c.cfg.SlotChecks > 0 {
		c.dl.Start(c.cfg.SlotDeadline, c.cfg.SlotChecks)
		c.dl.Consume(c.stall)
		dl = &c.dl
	}

	var (
		res BDMAResult
		err error
	)
	if c.rooms != nil {
		res, err = c.sys.bdmaRoomsScratch(observed, c.dpp.V, c.rooms.Backlogs(), c.cfg.BDMA, src, &c.p2a, c.instr.solve, c.pool, dl)
	} else {
		res, err = c.sys.bdmaScratch(observed, c.dpp.V, c.dpp.Queue.Backlog(), c.cfg.BDMA, src, &c.p2a, c.instr.solve, c.pool, dl)
	}
	rung := RungFull
	if err == nil && res.Degraded {
		rung = RungAnytime
	}
	if err != nil {
		// Only a deadline miss descends the ladder; anything else (bad
		// state, infeasible device) is a hard error the caller must see.
		if !errors.Is(err, ErrSlotDeadline) {
			return nil, fmt.Errorf("core: slot %d: %w", c.slot, err)
		}
		rung = RungPrevious
		res, err = c.repriceDecision(observed)
		if err != nil {
			rung = RungGreedy
			res, err = c.greedyDecision(observed)
			if err != nil {
				return nil, fmt.Errorf("core: slot %d: %w", c.slot, err)
			}
		}
	}
	if dl != nil {
		// Remember the decision for RungPrevious, copying into reused
		// capacity (allocation-free after the first slot).
		c.prevSel.Station = append(c.prevSel.Station[:0], res.Selection.Station...)
		c.prevSel.Server = append(c.prevSel.Server[:0], res.Selection.Server...)
		c.prevFreq = append(c.prevFreq[:0], res.Freq...)
		c.havePrev = true
	}
	if observed != realized {
		if err := c.sys.Validate(res.Selection, realized); err != nil {
			return nil, fmt.Errorf("core: slot %d: stale decision infeasible: %w", c.slot, err)
		}
		// The violation θ must be re-evaluated at the realized price.
		if c.rooms != nil {
			res.RoomThetas = c.sys.RoomThetasActive(res.Freq, realized.Price, realized.ServerActive)
			res.Theta = 0
			for _, theta := range res.RoomThetas {
				res.Theta += theta
			}
		} else {
			res.Theta = c.sys.ThetaActive(res.Freq, realized.Price, realized.ServerActive)
		}
	}

	// Materialize the allocation from the observed state (shares are part
	// of the decision) and experience it under the realized state.
	alloc := c.sys.optimalAllocation(res.Selection, observed, c.pool)
	decision := Decision{Selection: res.Selection, Allocation: alloc, Freq: res.Freq}
	total, perDevice := c.sys.LatencyOf(decision, realized)

	cost := c.sys.EnergyCostActive(res.Freq, realized.Price, realized.ServerActive)
	out := &SlotResult{
		Slot:             c.slot,
		Decision:         decision,
		Latency:          total,
		PerDevice:        perDevice,
		EnergyCost:       cost,
		Theta:            res.Theta,
		Objective:        res.Objective,
		SolverIterations: res.SolverIterations,
		Degraded:         rung != RungFull,
		Rung:             rung,
	}
	if c.rooms != nil {
		for room, theta := range res.RoomThetas {
			c.rooms.Update(room, theta)
		}
		out.RoomBacklogs = c.rooms.Backlogs()
		out.Backlog = c.rooms.TotalBacklog()
	} else {
		out.Backlog = c.dpp.Commit(res.Theta)
	}
	out.Elapsed = time.Since(start)
	if c.shardAuditEvery > 0 && rung == RungFull && c.slot%c.shardAuditEvery == 0 {
		c.auditShardGap(out)
	}
	c.instr.record(out)
	return out, nil
}

// auditShardGap measures the sharded solve's optimality gap for the
// slot (SetShardAudit): the performed selection is priced on the slot's
// final P2-A game and compared against an unsharded, deadline-free CGBA
// reference solve of the same game. Slots where sharding is off or
// degenerate (the whole topology is one cluster) are skipped, so the
// audit can stay armed across heterogeneous sweeps.
func (c *Controller) auditShardGap(out *SlotResult) {
	s, ok := c.cfg.BDMA.Solver.(CGBASolver)
	if !ok || s.Shards == 0 || s.Shards == 1 {
		return
	}
	p := &c.p2a
	g := p.Game()
	if g == nil {
		return
	}
	if plan, err := p.shardPlanFor(s.Shards); err != nil || plan == nil {
		return
	}
	prof, err := p.Profile(out.Decision.Selection)
	if err != nil {
		return
	}
	sharded := g.SocialCost(prof)
	// The reference solve runs on a throwaway engine bound to the same
	// game: deadline-free (leftover slot budget must not truncate it),
	// uninstrumented (its work must not land in the cgba.*/engine.*
	// series), and fully isolated from the live engine's profile and
	// caches — later slots solve bit-identically whether or not this
	// slot was audited. The RNG source is derived outside the slot's
	// draw sequence for the same reason.
	ref, err := game.NewEngine(g).CGBA(game.CGBAConfig{
		Lambda:        s.Lambda,
		MaxIterations: s.MaxIterations,
		Pivot:         s.Pivot,
		Shortlist:     s.Shortlist,
	}, rng.New(c.cfg.Seed).Derive(fmt.Sprintf("shard-audit-%d", c.slot)))
	if err != nil {
		return
	}
	refCost := g.SocialCost(ref.Profile)
	gap := 0.0
	if refCost != 0 {
		gap = (sharded - refCost) / refCost
	}
	out.ShardGap, out.ShardAudited = gap, true
	c.instr.shardAudits.Inc()
	c.instr.shardGap.Observe(gap)
	c.instr.shardGapG.Set(gap)
}

// SetSlotDeadline (re)configures the per-slot budgets after construction:
// budget is the wall-clock allowance, checks the deterministic checkpoint
// allowance (see ControllerConfig). Both zero disables the ladder.
func (c *Controller) SetSlotDeadline(budget time.Duration, checks int) {
	c.cfg.SlotDeadline = budget
	c.cfg.SlotChecks = checks
}

// SetStall injects an artificial solver stall: every subsequent slot's
// timed budget is pre-charged by d before the solve starts — the
// deterministic lever the fault harness uses to force deadline misses
// without sleeping. Zero clears it; a stall never affects a slot with no
// timed budget armed.
func (c *Controller) SetStall(d time.Duration) { c.stall = d }

// repriceDecision is RungPrevious: the previous slot's (x, y, Ω) is reused
// with the Lemma-1 allocation and the objective recomputed fresh against
// the current observed state. Devices whose previous pair is no longer
// feasible — the station lost coverage, the server was removed or marked
// down, or the device itself left — are repaired per device: departed
// devices are dropped to (-1, -1), and the rest are reassigned to their
// first feasible (station, server) pair under the current state. It fails
// — sending the ladder to the greedy rung — only when no previous decision
// exists or some active device has no feasible pair at all.
func (c *Controller) repriceDecision(st *trace.State) (BDMAResult, error) {
	if !c.havePrev {
		return BDMAResult{}, errors.New("core: no previous decision to reuse")
	}
	sel := c.prevSel.Clone()
	for i := range sel.Station {
		if !st.ActiveDevice(i) {
			sel.Station[i], sel.Server[i] = -1, -1
			continue
		}
		if c.prevPairFeasible(i, st) {
			continue
		}
		k, n, ok := c.sys.FirstFeasiblePair(i, st)
		if !ok {
			return BDMAResult{}, fmt.Errorf("core: reprice: device %d has no feasible (station, server) pair this slot", i)
		}
		sel.Station[i], sel.Server[i] = k, n
	}
	res := BDMAResult{
		Selection: sel,
		Freq:      c.prevFreq.Clone(),
		Degraded:  true,
	}
	return c.priceDecision(res, st), nil
}

// prevPairFeasible reports whether device i's previous (station, server)
// pair is still usable under st: the station covers the device, the server
// is structurally present, not marked down, and reachable. A device that
// was inactive last slot carries (-1, -1) and is never feasible here.
func (c *Controller) prevPairFeasible(i int, st *trace.State) bool {
	k, n := c.prevSel.Station[i], c.prevSel.Server[i]
	if k < 0 || k >= len(c.sys.Net.BaseStations) || n < 0 || n >= len(c.sys.Net.Servers) {
		return false
	}
	if !st.Covered(i, k) || !st.ActiveServer(n) || st.Down(n) {
		return false
	}
	for _, idx := range c.sys.Net.ReachableServers(k) {
		if idx == n {
			return true
		}
	}
	return false
}

// FirstFeasiblePair returns the lowest-indexed (station, server) pair
// feasible for device i under st. Pass 0 honors ServerDown advisories;
// pass 1 re-admits down-but-present servers, mirroring BuildP2A's
// degraded-topology policy. ok is false when even pass 1 finds nothing.
// The RungPrevious repair and the local-only baseline policy
// (internal/policy) share this pair enumeration.
func (s *System) FirstFeasiblePair(i int, st *trace.State) (station, server int, ok bool) {
	stations := len(s.Net.BaseStations)
	for pass := 0; pass < 2; pass++ {
		honorDown := pass == 0
		for k := 0; k < stations; k++ {
			if !st.Covered(i, k) {
				continue
			}
			for _, n := range s.Net.ReachableServers(k) {
				if !st.ActiveServer(n) || (honorDown && st.Down(n)) {
					continue
				}
				return k, n, true
			}
		}
	}
	return -1, -1, false
}

// greedyDecision is RungGreedy, the ladder's last resort: a deterministic
// one-pass greedy profile on the slot's P2-A game at the lowest
// frequencies Ω^L. The game was built by BDMA round 0 for this slot's
// state (round 0 never checkpoints before building), so the profile maps
// onto pairs feasible under the current coverage.
func (c *Controller) greedyDecision(st *trace.State) (BDMAResult, error) {
	g := c.p2a.Game()
	if g == nil {
		return BDMAResult{}, errors.New("core: no P2-A game for the greedy fallback")
	}
	greedy := game.GreedyProfile(g)
	res := BDMAResult{
		Selection: c.p2a.Selection(greedy.Profile),
		Freq:      c.sys.LowestFrequencies(),
		Degraded:  true,
	}
	return c.priceDecision(res, st), nil
}

// priceDecision fills the objective, Θ (per-room in multi-budget mode),
// and reduced latency of a fallback decision, mirroring what bdmaScratch/
// bdmaRoomsScratch report for a full solve.
func (c *Controller) priceDecision(res BDMAResult, st *trace.State) BDMAResult {
	if c.rooms != nil {
		res.Objective = c.sys.p2ObjectiveRooms(res.Selection, res.Freq, st, c.dpp.V, c.rooms.Backlogs(), c.pool)
		res.RoomThetas = c.sys.RoomThetasActive(res.Freq, st.Price, st.ServerActive)
		res.Theta = 0
		for _, theta := range res.RoomThetas {
			res.Theta += theta
		}
	} else {
		res.Objective = c.sys.p2Objective(res.Selection, res.Freq, st, c.dpp.V, c.dpp.Queue.Backlog(), c.pool)
		res.Theta = c.sys.ThetaActive(res.Freq, st.Price, st.ServerActive)
	}
	res.Latency = c.sys.reducedLatency(res.Selection, res.Freq, st, c.pool).Value()
	return res
}

// NewBDMAController returns the paper's BDMA-based DPP with CGBA(λ) and z
// alternating rounds.
func NewBDMAController(sys *System, v float64, z int, lambda float64, seed int64) (*Controller, error) {
	return NewController(sys, ControllerConfig{
		V:    v,
		BDMA: BDMAConfig{Iterations: z, Solver: CGBASolver{Lambda: lambda}},
		Seed: seed,
	})
}

// NewROPTController returns the ROPT-based DPP baseline: random feasible
// selections with optimal allocation and P2-B frequencies.
func NewROPTController(sys *System, v float64, z int, seed int64) (*Controller, error) {
	return NewController(sys, ControllerConfig{
		V:    v,
		BDMA: BDMAConfig{Iterations: z, Solver: RandomSolver{}},
		Seed: seed,
	})
}

// NewMCBAController returns the MCBA-based DPP baseline.
func NewMCBAController(sys *System, v float64, z int, seed int64) (*Controller, error) {
	return NewController(sys, ControllerConfig{
		V:    v,
		BDMA: BDMAConfig{Iterations: z, Solver: MCBASolver{}},
		Seed: seed,
	})
}

// Split returns the slot's total communication (access + fronthaul) and
// processing latency across devices.
func (r *SlotResult) Split() (comm, proc units.Seconds) {
	for _, lb := range r.PerDevice {
		comm += lb.Access + lb.Fronthaul
		proc += lb.Processing
	}
	return comm, proc
}

// Fairness returns Jain's fairness index over the per-device latencies:
// 1 when every device experiences the same latency. The square-root
// allocation of Lemma 1 equalizes weighted shares, not raw latencies, so
// values below 1 are expected and reflect the heterogeneity of tasks and
// channels.
func (r *SlotResult) Fairness() float64 {
	lat := make([]float64, 0, len(r.PerDevice))
	for i, lb := range r.PerDevice {
		if i < len(r.Decision.Station) && r.Decision.Station[i] < 0 {
			// Inactive device: no latency to be fair about.
			continue
		}
		lat = append(lat, lb.Total().Value())
	}
	return stats.JainIndex(lat)
}

// NewOptimalController returns a DPP controller that solves P2-A by
// branch-and-bound each slot — the near-optimal reference of equation
// (30): when the per-slot solver is optimal, DPP achieves ρ* + B·D/V.
// With zero budgets in cfg it is exact but can be very slow; budgets make
// it a best-effort upper baseline.
func NewOptimalController(sys *System, v float64, z int, cfg solver.BnBConfig, seed int64) (*Controller, error) {
	return NewController(sys, ControllerConfig{
		V:    v,
		BDMA: BDMAConfig{Iterations: z, Solver: OptimalSolver{Config: cfg}},
		Seed: seed,
	})
}
