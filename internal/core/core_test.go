package core

import (
	"math"
	"strings"
	"testing"

	"eotora/internal/energy"
	"eotora/internal/rng"
	"eotora/internal/solver"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// smallSpec returns a reduced topology for fast tests.
func smallSpec(devices int) topology.Spec {
	spec := topology.DefaultSpec(devices)
	spec.Stations = 3
	spec.UmbrellaStations = 1
	spec.ServersPerRoom = 2
	return spec
}

// buildSystem constructs a small test system plus a matching state
// generator. The budget sits midway between the all-min and all-max
// frequency cost at the trend-average price, so it is feasible but binding.
func buildSystem(t testing.TB, devices int, seed int64) (*System, *trace.Generator) {
	t.Helper()
	src := rng.New(seed)
	net, err := topology.Generate(smallSpec(devices), src.Derive("net"))
	if err != nil {
		t.Fatal(err)
	}
	models := DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
	sys, err := NewSystem(net, models, 3600, 1) // placeholder budget
	if err != nil {
		t.Fatal(err)
	}
	meanPrice := units.Price(50)
	low := sys.EnergyCost(sys.LowestFrequencies(), meanPrice)
	high := sys.EnergyCost(sys.HighestFrequencies(), meanPrice)
	sys.Budget = (low + high) / 2
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

func TestNewSystemValidation(t *testing.T) {
	sys, _ := buildSystem(t, 5, 1)
	if _, err := NewSystem(nil, nil, 3600, 1); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewSystem(sys.Net, sys.Energy[:1], 3600, 1); err == nil {
		t.Error("model count mismatch accepted")
	}
	bad := append([]energy.Model(nil), sys.Energy...)
	bad[0] = nil
	if _, err := NewSystem(sys.Net, bad, 3600, 1); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewSystem(sys.Net, sys.Energy, 0, 1); err == nil {
		t.Error("zero slot length accepted")
	}
	if _, err := NewSystem(sys.Net, sys.Energy, 3600, -1); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestDefaultEnergyModels(t *testing.T) {
	src := rng.New(2)
	models := DefaultEnergyModels(16, src)
	if len(models) != 16 {
		t.Fatalf("got %d models", len(models))
	}
	distinct := make(map[string]bool)
	for _, m := range models {
		if !energy.IsConvexOn(m, 1.8*units.GHz, 3.6*units.GHz, 16) {
			t.Errorf("model %s not convex", m.Name())
		}
		distinct[m.Name()] = true
	}
	if len(distinct) < 8 {
		t.Errorf("only %d distinct models among 16 — perturbation broken?", len(distinct))
	}
}

func TestCheckState(t *testing.T) {
	sys, gen := buildSystem(t, 8, 3)
	st := gen.Next()
	if err := sys.CheckState(st); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*trace.State)
	}{
		{"short task sizes", func(s *trace.State) { s.TaskSizes = s.TaskSizes[:3] }},
		{"short channel row", func(s *trace.State) { s.Channels[0] = s.Channels[0][:1] }},
		{"short fronthaul", func(s *trace.State) { s.FronthaulSE = s.FronthaulSE[:1] }},
		{"zero price", func(s *trace.State) { s.Price = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			bad := *gen.Next()
			// Deep-copy the mutable slices we mutate.
			bad.TaskSizes = append([]units.Cycles(nil), bad.TaskSizes...)
			bad.FronthaulSE = append([]units.SpectralEfficiency(nil), bad.FronthaulSE...)
			rows := make([][]units.SpectralEfficiency, len(bad.Channels))
			for i := range rows {
				rows[i] = append([]units.SpectralEfficiency(nil), bad.Channels[i]...)
			}
			bad.Channels = rows
			tt.mutate(&bad)
			if err := sys.CheckState(&bad); err == nil {
				t.Error("invalid state accepted")
			}
		})
	}
}

// feasibleSelection builds a selection via the P2-A adapter's random play.
func feasibleSelection(t testing.TB, sys *System, st *trace.State, seed int64) Selection {
	t.Helper()
	p2a, err := sys.NewP2A(st, sys.LowestFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RandomSolver{}.Solve(p2a, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p2a.Selection(res.Profile)
}

func TestValidateSelection(t *testing.T) {
	sys, gen := buildSystem(t, 10, 4)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 1)
	if err := sys.Validate(sel, st); err != nil {
		t.Fatalf("feasible selection rejected: %v", err)
	}

	short := Selection{Station: sel.Station[:3], Server: sel.Server[:3]}
	if err := sys.Validate(short, st); err == nil {
		t.Error("short selection accepted")
	}
	badStation := sel.Clone()
	badStation.Station[0] = 99
	if err := sys.Validate(badStation, st); err == nil {
		t.Error("out-of-range station accepted")
	}
	badServer := sel.Clone()
	badServer.Server[0] = -1
	if err := sys.Validate(badServer, st); err == nil {
		t.Error("negative server accepted")
	}
	// Constraint (3): pick a server not reachable from the chosen station.
	violating := sel.Clone()
	found := false
	for i := range violating.Station {
		reach := sys.Net.ReachableServers(violating.Station[i])
		if len(reach) == len(sys.Net.Servers) {
			continue
		}
		inReach := make(map[int]bool, len(reach))
		for _, n := range reach {
			inReach[n] = true
		}
		for n := range sys.Net.Servers {
			if !inReach[n] {
				violating.Server[i] = n
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if found {
		err := sys.Validate(violating, st)
		if err == nil || !strings.Contains(err.Error(), "constraint 3") {
			t.Errorf("constraint-3 violation not detected: %v", err)
		}
	}
}

func TestValidateFrequencies(t *testing.T) {
	sys, _ := buildSystem(t, 5, 5)
	if err := sys.ValidateFrequencies(sys.LowestFrequencies()); err != nil {
		t.Errorf("Ω^L rejected: %v", err)
	}
	if err := sys.ValidateFrequencies(sys.HighestFrequencies()); err != nil {
		t.Errorf("Ω^U rejected: %v", err)
	}
	if err := sys.ValidateFrequencies(sys.LowestFrequencies()[:2]); err == nil {
		t.Error("short frequency vector accepted")
	}
	tooHigh := sys.HighestFrequencies()
	tooHigh[0] *= 2
	if err := sys.ValidateFrequencies(tooHigh); err == nil {
		t.Error("over-max frequency accepted")
	}
}

func TestOptimalAllocationSharesSumToOne(t *testing.T) {
	sys, gen := buildSystem(t, 20, 6)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 2)
	alloc := sys.OptimalAllocation(sel, st)
	if err := sys.ValidateAllocation(sel, alloc); err != nil {
		t.Fatalf("Lemma-1 allocation invalid: %v", err)
	}
	// Shares on every used resource must sum to exactly 1 (KKT saturation).
	accessSum := make([]float64, len(sys.Net.BaseStations))
	computeSum := make([]float64, len(sys.Net.Servers))
	for i := range sel.Station {
		accessSum[sel.Station[i]] += alloc.AccessShare[i]
		computeSum[sel.Server[i]] += alloc.ComputeShare[i]
	}
	for k, sum := range accessSum {
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Errorf("station %d access shares sum to %v, want 1", k, sum)
		}
	}
	for n, sum := range computeSum {
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			t.Errorf("server %d compute shares sum to %v, want 1", n, sum)
		}
	}
}

func TestReducedLatencyMatchesClosedFormAllocation(t *testing.T) {
	// T_t (equations 18–20) must equal L_t evaluated at the Lemma-1 shares.
	sys, gen := buildSystem(t, 15, 7)
	for trial := 0; trial < 5; trial++ {
		st := gen.Next()
		sel := feasibleSelection(t, sys, st, int64(trial))
		freq := sys.LowestFrequencies()
		alloc := sys.OptimalAllocation(sel, st)
		total, _ := sys.LatencyOf(Decision{Selection: sel, Allocation: alloc, Freq: freq}, st)
		reduced := sys.ReducedLatency(sel, freq, st)
		if math.Abs(total.Value()-reduced.Value()) > 1e-9*(reduced.Value()+1) {
			t.Fatalf("trial %d: L(α*) = %v ≠ T = %v", trial, total, reduced)
		}
	}
}

func TestLemma1DominatesRandomAllocations(t *testing.T) {
	// Property behind Lemma 1: no feasible allocation beats the closed form.
	sys, gen := buildSystem(t, 12, 8)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 3)
	freq := sys.HighestFrequencies()
	optTotal, _ := sys.LatencyOf(Decision{Selection: sel, Allocation: sys.OptimalAllocation(sel, st), Freq: freq}, st)

	src := rng.New(999)
	for trial := 0; trial < 50; trial++ {
		alloc := randomFeasibleAllocation(sys, sel, src)
		total, _ := sys.LatencyOf(Decision{Selection: sel, Allocation: alloc, Freq: freq}, st)
		if total < optTotal-1e-9 {
			t.Fatalf("random allocation %v beat Lemma-1 optimum %v", total, optTotal)
		}
	}
}

// randomFeasibleAllocation draws random shares normalized per resource so
// constraints (4)–(6) hold with equality.
func randomFeasibleAllocation(sys *System, sel Selection, src *rng.Source) Allocation {
	devices := len(sel.Station)
	a := Allocation{
		AccessShare:    make([]float64, devices),
		FronthaulShare: make([]float64, devices),
		ComputeShare:   make([]float64, devices),
	}
	accessSum := make([]float64, len(sys.Net.BaseStations))
	fronthaulSum := make([]float64, len(sys.Net.BaseStations))
	computeSum := make([]float64, len(sys.Net.Servers))
	for i := 0; i < devices; i++ {
		a.AccessShare[i] = src.Uniform(0.05, 1)
		a.FronthaulShare[i] = src.Uniform(0.05, 1)
		a.ComputeShare[i] = src.Uniform(0.05, 1)
		accessSum[sel.Station[i]] += a.AccessShare[i]
		fronthaulSum[sel.Station[i]] += a.FronthaulShare[i]
		computeSum[sel.Server[i]] += a.ComputeShare[i]
	}
	for i := 0; i < devices; i++ {
		a.AccessShare[i] /= accessSum[sel.Station[i]]
		a.FronthaulShare[i] /= fronthaulSum[sel.Station[i]]
		a.ComputeShare[i] /= computeSum[sel.Server[i]]
	}
	return a
}

func TestReducedLatencyMatchesGameSocialCost(t *testing.T) {
	// The P2-A game's social cost must equal T_t for the same selection —
	// the identity that justifies the congestion-game interpretation.
	sys, gen := buildSystem(t, 18, 9)
	st := gen.Next()
	freq := sys.LowestFrequencies()
	p2a, err := sys.NewP2A(st, freq)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	for trial := 0; trial < 10; trial++ {
		res := RandomSolver{}
		r, err := res.Solve(p2a, src)
		if err != nil {
			t.Fatal(err)
		}
		sel := p2a.Selection(r.Profile)
		reduced := sys.ReducedLatency(sel, freq, st).Value()
		if math.Abs(r.Objective-reduced) > 1e-9*(reduced+1) {
			t.Fatalf("trial %d: game cost %v ≠ T_t %v", trial, r.Objective, reduced)
		}
	}
}

func TestP2AProfileRoundtrip(t *testing.T) {
	sys, gen := buildSystem(t, 10, 10)
	st := gen.Next()
	p2a, err := sys.NewP2A(st, sys.LowestFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	r, err := CGBASolver{}.Solve(p2a, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sel := p2a.Selection(r.Profile)
	if err := sys.Validate(sel, st); err != nil {
		t.Fatalf("CGBA selection invalid: %v", err)
	}
	back, err := p2a.Profile(sel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != r.Profile[i] {
			t.Fatalf("roundtrip mismatch at device %d", i)
		}
	}
	// Infeasible selection must be rejected.
	bad := sel.Clone()
	bad.Station[0] = (bad.Station[0] + 1) % len(sys.Net.BaseStations)
	bad.Server[0] = -1
	if _, err := p2a.Profile(bad); err == nil {
		t.Error("infeasible selection converted")
	}
}

func TestSolverNames(t *testing.T) {
	names := map[string]P2ASolver{
		"CGBA": CGBASolver{},
		"MCBA": MCBASolver{},
		"ROPT": RandomSolver{},
		"OPT":  OptimalSolver{},
	}
	for want, s := range names {
		if got := s.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestEnergyCostArithmetic(t *testing.T) {
	// Hand-built system: one server, flat 10 W/core model, 100 cores,
	// 1-hour slots → 1 kW × 1 h = 1 kWh = 1e-3 MWh. At $50/MWh: $0.05.
	net := &topology.Network{
		BaseStations: []topology.BaseStation{{
			ID: 0, Band: topology.LowBand, CoverageRadius: 1e4,
			AccessBandwidth: 50 * units.MHz, FronthaulBandwidth: 500 * units.MHz,
			FronthaulSE: 10, Fronthaul: topology.WiredFiber, Rooms: []int{0},
		}},
		Rooms:       []topology.Room{{ID: 0}},
		Servers:     []topology.Server{{ID: 0, Room: 0, Cores: 100, MinFreq: units.GHz, MaxFreq: 2 * units.GHz}},
		Devices:     []topology.Device{{ID: 0}},
		Suitability: [][]float64{{1}},
	}
	if err := net.Finalize(); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(net, []energy.Model{energy.Linear{Slope: 0, Intercept: 10}}, 3600, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	cost := sys.EnergyCost(Frequencies{1.5 * units.GHz}, 50)
	if math.Abs(cost.Dollars()-0.05) > 1e-9 {
		t.Errorf("EnergyCost = %v, want $0.05", cost)
	}
	if got := sys.Theta(Frequencies{1.5 * units.GHz}, 50); math.Abs(got-0.02) > 1e-9 {
		t.Errorf("Theta = %v, want 0.02", got)
	}
}

func TestSolveP2BBoundaries(t *testing.T) {
	sys, gen := buildSystem(t, 10, 11)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 6)

	// Q = 0: energy is free → every loaded server runs flat out.
	freq, err := sys.SolveP2B(sel, st, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	loaded := make([]bool, len(sys.Net.Servers))
	for _, n := range sel.Server {
		loaded[n] = true
	}
	for n, w := range freq {
		if !loaded[n] {
			continue
		}
		if math.Abs(float64(w-sys.Net.Servers[n].MaxFreq)) > 1e6 {
			t.Errorf("server %d at %v under Q=0, want F^U %v", n, w, sys.Net.Servers[n].MaxFreq)
		}
	}

	// Enormous Q: cost dominates → every server near F^L.
	freq, err = sys.SolveP2B(sel, st, 1, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	for n, w := range freq {
		if math.Abs(float64(w-sys.Net.Servers[n].MinFreq)) > 1e6 {
			t.Errorf("server %d at %v under huge Q, want F^L %v", n, w, sys.Net.Servers[n].MinFreq)
		}
	}
	if err := sys.ValidateFrequencies(freq); err != nil {
		t.Error(err)
	}
}

func TestSolveP2BMonotoneInQ(t *testing.T) {
	// Higher backlog pressure must never raise any server's frequency.
	sys, gen := buildSystem(t, 12, 12)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 7)
	prev, err := sys.SolveP2B(sel, st, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{1, 10, 100, 1000} {
		cur, err := sys.SolveP2B(sel, st, 50, q)
		if err != nil {
			t.Fatal(err)
		}
		for n := range cur {
			if float64(cur[n]) > float64(prev[n])+1e5 {
				t.Errorf("Q=%v raised server %d frequency %v → %v", q, n, prev[n], cur[n])
			}
		}
		prev = cur
	}
}

func TestSolveP2BMatchesGridSearch(t *testing.T) {
	// Golden-section per server must match a fine grid search on the
	// joint objective (separability check).
	sys, gen := buildSystem(t, 10, 13)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 8)
	const v, q = 50.0, 20.0
	freq, err := sys.SolveP2B(sel, st, v, q)
	if err != nil {
		t.Fatal(err)
	}
	got := sys.P2Objective(sel, freq, st, v, q)

	// Grid search per server.
	grid := sys.LowestFrequencies()
	for n := range grid {
		srv := &sys.Net.Servers[n]
		bestObj := math.Inf(1)
		bestW := srv.MinFreq
		for step := 0; step <= 400; step++ {
			w := srv.MinFreq + units.Frequency(float64(step)/400*float64(srv.MaxFreq-srv.MinFreq))
			grid[n] = w
			if obj := sys.P2Objective(sel, grid, st, v, q); obj < bestObj {
				bestObj, bestW = obj, w
			}
		}
		grid[n] = bestW
	}
	gridObj := sys.P2Objective(sel, grid, st, v, q)
	if got > gridObj+1e-6*(math.Abs(gridObj)+1) {
		t.Errorf("P2-B objective %v worse than grid search %v", got, gridObj)
	}
}

func TestSolveP2BValidation(t *testing.T) {
	sys, gen := buildSystem(t, 5, 14)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 9)
	if _, err := sys.SolveP2B(sel, st, 0, 1); err == nil {
		t.Error("V = 0 accepted")
	}
	if _, err := sys.SolveP2B(sel, st, 1, -1); err == nil {
		t.Error("negative Q accepted")
	}
}

func TestApproxRatio(t *testing.T) {
	sys, _ := buildSystem(t, 5, 15)
	r, err := sys.ApproxRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	// R_F = 3.6/1.8 = 2 → R = 5.24.
	if math.Abs(r-5.24) > 1e-9 {
		t.Errorf("R = %v, want 5.24", r)
	}
	r2, err := sys.ApproxRatio(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r {
		t.Error("R not increasing in λ")
	}
	if _, err := sys.ApproxRatio(0.2); err == nil {
		t.Error("λ = 0.2 accepted")
	}
}

func TestBDMAProducesValidDecision(t *testing.T) {
	sys, gen := buildSystem(t, 15, 16)
	st := gen.Next()
	res, err := sys.BDMA(st, 50, 10, BDMAConfig{Iterations: 3}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(res.Selection, st); err != nil {
		t.Errorf("BDMA selection invalid: %v", err)
	}
	if err := sys.ValidateFrequencies(res.Freq); err != nil {
		t.Errorf("BDMA frequencies invalid: %v", err)
	}
	if math.IsInf(res.Objective, 0) || math.IsNaN(res.Objective) {
		t.Errorf("objective = %v", res.Objective)
	}
	// Reported latency/theta must match the decision.
	if got := sys.ReducedLatency(res.Selection, res.Freq, st).Value(); math.Abs(got-res.Latency) > 1e-9*(got+1) {
		t.Errorf("latency %v ≠ recomputed %v", res.Latency, got)
	}
	if got := sys.Theta(res.Freq, st.Price); math.Abs(got-res.Theta) > 1e-9 {
		t.Errorf("theta %v ≠ recomputed %v", res.Theta, got)
	}
	if res.SolverIterations <= 0 {
		t.Error("no solver iterations recorded")
	}
}

func TestBDMABeatsRandomOnP2(t *testing.T) {
	// With the same state, CGBA-driven BDMA should (on average) achieve a
	// lower P2 objective than random selection at Ω^L.
	sys, gen := buildSystem(t, 20, 17)
	st := gen.Next()
	const v, q = 50.0, 5.0
	bdma, err := sys.BDMA(st, v, q, BDMAConfig{Iterations: 3}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	randomSum := 0.0
	const trials = 10
	for i := 0; i < trials; i++ {
		sel := feasibleSelection(t, sys, st, int64(100+i))
		randomSum += sys.P2Objective(sel, sys.LowestFrequencies(), st, v, q)
	}
	if bdma.Objective >= randomSum/trials {
		t.Errorf("BDMA %v not better than random average %v", bdma.Objective, randomSum/trials)
	}
}

func TestBDMAMoreIterationsNoWorse(t *testing.T) {
	// BDMA(z) keeps the best iterate, so on the same seed its objective is
	// non-increasing in z.
	sys, gen := buildSystem(t, 15, 18)
	st := gen.Next()
	prev := math.Inf(1)
	for _, z := range []int{1, 3, 6} {
		res, err := sys.BDMA(st, 50, 10, BDMAConfig{Iterations: z}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		// Different z re-seeds identically, so iterate sequences match and
		// the best-so-far objective cannot increase.
		if res.Objective > prev+1e-9 {
			t.Errorf("BDMA(%d) objective %v worse than smaller z %v", z, res.Objective, prev)
		}
		prev = res.Objective
	}
}

func TestControllerStepAndBudget(t *testing.T) {
	sys, gen := buildSystem(t, 12, 19)
	ctrl, err := NewBDMAController(sys, 50, 2, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.SolverName() != "CGBA" {
		t.Errorf("SolverName = %q", ctrl.SolverName())
	}
	if ctrl.V() != 50 {
		t.Errorf("V = %v", ctrl.V())
	}
	var totalCost, totalLatency float64
	const slots = 100
	for s := 1; s <= slots; s++ {
		res, err := ctrl.Step(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if res.Slot != s {
			t.Fatalf("slot = %d, want %d", res.Slot, s)
		}
		if res.Backlog < 0 {
			t.Fatal("negative backlog")
		}
		if len(res.PerDevice) != 12 {
			t.Fatalf("per-device latencies = %d", len(res.PerDevice))
		}
		totalCost += res.EnergyCost.Dollars()
		totalLatency += res.Latency.Value()
		if res.Latency <= 0 {
			t.Fatal("non-positive latency")
		}
	}
	avgCost := totalCost / slots
	// The DPP guarantee is asymptotic; allow 25% slack at 100 slots.
	if avgCost > sys.Budget.Dollars()*1.25 {
		t.Errorf("average cost $%v far above budget $%v", avgCost, sys.Budget.Dollars())
	}
	if totalLatency <= 0 {
		t.Error("no latency accumulated")
	}
}

func TestControllerDeterminism(t *testing.T) {
	sysA, genA := buildSystem(t, 10, 20)
	sysB, genB := buildSystem(t, 10, 20)
	a, err := NewBDMAController(sysA, 100, 2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBDMAController(sysB, 100, 2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		ra, err := a.Step(genA.Next())
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Step(genB.Next())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ra.Latency.Value()-rb.Latency.Value()) > 1e-12 {
			t.Fatalf("latencies diverged at slot %d", s)
		}
		if math.Abs(ra.Backlog-rb.Backlog) > 1e-12 {
			t.Fatalf("backlogs diverged at slot %d", s)
		}
	}
}

func TestControllerLargerVLowersLatency(t *testing.T) {
	// Theorem 4: average latency decreases (weakly) in V. Compare V=5 vs
	// V=500 over the same trace.
	run := func(v float64) float64 {
		sys, gen := buildSystem(t, 12, 21)
		ctrl, err := NewBDMAController(sys, v, 2, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		const slots = 60
		for s := 0; s < slots; s++ {
			res, err := ctrl.Step(gen.Next())
			if err != nil {
				t.Fatal(err)
			}
			total += res.Latency.Value()
		}
		return total / slots
	}
	low, high := run(5), run(500)
	if high > low*1.02 {
		t.Errorf("V=500 latency %v not below V=5 latency %v", high, low)
	}
}

func TestBaselineControllers(t *testing.T) {
	sys, gen := buildSystem(t, 10, 22)
	ropt, err := NewROPTController(sys, 50, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ropt.SolverName() != "ROPT" {
		t.Errorf("name = %q", ropt.SolverName())
	}
	mcba, err := NewMCBAController(sys, 50, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mcba.SolverName() != "MCBA" {
		t.Errorf("name = %q", mcba.SolverName())
	}
	st := gen.Next()
	for _, c := range []*Controller{ropt, mcba} {
		if _, err := c.Step(st); err != nil {
			t.Errorf("%s step failed: %v", c.SolverName(), err)
		}
	}
}

func TestNewControllerValidation(t *testing.T) {
	sys, _ := buildSystem(t, 5, 23)
	if _, err := NewController(nil, ControllerConfig{V: 1}); err == nil {
		t.Error("nil system accepted")
	}
	if _, err := NewController(sys, ControllerConfig{V: 0}); err == nil {
		t.Error("V = 0 accepted")
	}
}

// TestTheorem3Bound empirically verifies Theorem 3: the BDMA decision's
// P2 objective V·T(ᾱ) + Q·Θ(Ω̄) is at most R·V·T(α) + Q·Θ(Ω) for any
// feasible decision α, with R = 2.62·R_F/(1−8λ).
func TestTheorem3Bound(t *testing.T) {
	sys, gen := buildSystem(t, 12, 30)
	r, err := sys.ApproxRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(77)
	for trial := 0; trial < 3; trial++ {
		st := gen.Next()
		const v, q = 50.0, 20.0
		res, err := sys.BDMA(st, v, q, BDMAConfig{Iterations: 1}, src)
		if err != nil {
			t.Fatal(err)
		}
		lhs := v*res.Latency + q*res.Theta
		// Compare against a batch of random feasible decisions with random
		// feasible frequencies.
		for cand := 0; cand < 20; cand++ {
			sel := feasibleSelection(t, sys, st, int64(1000*trial+cand))
			freq := make(Frequencies, len(sys.Net.Servers))
			for n := range freq {
				srv := &sys.Net.Servers[n]
				freq[n] = srv.MinFreq + units.Frequency(src.Float64()*float64(srv.MaxFreq-srv.MinFreq))
			}
			rhs := r*v*sys.ReducedLatency(sel, freq, st).Value() + q*sys.Theta(freq, st.Price)
			if lhs > rhs+1e-6*(math.Abs(rhs)+1) {
				t.Errorf("trial %d cand %d: Theorem 3 violated: %v > %v", trial, cand, lhs, rhs)
			}
		}
	}
}

// TestBudgetTightening verifies the economic sanity of the controller:
// tightening the budget lowers realized cost and raises latency.
func TestBudgetTightening(t *testing.T) {
	run := func(frac float64) (cost, latency float64) {
		src := rng.New(31)
		net, err := topology.Generate(smallSpec(10), src.Derive("net"))
		if err != nil {
			t.Fatal(err)
		}
		models := DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
		sys, err := NewSystem(net, models, 3600, 1)
		if err != nil {
			t.Fatal(err)
		}
		low := sys.EnergyCost(sys.LowestFrequencies(), 50)
		high := sys.EnergyCost(sys.HighestFrequencies(), 50)
		sys.Budget = low + units.Money(frac*float64(high-low))
		gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), 31)
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := NewBDMAController(sys, 100, 2, 0, 31)
		if err != nil {
			t.Fatal(err)
		}
		const slots = 96
		for s := 0; s < slots; s++ {
			res, err := ctrl.Step(gen.Next())
			if err != nil {
				t.Fatal(err)
			}
			cost += res.EnergyCost.Dollars()
			latency += res.Latency.Value()
		}
		return cost / slots, latency / slots
	}
	tightCost, tightLatency := run(0.15)
	looseCost, looseLatency := run(0.9)
	if tightCost >= looseCost {
		t.Errorf("tight budget cost %v not below loose %v", tightCost, looseCost)
	}
	if tightLatency < looseLatency {
		t.Errorf("tight budget latency %v below loose %v — free lunch?", tightLatency, looseLatency)
	}
}

func TestSlotResultSplitAndFairness(t *testing.T) {
	sys, gen := buildSystem(t, 10, 33)
	ctrl, err := NewBDMAController(sys, 50, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Step(gen.Next())
	if err != nil {
		t.Fatal(err)
	}
	comm, proc := res.Split()
	if comm <= 0 || proc <= 0 {
		t.Errorf("split = %v/%v, want positive components", comm, proc)
	}
	if math.Abs(float64(comm+proc-res.Latency)) > 1e-9*float64(res.Latency) {
		t.Errorf("split %v + %v ≠ total %v", comm, proc, res.Latency)
	}
	f := res.Fairness()
	if f <= 0.1 || f > 1+1e-9 {
		t.Errorf("fairness = %v outside plausible range", f)
	}
}

func TestOptimalController(t *testing.T) {
	sys, gen := buildSystem(t, 6, 34)
	ctrl, err := NewOptimalController(sys, 50, 1, solver.BnBConfig{MaxNodes: 20000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.SolverName() != "OPT" {
		t.Errorf("SolverName = %q", ctrl.SolverName())
	}
	res, err := ctrl.Step(gen.Next())
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Error("no latency")
	}
}

// TestOptimalControllerDominatesOnObjective: on a shared slot, the OPT-based
// decision's P2 objective is no worse than CGBA's (it is warm-started by
// CGBA and only improves).
func TestOptimalControllerDominatesOnObjective(t *testing.T) {
	sysA, genA := buildSystem(t, 8, 35)
	sysB, genB := buildSystem(t, 8, 35)
	cgba, err := NewBDMAController(sysA, 50, 1, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimalController(sysB, 50, 1, solver.BnBConfig{MaxNodes: 50000}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		ra, err := cgba.Step(genA.Next())
		if err != nil {
			t.Fatal(err)
		}
		rb, err := opt.Step(genB.Next())
		if err != nil {
			t.Fatal(err)
		}
		if rb.Objective > ra.Objective*(1+1e-9) {
			t.Errorf("slot %d: OPT objective %v above CGBA %v", s, rb.Objective, ra.Objective)
		}
	}
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	// A 20-slot straight run must match 10 slots + checkpoint + restore
	// into a fresh controller + 10 more slots.
	sysA, genA := buildSystem(t, 8, 40)
	straight, err := NewBDMAController(sysA, 75, 2, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for s := 0; s < 20; s++ {
		res, err := straight.Step(genA.Next())
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.Latency.Value(), res.Backlog)
	}

	sysB, genB := buildSystem(t, 8, 40)
	first, err := NewBDMAController(sysB, 75, 2, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for s := 0; s < 10; s++ {
		res, err := first.Step(genB.Next())
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Latency.Value(), res.Backlog)
	}
	var buf strings.Builder
	if err := first.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}

	resumed, err := NewBDMAController(sysB, 75, 2, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(cp); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 10; s++ {
		res, err := resumed.Step(genB.Next())
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Latency.Value(), res.Backlog)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resume diverged at element %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestRestoreRejectsMismatches(t *testing.T) {
	sys, _ := buildSystem(t, 5, 41)
	ctrl, err := NewBDMAController(sys, 75, 1, 0, 41)
	if err != nil {
		t.Fatal(err)
	}
	good := ctrl.Checkpoint()
	tests := []struct {
		name   string
		mutate func(*Checkpoint)
	}{
		{"negative slot", func(cp *Checkpoint) { cp.Slot = -1 }},
		{"negative backlog", func(cp *Checkpoint) { cp.Backlog = -2 }},
		{"wrong V", func(cp *Checkpoint) { cp.V = 999 }},
		{"wrong solver", func(cp *Checkpoint) { cp.Solver = "ROPT" }},
		{"wrong seed", func(cp *Checkpoint) { cp.Seed = 123 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cp := good
			tt.mutate(&cp)
			if err := ctrl.Restore(cp); err == nil {
				t.Error("mismatched checkpoint accepted")
			}
		})
	}
	if err := ctrl.Restore(good); err != nil {
		t.Errorf("valid checkpoint rejected: %v", err)
	}
}

func TestReadCheckpointErrors(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("{bad")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader(`{"bogus": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestLemma1LocalOptimality is a KKT check: shifting an ε of share
// between two devices on the same resource (keeping feasibility) must not
// reduce the total latency below the closed-form optimum.
func TestLemma1LocalOptimality(t *testing.T) {
	sys, gen := buildSystem(t, 10, 90)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 4)
	freq := sys.LowestFrequencies()
	opt := sys.OptimalAllocation(sel, st)
	base, _ := sys.LatencyOf(Decision{Selection: sel, Allocation: opt, Freq: freq}, st)

	// Find two devices sharing a server and perturb their compute shares.
	byServer := make(map[int][]int)
	for i, n := range sel.Server {
		byServer[n] = append(byServer[n], i)
	}
	const eps = 1e-3
	perturbed := 0
	for _, devs := range byServer {
		if len(devs) < 2 {
			continue
		}
		for _, dir := range []float64{+1, -1} {
			alloc := Allocation{
				AccessShare:    append([]float64(nil), opt.AccessShare...),
				FronthaulShare: append([]float64(nil), opt.FronthaulShare...),
				ComputeShare:   append([]float64(nil), opt.ComputeShare...),
			}
			a, b := devs[0], devs[1]
			if alloc.ComputeShare[a] < 2*eps || alloc.ComputeShare[b] < 2*eps {
				continue
			}
			alloc.ComputeShare[a] += dir * eps
			alloc.ComputeShare[b] -= dir * eps
			if err := sys.ValidateAllocation(sel, alloc); err != nil {
				t.Fatal(err)
			}
			total, _ := sys.LatencyOf(Decision{Selection: sel, Allocation: alloc, Freq: freq}, st)
			if total < base-1e-9 {
				t.Errorf("ε-shift (%+g) between devices %d,%d reduced latency %v → %v", dir*eps, a, b, base, total)
			}
			perturbed++
		}
	}
	if perturbed == 0 {
		t.Skip("no shared server with headroom in this draw")
	}
}

func TestStepWithObservationPersistenceForecast(t *testing.T) {
	// Deciding on last slot's state must still produce feasible decisions
	// and (on average) latency no better than deciding on the true state.
	sysA, genA := buildSystem(t, 10, 91)
	sysB, genB := buildSystem(t, 10, 91)
	oracle, err := NewBDMAController(sysA, 50, 1, 0, 91)
	if err != nil {
		t.Fatal(err)
	}
	stale, err := NewBDMAController(sysB, 50, 1, 0, 91)
	if err != nil {
		t.Fatal(err)
	}
	var oracleSum, staleSum float64
	prev := genB.Next()
	_ = genA.Next() // keep traces aligned
	const slots = 40
	for s := 0; s < slots; s++ {
		curA := genA.Next()
		curB := genB.Next()
		ro, err := oracle.Step(curA)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := stale.StepWithObservation(prev, curB)
		if err != nil {
			// Coverage changed between slots → failed handover; a real
			// system re-decides on the fresh state. Mobility makes this
			// occasional, and the error must mention it.
			if !strings.Contains(err.Error(), "stale decision infeasible") {
				t.Fatal(err)
			}
			rs, err = stale.Step(curB)
			if err != nil {
				t.Fatal(err)
			}
		}
		oracleSum += ro.Latency.Value()
		staleSum += rs.Latency.Value()
		prev = curB
	}
	// Stale observations cannot beat true observations on average.
	if staleSum < oracleSum*0.98 {
		t.Errorf("stale decisions (%v) beat oracle (%v)", staleSum/slots, oracleSum/slots)
	}
}

func TestStepWithObservationEqualsStepWhenSame(t *testing.T) {
	sysA, genA := buildSystem(t, 8, 92)
	sysB, genB := buildSystem(t, 8, 92)
	a, err := NewBDMAController(sysA, 50, 1, 0, 92)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBDMAController(sysB, 50, 1, 0, 92)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		stA, stB := genA.Next(), genB.Next()
		ra, err := a.Step(stA)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.StepWithObservation(stB, stB)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Latency != rb.Latency || ra.Backlog != rb.Backlog {
			t.Fatalf("slot %d: StepWithObservation(st, st) ≠ Step(st)", s)
		}
	}
}
