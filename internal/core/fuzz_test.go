package core

import (
	"strings"
	"testing"
)

// FuzzReadCheckpoint checks the checkpoint decoder never panics and only
// accepts well-formed JSON objects.
func FuzzReadCheckpoint(f *testing.F) {
	f.Add(`{"slot": 5, "backlog": 1.5, "v": 100, "solver": "CGBA", "seed": 42}`)
	f.Add(`{}`)
	f.Add(`{"slot": -1}`)
	f.Add(`garbage`)
	f.Add(`{"room_backlogs": {"0": 1.5}}`)
	f.Fuzz(func(t *testing.T, data string) {
		cp, err := ReadCheckpoint(strings.NewReader(data))
		if err != nil {
			return
		}
		// A decoded checkpoint must round-trip its scalar fields through
		// the struct (sanity: no NaN smuggling via JSON — encoding/json
		// rejects NaN literals, so values are finite).
		_ = cp
	})
}
