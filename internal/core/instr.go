package core

import (
	"eotora/internal/game"
	"eotora/internal/obs"
)

// Metric names recorded by an instrumented controller. One flat
// dot-separated namespace; DESIGN.md §8 documents the semantics.
const (
	// Per-slot controller series (Algorithm 1).
	MetricSlots           = "controller.slots"            // counter: slots decided
	MetricDecisionSeconds = "controller.decision_seconds" // histogram: wall-clock per slot
	MetricLatencySeconds  = "controller.latency_seconds"  // histogram: T_t per slot
	MetricTheta           = "controller.theta"            // histogram: Θ_t = C_t − C̄ per slot
	MetricBacklog         = "controller.backlog"          // histogram: Q(t+1) per slot
	MetricBacklogNow      = "controller.backlog_now"      // gauge: latest Q(t+1)

	// Slot-deadline robustness (the degradation ladder; OPERATIONS.md).
	MetricDeadlineMissed = "controller.slot_deadline_missed" // counter: slots whose deadline expired
	MetricFallbackRung   = "controller.fallback_rung"        // histogram: ladder rung (1–3) of degraded slots

	// BDMA alternation (Algorithm 2).
	MetricBDMARounds    = "bdma.rounds"     // counter: alternation rounds executed
	MetricBDMABestRound = "bdma.best_round" // histogram: 1-based round yielding the kept decision

	// P2-B per-server convex solves.
	MetricP2BSolves     = "p2b.solves"     // counter: per-server 1-D solves
	MetricP2BIterations = "p2b.iterations" // histogram: golden-section steps per solve

	// P2-A game engine (Algorithm 3 and the MCBA baseline).
	MetricCGBASolves     = "cgba.solves"       // counter: CGBA solves
	MetricCGBAIterations = "cgba.iterations"   // histogram: improvement steps per solve
	MetricMCBAIterations = "mcba.iterations"   // histogram: walk length per solve
	MetricCacheHits      = "engine.cache_hits" // counter: best-response cache hits
	MetricCacheMisses    = "engine.cache_miss" // counter: best-response cache misses
	MetricEngineMoves    = "engine.moves"      // counter: strategy switches applied

	// Sharded-solve optimality audit (Controller.SetShardAudit;
	// DESIGN.md §13). The gap is (sharded − reference)/reference social
	// cost on the audited slot's final P2-A game.
	MetricShardAudits = "shard.audits"  // counter: audited slots
	MetricShardGap    = "shard.gap"     // histogram: per-audit optimality gap
	MetricShardGapNow = "shard.gap_now" // gauge: latest audited gap
)

// solveInstr carries the per-slot solve instruments through the BDMA
// alternation and into P2-B. The zero value (all-nil handles) records
// nothing and is always safe to pass — obs instruments are nil-safe.
type solveInstr struct {
	bdmaRounds    *obs.Counter
	bdmaBestRound *obs.Histogram
	p2bSolves     *obs.Counter
	p2bIters      *obs.Histogram
}

// ctrlInstr is the controller's full instrument set, resolved once in
// SetObs so the per-slot path performs no registry lookups.
type ctrlInstr struct {
	slots    *obs.Counter
	decision *obs.Histogram
	latency  *obs.Histogram
	theta    *obs.Histogram
	backlog  *obs.Histogram
	backlogG *obs.Gauge
	missed   *obs.Counter
	rung     *obs.Histogram
	solve    solveInstr

	// Shard-audit series (recorded only on audited slots).
	shardAudits *obs.Counter
	shardGap    *obs.Histogram
	shardGapG   *obs.Gauge
}

// SetObs attaches an observability registry to the controller: per-slot
// decision time, reduced latency T_t, energy-cost violation Θ_t, and
// backlog Q(t) histograms, plus the BDMA/P2-B/engine instruments listed
// in the Metric* constants. Passing nil detaches instrumentation (the
// default). The call resolves every instrument once; the per-slot hot
// path then records through the typed handles without allocation.
func (c *Controller) SetObs(reg *obs.Registry) {
	c.obs = reg
	c.instr = ctrlInstr{
		slots:       reg.Counter(MetricSlots),
		decision:    reg.Histogram(MetricDecisionSeconds),
		latency:     reg.Histogram(MetricLatencySeconds),
		theta:       reg.Histogram(MetricTheta),
		backlog:     reg.Histogram(MetricBacklog),
		backlogG:    reg.Gauge(MetricBacklogNow),
		missed:      reg.Counter(MetricDeadlineMissed),
		rung:        reg.Histogram(MetricFallbackRung),
		shardAudits: reg.Counter(MetricShardAudits),
		shardGap:    reg.Histogram(MetricShardGap),
		shardGapG:   reg.Gauge(MetricShardGapNow),
		solve: solveInstr{
			bdmaRounds:    reg.Counter(MetricBDMARounds),
			bdmaBestRound: reg.Histogram(MetricBDMABestRound),
			p2bSolves:     reg.Counter(MetricP2BSolves),
			p2bIters:      reg.Histogram(MetricP2BIterations),
		},
	}
	c.p2a.SetInstruments(game.Instruments{
		CGBASolves:     reg.Counter(MetricCGBASolves),
		CGBAIterations: reg.Histogram(MetricCGBAIterations),
		MCBAIterations: reg.Histogram(MetricMCBAIterations),
		CacheHits:      reg.Counter(MetricCacheHits),
		CacheMisses:    reg.Counter(MetricCacheMisses),
		Moves:          reg.Counter(MetricEngineMoves),
	})
	// The attached pool (if any) records its region/shard-utilization
	// series (par.Metric*) into the same registry.
	c.pool.Instrument(reg)
}

// Obs returns the registry attached with SetObs, or nil.
func (c *Controller) Obs() *obs.Registry { return c.obs }

// record captures one slot's outcome in the attached instruments; a
// detached controller pays only nil checks.
func (in *ctrlInstr) record(res *SlotResult) {
	in.slots.Inc()
	in.decision.Observe(res.Elapsed.Seconds())
	in.latency.Observe(res.Latency.Value())
	in.theta.Observe(res.Theta)
	in.backlog.Observe(res.Backlog)
	in.backlogG.Set(res.Backlog)
	// Recorded only on degraded slots: deadline-free runs then produce
	// obs snapshots identical to builds without the ladder (the
	// instruments register as zeros on both sides of a comparison).
	if res.Rung > 0 {
		in.missed.Inc()
		in.rung.Observe(float64(res.Rung))
	}
}
