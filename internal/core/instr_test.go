package core

import (
	"testing"

	"eotora/internal/obs"
	"eotora/internal/trace"
)

// TestControllerObsRecording checks that an instrumented controller fills
// every instrument with the expected volumes.
func TestControllerObsRecording(t *testing.T) {
	sys, gen := buildSystem(t, 25, 3)
	const z, slots = 2, 5
	ctrl, err := NewBDMAController(sys, 100, z, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	ctrl.SetObs(reg)
	if ctrl.Obs() != reg {
		t.Fatal("Obs() does not return the attached registry")
	}
	states := trace.Record(gen, slots)
	for _, st := range states {
		if _, err := ctrl.Step(st); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters[MetricSlots]; got != slots {
		t.Errorf("%s = %d, want %d", MetricSlots, got, slots)
	}
	if got := snap.Counters[MetricBDMARounds]; got != slots*z {
		t.Errorf("%s = %d, want %d", MetricBDMARounds, got, slots*z)
	}
	// Every BDMA round runs up to one P2-B solve per server (unloaded
	// servers with Q = 0 take the F^L shortcut without a 1-D solve) and
	// exactly one CGBA solve.
	servers := len(sys.Net.Servers)
	p2bSolves := snap.Counters[MetricP2BSolves]
	if p2bSolves == 0 || p2bSolves > int64(slots*z*servers) {
		t.Errorf("%s = %d, want in (0, %d]", MetricP2BSolves, p2bSolves, slots*z*servers)
	}
	if got := snap.Counters[MetricCGBASolves]; got != slots*z {
		t.Errorf("%s = %d, want %d", MetricCGBASolves, got, slots*z)
	}
	for _, name := range []string{
		MetricDecisionSeconds, MetricLatencySeconds, MetricTheta, MetricBacklog,
	} {
		if h := snap.Histograms[name]; h.Count != slots {
			t.Errorf("histogram %s count = %d, want %d", name, h.Count, slots)
		}
	}
	if h := snap.Histograms[MetricBDMABestRound]; h.Count != slots || h.Min < 1 || h.Max > z {
		t.Errorf("%s = %+v, want %d observations in [1, %d]", MetricBDMABestRound, h, slots, z)
	}
	if h := snap.Histograms[MetricCGBAIterations]; h.Count != slots*z {
		t.Errorf("%s count = %d, want %d", MetricCGBAIterations, h.Count, slots*z)
	}
	if h := snap.Histograms[MetricP2BIterations]; h.Count != p2bSolves {
		t.Errorf("%s count = %d, want one observation per solve (%d)", MetricP2BIterations, h.Count, p2bSolves)
	}
	// The engine must have both exercised and reused its caches.
	if snap.Counters[MetricCacheMisses] == 0 {
		t.Error("no cache misses recorded — refresh path not instrumented")
	}
	if snap.Counters[MetricCacheHits] == 0 {
		t.Error("no cache hits recorded — caching apparently never reused")
	}
	if snap.Gauges[MetricBacklogNow] != ctrl.Backlog() {
		t.Errorf("%s = %g, want current backlog %g",
			MetricBacklogNow, snap.Gauges[MetricBacklogNow], ctrl.Backlog())
	}

	// Detaching stops recording.
	ctrl.SetObs(nil)
	if _, err := ctrl.Step(states[0]); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricSlots).Value(); got != slots {
		t.Errorf("detached controller still recorded: slots = %d", got)
	}
}

// TestObsDoesNotPerturbDecisions is the observability contract: an
// instrumented controller reproduces the uninstrumented controller's
// decisions bit-for-bit.
func TestObsDoesNotPerturbDecisions(t *testing.T) {
	sysA, genA := buildSystem(t, 8, 7)
	sysB, genB := buildSystem(t, 8, 7)
	plain, err := NewBDMAController(sysA, 100, 2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	instrumented, err := NewBDMAController(sysB, 100, 2, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	instrumented.SetObs(obs.New())
	for s := 0; s < 5; s++ {
		stA, stB := genA.Next(), genB.Next()
		a, err := plain.Step(stA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := instrumented.Step(stB)
		if err != nil {
			t.Fatal(err)
		}
		if a.Latency != b.Latency || a.EnergyCost != b.EnergyCost ||
			a.Theta != b.Theta || a.Backlog != b.Backlog || a.Objective != b.Objective {
			t.Fatalf("slot %d diverged under instrumentation:\nplain %+v\nobs   %+v", s, a, b)
		}
		for i := range a.Decision.Selection.Station {
			if a.Decision.Selection.Station[i] != b.Decision.Selection.Station[i] ||
				a.Decision.Selection.Server[i] != b.Decision.Selection.Server[i] {
				t.Fatalf("slot %d device %d selection diverged", s, i)
			}
		}
	}
}

// TestMCBAInstrumented covers the MCBA walk-length instrument.
func TestMCBAInstrumented(t *testing.T) {
	sys, gen := buildSystem(t, 6, 4)
	ctrl, err := NewMCBAController(sys, 100, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	ctrl.SetObs(reg)
	if _, err := ctrl.Step(gen.Next()); err != nil {
		t.Fatal(err)
	}
	if h := reg.Snapshot().Histograms[MetricMCBAIterations]; h.Count != 1 || h.Sum <= 0 {
		t.Errorf("%s = %+v, want one positive observation", MetricMCBAIterations, h)
	}
}
