package core

import (
	"math"
	"strings"
	"testing"

	"eotora/internal/trace"
)

// allDown returns st with every server carrying a Down advisory.
func allDown(sys *System, st *trace.State) *trace.State {
	cp := *st
	cp.ServerDown = make([]bool, len(sys.Net.Servers))
	for n := range cp.ServerDown {
		cp.ServerDown[n] = true
	}
	return &cp
}

// allRemoved returns st with every server structurally removed.
func allRemoved(sys *System, st *trace.State) *trace.State {
	cp := *st
	cp.ServerActive = make([]bool, len(sys.Net.Servers))
	return &cp
}

// TestRepriceAllServersDown: when every server carries a Down advisory
// mid-slot, the RungPrevious repair must re-admit down-but-present
// servers (FirstFeasiblePair pass 1) and return a selection feasible
// under the degraded state — advisories drain, they never strand.
func TestRepriceAllServersDown(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	states := trace.Record(gen, 2)
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetSlotDeadline(0, 1<<30) // arm so the decision is remembered
	if _, err := ctrl.Step(states[0]); err != nil {
		t.Fatal(err)
	}
	down := allDown(sys, states[1])
	res, err := ctrl.repriceDecision(down)
	if err != nil {
		t.Fatalf("reprice with every server down: %v", err)
	}
	if err := sys.Validate(res.Selection, down); err != nil {
		t.Fatalf("repriced selection infeasible: %v", err)
	}
	if math.IsNaN(res.Objective) || math.IsInf(res.Objective, 0) {
		t.Errorf("repriced objective %v", res.Objective)
	}
}

// TestRepriceAllServersRemoved: with every server structurally removed
// there is no feasible pair at all; the reprice must fail with a clean
// error (sending the ladder to its last rung), never panic or emit a
// selection pointing at removed hardware.
func TestRepriceAllServersRemoved(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	states := trace.Record(gen, 2)
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetSlotDeadline(0, 1<<30)
	if _, err := ctrl.Step(states[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.repriceDecision(allRemoved(sys, states[1])); err == nil {
		t.Fatal("reprice produced a selection with every server removed")
	} else if !strings.Contains(err.Error(), "no feasible") {
		t.Errorf("error %q does not name the infeasibility", err)
	}
}

// TestStepAllServersDownFullLadder: a full solve and every ladder rung
// must stay feasible when all servers are down-but-present. The tight
// counted budget forces the degraded path on the same state.
func TestStepAllServersDownFullLadder(t *testing.T) {
	for _, checks := range []int{0, 1, 1 << 30} {
		sys, gen := buildSystem(t, 40, 7)
		states := trace.Record(gen, 2)
		ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if checks > 0 {
			ctrl.SetSlotDeadline(0, checks)
		}
		for i, st := range states {
			down := allDown(sys, st)
			r, err := ctrl.Step(down)
			if err != nil {
				t.Fatalf("checks=%d slot %d with every server down: %v", checks, i, err)
			}
			if err := sys.Validate(r.Decision.Selection, down); err != nil {
				t.Fatalf("checks=%d slot %d: infeasible decision at rung %d: %v", checks, i, r.Rung, err)
			}
		}
	}
}

// TestStepAllServersRemovedCleanError: a state with zero structurally
// present servers must fail the step with an error, not a panic and not
// a decision.
func TestStepAllServersRemovedCleanError(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	st := allRemoved(sys, gen.Next())
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r, err := ctrl.Step(st); err == nil {
		t.Fatalf("step decided rung %d with every server removed", r.Rung)
	}
	// The ladder must not rescue an unbuildable slot either: the deadline
	// path only catches ErrSlotDeadline, so the armed run fails the same
	// way instead of publishing a stale previous decision.
	ctrl2, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctrl2.SetSlotDeadline(0, 1<<30)
	if _, err := ctrl2.Step(gen.Next()); err != nil {
		t.Fatal(err)
	}
	if r, err := ctrl2.Step(st); err == nil {
		t.Fatalf("armed step decided rung %d with every server removed", r.Rung)
	}
}

// TestStepCapScaleZeroRejected: CheckState bounds CapScale to (0, 1], so
// a capacity scaled to zero mid-slot is a clean validation error — the
// latency model divides by the scaled capacity and must never see it.
func TestStepCapScaleZeroRejected(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	st := gen.Next()
	cp := *st
	cp.CapScale = make([]float64, len(sys.Net.Servers))
	for n := range cp.CapScale {
		cp.CapScale[n] = 1
	}
	cp.CapScale[0] = 0
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(&cp); err == nil {
		t.Fatal("step accepted a server capacity scaled to zero")
	} else if !strings.Contains(err.Error(), "capacity scale") {
		t.Errorf("error %q does not name the capacity scale", err)
	}
}

// TestStepCapScaleNearZeroFeasible: an arbitrarily small positive scale
// is valid input — the step must stay feasible with a finite (if
// enormous) latency, and the ladder rungs must survive it too.
func TestStepCapScaleNearZeroFeasible(t *testing.T) {
	for _, checks := range []int{0, 1} {
		sys, gen := buildSystem(t, 40, 7)
		st := gen.Next()
		cp := *st
		cp.CapScale = make([]float64, len(sys.Net.Servers))
		for n := range cp.CapScale {
			cp.CapScale[n] = 1e-9
		}
		ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if checks > 0 {
			ctrl.SetSlotDeadline(0, checks)
		}
		r, err := ctrl.Step(&cp)
		if err != nil {
			t.Fatalf("checks=%d: %v", checks, err)
		}
		if err := sys.Validate(r.Decision.Selection, &cp); err != nil {
			t.Fatalf("checks=%d: infeasible decision at rung %d: %v", checks, r.Rung, err)
		}
		if lat := r.Latency.Value(); math.IsNaN(lat) || math.IsInf(lat, 0) || lat <= 0 {
			t.Errorf("checks=%d: latency %v under near-zero capacity", checks, lat)
		}
	}
}

// TestGreedyDecisionAllServersDown: RungGreedy maps the slot's game onto
// selections; with every server down the game builder re-admits, so the
// greedy profile must stay feasible under the degraded state.
func TestGreedyDecisionAllServersDown(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	down := allDown(sys, gen.Next())
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(down); err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.greedyDecision(down)
	if err != nil {
		t.Fatalf("greedy with every server down: %v", err)
	}
	if err := sys.Validate(res.Selection, down); err != nil {
		t.Fatalf("greedy selection infeasible: %v", err)
	}
}
