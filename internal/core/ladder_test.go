package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/trace"
)

// TestDeadlineUnlimitedBitIdentical is the ladder's compatibility
// contract: arming a deadline that never expires (huge counted or timed
// budget) must leave every decision bit-identical to an undeadlined run,
// with every slot on RungFull — the checkpoint plumbing may cost nil
// checks but must never change a bit.
func TestDeadlineUnlimitedBitIdentical(t *testing.T) {
	const devices, seed, slots = 70, 21, 5
	build := func() (*Controller, []*trace.State) {
		sys, gen := buildSystem(t, devices, seed)
		ctrl, err := NewBDMAController(sys, 110, 3, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		return ctrl, trace.Record(gen, slots)
	}
	serial, states := build()
	want := stepTrace(t, serial, states)

	arms := map[string]func(*Controller){
		"counted": func(c *Controller) { c.SetSlotDeadline(0, 1<<30) },
		"timed":   func(c *Controller) { c.SetSlotDeadline(time.Hour, 0) },
		"both":    func(c *Controller) { c.SetSlotDeadline(time.Hour, 1<<30) },
	}
	for name, arm := range arms {
		t.Run(name, func(t *testing.T) {
			ctrl, states := build()
			arm(ctrl)
			for i, st := range states {
				r, err := ctrl.Step(st)
				if err != nil {
					t.Fatal(err)
				}
				if r.Degraded || r.Rung != RungFull {
					t.Fatalf("slot %d: degraded=%v rung=%d with an unlimited budget", i, r.Degraded, r.Rung)
				}
			}
			ctrl2, states := build()
			arm(ctrl2)
			if got := stepTrace(t, ctrl2, states); !reflect.DeepEqual(got, want) {
				t.Errorf("unlimited %s budget diverged from the undeadlined run", name)
			}
		})
	}
}

// TestCountedBudgetPoolInvariant: counted checkpoint budgets expire at
// the same point of the solve at every pool size — checkpoints sit at
// round/iteration boundaries, never inside sharded loops — so degraded
// decisions are as pool-invariant as full ones.
func TestCountedBudgetPoolInvariant(t *testing.T) {
	const devices, seed, slots, checks = 70, 21, 4, 6
	build := func() (*Controller, []*trace.State) {
		sys, gen := buildSystem(t, devices, seed)
		ctrl, err := NewBDMAController(sys, 110, 3, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		ctrl.SetSlotDeadline(0, checks)
		return ctrl, trace.Record(gen, slots)
	}
	serial, states := build()
	want := stepTrace(t, serial, states)
	for _, size := range corePoolSizes()[1:] {
		pool := par.New(size)
		ctrl, states := build()
		ctrl.SetPool(pool)
		got := stepTrace(t, ctrl, states)
		pool.Close()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pool %d: counted-budget slot trace diverged from serial", size)
		}
	}
}

// TestLadderFeasibleAtEveryBudget squeezes the counted budget through the
// whole interesting range: whatever rung each slot lands on, the decision
// must exist, validate against the slot's state, and carry a finite
// objective. Tiny budgets must actually degrade.
func TestLadderFeasibleAtEveryBudget(t *testing.T) {
	const devices, seed, slots = 40, 7, 4
	sys, gen := buildSystem(t, devices, seed)
	states := trace.Record(gen, slots)
	sawDegraded := false
	for checks := 1; checks <= 24; checks++ {
		ctrl, err := NewBDMAController(sys, 110, 3, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		ctrl.SetSlotDeadline(0, checks)
		for i, st := range states {
			r, err := ctrl.Step(st)
			if err != nil {
				t.Fatalf("checks=%d slot %d: %v", checks, i, err)
			}
			if r.Rung < RungFull || r.Rung > RungGreedy {
				t.Fatalf("checks=%d slot %d: rung %d out of range", checks, i, r.Rung)
			}
			if r.Degraded != (r.Rung != RungFull) {
				t.Fatalf("checks=%d slot %d: Degraded=%v but Rung=%d", checks, i, r.Degraded, r.Rung)
			}
			if err := sys.Validate(r.Decision.Selection, st); err != nil {
				t.Fatalf("checks=%d slot %d: infeasible decision at rung %d: %v", checks, i, r.Rung, err)
			}
			if math.IsNaN(r.Objective) || math.IsInf(r.Objective, 0) {
				t.Fatalf("checks=%d slot %d: objective %v", checks, i, r.Objective)
			}
			if r.Degraded {
				sawDegraded = true
			}
		}
	}
	if !sawDegraded {
		t.Error("no budget in 1..24 produced a degraded slot; checkpoints are not firing")
	}
}

// TestStallForcesAnytimeDecision: an injected stall larger than the timed
// budget must degrade the slot (the anytime rung still yields a feasible
// decision), and clearing the stall must restore the full solve.
func TestStallForcesAnytimeDecision(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	states := trace.Record(gen, 2)
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetSlotDeadline(time.Minute, 0)
	ctrl.SetStall(2 * time.Minute)
	r, err := ctrl.Step(states[0])
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded || r.Rung == RungFull {
		t.Fatalf("stalled slot not degraded: rung %d", r.Rung)
	}
	if err := sys.Validate(r.Decision.Selection, states[0]); err != nil {
		t.Fatalf("stalled decision infeasible: %v", err)
	}
	ctrl.SetStall(0)
	r, err = ctrl.Step(states[1])
	if err != nil {
		t.Fatal(err)
	}
	if r.Degraded {
		t.Fatalf("stall cleared but slot still degraded (rung %d)", r.Rung)
	}
}

// TestRepriceDecision exercises RungPrevious directly: after a decided
// slot, the previous (x, y, Ω) re-prices against a new state with a
// finite objective, and the reused selection is the remembered one.
func TestRepriceDecision(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	states := trace.Record(gen, 2)
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.repriceDecision(states[0]); err == nil {
		t.Fatal("repriceDecision succeeded with no previous decision")
	}
	ctrl.SetSlotDeadline(0, 1<<30) // arm so the decision is remembered
	first, err := ctrl.Step(states[0])
	if err != nil {
		t.Fatal(err)
	}
	// Re-price against the same state (always feasible); a next-slot state
	// may legitimately drop coverage, which is the rung-2 → rung-3
	// fall-through asserted below.
	res, err := ctrl.repriceDecision(states[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("repriced decision not marked Degraded")
	}
	if !reflect.DeepEqual(res.Selection, first.Decision.Selection) {
		t.Error("repriced selection is not the previous slot's")
	}
	if math.IsNaN(res.Objective) || math.IsInf(res.Objective, 0) || res.Objective <= 0 {
		t.Errorf("repriced objective %v", res.Objective)
	}
	if err := sys.Validate(res.Selection, states[0]); err != nil {
		t.Errorf("repriced selection infeasible: %v", err)
	}
	// If the new slot's coverage invalidates part of the previous
	// selection, the reprice repairs it per device: affected devices move
	// to their first feasible pair and the result validates under the new
	// state; unaffected devices keep their previous pair.
	res, err = ctrl.repriceDecision(states[1])
	if err != nil {
		t.Fatalf("repriceDecision failed to repair under the new state: %v", err)
	}
	if err := sys.Validate(res.Selection, states[1]); err != nil {
		t.Errorf("repaired reprice selection infeasible: %v", err)
	}
	for i := range res.Selection.Station {
		if ctrl.prevPairFeasible(i, states[1]) &&
			(res.Selection.Station[i] != first.Decision.Station[i] ||
				res.Selection.Server[i] != first.Decision.Server[i]) {
			t.Errorf("device %d moved off a still-feasible previous pair", i)
		}
	}
}

// TestGreedyDecision exercises RungGreedy directly: once BDMA round 0 has
// built the slot's game, the greedy profile is feasible at Ω^L with a
// finite objective; before any step there is no game and it must fail.
func TestGreedyDecision(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	states := trace.Record(gen, 1)
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.greedyDecision(states[0]); err == nil {
		t.Fatal("greedyDecision succeeded before any P2-A game was built")
	}
	if _, err := ctrl.Step(states[0]); err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.greedyDecision(states[0])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("greedy decision not marked Degraded")
	}
	if err := sys.Validate(res.Selection, states[0]); err != nil {
		t.Fatalf("greedy selection infeasible: %v", err)
	}
	want := sys.LowestFrequencies()
	if !reflect.DeepEqual(res.Freq, want) {
		t.Error("greedy frequencies are not Ω^L")
	}
	if math.IsNaN(res.Objective) || math.IsInf(res.Objective, 0) {
		t.Errorf("greedy objective %v", res.Objective)
	}
}

// TestLadderInstruments: degraded slots must increment the deadline-miss
// counter and land their rung in the histogram; undeadlined runs must
// leave both untouched so obs snapshots stay comparable across builds.
func TestLadderInstruments(t *testing.T) {
	const slots = 3
	sys, gen := buildSystem(t, 40, 7)
	states := trace.Record(gen, slots)

	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.New()
	ctrl.SetObs(reg)
	ctrl.SetSlotDeadline(0, 1) // every slot degrades
	degraded := 0
	for _, st := range states {
		r, err := ctrl.Step(st)
		if err != nil {
			t.Fatal(err)
		}
		if r.Degraded {
			degraded++
		}
	}
	if degraded != slots {
		t.Fatalf("expected every slot degraded, got %d of %d", degraded, slots)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricDeadlineMissed]; got != int64(slots) {
		t.Errorf("%s = %d, want %d", MetricDeadlineMissed, got, slots)
	}
	if h := snap.Histograms[MetricFallbackRung]; h.Count != slots || h.Min < RungAnytime || h.Max > RungGreedy {
		t.Errorf("%s: count %d min %v max %v", MetricFallbackRung, h.Count, h.Min, h.Max)
	}

	ctrl2, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.New()
	ctrl2.SetObs(reg2)
	for _, st := range states {
		if _, err := ctrl2.Step(st); err != nil {
			t.Fatal(err)
		}
	}
	snap2 := reg2.Snapshot()
	if got := snap2.Counters[MetricDeadlineMissed]; got != 0 {
		t.Errorf("undeadlined run recorded %d deadline misses", got)
	}
	if h := snap2.Histograms[MetricFallbackRung]; h.Count != 0 {
		t.Errorf("undeadlined run recorded %d rung observations", h.Count)
	}
}

// TestDegradedTopologyStates: states carrying outage drains and capacity
// scaling must still step (servers drain unless a device would be
// stranded; scaled capacity raises latency but stays feasible).
func TestDegradedTopologyStates(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	states := trace.Record(gen, 3)
	servers := len(sys.Net.Servers)
	// Slot 1: one server drained. Slot 2: all capacity halved.
	states[1].ServerDown = make([]bool, servers)
	states[1].ServerDown[0] = true
	states[2].CapScale = make([]float64, servers)
	for n := range states[2].CapScale {
		states[2].CapScale[n] = 0.5
	}
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	var lat [3]float64
	for i, st := range states {
		r, err := ctrl.Step(st)
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
		lat[i] = r.Latency.Value()
		if err := sys.Validate(r.Decision.Selection, st); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	// A drained server must not be selected (no device was stranded here).
	st := states[1]
	ctrl2, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ctrl2.Step(st)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range r.Decision.Server {
		if n == 0 {
			t.Errorf("device %d offloaded to drained server 0", i)
		}
	}
}

// TestCapScaleBitExactAtOne: a CapScale vector of all-1 entries must be
// bit-identical to no CapScale at all — the scale multiplies into the
// latency terms unconditionally, and ×1.0 is exact in IEEE 754.
func TestCapScaleBitExactAtOne(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	base := trace.Record(gen, 2)
	scaled := make([]*trace.State, len(base))
	for i, st := range base {
		cp := *st
		cp.CapScale = make([]float64, len(sys.Net.Servers))
		for n := range cp.CapScale {
			cp.CapScale[n] = 1
		}
		scaled[i] = &cp
	}
	run := func(states []*trace.State) []slotTrace {
		ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		return stepTrace(t, ctrl, states)
	}
	if want, got := run(base), run(scaled); !reflect.DeepEqual(got, want) {
		t.Error("unit CapScale diverged from no CapScale")
	}
}

// TestSlotDeadlineErrorPath: the error a fully-exhausted ladder returns
// must wrap ErrSlotDeadline context so operators can tell a deadline
// collapse from a modeling error. A first-slot deadline with a
// zero-latitude budget still succeeds via the greedy rung (the game is
// built before the first checkpoint), so this asserts the success shape.
func TestSlotDeadlineErrorPath(t *testing.T) {
	sys, gen := buildSystem(t, 40, 7)
	st := gen.Next()
	ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetSlotDeadline(0, 1)
	r, err := ctrl.Step(st)
	if err != nil {
		t.Fatalf("first-slot tight budget should degrade, not fail: %v", err)
	}
	if !r.Degraded {
		t.Error("first-slot tight budget produced an undegraded decision")
	}
	if fmt.Sprintf("%v", ErrSlotDeadline) == "" {
		t.Error("ErrSlotDeadline has no message")
	}
}
