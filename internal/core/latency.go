package core

import (
	"math"

	"eotora/internal/par"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// OptimalAllocation computes the closed-form optimal resource shares of
// Lemma 1 (equations (15)–(17)): square-root-proportional fair shares of
// each station's access and fronthaul bandwidth and each server's
// computing capability among the devices that selected them.
//
// The selection must already be valid; the shares of devices sharing a
// resource sum to exactly 1, which saturates constraints (4)–(6) as the
// KKT conditions require.
func (s *System) OptimalAllocation(sel Selection, st *trace.State) Allocation {
	return s.optimalAllocation(sel, st, nil)
}

// optimalAllocation is OptimalAllocation with an optional pool sharding
// the Lemma-1 denominator accumulation (bit-identical; see lemma1Task).
func (s *System) optimalAllocation(sel Selection, st *trace.State, pool *par.Pool) Allocation {
	devices := len(sel.Station)
	a := Allocation{
		AccessShare:    make([]float64, devices),
		FronthaulShare: make([]float64, devices),
		ComputeShare:   make([]float64, devices),
	}

	// Per-station and per-server denominators: Σ_j √(d_j/h_j), Σ_j √(f_j/σ_j).
	sums := borrowSums(len(s.Net.BaseStations), len(s.Net.Servers))
	defer sums.release()
	sums.accumulate(s, sel, st, pool)
	accessDen, fronthaulDen, computeDen := sums.access, sums.fronthaul, sums.compute
	for i := 0; i < devices; i++ {
		k, n := sel.Station[i], sel.Server[i]
		if k < 0 {
			// Inactive device: zero shares.
			continue
		}
		if accessDen[k] > 0 {
			a.AccessShare[i] = math.Sqrt(st.DataLengths[i].Bits()/st.Channels[i][k].BpsPerHz()) / accessDen[k]
		}
		if fronthaulDen[k] > 0 {
			a.FronthaulShare[i] = math.Sqrt(st.DataLengths[i].Bits()/st.FronthaulSE[k].BpsPerHz()) / fronthaulDen[k]
		}
		if computeDen[n] > 0 {
			a.ComputeShare[i] = math.Sqrt(st.TaskSizes[i].Count()/s.Net.Suitability[i][n]) / computeDen[n]
		}
	}
	return a
}

// LatencyBreakdown itemizes one device's slot latency.
type LatencyBreakdown struct {
	// Access is L^{C,A}_i: upload time over the cellular access link.
	Access units.Seconds
	// Fronthaul is L^{C,F}_i: forwarding time over the fronthaul link.
	Fronthaul units.Seconds
	// Processing is L^P_i: execution time on the selected server.
	Processing units.Seconds
}

// Total returns the device's full latency.
func (l LatencyBreakdown) Total() units.Seconds {
	return l.Access + l.Fronthaul + l.Processing
}

// LatencyOf evaluates the overall latency L_t(α_t, β_t) of equations
// (7)–(11) under an arbitrary (not necessarily optimal) allocation. A zero
// share yields an infinite component, matching the formulation's implicit
// requirement that selected devices receive positive shares.
func (s *System) LatencyOf(d Decision, st *trace.State) (total units.Seconds, perDevice []LatencyBreakdown) {
	devices := len(d.Station)
	perDevice = make([]LatencyBreakdown, devices)
	for i := 0; i < devices; i++ {
		k, n := d.Station[i], d.Server[i]
		if k < 0 {
			// Inactive device: contributes zero latency.
			continue
		}
		bs := &s.Net.BaseStations[k]
		srv := &s.Net.Servers[n]

		accessRate := st.Channels[i][k].Rate(units.Frequency(float64(bs.AccessBandwidth) * d.AccessShare[i]))
		fronthaulRate := st.FronthaulSE[k].Rate(units.Frequency(float64(bs.FronthaulBandwidth) * d.FronthaulShare[i]))
		capacity := srv.Capacity(d.Freq[n])
		effective := units.Frequency(float64(capacity) * st.Cap(n) * s.Net.Suitability[i][n] * d.ComputeShare[i])

		perDevice[i] = LatencyBreakdown{
			Access:     units.TransmitTime(st.DataLengths[i], accessRate),
			Fronthaul:  units.TransmitTime(st.DataLengths[i], fronthaulRate),
			Processing: units.ProcessTime(st.TaskSizes[i], effective),
		}
		total += perDevice[i].Total()
	}
	return total, perDevice
}

// ReducedLatency evaluates T_t(x, y, Ω, β) of equation (20): the overall
// latency under the Lemma-1 optimal allocation, computed directly from the
// closed forms (18) and (19) without materializing the shares:
//
//	T^P = Σ_n (Σ_{i→n} √(f_i/σ_{i,n}))² / ω_n
//	T^C = Σ_k (Σ_{i→k} √(d_i/h_{i,k}))² / W^A_k
//	    + Σ_k (Σ_{i→k} √(d_i/h^F_k))² / W^F_k
//
// where ω_n is the server's aggregate capacity at its per-core frequency.
func (s *System) ReducedLatency(sel Selection, freq Frequencies, st *trace.State) units.Seconds {
	return s.reducedLatency(sel, freq, st, nil)
}

// reducedLatency is ReducedLatency with an optional pool sharding the
// Lemma-1 accumulation; the Σ sum²/bandwidth reduction stays serial in
// resource order, so the total is bit-identical for every pool size.
func (s *System) reducedLatency(sel Selection, freq Frequencies, st *trace.State, pool *par.Pool) units.Seconds {
	sums := borrowSums(len(s.Net.BaseStations), len(s.Net.Servers))
	defer sums.release()
	sums.accumulate(s, sel, st, pool)
	accessSum, fronthaulSum, computeSum := sums.access, sums.fronthaul, sums.compute
	total := 0.0
	for k, bs := range s.Net.BaseStations {
		total += accessSum[k] * accessSum[k] / bs.AccessBandwidth.Hertz()
		total += fronthaulSum[k] * fronthaulSum[k] / bs.FronthaulBandwidth.Hertz()
	}
	for n := range s.Net.Servers {
		if computeSum[n] == 0 {
			continue
		}
		total += computeSum[n] * computeSum[n] / (s.Net.Servers[n].Capacity(freq[n]).Hertz() * st.Cap(n))
	}
	return units.Seconds(total)
}

// EnergyCost evaluates C_t(Ω_t, p_t) of equation (13): the slot's total
// energy cost across servers at the given per-core frequencies and price.
func (s *System) EnergyCost(freq Frequencies, price units.Price) units.Money {
	total := units.Money(0)
	for n := range s.Net.Servers {
		e := units.Over(
			units.Power(s.Energy[n].Power(freq[n]).Watts()*float64(s.Net.Servers[n].Cores)),
			units.Seconds(s.SlotSeconds),
		)
		total += price.Cost(e)
	}
	return total
}

// Theta evaluates θ(t) = C_t − C̄, the slot's budget violation.
func (s *System) Theta(freq Frequencies, price units.Price) float64 {
	return float64(s.EnergyCost(freq, price) - s.Budget)
}

// EnergyCostActive is EnergyCost restricted to the servers present in the
// population mask; structurally removed servers draw no power. A nil mask
// means the full population and delegates to EnergyCost exactly.
func (s *System) EnergyCostActive(freq Frequencies, price units.Price, active []bool) units.Money {
	if active == nil {
		return s.EnergyCost(freq, price)
	}
	total := units.Money(0)
	for n := range s.Net.Servers {
		if !active[n] {
			continue
		}
		e := units.Over(
			units.Power(s.Energy[n].Power(freq[n]).Watts()*float64(s.Net.Servers[n].Cores)),
			units.Seconds(s.SlotSeconds),
		)
		total += price.Cost(e)
	}
	return total
}

// ThetaActive is Theta over the active-server population; a nil mask is
// bit-identical to Theta.
func (s *System) ThetaActive(freq Frequencies, price units.Price, active []bool) float64 {
	return float64(s.EnergyCostActive(freq, price, active) - s.Budget)
}
