package core

import (
	"fmt"
	"math"

	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/solver"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// Per-room budgets are an extension beyond the paper's single time-average
// constraint: each edge-server room m carries its own budget C̄_m with its
// own virtual queue Q_m, the standard multi-constraint generalization of
// the drift-plus-penalty framework (Neely [30], Ch. 4). Enable it by
// setting System.RoomBudgets; the controller then drives every room's
// average energy cost under its own cap.

// ValidateRoomBudgets checks that every budgeted room exists and every
// budget is non-negative.
func (s *System) ValidateRoomBudgets() error {
	if s.RoomBudgets == nil {
		return nil
	}
	known := make(map[int]bool, len(s.Net.Rooms))
	for _, r := range s.Net.Rooms {
		known[r.ID] = true
	}
	for room, budget := range s.RoomBudgets {
		if !known[room] {
			return fmt.Errorf("core: budget for unknown room %d", room)
		}
		if budget < 0 {
			return fmt.Errorf("core: negative budget %v for room %d", budget, room)
		}
	}
	for _, r := range s.Net.Rooms {
		if _, ok := s.RoomBudgets[r.ID]; !ok {
			return fmt.Errorf("core: room %d has no budget (all rooms need one in per-room mode)", r.ID)
		}
	}
	return nil
}

// RoomEnergyCosts returns each room's slot energy cost at the given
// frequencies and price.
func (s *System) RoomEnergyCosts(freq Frequencies, price units.Price) map[int]units.Money {
	out := make(map[int]units.Money, len(s.Net.Rooms))
	for n := range s.Net.Servers {
		srv := &s.Net.Servers[n]
		e := units.Over(
			units.Power(s.Energy[n].Power(freq[n]).Watts()*float64(srv.Cores)),
			units.Seconds(s.SlotSeconds),
		)
		out[srv.Room] += price.Cost(e)
	}
	return out
}

// RoomThetas returns θ_m(t) = C_{m,t} − C̄_m for every budgeted room.
func (s *System) RoomThetas(freq Frequencies, price units.Price) map[int]float64 {
	costs := s.RoomEnergyCosts(freq, price)
	out := make(map[int]float64, len(costs))
	for room, cost := range costs {
		out[room] = float64(cost - s.RoomBudgets[room])
	}
	return out
}

// RoomEnergyCostsActive is RoomEnergyCosts restricted to the servers in
// the population mask. Every room keeps an entry (a room whose servers
// are all removed costs zero) so per-room virtual queues keep updating
// across population changes; a nil mask delegates to RoomEnergyCosts.
func (s *System) RoomEnergyCostsActive(freq Frequencies, price units.Price, active []bool) map[int]units.Money {
	if active == nil {
		return s.RoomEnergyCosts(freq, price)
	}
	out := make(map[int]units.Money, len(s.Net.Rooms))
	for _, r := range s.Net.Rooms {
		out[r.ID] = 0
	}
	for n := range s.Net.Servers {
		if !active[n] {
			continue
		}
		srv := &s.Net.Servers[n]
		e := units.Over(
			units.Power(s.Energy[n].Power(freq[n]).Watts()*float64(srv.Cores)),
			units.Seconds(s.SlotSeconds),
		)
		out[srv.Room] += price.Cost(e)
	}
	return out
}

// RoomThetasActive is RoomThetas over the active-server population; a nil
// mask is bit-identical to RoomThetas.
func (s *System) RoomThetasActive(freq Frequencies, price units.Price, active []bool) map[int]float64 {
	costs := s.RoomEnergyCostsActive(freq, price, active)
	out := make(map[int]float64, len(costs))
	for room, cost := range costs {
		out[room] = float64(cost - s.RoomBudgets[room])
	}
	return out
}

// SolveP2BPerRoom solves P2-B with one queue weight per room: server n's
// energy term is weighted by qByRoom of its hosting room.
func (s *System) SolveP2BPerRoom(sel Selection, st *trace.State, v float64, qByRoom map[int]float64) (Frequencies, error) {
	qOf := func(n int) float64 { return qByRoom[s.Net.Servers[n].Room] }
	return s.solveP2B(sel, st, v, qOf, solveInstr{}, nil, nil)
}

// P2ObjectiveRooms evaluates V·T_t + Σ_m Q_m·Θ_m for a candidate decision.
func (s *System) P2ObjectiveRooms(sel Selection, freq Frequencies, st *trace.State, v float64, qByRoom map[int]float64) float64 {
	return s.p2ObjectiveRooms(sel, freq, st, v, qByRoom, nil)
}

// p2ObjectiveRooms is P2ObjectiveRooms with an optional worker pool for
// the Lemma-1 accumulation inside the reduced latency.
func (s *System) p2ObjectiveRooms(sel Selection, freq Frequencies, st *trace.State, v float64, qByRoom map[int]float64, pool *par.Pool) float64 {
	penalty := 0.0
	for room, theta := range s.RoomThetasActive(freq, st.Price, st.ServerActive) {
		penalty += qByRoom[room] * theta
	}
	return v*s.reducedLatency(sel, freq, st, pool).Value() + penalty
}

// BDMARooms runs Algorithm 2 under per-room budgets: the alternation is
// identical, but P2-B weighs each server's energy by its room's queue and
// the objective sums the per-room drift terms.
func (s *System) BDMARooms(st *trace.State, v float64, qByRoom map[int]float64, cfg BDMAConfig, src *rng.Source) (BDMAResult, error) {
	return s.bdmaRoomsScratch(st, v, qByRoom, cfg, src, nil, solveInstr{}, nil, nil)
}

// bdmaRoomsScratch is BDMARooms with an optional reusable P2A, solve
// instruments, worker pool, and slot deadline (see bdmaScratch).
func (s *System) bdmaRoomsScratch(st *trace.State, v float64, qByRoom map[int]float64, cfg BDMAConfig, src *rng.Source, scratch *P2A, in solveInstr, pool *par.Pool, dl *solver.Deadline) (BDMAResult, error) {
	if err := s.ValidateRoomBudgets(); err != nil {
		return BDMAResult{}, err
	}
	if s.RoomBudgets == nil {
		return BDMAResult{}, fmt.Errorf("core: BDMARooms on a system without RoomBudgets")
	}
	for room, q := range qByRoom {
		if q < 0 || math.IsNaN(q) {
			return BDMAResult{}, fmt.Errorf("core: negative queue weight %v for room %d", q, room)
		}
	}
	solve := func(sel Selection, sdl *solver.Deadline) (Frequencies, error) {
		qOf := func(n int) float64 { return qByRoom[s.Net.Servers[n].Room] }
		return s.solveP2B(sel, st, v, qOf, in, pool, sdl)
	}
	objective := func(sel Selection, freq Frequencies) float64 {
		return s.p2ObjectiveRooms(sel, freq, st, v, qByRoom, pool)
	}
	res, err := s.bdmaLoop(st, cfg, src, solve, objective, scratch, in, pool, dl)
	if err != nil {
		return BDMAResult{}, err
	}
	res.RoomThetas = s.RoomThetasActive(res.Freq, st.Price, st.ServerActive)
	// The scalar Theta reports the aggregate violation for logging.
	res.Theta = 0
	for _, theta := range res.RoomThetas {
		res.Theta += theta
	}
	return res, nil
}
