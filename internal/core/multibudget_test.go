package core

import (
	"math"
	"testing"

	"eotora/internal/units"
)

// withRoomBudgets converts a test system to per-room budgets at the given
// fractions of each room's [F^L, F^U] cost range at the reference price.
func withRoomBudgets(t *testing.T, sys *System, fracs map[int]float64) {
	t.Helper()
	ref := units.Price(50)
	lows := sys.RoomEnergyCosts(sys.LowestFrequencies(), ref)
	highs := sys.RoomEnergyCosts(sys.HighestFrequencies(), ref)
	budgets := make(map[int]units.Money, len(fracs))
	for room, frac := range fracs {
		budgets[room] = lows[room] + units.Money(frac*float64(highs[room]-lows[room]))
	}
	sys.RoomBudgets = budgets
}

func TestRoomEnergyCostsSumToTotal(t *testing.T) {
	sys, _ := buildSystem(t, 10, 50)
	freq := sys.HighestFrequencies()
	rooms := sys.RoomEnergyCosts(freq, 60)
	var sum units.Money
	for _, c := range rooms {
		sum += c
	}
	total := sys.EnergyCost(freq, 60)
	if math.Abs(float64(sum-total)) > 1e-9*float64(total) {
		t.Errorf("room costs sum %v ≠ total %v", sum, total)
	}
	if len(rooms) != len(sys.Net.Rooms) {
		t.Errorf("rooms in cost map = %d, want %d", len(rooms), len(sys.Net.Rooms))
	}
}

func TestValidateRoomBudgets(t *testing.T) {
	sys, _ := buildSystem(t, 5, 51)
	if err := sys.ValidateRoomBudgets(); err != nil {
		t.Errorf("nil budgets rejected: %v", err)
	}
	sys.RoomBudgets = map[int]units.Money{99: 1}
	if err := sys.ValidateRoomBudgets(); err == nil {
		t.Error("unknown room accepted")
	}
	sys.RoomBudgets = map[int]units.Money{0: -1, 1: 1}
	if err := sys.ValidateRoomBudgets(); err == nil {
		t.Error("negative budget accepted")
	}
	sys.RoomBudgets = map[int]units.Money{0: 1} // room 1 missing
	if err := sys.ValidateRoomBudgets(); err == nil {
		t.Error("partial budgets accepted")
	}
	withRoomBudgets(t, sys, map[int]float64{0: 0.5, 1: 0.5})
	if err := sys.ValidateRoomBudgets(); err != nil {
		t.Errorf("valid budgets rejected: %v", err)
	}
}

func TestBDMARoomsValidation(t *testing.T) {
	sys, gen := buildSystem(t, 5, 52)
	st := gen.Next()
	if _, err := sys.BDMARooms(st, 50, map[int]float64{0: 1, 1: 1}, BDMAConfig{}, nil); err == nil {
		t.Error("BDMARooms without RoomBudgets accepted")
	}
	withRoomBudgets(t, sys, map[int]float64{0: 0.5, 1: 0.5})
	if _, err := sys.BDMARooms(st, 50, map[int]float64{0: -1, 1: 1}, BDMAConfig{}, nil); err == nil {
		t.Error("negative queue weight accepted")
	}
}

func TestSolveP2BPerRoomPressure(t *testing.T) {
	// A room under heavy queue pressure must run lower frequencies than a
	// free room.
	sys, gen := buildSystem(t, 12, 53)
	withRoomBudgets(t, sys, map[int]float64{0: 0.5, 1: 0.5})
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 1)
	freq, err := sys.SolveP2BPerRoom(sel, st, 50, map[int]float64{0: 1e9, 1: 0})
	if err != nil {
		t.Fatal(err)
	}
	loaded := make(map[int]bool)
	for _, n := range sel.Server {
		loaded[n] = true
	}
	for n := range sys.Net.Servers {
		srv := &sys.Net.Servers[n]
		switch srv.Room {
		case 0: // crushing pressure → F^L
			if math.Abs(float64(freq[n]-srv.MinFreq)) > 1e6 {
				t.Errorf("pressured room server %d at %v, want F^L", n, freq[n])
			}
		case 1: // free energy → loaded servers at F^U
			if loaded[n] && math.Abs(float64(freq[n]-srv.MaxFreq)) > 1e6 {
				t.Errorf("free room server %d at %v, want F^U", n, freq[n])
			}
		}
	}
}

func TestMultiBudgetControllerMeetsPerRoomBudgets(t *testing.T) {
	sys, gen := buildSystem(t, 12, 54)
	// Asymmetric budgets: room 0 tight, room 1 loose.
	withRoomBudgets(t, sys, map[int]float64{0: 0.2, 1: 0.8})
	ctrl, err := NewBDMAController(sys, 100, 2, 0, 54)
	if err != nil {
		t.Fatal(err)
	}
	roomCosts := make(map[int]float64)
	const slots = 150
	for s := 0; s < slots; s++ {
		st := gen.Next()
		res, err := ctrl.Step(st)
		if err != nil {
			t.Fatal(err)
		}
		if res.RoomBacklogs == nil {
			t.Fatal("per-room mode did not report room backlogs")
		}
		for room, c := range sys.RoomEnergyCosts(res.Decision.Freq, st.Price) {
			roomCosts[room] += c.Dollars()
		}
		if res.Backlog < 0 {
			t.Fatal("negative total backlog")
		}
	}
	for room, budget := range sys.RoomBudgets {
		avg := roomCosts[room] / slots
		// Asymptotic constraint; allow 25% slack at 150 slots.
		if avg > budget.Dollars()*1.25 {
			t.Errorf("room %d average cost $%v far above budget $%v", room, avg, budget.Dollars())
		}
	}
	if ctrl.RoomBacklogs() == nil {
		t.Error("controller does not expose room backlogs")
	}
}

func TestMultiBudgetCheckpointRoundtrip(t *testing.T) {
	sysA, genA := buildSystem(t, 8, 55)
	withRoomBudgets(t, sysA, map[int]float64{0: 0.4, 1: 0.6})
	straight, err := NewBDMAController(sysA, 75, 1, 0, 55)
	if err != nil {
		t.Fatal(err)
	}
	var want []float64
	for s := 0; s < 12; s++ {
		res, err := straight.Step(genA.Next())
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.Latency.Value(), res.Backlog)
	}

	sysB, genB := buildSystem(t, 8, 55)
	withRoomBudgets(t, sysB, map[int]float64{0: 0.4, 1: 0.6})
	first, err := NewBDMAController(sysB, 75, 1, 0, 55)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for s := 0; s < 6; s++ {
		res, err := first.Step(genB.Next())
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Latency.Value(), res.Backlog)
	}
	cp := first.Checkpoint()
	if cp.RoomBacklogs == nil {
		t.Fatal("multi-mode checkpoint lacks room backlogs")
	}
	resumed, err := NewBDMAController(sysB, 75, 1, 0, 55)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(cp); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		res, err := resumed.Step(genB.Next())
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, res.Latency.Value(), res.Backlog)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("multi-budget resume diverged at element %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Mode mismatch: a scalar controller must reject a multi checkpoint.
	scalarSys, _ := buildSystem(t, 8, 55)
	scalar, err := NewBDMAController(scalarSys, 75, 1, 0, 55)
	if err != nil {
		t.Fatal(err)
	}
	if err := scalar.Restore(cp); err == nil {
		t.Error("scalar controller accepted multi-budget checkpoint")
	}
}

func TestTightRoomRunsCoolerThanLooseRoom(t *testing.T) {
	// Under asymmetric budgets the tight room's average frequency must be
	// lower than the loose room's.
	sys, gen := buildSystem(t, 12, 56)
	withRoomBudgets(t, sys, map[int]float64{0: 0.1, 1: 0.9})
	ctrl, err := NewBDMAController(sys, 100, 2, 0, 56)
	if err != nil {
		t.Fatal(err)
	}
	sums := make(map[int]float64)
	counts := make(map[int]int)
	const slots = 100
	for s := 0; s < slots; s++ {
		res, err := ctrl.Step(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		for n, f := range res.Decision.Freq {
			room := sys.Net.Servers[n].Room
			sums[room] += f.GigaHertz()
			counts[room]++
		}
	}
	tight := sums[0] / float64(counts[0])
	loose := sums[1] / float64(counts[1])
	if tight >= loose {
		t.Errorf("tight room mean clock %.3f GHz not below loose room %.3f GHz", tight, loose)
	}
}
