package core

import (
	"fmt"
	"math"

	"eotora/internal/game"
	"eotora/internal/rng"
	"eotora/internal/solver"
	"eotora/internal/topology"
	"eotora/internal/trace"
)

// P2A is the per-slot binary subproblem (P2-A) posed as a weighted
// congestion game: minimize T_t(x, y, Ω, β) over the (station, server)
// choices for fixed frequencies Ω. It owns the mapping between game
// strategies and (station, server) pairs.
type P2A struct {
	game  *game.Game
	pairs [][]topology.Pair // [device][strategy] → (station, server)
}

// resource indexing inside the game:
//
//	[0, N)            compute resources C_n with weight 1/ω_n (capacity),
//	[N, N+K)          access links B_k^A with weight 1/W_k^A,
//	[N+K, N+2K)       fronthaul links B_k^F with weight 1/W_k^F.
func (s *System) resourceWeights(freq Frequencies) []float64 {
	servers := len(s.Net.Servers)
	stations := len(s.Net.BaseStations)
	weights := make([]float64, servers+2*stations)
	for n := 0; n < servers; n++ {
		weights[n] = 1 / s.Net.Servers[n].Capacity(freq[n]).Hertz()
	}
	for k := 0; k < stations; k++ {
		weights[servers+k] = 1 / s.Net.BaseStations[k].AccessBandwidth.Hertz()
		weights[servers+stations+k] = 1 / s.Net.BaseStations[k].FronthaulBandwidth.Hertz()
	}
	return weights
}

// NewP2A builds the congestion game for a slot: player i's strategies are
// the feasible (station, server) pairs under the current coverage (h > 0)
// and fronthaul connectivity; the player-resource weights are
//
//	p_{i,C_n}   = √(f_i/σ_{i,n})    (corrected from the paper's √(f/ω) typo,
//	                                 consistent with equation (18)),
//	p_{i,B_k^A} = √(d_i/h_{i,k}),
//	p_{i,B_k^F} = √(d_i/h_k^F).
func (s *System) NewP2A(st *trace.State, freq Frequencies) (*P2A, error) {
	if err := s.CheckState(st); err != nil {
		return nil, err
	}
	if err := s.ValidateFrequencies(freq); err != nil {
		return nil, err
	}
	servers := len(s.Net.Servers)
	stations := len(s.Net.BaseStations)
	_, _, _, devices := s.Net.Counts()

	strategies := make([][][]game.Use, devices)
	pairs := make([][]topology.Pair, devices)
	for i := 0; i < devices; i++ {
		for k := 0; k < stations; k++ {
			if !st.Covered(i, k) {
				continue
			}
			accessW := math.Sqrt(st.DataLengths[i].Bits() / st.Channels[i][k].BpsPerHz())
			fronthaulW := math.Sqrt(st.DataLengths[i].Bits() / st.FronthaulSE[k].BpsPerHz())
			for _, n := range s.Net.ReachableServers(k) {
				computeW := math.Sqrt(st.TaskSizes[i].Count() / s.Net.Suitability[i][n])
				// A zero weight means the device exerts no load on that
				// resource (f = 0 reduces EOTO to the pure-communication
				// P1 problem); omit the use rather than inject a zero the
				// game model rejects.
				uses := make([]game.Use, 0, 3)
				if computeW > 0 {
					uses = append(uses, game.Use{Resource: n, Weight: computeW})
				}
				if accessW > 0 {
					uses = append(uses, game.Use{Resource: servers + k, Weight: accessW})
				}
				if fronthaulW > 0 {
					uses = append(uses, game.Use{Resource: servers + stations + k, Weight: fronthaulW})
				}
				if len(uses) == 0 {
					// f = d = 0: the device is a no-op this slot and is
					// indifferent between pairs; pin a negligible access
					// load to keep the strategy well-formed.
					uses = append(uses, game.Use{Resource: servers + k, Weight: math.SmallestNonzeroFloat64})
				}
				strategies[i] = append(strategies[i], uses)
				pairs[i] = append(pairs[i], topology.Pair{Station: k, Server: n})
			}
		}
		if len(strategies[i]) == 0 {
			return nil, fmt.Errorf("core: device %d has no feasible (station, server) pair this slot", i)
		}
	}
	g, err := game.New(s.resourceWeights(freq), strategies)
	if err != nil {
		return nil, fmt.Errorf("core: building P2-A game: %w", err)
	}
	return &P2A{game: g, pairs: pairs}, nil
}

// Game exposes the underlying congestion game.
func (p *P2A) Game() *game.Game { return p.game }

// Selection converts a game profile into per-device (station, server)
// choices.
func (p *P2A) Selection(profile game.Profile) Selection {
	sel := Selection{
		Station: make([]int, len(profile)),
		Server:  make([]int, len(profile)),
	}
	for i, sIdx := range profile {
		pair := p.pairs[i][sIdx]
		sel.Station[i] = pair.Station
		sel.Server[i] = pair.Server
	}
	return sel
}

// Profile converts a selection back into a game profile; it returns an
// error when a device's (station, server) pair is not among its feasible
// strategies.
func (p *P2A) Profile(sel Selection) (game.Profile, error) {
	profile := make(game.Profile, len(p.pairs))
	for i := range p.pairs {
		found := -1
		for sIdx, pair := range p.pairs[i] {
			if pair.Station == sel.Station[i] && pair.Server == sel.Server[i] {
				found = sIdx
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("core: device %d pair (%d, %d) infeasible", i, sel.Station[i], sel.Server[i])
		}
		profile[i] = found
	}
	return profile, nil
}

// P2ASolver produces a selection for a P2-A instance. Implementations are
// the paper's CGBA and the evaluation's baselines.
type P2ASolver interface {
	// Name identifies the solver in reports ("CGBA", "MCBA", "ROPT", "OPT").
	Name() string
	// Solve returns the chosen profile and solver statistics.
	Solve(p *P2A, src *rng.Source) (game.Result, error)
}

// CGBASolver is the paper's Algorithm 3.
type CGBASolver struct {
	// Lambda is the λ tolerance in [0, 0.125).
	Lambda float64
	// MaxIterations caps the best-response loop (0 = generous default).
	MaxIterations int
	// Pivot selects the mover rule; the zero value is the paper's
	// max-improvement rule.
	Pivot game.PivotRule
}

var _ P2ASolver = CGBASolver{}

// Name implements P2ASolver.
func (c CGBASolver) Name() string { return "CGBA" }

// Solve implements P2ASolver.
func (c CGBASolver) Solve(p *P2A, src *rng.Source) (game.Result, error) {
	return game.CGBA(p.game, game.CGBAConfig{
		Lambda:        c.Lambda,
		MaxIterations: c.MaxIterations,
		Pivot:         c.Pivot,
	}, src)
}

// MCBASolver is the Markov chain Monte Carlo baseline [36].
type MCBASolver struct {
	Config game.MCBAConfig
}

var _ P2ASolver = MCBASolver{}

// Name implements P2ASolver.
func (m MCBASolver) Name() string { return "MCBA" }

// Solve implements P2ASolver.
func (m MCBASolver) Solve(p *P2A, src *rng.Source) (game.Result, error) {
	return game.MCBA(p.game, m.Config, src)
}

// RandomSolver is the selection step of the ROPT baseline: uniformly
// random feasible choices (the optimal Lemma-1 allocation is applied on
// top by the controller).
type RandomSolver struct{}

var _ P2ASolver = RandomSolver{}

// Name implements P2ASolver.
func (RandomSolver) Name() string { return "ROPT" }

// Solve implements P2ASolver.
func (RandomSolver) Solve(p *P2A, src *rng.Source) (game.Result, error) {
	return game.RandomProfile(p.game, src), nil
}

// OptimalSolver is the exact branch-and-bound baseline standing in for the
// paper's Gurobi runs. With zero budgets the result is provably optimal;
// with budgets it reports the best incumbent (warm-started by CGBA).
type OptimalSolver struct {
	Config solver.BnBConfig
}

var _ P2ASolver = OptimalSolver{}

// Name implements P2ASolver.
func (OptimalSolver) Name() string { return "OPT" }

// Solve implements P2ASolver.
func (o OptimalSolver) Solve(p *P2A, src *rng.Source) (game.Result, error) {
	res, _, err := game.Optimal(p.game, o.Config, src)
	return res, err
}
