package core

import (
	"fmt"
	"math"

	"eotora/internal/game"
	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/shard"
	"eotora/internal/solver"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// P2A is the per-slot binary subproblem (P2-A) posed as a weighted
// congestion game: minimize T_t(x, y, Ω, β) over the (station, server)
// choices for fixed frequencies Ω. It owns the mapping between game
// strategies and (station, server) pairs.
//
// A P2A is reusable: BuildP2A refills it for a new slot without
// reallocating (the game arena, pair table, and strategy lookup are
// rebuilt in place), and Reweight swaps only the N compute-resource
// weights when the frequencies change between BDMA rounds but the slot
// state — and therefore the game structure — does not. Engine returns a
// lazily created solve engine bound to the game; CGBA/MCBA solvers run on
// it so their scratch buffers persist across rounds and slots.
type P2A struct {
	sys   *System
	game  *game.Game
	pairs [][]topology.Pair // [device][strategy] → (station, server)

	// Reuse machinery. builder owns the game arena (Build returns a
	// stable pointer into it); pairArena backs the pairs rows.
	builder   *game.Builder
	engine    *game.Engine
	pairArena []topology.Pair
	pairOff   []int32
	stations  int
	servers   int

	// instr holds the engine's observability hooks, applied when the lazy
	// engine is created (and immediately if it already exists); pool is
	// the intra-slot worker pool forwarded to the engine the same way, and
	// dl the slot deadline the engine polls at iteration boundaries.
	instr game.Instruments
	pool  *par.Pool
	dl    *solver.Deadline

	// capScale is the slot's per-server capacity degradation captured at
	// BuildP2A time so Reweight can reapply it between rounds (nil =
	// nominal; see trace.State.CapScale).
	capScale []float64

	// Population bookkeeping: playerDev maps game player → device and
	// devPlayer is its inverse (−1 = inactive device). With the full
	// population both are identity maps, so Selection/Profile behave
	// exactly as the fixed-population code did.
	playerDev []int32
	devPlayer []int32

	// Spare pair arenas ApplyChurn merges into; swapped with the live ones
	// on success, mirroring the game arena's double-buffer discipline.
	sparePairArena []topology.Pair
	sparePairOff   []int32
	sparePlayerDev []int32

	// Previous-slot snapshot ApplyChurn diffs the new state against to
	// decide which players can be kept verbatim. Masks are stored
	// normalized (never nil) through the State accessors.
	prevTasks     []units.Cycles
	prevData      []units.DataSize
	prevChannels  []units.SpectralEfficiency // [device*stations + station]
	prevFronthaul []units.SpectralEfficiency
	prevDown      []bool
	prevDevActive []bool
	prevSrvActive []bool
	haveSnap      bool

	// ApplyChurn scratch (reused across slots).
	serverChanged   []bool
	stationAffected []bool
	oldWeights      []float64
	weightTouched   []int32

	// Shard-plan memo (see shardPlanFor). shardPlan is the compiled
	// player → shard assignment for planTarget, rebuilt lazily because
	// BuildP2A and ApplyChurn can change the active population (and thus
	// the player indexing); planAssign is its reused scratch row.
	shardPlan  *game.ShardPlan
	planAssign []int32
	planTarget int
	planValid  bool
}

// capAt returns the capacity scale for server n: capScale[n], or the
// bit-exact nominal 1 when capScale is nil or short.
func capAt(capScale []float64, n int) float64 {
	if n >= len(capScale) {
		return 1
	}
	return capScale[n]
}

// resource indexing inside the game:
//
//	[0, N)            compute resources C_n with weight 1/ω_n (capacity),
//	[N, N+K)          access links B_k^A with weight 1/W_k^A,
//	[N+K, N+2K)       fronthaul links B_k^F with weight 1/W_k^F.
//
// capScale (nil = nominal) degrades each server's effective capacity; the
// scale-1 multiply is bit-exact, so fault-free builds are unchanged.
func (s *System) fillResourceWeights(weights []float64, freq Frequencies, capScale []float64) {
	servers := len(s.Net.Servers)
	stations := len(s.Net.BaseStations)
	for n := 0; n < servers; n++ {
		weights[n] = 1 / (s.Net.Servers[n].Capacity(freq[n]).Hertz() * capAt(capScale, n))
	}
	for k := 0; k < stations; k++ {
		weights[servers+k] = 1 / s.Net.BaseStations[k].AccessBandwidth.Hertz()
		weights[servers+stations+k] = 1 / s.Net.BaseStations[k].FronthaulBandwidth.Hertz()
	}
}

// NewP2A builds the congestion game for a slot: player i's strategies are
// the feasible (station, server) pairs under the current coverage (h > 0)
// and fronthaul connectivity; the player-resource weights are
//
//	p_{i,C_n}   = √(f_i/σ_{i,n})    (corrected from the paper's √(f/ω) typo,
//	                                 consistent with equation (18)),
//	p_{i,B_k^A} = √(d_i/h_{i,k}),
//	p_{i,B_k^F} = √(d_i/h_k^F).
//
// Hot callers (BDMA rounds, simulation slots) should hold a P2A and call
// BuildP2A/Reweight instead, which reuse its memory.
func (s *System) NewP2A(st *trace.State, freq Frequencies) (*P2A, error) {
	p := new(P2A)
	if err := s.BuildP2A(p, st, freq); err != nil {
		return nil, err
	}
	return p, nil
}

// BuildP2A (re)fills p with the slot's game, reusing p's arenas and any
// engine already bound. The game and pair rows previously exposed by p
// are invalidated. Validation and results are identical to NewP2A.
func (s *System) BuildP2A(p *P2A, st *trace.State, freq Frequencies) error {
	if err := s.CheckState(st); err != nil {
		return err
	}
	if err := s.ValidateFrequencies(freq); err != nil {
		return err
	}
	servers := len(s.Net.Servers)
	stations := len(s.Net.BaseStations)
	_, _, _, devices := s.Net.Counts()

	if p.builder == nil {
		p.builder = game.NewBuilder()
	}
	b := p.builder
	b.Reset(servers + 2*stations)
	s.fillResourceWeights(b.Weights(), freq, st.CapScale)

	p.sys = s
	p.stations, p.servers = stations, servers
	p.capScale = st.CapScale
	p.haveSnap = false
	p.planValid = false
	p.pairArena = p.pairArena[:0]
	p.pairOff = append(p.pairOff[:0], 0)
	p.playerDev = p.playerDev[:0]
	p.devPlayer = resizeNegInt32(p.devPlayer, devices)

	for i := 0; i < devices; i++ {
		if !st.ActiveDevice(i) {
			// Departed device: no player and an empty pair row.
			p.pairOff = append(p.pairOff, int32(len(p.pairArena)))
			continue
		}
		p.devPlayer[i] = int32(len(p.playerDev))
		p.playerDev = append(p.playerDev, int32(i))
		b.NextPlayer()
		count := 0
		// Pass 0 honors ServerDown drains; pass 1 runs only when the drain
		// would strand the device with no feasible pair, re-admitting down
		// servers (a drain is advisory — serving every device wins). With
		// no drains pass 0 visits the same pairs in the same order as
		// before, so fault-free builds are bit-identical.
		for pass := 0; pass < 2 && count == 0; pass++ {
			honorDown := pass == 0
			for k := 0; k < stations; k++ {
				if !st.Covered(i, k) {
					continue
				}
				accessW := math.Sqrt(st.DataLengths[i].Bits() / st.Channels[i][k].BpsPerHz())
				fronthaulW := math.Sqrt(st.DataLengths[i].Bits() / st.FronthaulSE[k].BpsPerHz())
				for _, n := range s.Net.ReachableServers(k) {
					// A structurally removed server is skipped on both
					// passes; a Down drain is advisory and re-admitted on
					// pass 1 when the device would otherwise be stranded.
					if !st.ActiveServer(n) || (honorDown && st.Down(n)) {
						continue
					}
					computeW := math.Sqrt(st.TaskSizes[i].Count() / s.Net.Suitability[i][n])
					b.NextStrategy()
					// A zero weight means the device exerts no load on that
					// resource (f = 0 reduces EOTO to the pure-communication
					// P1 problem); omit the use rather than inject a zero the
					// game model rejects.
					used := false
					if computeW > 0 {
						b.AddUse(n, computeW)
						used = true
					}
					if accessW > 0 {
						b.AddUse(servers+k, accessW)
						used = true
					}
					if fronthaulW > 0 {
						b.AddUse(servers+stations+k, fronthaulW)
						used = true
					}
					if !used {
						// f = d = 0: the device is a no-op this slot and is
						// indifferent between pairs; pin a negligible access
						// load to keep the strategy well-formed.
						b.AddUse(servers+k, math.SmallestNonzeroFloat64)
					}
					p.pairArena = append(p.pairArena, topology.Pair{Station: k, Server: n})
					count++
				}
			}
		}
		if count == 0 {
			return fmt.Errorf("core: device %d has no feasible (station, server) pair this slot", i)
		}
		p.pairOff = append(p.pairOff, int32(len(p.pairArena)))
	}
	g, err := b.Build()
	if err != nil {
		return fmt.Errorf("core: building P2-A game: %w", err)
	}
	p.game = g
	if cap(p.pairs) < devices {
		p.pairs = make([][]topology.Pair, devices)
	} else {
		p.pairs = p.pairs[:devices]
	}
	for i := 0; i < devices; i++ {
		p.pairs[i] = p.pairArena[p.pairOff[i]:p.pairOff[i+1]]
	}
	if p.engine != nil {
		p.engine.Bind(g)
	}
	p.snapshot(st)
	return nil
}

// snapshot captures the per-slot inputs the game structure depends on so
// ApplyChurn can diff the next slot against them. Masks and flags are
// normalized through the State accessors (never nil).
func (p *P2A) snapshot(st *trace.State) {
	devices := len(p.devPlayer)
	p.prevTasks = append(p.prevTasks[:0], st.TaskSizes...)
	p.prevData = append(p.prevData[:0], st.DataLengths...)
	if cap(p.prevChannels) < devices*p.stations {
		p.prevChannels = make([]units.SpectralEfficiency, devices*p.stations)
	} else {
		p.prevChannels = p.prevChannels[:devices*p.stations]
	}
	for i := 0; i < devices; i++ {
		copy(p.prevChannels[i*p.stations:(i+1)*p.stations], st.Channels[i])
	}
	p.prevFronthaul = append(p.prevFronthaul[:0], st.FronthaulSE...)
	p.prevDown = resizeBoolSlice(p.prevDown, p.servers)
	p.prevSrvActive = resizeBoolSlice(p.prevSrvActive, p.servers)
	for n := 0; n < p.servers; n++ {
		p.prevDown[n] = st.Down(n)
		p.prevSrvActive[n] = st.ActiveServer(n)
	}
	p.prevDevActive = resizeBoolSlice(p.prevDevActive, devices)
	for i := 0; i < devices; i++ {
		p.prevDevActive[i] = st.ActiveDevice(i)
	}
	p.haveSnap = true
}

// ApplyChurn refills p for the slot by re-solving only the population
// delta against the previous slot's structure: players whose inputs are
// bit-unchanged (same activity, task, data, channel row, and no change on
// any covered station's fronthaul or reachable servers) are kept verbatim
// through a game mutation; departed devices are dropped, and joined or
// structurally affected devices are restreamed with BuildP2A's exact
// rules. The bound engine's per-player caches survive for kept players
// with only the delta's resource neighborhood invalidated.
//
// The committed game — and every downstream decision — is bit-identical
// to a full BuildP2A of the same state, so callers may treat ApplyChurn
// as a drop-in fast path. A P2A with no usable snapshot (fresh, from a
// different system, or after a failed mutation) falls back to BuildP2A
// automatically.
func (s *System) ApplyChurn(p *P2A, st *trace.State, freq Frequencies) error {
	if !p.haveSnap || p.sys != s {
		return s.BuildP2A(p, st, freq)
	}
	if err := s.CheckState(st); err != nil {
		return err
	}
	if err := s.ValidateFrequencies(freq); err != nil {
		return err
	}
	stations, servers := p.stations, p.servers
	devices := len(p.devPlayer)

	// Which servers changed availability (structural or advisory), and
	// which stations see a changed fronthaul or reachable-server set?
	p.serverChanged = resizeBoolSlice(p.serverChanged, servers)
	anyServerChanged := false
	for n := 0; n < servers; n++ {
		p.serverChanged[n] = st.ActiveServer(n) != p.prevSrvActive[n] || st.Down(n) != p.prevDown[n]
		anyServerChanged = anyServerChanged || p.serverChanged[n]
	}
	p.stationAffected = resizeBoolSlice(p.stationAffected, stations)
	anyStationAffected := false
	for k := 0; k < stations; k++ {
		affected := st.FronthaulSE[k] != p.prevFronthaul[k]
		if !affected && anyServerChanged {
			for _, n := range s.Net.ReachableServers(k) {
				if p.serverChanged[n] {
					affected = true
					break
				}
			}
		}
		p.stationAffected[k] = affected
		anyStationAffected = anyStationAffected || affected
	}

	// keepEligible reports whether device i's strategies are bit-identical
	// to last slot's: active both slots, same task/data, same channel row,
	// and no covered station affected by a fronthaul or server change.
	keepEligible := func(i int) bool {
		if !p.prevDevActive[i] || !st.ActiveDevice(i) {
			return false
		}
		if st.TaskSizes[i] != p.prevTasks[i] || st.DataLengths[i] != p.prevData[i] {
			return false
		}
		row, prevRow := st.Channels[i], p.prevChannels[i*stations:(i+1)*stations]
		for k := 0; k < stations; k++ {
			if row[k] != prevRow[k] {
				return false
			}
			if row[k] > 0 && p.stationAffected[k] {
				return false
			}
		}
		return true
	}

	// Fast path: nothing structural changed anywhere — only the resource
	// weights (frequencies, capacity scales) can differ, and Reweight's
	// update is bit-identical to a fresh fillResourceWeights.
	fullKeep := !anyServerChanged && !anyStationAffected
	for i := 0; fullKeep && i < devices; i++ {
		if st.ActiveDevice(i) != p.prevDevActive[i] {
			fullKeep = false
		} else if st.ActiveDevice(i) && !keepEligible(i) {
			fullKeep = false
		}
	}
	if fullKeep {
		p.capScale = st.CapScale
		if err := p.Reweight(freq); err != nil {
			return err
		}
		p.snapshot(st)
		return nil
	}

	// Mutation merge. Refill the resource weights first (Weights aliases
	// the live game; Commit re-derives every premultiplied factor), and
	// record which resources changed so the engine can invalidate exactly
	// the affected caches.
	b := p.builder
	w := b.Weights()
	p.oldWeights = append(p.oldWeights[:0], w...)
	s.fillResourceWeights(w, freq, st.CapScale)
	p.weightTouched = p.weightTouched[:0]
	for r := range w {
		if w[r] != p.oldWeights[r] {
			p.weightTouched = append(p.weightTouched, int32(r))
		}
	}

	m := b.BeginMutation()
	p.sparePairArena = p.sparePairArena[:0]
	p.sparePairOff = append(p.sparePairOff[:0], 0)
	p.sparePlayerDev = p.sparePlayerDev[:0]
	for i := 0; i < devices; i++ {
		if !st.ActiveDevice(i) {
			p.devPlayer[i] = -1
			p.sparePairOff = append(p.sparePairOff, int32(len(p.sparePairArena)))
			continue
		}
		if keepEligible(i) {
			// Kept verbatim: the old player's strategy spans are copied
			// bit-for-bit, pair row included.
			m.KeepPlayer(int(p.devPlayer[i]))
			p.devPlayer[i] = int32(len(p.sparePlayerDev))
			p.sparePlayerDev = append(p.sparePlayerDev, int32(i))
			p.sparePairArena = append(p.sparePairArena, p.pairArena[p.pairOff[i]:p.pairOff[i+1]]...)
			p.sparePairOff = append(p.sparePairOff, int32(len(p.sparePairArena)))
			continue
		}
		// Restream with BuildP2A's exact expressions and order.
		p.devPlayer[i] = int32(len(p.sparePlayerDev))
		p.sparePlayerDev = append(p.sparePlayerDev, int32(i))
		m.NextPlayer()
		count := 0
		for pass := 0; pass < 2 && count == 0; pass++ {
			honorDown := pass == 0
			for k := 0; k < stations; k++ {
				if !st.Covered(i, k) {
					continue
				}
				accessW := math.Sqrt(st.DataLengths[i].Bits() / st.Channels[i][k].BpsPerHz())
				fronthaulW := math.Sqrt(st.DataLengths[i].Bits() / st.FronthaulSE[k].BpsPerHz())
				for _, n := range s.Net.ReachableServers(k) {
					if !st.ActiveServer(n) || (honorDown && st.Down(n)) {
						continue
					}
					computeW := math.Sqrt(st.TaskSizes[i].Count() / s.Net.Suitability[i][n])
					m.NextStrategy()
					used := false
					if computeW > 0 {
						m.AddUse(n, computeW)
						used = true
					}
					if accessW > 0 {
						m.AddUse(servers+k, accessW)
						used = true
					}
					if fronthaulW > 0 {
						m.AddUse(servers+stations+k, fronthaulW)
						used = true
					}
					if !used {
						m.AddUse(servers+k, math.SmallestNonzeroFloat64)
					}
					p.sparePairArena = append(p.sparePairArena, topology.Pair{Station: k, Server: n})
					count++
				}
			}
		}
		if count == 0 {
			// Abandon the mutation before touching the engine: the old
			// arena is intact but the weights were overwritten, so the
			// next call must rebuild from scratch.
			p.haveSnap = false
			return fmt.Errorf("core: device %d has no feasible (station, server) pair this slot", i)
		}
		p.sparePairOff = append(p.sparePairOff, int32(len(p.sparePairArena)))
	}

	if p.engine != nil {
		p.engine.PrepareMutation(m.Removed())
	}
	// Kept players' premultiplied factors are exact for every resource
	// whose weight did not change; declare the diff so Commit skips the
	// full recompute.
	m.SetReweighted(p.weightTouched)
	g, err := m.Commit()
	if err != nil {
		p.haveSnap = false
		return fmt.Errorf("core: mutating P2-A game: %w", err)
	}
	p.game = g
	if p.engine != nil {
		p.engine.ApplyMutation(g, m.Remap(), p.weightTouched)
	}
	p.pairArena, p.sparePairArena = p.sparePairArena, p.pairArena
	p.pairOff, p.sparePairOff = p.sparePairOff, p.pairOff
	p.playerDev, p.sparePlayerDev = p.sparePlayerDev, p.playerDev
	if cap(p.pairs) < devices {
		p.pairs = make([][]topology.Pair, devices)
	} else {
		p.pairs = p.pairs[:devices]
	}
	for i := 0; i < devices; i++ {
		p.pairs[i] = p.pairArena[p.pairOff[i]:p.pairOff[i+1]]
	}
	p.capScale = st.CapScale
	p.planValid = false
	p.snapshot(st)
	return nil
}

// ApplyChurn is the method form of System.ApplyChurn for a P2A that has
// been built at least once (NewP2A or BuildP2A set its system).
func (p *P2A) ApplyChurn(st *trace.State, freq Frequencies) error {
	if p.sys == nil {
		return fmt.Errorf("core: ApplyChurn on an unbuilt P2A")
	}
	return p.sys.ApplyChurn(p, st, freq)
}

// Reweight updates the game in place for new frequencies: only the N
// compute-resource weights 1/ω_n depend on Ω, so the strategy structure,
// pair table, and link weights built for the slot state are untouched.
// The resulting weights are bit-identical to a fresh BuildP2A with the
// same state and frequencies. The bound engine's caches become stale;
// Engine.CGBA and Engine.MCBA reset on entry, so solver calls are safe.
func (p *P2A) Reweight(freq Frequencies) error {
	if err := p.sys.ValidateFrequencies(freq); err != nil {
		return err
	}
	for n := 0; n < p.servers; n++ {
		m := 1 / (p.sys.Net.Servers[n].Capacity(freq[n]).Hertz() * capAt(p.capScale, n))
		if err := p.game.SetResourceWeight(n, m); err != nil {
			return fmt.Errorf("core: reweighting P2-A game: %w", err)
		}
	}
	return nil
}

// Game exposes the underlying congestion game.
func (p *P2A) Game() *game.Game { return p.game }

// Engine returns a solve engine bound to the game, created on first use
// and rebound automatically on BuildP2A. Not safe for concurrent use.
func (p *P2A) Engine() *game.Engine {
	if p.engine == nil {
		p.engine = game.NewEngine(p.game)
		p.engine.SetInstruments(p.instr)
		p.engine.SetPool(p.pool)
		p.engine.SetDeadline(p.dl)
	}
	return p.engine
}

// SetInstruments installs observability hooks on the P2A's solve engine
// (now if it exists, otherwise when it is lazily created).
func (p *P2A) SetInstruments(in game.Instruments) {
	p.instr = in
	if p.engine != nil {
		p.engine.SetInstruments(in)
	}
}

// SetPool attaches a worker pool to the P2A's solve engine for sharded
// best-response scoring (now if the engine exists, otherwise when it is
// lazily created). Nil detaches it. Solver results are bit-identical
// with or without a pool.
func (p *P2A) SetPool(pool *par.Pool) {
	p.pool = pool
	if p.engine != nil {
		p.engine.SetPool(pool)
	}
}

// SetDeadline attaches a slot deadline to the P2A's solve engine (now if
// the engine exists, otherwise when it is lazily created). Nil detaches
// it; a nil or unarmed deadline never truncates a solve.
func (p *P2A) SetDeadline(dl *solver.Deadline) {
	p.dl = dl
	if p.engine != nil {
		p.engine.SetDeadline(dl)
	}
}

// Selection converts a game profile into per-device (station, server)
// choices. The result is always universe-sized: devices outside the
// active population carry (-1, -1).
func (p *P2A) Selection(profile game.Profile) Selection {
	devices := len(p.devPlayer)
	sel := Selection{
		Station: make([]int, devices),
		Server:  make([]int, devices),
	}
	for i := 0; i < devices; i++ {
		sel.Station[i], sel.Server[i] = -1, -1
	}
	for pl, sIdx := range profile {
		i := int(p.playerDev[pl])
		pair := p.pairs[i][sIdx]
		sel.Station[i] = pair.Station
		sel.Server[i] = pair.Server
	}
	return sel
}

// Profile converts a universe-sized selection back into a game profile
// over the active players; it returns an error when an active device's
// (station, server) pair is not among its feasible strategies. Each
// device's pair row is scanned directly — rows are short (one entry per
// feasible pair), and scanning avoids the dense (device, station,
// server) inverse table the old implementation carried, which at metro
// scale (100k devices × 49 stations × 100 servers) would dwarf the game
// itself.
func (p *P2A) Profile(sel Selection) (game.Profile, error) {
	profile := make(game.Profile, len(p.playerDev))
	for pl := range profile {
		i := int(p.playerDev[pl])
		k, n := sel.Station[i], sel.Server[i]
		found := -1
		for sIdx, pair := range p.pairs[i] {
			if pair.Station == k && pair.Server == n {
				found = sIdx
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("core: device %d pair (%d, %d) infeasible", i, k, n)
		}
		profile[pl] = int(found)
	}
	return profile, nil
}

// ShardsAuto asks the sharded slot solve to use one shard per
// resource-disjoint topology cluster (see CGBASolver.Shards).
const ShardsAuto = -1

// shardPlanFor returns the slot's player → shard assignment for the
// requested shard count: the topology is partitioned into
// resource-disjoint clusters (internal/shard), each active player is
// assigned to the shard owning every station and server its feasible
// pairs touch, and players whose pairs span shards become boundary
// players the sharded solve reconciles serially. A nil plan (with nil
// error) means sharding is off or degenerate (target ≤ 1, or the whole
// topology is one cluster) and the caller should run the unsharded
// path. The compiled plan is memoized per target and invalidated by
// BuildP2A/ApplyChurn, so steady-state slots pay one O(players) scan
// only when the population actually changed.
func (p *P2A) shardPlanFor(target int) (*game.ShardPlan, error) {
	if target == 0 || target == 1 {
		return nil, nil
	}
	if target < 0 && target != ShardsAuto {
		return nil, fmt.Errorf("core: invalid shard count %d", target)
	}
	if p.planValid && p.planTarget == target {
		return p.shardPlan, nil
	}
	want := target
	if want == ShardsAuto {
		want = math.MaxInt // shard.New clamps to the cluster count
	}
	part := shard.New(p.sys.Net, want)
	if part.Shards <= 1 {
		// Single cluster: every player would land in shard 0 and the
		// sharded solve would just delegate — skip the plan entirely.
		p.shardPlan, p.planTarget, p.planValid = nil, target, true
		return nil, nil
	}
	assign := p.planAssign[:0]
	for _, dev := range p.playerDev {
		row := p.pairs[dev]
		sh := part.StationShard[row[0].Station]
		for _, pr := range row {
			if part.StationShard[pr.Station] != sh || part.ServerShard[pr.Server] != sh {
				sh = -1
				break
			}
		}
		assign = append(assign, sh)
	}
	p.planAssign = assign
	var err error
	if p.shardPlan == nil {
		p.shardPlan, err = game.NewShardPlan(part.Shards, assign)
	} else {
		err = p.shardPlan.Reset(part.Shards, assign)
	}
	if err != nil {
		return nil, fmt.Errorf("core: shard plan: %w", err)
	}
	p.planTarget, p.planValid = target, true
	return p.shardPlan, nil
}

// resizeBoolSlice returns s with length n (contents unspecified until the
// caller fills them).
func resizeBoolSlice(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// resizeNegInt32 returns s with length n and every entry −1.
func resizeNegInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = -1
	}
	return s
}

// P2ASolver produces a selection for a P2-A instance. Implementations are
// the paper's CGBA and the evaluation's baselines.
type P2ASolver interface {
	// Name identifies the solver in reports ("CGBA", "MCBA", "ROPT", "OPT").
	Name() string
	// Solve returns the chosen profile and solver statistics.
	Solve(p *P2A, src *rng.Source) (game.Result, error)
}

// warmStartSolver is implemented by P2A solvers whose dynamics can be
// seeded from a feasible profile. BDMA's alternation uses it for rounds
// after the first: round r−1's equilibrium usually sits near round r's
// (only the compute weights moved), so re-solving from it instead of a
// fresh random profile collapses the best-response transient. The warm
// profile comes from the same bdmaLoop call, never from a previous slot,
// so churned and freshly built instances see identical inputs.
type warmStartSolver interface {
	SolveFrom(p *P2A, initial game.Profile, src *rng.Source) (game.Result, error)
}

// CGBASolver is the paper's Algorithm 3.
type CGBASolver struct {
	// Lambda is the λ tolerance in [0, 0.125).
	Lambda float64
	// MaxIterations caps the best-response loop (0 = generous default).
	MaxIterations int
	// Pivot selects the mover rule; the zero value is the paper's
	// max-improvement rule.
	Pivot game.PivotRule
	// Shortlist is the top-k best-response pruning width, forwarded to
	// game.CGBAConfig.Shortlist: 0 = the game package's default,
	// game.ShortlistFull = the exact (unpruned, bit-identical-to-seed)
	// path, positive = that width. See OPERATIONS.md for tuning.
	Shortlist int
	// Shards splits the slot game into resource-disjoint topology
	// clusters solved concurrently and reconciled at the boundary until
	// the global λ-equilibrium certifies (DESIGN.md §13): 0 or 1 =
	// unsharded (bit-identical to the seed path), ≥ 2 = at most that
	// many shards (clamped to the cluster count), ShardsAuto = one shard
	// per cluster.
	Shards int
}

var _ P2ASolver = CGBASolver{}
var _ warmStartSolver = CGBASolver{}

// Name implements P2ASolver.
func (c CGBASolver) Name() string { return "CGBA" }

// Solve implements P2ASolver. It runs on the instance's persistent
// engine, so repeated solves of the same P2A reuse caches and scratch.
func (c CGBASolver) Solve(p *P2A, src *rng.Source) (game.Result, error) {
	return c.solveFrom(p, nil, src)
}

// SolveFrom implements warmStartSolver: Solve seeded with an initial
// profile instead of a random one.
func (c CGBASolver) SolveFrom(p *P2A, initial game.Profile, src *rng.Source) (game.Result, error) {
	return c.solveFrom(p, initial, src)
}

func (c CGBASolver) solveFrom(p *P2A, initial game.Profile, src *rng.Source) (game.Result, error) {
	plan, err := p.shardPlanFor(c.Shards)
	if err != nil {
		return game.Result{}, err
	}
	if plan == nil {
		return p.Engine().CGBA(c.config(initial), src)
	}
	return p.Engine().CGBASharded(c.config(initial), plan, src)
}

func (c CGBASolver) config(initial game.Profile) game.CGBAConfig {
	return game.CGBAConfig{
		Lambda:        c.Lambda,
		MaxIterations: c.MaxIterations,
		Pivot:         c.Pivot,
		Shortlist:     c.Shortlist,
		Initial:       initial,
	}
}

// MCBASolver is the Markov chain Monte Carlo baseline [36].
type MCBASolver struct {
	// Config tunes the Markov chain walk; the zero value selects the
	// game package's defaults.
	Config game.MCBAConfig
}

var _ P2ASolver = MCBASolver{}

// Name implements P2ASolver.
func (m MCBASolver) Name() string { return "MCBA" }

// Solve implements P2ASolver.
func (m MCBASolver) Solve(p *P2A, src *rng.Source) (game.Result, error) {
	return p.Engine().MCBA(m.Config, src)
}

// RandomSolver is the selection step of the ROPT baseline: uniformly
// random feasible choices (the optimal Lemma-1 allocation is applied on
// top by the controller).
type RandomSolver struct{}

var _ P2ASolver = RandomSolver{}

// Name implements P2ASolver.
func (RandomSolver) Name() string { return "ROPT" }

// Solve implements P2ASolver.
func (RandomSolver) Solve(p *P2A, src *rng.Source) (game.Result, error) {
	return game.RandomProfile(p.game, src), nil
}

// OptimalSolver is the exact branch-and-bound baseline standing in for the
// paper's Gurobi runs. With zero budgets the result is provably optimal;
// with budgets it reports the best incumbent (warm-started by CGBA).
type OptimalSolver struct {
	// Config bounds the branch-and-bound search; zero budgets make the
	// solve exact.
	Config solver.BnBConfig
}

var _ P2ASolver = OptimalSolver{}

// Name implements P2ASolver.
func (OptimalSolver) Name() string { return "OPT" }

// Solve implements P2ASolver.
func (o OptimalSolver) Solve(p *P2A, src *rng.Source) (game.Result, error) {
	res, _, err := game.Optimal(p.game, o.Config, src)
	return res, err
}
