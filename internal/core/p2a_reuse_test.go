package core

import (
	"math"
	"testing"

	"eotora/internal/game"
	"eotora/internal/rng"
)

// TestReweightMatchesFresh checks the BDMA-round fast path: Reweight on a
// built P2A must leave the game bit-identical to a fresh NewP2A with the
// same state and frequencies — same resource weights, same CGBA outcome.
func TestReweightMatchesFresh(t *testing.T) {
	sys, gen := buildSystem(t, 12, 41)
	st := gen.Next()

	p, err := sys.NewP2A(st, sys.LowestFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	// A frequency vector strictly inside every server's range.
	freq := make(Frequencies, len(sys.Net.Servers))
	for n := range freq {
		srv := &sys.Net.Servers[n]
		freq[n] = srv.MinFreq + (srv.MaxFreq-srv.MinFreq)/3
	}
	if err := p.Reweight(freq); err != nil {
		t.Fatal(err)
	}
	fresh, err := sys.NewP2A(st, freq)
	if err != nil {
		t.Fatal(err)
	}

	for r := 0; r < fresh.Game().Resources(); r++ {
		got := p.Game().ResourceWeight(r)
		want := fresh.Game().ResourceWeight(r)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("resource %d weight: reweighted %v (bits %#x), fresh %v (bits %#x)",
				r, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	a, err := CGBASolver{}.Solve(p, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CGBASolver{}.Solve(fresh, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.Objective) != math.Float64bits(b.Objective) || a.Iterations != b.Iterations {
		t.Fatalf("reweighted CGBA (%v, %d), fresh (%v, %d)", a.Objective, a.Iterations, b.Objective, b.Iterations)
	}
	for i := range a.Profile {
		if a.Profile[i] != b.Profile[i] {
			t.Fatalf("profile %v, want %v", a.Profile, b.Profile)
		}
	}

	// Out-of-range frequencies must be rejected, like NewP2A.
	bad := freq.Clone()
	bad[0] = sys.Net.Servers[0].MaxFreq * 2
	if err := p.Reweight(bad); err == nil {
		t.Error("Reweight accepted out-of-range frequency")
	}
}

// TestBuildP2AReuseMatchesFresh rebuilds one P2A across several slot
// states and checks every rebuild against a fresh NewP2A: identical
// structure, weights, pair tables, and solver results (the controller's
// cross-slot reuse pattern).
func TestBuildP2AReuseMatchesFresh(t *testing.T) {
	sys, gen := buildSystem(t, 10, 42)
	freq := sys.LowestFrequencies()
	var reused P2A
	for slot := 0; slot < 6; slot++ {
		st := gen.Next()
		if err := sys.BuildP2A(&reused, st, freq); err != nil {
			t.Fatal(err)
		}
		fresh, err := sys.NewP2A(st, freq)
		if err != nil {
			t.Fatal(err)
		}
		rg, fg := reused.Game(), fresh.Game()
		if rg.Players() != fg.Players() || rg.Resources() != fg.Resources() {
			t.Fatalf("slot %d: dims (%d, %d) vs fresh (%d, %d)", slot, rg.Players(), rg.Resources(), fg.Players(), fg.Resources())
		}
		for i := 0; i < rg.Players(); i++ {
			if rg.StrategyCount(i) != fg.StrategyCount(i) {
				t.Fatalf("slot %d: player %d has %d strategies, fresh %d", slot, i, rg.StrategyCount(i), fg.StrategyCount(i))
			}
		}
		for r := 0; r < rg.Resources(); r++ {
			if math.Float64bits(rg.ResourceWeight(r)) != math.Float64bits(fg.ResourceWeight(r)) {
				t.Fatalf("slot %d: resource %d weight differs", slot, r)
			}
		}
		a, err := CGBASolver{}.Solve(&reused, rng.New(int64(100+slot)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := CGBASolver{}.Solve(fresh, rng.New(int64(100+slot)))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(a.Objective) != math.Float64bits(b.Objective) || a.Iterations != b.Iterations {
			t.Fatalf("slot %d: reused CGBA (%v, %d), fresh (%v, %d)", slot, a.Objective, a.Iterations, b.Objective, b.Iterations)
		}
		selA, selB := reused.Selection(a.Profile), fresh.Selection(b.Profile)
		for i := range selA.Station {
			if selA.Station[i] != selB.Station[i] || selA.Server[i] != selB.Server[i] {
				t.Fatalf("slot %d: selections diverge at device %d", slot, i)
			}
		}
	}
}

// TestProfileLookupRoundTrip exercises the (station, server) → strategy
// inverse (a scan of each device's pair row) against the pair table, plus
// its error paths.
func TestProfileLookupRoundTrip(t *testing.T) {
	sys, gen := buildSystem(t, 9, 43)
	st := gen.Next()
	p, err := sys.NewP2A(st, sys.LowestFrequencies())
	if err != nil {
		t.Fatal(err)
	}
	g := p.Game()
	// Every strategy of every player round-trips through Selection/Profile.
	profile := make(game.Profile, g.Players())
	src := rng.New(44)
	for trial := 0; trial < 50; trial++ {
		for i := range profile {
			profile[i] = src.Intn(g.StrategyCount(i))
		}
		sel := p.Selection(profile)
		back, err := p.Profile(sel)
		if err != nil {
			t.Fatal(err)
		}
		for i := range profile {
			if back[i] != profile[i] {
				t.Fatalf("round trip %v → %v", profile, back)
			}
		}
	}
	// Infeasible and out-of-range pairs error.
	sel := p.Selection(make(game.Profile, g.Players()))
	for _, bad := range []struct{ k, n int }{
		{-1, 0},
		{len(sys.Net.BaseStations), 0},
		{0, -1},
		{0, len(sys.Net.Servers)},
	} {
		s2 := sel.Clone()
		s2.Station[0], s2.Server[0] = bad.k, bad.n
		if _, err := p.Profile(s2); err == nil {
			t.Errorf("Profile accepted pair (%d, %d)", bad.k, bad.n)
		}
	}
}

// TestBDMAGoldenSeed pins the full BDMA alternation — Builder-based P2A
// reuse, Reweight rounds, engine-backed CGBA, pooled scratch — to captured
// values. Re-captured when the shortlist fast path and round warm-starting
// landed (same equilibrium as the seed here, reached in fewer steps).
func TestBDMAGoldenSeed(t *testing.T) {
	sys, gen := buildSystem(t, 14, 33)
	st := gen.Next()
	res, err := sys.BDMA(st, 75, 12, BDMAConfig{Iterations: 4}, rng.New(91))
	if err != nil {
		t.Fatal(err)
	}
	if bits := math.Float64bits(res.Objective); bits != 0x4038067153b89a29 {
		t.Errorf("objective bits %#x, want 0x4038067153b89a29", bits)
	}
	if bits := math.Float64bits(res.Latency); bits != 0x3fd593a8c5000954 {
		t.Errorf("latency bits %#x, want 0x3fd593a8c5000954", bits)
	}
	if res.SolverIterations != 7 {
		t.Errorf("solver iterations %d, want 7", res.SolverIterations)
	}
	wantStation := []int{0, 1, 1, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 1}
	wantServer := []int{2, 3, 3, 2, 3, 3, 3, 3, 3, 2, 2, 3, 3, 3}
	for i := range wantStation {
		if res.Selection.Station[i] != wantStation[i] || res.Selection.Server[i] != wantServer[i] {
			t.Fatalf("selection (%v, %v), want (%v, %v)", res.Selection.Station, res.Selection.Server, wantStation, wantServer)
		}
	}
}

// TestControllerGoldenSeed pins 12 controller slots (per-slot derived RNG,
// persistent P2A scratch, queue updates) to captured aggregates.
// Re-captured when the shortlist fast path and round warm-starting landed:
// the solve dynamics select a different (still certified) λ-equilibrium.
func TestControllerGoldenSeed(t *testing.T) {
	sys, gen := buildSystem(t, 10, 34)
	ctrl, err := NewBDMAController(sys, 120, 3, 0.05, 17)
	if err != nil {
		t.Fatal(err)
	}
	var latSum, costSum float64
	for s := 0; s < 12; s++ {
		r, err := ctrl.Step(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		latSum += r.Latency.Value()
		costSum += r.EnergyCost.Dollars()
	}
	if bits := math.Float64bits(latSum); bits != 0x3ff9c9498be2e49f {
		t.Errorf("latency sum bits %#x, want 0x3ff9c9498be2e49f", bits)
	}
	if bits := math.Float64bits(costSum); bits != 0x4010c5c768a6b6a6 {
		t.Errorf("cost sum bits %#x, want 0x4010c5c768a6b6a6", bits)
	}
	if bits := math.Float64bits(ctrl.Backlog()); bits != 0x3fee661a2adeb8b4 {
		t.Errorf("backlog bits %#x, want 0x3fee661a2adeb8b4", bits)
	}
}
