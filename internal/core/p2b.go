package core

import (
	"fmt"
	"math"
	"sync"

	"eotora/internal/par"
	"eotora/internal/solver"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// SolveP2B solves the continuous subproblem P2-B: for fixed (x, y) it
// minimizes
//
//	V·T_t(x̄, ȳ, Ω, β) + Q(t)·Θ(Ω, p_t)
//
// over Ω with ω_n ∈ [F_n^L, F_n^U]. The paper hands this to the CVX
// convex solver; here we exploit that the objective separates per server:
//
//	min_{ω_n}  V·A_n/(cores_n·ω_n) + Q·p_t·cores_n·g_n(ω_n)·slot,
//
// with A_n = (Σ_{i→n} √(f_i/σ_{i,n}))², a strictly convex 1-D problem per
// server (decreasing hyperbola plus convex increasing energy term) solved
// by guaranteed golden-section search. The −C̄ part of Θ is constant in Ω
// and therefore dropped inside the minimization.
func (s *System) SolveP2B(sel Selection, st *trace.State, v, q float64) (Frequencies, error) {
	if q < 0 || math.IsNaN(q) {
		return nil, fmt.Errorf("core: P2-B needs Q ≥ 0, got %v", q)
	}
	return s.solveP2B(sel, st, v, func(int) float64 { return q }, solveInstr{}, nil, nil)
}

// solveP2B is the shared per-server convex solve; qOf supplies the queue
// weight applied to each server's energy term (constant for the paper's
// global budget, per-room for the multi-budget extension). in records
// per-server solver work (the zero value records nothing). pool, when
// non-trivial, fans the independent per-server 1-D minimizations across
// workers: the separability the paper exploits analytically is exactly
// shard independence, each server's result lands in its preallocated
// freq slot, and golden-section search draws no randomness, so the
// returned frequencies are bit-identical to the serial loop.
//
// dl is polled exactly once, at entry — never per server, which would make
// counted-checkpoint budgets depend on the shard layout. An expired
// deadline returns ErrSlotDeadline; the BDMA loop maps it to the best
// decision found so far.
func (s *System) solveP2B(sel Selection, st *trace.State, v float64, qOf func(server int) float64, in solveInstr, pool *par.Pool, dl *solver.Deadline) (Frequencies, error) {
	if !(v > 0) {
		return nil, fmt.Errorf("core: P2-B needs V > 0, got %v", v)
	}
	if dl.Expired() {
		return nil, fmt.Errorf("core: P2-B: %w", ErrSlotDeadline)
	}
	servers := len(s.Net.Servers)

	// A_n = (Σ_{i→n} √(f_i/σ_{i,n}))².
	sums := borrowSums(0, servers)
	defer sums.release()
	sums.accumulateCompute(s, sel, st, pool)
	computeSum := sums.compute

	freq := make(Frequencies, servers)
	if pool.Size() > 1 && servers > 1 {
		t := p2bTaskPool.Get().(*p2bTask)
		shards := pool.Size()
		if shards > servers {
			shards = servers
		}
		t.sys, t.st, t.v, t.qOf, t.in = s, st, v, qOf, in
		t.sums, t.freq, t.shards = computeSum, freq, shards
		if cap(t.errs) < shards {
			t.errs = make([]error, shards)
		} else {
			t.errs = t.errs[:shards]
			for i := range t.errs {
				t.errs[i] = nil
			}
		}
		pool.Run(shards, t)
		var err error
		// Shards own ascending server spans and each stops at its own
		// first failure, so the first errored shard holds the error of
		// the lowest failing server — the one the serial loop returns.
		for _, e := range t.errs {
			if e != nil {
				err = e
				break
			}
		}
		t.release()
		if err != nil {
			return nil, err
		}
		return freq, nil
	}
	for n := 0; n < servers; n++ {
		if !st.ActiveServer(n) {
			// Removed server: pinned at F^L, carries no load and no cost.
			freq[n] = s.Net.Servers[n].MinFreq
			continue
		}
		w, steps, solved, err := s.solveP2BServer(n, computeSum[n], st, v, qOf(n))
		if err != nil {
			return nil, err
		}
		if solved {
			in.p2bSolves.Inc()
			in.p2bIters.Observe(float64(steps))
		}
		freq[n] = w
	}
	return freq, nil
}

// solveP2BServer runs one server's golden-section minimization — the
// single source of truth shared by the serial loop and the parallel
// shards. solved is false for the flat-objective shortcut (no load and
// Q = 0), which performs no search and records no solver work.
func (s *System) solveP2BServer(n int, sum float64, st *trace.State, v, q float64) (w units.Frequency, steps int, solved bool, err error) {
	srv := &s.Net.Servers[n]
	a := sum * sum
	cores := float64(srv.Cores)
	capScale := st.Cap(n)
	model := s.Energy[n]
	obj := func(w float64) float64 {
		latency := 0.0
		if a > 0 {
			latency = a / (cores * w * capScale)
		}
		e := units.Over(units.Power(model.Power(units.Frequency(w)).Watts()*cores), units.Seconds(s.SlotSeconds))
		return v*latency + q*float64(st.Price.Cost(e))
	}
	// With no load and Q = 0 the objective is flat; golden section
	// still returns a boundary point, conventionally F^L.
	if a == 0 && q == 0 {
		return srv.MinFreq, 0, false, nil
	}
	x, _, steps, err := solver.Minimize1DSteps(obj, srv.MinFreq.Hertz(), srv.MaxFreq.Hertz(), 1e3)
	if err != nil {
		return 0, 0, false, fmt.Errorf("core: P2-B server %d: %w", n, err)
	}
	return units.Frequency(x), steps, true, nil
}

// p2bTask fans solveP2BServer across server shards. Each shard writes
// its servers' preallocated freq slots and stops at its first error;
// solver-work instruments are recorded directly from the shards (obs
// atomics commute, so totals match serial on success paths). Tasks are
// pooled so steady-state parallel slots stay allocation-free.
type p2bTask struct {
	sys    *System
	st     *trace.State
	v      float64
	qOf    func(server int) float64
	in     solveInstr
	sums   []float64
	freq   Frequencies
	shards int
	errs   []error
}

var p2bTaskPool = sync.Pool{New: func() any { return new(p2bTask) }}

func (t *p2bTask) Run(shard int) {
	lo, hi := par.Span(len(t.freq), t.shards, shard)
	for n := lo; n < hi; n++ {
		if !t.st.ActiveServer(n) {
			t.freq[n] = t.sys.Net.Servers[n].MinFreq
			continue
		}
		w, steps, solved, err := t.sys.solveP2BServer(n, t.sums[n], t.st, t.v, t.qOf(n))
		if err != nil {
			t.errs[shard] = err
			return
		}
		if solved {
			t.in.p2bSolves.Inc()
			t.in.p2bIters.Observe(float64(steps))
		}
		t.freq[n] = w
	}
}

// release drops all references and returns the task to the pool.
func (t *p2bTask) release() {
	t.sys, t.st, t.qOf, t.in = nil, nil, nil, solveInstr{}
	t.sums, t.freq = nil, nil
	p2bTaskPool.Put(t)
}

// P2Objective evaluates the P2 objective f(x, y, Ω) = V·T_t + Q·Θ for a
// candidate decision.
func (s *System) P2Objective(sel Selection, freq Frequencies, st *trace.State, v, q float64) float64 {
	return s.p2Objective(sel, freq, st, v, q, nil)
}

// p2Objective is P2Objective with an optional pool for the Lemma-1
// accumulation inside the reduced latency.
func (s *System) p2Objective(sel Selection, freq Frequencies, st *trace.State, v, q float64, pool *par.Pool) float64 {
	return v*s.reducedLatency(sel, freq, st, pool).Value() + q*s.ThetaActive(freq, st.Price, st.ServerActive)
}
