package core

import (
	"fmt"
	"math"

	"eotora/internal/solver"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// SolveP2B solves the continuous subproblem P2-B: for fixed (x, y) it
// minimizes
//
//	V·T_t(x̄, ȳ, Ω, β) + Q(t)·Θ(Ω, p_t)
//
// over Ω with ω_n ∈ [F_n^L, F_n^U]. The paper hands this to the CVX
// convex solver; here we exploit that the objective separates per server:
//
//	min_{ω_n}  V·A_n/(cores_n·ω_n) + Q·p_t·cores_n·g_n(ω_n)·slot,
//
// with A_n = (Σ_{i→n} √(f_i/σ_{i,n}))², a strictly convex 1-D problem per
// server (decreasing hyperbola plus convex increasing energy term) solved
// by guaranteed golden-section search. The −C̄ part of Θ is constant in Ω
// and therefore dropped inside the minimization.
func (s *System) SolveP2B(sel Selection, st *trace.State, v, q float64) (Frequencies, error) {
	if q < 0 || math.IsNaN(q) {
		return nil, fmt.Errorf("core: P2-B needs Q ≥ 0, got %v", q)
	}
	return s.solveP2B(sel, st, v, func(int) float64 { return q }, solveInstr{})
}

// solveP2B is the shared per-server convex solve; qOf supplies the queue
// weight applied to each server's energy term (constant for the paper's
// global budget, per-room for the multi-budget extension). in records
// per-server solver work (the zero value records nothing).
func (s *System) solveP2B(sel Selection, st *trace.State, v float64, qOf func(server int) float64, in solveInstr) (Frequencies, error) {
	if !(v > 0) {
		return nil, fmt.Errorf("core: P2-B needs V > 0, got %v", v)
	}
	servers := len(s.Net.Servers)

	// A_n = (Σ_{i→n} √(f_i/σ_{i,n}))².
	sums := borrowSums(0, servers)
	defer sums.release()
	computeSum := sums.compute
	for i := range sel.Server {
		n := sel.Server[i]
		computeSum[n] += math.Sqrt(st.TaskSizes[i].Count() / s.Net.Suitability[i][n])
	}

	freq := make(Frequencies, servers)
	for n := 0; n < servers; n++ {
		srv := &s.Net.Servers[n]
		a := computeSum[n] * computeSum[n]
		cores := float64(srv.Cores)
		model := s.Energy[n]
		q := qOf(n)
		obj := func(w float64) float64 {
			latency := 0.0
			if a > 0 {
				latency = a / (cores * w)
			}
			e := units.Over(units.Power(model.Power(units.Frequency(w)).Watts()*cores), units.Seconds(s.SlotSeconds))
			return v*latency + q*float64(st.Price.Cost(e))
		}
		// With no load and Q = 0 the objective is flat; golden section
		// still returns a boundary point, conventionally F^L.
		if a == 0 && q == 0 {
			freq[n] = srv.MinFreq
			continue
		}
		w, _, steps, err := solver.Minimize1DSteps(obj, srv.MinFreq.Hertz(), srv.MaxFreq.Hertz(), 1e3)
		if err != nil {
			return nil, fmt.Errorf("core: P2-B server %d: %w", n, err)
		}
		in.p2bSolves.Inc()
		in.p2bIters.Observe(float64(steps))
		freq[n] = units.Frequency(w)
	}
	return freq, nil
}

// P2Objective evaluates the P2 objective f(x, y, Ω) = V·T_t + Q·Θ for a
// candidate decision.
func (s *System) P2Objective(sel Selection, freq Frequencies, st *trace.State, v, q float64) float64 {
	return v*s.ReducedLatency(sel, freq, st).Value() + q*s.Theta(freq, st.Price)
}
