package core

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// corePoolSizes is the pool-size matrix the equivalence tests run:
// 0 means "no pool attached" (the exact serial path).
func corePoolSizes() []int {
	return []int{0, 1, 2, runtime.NumCPU() + 1}
}

func withPool(size int) *par.Pool {
	if size == 0 {
		return nil
	}
	return par.New(size)
}

// stepTrace runs a controller over the given states and flattens every
// decision-relevant quantity into comparable values (float bits, ints).
type slotTrace struct {
	Stations, Servers []int
	FreqBits          []uint64
	LatencyBits       uint64
	CostBits          uint64
	ThetaBits         uint64
	BacklogBits       uint64
	ObjectiveBits     uint64
	SolverIterations  int
}

func stepTrace(t *testing.T, ctrl *Controller, states []*trace.State) []slotTrace {
	t.Helper()
	out := make([]slotTrace, 0, len(states))
	for _, st := range states {
		r, err := ctrl.Step(st)
		if err != nil {
			t.Fatal(err)
		}
		freqBits := make([]uint64, len(r.Decision.Freq))
		for n, f := range r.Decision.Freq {
			freqBits[n] = math.Float64bits(float64(f))
		}
		out = append(out, slotTrace{
			Stations:         append([]int(nil), r.Decision.Station...),
			Servers:          append([]int(nil), r.Decision.Server...),
			FreqBits:         freqBits,
			LatencyBits:      math.Float64bits(r.Latency.Value()),
			CostBits:         math.Float64bits(float64(r.EnergyCost)),
			ThetaBits:        math.Float64bits(r.Theta),
			BacklogBits:      math.Float64bits(r.Backlog),
			ObjectiveBits:    math.Float64bits(r.Objective),
			SolverIterations: r.SolverIterations,
		})
	}
	return out
}

// comparableSnapshot strips the metrics that legitimately differ between
// serial and pooled runs: wall-clock timings and the pool's own series.
func comparableSnapshot(reg *obs.Registry) obs.Snapshot {
	snap := reg.Snapshot()
	delete(snap.Histograms, MetricDecisionSeconds)
	delete(snap.Counters, par.MetricRegions)
	delete(snap.Histograms, par.MetricRegionShards)
	delete(snap.Gauges, par.MetricWorkers)
	// Never-observed histograms snapshot Min/Max as NaN, which is never
	// DeepEqual to itself; drop them. An empty-vs-populated mismatch still
	// fails because the key then exists on one side only.
	for name, h := range snap.Histograms {
		if h.Count == 0 {
			delete(snap.Histograms, name)
		}
	}
	return snap
}

// TestControllerPoolMatrix is the end-to-end determinism contract at the
// controller level: a pooled controller's selections, frequencies,
// objectives, queue trajectory, solver iteration counts, and non-timing
// observability series are bit-identical to serial at every pool size.
// The topology is large enough (70 devices) to cross both parallel
// gates (parRefreshMinPlayers, lemma1MinDevices).
func TestControllerPoolMatrix(t *testing.T) {
	const devices, seed, slots = 70, 21, 6
	build := func() (*Controller, []*trace.State) {
		sys, gen := buildSystem(t, devices, seed)
		ctrl, err := NewBDMAController(sys, 110, 3, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		return ctrl, trace.Record(gen, slots)
	}

	serialCtrl, states := build()
	serialReg := obs.New()
	serialCtrl.SetObs(serialReg)
	want := stepTrace(t, serialCtrl, states)
	wantSnap := comparableSnapshot(serialReg)

	for _, size := range corePoolSizes()[1:] {
		t.Run(fmt.Sprintf("pool=%d", size), func(t *testing.T) {
			pool := par.New(size)
			defer pool.Close()
			ctrl, states := build()
			reg := obs.New()
			ctrl.SetObs(reg)
			ctrl.SetPool(pool)
			got := stepTrace(t, ctrl, states)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("slot trace diverged from serial")
			}
			if snap := comparableSnapshot(reg); !reflect.DeepEqual(snap, wantSnap) {
				t.Errorf("obs snapshot diverged:\n got %+v\nwant %+v", snap, wantSnap)
			}
		})
	}
}

// TestControllerRoomsPoolMatrix covers the per-room budget path (its own
// BDMA wrapper, P2-B queue weights, and objective).
func TestControllerRoomsPoolMatrix(t *testing.T) {
	const devices, seed, slots = 66, 13, 4
	build := func() (*Controller, []*trace.State) {
		sys, gen := buildSystem(t, devices, seed)
		withRoomBudgets(t, sys, map[int]float64{0: 0.5, 1: 0.4})
		ctrl, err := NewBDMAController(sys, 90, 2, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		return ctrl, trace.Record(gen, slots)
	}
	serialCtrl, states := build()
	want := stepTrace(t, serialCtrl, states)
	for _, size := range corePoolSizes()[1:] {
		pool := par.New(size)
		ctrl, states := build()
		ctrl.SetPool(pool)
		got := stepTrace(t, ctrl, states)
		pool.Close()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pool %d: rooms slot trace diverged from serial", size)
		}
	}
}

// TestSolveP2BPoolMatrix checks the per-server fan-out in isolation,
// including the solver-work instruments.
func TestSolveP2BPoolMatrix(t *testing.T) {
	sys, gen := buildSystem(t, 80, 17)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 3)

	serialReg := obs.New()
	serialIn := solveInstr{
		p2bSolves: serialReg.Counter(MetricP2BSolves),
		p2bIters:  serialReg.Histogram(MetricP2BIterations),
	}
	want, err := sys.solveP2B(sel, st, 120, func(int) float64 { return 7 }, serialIn, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range corePoolSizes()[1:] {
		pool := par.New(size)
		reg := obs.New()
		in := solveInstr{
			p2bSolves: reg.Counter(MetricP2BSolves),
			p2bIters:  reg.Histogram(MetricP2BIterations),
		}
		got, err := sys.solveP2B(sel, st, 120, func(int) float64 { return 7 }, in, pool, nil)
		pool.Close()
		if err != nil {
			t.Fatalf("pool %d: %v", size, err)
		}
		for n := range want {
			if math.Float64bits(float64(got[n])) != math.Float64bits(float64(want[n])) {
				t.Errorf("pool %d: server %d frequency %v, want %v", size, n, got[n], want[n])
			}
		}
		if !reflect.DeepEqual(reg.Snapshot(), serialReg.Snapshot()) {
			t.Errorf("pool %d: P2-B instruments diverged", size)
		}
	}
}

// TestLemma1PoolMatrix checks the sharded accumulators behind
// ReducedLatency and OptimalAllocation in isolation.
func TestLemma1PoolMatrix(t *testing.T) {
	sys, gen := buildSystem(t, 90, 29)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 11)
	freq := sys.HighestFrequencies()

	wantLat := sys.ReducedLatency(sel, freq, st)
	wantAlloc := sys.OptimalAllocation(sel, st)
	for _, size := range corePoolSizes()[1:] {
		pool := par.New(size)
		gotLat := sys.reducedLatency(sel, freq, st, pool)
		gotAlloc := sys.optimalAllocation(sel, st, pool)
		pool.Close()
		if math.Float64bits(gotLat.Value()) != math.Float64bits(wantLat.Value()) {
			t.Errorf("pool %d: reduced latency bits %#x, want %#x",
				size, math.Float64bits(gotLat.Value()), math.Float64bits(wantLat.Value()))
		}
		if !reflect.DeepEqual(gotAlloc, wantAlloc) {
			t.Errorf("pool %d: allocation diverged", size)
		}
	}
}

// TestSolveP2BPoolError checks that the parallel path reports the same
// error as serial: the lowest failing server wins, regardless of which
// shard hit its failure first.
func TestSolveP2BPoolError(t *testing.T) {
	sys, gen := buildSystem(t, 80, 41)
	st := gen.Next()
	sel := feasibleSelection(t, sys, st, 3)
	// Corrupt every server's frequency range so each per-server solve
	// fails; serial reports server 0.
	for n := range sys.Net.Servers {
		sys.Net.Servers[n].MinFreq = 4 * units.GHz
		sys.Net.Servers[n].MaxFreq = 1 * units.GHz
	}
	_, serialErr := sys.solveP2B(sel, st, 100, func(int) float64 { return 1 }, solveInstr{}, nil, nil)
	if serialErr == nil {
		t.Fatal("expected serial error")
	}
	for _, size := range corePoolSizes()[1:] {
		pool := par.New(size)
		_, err := sys.solveP2B(sel, st, 100, func(int) float64 { return 1 }, solveInstr{}, pool, nil)
		pool.Close()
		if err == nil || err.Error() != serialErr.Error() {
			t.Errorf("pool %d: error %v, want %v", size, err, serialErr)
		}
	}
}

// TestControllerPoolSteadyStateAllocs guards the "zero additional
// steady-state allocations per slot" acceptance bar: after warmup, a
// pooled controller step must not allocate more than the serial step.
func TestControllerPoolSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement in -short mode")
	}
	measure := func(pool *par.Pool) float64 {
		sys, gen := buildSystem(t, 70, 21)
		ctrl, err := NewBDMAController(sys, 110, 3, 0, 9)
		if err != nil {
			t.Fatal(err)
		}
		if pool != nil {
			ctrl.SetPool(pool)
		}
		states := trace.Record(gen, 8)
		i := 0
		step := func() {
			if _, err := ctrl.Step(states[i%len(states)]); err != nil {
				t.Fatal(err)
			}
			i++
		}
		for w := 0; w < 4; w++ { // warm caches, scratch pools, worker stacks
			step()
		}
		return testing.AllocsPerRun(20, step)
	}
	serial := measure(nil)
	pool := par.New(runtime.NumCPU() + 1)
	defer pool.Close()
	pooled := measure(pool)
	// Slack of 2 absorbs sync.Pool evictions under GC; the contract is
	// "no structural per-slot allocation added by the pool path".
	if pooled > serial+2 {
		t.Errorf("pooled step allocates %.1f/slot, serial %.1f/slot", pooled, serial)
	}
}

// FuzzParallelEquivalence drives random topologies, traces, and pool
// sizes through the controller and requires the pooled run to be
// bit-identical to serial. Device counts straddle the parallel gates so
// both the gated-off and sharded paths are exercised.
func FuzzParallelEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(2), uint8(40))
	f.Add(int64(3), int64(4), uint8(5), uint8(70))
	f.Add(int64(7), int64(8), uint8(3), uint8(12))
	f.Fuzz(func(t *testing.T, topoSeed, traceSeed int64, poolSize, deviceByte uint8) {
		devices := 6 + int(deviceByte)%90
		size := 2 + int(poolSize)%6
		src := rng.New(topoSeed)
		net, err := topology.Generate(smallSpec(devices), src.Derive("net"))
		if err != nil {
			t.Skip() // infeasible random topology
		}
		models := DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
		sys, err := NewSystem(net, models, 3600, 1)
		if err != nil {
			t.Skip()
		}
		low := sys.EnergyCost(sys.LowestFrequencies(), 50)
		high := sys.EnergyCost(sys.HighestFrequencies(), 50)
		sys.Budget = (low + high) / 2
		gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), traceSeed)
		if err != nil {
			t.Skip()
		}
		states := trace.Record(gen, 2)

		run := func(pool *par.Pool) []slotTrace {
			ctrl, err := NewBDMAController(sys, 100, 2, 0.05, 7)
			if err != nil {
				t.Fatal(err)
			}
			ctrl.SetPool(pool)
			return stepTrace(t, ctrl, states)
		}
		want := run(nil)
		pool := par.New(size)
		defer pool.Close()
		if got := run(pool); !reflect.DeepEqual(got, want) {
			t.Fatalf("pool size %d diverged from serial (devices=%d)", size, devices)
		}
	})
}
