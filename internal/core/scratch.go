package core

import (
	"math"
	"sync"

	"eotora/internal/par"
	"eotora/internal/trace"
)

// slotSums is pooled accumulator scratch for the per-station and
// per-server sums that ReducedLatency, OptimalAllocation, and solveP2B
// rebuild every call — the Σ √(d/h) and Σ √(f/σ) denominators of
// Lemma 1. Pooling them takes the controller's steady-state slot from
// O(rounds·resources) transient slices down to near-zero heap traffic;
// the values are zeroed on borrow and accumulated in the same order as
// before, so every result is bit-identical to the allocating path.
type slotSums struct {
	access    []float64
	fronthaul []float64
	compute   []float64

	// task is the embedded parallel-accumulate region (see lemma1Task);
	// living inside the pooled struct keeps parallel slots alloc-free.
	task lemma1Task
}

var sumsPool = sync.Pool{New: func() any { return new(slotSums) }}

// borrowSums returns zeroed scratch sized for the system's stations and
// servers. Callers must release it when done and must not retain the
// slices afterwards.
func borrowSums(stations, servers int) *slotSums {
	sc := sumsPool.Get().(*slotSums)
	sc.access = resizeZeroFloat(sc.access, stations)
	sc.fronthaul = resizeZeroFloat(sc.fronthaul, stations)
	sc.compute = resizeZeroFloat(sc.compute, servers)
	return sc
}

func (sc *slotSums) release() { sumsPool.Put(sc) }

func resizeZeroFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// lemma1MinDevices gates the parallel accumulators: below this many
// devices the per-device sqrt work doesn't cover a region's wake/join
// cost. A pure perf threshold — results never depend on it.
const lemma1MinDevices = 64

// lemma1Task is the sharded Lemma-1 accumulation. Shards split the
// RESOURCE space, not the devices: shard s owns the stations and servers
// in its par.Span, scans all devices, and accumulates only the sums of
// its own resources. Each per-resource sum therefore adds its device
// terms in ascending device order — exactly the serial loop's order —
// so every sum is bit-identical to serial (float addition is not
// associative; device-sharded accumulation would reorder it). Writes
// are disjoint per shard: no shard touches another's resources.
type lemma1Task struct {
	sums        *slotSums
	sys         *System
	sel         Selection
	st          *trace.State
	shards      int
	computeOnly bool // solveP2B needs only the compute sums
}

func (t *lemma1Task) Run(shard int) {
	sc, s, st, sel := t.sums, t.sys, t.st, t.sel
	nLo, nHi := par.Span(len(sc.compute), t.shards, shard)
	if t.computeOnly {
		for i := range sel.Server {
			n := sel.Server[i]
			if n >= nLo && n < nHi {
				sc.compute[n] += math.Sqrt(st.TaskSizes[i].Count() / s.Net.Suitability[i][n])
			}
		}
		return
	}
	kLo, kHi := par.Span(len(sc.access), t.shards, shard)
	for i := range sel.Station {
		k, n := sel.Station[i], sel.Server[i]
		if k >= kLo && k < kHi {
			sc.access[k] += math.Sqrt(st.DataLengths[i].Bits() / st.Channels[i][k].BpsPerHz())
			sc.fronthaul[k] += math.Sqrt(st.DataLengths[i].Bits() / st.FronthaulSE[k].BpsPerHz())
		}
		if n >= nLo && n < nHi {
			sc.compute[n] += math.Sqrt(st.TaskSizes[i].Count() / s.Net.Suitability[i][n])
		}
	}
}

// accumulate fills all three Lemma-1 denominator sets for (sel, st),
// sharding across the pool for large instances. Serial (nil/size-1
// pool, or few devices) runs the exact historical one-pass loop.
func (sc *slotSums) accumulate(s *System, sel Selection, st *trace.State, pool *par.Pool) {
	if pool.Size() > 1 && len(sel.Station) >= lemma1MinDevices {
		sc.runLemma1(s, sel, st, pool, false)
		return
	}
	for i := range sel.Station {
		k, n := sel.Station[i], sel.Server[i]
		if k < 0 || n < 0 {
			// Inactive device: no resource demand. The sharded path skips
			// these too, because -1 falls outside every shard span.
			continue
		}
		sc.access[k] += math.Sqrt(st.DataLengths[i].Bits() / st.Channels[i][k].BpsPerHz())
		sc.fronthaul[k] += math.Sqrt(st.DataLengths[i].Bits() / st.FronthaulSE[k].BpsPerHz())
		sc.compute[n] += math.Sqrt(st.TaskSizes[i].Count() / s.Net.Suitability[i][n])
	}
}

// accumulateCompute fills only the per-server compute sums (P2-B's A_n).
func (sc *slotSums) accumulateCompute(s *System, sel Selection, st *trace.State, pool *par.Pool) {
	if pool.Size() > 1 && len(sel.Server) >= lemma1MinDevices && len(sc.compute) > 1 {
		sc.runLemma1(s, sel, st, pool, true)
		return
	}
	for i := range sel.Server {
		n := sel.Server[i]
		if n < 0 {
			continue
		}
		sc.compute[n] += math.Sqrt(st.TaskSizes[i].Count() / s.Net.Suitability[i][n])
	}
}

func (sc *slotSums) runLemma1(s *System, sel Selection, st *trace.State, pool *par.Pool, computeOnly bool) {
	shards := pool.Size()
	if lim := len(sc.compute) + len(sc.access); shards > lim {
		shards = lim
	}
	sc.task = lemma1Task{sums: sc, sys: s, sel: sel, st: st, shards: shards, computeOnly: computeOnly}
	pool.Run(shards, &sc.task)
	sc.task = lemma1Task{} // drop the state/selection refs before re-pooling
}
