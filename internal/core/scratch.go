package core

import "sync"

// slotSums is pooled accumulator scratch for the per-station and
// per-server sums that ReducedLatency, OptimalAllocation, and solveP2B
// rebuild every call — the Σ √(d/h) and Σ √(f/σ) denominators of
// Lemma 1. Pooling them takes the controller's steady-state slot from
// O(rounds·resources) transient slices down to near-zero heap traffic;
// the values are zeroed on borrow and accumulated in the same order as
// before, so every result is bit-identical to the allocating path.
type slotSums struct {
	access    []float64
	fronthaul []float64
	compute   []float64
}

var sumsPool = sync.Pool{New: func() any { return new(slotSums) }}

// borrowSums returns zeroed scratch sized for the system's stations and
// servers. Callers must release it when done and must not retain the
// slices afterwards.
func borrowSums(stations, servers int) *slotSums {
	sc := sumsPool.Get().(*slotSums)
	sc.access = resizeZeroFloat(sc.access, stations)
	sc.fronthaul = resizeZeroFloat(sc.fronthaul, stations)
	sc.compute = resizeZeroFloat(sc.compute, servers)
	return sc
}

func (sc *slotSums) release() { sumsPool.Put(sc) }

func resizeZeroFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
