package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"eotora/internal/game"
	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// buildMetroSystem constructs a system over the metro preset — a wide
// gridded topology whose station–room wiring splits into many
// resource-disjoint clusters — plus a matching state generator. The
// budget is set the same way buildSystem does.
func buildMetroSystem(t testing.TB, devices int, seed int64) (*System, *trace.Generator) {
	t.Helper()
	src := rng.New(seed)
	net, err := topology.Generate(topology.MetroSpec(devices), src.Derive("net"))
	if err != nil {
		t.Fatal(err)
	}
	models := DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
	sys, err := NewSystem(net, models, 3600, 1)
	if err != nil {
		t.Fatal(err)
	}
	meanPrice := units.Price(50)
	low := sys.EnergyCost(sys.LowestFrequencies(), meanPrice)
	high := sys.EnergyCost(sys.HighestFrequencies(), meanPrice)
	sys.Budget = (low + high) / 2
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

func TestShardPlanFor(t *testing.T) {
	sys, gen := buildMetroSystem(t, 60, 5)
	p, err := sys.NewP2A(gen.Next(), sys.LowestFrequencies())
	if err != nil {
		t.Fatal(err)
	}

	// Off switches return no plan and no error.
	for _, off := range []int{0, 1} {
		if plan, err := p.shardPlanFor(off); err != nil || plan != nil {
			t.Fatalf("shardPlanFor(%d) = (%v, %v), want (nil, nil)", off, plan, err)
		}
	}
	if _, err := p.shardPlanFor(-3); err == nil {
		t.Fatal("invalid shard count accepted")
	}

	plan, err := p.shardPlanFor(ShardsAuto)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Shards() < 2 {
		t.Fatalf("metro preset should split into ≥ 2 shards, got %v", plan)
	}
	if plan.Players() != p.Game().Players() {
		t.Fatalf("plan covers %d players, game has %d", plan.Players(), p.Game().Players())
	}
	if plan.Boundary() >= plan.Players() {
		t.Fatalf("every player is boundary (%d of %d) — partition degenerate",
			plan.Boundary(), plan.Players())
	}

	// Memoized: the same target returns the identical compiled plan.
	again, err := p.shardPlanFor(ShardsAuto)
	if err != nil {
		t.Fatal(err)
	}
	if again != plan {
		t.Error("memoized plan not reused for an unchanged population")
	}

	// A different target recompiles (reusing the allocation) with the
	// requested shard count.
	two, err := p.shardPlanFor(2)
	if err != nil {
		t.Fatal(err)
	}
	if two.Shards() != 2 {
		t.Fatalf("shardPlanFor(2) produced %d shards", two.Shards())
	}

	// Rebuilding the instance invalidates the memo.
	if err := sys.BuildP2A(p, gen.Next(), sys.LowestFrequencies()); err != nil {
		t.Fatal(err)
	}
	if p.planValid {
		t.Error("BuildP2A left the shard-plan memo valid")
	}
	if _, err := p.shardPlanFor(ShardsAuto); err != nil {
		t.Fatal(err)
	}
	if !p.planValid {
		t.Error("shardPlanFor did not re-validate the memo")
	}
}

func TestSetShardsValidation(t *testing.T) {
	sys, _ := buildSystem(t, 8, 3)
	mcba, err := NewMCBAController(sys, 110, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := mcba.SetShards(2); err == nil {
		t.Error("SetShards accepted on an MCBA controller")
	}

	cgba, err := NewBDMAController(sys, 110, 2, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, 8, ShardsAuto} {
		if err := cgba.SetShards(n); err != nil {
			t.Errorf("SetShards(%d) = %v", n, err)
		}
	}
	if err := cgba.SetShards(-2); err == nil {
		t.Error("SetShards(-2) accepted")
	}

	// A controller with the implicit default solver materializes CGBA.
	def, err := NewController(sys, ControllerConfig{V: 110, BDMA: BDMAConfig{Iterations: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := def.SetShards(2); err != nil {
		t.Errorf("SetShards on the default solver: %v", err)
	}
	if err := def.SetShortlist(8); err != nil {
		t.Errorf("SetShortlist on the default solver: %v", err)
	}
	if def.SolverName() != "CGBA" {
		t.Errorf("default solver is %s", def.SolverName())
	}
}

// TestControllerShardsOffBitIdentical is the shards ∈ {unset, 0, 1} half
// of the equivalence contract at the controller level: on a topology
// that genuinely clusters, a disabled shard knob must leave every
// decision bit-identical to the seed path at every pool size.
func TestControllerShardsOffBitIdentical(t *testing.T) {
	const devices, seed, slots = 48, 31, 3
	build := func() (*Controller, []*trace.State) {
		sys, gen := buildMetroSystem(t, devices, seed)
		ctrl, err := NewBDMAController(sys, 110, 2, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		return ctrl, trace.Record(gen, slots)
	}
	baseCtrl, states := build()
	want := stepTrace(t, baseCtrl, states)

	for _, shards := range []int{0, 1} {
		for _, size := range []int{0, 4} {
			t.Run(fmt.Sprintf("shards=%d/pool=%d", shards, size), func(t *testing.T) {
				ctrl, states := build()
				if err := ctrl.SetShards(shards); err != nil {
					t.Fatal(err)
				}
				if pool := withPool(size); pool != nil {
					defer pool.Close()
					ctrl.SetPool(pool)
				}
				if got := stepTrace(t, ctrl, states); !reflect.DeepEqual(got, want) {
					t.Error("slot trace diverged from the unsharded baseline")
				}
			})
		}
	}
}

// TestControllerSharded drives the full sharded slot path: auto
// sharding over the metro preset, the gap audit sampling every second
// slot into the shard.* series, feasible decisions throughout, and a
// trajectory that is bit-identical across pool sizes and repeats.
func TestControllerSharded(t *testing.T) {
	const devices, seed, slots = 64, 33, 4
	run := func(size int) ([]slotTrace, []uint64, obs.Snapshot) {
		sys, gen := buildMetroSystem(t, devices, seed)
		ctrl, err := NewBDMAController(sys, 110, 2, 0.05, 9)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctrl.SetShards(ShardsAuto); err != nil {
			t.Fatal(err)
		}
		ctrl.SetShardAudit(2)
		reg := obs.New()
		ctrl.SetObs(reg)
		if pool := withPool(size); pool != nil {
			defer pool.Close()
			ctrl.SetPool(pool)
		}
		states := trace.Record(gen, slots)
		traces := make([]slotTrace, 0, slots)
		gaps := make([]uint64, 0, slots)
		for i, st := range states {
			r, err := ctrl.Step(st)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Validate(r.Decision.Selection, st); err != nil {
				t.Fatalf("slot %d: sharded decision infeasible: %v", r.Slot, err)
			}
			wantAudit := (i+1)%2 == 0
			if r.ShardAudited != wantAudit {
				t.Fatalf("slot %d: ShardAudited = %v, want %v", r.Slot, r.ShardAudited, wantAudit)
			}
			if r.ShardAudited {
				if math.IsNaN(r.ShardGap) || math.IsInf(r.ShardGap, 0) {
					t.Fatalf("slot %d: non-finite shard gap %v", r.Slot, r.ShardGap)
				}
				gaps = append(gaps, math.Float64bits(r.ShardGap))
			}
			traces = append(traces, stepTraceOf(r))
		}
		snap := reg.Snapshot()
		return traces, gaps, snap
	}

	base, baseGaps, baseSnap := run(0)
	if got := baseSnap.Counters[MetricShardAudits]; got != 2 {
		t.Fatalf("shard.audits = %d, want 2", got)
	}
	if h, ok := baseSnap.Histograms[MetricShardGap]; !ok || h.Count != 2 {
		t.Fatalf("shard.gap histogram missing or wrong count: %+v", h)
	}
	for _, size := range []int{1, 4} {
		traces, gaps, _ := run(size)
		if !reflect.DeepEqual(traces, base) {
			t.Errorf("pool=%d: sharded slot trace diverged from serial", size)
		}
		if !reflect.DeepEqual(gaps, baseGaps) {
			t.Errorf("pool=%d: audited gaps diverged from serial", size)
		}
	}
}

// stepTraceOf flattens one SlotResult the same way stepTrace does.
func stepTraceOf(r *SlotResult) slotTrace {
	freqBits := make([]uint64, len(r.Decision.Freq))
	for n, f := range r.Decision.Freq {
		freqBits[n] = math.Float64bits(float64(f))
	}
	return slotTrace{
		Stations:         append([]int(nil), r.Decision.Station...),
		Servers:          append([]int(nil), r.Decision.Server...),
		FreqBits:         freqBits,
		LatencyBits:      math.Float64bits(r.Latency.Value()),
		CostBits:         math.Float64bits(float64(r.EnergyCost)),
		ThetaBits:        math.Float64bits(r.Theta),
		BacklogBits:      math.Float64bits(r.Backlog),
		ObjectiveBits:    math.Float64bits(r.Objective),
		SolverIterations: r.SolverIterations,
	}
}

// TestShardChurnHandover runs churn (mobility, handovers, joins/leaves)
// over the metro preset and requires that (a) the shard plan tracks the
// population — at least one device visibly changes shard (or crosses
// into/out of the boundary set) between consecutive slots it is active
// in — and (b) every slot's sharded solve still certifies a global
// λ-equilibrium on the freshly mutated game.
func TestShardChurnHandover(t *testing.T) {
	const slots, lambda = 12, 0.01
	sys, gen := buildMetroSystem(t, 50, 7)
	sched, err := trace.NewChurnSchedule(trace.ChurnConfig{
		Seed:                  19,
		DeviceJoinProb:        0.10,
		DeviceLeaveProb:       0.10,
		HandoverProb:          0.25,
		MinActiveDevices:      1,
		InitialActiveFraction: 0.9,
	}, sys.Net, gen)
	if err != nil {
		t.Fatal(err)
	}

	p := new(P2A)
	freq := sys.LowestFrequencies()
	solver := CGBASolver{Lambda: lambda, Shards: ShardsAuto}
	prev := make([]int32, len(sys.Net.Rooms)) // placeholder; resized below
	havePrev := false
	crossed := false
	for slot := 0; slot < slots; slot++ {
		st := sched.Next()
		if err := sys.ApplyChurn(p, st, freq); err != nil {
			t.Fatal(err)
		}
		plan, err := p.shardPlanFor(ShardsAuto)
		if err != nil {
			t.Fatal(err)
		}
		if plan == nil {
			t.Fatal("metro preset should produce a multi-shard plan")
		}

		res, err := solver.Solve(p, rng.New(int64(100+slot)))
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		eq := game.NewEngine(p.Game())
		if err := eq.Reset(res.Profile); err != nil {
			t.Fatal(err)
		}
		if !eq.IsEquilibrium(lambda) {
			t.Fatalf("slot %d: sharded result is not a global λ-equilibrium", slot)
		}

		// Device-indexed shard assignment (-2 = inactive this slot).
		cur := make([]int32, len(p.devPlayer))
		for i := range cur {
			cur[i] = -2
		}
		for pl, dev := range p.playerDev {
			cur[dev] = p.planAssign[pl]
		}
		if havePrev {
			for i := range cur {
				if cur[i] != -2 && prev[i] != -2 && cur[i] != prev[i] {
					crossed = true
				}
			}
		}
		prev, havePrev = cur, true
	}
	if !crossed {
		t.Fatal("no device changed shard across the churn run — handovers never crossed a cluster boundary")
	}
}

// The shard plan survives pooled churned solves under the race detector:
// a smoke pass exercised by the CI race leg.
func TestShardChurnPooled(t *testing.T) {
	sys, gen := buildMetroSystem(t, 40, 11)
	sched, err := trace.NewChurnSchedule(trace.DefaultChurnConfig(23), sys.Net, gen)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewBDMAController(sys, 110, 2, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.SetShards(ShardsAuto); err != nil {
		t.Fatal(err)
	}
	pool := par.New(4)
	defer pool.Close()
	ctrl.SetPool(pool)
	for slot := 0; slot < 4; slot++ {
		if _, err := ctrl.Step(sched.Next()); err != nil {
			t.Fatal(err)
		}
	}
}
