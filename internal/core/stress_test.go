package core

import (
	"math"
	"testing"

	"eotora/internal/energy"
	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// minimalSystem is the smallest legal system: one station, one room, one
// server, one device.
func minimalSystem(t *testing.T) (*System, *trace.Generator) {
	t.Helper()
	net := &topology.Network{
		BaseStations: []topology.BaseStation{{
			ID: 0, Band: topology.LowBand, Pos: topology.Point{X: 500, Y: 500},
			CoverageRadius: 5000, AccessBandwidth: 50 * units.MHz,
			FronthaulBandwidth: 500 * units.MHz, FronthaulSE: 10,
			Fronthaul: topology.WiredFiber, Rooms: []int{0},
		}},
		Rooms: []topology.Room{{ID: 0}},
		Servers: []topology.Server{{
			ID: 0, Room: 0, Cores: 64, MinFreq: 1.8 * units.GHz, MaxFreq: 3.6 * units.GHz,
		}},
		Devices:     []topology.Device{{ID: 0, Pos: topology.Point{X: 500, Y: 500}, Speed: 1}},
		Suitability: [][]float64{{0.8}},
	}
	if err := net.Finalize(); err != nil {
		t.Fatal(err)
	}
	base, _ := energy.FitI7Quadratic()
	sys, err := NewSystem(net, []energy.Model{base}, 3600, 1)
	if err != nil {
		t.Fatal(err)
	}
	low := sys.EnergyCost(sys.LowestFrequencies(), 50)
	high := sys.EnergyCost(sys.HighestFrequencies(), 50)
	sys.Budget = (low + high) / 2
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

func TestMinimalSystemRuns(t *testing.T) {
	sys, gen := minimalSystem(t)
	ctrl, err := NewBDMAController(sys, 100, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 20; s++ {
		res, err := ctrl.Step(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		// The single device always selects the only pair.
		if res.Decision.Station[0] != 0 || res.Decision.Server[0] != 0 {
			t.Fatal("wrong selection in one-option system")
		}
		if res.Latency <= 0 || math.IsInf(res.Latency.Value(), 0) {
			t.Fatalf("latency = %v", res.Latency)
		}
	}
}

func TestHotspotAllDevicesSamePoint(t *testing.T) {
	// Every device on top of the same station: the congestion game must
	// still spread load across servers, and the shares must stay valid.
	spec := smallSpec(16)
	src := rng.New(70)
	net, err := topology.Generate(spec, src.Derive("net"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range net.Devices {
		net.Devices[i].Pos = topology.Point{X: 1000, Y: 1000}
		net.Devices[i].Speed = 0
	}
	if err := net.Finalize(); err != nil {
		t.Fatal(err)
	}
	models := DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
	sys, err := NewSystem(net, models, 3600, 5)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), 70)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewBDMAController(sys, 100, 2, 0, 70)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Step(gen.Next())
	if err != nil {
		t.Fatal(err)
	}
	servers := make(map[int]bool)
	for _, n := range res.Decision.Server {
		servers[n] = true
	}
	if len(servers) < 2 {
		t.Errorf("hotspot packed all %d devices on %d server(s)", 16, len(servers))
	}
	if err := sys.ValidateAllocation(res.Decision.Selection, res.Decision.Allocation); err != nil {
		t.Error(err)
	}
}

func TestInfeasibleBudgetQueueGrowsLinearly(t *testing.T) {
	// A budget below the minimum achievable cost violates Assumption 1:
	// the queue must grow roughly linearly (the controller still runs and
	// pins F^L).
	sys, gen := buildSystem(t, 8, 71)
	sys.Budget = sys.EnergyCost(sys.LowestFrequencies(), 10) / 10 // hopeless
	ctrl, err := NewBDMAController(sys, 50, 1, 0, 71)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	grows := 0
	var earlyFreq, lateFreq float64
	const slots = 60
	for s := 0; s < slots; s++ {
		res, err := ctrl.Step(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if res.Backlog > prev {
			grows++
		}
		prev = res.Backlog
		mean := 0.0
		for _, f := range res.Decision.Freq {
			mean += f.GigaHertz()
		}
		mean /= float64(len(res.Decision.Freq))
		switch s {
		case 2:
			earlyFreq = mean
		case slots - 1:
			lateFreq = mean
		}
	}
	if grows < slots*8/10 {
		t.Errorf("queue grew in only %d/%d slots under infeasible budget", grows, slots)
	}
	// The queue pressure must be driving frequencies down toward F^L
	// (full convergence takes longer than this horizon).
	if lateFreq >= earlyFreq {
		t.Errorf("mean frequency did not fall under infeasible budget: %.3f → %.3f GHz", earlyFreq, lateFreq)
	}
}

func TestUncoveredDeviceStateFailsCleanly(t *testing.T) {
	// A state whose channel row is all zeros (device out of every cell)
	// must produce an error, not a panic.
	sys, gen := buildSystem(t, 6, 72)
	st := gen.Next()
	for k := range st.Channels[2] {
		st.Channels[2][k] = 0
	}
	if _, err := sys.NewP2A(st, sys.LowestFrequencies()); err == nil {
		t.Error("uncovered device accepted")
	}
	ctrl, err := NewBDMAController(sys, 50, 1, 0, 72)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.Step(st); err == nil {
		t.Error("controller stepped through uncovered device")
	}
}

func TestZeroTaskSizes(t *testing.T) {
	// f = 0 reduces EOTO to pure communication (the P1 problem of the
	// NP-hardness proof); the pipeline must handle it.
	sys, gen := buildSystem(t, 6, 73)
	st := gen.Next()
	for i := range st.TaskSizes {
		st.TaskSizes[i] = 0
	}
	res, err := sys.BDMA(st, 50, 5, BDMAConfig{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	alloc := sys.OptimalAllocation(res.Selection, st)
	total, perDevice := sys.LatencyOf(Decision{Selection: res.Selection, Allocation: alloc, Freq: res.Freq}, st)
	for i, lb := range perDevice {
		if lb.Processing != 0 {
			t.Errorf("device %d has processing latency %v with zero tasks", i, lb.Processing)
		}
	}
	if math.IsInf(total.Value(), 0) || total <= 0 {
		t.Errorf("total latency = %v", total)
	}
}

func TestDegenerateFrequencyRange(t *testing.T) {
	// F^L == F^U: frequency scaling is a no-op; everything still works.
	sys, gen := buildSystem(t, 5, 74)
	for n := range sys.Net.Servers {
		sys.Net.Servers[n].MaxFreq = sys.Net.Servers[n].MinFreq
	}
	ctrl, err := NewBDMAController(sys, 50, 2, 0, 74)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Step(gen.Next())
	if err != nil {
		t.Fatal(err)
	}
	for n, f := range res.Decision.Freq {
		if f != sys.Net.Servers[n].MinFreq {
			t.Errorf("server %d frequency %v moved in degenerate range", n, f)
		}
	}
	r, err := sys.ApproxRatio(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2.62) > 1e-9 {
		t.Errorf("R_F should be 1 in degenerate range: R = %v", r)
	}
}

func TestExtremePricesDoNotBreakDPP(t *testing.T) {
	// Price spikes of 100× must not destabilize the controller within the
	// run (the queue absorbs them).
	sys, gen := buildSystem(t, 6, 75)
	ctrl, err := NewBDMAController(sys, 50, 1, 0, 75)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 30; s++ {
		st := gen.Next()
		if s%7 == 3 {
			st.Price *= 100
		}
		res, err := ctrl.Step(st)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(res.Backlog) || math.IsInf(res.Backlog, 0) {
			t.Fatalf("backlog = %v at slot %d", res.Backlog, s)
		}
	}
}
