// Package core implements the paper's contribution: the EOTORA/EOTO
// problem types, the closed-form Lemma-1 resource allocation, the reduced
// latency T_t of equations (18)–(20), the P2-A congestion-game adapter,
// the per-server convex P2-B frequency optimizer, the BDMA alternating
// scheme (Algorithm 2), and the BDMA-based drift-plus-penalty online
// controller (Algorithm 1) together with the evaluation's baselines.
package core

import (
	"errors"
	"fmt"
	"math"

	"eotora/internal/energy"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// System bundles the static problem data of EOTORA: the network topology,
// the per-server energy models g_n(·), the slot length, and the
// time-average energy-cost budget C̄.
type System struct {
	// Net is the finalized MEC topology.
	Net *topology.Network

	// Energy holds one convex energy model per server (same order as
	// Net.Servers); Energy[n].Power is the per-core power draw of S_n.
	Energy []energy.Model

	// SlotSeconds is the slot length used to convert power into per-slot
	// energy (the paper's hourly prices imply hourly slots).
	SlotSeconds float64

	// Budget is C̄, the per-slot time-average energy-cost budget.
	Budget units.Money

	// RoomBudgets, when non-nil, switches the controller to per-room
	// budgets C̄_m (an extension of the paper's single constraint): every
	// room carries its own virtual queue and its average energy cost is
	// driven under its own cap. Keys are room IDs; every room must have
	// an entry. The global Budget is ignored in this mode.
	RoomBudgets map[int]units.Money
}

// NewSystem validates and builds a System.
func NewSystem(net *topology.Network, models []energy.Model, slotSeconds float64, budget units.Money) (*System, error) {
	if net == nil {
		return nil, errors.New("core: nil network")
	}
	_, _, servers, _ := net.Counts()
	if len(models) != servers {
		return nil, fmt.Errorf("core: %d energy models for %d servers", len(models), servers)
	}
	for n, m := range models {
		if m == nil {
			return nil, fmt.Errorf("core: nil energy model for server %d", n)
		}
	}
	if !(slotSeconds > 0) {
		return nil, fmt.Errorf("core: non-positive slot length %v", slotSeconds)
	}
	if budget < 0 {
		return nil, fmt.Errorf("core: negative budget %v", budget)
	}
	return &System{Net: net, Energy: models, SlotSeconds: slotSeconds, Budget: budget}, nil
}

// DefaultEnergyModels builds the paper's per-server energy functions: the
// i7-3770K quadratic fit with coefficients perturbed per server by a
// standard-normal draw (Figure 3). The draw is truncated to ±4σ so every
// model stays convex and positive on the operating range.
func DefaultEnergyModels(servers int, src interface {
	TruncNormal(mean, stddev, lo, hi float64) float64
}) []energy.Model {
	base, _ := energy.FitI7Quadratic()
	models := make([]energy.Model, servers)
	for n := range models {
		models[n] = base.Perturb(src.TruncNormal(0, 1, -4, 4))
	}
	return models
}

// CheckState verifies a state's dimensions and values against the system.
// Beyond the shape checks, every numeric field must be finite and in
// range: NaN or negative task sizes, data lengths, or channel gains, a
// non-finite or non-positive price, and out-of-range CapScale entries are
// all rejected. A NaN admitted here would propagate through the Lemma-1
// square roots into the objective and ultimately poison the virtual queue
// Q(t), so the solve pipeline trusts states only after this gate (the
// trace.Sanitizer repairs instead of rejecting, for sources that must
// keep flowing).
func (s *System) CheckState(st *trace.State) error {
	stations, _, servers, devices := s.Net.Counts()
	if len(st.TaskSizes) != devices || len(st.DataLengths) != devices || len(st.Channels) != devices {
		return fmt.Errorf("core: state sized for %d devices, system has %d", len(st.TaskSizes), devices)
	}
	for i := range st.Channels {
		if len(st.Channels[i]) != stations {
			return fmt.Errorf("core: channel row %d has %d stations, system has %d", i, len(st.Channels[i]), stations)
		}
	}
	if len(st.FronthaulSE) != stations {
		return fmt.Errorf("core: state has %d fronthaul entries, system has %d stations", len(st.FronthaulSE), stations)
	}
	for i := 0; i < devices; i++ {
		if f := st.TaskSizes[i].Count(); math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return fmt.Errorf("core: device %d task size %v invalid", i, st.TaskSizes[i])
		}
		if d := st.DataLengths[i].Bits(); math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			return fmt.Errorf("core: device %d data length %v invalid", i, st.DataLengths[i])
		}
		for k, h := range st.Channels[i] {
			if v := h.BpsPerHz(); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("core: device %d channel to station %d is %v", i, k, h)
			}
		}
	}
	for k, se := range st.FronthaulSE {
		if v := se.BpsPerHz(); math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("core: station %d fronthaul efficiency %v invalid", k, se)
		}
	}
	if p := float64(st.Price); math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
		return fmt.Errorf("core: invalid price %v", st.Price)
	}
	if st.ServerDown != nil && len(st.ServerDown) != servers {
		return fmt.Errorf("core: ServerDown sized %d, system has %d servers", len(st.ServerDown), servers)
	}
	if st.DeviceActive != nil && len(st.DeviceActive) != devices {
		return fmt.Errorf("core: DeviceActive sized %d, system has %d devices", len(st.DeviceActive), devices)
	}
	if st.ServerActive != nil && len(st.ServerActive) != servers {
		return fmt.Errorf("core: ServerActive sized %d, system has %d servers", len(st.ServerActive), servers)
	}
	if st.CapScale != nil {
		if len(st.CapScale) != servers {
			return fmt.Errorf("core: CapScale sized %d, system has %d servers", len(st.CapScale), servers)
		}
		for n, c := range st.CapScale {
			if math.IsNaN(c) || c <= 0 || c > 1 {
				return fmt.Errorf("core: server %d capacity scale %v outside (0, 1]", n, c)
			}
		}
	}
	return nil
}

// Selection is the binary part of a decision: per-device base-station and
// server choices (the x_t and y_t of the paper, in index form).
type Selection struct {
	// Station[i] = k means x_{i,k,t} = 1.
	Station []int
	// Server[i] = n means y_{i,n,t} = 1.
	Server []int
}

// Clone deep-copies the selection.
func (s Selection) Clone() Selection {
	return Selection{
		Station: append([]int(nil), s.Station...),
		Server:  append([]int(nil), s.Server...),
	}
}

// Validate checks the selection against the system and state: every device
// picks one covered station and one server reachable over that station's
// fronthaul — constraints (1), (2), and (3).
func (s *System) Validate(sel Selection, st *trace.State) error {
	_, _, servers, devices := s.Net.Counts()
	if len(sel.Station) != devices || len(sel.Server) != devices {
		return fmt.Errorf("core: selection sized %d/%d, want %d devices", len(sel.Station), len(sel.Server), devices)
	}
	for i := 0; i < devices; i++ {
		k := sel.Station[i]
		if !st.ActiveDevice(i) {
			if k != -1 || sel.Server[i] != -1 {
				return fmt.Errorf("core: inactive device %d selects (%d, %d), want (-1, -1)", i, k, sel.Server[i])
			}
			continue
		}
		if k < 0 || k >= len(s.Net.BaseStations) {
			return fmt.Errorf("core: device %d selects station %d of %d", i, k, len(s.Net.BaseStations))
		}
		if !st.Covered(i, k) {
			return fmt.Errorf("core: device %d selects station %d outside coverage", i, k)
		}
		n := sel.Server[i]
		if n < 0 || n >= servers {
			return fmt.Errorf("core: device %d selects server %d of %d", i, n, servers)
		}
		if !st.ActiveServer(n) {
			return fmt.Errorf("core: device %d selects removed server %d", i, n)
		}
		reachable := false
		for _, idx := range s.Net.ReachableServers(k) {
			if idx == n {
				reachable = true
				break
			}
		}
		if !reachable {
			return fmt.Errorf("core: device %d selects server %d unreachable from station %d (constraint 3)", i, n, k)
		}
	}
	return nil
}

// Frequencies is Ω_t: the per-core clock frequency of every server.
type Frequencies []units.Frequency

// Clone copies the frequency vector.
func (f Frequencies) Clone() Frequencies { return append(Frequencies(nil), f...) }

// LowestFrequencies returns Ω^L, every server at F_n^L.
func (s *System) LowestFrequencies() Frequencies {
	out := make(Frequencies, len(s.Net.Servers))
	for n := range out {
		out[n] = s.Net.Servers[n].MinFreq
	}
	return out
}

// HighestFrequencies returns Ω^U, every server at F_n^U.
func (s *System) HighestFrequencies() Frequencies {
	out := make(Frequencies, len(s.Net.Servers))
	for n := range out {
		out[n] = s.Net.Servers[n].MaxFreq
	}
	return out
}

// ValidateFrequencies checks ω_n ∈ [F_n^L, F_n^U] for every server.
func (s *System) ValidateFrequencies(f Frequencies) error {
	if len(f) != len(s.Net.Servers) {
		return fmt.Errorf("core: %d frequencies for %d servers", len(f), len(s.Net.Servers))
	}
	for n, w := range f {
		srv := &s.Net.Servers[n]
		if w < srv.MinFreq-1e-6 || w > srv.MaxFreq+1e-6 {
			return fmt.Errorf("core: server %d frequency %v outside [%v, %v]", n, w, srv.MinFreq, srv.MaxFreq)
		}
	}
	return nil
}

// Allocation holds the continuous resource shares (Ψ_t, Φ_t): per-device
// shares of the selected station's access and fronthaul bandwidth and of
// the selected server's computing capability.
type Allocation struct {
	// AccessShare[i] is ψ^A_{i,k,t} for the station k selected by i.
	AccessShare []float64
	// FronthaulShare[i] is ψ^F_{i,k,t} for the selected station.
	FronthaulShare []float64
	// ComputeShare[i] is φ_{i,n,t} for the selected server.
	ComputeShare []float64
}

// Decision is the full α_t = (x, y, Ψ, Φ, Ω).
type Decision struct {
	Selection
	Allocation
	// Freq is the frequency vector Ω chosen by P2-B.
	Freq Frequencies
}

// ValidateAllocation checks share bounds and the capacity constraints
// (4)–(6): per station the selected devices' shares sum to at most 1, and
// likewise per server.
func (s *System) ValidateAllocation(sel Selection, a Allocation) error {
	devices := len(sel.Station)
	if len(a.AccessShare) != devices || len(a.FronthaulShare) != devices || len(a.ComputeShare) != devices {
		return errors.New("core: allocation dimension mismatch")
	}
	const tol = 1e-9
	accessSum := make([]float64, len(s.Net.BaseStations))
	fronthaulSum := make([]float64, len(s.Net.BaseStations))
	computeSum := make([]float64, len(s.Net.Servers))
	for i := 0; i < devices; i++ {
		if sel.Station[i] < 0 {
			// Inactive device: carries no shares.
			continue
		}
		for name, v := range map[string]float64{
			"access": a.AccessShare[i], "fronthaul": a.FronthaulShare[i], "compute": a.ComputeShare[i],
		} {
			if v < 0 || v > 1+tol || math.IsNaN(v) {
				return fmt.Errorf("core: device %d %s share %v outside [0, 1]", i, name, v)
			}
		}
		accessSum[sel.Station[i]] += a.AccessShare[i]
		fronthaulSum[sel.Station[i]] += a.FronthaulShare[i]
		computeSum[sel.Server[i]] += a.ComputeShare[i]
	}
	for k := range accessSum {
		if accessSum[k] > 1+tol {
			return fmt.Errorf("core: station %d access shares sum to %v (constraint 4)", k, accessSum[k])
		}
		if fronthaulSum[k] > 1+tol {
			return fmt.Errorf("core: station %d fronthaul shares sum to %v (constraint 5)", k, fronthaulSum[k])
		}
	}
	for n := range computeSum {
		if computeSum[n] > 1+tol {
			return fmt.Errorf("core: server %d compute shares sum to %v (constraint 6)", n, computeSum[n])
		}
	}
	return nil
}
