// Package energy models edge-server energy consumption as a function of
// clock frequency (the g_n(·) of the paper). Following Section III-A, no
// specific functional form is presumed — only convexity in the clock
// frequency — and every server may carry a different function.
//
// The paper's simulation fits a quadratic to measured power of an Intel
// i7-3770K core between 1.8 and 3.6 GHz (Figure 3) and then perturbs the
// fitted coefficients per server: a(1+0.01e), b(1+0.1e), c(1+0.1e) with
// e ~ N(0, 1). This package reproduces that pipeline: an embedded
// power/frequency table, least-squares fitting, and the perturbation rule.
package energy

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"eotora/internal/stats"
	"eotora/internal/units"
)

// Model is a per-core energy-consumption function g(·): it maps a per-core
// clock frequency to an instantaneous power draw. Implementations must be
// convex and non-decreasing on the server's feasible frequency range.
type Model interface {
	// Power returns the per-core power draw at per-core frequency f.
	Power(f units.Frequency) units.Power
	// Name identifies the model for reports.
	Name() string
}

// Quadratic is the paper's fitted model: power = A·ω² + B·ω + C with ω in
// GHz and power in watts. It is convex whenever A ≥ 0.
type Quadratic struct {
	A, B, C float64
}

var _ Model = Quadratic{}

// Power implements Model.
func (q Quadratic) Power(f units.Frequency) units.Power {
	ghz := f.GigaHertz()
	return units.Power(q.A*ghz*ghz + q.B*ghz + q.C)
}

// Name implements Model.
func (q Quadratic) Name() string {
	return fmt.Sprintf("quadratic(%.3g, %.3g, %.3g)", q.A, q.B, q.C)
}

// Perturb returns the paper's per-server variant of the quadratic: the
// coefficients become A(1+0.01e), B(1+0.1e), C(1+0.1e) for a standard
// normal draw e.
func (q Quadratic) Perturb(e float64) Quadratic {
	return Quadratic{
		A: q.A * (1 + 0.01*e),
		B: q.B * (1 + 0.1*e),
		C: q.C * (1 + 0.1*e),
	}
}

// Linear is the linear energy model of [8]: power = Slope·ω + Intercept
// with ω in GHz. Linear functions are trivially convex.
type Linear struct {
	Slope, Intercept float64
}

var _ Model = Linear{}

// Power implements Model.
func (l Linear) Power(f units.Frequency) units.Power {
	return units.Power(l.Slope*f.GigaHertz() + l.Intercept)
}

// Name implements Model.
func (l Linear) Name() string {
	return fmt.Sprintf("linear(%.3g, %.3g)", l.Slope, l.Intercept)
}

// Sample is one measured (frequency, power) point.
type Sample struct {
	Freq  units.Frequency
	Power units.Power
}

// Table interpolates measured samples piecewise-linearly and extrapolates
// the first/last segment beyond the sampled range. A table over convex
// data is itself convex.
type Table struct {
	samples []Sample // sorted by frequency, strictly increasing
	name    string
}

var _ Model = (*Table)(nil)

// NewTable builds a Table from at least two samples. Samples are sorted by
// frequency; duplicate frequencies are rejected.
func NewTable(name string, samples []Sample) (*Table, error) {
	if len(samples) < 2 {
		return nil, errors.New("energy: table needs at least two samples")
	}
	sorted := append([]Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Freq < sorted[j].Freq })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Freq == sorted[i-1].Freq {
			return nil, fmt.Errorf("energy: duplicate sample frequency %v", sorted[i].Freq)
		}
	}
	return &Table{samples: sorted, name: name}, nil
}

// Power implements Model.
func (t *Table) Power(f units.Frequency) units.Power {
	s := t.samples
	// Locate the first sample with Freq >= f.
	idx := sort.Search(len(s), func(i int) bool { return s[i].Freq >= f })
	switch idx {
	case 0:
		idx = 1 // extrapolate first segment
	case len(s):
		idx = len(s) - 1 // extrapolate last segment
	}
	lo, hi := s[idx-1], s[idx]
	frac := (float64(f) - float64(lo.Freq)) / (float64(hi.Freq) - float64(lo.Freq))
	return units.Power(float64(lo.Power) + frac*(float64(hi.Power)-float64(lo.Power)))
}

// Name implements Model.
func (t *Table) Name() string { return t.name }

// Samples returns a copy of the table's samples.
func (t *Table) Samples() []Sample {
	return append([]Sample(nil), t.samples...)
}

// I7_3770K reproduces the measured per-core power/frequency scaling of the
// Intel i7-3770K used in the paper's Figure 3: package power divided by
// four cores, under full load, from 1.8 GHz to 3.6 GHz. The paper fits
// these points with a quadratic; so do we (see FitI7Quadratic).
func I7_3770K() []Sample {
	return []Sample{
		{Freq: 1.8 * units.GHz, Power: 8.1},
		{Freq: 2.0 * units.GHz, Power: 9.0},
		{Freq: 2.2 * units.GHz, Power: 10.1},
		{Freq: 2.4 * units.GHz, Power: 11.3},
		{Freq: 2.6 * units.GHz, Power: 12.7},
		{Freq: 2.8 * units.GHz, Power: 14.2},
		{Freq: 3.0 * units.GHz, Power: 15.9},
		{Freq: 3.2 * units.GHz, Power: 17.8},
		{Freq: 3.4 * units.GHz, Power: 19.9},
		{Freq: 3.6 * units.GHz, Power: 22.2},
	}
}

// FitQuadratic least-squares fits power = A·ω² + B·ω + C (ω in GHz) to the
// samples and returns the fitted model plus the root-mean-square error of
// the fit in watts.
func FitQuadratic(samples []Sample) (Quadratic, float64, error) {
	if len(samples) < 3 {
		return Quadratic{}, 0, errors.New("energy: quadratic fit needs at least three samples")
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Freq.GigaHertz()
		ys[i] = s.Power.Watts()
	}
	poly, err := stats.FitPolynomial(xs, ys, 2)
	if err != nil {
		return Quadratic{}, 0, fmt.Errorf("energy: %w", err)
	}
	q := Quadratic{A: poly.Coeffs[2], B: poly.Coeffs[1], C: poly.Coeffs[0]}
	var sse float64
	for i := range xs {
		d := ys[i] - poly.Eval(xs[i])
		sse += d * d
	}
	rmse := math.Sqrt(sse / float64(len(xs)))
	return q, rmse, nil
}

// FitI7Quadratic fits the embedded i7-3770K dataset, reproducing the black
// curve of the paper's Figure 3.
func FitI7Quadratic() (Quadratic, float64) {
	q, rmse, err := FitQuadratic(I7_3770K())
	if err != nil {
		// The embedded dataset is static and always fittable.
		panic(fmt.Sprintf("energy: embedded dataset unfittable: %v", err))
	}
	return q, rmse
}

// IsConvexOn numerically checks midpoint convexity of the model on a grid
// of n+1 points over [lo, hi]: g((x+y)/2) ≤ (g(x)+g(y))/2 + tol for all
// consecutive grid pairs. It is a validation helper for tests and for
// user-supplied models.
func IsConvexOn(m Model, lo, hi units.Frequency, n int) bool {
	if n < 2 || hi <= lo {
		return false
	}
	step := (float64(hi) - float64(lo)) / float64(n)
	const tol = 1e-9
	for i := 0; i+2 <= n; i++ {
		x := units.Frequency(float64(lo) + float64(i)*step)
		y := units.Frequency(float64(lo) + float64(i+2)*step)
		mid := units.Frequency(float64(lo) + float64(i+1)*step)
		lhs := m.Power(mid).Watts()
		rhs := (m.Power(x).Watts() + m.Power(y).Watts()) / 2
		if lhs > rhs+tol*(math.Abs(rhs)+1) {
			return false
		}
	}
	return true
}

// ServerEnergy returns the energy consumed by a server with the given
// model and core count, running every core at per-core frequency f for the
// given duration.
func ServerEnergy(m Model, cores int, f units.Frequency, d units.Seconds) units.Energy {
	perCore := m.Power(f)
	return units.Over(units.Power(float64(perCore)*float64(cores)), d)
}
