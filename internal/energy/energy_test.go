package energy

import (
	"math"
	"testing"
	"testing/quick"

	"eotora/internal/rng"
	"eotora/internal/units"
)

func TestQuadraticPower(t *testing.T) {
	q := Quadratic{A: 2, B: 3, C: 1}
	tests := []struct {
		f    units.Frequency
		want float64
	}{
		{0, 1},
		{1 * units.GHz, 6},
		{2 * units.GHz, 15},
		{0.5 * units.GHz, 3},
	}
	for _, tt := range tests {
		if got := q.Power(tt.f).Watts(); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Power(%v) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

func TestQuadraticPerturb(t *testing.T) {
	q := Quadratic{A: 4, B: -2, C: 10}
	p := q.Perturb(1) // e = +1σ
	if math.Abs(p.A-4*1.01) > 1e-12 {
		t.Errorf("A = %v, want %v (1%% sensitivity)", p.A, 4*1.01)
	}
	if math.Abs(p.B-(-2*1.1)) > 1e-12 {
		t.Errorf("B = %v, want %v (10%% sensitivity)", p.B, -2*1.1)
	}
	if math.Abs(p.C-10*1.1) > 1e-12 {
		t.Errorf("C = %v, want %v (10%% sensitivity)", p.C, 10*1.1)
	}
	// e = 0 must be the identity.
	if q.Perturb(0) != q {
		t.Error("Perturb(0) is not identity")
	}
}

func TestLinearPower(t *testing.T) {
	l := Linear{Slope: 5, Intercept: 2}
	if got := l.Power(2 * units.GHz).Watts(); math.Abs(got-12) > 1e-12 {
		t.Errorf("Power = %v, want 12", got)
	}
	if !IsConvexOn(l, 1*units.GHz, 4*units.GHz, 16) {
		t.Error("linear model not detected as convex")
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("x", []Sample{{Freq: units.GHz, Power: 1}}); err == nil {
		t.Error("single-sample table accepted")
	}
	dup := []Sample{
		{Freq: units.GHz, Power: 1},
		{Freq: units.GHz, Power: 2},
	}
	if _, err := NewTable("x", dup); err == nil {
		t.Error("duplicate-frequency table accepted")
	}
}

func TestTableInterpolation(t *testing.T) {
	// Deliberately unsorted input; NewTable must sort.
	tbl, err := NewTable("test", []Sample{
		{Freq: 3 * units.GHz, Power: 30},
		{Freq: 1 * units.GHz, Power: 10},
		{Freq: 2 * units.GHz, Power: 18},
	})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		f    units.Frequency
		want float64
	}{
		{"exact sample", 2 * units.GHz, 18},
		{"midpoint", 1.5 * units.GHz, 14},
		{"upper midpoint", 2.5 * units.GHz, 24},
		{"extrapolate below", 0.5 * units.GHz, 6},
		{"extrapolate above", 3.5 * units.GHz, 36},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tbl.Power(tt.f).Watts(); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("Power(%v) = %v, want %v", tt.f, got, tt.want)
			}
		})
	}
	if tbl.Name() != "test" {
		t.Errorf("Name = %q", tbl.Name())
	}
	if got := tbl.Samples(); len(got) != 3 || got[0].Freq != units.GHz {
		t.Errorf("Samples() = %v", got)
	}
}

func TestI7DatasetShape(t *testing.T) {
	samples := I7_3770K()
	if len(samples) != 10 {
		t.Fatalf("dataset has %d samples, want 10 (1.8–3.6 GHz in 0.2 steps)", len(samples))
	}
	if samples[0].Freq != 1.8*units.GHz || samples[len(samples)-1].Freq != 3.6*units.GHz {
		t.Errorf("dataset range [%v, %v], want [1.8 GHz, 3.6 GHz]", samples[0].Freq, samples[len(samples)-1].Freq)
	}
	// Power must be strictly increasing and marginal power non-decreasing
	// (the convexity the paper observes in real data).
	for i := 1; i < len(samples); i++ {
		if samples[i].Power <= samples[i-1].Power {
			t.Errorf("power not increasing at sample %d", i)
		}
	}
	for i := 2; i < len(samples); i++ {
		d1 := samples[i-1].Power - samples[i-2].Power
		d2 := samples[i].Power - samples[i-1].Power
		if d2 < d1-1e-9 {
			t.Errorf("marginal power decreases at sample %d: %v then %v", i, d1, d2)
		}
	}
}

func TestFitI7Quadratic(t *testing.T) {
	q, rmse := FitI7Quadratic()
	if q.A <= 0 {
		t.Errorf("fitted quadratic has A = %v, want > 0 (convex)", q.A)
	}
	if rmse > 0.2 {
		t.Errorf("fit RMSE = %v W, want < 0.2 (quadratic should fit the data well)", rmse)
	}
	// The fitted curve must track the data closely at the endpoints.
	for _, s := range []Sample{I7_3770K()[0], I7_3770K()[9]} {
		got := q.Power(s.Freq).Watts()
		if math.Abs(got-s.Power.Watts()) > 0.5 {
			t.Errorf("fit at %v = %vW, data %vW", s.Freq, got, s.Power.Watts())
		}
	}
	if !IsConvexOn(q, 1.8*units.GHz, 3.6*units.GHz, 32) {
		t.Error("fitted quadratic not convex on operating range")
	}
}

func TestFitQuadraticErrors(t *testing.T) {
	if _, _, err := FitQuadratic(I7_3770K()[:2]); err == nil {
		t.Error("fit with two samples accepted")
	}
}

func TestFitQuadraticRecovery(t *testing.T) {
	// Generate exact quadratic data and verify recovery.
	truth := Quadratic{A: 3.3, B: -4.7, C: 12.5}
	var samples []Sample
	for ghz := 1.0; ghz <= 4.01; ghz += 0.25 {
		f := units.Frequency(ghz * 1e9)
		samples = append(samples, Sample{Freq: f, Power: truth.Power(f)})
	}
	got, rmse, err := FitQuadratic(samples)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1e-9 {
		t.Errorf("RMSE = %v on exact data", rmse)
	}
	if math.Abs(got.A-truth.A) > 1e-6 || math.Abs(got.B-truth.B) > 1e-6 || math.Abs(got.C-truth.C) > 1e-6 {
		t.Errorf("recovered %+v, want %+v", got, truth)
	}
}

func TestPerturbedModelsStayConvex(t *testing.T) {
	// The paper's perturbation keeps A within ±1%·e; for |e| ≤ 4 the
	// quadratic stays convex. Check a population of perturbed servers.
	base, _ := FitI7Quadratic()
	src := rng.New(99)
	for i := 0; i < 64; i++ {
		e := src.TruncNormal(0, 1, -4, 4)
		m := base.Perturb(e)
		if !IsConvexOn(m, 1.8*units.GHz, 3.6*units.GHz, 16) {
			t.Errorf("perturbed model (e=%v) lost convexity: %+v", e, m)
		}
		if m.Power(1.8*units.GHz) <= 0 {
			t.Errorf("perturbed model (e=%v) has non-positive power at F^L", e)
		}
	}
}

func TestIsConvexOnDetectsConcavity(t *testing.T) {
	concave := Quadratic{A: -2, B: 20, C: 0}
	if IsConvexOn(concave, 1*units.GHz, 4*units.GHz, 16) {
		t.Error("concave quadratic reported convex")
	}
	// Degenerate arguments.
	if IsConvexOn(concave, 4*units.GHz, 1*units.GHz, 16) {
		t.Error("inverted range should report false")
	}
	if IsConvexOn(concave, 1*units.GHz, 4*units.GHz, 1) {
		t.Error("single-interval grid should report false")
	}
}

func TestServerEnergy(t *testing.T) {
	m := Linear{Slope: 0, Intercept: 10} // flat 10 W per core
	// 64 cores × 10 W × 3600 s = 2.304e6 J.
	e := ServerEnergy(m, 64, 2*units.GHz, 3600)
	if math.Abs(e.Joules()-2.304e6) > 1e-3 {
		t.Errorf("ServerEnergy = %v J, want 2.304e6", e.Joules())
	}
}

// Property: quadratic models with A ≥ 0 always pass the convexity check.
func TestQuadraticConvexityProperty(t *testing.T) {
	prop := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		q := Quadratic{A: math.Abs(math.Mod(a, 1e3)), B: math.Mod(b, 1e3), C: math.Mod(c, 1e3)}
		return IsConvexOn(q, 1*units.GHz, 4*units.GHz, 16)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: table interpolation is exact at every sample point.
func TestTableExactAtSamplesProperty(t *testing.T) {
	prop := func(seed int64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(8)
		samples := make([]Sample, n)
		for i := range samples {
			samples[i] = Sample{
				Freq:  units.Frequency(float64(i+1) * 1e9 * src.Uniform(0.9, 1.1)),
				Power: units.Power(src.Uniform(1, 100)),
			}
		}
		tbl, err := NewTable("prop", samples)
		if err != nil {
			return true // duplicate freq collision — not this property's concern
		}
		for _, s := range tbl.Samples() {
			if math.Abs(tbl.Power(s.Freq).Watts()-s.Power.Watts()) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
