package energy_test

import (
	"fmt"

	"eotora/internal/energy"
	"eotora/internal/units"
)

// ExampleFitI7Quadratic reproduces the paper's Figure 3 pipeline: fit the
// measured i7-3770K power samples with a quadratic, then derive per-server
// variants.
func ExampleFitI7Quadratic() {
	fit, rmse := energy.FitI7Quadratic()
	fmt.Printf("P(ω) = %.2f·ω² %+.2f·ω %+.2f  (RMSE %.3f W)\n", fit.A, fit.B, fit.C, rmse)
	server := fit.Perturb(0.5) // e = +0.5σ draw
	fmt.Printf("perturbed server at 3 GHz: %.1f W/core\n", server.Power(3*units.GHz).Watts())
	// Output:
	// P(ω) = 2.13·ω² -3.72·ω +7.92  (RMSE 0.035 W)
	// perturbed server at 3 GHz: 15.9 W/core
}
