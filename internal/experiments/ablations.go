package experiments

import (
	"fmt"
	"time"

	"eotora/internal/core"
	"eotora/internal/game"
	"eotora/internal/rng"
	"eotora/internal/sim"
	"eotora/internal/solver"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// AblationConfig parameterizes the design-choice studies of DESIGN.md §5.
type AblationConfig struct {
	Devices       int
	Slots, Warmup int
	V             float64
	Seed          int64
}

// DefaultAblationConfig mirrors the paper's scale.
func DefaultAblationConfig() AblationConfig {
	return AblationConfig{Devices: 100, Slots: 240, Warmup: 48, V: 100, Seed: 1}
}

// QuickAblationConfig is a reduced setting for tests and benches.
func QuickAblationConfig() AblationConfig {
	return AblationConfig{Devices: 12, Slots: 72, Warmup: 24, V: 100, Seed: 1}
}

// AblationBDMAZ sweeps BDMA's alternation count z (the paper fixes z = 5):
// average latency and decision time per z.
func AblationBDMAZ(cfg AblationConfig, zs []int) (*Figure, error) {
	if len(zs) == 0 {
		zs = []int{1, 2, 5, 10}
	}
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(zs))
	latency := make([]float64, len(zs))
	decisionMS := make([]float64, len(zs))
	for i, z := range zs {
		gen, err := sc.DefaultGenerator()
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewBDMAController(sc.Sys, cfg.V, z, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(ctrl, gen, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
		if err != nil {
			return nil, err
		}
		xs[i] = float64(z)
		latency[i] = m.AvgLatency()
		decisionMS[i] = float64(m.AvgDecisionTime().Microseconds()) / 1e3
	}
	fig := &Figure{
		ID:     "ablation-bdma-z",
		Title:  "BDMA alternation count z: latency vs decision time",
		XLabel: "z",
		YLabel: "latency [s] / decision time [ms]",
	}
	fig.AddSeries("avg latency", xs, latency)
	fig.AddSeries("decision time", xs, decisionMS)
	fig.AddNote("paper fixes z = 5 for Figures 7–9; diminishing returns expected past small z")
	return fig, nil
}

// AblationP2BSolver compares the separable per-server golden-section
// P2-B solver against a joint coordinate-descent solve on the same
// instances: objective difference and wall time.
func AblationP2BSolver(cfg AblationConfig) (*Figure, error) {
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		return nil, err
	}
	sys := sc.Sys
	const q = 50.0
	instances := 8
	xs := make([]float64, instances)
	sepObj := make([]float64, instances)
	jointObj := make([]float64, instances)
	var sepTime, jointTime time.Duration
	for inst := 0; inst < instances; inst++ {
		st := gen.Next()
		p2a, err := sys.NewP2A(st, sys.LowestFrequencies())
		if err != nil {
			return nil, err
		}
		res, err := (core.CGBASolver{}).Solve(p2a, rng.New(cfg.Seed).Derive(fmt.Sprintf("p2b-ablation-%d", inst)))
		if err != nil {
			return nil, err
		}
		sel := p2a.Selection(res.Profile)

		start := time.Now()
		freq, err := sys.SolveP2B(sel, st, cfg.V, q)
		if err != nil {
			return nil, err
		}
		sepTime += time.Since(start)
		sepObj[inst] = sys.P2Objective(sel, freq, st, cfg.V, q)

		// Joint coordinate descent over the full frequency box.
		start = time.Now()
		lo := make([]float64, len(sys.Net.Servers))
		hi := make([]float64, len(sys.Net.Servers))
		for n := range lo {
			lo[n] = sys.Net.Servers[n].MinFreq.Hertz()
			hi[n] = sys.Net.Servers[n].MaxFreq.Hertz()
		}
		obj := func(w []float64) float64 {
			f := make(core.Frequencies, len(w))
			for n := range w {
				f[n] = units.Frequency(w[n])
			}
			return sys.P2Objective(sel, f, st, cfg.V, q)
		}
		_, jObj, err := solver.CoordinateDescent(obj, lo, hi, 8, 1e-10)
		if err != nil {
			return nil, err
		}
		jointTime += time.Since(start)
		jointObj[inst] = jObj
		xs[inst] = float64(inst + 1)
	}
	fig := &Figure{
		ID:     "ablation-p2b",
		Title:  "P2-B: separable golden-section vs joint coordinate descent",
		XLabel: "instance",
		YLabel: "P2 objective",
	}
	fig.AddSeries("separable", xs, sepObj)
	fig.AddSeries("joint CD", xs, jointObj)
	fig.AddNote("wall time: separable %v total, joint %v total over %d instances",
		sepTime.Round(time.Microsecond), jointTime.Round(time.Microsecond), instances)
	fig.AddNote("P2-B is separable, so both must agree; the separable solve should be much faster")
	return fig, nil
}

// AblationIID compares the controller under the paper's non-iid periodic
// states against iid states (period D = 1): backlog dynamics and average
// latency. Theorem 4's bound carries a B·D/V term, so iid states (D = 1)
// admit tighter convergence.
func AblationIID(cfg AblationConfig) (*Figure, error) {
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-iid",
		Title:  "Non-iid (periodic) vs iid system states under BDMA-based DPP",
		XLabel: "slot t",
		YLabel: "backlog Q(t)",
	}
	xs := make([]float64, cfg.Slots)
	for t := range xs {
		xs[t] = float64(t + 1)
	}
	for _, mode := range []struct {
		name string
		iid  bool
	}{{"non-iid", false}, {"iid", true}} {
		genCfg := trace.DefaultGeneratorConfig()
		genCfg.IID = mode.iid
		gen, err := sc.Generator(genCfg)
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewBDMAController(sc.Sys, cfg.V, 2, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(ctrl, gen, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
		if err != nil {
			return nil, err
		}
		fig.AddSeries("Q(t) "+mode.name, xs, m.Backlog)
		fig.AddNote("%s: avg latency %.4f s, avg cost $%.4f (budget $%.4f)",
			mode.name, m.AvgLatency(), m.AvgCost(), m.Budget)
	}
	return fig, nil
}

// AblationFronthaulJitter exercises the paper's Section III-A claim that
// the algorithm handles time-varying fronthaul spectral efficiency.
func AblationFronthaulJitter(cfg AblationConfig) (*Figure, error) {
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-fronthaul",
		Title:  "Static vs time-varying fronthaul spectral efficiency",
		XLabel: "jitter σ",
		YLabel: "avg latency [s]",
	}
	sigmas := []float64{0, 0.1, 0.2, 0.4}
	xs := make([]float64, len(sigmas))
	latency := make([]float64, len(sigmas))
	cost := make([]float64, len(sigmas))
	for i, sigma := range sigmas {
		genCfg := trace.DefaultGeneratorConfig()
		genCfg.FronthaulJitterSigma = sigma
		gen, err := sc.Generator(genCfg)
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewBDMAController(sc.Sys, cfg.V, 2, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(ctrl, gen, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
		if err != nil {
			return nil, err
		}
		xs[i] = sigma
		latency[i] = m.AvgLatency()
		cost[i] = m.AvgCost()
	}
	fig.AddSeries("avg latency", xs, latency)
	fig.AddSeries("avg cost", xs, cost)
	fig.AddNote("the controller observes h^F per slot, so jitter degrades latency gracefully rather than breaking feasibility")
	return fig, nil
}

// AblationPivot compares CGBA's pivot rules (the paper uses
// max-improvement) on a batch of P2-A instances: objective and iteration
// count per rule.
func AblationPivot(cfg AblationConfig) (*Figure, error) {
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		return nil, err
	}
	rules := []game.PivotRule{game.PivotMaxImprovement, game.PivotRoundRobin, game.PivotRandom}
	const instances = 6
	sumObj := make([]float64, len(rules))
	sumIter := make([]float64, len(rules))
	for inst := 0; inst < instances; inst++ {
		st := gen.Next()
		p2a, err := sc.Sys.NewP2A(st, sc.Sys.LowestFrequencies())
		if err != nil {
			return nil, err
		}
		g := p2a.Game()
		initSrc := rng.New(cfg.Seed).Derive(fmt.Sprintf("pivot-init-%d", inst))
		initial := make(game.Profile, g.Players())
		for i := range initial {
			initial[i] = initSrc.Intn(g.StrategyCount(i))
		}
		for ri, rule := range rules {
			res, err := game.CGBA(g, game.CGBAConfig{Initial: initial, Pivot: rule}, rng.New(cfg.Seed))
			if err != nil {
				return nil, fmt.Errorf("experiments: pivot %v: %w", rule, err)
			}
			sumObj[ri] += res.Objective
			sumIter[ri] += float64(res.Iterations)
		}
	}
	fig := &Figure{
		ID:     "ablation-pivot",
		Title:  "CGBA pivot rule: objective and iterations (averages)",
		XLabel: "rule index",
		YLabel: "objective [s] / iterations",
	}
	xs := make([]float64, len(rules))
	obj := make([]float64, len(rules))
	iters := make([]float64, len(rules))
	for ri, rule := range rules {
		xs[ri] = float64(ri)
		obj[ri] = sumObj[ri] / instances
		iters[ri] = sumIter[ri] / instances
		fig.AddNote("rule %d = %v: avg objective %.4f, avg iterations %.1f",
			ri, rule, obj[ri], iters[ri])
	}
	fig.AddSeries("avg objective", xs, obj)
	fig.AddSeries("avg iterations", xs, iters)
	fig.AddNote("all rules reach an equilibrium; they differ in step count, not in the 2.62 guarantee")
	return fig, nil
}

// AblationComputeBound reruns the Figure 8 V-sweep under a compute-heavy
// workload (tasks 10× the paper's size). Under the paper's parameters,
// processing is ~10% of total latency, so frequency scaling moves the
// total weakly; with compute-bound tasks the V tradeoff is much more
// visible — quantifying how parameter choices shape Figure 8's slope.
func AblationComputeBound(cfg AblationConfig, vs []float64) (*Figure, error) {
	if len(vs) == 0 {
		vs = []float64{10, 100, 500}
	}
	fig := &Figure{
		ID:     "ablation-compute-bound",
		Title:  "V sweep under paper vs compute-bound workloads",
		XLabel: "V",
		YLabel: "avg latency [s] (per workload)",
	}
	for _, mode := range []struct {
		name  string
		scale float64
	}{{"paper workload", 1}, {"compute-bound (10×)", 10}} {
		sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		latency := make([]float64, len(vs))
		for i, v := range vs {
			genCfg := trace.DefaultGeneratorConfig()
			genCfg.Demand.TaskMin = units.Cycles(float64(genCfg.Demand.TaskMin) * mode.scale)
			genCfg.Demand.TaskMax = units.Cycles(float64(genCfg.Demand.TaskMax) * mode.scale)
			gen, err := sc.Generator(genCfg)
			if err != nil {
				return nil, err
			}
			ctrl, err := core.NewBDMAController(sc.Sys, v, 2, 0, cfg.Seed)
			if err != nil {
				return nil, err
			}
			m, err := sim.Run(ctrl, gen, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
			if err != nil {
				return nil, err
			}
			latency[i] = m.AvgLatency()
		}
		xs := append([]float64(nil), vs...)
		fig.AddSeries(mode.name, xs, latency)
		drop := (latency[0] - latency[len(latency)-1]) / latency[0]
		fig.AddNote("%s: latency falls %.2f%% from V=%g to V=%g", mode.name, 100*drop, vs[0], vs[len(vs)-1])
	}
	return fig, nil
}

// AblationSeeds quantifies seed sensitivity: the headline metrics of the
// default controller across independent scenario draws, as mean and
// relative spread. A tight spread certifies that the figures are not
// artifacts of one lucky topology.
func AblationSeeds(cfg AblationConfig, seeds []int64) (*Figure, error) {
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3, 4, 5}
	}
	build := func(seed int64) (sim.Job, error) {
		return sim.Job{
			Controller: func() (*core.Controller, error) {
				sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, seed)
				if err != nil {
					return nil, err
				}
				return core.NewBDMAController(sc.Sys, cfg.V, 2, 0, seed)
			},
			Source: func() (trace.Source, error) {
				sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, seed)
				if err != nil {
					return nil, err
				}
				return sc.DefaultGenerator()
			},
			Config: sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup},
		}, nil
	}
	res, err := sim.Replicate(seeds, build)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-seeds",
		Title:  "Seed sensitivity of the headline metrics",
		XLabel: "seed index",
		YLabel: "metric value",
	}
	xs := make([]float64, len(seeds))
	for i := range xs {
		xs[i] = float64(i)
	}
	fig.AddSeries("avg latency", xs, res.Latency.Values)
	fig.AddSeries("avg cost", xs, res.Cost.Values)
	fig.AddNote("latency: mean %.4f s, spread σ/μ = %.1f%%", res.Latency.Mean, 100*res.Latency.RelativeSpread())
	fig.AddNote("cost:    mean $%.4f, spread σ/μ = %.1f%%", res.Cost.Mean, 100*res.Cost.RelativeSpread())
	fig.AddNote("backlog: mean %.3f, spread σ/μ = %.1f%%", res.Backlog.Mean, 100*res.Backlog.RelativeSpread())
	return fig, nil
}

// AblationFlashCrowd measures the controller under Markov-switching demand
// surges — states outside the paper's periodic-plus-iid class. The DPP
// decision rule only reads the current β_t, so it keeps working; what
// degrades is the achievable latency during surges.
func AblationFlashCrowd(cfg AblationConfig) (*Figure, error) {
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-flashcrowd",
		Title:  "Markov-switching demand surges (flash crowds)",
		XLabel: "slot t",
		YLabel: "latency [s]",
	}
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"baseline", false}, {"flash crowds", true}} {
		genCfg := trace.DefaultGeneratorConfig()
		if mode.enabled {
			genCfg.FlashCrowd = trace.DefaultFlashCrowdConfig()
		}
		gen, err := sc.Generator(genCfg)
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewBDMAController(sc.Sys, cfg.V, 2, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(ctrl, gen, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
		if err != nil {
			return nil, err
		}
		xs := make([]float64, m.Slots())
		for t := range xs {
			xs[t] = float64(t + 1)
		}
		fig.AddSeries("latency "+mode.name, xs, m.Latency)
		fig.AddNote("%s: avg latency %.4f s, avg cost $%.4f (budget $%.4f, satisfied: %v)",
			mode.name, m.AvgLatency(), m.AvgCost(), m.Budget, m.BudgetSatisfied(0.05))
	}
	return fig, nil
}

// AblationPerRoomBudgets runs the multi-queue extension: asymmetric
// per-room budgets (tight room 0, loose room 1) versus the paper's single
// global budget of the same total. Each room's realized cost must converge
// under its own cap, at some latency premium over the global policy.
func AblationPerRoomBudgets(cfg AblationConfig) (*Figure, error) {
	fig := &Figure{
		ID:     "ablation-per-room",
		Title:  "Global budget vs per-room budgets (multi-queue extension)",
		XLabel: "slot t",
		YLabel: "backlog",
	}
	ref := units.Price(50)

	// Global-budget run.
	scGlobal, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	genG, err := scGlobal.DefaultGenerator()
	if err != nil {
		return nil, err
	}
	ctrlG, err := core.NewBDMAController(scGlobal.Sys, cfg.V, 2, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	mG, err := sim.Run(ctrlG, genG, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
	if err != nil {
		return nil, err
	}

	// Per-room run with the same total budget split 30/70 against the
	// rooms' proportional shares.
	scRoom, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	lows := scRoom.Sys.RoomEnergyCosts(scRoom.Sys.LowestFrequencies(), ref)
	highs := scRoom.Sys.RoomEnergyCosts(scRoom.Sys.HighestFrequencies(), ref)
	budgets := make(map[int]units.Money, len(lows))
	fracs := []float64{0.25, 0.75}
	for _, room := range scRoom.Net.Rooms {
		frac := fracs[room.ID%len(fracs)]
		budgets[room.ID] = lows[room.ID] + units.Money(frac*float64(highs[room.ID]-lows[room.ID]))
	}
	scRoom.Sys.RoomBudgets = budgets
	genR, err := scRoom.DefaultGenerator()
	if err != nil {
		return nil, err
	}
	ctrlR, err := core.NewBDMAController(scRoom.Sys, cfg.V, 2, 0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	roomCosts := make(map[int]float64)
	var latencySum float64
	backlogs := make([]float64, 0, cfg.Slots)
	for s := 0; s < cfg.Slots; s++ {
		st := genR.Next()
		res, err := ctrlR.Step(st)
		if err != nil {
			return nil, err
		}
		for room, c := range scRoom.Sys.RoomEnergyCosts(res.Decision.Freq, st.Price) {
			roomCosts[room] += c.Dollars()
		}
		latencySum += res.Latency.Value()
		backlogs = append(backlogs, res.Backlog)
	}

	xs := make([]float64, cfg.Slots)
	for t := range xs {
		xs[t] = float64(t + 1)
	}
	fig.AddSeries("Q(t) global", xs, mG.Backlog)
	fig.AddSeries("ΣQ_m(t) per-room", xs, backlogs)
	fig.AddNote("global: avg latency %.4f s, avg cost $%.4f (budget $%.4f)",
		mG.AvgLatency(), mG.AvgCost(), mG.Budget)
	fig.AddNote("per-room: avg latency %.4f s", latencySum/float64(cfg.Slots))
	for _, room := range scRoom.Net.Rooms {
		fig.AddNote("room %d: avg cost $%.4f vs budget $%.4f",
			room.ID, roomCosts[room.ID]/float64(cfg.Slots), budgets[room.ID].Dollars())
	}
	return fig, nil
}

// AblationStaleObservation quantifies the value of observing β_t before
// deciding (the paper's Section III assumption): the controller decides on
// a persistence forecast (last slot's state) and experiences the true
// state. Failed handovers — devices whose observed coverage vanished — are
// re-decided on the fresh state and counted.
func AblationStaleObservation(cfg AblationConfig) (*Figure, error) {
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	run := func(stale bool) (avgLatency float64, handoverFailures int, err error) {
		gen, err := sc.DefaultGenerator()
		if err != nil {
			return 0, 0, err
		}
		ctrl, err := core.NewBDMAController(sc.Sys, cfg.V, 2, 0, cfg.Seed)
		if err != nil {
			return 0, 0, err
		}
		prev := gen.Next()
		var total float64
		for s := 0; s < cfg.Slots; s++ {
			cur := gen.Next()
			var res *core.SlotResult
			if stale {
				res, err = ctrl.StepWithObservation(prev, cur)
				if err != nil {
					handoverFailures++
					res, err = ctrl.Step(cur)
				}
			} else {
				res, err = ctrl.Step(cur)
			}
			if err != nil {
				return 0, 0, err
			}
			if s >= cfg.Warmup {
				total += res.Latency.Value()
			}
			prev = cur
		}
		return total / float64(cfg.Slots-cfg.Warmup), handoverFailures, nil
	}

	oracleLat, _, err := run(false)
	if err != nil {
		return nil, err
	}
	staleLat, failures, err := run(true)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "ablation-stale",
		Title:  "Observed vs persistence-forecast system states",
		XLabel: "mode (0 = observed, 1 = stale)",
		YLabel: "avg latency [s]",
	}
	fig.AddSeries("avg latency", []float64{0, 1}, []float64{oracleLat, staleLat})
	fig.AddNote("observing β_t: %.4f s; deciding on last slot's β: %.4f s (%.1f%% worse)",
		oracleLat, staleLat, 100*(staleLat-oracleLat)/oracleLat)
	fig.AddNote("failed handovers re-decided on the fresh state: %d/%d slots", failures, cfg.Slots)
	return fig, nil
}

// AblationConvergence records CGBA's objective after every best-response
// step on one P2-A instance for several λ values — the convergence-curve
// view of Figure 6's endpoints. Only the weighted *potential* is monotone
// under best-response moves; the social objective typically descends but
// may tick upward on individual selfish moves. Larger λ stops earlier at
// a (weakly) higher objective.
func AblationConvergence(cfg AblationConfig, lambdas []float64) (*Figure, error) {
	if len(lambdas) == 0 {
		lambdas = []float64{0, 0.06, 0.12}
	}
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		return nil, err
	}
	st := gen.Next()
	p2a, err := sc.Sys.NewP2A(st, sc.Sys.LowestFrequencies())
	if err != nil {
		return nil, err
	}
	g := p2a.Game()
	initSrc := rng.New(cfg.Seed).Derive("convergence-init")
	initial := make(game.Profile, g.Players())
	for i := range initial {
		initial[i] = initSrc.Intn(g.StrategyCount(i))
	}

	fig := &Figure{
		ID:     "ablation-convergence",
		Title:  "CGBA(λ) convergence: objective per best-response step",
		XLabel: "iteration",
		YLabel: "P2-A objective [s]",
	}
	for _, lambda := range lambdas {
		res, err := game.CGBA(g, game.CGBAConfig{
			Lambda:         lambda,
			Initial:        initial,
			TrackObjective: true,
		}, rng.New(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("experiments: convergence λ=%v: %w", lambda, err)
		}
		xs := make([]float64, len(res.ObjectiveTrace))
		for i := range xs {
			xs[i] = float64(i)
		}
		fig.AddSeries(fmt.Sprintf("λ=%g", lambda), xs, res.ObjectiveTrace)
		fig.AddNote("λ=%g: %d iterations, %.4f → %.4f", lambda, res.Iterations,
			res.ObjectiveTrace[0], res.Objective)
	}
	return fig, nil
}
