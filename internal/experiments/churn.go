package experiments

import (
	"fmt"
	"time"

	"eotora/internal/core"
	"eotora/internal/sim"
	"eotora/internal/trace"
)

// scaledChurnConfig returns the default churn regime with every event
// probability multiplied by intensity (clamped to 1). Intensity 0 is a
// bit-exact passthrough of the wrapped source.
func scaledChurnConfig(intensity float64, seed int64) trace.ChurnConfig {
	cfg := trace.DefaultChurnConfig(seed)
	clamp := func(p float64) float64 {
		p *= intensity
		if p > 1 {
			return 1
		}
		return p
	}
	cfg.DeviceJoinProb = clamp(cfg.DeviceJoinProb)
	cfg.DeviceLeaveProb = clamp(cfg.DeviceLeaveProb)
	cfg.HandoverProb = clamp(cfg.HandoverProb)
	cfg.ServerRemoveProb = clamp(cfg.ServerRemoveProb)
	cfg.ServerAddProb = clamp(cfg.ServerAddProb)
	return cfg
}

// FigChurn runs the dynamic-population study: it sweeps the churn
// intensity (a multiplier on the default join/leave/handover/server-event
// probabilities) and reports how average latency, energy cost, and the
// realized population respond, plus a head-to-head timing of the
// incremental ApplyChurn slot path against a from-scratch BuildP2A
// rebuild over the same churned trace.
func FigChurn(cfg AblationConfig, intensities []float64) (*Figure, error) {
	if len(intensities) == 0 {
		intensities = []float64{0, 0.5, 1, 2, 4}
	}
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	run := func(intensity float64) (*sim.Metrics, error) {
		gen, err := sc.DefaultGenerator()
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewBDMAController(sc.Sys, cfg.V, 5, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var src trace.Source = gen
		if intensity > 0 {
			src, err = trace.NewChurnSchedule(scaledChurnConfig(intensity, cfg.Seed), sc.Net, gen)
			if err != nil {
				return nil, err
			}
		}
		return sim.Run(ctrl, src, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
	}

	xs := make([]float64, len(intensities))
	latency := make([]float64, len(intensities))
	cost := make([]float64, len(intensities))
	population := make([]float64, len(intensities))
	for i, intensity := range intensities {
		m, err := run(intensity)
		if err != nil {
			return nil, fmt.Errorf("experiments: churn intensity %g: %w", intensity, err)
		}
		xs[i] = intensity
		latency[i] = m.AvgLatency()
		cost[i] = m.AvgCost()
		devs := 0
		for _, d := range m.ActiveDevices {
			devs += d
		}
		population[i] = float64(devs) / float64(len(m.ActiveDevices))
	}
	fig := &Figure{
		ID:     "churn",
		Title:  "Dynamic population: latency, cost, and population vs churn intensity",
		XLabel: "churn intensity (× default event probabilities)",
		YLabel: "latency [s] / cost [$] / devices",
	}
	fig.AddSeries("avg latency", xs, latency)
	fig.AddSeries("avg energy cost", xs, cost)
	fig.AddSeries("avg active devices", xs, population)

	// Incremental-vs-rebuild timing over one recorded churned trace: the
	// same states drive a persistent P2A through ApplyChurn (delta merge)
	// and a second one through full BuildP2A rebuilds.
	gen, err := sc.DefaultGenerator()
	if err != nil {
		return nil, err
	}
	churned, err := trace.NewChurnSchedule(scaledChurnConfig(1, cfg.Seed), sc.Net, gen)
	if err != nil {
		return nil, err
	}
	states := trace.Record(churned, cfg.Slots)
	freq := sc.Sys.LowestFrequencies()
	incremental := new(core.P2A)
	start := time.Now()
	for _, st := range states {
		if err := sc.Sys.ApplyChurn(incremental, st, freq); err != nil {
			return nil, fmt.Errorf("experiments: churn timing (incremental): %w", err)
		}
	}
	incTime := time.Since(start)
	rebuild := new(core.P2A)
	start = time.Now()
	for _, st := range states {
		if err := sc.Sys.BuildP2A(rebuild, st, freq); err != nil {
			return nil, fmt.Errorf("experiments: churn timing (rebuild): %w", err)
		}
	}
	fullTime := time.Since(start)
	speedup := float64(fullTime) / float64(incTime)
	fig.AddNote(fmt.Sprintf(
		"incremental ApplyChurn vs full BuildP2A over %d churned slots: %v vs %v (%.2fx)",
		len(states), incTime, fullTime, speedup))
	fig.AddNote("zero intensity is a bit-exact passthrough: identical decisions to the fixed-population build")
	return fig, nil
}
