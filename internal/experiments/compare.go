package experiments

import (
	"fmt"

	"eotora/internal/core"
	"eotora/internal/policy"
	"eotora/internal/sim"
	"eotora/internal/trace"
)

// CompareConfig parameterizes the policy-comparison and auto-tuner
// figures: every policy (or tuner variant) runs over the same recorded
// state trace, so the spread between series is decision quality alone.
type CompareConfig struct {
	// Devices is the population size I.
	Devices int
	// V is the penalty weight shared by every policy.
	V float64
	// Z is the BDMA alternation count (bdma family).
	Z int
	// Lambda is the fixed CGBA λ — also the tuner's refinement target.
	Lambda float64
	// Slots is the simulated horizon; Warmup slots are excluded from the
	// summary averages.
	Slots, Warmup int
	// Seed drives the scenario, the trace, and every policy.
	Seed int64
}

// DefaultCompareConfig is the paper-scale setting.
func DefaultCompareConfig() CompareConfig {
	return CompareConfig{Devices: 100, V: 100, Z: 5, Lambda: 0.05, Slots: 240, Warmup: 48, Seed: 1}
}

// QuickCompareConfig is the reduced setting for tests and CI.
func QuickCompareConfig() CompareConfig {
	return CompareConfig{Devices: 20, V: 100, Z: 2, Lambda: 0.05, Slots: 96, Warmup: 24, Seed: 1}
}

// comparePolicyNames is the comparison roster: the flagship controller
// plus every deterministic baseline, in presentation order.
var comparePolicyNames = []string{
	policy.BDMA,
	policy.GreedyEnergy,
	policy.GreedyDeadline,
	policy.Random,
	policy.LocalOnly,
	policy.EdgeOnly,
}

// ComparePolicies runs the full policy roster over one recorded trace and
// plots each policy as a point in the (avg energy cost, avg backlog)
// plane — the paper-style offloading-baseline comparison. The notes carry
// the per-policy latency/cost/backlog summary table.
func ComparePolicies(cfg CompareConfig) (*Figure, error) {
	states, period, sys, err := compareTrace(cfg)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "compare",
		Title:  "Offloading policies on one trace: energy cost versus queue backlog",
		XLabel: "avg energy cost [$/slot]",
		YLabel: "avg backlog",
	}
	budget := sys.Budget.Dollars()
	var bdmaLat float64
	for _, name := range comparePolicyNames {
		m, err := comparePolicyRun(name, cfg, states, period)
		if err != nil {
			return nil, err
		}
		fig.AddSeries(name, []float64{m.AvgCost()}, []float64{m.AvgBacklog()})
		fig.AddNote("%-15s latency %.4f s, cost $%.4f/slot (budget $%.4f), backlog %.3f",
			name+":", m.AvgLatency(), m.AvgCost(), budget, m.AvgBacklog())
		if name == policy.BDMA {
			bdmaLat = m.AvgLatency()
		} else if m.AvgCost() <= budget*1.02 && m.AvgLatency() < bdmaLat {
			fig.AddNote("WARNING: %s beats BDMA on latency within budget — investigate", name)
		}
	}
	fig.AddNote("expect: BDMA meets the budget at the lowest latency; greedy-deadline/edge-only buy latency with cost; local-only/random float the backlog")
	return fig, nil
}

// TunerDemo races the fixed-knob BDMA controller against bdma-tuned (the
// online V/λ auto-tuner) over one recorded trace: per-slot backlog and
// cumulative CGBA best-response iterations for both. The notes quantify
// the iterations-to-convergence saving of the coarse-to-fine λ schedule
// and the V adaptation's backlog bound (EXPERIMENTS.md appendix).
func TunerDemo(cfg CompareConfig) (*Figure, error) {
	states, period, _, err := compareTrace(cfg)
	if err != nil {
		return nil, err
	}
	fixed, err := comparePolicyRun(policy.BDMA, cfg, states, period)
	if err != nil {
		return nil, err
	}
	tuned, err := comparePolicyRun(policy.BDMATuned, cfg, states, period)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "tuner",
		Title:  "Online V/λ auto-tuning versus fixed knobs",
		XLabel: "slot t",
		YLabel: "backlog / cumulative CGBA iterations (×1000)",
	}
	xs := make([]float64, cfg.Slots)
	for t := range xs {
		xs[t] = float64(t + 1)
	}
	fig.AddSeries("bdma backlog", xs, fixed.Backlog)
	fig.AddSeries("bdma-tuned backlog", xs, tuned.Backlog)
	fig.AddSeries("bdma cum. iters (k)", xs, cumulativeK(fixed.SolverIterations))
	fig.AddSeries("bdma-tuned cum. iters (k)", xs, cumulativeK(tuned.SolverIterations))

	fixedIters, tunedIters := sumInts(fixed.SolverIterations), sumInts(tuned.SolverIterations)
	saving := 0.0
	if fixedIters > 0 {
		saving = 100 * float64(fixedIters-tunedIters) / float64(fixedIters)
	}
	fig.AddNote("CGBA iterations: fixed λ=%g total %d, tuned (coarse 0.1 → %g) total %d — %.1f%% saved",
		cfg.Lambda, fixedIters, cfg.Lambda, tunedIters, saving)
	fig.AddNote("latency: fixed %.4f s, tuned %.4f s; backlog: fixed %.3f, tuned %.3f",
		fixed.AvgLatency(), tuned.AvgLatency(), fixed.AvgBacklog(), tuned.AvgBacklog())
	if tunedIters >= fixedIters {
		fig.AddNote("WARNING: tuner saved no solver work — λ schedule not engaging")
	}
	fig.AddNote("expect: the coarse-to-fine λ schedule cuts total best-response work while the refined tail matches fixed-knob decision quality")
	return fig, nil
}

// compareTrace builds the shared scenario and records cfg.Slots states so
// every roster run replays the identical trace.
func compareTrace(cfg CompareConfig) ([]*trace.State, int, *core.System, error) {
	if cfg.Devices <= 0 || cfg.Slots <= 0 {
		return nil, 0, nil, fmt.Errorf("experiments: compare config invalid: %+v", cfg)
	}
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, 0, nil, err
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		return nil, 0, nil, err
	}
	return trace.Record(gen, cfg.Slots), gen.Period(), sc.Sys, nil
}

// comparePolicyRun replays the recorded trace through one named policy.
// The scenario is regenerated from the seed so each policy owns its
// system (virtual queues and solver scratch never leak across runs).
func comparePolicyRun(name string, cfg CompareConfig, states []*trace.State, period int) (*sim.Metrics, error) {
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pol, err := policy.New(name, sc.Sys, policy.Config{
		V: cfg.V, Rounds: cfg.Z, Lambda: cfg.Lambda, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	replay, err := trace.NewReplay(states, period)
	if err != nil {
		return nil, err
	}
	m, err := sim.Run(pol, replay, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
	if err != nil {
		return nil, fmt.Errorf("experiments: policy %s: %w", name, err)
	}
	return m, nil
}

// cumulativeK returns the running sum of xs scaled to thousands, so the
// iteration series shares an axis with the backlog series.
func cumulativeK(xs []int) []float64 {
	out := make([]float64, len(xs))
	sum := 0
	for i, x := range xs {
		sum += x
		out[i] = float64(sum) / 1000
	}
	return out
}

// sumInts totals xs.
func sumInts(xs []int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return sum
}
