package experiments

import (
	"fmt"

	"eotora/internal/core"
	"eotora/internal/faults"
	"eotora/internal/sim"
	"eotora/internal/trace"
)

// FigDegrade runs the graceful-degradation study of EXPERIMENTS.md's
// robustness appendix. It sweeps the per-slot solver checkpoint budget
// (counted deadlines — deterministic and machine-independent, unlike
// wall-clock ones) and reports how average latency and fallback-ladder
// occupancy respond as the solver is squeezed, with an unlimited-budget
// reference and a fault-injected soak leg (faults.DefaultConfig behind a
// trace.Sanitizer) that exercises the full ladder.
func FigDegrade(cfg AblationConfig, checks []int) (*Figure, error) {
	if len(checks) == 0 {
		checks = []int{2, 3, 4, 6, 10, 16}
	}
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	run := func(checkBudget int, fcfg *faults.Config) (*sim.Metrics, error) {
		gen, err := sc.DefaultGenerator()
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewBDMAController(sc.Sys, cfg.V, 5, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		var src trace.Source = gen
		if fcfg != nil {
			inj, err := faults.NewInjector(*fcfg, len(sc.Sys.Net.Servers), gen)
			if err != nil {
				return nil, err
			}
			inj.Attach(ctrl)
			src = trace.NewSanitizer(inj)
		}
		if checkBudget > 0 {
			ctrl.SetSlotDeadline(0, checkBudget)
		}
		return sim.Run(ctrl, src, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
	}

	base, err := run(0, nil)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(checks))
	latency := make([]float64, len(checks))
	degraded := make([]float64, len(checks))
	for i, c := range checks {
		m, err := run(c, nil)
		if err != nil {
			return nil, err
		}
		xs[i] = float64(c)
		latency[i] = m.AvgLatency()
		degraded[i] = float64(m.DegradedSlots()) / float64(len(m.Rung))
	}
	fig := &Figure{
		ID:     "degrade",
		Title:  "Graceful degradation: latency and ladder occupancy vs slot budget",
		XLabel: "per-slot checkpoint budget",
		YLabel: "latency [s] / degraded fraction",
	}
	fig.AddSeries("avg latency", xs, latency)
	fig.AddSeries("degraded fraction", xs, degraded)
	fig.AddNote(fmt.Sprintf("unlimited budget: avg latency %.4f s, 0 degraded slots", base.AvgLatency()))

	// Soak leg: default fault profile plus a tight counted budget, so
	// stalls, outages, and corruption push slots down every ladder rung.
	fcfg := faults.DefaultConfig(cfg.Seed)
	fm, err := run(4, &fcfg)
	if err != nil {
		return nil, err
	}
	var rungs [core.RungGreedy + 1]int
	for _, r := range fm.Rung {
		if r >= 0 && r < len(rungs) {
			rungs[r]++
		}
	}
	fig.AddNote(fmt.Sprintf(
		"fault soak (default profile, sanitized, budget 4): avg latency %.4f s; rung occupancy full=%d anytime=%d previous=%d greedy=%d",
		fm.AvgLatency(), rungs[core.RungFull], rungs[core.RungAnytime], rungs[core.RungPrevious], rungs[core.RungGreedy]))
	fig.AddNote("every slot still produced a feasible decision; see OPERATIONS.md for the ladder semantics")
	return fig, nil
}
