package experiments

import (
	"fmt"
	"math"

	"eotora/internal/core"
	"eotora/internal/policy"
	"eotora/internal/sim"
	"eotora/internal/stats"
)

// Fig7Config parameterizes the queue-backlog-over-time figure.
type Fig7Config struct {
	// Devices is I (paper: 100).
	Devices int
	// Vs is the set of penalty weights (paper: 50 and 100).
	Vs []float64
	// Z is BDMA's iteration count (paper: 5).
	Z int
	// Slots is the simulated horizon.
	Slots int
	// Seed controls everything.
	Seed int64
}

// DefaultFig7Config mirrors the paper's setting over ten days.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{Devices: 100, Vs: []float64{50, 100}, Z: 5, Slots: 240, Seed: 1}
}

// QuickFig7Config is a reduced setting for tests and benches.
func QuickFig7Config() Fig7Config {
	return Fig7Config{Devices: 15, Vs: []float64{50, 100}, Z: 2, Slots: 72, Seed: 1}
}

// Fig7 regenerates Figure 7: the virtual-queue backlog of BDMA-based DPP
// over time for each V, plus the electricity price for the anti-phase
// observation (backlog rises in expensive hours, falls in cheap ones).
func Fig7(cfg Fig7Config) (*Figure, error) {
	if cfg.Devices <= 0 || len(cfg.Vs) == 0 || cfg.Slots <= 0 {
		return nil, fmt.Errorf("experiments: fig7 config invalid: %+v", cfg)
	}
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "fig7",
		Title:  "Queue backlog of BDMA-based DPP versus time",
		XLabel: "slot t",
		YLabel: "backlog Q(t) / price [$/MWh]",
	}
	xs := make([]float64, cfg.Slots)
	for t := range xs {
		xs[t] = float64(t + 1)
	}
	var firstMetrics *sim.Metrics
	for _, v := range cfg.Vs {
		gen, err := sc.DefaultGenerator()
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewBDMAController(sc.Sys, v, cfg.Z, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(ctrl, gen, sim.Config{Slots: cfg.Slots})
		if err != nil {
			return nil, err
		}
		fig.AddSeries(fmt.Sprintf("Q(t), V=%g", v), xs, m.Backlog)
		if firstMetrics == nil {
			firstMetrics = m
		}
	}
	fig.AddSeries("price", xs, firstMetrics.Price)

	// Post-convergence, backlog increments should correlate positively
	// with the price's deviation from its mean.
	half := cfg.Slots / 2
	if half > 2 {
		incr := stats.Diff(firstMetrics.Backlog[half:])
		price := firstMetrics.Price[half : len(firstMetrics.Price)-1]
		if corr, err := stats.Correlation(incr, price); err == nil {
			fig.AddNote("corr(ΔQ, price) after convergence = %.3f (expect > 0)", corr)
		}
		// The oscillation inherits the price's period D: the ACF of the
		// converged backlog should peak at the daily lag.
		if acf := stats.Autocorrelation(firstMetrics.Backlog[half:], 24); !math.IsNaN(acf) {
			fig.AddNote("backlog ACF at lag 24 (period D) = %.3f", acf)
		}
	}
	return fig, nil
}

// Fig8Config parameterizes the V-sweep figure.
type Fig8Config struct {
	Devices int
	// Vs is the sweep (paper: 10, 50, 100, 150, 200, 500).
	Vs []float64
	// Z is BDMA's iteration count.
	Z int
	// Slots and Warmup bound the per-V simulation.
	Slots, Warmup int
	Seed          int64
}

// DefaultFig8Config mirrors the paper's sweep.
func DefaultFig8Config() Fig8Config {
	return Fig8Config{
		Devices: 100,
		Vs:      []float64{10, 50, 100, 150, 200, 500},
		Z:       5,
		Slots:   240,
		Warmup:  48,
		Seed:    1,
	}
}

// QuickFig8Config is a reduced sweep for tests and benches.
func QuickFig8Config() Fig8Config {
	return Fig8Config{Devices: 12, Vs: []float64{10, 100, 500}, Z: 2, Slots: 96, Warmup: 24, Seed: 1}
}

// Fig8 regenerates Figure 8: converged average backlog (≈ linear in V)
// and average latency (decreasing in V), matching Theorem 4's O(V) vs
// O(1/V) tradeoff.
func Fig8(cfg Fig8Config) (*Figure, error) {
	if cfg.Devices <= 0 || len(cfg.Vs) == 0 {
		return nil, fmt.Errorf("experiments: fig8 config invalid: %+v", cfg)
	}
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(cfg.Vs))
	backlog := make([]float64, len(cfg.Vs))
	latency := make([]float64, len(cfg.Vs))
	for i, v := range cfg.Vs {
		gen, err := sc.DefaultGenerator()
		if err != nil {
			return nil, err
		}
		ctrl, err := core.NewBDMAController(sc.Sys, v, cfg.Z, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		m, err := sim.Run(ctrl, gen, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
		if err != nil {
			return nil, err
		}
		xs[i] = v
		backlog[i] = m.AvgBacklog()
		latency[i] = m.AvgLatency()
	}
	fig := &Figure{
		ID:     "fig8",
		Title:  "Average queue backlog and latency of BDMA-based DPP versus V",
		XLabel: "V",
		YLabel: "backlog / latency [s]",
	}
	fig.AddSeries("avg backlog", xs, backlog)
	fig.AddSeries("avg latency", xs, latency)
	if fit, err := stats.FitLine(xs, backlog); err == nil {
		fig.AddNote("backlog vs V linear fit: slope %.4g, R² = %.3f (Theorem 4 predicts ≈ linear)", fit.Slope, fit.R2)
	}
	return fig, nil
}

// Fig9Config parameterizes the budget-sweep controller comparison.
type Fig9Config struct {
	Devices int
	// BudgetFractions position each C̄ within [all-F^L, all-F^U] cost.
	BudgetFractions []float64
	// V and Z configure the DPP controllers.
	V float64
	Z int
	// Slots and Warmup bound each run; the paper averages 48-slot
	// windows, which a post-warmup mean reproduces.
	Slots, Warmup int
	Seed          int64
}

// DefaultFig9Config mirrors the paper's comparison. The horizon is long
// (20 days) because the budget constraint is asymptotic: at tight budgets
// the virtual queue needs several days of simulated time to charge up
// before the realized average settles under C̄.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Devices:         100,
		BudgetFractions: []float64{0.2, 0.35, 0.5, 0.65, 0.8},
		V:               100,
		Z:               5,
		Slots:           480,
		Warmup:          120,
		Seed:            1,
	}
}

// QuickFig9Config is a reduced sweep for tests and benches.
func QuickFig9Config() Fig9Config {
	return Fig9Config{
		Devices:         12,
		BudgetFractions: []float64{0.25, 0.5, 0.75},
		V:               100,
		Z:               2,
		Slots:           96,
		Warmup:          24,
		Seed:            1,
	}
}

// Fig9 regenerates Figure 9: time-average latency of BDMA-, MCBA-, and
// ROPT-based DPP across energy-cost budgets, plus BDMA's realized average
// cost against the budget line.
func Fig9(cfg Fig9Config) (*Figure, error) {
	if cfg.Devices <= 0 || len(cfg.BudgetFractions) == 0 {
		return nil, fmt.Errorf("experiments: fig9 config invalid: %+v", cfg)
	}
	budgets := make([]float64, 0, len(cfg.BudgetFractions))
	lat := map[string][]float64{"BDMA-DPP": nil, "MCBA-DPP": nil, "ROPT-DPP": nil}
	realized := make([]float64, 0, len(cfg.BudgetFractions))

	for _, frac := range cfg.BudgetFractions {
		sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices, BudgetFraction: frac}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		gen, err := sc.DefaultGenerator()
		if err != nil {
			return nil, err
		}
		bdma, err := core.NewBDMAController(sc.Sys, cfg.V, cfg.Z, 0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		mcba, err := core.NewMCBAController(sc.Sys, cfg.V, cfg.Z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ropt, err := core.NewROPTController(sc.Sys, cfg.V, cfg.Z, cfg.Seed)
		if err != nil {
			return nil, err
		}
		ms, err := sim.RunAll([]policy.Policy{bdma, mcba, ropt}, gen, sim.Config{Slots: cfg.Slots, Warmup: cfg.Warmup})
		if err != nil {
			return nil, err
		}
		budgets = append(budgets, sc.Sys.Budget.Dollars())
		lat["BDMA-DPP"] = append(lat["BDMA-DPP"], ms[0].AvgLatency())
		lat["MCBA-DPP"] = append(lat["MCBA-DPP"], ms[1].AvgLatency())
		lat["ROPT-DPP"] = append(lat["ROPT-DPP"], ms[2].AvgLatency())
		realized = append(realized, ms[0].AvgCost())
	}

	fig := &Figure{
		ID:     "fig9",
		Title:  "Time-average latency and energy cost versus energy-cost budget",
		XLabel: "budget C̄ [$/slot]",
		YLabel: "latency [s] / cost [$/slot]",
	}
	for _, name := range []string{"BDMA-DPP", "MCBA-DPP", "ROPT-DPP"} {
		fig.AddSeries(name+" latency", budgets, lat[name])
	}
	fig.AddSeries("BDMA-DPP realized cost", budgets, realized)
	fig.AddSeries("budget line", budgets, budgets)
	for i := range budgets {
		if realized[i] > budgets[i]*1.05 {
			fig.AddNote("WARNING: realized cost $%.3f exceeds budget $%.3f at point %d", realized[i], budgets[i], i)
		}
	}
	fig.AddNote("expect: latency decreases as the budget loosens; BDMA ≤ MCBA ≤ ROPT; realized cost ≤ budget")
	return fig, nil
}
