package experiments

import (
	"strings"
	"testing"

	"eotora/internal/policy"
	"eotora/internal/sim"
	"eotora/internal/stats"
)

func TestFigureRenderAndCSV(t *testing.T) {
	fig := &Figure{ID: "figX", Title: "demo", XLabel: "x", YLabel: "y"}
	fig.AddSeries("a", []float64{1, 2}, []float64{10, 20})
	fig.AddSeries("b", []float64{2, 3}, []float64{200, 300})
	fig.AddNote("hello %d", 42)

	var sb strings.Builder
	if err := fig.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"figX", "demo", "a", "b", "hello 42", "10", "300", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := fig.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // header + x ∈ {1,2,3}
		t.Fatalf("CSV lines = %d, want 4:\n%s", len(lines), sb.String())
	}
	if lines[0] != "x,a,b" {
		t.Errorf("CSV header = %q", lines[0])
	}
	// x=1 has no b value → empty field.
	if !strings.HasSuffix(lines[1], ",") {
		t.Errorf("missing point should be empty field: %q", lines[1])
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	fig := &Figure{ID: "fig0", Title: "empty"}
	var sb strings.Builder
	if err := fig.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty figure should say so")
	}
}

func TestCSVEscape(t *testing.T) {
	if got := csvEscape(`plain`); got != "plain" {
		t.Errorf("csvEscape plain = %q", got)
	}
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Errorf("csvEscape comma = %q", got)
	}
	if got := csvEscape(`say "hi"`); got != `"say ""hi"""` {
		t.Errorf("csvEscape quote = %q", got)
	}
}

func TestNewScenarioDefaults(t *testing.T) {
	sc, err := NewScenario(ScenarioOptions{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	k, m, n, i := sc.Net.Counts()
	if k != 6 || m != 2 || n != 16 || i != 100 {
		t.Errorf("counts = (%d,%d,%d,%d), want paper's (6,2,16,100)", k, m, n, i)
	}
	low, high := sc.BudgetRange(50)
	if !(low < sc.Sys.Budget && sc.Sys.Budget < high) {
		t.Errorf("budget $%v outside feasible range ($%v, $%v)", sc.Sys.Budget, low, high)
	}
}

func TestScenarioGeneratorReplays(t *testing.T) {
	sc, err := NewScenario(ScenarioOptions{Devices: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := sc.DefaultGenerator()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := sc.DefaultGenerator()
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 5; s++ {
		a, b := g1.Next(), g2.Next()
		if a.Price != b.Price {
			t.Fatalf("generators diverged at slot %d", s)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	fig, err := Fig2(Fig2Config{Days: 7, Devices: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want price + workload", len(fig.Series))
	}
	for _, s := range fig.Series {
		if s.Len() != 7*24 {
			t.Errorf("series %q has %d points, want %d", s.Name, s.Len(), 7*24)
		}
	}
	// Both inputs must be visibly diurnal (ratio > 1.1).
	price, work := fig.Series[0].Y, fig.Series[1].Y
	if r := hourRatio(price); r < 1.1 {
		t.Errorf("price hourly ratio %v — no periodic trend", r)
	}
	if r := hourRatio(work); r < 1.1 {
		t.Errorf("workload hourly ratio %v — no periodic trend", r)
	}
}

func TestFig2Validation(t *testing.T) {
	if _, err := Fig2(Fig2Config{Days: 0, Devices: 5}); err == nil {
		t.Error("zero days accepted")
	}
}

func TestFig3FitQuality(t *testing.T) {
	fig, err := Fig3(DefaultFig3Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 { // measured + fit + 2 perturbed
		t.Fatalf("series = %d, want 4", len(fig.Series))
	}
	measured, fitted := fig.Series[0], fig.Series[1]
	if measured.Len() != fitted.Len() {
		t.Fatal("length mismatch")
	}
	for i := range measured.Y {
		diff := measured.Y[i] - fitted.Y[i]
		if diff < -1 || diff > 1 {
			t.Errorf("fit misses measurement at %v GHz by %v W", measured.X[i], diff)
		}
	}
	// All curves increasing in frequency.
	for _, s := range fig.Series {
		for i := 1; i < s.Len(); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Errorf("series %q not increasing at index %d", s.Name, i)
			}
		}
	}
}

func TestFig3NoPerturbedCurves(t *testing.T) {
	fig, err := Fig3(Fig3Config{PerturbedCurves: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Errorf("series = %d, want 2", len(fig.Series))
	}
	if _, err := Fig3(Fig3Config{PerturbedCurves: -1}); err == nil {
		t.Error("negative curve count accepted")
	}
}

func TestP2ASweepShapes(t *testing.T) {
	// The Figure 4/5 claims, at reduced scale:
	// CGBA ≤ MCBA and CGBA ≤ ROPT; OPT ≤ CGBA; objectives grow with I.
	points, err := P2ASweep(QuickP2ASweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		cgba, mcba := p.Objective["CGBA"], p.Objective["MCBA"]
		ropt, opt := p.Objective["ROPT"], p.Objective["OPT"]
		// At this reduced scale MCMC occasionally edges out the Nash
		// equilibrium; the paper-scale ordering (CGBA < MCBA) is recorded
		// in EXPERIMENTS.md. Here only a loose bound is asserted.
		if cgba > mcba*1.10 {
			t.Errorf("I=%d: CGBA %v far above MCBA %v", p.Devices, cgba, mcba)
		}
		if cgba > ropt {
			t.Errorf("I=%d: CGBA %v above ROPT %v", p.Devices, cgba, ropt)
		}
		if opt > cgba+1e-9 {
			t.Errorf("I=%d: OPT %v above CGBA %v", p.Devices, opt, cgba)
		}
		if cgba > 2.62*opt+1e-9 {
			t.Errorf("I=%d: CGBA breaks the 2.62 bound (%v vs %v)", p.Devices, cgba, opt)
		}
		if p.CGBAIterations <= 0 {
			t.Errorf("I=%d: no CGBA iterations", p.Devices)
		}
	}
	// Objectives grow with I for every algorithm (more devices, more load).
	for _, alg := range p2aAlgorithms {
		if points[len(points)-1].Objective[alg] <= points[0].Objective[alg] {
			t.Errorf("%s objective not increasing in I", alg)
		}
	}
}

func TestFig4AndFig5Render(t *testing.T) {
	cfg := QuickP2ASweepConfig()
	fig4, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4.Series) != 4 {
		t.Errorf("fig4 series = %d", len(fig4.Series))
	}
	fig5, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig5.Series) != 4 {
		t.Errorf("fig5 series = %d", len(fig5.Series))
	}
	var sb strings.Builder
	if err := fig4.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if err := fig5.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CGBA/OPT") {
		t.Error("fig4 missing ratio note")
	}
}

func TestFig6Shapes(t *testing.T) {
	fig, err := Fig6(QuickFig6Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	objective, iters := fig.Series[0].Y, fig.Series[1].Y
	// Iterations non-increasing in λ (same instance, same start).
	for i := 1; i < len(iters); i++ {
		if iters[i] > iters[i-1] {
			t.Errorf("iterations increased at λ=%v: %v → %v", fig.Series[1].X[i], iters[i-1], iters[i])
		}
	}
	// Objective at the largest λ is no better than at λ = 0 (Theorem 2's
	// factor grows in λ).
	if objective[len(objective)-1] < objective[0]*(1-1e-9) {
		t.Errorf("objective improved with larger λ: %v → %v", objective[0], objective[len(objective)-1])
	}
}

func TestFig6Validation(t *testing.T) {
	if _, err := Fig6(Fig6Config{Devices: 0}); err == nil {
		t.Error("zero devices accepted")
	}
}

func TestFig7Shapes(t *testing.T) {
	cfg := QuickFig7Config()
	fig, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Series: one backlog per V + price.
	if len(fig.Series) != len(cfg.Vs)+1 {
		t.Fatalf("series = %d, want %d", len(fig.Series), len(cfg.Vs)+1)
	}
	for _, s := range fig.Series {
		if s.Len() != cfg.Slots {
			t.Fatalf("series %q length %d, want %d", s.Name, s.Len(), cfg.Slots)
		}
	}
	// Backlogs non-negative; early average below late average (ramp-up).
	for vi := range cfg.Vs {
		q := fig.Series[vi].Y
		for t2, v := range q {
			if v < 0 {
				t.Fatalf("negative backlog at slot %d", t2)
			}
		}
		early := stats.Mean(q[:len(q)/4])
		late := stats.Mean(q[len(q)/2:])
		if late < early {
			t.Errorf("V=%v: backlog did not ramp (early %v, late %v)", cfg.Vs[vi], early, late)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	fig, err := Fig8(QuickFig8Config())
	if err != nil {
		t.Fatal(err)
	}
	backlog, latency := fig.Series[0].Y, fig.Series[1].Y
	// Backlog increasing in V; latency non-increasing (weakly, 5% slack
	// for the reduced-scale noise).
	for i := 1; i < len(backlog); i++ {
		if backlog[i] < backlog[i-1] {
			t.Errorf("backlog decreased between V points %d→%d: %v → %v", i-1, i, backlog[i-1], backlog[i])
		}
		if latency[i] > latency[i-1]*1.05 {
			t.Errorf("latency increased between V points %d→%d: %v → %v", i-1, i, latency[i-1], latency[i])
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	fig, err := Fig9(QuickFig9Config())
	if err != nil {
		t.Fatal(err)
	}
	series := map[string][]float64{}
	var budgets []float64
	for _, s := range fig.Series {
		series[s.Name] = s.Y
		budgets = s.X
	}
	bdma := series["BDMA-DPP latency"]
	mcba := series["MCBA-DPP latency"]
	ropt := series["ROPT-DPP latency"]
	realized := series["BDMA-DPP realized cost"]
	if bdma == nil || mcba == nil || ropt == nil || realized == nil {
		t.Fatalf("missing series: %v", fig.Series)
	}
	for i := range bdma {
		// BDMA no worse than the baselines (2% slack).
		if bdma[i] > mcba[i]*1.02 {
			t.Errorf("point %d: BDMA %v above MCBA %v", i, bdma[i], mcba[i])
		}
		if bdma[i] > ropt[i]*1.02 {
			t.Errorf("point %d: BDMA %v above ROPT %v", i, bdma[i], ropt[i])
		}
		// Realized cost within the budget (asymptotic bound; 10% slack at
		// reduced horizon).
		if realized[i] > budgets[i]*1.10 {
			t.Errorf("point %d: realized cost $%v above budget $%v", i, realized[i], budgets[i])
		}
	}
	// Latency non-increasing as budgets loosen (5% slack).
	for i := 1; i < len(bdma); i++ {
		if bdma[i] > bdma[i-1]*1.05 {
			t.Errorf("BDMA latency rose with looser budget: %v → %v", bdma[i-1], bdma[i])
		}
	}
}

func TestAblationBDMAZ(t *testing.T) {
	fig, err := AblationBDMAZ(QuickAblationConfig(), []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Decision time grows with z.
	times := fig.Series[1].Y
	if times[1] <= times[0] {
		t.Errorf("decision time not increasing in z: %v", times)
	}
}

func TestAblationP2BSolverAgrees(t *testing.T) {
	fig, err := AblationP2BSolver(QuickAblationConfig())
	if err != nil {
		t.Fatal(err)
	}
	sep, joint := fig.Series[0].Y, fig.Series[1].Y
	for i := range sep {
		rel := (sep[i] - joint[i]) / joint[i]
		if rel > 1e-3 || rel < -1e-3 {
			t.Errorf("instance %d: separable %v vs joint %v (rel %v)", i, sep[i], joint[i], rel)
		}
	}
}

func TestAblationIID(t *testing.T) {
	fig, err := AblationIID(QuickAblationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	if len(fig.Notes) < 2 {
		t.Error("missing summary notes")
	}
}

func TestAblationFronthaulJitter(t *testing.T) {
	fig, err := AblationFronthaulJitter(QuickAblationConfig())
	if err != nil {
		t.Fatal(err)
	}
	lat := fig.Series[0].Y
	// Jitter must not break the controller; latency stays finite and
	// positive at every σ.
	for i, v := range lat {
		if v <= 0 {
			t.Errorf("σ index %d: latency %v", i, v)
		}
	}
}

func TestAblationPivot(t *testing.T) {
	fig, err := AblationPivot(QuickAblationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	obj := fig.Series[0].Y
	if len(obj) != 3 {
		t.Fatalf("rules = %d, want 3", len(obj))
	}
	// All rules reach an equilibrium, so averaged objectives stay within a
	// modest band of each other.
	for i := 1; i < len(obj); i++ {
		ratio := obj[i] / obj[0]
		if ratio > 1.25 || ratio < 0.8 {
			t.Errorf("pivot rule %d objective ratio %v vs max-improvement", i, ratio)
		}
	}
}

func TestFigureWriteMarkdown(t *testing.T) {
	fig := &Figure{ID: "figY", Title: "md demo", XLabel: "x|axis", YLabel: "y"}
	fig.AddSeries("a", []float64{1, 2}, []float64{10, 20})
	fig.AddSeries("b", []float64{2}, []float64{200})
	fig.AddNote("a note")
	var sb strings.Builder
	if err := fig.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"## figY — md demo", "| x\\|axis | a | b |", "| 1 | 10 | — |", "- a note", "*(values: y)*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q in:\n%s", want, out)
		}
	}
	// Empty figure: header only, no table.
	var sb2 strings.Builder
	if err := (&Figure{ID: "e", Title: "t"}).WriteMarkdown(&sb2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb2.String(), "|") {
		t.Error("empty figure rendered a table")
	}
}

func TestRunSpecRoundtrip(t *testing.T) {
	spec := RunSpec{Devices: 12, Seed: 7, V: 50, Z: 2, Solver: "ropt", Slots: 24, Layout: "hex"}
	var sb strings.Builder
	if err := spec.Save(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRunSpec(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Errorf("roundtrip changed spec: %+v vs %+v", got, spec)
	}
	if _, err := LoadRunSpec(strings.NewReader(`{"bogus": true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadRunSpec(strings.NewReader(`{nope`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRunSpecBuildAndRun(t *testing.T) {
	spec := RunSpec{Devices: 8, Seed: 3, V: 50, Z: 1, Slots: 12, Warmup: 2, Layout: "hex", WeekendDiscount: 0.2}
	sc, gen, ctrl, cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc == nil || gen == nil || ctrl == nil {
		t.Fatal("nil build outputs")
	}
	if cfg.Slots != 12 || cfg.Warmup != 2 {
		t.Errorf("sim config = %+v", cfg)
	}
	if gen.Period() != 168 {
		t.Errorf("weekend discount should extend period to 168, got %d", gen.Period())
	}
	m, err := sim.Run(ctrl, gen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots() != 12 {
		t.Errorf("ran %d slots", m.Slots())
	}
}

func TestRunSpecDefaults(t *testing.T) {
	spec := RunSpec{}
	spec.applyDefaults()
	if spec.Devices != 100 || spec.V != 100 || spec.Z != 5 || spec.Solver != "cgba" || spec.Slots != 240 {
		t.Errorf("defaults = %+v", spec)
	}
	if spec.Warmup != 48 {
		t.Errorf("default warmup = %d, want slots/5", spec.Warmup)
	}
}

func TestRunSpecBuildErrors(t *testing.T) {
	if _, _, _, _, err := (RunSpec{Devices: 5, Layout: "triangle"}).Build(); err == nil {
		t.Error("unknown layout accepted")
	}
	if _, _, _, _, err := (RunSpec{Devices: 5, Solver: "magic"}).Build(); err == nil {
		t.Error("unknown solver accepted")
	}
	for _, solver := range []string{"mcba", "ropt"} {
		if _, _, _, _, err := (RunSpec{Devices: 5, Slots: 6, Solver: solver}).Build(); err != nil {
			t.Errorf("solver %q rejected: %v", solver, err)
		}
	}
}

func TestAblationComputeBound(t *testing.T) {
	cfg := QuickAblationConfig()
	cfg.Slots = 48
	cfg.Warmup = 12
	fig, err := AblationComputeBound(cfg, []float64{10, 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	paper, heavy := fig.Series[0].Y, fig.Series[1].Y
	// The compute-bound workload has higher absolute latency.
	for i := range paper {
		if heavy[i] <= paper[i] {
			t.Errorf("point %d: compute-bound latency %v not above paper %v", i, heavy[i], paper[i])
		}
	}
	// The V effect (relative drop) must be at least as large compute-bound.
	dropPaper := (paper[0] - paper[len(paper)-1]) / paper[0]
	dropHeavy := (heavy[0] - heavy[len(heavy)-1]) / heavy[0]
	if dropHeavy < dropPaper-1e-9 {
		t.Errorf("compute-bound V-effect %.4f not larger than paper %.4f", dropHeavy, dropPaper)
	}
}

func TestAblationSeeds(t *testing.T) {
	cfg := QuickAblationConfig()
	cfg.Slots = 36
	cfg.Warmup = 8
	fig, err := AblationSeeds(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || fig.Series[0].Len() != 3 {
		t.Fatalf("series shape wrong: %v", fig.Series)
	}
	if len(fig.Notes) != 3 {
		t.Errorf("notes = %d", len(fig.Notes))
	}
	for _, v := range fig.Series[0].Y {
		if v <= 0 {
			t.Errorf("non-positive latency %v", v)
		}
	}
}

// TestTheorem4LatencyScaling fits the measured average latency against 1/V:
// Theorem 4 predicts latency ≤ R·ρ* + B·D/V, so the latency should decay
// roughly affinely in 1/V with a non-negative 1/V coefficient.
func TestTheorem4LatencyScaling(t *testing.T) {
	cfg := QuickFig8Config()
	cfg.Vs = []float64{10, 25, 50, 100, 250, 500}
	fig, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs := fig.Series[1].X
	latency := fig.Series[1].Y
	invV := make([]float64, len(vs))
	for i, v := range vs {
		invV[i] = 1 / v
	}
	fit, err := stats.FitLine(invV, latency)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 0 {
		t.Errorf("latency-vs-1/V slope %v negative — contradicts Theorem 4's B·D/V term", fit.Slope)
	}
	// The intercept approximates the V→∞ latency and must stay positive.
	if fit.Intercept <= 0 {
		t.Errorf("intercept %v non-positive", fit.Intercept)
	}
}

func TestAblationFlashCrowd(t *testing.T) {
	cfg := QuickAblationConfig()
	cfg.Slots = 48
	cfg.Warmup = 8
	fig, err := AblationFlashCrowd(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Notes) != 2 {
		t.Fatalf("series/notes = %d/%d", len(fig.Series), len(fig.Notes))
	}
	// All latencies finite and positive under surges.
	for _, s := range fig.Series {
		for i, v := range s.Y {
			if v <= 0 {
				t.Fatalf("series %q slot %d latency %v", s.Name, i, v)
			}
		}
	}
}

func TestAblationPerRoomBudgets(t *testing.T) {
	cfg := QuickAblationConfig()
	cfg.Slots = 72
	cfg.Warmup = 12
	fig, err := AblationPerRoomBudgets(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	if len(fig.Notes) < 4 {
		t.Fatalf("notes = %d, want per-room cost lines", len(fig.Notes))
	}
}

func TestAblationStaleObservation(t *testing.T) {
	cfg := QuickAblationConfig()
	cfg.Slots = 60
	cfg.Warmup = 10
	fig, err := AblationStaleObservation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lat := fig.Series[0].Y
	if len(lat) != 2 {
		t.Fatalf("points = %d", len(lat))
	}
	// Stale decisions are not better than observed ones (small slack for
	// noise at reduced scale).
	if lat[1] < lat[0]*0.98 {
		t.Errorf("stale latency %v beats observed %v", lat[1], lat[0])
	}
}

func TestAblationConvergence(t *testing.T) {
	cfg := QuickAblationConfig()
	fig, err := AblationConvergence(cfg, []float64{0, 0.12})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		// Individual selfish moves may raise the social objective (only
		// the potential is monotone); the end of each trajectory must
		// still improve on its start.
		if s.Y[s.Len()-1] > s.Y[0] {
			t.Errorf("series %q ended above its start: %v → %v", s.Name, s.Y[0], s.Y[s.Len()-1])
		}
	}
	// λ=0 runs at least as long and ends at least as low as λ=0.12.
	l0, l12 := fig.Series[0], fig.Series[1]
	if l0.Len() < l12.Len() {
		t.Errorf("λ=0 trace (%d) shorter than λ=0.12 (%d)", l0.Len(), l12.Len())
	}
	if l0.Y[l0.Len()-1] > l12.Y[l12.Len()-1]*1.0001 {
		t.Errorf("λ=0 final %v above λ=0.12 final %v", l0.Y[l0.Len()-1], l12.Y[l12.Len()-1])
	}
}

// TestComparePolicies gates the policy-roster claims of the EXPERIMENTS.md
// appendix at quick scale: one series + summary note per policy, BDMA the
// lowest-latency policy within budget (the harness emits a WARNING note
// whenever a baseline beats it), and the Ω^L/Ω^U cost split.
func TestComparePolicies(t *testing.T) {
	fig, err := ComparePolicies(QuickCompareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("series = %d, want the 6-policy roster", len(fig.Series))
	}
	for _, note := range fig.Notes {
		if strings.Contains(note, "WARNING") {
			t.Errorf("a baseline beat BDMA within budget: %s", note)
		}
	}
	cost := map[string]float64{}
	for _, s := range fig.Series {
		if s.Len() != 1 {
			t.Fatalf("series %q has %d points, want 1", s.Name, s.Len())
		}
		cost[s.Name] = s.X[0]
	}
	// The Ω^L baselines share the all-lowest-frequency cost; the Ω^U pair
	// shares the all-highest one; BDMA prices itself strictly between.
	if cost["greedy-energy"] != cost["random"] || cost["greedy-energy"] != cost["local-only"] {
		t.Errorf("Ω^L baseline costs diverge: %v", cost)
	}
	if cost["greedy-deadline"] != cost["edge-only"] {
		t.Errorf("Ω^U baseline costs diverge: %v", cost)
	}
	if !(cost["greedy-energy"] < cost["bdma"] && cost["bdma"] < cost["greedy-deadline"]) {
		t.Errorf("BDMA cost %v not between Ω^L %v and Ω^U %v",
			cost["bdma"], cost["greedy-energy"], cost["greedy-deadline"])
	}
}

// TestTunerDemo gates the auto-tuner claims: the coarse-to-fine λ
// schedule saves CGBA iterations (the harness notes a WARNING when it
// does not) at near-parity decision quality.
func TestTunerDemo(t *testing.T) {
	cfg := QuickCompareConfig()
	fig, err := TunerDemo(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d, want backlog + iteration pairs", len(fig.Series))
	}
	for _, note := range fig.Notes {
		if strings.Contains(note, "WARNING") {
			t.Errorf("tuner saved no solver work: %s", note)
		}
	}
	states, period, _, err := compareTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := comparePolicyRun(policy.BDMA, cfg, states, period)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := comparePolicyRun(policy.BDMATuned, cfg, states, period)
	if err != nil {
		t.Fatal(err)
	}
	fixedIters, tunedIters := sumInts(fixed.SolverIterations), sumInts(tuned.SolverIterations)
	if tunedIters >= fixedIters {
		t.Errorf("tuned iterations %d not below fixed %d", tunedIters, fixedIters)
	}
	// Decision quality stays at parity: the refined tail matches the fixed
	// λ, so the averaged latency may differ only in the transient (2%).
	if ratio := tuned.AvgLatency() / fixed.AvgLatency(); ratio > 1.02 || ratio < 0.98 {
		t.Errorf("latency parity broken: tuned %v vs fixed %v", tuned.AvgLatency(), fixed.AvgLatency())
	}
}
