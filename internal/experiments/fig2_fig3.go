package experiments

import (
	"fmt"

	"eotora/internal/energy"
	"eotora/internal/rng"
	"eotora/internal/stats"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// Fig2Config parameterizes the input-trace figure.
type Fig2Config struct {
	// Days of hourly samples to plot (paper shows about two weeks).
	Days int
	// Devices drives the workload aggregate.
	Devices int
	// Seed controls the synthetic processes.
	Seed int64
}

// DefaultFig2Config mirrors the paper's two-week window.
func DefaultFig2Config() Fig2Config { return Fig2Config{Days: 14, Devices: 100, Seed: 1} }

// Fig2 regenerates Figure 2: the non-iid real-world inputs — hourly
// electricity prices (NYISO-like) and the hourly workload level (the
// video-viewership stand-in) — demonstrating the periodic-trend-plus-noise
// structure the system-state model assumes.
func Fig2(cfg Fig2Config) (*Figure, error) {
	if cfg.Days <= 0 || cfg.Devices <= 0 {
		return nil, fmt.Errorf("experiments: fig2 needs positive days and devices, got %d/%d", cfg.Days, cfg.Devices)
	}
	root := rng.New(cfg.Seed)
	price := trace.NewPriceProcess(trace.DefaultPriceConfig(), root.Derive("price"))
	demand := trace.NewDemandProcess(trace.DefaultDemandConfig(), cfg.Devices, root.Derive("demand"))

	slots := cfg.Days * 24
	xs := make([]float64, slots)
	prices := make([]float64, slots)
	workload := make([]float64, slots)
	for t := 0; t < slots; t++ {
		xs[t] = float64(t)
		prices[t] = price.Next().PerMWh()
		tasks, _ := demand.Next()
		total := 0.0
		for _, f := range tasks {
			total += f.Count()
		}
		workload[t] = total / 1e6 // aggregate mega-cycles per slot
	}

	fig := &Figure{
		ID:     "fig2",
		Title:  "Real-world-like inputs: hourly electricity price and workload",
		XLabel: "hour",
		YLabel: "price [$/MWh] / workload [Mcycles]",
	}
	fig.AddSeries("price", xs, prices)
	fig.AddSeries("workload", xs, workload)

	// Shape notes: both series must show a diurnal pattern.
	fig.AddNote("price peak/trough hourly-mean ratio = %.2f", hourRatio(prices))
	fig.AddNote("workload peak/trough hourly-mean ratio = %.2f", hourRatio(workload))
	return fig, nil
}

// hourRatio computes max/min of hour-of-day means, a periodicity measure.
func hourRatio(series []float64) float64 {
	sums := make([]float64, 24)
	counts := make([]int, 24)
	for t, v := range series {
		sums[t%24] += v
		counts[t%24]++
	}
	means := make([]float64, 0, 24)
	for h := range sums {
		if counts[h] > 0 {
			means = append(means, sums[h]/float64(counts[h]))
		}
	}
	mn := stats.Min(means)
	if mn == 0 {
		return 0
	}
	return stats.Max(means) / mn
}

// Fig3Config parameterizes the energy-function figure.
type Fig3Config struct {
	// PerturbedCurves is the number of per-server example curves (paper
	// shows two dashed ones).
	PerturbedCurves int
	// Seed controls the perturbation draws.
	Seed int64
}

// DefaultFig3Config mirrors the paper's Figure 3.
func DefaultFig3Config() Fig3Config { return Fig3Config{PerturbedCurves: 2, Seed: 1} }

// Fig3 regenerates Figure 3: the measured i7-3770K power samples, the
// least-squares quadratic fit, and randomly perturbed per-server energy
// functions.
func Fig3(cfg Fig3Config) (*Figure, error) {
	if cfg.PerturbedCurves < 0 {
		return nil, fmt.Errorf("experiments: fig3 needs non-negative curve count, got %d", cfg.PerturbedCurves)
	}
	samples := energy.I7_3770K()
	fit, rmse := energy.FitI7Quadratic()

	fig := &Figure{
		ID:     "fig3",
		Title:  "Energy consumption vs clock frequency (i7-3770K fit + perturbed servers)",
		XLabel: "frequency [GHz]",
		YLabel: "per-core power [W]",
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Freq.GigaHertz()
		ys[i] = s.Power.Watts()
	}
	fig.AddSeries("measured", xs, ys)

	fitted := make([]float64, len(xs))
	for i, x := range xs {
		fitted[i] = fit.Power(units.Frequency(x * 1e9)).Watts()
	}
	fig.AddSeries("quadratic fit", xs, fitted)

	src := rng.New(cfg.Seed)
	for c := 0; c < cfg.PerturbedCurves; c++ {
		e := src.TruncNormal(0, 1, -4, 4)
		m := fit.Perturb(e)
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = m.Power(units.Frequency(x * 1e9)).Watts()
		}
		fig.AddSeries(fmt.Sprintf("perturbed server %d (e=%.2f)", c+1, e), xs, ys)
	}

	fig.AddNote("fit: power = %.4g·ω² + %.4g·ω + %.4g  (ω in GHz), RMSE %.3g W", fit.A, fit.B, fit.C, rmse)
	fig.AddNote("per-server perturbation: a(1+0.01e), b(1+0.1e), c(1+0.1e), e ~ N(0,1)")
	return fig, nil
}
