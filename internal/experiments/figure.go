// Package experiments reproduces the paper's evaluation (Section VI):
// every figure has a harness that generates the same series the paper
// plots, renderable as aligned text tables or CSV. The harnesses are
// shared by cmd/experiments (interactive regeneration) and the repository
// root benches (go test -bench).
//
// Absolute numbers differ from the paper — the substrate is this
// repository's simulator, not the authors' testbed — but the qualitative
// shapes (orderings, growth directions, crossovers) are asserted in
// EXPERIMENTS.md and in the integration tests of this package.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Len returns the number of points.
func (s Series) Len() int { return len(s.X) }

// Figure is a reproduced plot: metadata plus one or more series over a
// shared x-axis semantic.
type Figure struct {
	// ID is the paper's figure number, e.g. "fig4".
	ID string
	// Title is the caption.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Series holds the plotted lines.
	Series []Series
	// Notes carries derived observations (fit coefficients, ratios,
	// shape-check outcomes).
	Notes []string
}

// AddSeries appends a series.
func (f *Figure) AddSeries(name string, x, y []float64) {
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
}

// AddNote appends a formatted note.
func (f *Figure) AddNote(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Render writes the figure as an aligned text table: one row per x value,
// one column per series. Series with disjoint x-axes are merged on the
// union of x values; missing points render as "-".
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		b.WriteString("(no data)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}

	xs := unionX(f.Series)
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, formatNum(x))
		for _, s := range f.Series {
			v, ok := lookup(s, x)
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, formatNum(v))
		}
		rows = append(rows, row)
	}
	writeAligned(&b, rows)
	if f.YLabel != "" {
		fmt.Fprintf(&b, "(values: %s)\n", f.YLabel)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV streams the figure as CSV over the union x-axis.
func (f *Figure) WriteCSV(w io.Writer) error {
	cols := make([]string, 0, len(f.Series)+1)
	cols = append(cols, csvEscape(f.XLabel))
	for _, s := range f.Series {
		cols = append(cols, csvEscape(s.Name))
	}
	if _, err := io.WriteString(w, strings.Join(cols, ",")+"\n"); err != nil {
		return err
	}
	for _, x := range unionX(f.Series) {
		row := make([]string, 0, len(f.Series)+1)
		row = append(row, formatCSVNum(x))
		for _, s := range f.Series {
			if v, ok := lookup(s, x); ok {
				row = append(row, formatCSVNum(v))
			} else {
				row = append(row, "")
			}
		}
		if _, err := io.WriteString(w, strings.Join(row, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func unionX(series []Series) []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	// Insertion sort: x-axes are short and nearly sorted.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

func lookup(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func formatNum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%d", int64(v))
	case math.Abs(v) >= 1e5 || (v != 0 && math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func formatCSVNum(v float64) string { return fmt.Sprintf("%g", v) }

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for c, cell := range row {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for pad := len(cell); pad < widths[c]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
}

// WriteMarkdown renders the figure as a GitHub-flavored markdown section:
// a header, a table over the union x-axis, and the notes as a list.
func (f *Figure) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", f.ID, f.Title)
	if len(f.Series) > 0 {
		b.WriteString("| " + mdEscape(f.XLabel))
		for _, s := range f.Series {
			b.WriteString(" | " + mdEscape(s.Name))
		}
		b.WriteString(" |\n|")
		for i := 0; i <= len(f.Series); i++ {
			b.WriteString("---|")
		}
		b.WriteString("\n")
		for _, x := range unionX(f.Series) {
			b.WriteString("| " + formatNum(x))
			for _, s := range f.Series {
				if v, ok := lookup(s, x); ok {
					b.WriteString(" | " + formatNum(v))
				} else {
					b.WriteString(" | —")
				}
			}
			b.WriteString(" |\n")
		}
		if f.YLabel != "" {
			fmt.Fprintf(&b, "\n*(values: %s)*\n", mdEscape(f.YLabel))
		}
	}
	if len(f.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range f.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func mdEscape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
