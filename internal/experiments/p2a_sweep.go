package experiments

import (
	"fmt"
	"time"

	"eotora/internal/game"
	"eotora/internal/rng"
	"eotora/internal/solver"
)

// P2ASweepConfig parameterizes the Figure 4/5 single-slot P2-A comparison.
type P2ASweepConfig struct {
	// DeviceCounts is the I sweep (paper: 80, 90, ..., 120).
	DeviceCounts []int
	// Seed controls scenario generation and solver randomness.
	Seed int64
	// ROPTDraws averages the random baseline over several draws (its
	// variance is high); 0 selects 5.
	ROPTDraws int
	// MCBAIterations caps the MCMC baseline (0 = its default).
	MCBAIterations int
	// BnBMaxNodes and BnBTimeLimit budget the exact baseline per
	// instance; zero values mean unlimited (may be very slow at I ≥ 80).
	BnBMaxNodes  int
	BnBTimeLimit time.Duration
}

// DefaultP2ASweepConfig reproduces the paper's sweep with a bounded
// branch-and-bound budget standing in for Gurobi.
func DefaultP2ASweepConfig() P2ASweepConfig {
	return P2ASweepConfig{
		DeviceCounts: []int{80, 90, 100, 110, 120},
		Seed:         1,
		ROPTDraws:    5,
		BnBMaxNodes:  2_000_000,
		BnBTimeLimit: 30 * time.Second,
	}
}

// QuickP2ASweepConfig is a reduced sweep for tests and benches.
func QuickP2ASweepConfig() P2ASweepConfig {
	return P2ASweepConfig{
		DeviceCounts: []int{10, 14, 18},
		Seed:         1,
		ROPTDraws:    3,
		BnBMaxNodes:  50_000,
		BnBTimeLimit: 2 * time.Second,
	}
}

// P2APoint is the measurement at one device count.
type P2APoint struct {
	Devices int
	// Objective maps algorithm name → P2-A objective (reduced latency).
	Objective map[string]float64
	// Elapsed maps algorithm name → solve wall time.
	Elapsed map[string]time.Duration
	// OptProven is true when branch-and-bound exhausted the space.
	OptProven bool
	// OptGap is the relative bound gap of the exact baseline.
	OptGap float64
	// CGBAIterations counts CGBA's best-response steps.
	CGBAIterations int
}

// P2ASweep runs the Figure 4/5 measurement: one slot's P2-A instance per
// device count, solved by CGBA(0), MCBA, ROPT, and branch-and-bound, all
// at Ω = Ω^L as in the P2-A formulation.
func P2ASweep(cfg P2ASweepConfig) ([]P2APoint, error) {
	if len(cfg.DeviceCounts) == 0 {
		return nil, fmt.Errorf("experiments: empty device sweep")
	}
	draws := cfg.ROPTDraws
	if draws <= 0 {
		draws = 5
	}
	points := make([]P2APoint, 0, len(cfg.DeviceCounts))
	for _, devices := range cfg.DeviceCounts {
		sc, err := NewScenario(ScenarioOptions{Devices: devices}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		gen, err := sc.DefaultGenerator()
		if err != nil {
			return nil, err
		}
		st := gen.Next()
		p2a, err := sc.Sys.NewP2A(st, sc.Sys.LowestFrequencies())
		if err != nil {
			return nil, err
		}

		point := P2APoint{
			Devices:   devices,
			Objective: make(map[string]float64, 4),
			Elapsed:   make(map[string]time.Duration, 4),
		}
		src := rng.New(cfg.Seed).Derive(fmt.Sprintf("p2a-%d", devices))

		// CGBA(0). The figures characterize Algorithm 3 itself (objective
		// and step count against the baselines), so they pin the
		// paper-faithful exact path rather than the shortlist fast path.
		start := time.Now()
		cgbaRes, err := game.CGBA(p2a.Game(), game.CGBAConfig{Shortlist: game.ShortlistFull}, src.Derive("cgba"))
		if err != nil {
			return nil, fmt.Errorf("experiments: CGBA at I=%d: %w", devices, err)
		}
		point.Elapsed["CGBA"] = time.Since(start)
		point.Objective["CGBA"] = cgbaRes.Objective
		point.CGBAIterations = cgbaRes.Iterations

		// MCBA.
		start = time.Now()
		mcbaRes, err := game.MCBA(p2a.Game(), game.MCBAConfig{Iterations: cfg.MCBAIterations}, src.Derive("mcba"))
		if err != nil {
			return nil, fmt.Errorf("experiments: MCBA at I=%d: %w", devices, err)
		}
		point.Elapsed["MCBA"] = time.Since(start)
		point.Objective["MCBA"] = mcbaRes.Objective

		// ROPT, averaged over draws.
		start = time.Now()
		roptSum := 0.0
		roptSrc := src.Derive("ropt")
		for d := 0; d < draws; d++ {
			roptSum += game.RandomProfile(p2a.Game(), roptSrc).Objective
		}
		point.Elapsed["ROPT"] = time.Since(start) / time.Duration(draws)
		point.Objective["ROPT"] = roptSum / float64(draws)

		// Exact baseline (Gurobi stand-in): branch-and-bound warm-started
		// with this sweep's CGBA incumbent, so OPT ≤ CGBA even when the
		// node budget truncates the search.
		start = time.Now()
		optRes, bnb, err := game.Optimal(p2a.Game(), solver.BnBConfig{
			MaxNodes:      cfg.BnBMaxNodes,
			TimeLimit:     cfg.BnBTimeLimit,
			Incumbent:     solver.Assignment(cgbaRes.Profile),
			IncumbentCost: cgbaRes.Objective,
		}, src.Derive("opt"))
		if err != nil {
			return nil, fmt.Errorf("experiments: OPT at I=%d: %w", devices, err)
		}
		point.Elapsed["OPT"] = time.Since(start)
		point.Objective["OPT"] = optRes.Objective
		point.OptProven = bnb.Optimal
		// The true optimum is lower-bounded both by the B&B bound and by
		// Theorem 2 (CGBA ≤ 2.62·OPT ⇒ OPT ≥ CGBA/2.62); report the gap
		// against the tighter of the two.
		lb := bnb.Bound
		if thm2 := cgbaRes.Objective / 2.62; thm2 > lb {
			lb = thm2
		}
		if lb > 0 && !bnb.Optimal {
			point.OptGap = (optRes.Objective - lb) / lb
		}

		points = append(points, point)
	}
	return points, nil
}

var p2aAlgorithms = []string{"CGBA", "MCBA", "ROPT", "OPT"}

// Fig4 regenerates Figure 4: the P2-A objective value per algorithm as the
// device count grows.
func Fig4(cfg P2ASweepConfig) (*Figure, error) {
	points, err := P2ASweep(cfg)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig4",
		Title:  "P2-A objective: CGBA(0) vs MCBA vs ROPT vs branch-and-bound optimum",
		XLabel: "devices I",
		YLabel: "P2-A objective (total latency at Ω^L) [s]",
	}
	for _, alg := range p2aAlgorithms {
		xs := make([]float64, len(points))
		ys := make([]float64, len(points))
		for i, p := range points {
			xs[i] = float64(p.Devices)
			ys[i] = p.Objective[alg]
		}
		fig.AddSeries(alg, xs, ys)
	}
	for _, p := range points {
		ratio := p.Objective["CGBA"] / p.Objective["OPT"]
		status := "proven optimal"
		if !p.OptProven {
			status = fmt.Sprintf("best known under B&B budget; certified gap ≤ %.0f%% via Theorem 2", 100*p.OptGap)
		}
		fig.AddNote("I=%d: CGBA/OPT = %.4f (%s)", p.Devices, ratio, status)
	}
	return fig, nil
}

// Fig5 regenerates Figure 5: per-algorithm wall-clock solve time over the
// same sweep.
func Fig5(cfg P2ASweepConfig) (*Figure, error) {
	points, err := P2ASweep(cfg)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     "fig5",
		Title:  "P2-A solve time: CGBA vs MCBA vs ROPT vs branch-and-bound",
		XLabel: "devices I",
		YLabel: "wall time [ms]",
	}
	for _, alg := range p2aAlgorithms {
		xs := make([]float64, len(points))
		ys := make([]float64, len(points))
		for i, p := range points {
			xs[i] = float64(p.Devices)
			ys[i] = float64(p.Elapsed[alg].Microseconds()) / 1e3
		}
		fig.AddSeries(alg, xs, ys)
	}
	last := points[len(points)-1]
	if cgba := last.Elapsed["CGBA"]; cgba > 0 {
		fig.AddNote("at I=%d: OPT/CGBA time ratio = %.0f×", last.Devices,
			float64(last.Elapsed["OPT"])/float64(cgba))
	}
	return fig, nil
}

// Fig6Config parameterizes the CGBA(λ) tradeoff figure.
type Fig6Config struct {
	// Devices is I (paper: 100).
	Devices int
	// Lambdas is the λ sweep (paper: 0, 0.02, ..., 0.12).
	Lambdas []float64
	// Seed controls the scenario and the shared initial profile.
	Seed int64
}

// DefaultFig6Config mirrors the paper's sweep.
func DefaultFig6Config() Fig6Config {
	return Fig6Config{
		Devices: 100,
		Lambdas: []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10, 0.12},
		Seed:    1,
	}
}

// QuickFig6Config is a reduced sweep for tests and benches.
func QuickFig6Config() Fig6Config {
	return Fig6Config{Devices: 20, Lambdas: []float64{0, 0.04, 0.08, 0.12}, Seed: 1}
}

// Fig6 regenerates Figure 6: CGBA(λ)'s objective and iteration count as λ
// grows, from a shared random initial profile.
func Fig6(cfg Fig6Config) (*Figure, error) {
	if cfg.Devices <= 0 || len(cfg.Lambdas) == 0 {
		return nil, fmt.Errorf("experiments: fig6 needs devices and lambdas")
	}
	sc, err := NewScenario(ScenarioOptions{Devices: cfg.Devices}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := sc.DefaultGenerator()
	if err != nil {
		return nil, err
	}
	st := gen.Next()
	p2a, err := sc.Sys.NewP2A(st, sc.Sys.LowestFrequencies())
	if err != nil {
		return nil, err
	}
	g := p2a.Game()
	initSrc := rng.New(cfg.Seed).Derive("fig6-init")
	initial := make(game.Profile, g.Players())
	for i := range initial {
		initial[i] = initSrc.Intn(g.StrategyCount(i))
	}

	xs := make([]float64, len(cfg.Lambdas))
	objective := make([]float64, len(cfg.Lambdas))
	iterations := make([]float64, len(cfg.Lambdas))
	for li, lambda := range cfg.Lambdas {
		// The figure characterizes Algorithm 3's λ tradeoff (its iteration
		// count in particular), so it pins the paper-faithful exact path —
		// shortlist pruning changes the step dynamics it is plotting.
		res, err := game.CGBA(g, game.CGBAConfig{Lambda: lambda, Initial: initial, Shortlist: game.ShortlistFull}, rng.New(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("experiments: CGBA(λ=%v): %w", lambda, err)
		}
		xs[li] = lambda
		objective[li] = res.Objective
		iterations[li] = float64(res.Iterations)
	}

	fig := &Figure{
		ID:     "fig6",
		Title:  "CGBA(λ): objective and convergence iterations vs λ",
		XLabel: "λ",
		YLabel: "objective [s] / iterations",
	}
	fig.AddSeries("objective", xs, objective)
	fig.AddSeries("iterations", xs, iterations)
	fig.AddNote("Theorem 2 bound: approximation factor 2.62/(1−8λ), iterations O((1/λ)·log(Φ₀/Φ_min))")
	return fig, nil
}
