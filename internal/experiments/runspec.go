package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"eotora/internal/core"
	"eotora/internal/sim"
	"eotora/internal/topology"
	"eotora/internal/trace"
)

// RunSpec is a JSON-serializable description of one complete simulation
// run: scenario, state processes, controller, and horizon. It makes
// experiments reproducible from a single checked-in file:
//
//	eotorasim -config run.json
type RunSpec struct {
	// Devices is I (default 100).
	Devices int `json:"devices,omitempty"`
	// Seed drives all randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// BudgetFraction positions C̄ in the feasible cost range (default 0.5).
	BudgetFraction float64 `json:"budget_fraction,omitempty"`

	// Topology overrides (zero values keep the paper defaults).
	Stations          int    `json:"stations,omitempty"`
	Rooms             int    `json:"rooms,omitempty"`
	ServersPerRoom    int    `json:"servers_per_room,omitempty"`
	WirelessFronthaul bool   `json:"wireless_fronthaul,omitempty"`
	Layout            string `json:"layout,omitempty"` // "random" (default) or "hex"

	// State-process overrides.
	IID                  bool    `json:"iid,omitempty"`
	WeekendDiscount      float64 `json:"weekend_discount,omitempty"`
	FronthaulJitterSigma float64 `json:"fronthaul_jitter_sigma,omitempty"`

	// Controller.
	V      float64 `json:"v,omitempty"`      // default 100
	Z      int     `json:"z,omitempty"`      // default 5
	Lambda float64 `json:"lambda,omitempty"` // default 0
	Solver string  `json:"solver,omitempty"` // cgba (default), mcba, ropt

	// Horizon.
	Slots  int `json:"slots,omitempty"`  // default 240
	Warmup int `json:"warmup,omitempty"` // default 48
}

// LoadRunSpec parses a RunSpec from JSON, rejecting unknown fields so
// typos in config files fail loudly.
func LoadRunSpec(r io.Reader) (RunSpec, error) {
	var spec RunSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return RunSpec{}, fmt.Errorf("experiments: decoding run spec: %w", err)
	}
	return spec, nil
}

// Save writes the spec as indented JSON.
func (r RunSpec) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func (r *RunSpec) applyDefaults() {
	if r.Devices <= 0 {
		r.Devices = 100
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.BudgetFraction <= 0 {
		r.BudgetFraction = 0.5
	}
	if r.V <= 0 {
		r.V = 100
	}
	if r.Z <= 0 {
		r.Z = 5
	}
	if r.Solver == "" {
		r.Solver = "cgba"
	}
	if r.Slots <= 0 {
		r.Slots = 240
	}
	// Warmup 0 means "default" (a fifth of the horizon); configs that
	// truly want no warmup can set slots low enough that slots/5 == 0.
	if r.Warmup <= 0 || r.Warmup >= r.Slots {
		r.Warmup = r.Slots / 5
	}
}

// Build materializes the run: a scenario, a state generator, a controller,
// and the simulation config.
func (r RunSpec) Build() (*Scenario, *trace.Generator, *core.Controller, sim.Config, error) {
	r.applyDefaults()

	topoSpec := topology.DefaultSpec(r.Devices)
	if r.Stations > 0 {
		topoSpec.Stations = r.Stations
		if topoSpec.UmbrellaStations > r.Stations {
			topoSpec.UmbrellaStations = 1
		}
	}
	if r.Rooms > 0 {
		topoSpec.Rooms = r.Rooms
	}
	if r.ServersPerRoom > 0 {
		topoSpec.ServersPerRoom = r.ServersPerRoom
	}
	topoSpec.WirelessFronthaul = r.WirelessFronthaul
	switch r.Layout {
	case "", "random":
		topoSpec.Layout = topology.LayoutRandom
	case "hex":
		topoSpec.Layout = topology.LayoutHex
	default:
		return nil, nil, nil, sim.Config{}, fmt.Errorf("experiments: unknown layout %q", r.Layout)
	}

	sc, err := NewScenario(ScenarioOptions{
		Devices:        r.Devices,
		Spec:           &topoSpec,
		BudgetFraction: r.BudgetFraction,
	}, r.Seed)
	if err != nil {
		return nil, nil, nil, sim.Config{}, err
	}

	genCfg := trace.DefaultGeneratorConfig()
	genCfg.IID = r.IID
	genCfg.FronthaulJitterSigma = r.FronthaulJitterSigma
	if r.WeekendDiscount > 0 {
		genCfg.Price.WeekendDiscount = r.WeekendDiscount
		genCfg.Demand.WeekendDiscount = r.WeekendDiscount
	}
	gen, err := sc.Generator(genCfg)
	if err != nil {
		return nil, nil, nil, sim.Config{}, err
	}

	var ctrl *core.Controller
	switch r.Solver {
	case "cgba":
		ctrl, err = core.NewBDMAController(sc.Sys, r.V, r.Z, r.Lambda, r.Seed)
	case "mcba":
		ctrl, err = core.NewMCBAController(sc.Sys, r.V, r.Z, r.Seed)
	case "ropt":
		ctrl, err = core.NewROPTController(sc.Sys, r.V, r.Z, r.Seed)
	default:
		return nil, nil, nil, sim.Config{}, fmt.Errorf("experiments: unknown solver %q", r.Solver)
	}
	if err != nil {
		return nil, nil, nil, sim.Config{}, err
	}

	return sc, gen, ctrl, sim.Config{Slots: r.Slots, Warmup: r.Warmup}, nil
}
