package experiments

import (
	"fmt"

	"eotora/internal/core"
	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// Scenario bundles a generated system and everything needed to replay the
// paper's simulation settings for one experiment.
type Scenario struct {
	Sys  *core.System
	Net  *topology.Network
	Seed int64
}

// ScenarioOptions configures NewScenario. The zero value selects the
// paper's Section VI-A configuration.
type ScenarioOptions struct {
	// Devices is I; 0 selects the paper's 100.
	Devices int
	// Spec overrides the topology spec entirely when non-nil.
	Spec *topology.Spec
	// BudgetFraction positions C̄ between the all-F^L cost (0) and the
	// all-F^U cost (1) at the reference price; 0 selects 0.5.
	BudgetFraction float64
	// ReferencePrice calibrates the budget; 0 selects $50/MWh, the
	// NYISO-like mean of the default price process.
	ReferencePrice units.Price
}

// NewScenario generates the paper's simulation scenario deterministically
// from a seed.
func NewScenario(opts ScenarioOptions, seed int64) (*Scenario, error) {
	devices := opts.Devices
	if devices <= 0 {
		devices = 100
	}
	spec := topology.DefaultSpec(devices)
	if opts.Spec != nil {
		spec = *opts.Spec
		spec.Devices = devices
	}
	src := rng.New(seed)
	net, err := topology.Generate(spec, src.Derive("net"))
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	models := core.DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
	sys, err := core.NewSystem(net, models, 3600, 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	frac := opts.BudgetFraction
	if frac <= 0 {
		frac = 0.5
	}
	ref := opts.ReferencePrice
	if ref <= 0 {
		ref = 50
	}
	low := sys.EnergyCost(sys.LowestFrequencies(), ref)
	high := sys.EnergyCost(sys.HighestFrequencies(), ref)
	sys.Budget = low + units.Money(frac*float64(high-low))
	return &Scenario{Sys: sys, Net: net, Seed: seed}, nil
}

// Generator returns a fresh state generator for the scenario. Successive
// calls return generators that replay the identical state sequence.
func (s *Scenario) Generator(cfg trace.GeneratorConfig) (*trace.Generator, error) {
	return trace.NewGenerator(s.Net, cfg, s.Seed)
}

// DefaultGenerator returns a generator with the paper's default state
// processes.
func (s *Scenario) DefaultGenerator() (*trace.Generator, error) {
	return s.Generator(trace.DefaultGeneratorConfig())
}

// BudgetRange returns the feasible budget interval [all-F^L cost,
// all-F^U cost] at the reference price, the sweep range of Figure 9.
func (s *Scenario) BudgetRange(ref units.Price) (low, high units.Money) {
	return s.Sys.EnergyCost(s.Sys.LowestFrequencies(), ref),
		s.Sys.EnergyCost(s.Sys.HighestFrequencies(), ref)
}
