// Package faults provides deterministic, seeded fault injection for the
// simulation harness: trace corruption (NaN/negative demands, zeroed
// channel rows), topology degradation (server outage windows, capacity
// loss), and solver latency (artificial stalls that force slot-deadline
// misses). An Injector wraps a trace.Source; every fault draw derives from
// (Seed, slot), so a fault schedule replays bit-identically regardless of
// what the consumer does between slots.
//
// Injected trace garbage is meant to be caught downstream — by
// core.System.CheckState (reject) or a trace.Sanitizer layered on top of
// the injector (repair); see sim.Job.Faults for the standard wiring.
package faults

import (
	"fmt"
	"math"
	"time"

	"eotora/internal/rng"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// Config parameterizes an Injector. All probabilities are per slot; the
// zero value injects nothing.
type Config struct {
	// Seed drives every fault draw; two runs with the same seed and
	// source see the same fault schedule.
	Seed int64

	// NaNProb corrupts one uniformly chosen device's task size or data
	// length with NaN.
	NaNProb float64
	// NegProb corrupts one uniformly chosen device's task size or data
	// length with a negative value.
	NegProb float64
	// ZeroChannelProb zeroes one uniformly chosen device's entire channel
	// row (total coverage loss for the slot).
	ZeroChannelProb float64

	// OutageProb starts a server outage: one uniformly chosen server is
	// marked down (trace.State.ServerDown) for OutageSlots consecutive
	// slots.
	OutageProb float64
	// OutageSlots is the outage window length; 0 selects 1.
	OutageSlots int
	// CapLossProb starts a capacity-loss window: one uniformly chosen
	// server runs at CapLossScale capacity for OutageSlots slots.
	CapLossProb float64
	// CapLossScale is the degraded capacity in (0, 1); 0 selects 0.5.
	CapLossScale float64

	// StallProb injects an artificial solver stall of Stall into the
	// slot's timed deadline budget (via Controller.SetStall), forcing a
	// deadline miss without sleeping. No effect on controllers without a
	// timed budget.
	StallProb float64
	// Stall is the injected stall length; 0 selects one hour (certain to
	// exhaust any realistic slot budget).
	Stall time.Duration

	// Sanitize, when set, tells sim.Sweep to layer a trace.Sanitizer on
	// top of the injector so corrupted states are repaired instead of
	// rejected (the soak-test wiring).
	Sanitize bool
}

// DefaultConfig returns moderate rates exercising every fault class — the
// soak-test profile: roughly one fault every few slots, outages lasting a
// handful of slots, repairs on.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		NaNProb:         0.05,
		NegProb:         0.05,
		ZeroChannelProb: 0.03,
		OutageProb:      0.03,
		OutageSlots:     4,
		CapLossProb:     0.05,
		CapLossScale:    0.5,
		StallProb:       0.05,
		Sanitize:        true,
	}
}

// Validate checks the configuration's ranges.
func (c *Config) Validate() error {
	for name, p := range map[string]float64{
		"NaNProb": c.NaNProb, "NegProb": c.NegProb, "ZeroChannelProb": c.ZeroChannelProb,
		"OutageProb": c.OutageProb, "CapLossProb": c.CapLossProb, "StallProb": c.StallProb,
	} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return fmt.Errorf("faults: %s = %v outside [0, 1]", name, p)
		}
	}
	if c.OutageSlots < 0 {
		return fmt.Errorf("faults: negative OutageSlots %d", c.OutageSlots)
	}
	if c.CapLossScale < 0 || c.CapLossScale >= 1 {
		if c.CapLossScale != 0 {
			return fmt.Errorf("faults: CapLossScale %v outside (0, 1)", c.CapLossScale)
		}
	}
	return nil
}

// Staller receives per-slot stall injections; *core.Controller implements
// it. The interface keeps this package free of a core dependency.
type Staller interface {
	// SetStall sets the artificial solver delay charged against every
	// subsequent slot's timed budget; zero clears it.
	SetStall(d time.Duration)
}

// Injector wraps a trace.Source and applies the configured faults to each
// state in place. It implements trace.Source.
type Injector struct {
	cfg     Config
	src     trace.Source
	servers int
	ctrl    Staller

	// Window state: remaining down/degraded slots per server, and the
	// buffers exposed through the state (reused every slot).
	outageLeft []int
	capLeft    []int
	downBuf    []bool
	capBuf     []float64

	slot      int
	injected  int
	stallHits int
}

// NewInjector wraps src for a system with the given server count. The
// configuration must validate.
func NewInjector(cfg Config, servers int, src trace.Source) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if servers <= 0 {
		return nil, fmt.Errorf("faults: injector needs servers > 0, got %d", servers)
	}
	return &Injector{
		cfg:        cfg,
		src:        src,
		servers:    servers,
		outageLeft: make([]int, servers),
		capLeft:    make([]int, servers),
		downBuf:    make([]bool, servers),
		capBuf:     make([]float64, servers),
	}, nil
}

// Attach registers a stall receiver (typically the controller consuming
// this source); each slot's stall draw is pushed into it before the state
// is returned. Nil detaches.
func (in *Injector) Attach(ctrl Staller) { in.ctrl = ctrl }

// Injections returns the total number of faults injected so far (trace
// corruptions, outage/capacity window starts, and stalls).
func (in *Injector) Injections() int { return in.injected }

// Period implements trace.Source.
func (in *Injector) Period() int { return in.src.Period() }

// Next implements trace.Source: it pulls the next state and corrupts it
// according to the fault schedule derived from (Seed, slot).
func (in *Injector) Next() *trace.State {
	st := in.src.Next()
	in.slot++
	r := rng.New(in.cfg.Seed).Derive(fmt.Sprintf("faults-slot-%d", in.slot))

	in.corruptTrace(st, r)
	in.degradeTopology(st, r)
	in.injectStall(r)
	return st
}

// corruptTrace applies the per-slot trace faults. Draw order is fixed
// (NaN, negative, zero-channel) so schedules are reproducible.
func (in *Injector) corruptTrace(st *trace.State, r *rng.Source) {
	devices := len(st.TaskSizes)
	if devices == 0 {
		return
	}
	if r.Bernoulli(in.cfg.NaNProb) {
		i := r.Intn(devices)
		if r.Bernoulli(0.5) {
			st.TaskSizes[i] = units.Cycles(math.NaN())
		} else {
			st.DataLengths[i] = units.DataSize(math.NaN())
		}
		in.injected++
	}
	if r.Bernoulli(in.cfg.NegProb) {
		i := r.Intn(devices)
		if r.Bernoulli(0.5) {
			st.TaskSizes[i] = -st.TaskSizes[i] - 1
		} else {
			st.DataLengths[i] = -st.DataLengths[i] - 1
		}
		in.injected++
	}
	if r.Bernoulli(in.cfg.ZeroChannelProb) && len(st.Channels) == devices {
		i := r.Intn(devices)
		for k := range st.Channels[i] {
			st.Channels[i][k] = 0
		}
		in.injected++
	}
}

// degradeTopology advances the outage and capacity-loss windows and
// publishes them through the state's ServerDown/CapScale fields.
func (in *Injector) degradeTopology(st *trace.State, r *rng.Source) {
	window := in.cfg.OutageSlots
	if window <= 0 {
		window = 1
	}
	scale := in.cfg.CapLossScale
	if scale == 0 {
		scale = 0.5
	}
	if r.Bernoulli(in.cfg.OutageProb) {
		in.outageLeft[r.Intn(in.servers)] = window
		in.injected++
	}
	if r.Bernoulli(in.cfg.CapLossProb) {
		in.capLeft[r.Intn(in.servers)] = window
		in.injected++
	}
	anyDown, anyScaled := false, false
	for n := 0; n < in.servers; n++ {
		in.downBuf[n] = in.outageLeft[n] > 0
		if in.downBuf[n] {
			in.outageLeft[n]--
			anyDown = true
		}
		in.capBuf[n] = 1
		if in.capLeft[n] > 0 {
			in.capLeft[n]--
			in.capBuf[n] = scale
			anyScaled = true
		}
	}
	st.ServerDown, st.CapScale = nil, nil
	if anyDown {
		st.ServerDown = in.downBuf
	}
	if anyScaled {
		st.CapScale = in.capBuf
	}
}

// injectStall pushes this slot's stall (possibly zero) into the attached
// controller.
func (in *Injector) injectStall(r *rng.Source) {
	if in.ctrl == nil {
		return
	}
	stall := time.Duration(0)
	if r.Bernoulli(in.cfg.StallProb) {
		stall = in.cfg.Stall
		if stall == 0 {
			stall = time.Hour
		}
		in.injected++
		in.stallHits++
	}
	in.ctrl.SetStall(stall)
}
