package faults

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

func testSource(t *testing.T, devices int, seed int64) (trace.Source, int) {
	t.Helper()
	net, err := topology.Generate(topology.DefaultSpec(devices), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return gen, len(net.Servers)
}

// cloneState deep-copies the fields an injector mutates, including the
// reused ServerDown/CapScale buffers, so states can be compared across
// slots.
func cloneState(st *trace.State) *trace.State {
	cp := *st
	cp.TaskSizes = append([]units.Cycles(nil), st.TaskSizes...)
	cp.DataLengths = append([]units.DataSize(nil), st.DataLengths...)
	cp.Channels = make([][]units.SpectralEfficiency, len(st.Channels))
	for i := range st.Channels {
		cp.Channels[i] = append([]units.SpectralEfficiency(nil), st.Channels[i]...)
	}
	cp.FronthaulSE = append([]units.SpectralEfficiency(nil), st.FronthaulSE...)
	if st.ServerDown != nil {
		cp.ServerDown = append([]bool(nil), st.ServerDown...)
	}
	if st.CapScale != nil {
		cp.CapScale = append([]float64(nil), st.CapScale...)
	}
	return &cp
}

// recordStall captures the per-slot stall pushes an injector makes.
type recordStall struct{ stalls []time.Duration }

func (r *recordStall) SetStall(d time.Duration) { r.stalls = append(r.stalls, d) }

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]Config{
		"prob>1":   {NaNProb: 1.5},
		"prob<0":   {OutageProb: -0.1},
		"probNaN":  {StallProb: math.NaN()},
		"negslots": {OutageSlots: -1},
		"scale>=1": {CapLossScale: 1},
		"scaleneg": {CapLossScale: -0.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, bad)
		}
	}
}

func TestNewInjectorValidation(t *testing.T) {
	src, _ := testSource(t, 10, 1)
	if _, err := NewInjector(Config{NaNProb: 2}, 4, src); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewInjector(Config{}, 0, src); err == nil {
		t.Error("zero servers accepted")
	}
}

// TestInjectorDeterministic: two injectors with the same seed over the
// same trace must corrupt identical slots identically — the replayable
// fault-schedule contract.
func TestInjectorDeterministic(t *testing.T) {
	const slots = 64
	// States are compared by printed form: injected NaNs make
	// reflect.DeepEqual vacuously false (NaN ≠ NaN) but print stably.
	record := func() ([]string, int) {
		src, servers := testSource(t, 16, 3)
		inj, err := NewInjector(DefaultConfig(99), servers, src)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, 0, slots)
		for i := 0; i < slots; i++ {
			out = append(out, fmt.Sprintf("%+v", cloneState(inj.Next())))
		}
		return out, inj.Injections()
	}
	a, na := record()
	b, nb := record()
	if na != nb {
		t.Fatalf("injection counts diverged: %d vs %d", na, nb)
	}
	if na == 0 {
		t.Fatal("default profile injected nothing over 64 slots")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("corrupted traces diverged between same-seed runs")
	}
}

// TestInjectorCorruptsTrace: with certain per-slot probabilities, every
// fault class fires and is visible in the state.
func TestInjectorCorruptsTrace(t *testing.T) {
	src, servers := testSource(t, 16, 3)
	cfg := Config{
		Seed: 5, NaNProb: 1, NegProb: 1, ZeroChannelProb: 1,
		OutageProb: 1, OutageSlots: 2, CapLossProb: 1, CapLossScale: 0.25,
	}
	inj, err := NewInjector(cfg, servers, src)
	if err != nil {
		t.Fatal(err)
	}
	st := inj.Next()
	badDemand := false
	for i := range st.TaskSizes {
		if v := st.TaskSizes[i].Count(); math.IsNaN(v) || v < 0 {
			badDemand = true
		}
		if v := st.DataLengths[i].Bits(); math.IsNaN(v) || v < 0 {
			badDemand = true
		}
	}
	if !badDemand {
		t.Error("no demand corruption with probability-1 faults")
	}
	if st.ServerDown == nil {
		t.Error("no outage with probability-1 faults")
	}
	if st.CapScale == nil {
		t.Error("no capacity loss with probability-1 faults")
	}
	seen := false
	for _, c := range st.CapScale {
		if c == 0.25 {
			seen = true
		}
	}
	if !seen {
		t.Error("CapLossScale not applied")
	}
}

// TestOutageWindows: a probability-1 outage keeps at least one server
// down every slot, and windows expire (a server down this slot with a
// 1-slot window and no new draw on it comes back).
func TestOutageWindows(t *testing.T) {
	src, servers := testSource(t, 8, 7)
	cfg := Config{Seed: 21, OutageProb: 1, OutageSlots: 3}
	inj, err := NewInjector(cfg, servers, src)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 12; slot++ {
		st := inj.Next()
		down := 0
		for n := 0; n < servers; n++ {
			if st.Down(n) {
				down++
			}
		}
		if down == 0 {
			t.Fatalf("slot %d: no server down under probability-1 outages", slot)
		}
		if down == servers {
			t.Fatalf("slot %d: every server down — windows never expire", slot)
		}
	}
}

// TestStallInjection: stall pushes reach the attached receiver every
// slot — zero on clean slots, the configured stall on hit slots.
func TestStallInjection(t *testing.T) {
	src, servers := testSource(t, 8, 7)
	cfg := Config{Seed: 13, StallProb: 0.5, Stall: 5 * time.Millisecond}
	inj, err := NewInjector(cfg, servers, src)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordStall{}
	inj.Attach(rec)
	const slots = 40
	for i := 0; i < slots; i++ {
		inj.Next()
	}
	if len(rec.stalls) != slots {
		t.Fatalf("got %d stall pushes, want %d", len(rec.stalls), slots)
	}
	hits, clears := 0, 0
	for _, d := range rec.stalls {
		switch d {
		case 0:
			clears++
		case cfg.Stall:
			hits++
		default:
			t.Fatalf("unexpected stall %v", d)
		}
	}
	if hits == 0 || clears == 0 {
		t.Errorf("stall draw degenerate: %d hits, %d clears over %d slots", hits, clears, slots)
	}
}

// TestDefaultStallIsHuge: an unset Stall must select a value certain to
// exhaust any realistic slot budget.
func TestDefaultStallIsHuge(t *testing.T) {
	src, servers := testSource(t, 8, 7)
	inj, err := NewInjector(Config{Seed: 3, StallProb: 1}, servers, src)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordStall{}
	inj.Attach(rec)
	inj.Next()
	if len(rec.stalls) != 1 || rec.stalls[0] < time.Hour {
		t.Errorf("default stall %v, want ≥ 1h", rec.stalls)
	}
}
