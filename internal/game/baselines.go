package game

import (
	"fmt"
	"math"
	"sort"

	"eotora/internal/rng"
	"eotora/internal/solver"
)

// MCBAConfig parameterizes the Markov-chain Monte Carlo baseline of [36].
type MCBAConfig struct {
	// Iterations is the number of sampled moves; 0 selects a default
	// proportional to the player count.
	Iterations int
	// Temperature is the initial Metropolis temperature relative to the
	// starting objective; 0 selects a default of 0.1.
	Temperature float64
	// Cooling is the per-iteration geometric temperature decay in (0, 1];
	// 0 selects a default of 0.999.
	Cooling float64
}

// MCBA is the Markov chain Monte Carlo-based algorithm baseline: a random
// walk over neighboring profiles (one player changes strategy per step)
// accepting moves with the Metropolis probability exp(−Δ/τ) on the social
// objective under a geometric cooling schedule. It converges to the
// optimal decision in probability but needs many iterations, matching the
// Figure 5 observation that MCBA is slower than CGBA yet faster than exact
// branch-and-bound.
func MCBA(g *Game, cfg MCBAConfig, src *rng.Source) (Result, error) {
	return NewEngine(g).MCBA(cfg, src)
}

// RandomProfile implements the ROPT baseline's selection step: every
// player picks a strategy uniformly at random (the bandwidth and compute
// allocations on top are the closed-form optimal ones, applied by the
// caller).
func RandomProfile(g *Game, src *rng.Source) Result {
	profile := make(Profile, g.Players())
	for i := range profile {
		profile[i] = src.Intn(g.StrategyCount(i))
	}
	return Result{Profile: profile, Objective: g.SocialCost(profile), Iterations: 0}
}

// GreedyProfile builds a profile in one deterministic pass: players commit
// in index order, each picking the strategy minimizing its marginal cost
// Σ_u wm·(load+w) against the loads of the already-placed players. It
// draws no randomness and visits each (player, strategy, use) triple once,
// making it the constant-time last rung of the controller's degradation
// ladder — always feasible, never iterative.
func GreedyProfile(g *Game) Result {
	profile := make(Profile, g.Players())
	loads := make([]float64, g.Resources())
	for i := range profile {
		best, bestCost := 0, math.Inf(1)
		for s := 0; s < g.StrategyCount(i); s++ {
			c := 0.0
			for _, u := range g.strategyUses(i, s) {
				c += u.wm * (loads[u.res] + u.w)
			}
			if c < bestCost {
				best, bestCost = s, c
			}
		}
		profile[i] = best
		for _, u := range g.strategyUses(i, best) {
			loads[u.res] += u.w
		}
	}
	return Result{Profile: profile, Objective: g.SocialCost(profile), Iterations: 0}
}

// bnbView adapts a Game to solver.Problem so BranchAndBound can compute
// the exact optimum (the Gurobi-replacement baseline of Figures 4 and 5).
// Players are searched in descending order of their cheapest self-cost
// (the classic "hardest variable first" ordering), which tightens pruning
// substantially relative to input order; order maps search items to
// player indices.
type bnbView struct {
	g     *Game
	order []int
	loads []float64
	cost  float64
}

var _ solver.Problem = (*bnbView)(nil)

func newBnBView(g *Game) *bnbView {
	order := make([]int, g.Players())
	keys := make([]float64, g.Players())
	for i := range order {
		order[i] = i
		best := math.Inf(1)
		for s := 0; s < g.StrategyCount(i); s++ {
			uses := g.strategyUses(i, s)
			m := 0.0
			for _, u := range uses {
				m += u.wm * u.w
			}
			if m < best {
				best = m
			}
		}
		keys[i] = best
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] > keys[order[b]] })
	return &bnbView{g: g, order: order, loads: make([]float64, g.Resources())}
}

func (v *bnbView) Items() int               { return v.g.Players() }
func (v *bnbView) OptionCount(item int) int { return v.g.StrategyCount(v.order[item]) }
func (v *bnbView) Cost() float64            { return v.cost }

func (v *bnbView) Assign(item, option int) {
	for _, u := range v.g.strategyUses(v.order[item], option) {
		l := v.loads[u.res]
		v.cost += v.g.weights[u.res] * ((l+u.w)*(l+u.w) - l*l)
		v.loads[u.res] = l + u.w
	}
}

func (v *bnbView) Unassign(item, option int) {
	for _, u := range v.g.strategyUses(v.order[item], option) {
		l := v.loads[u.res]
		v.cost -= v.g.weights[u.res] * (l*l - (l-u.w)*(l-u.w))
		v.loads[u.res] = l - u.w
	}
}

// LowerBound: every unassigned player pays at least its cheapest marginal
// cost against the current loads, which only grow as the search deepens.
func (v *bnbView) LowerBound(assigned int) float64 {
	total := 0.0
	for item := assigned; item < v.g.Players(); item++ {
		i := v.order[item]
		best := math.Inf(1)
		for s := 0; s < v.g.StrategyCount(i); s++ {
			uses := v.g.strategyUses(i, s)
			m := 0.0
			for _, u := range uses {
				l := v.loads[u.res]
				m += v.g.weights[u.res] * (u.w*u.w + 2*u.w*l)
			}
			if m < best {
				best = m
			}
		}
		total += best
	}
	return total
}

// toSearchOrder converts a player-indexed assignment into search order.
func (v *bnbView) toSearchOrder(profile Profile) solver.Assignment {
	out := make(solver.Assignment, len(profile))
	for item, player := range v.order {
		out[item] = profile[player]
	}
	return out
}

// fromSearchOrder converts a search-ordered assignment back to players.
func (v *bnbView) fromSearchOrder(a solver.Assignment) Profile {
	out := make(Profile, len(a))
	for item, player := range v.order {
		out[player] = a[item]
	}
	return out
}

// Optimal computes the exact optimum of the game's social cost by
// branch-and-bound, warm-started with a CGBA incumbent. cfg bounds the
// search; with zero limits the result is provably optimal.
func Optimal(g *Game, cfg solver.BnBConfig, src *rng.Source) (Result, solver.BnBResult, error) {
	if cfg.Incumbent == nil {
		warm, err := CGBA(g, CGBAConfig{}, src)
		if err != nil {
			return Result{}, solver.BnBResult{}, fmt.Errorf("game: warm start failed: %w", err)
		}
		cfg.Incumbent = solver.Assignment(warm.Profile)
		cfg.IncumbentCost = warm.Objective
	}
	view := newBnBView(g)
	// Incumbents arrive player-indexed; the search runs in bnbView order.
	cfg.Incumbent = view.toSearchOrder(Profile(cfg.Incumbent))
	res, err := solver.BranchAndBound(view, cfg)
	if err != nil {
		return Result{}, res, err
	}
	profile := view.fromSearchOrder(res.Best)
	res.Best = solver.Assignment(profile)
	return Result{
		Profile:    profile,
		Objective:  g.SocialCost(profile),
		Iterations: res.Nodes,
	}, res, nil
}
