package game

import (
	"fmt"
	"math"
	"sort"

	"eotora/internal/rng"
	"eotora/internal/solver"
)

// MCBAConfig parameterizes the Markov-chain Monte Carlo baseline of [36].
type MCBAConfig struct {
	// Iterations is the number of sampled moves; 0 selects a default
	// proportional to the player count.
	Iterations int
	// Temperature is the initial Metropolis temperature relative to the
	// starting objective; 0 selects a default of 0.1.
	Temperature float64
	// Cooling is the per-iteration geometric temperature decay in (0, 1];
	// 0 selects a default of 0.999.
	Cooling float64
}

// MCBA is the Markov chain Monte Carlo-based algorithm baseline: a random
// walk over neighboring profiles (one player changes strategy per step)
// accepting moves with the Metropolis probability exp(−Δ/τ) on the social
// objective under a geometric cooling schedule. It converges to the
// optimal decision in probability but needs many iterations, matching the
// Figure 5 observation that MCBA is slower than CGBA yet faster than exact
// branch-and-bound.
func MCBA(g *Game, cfg MCBAConfig, src *rng.Source) (Result, error) {
	n := g.Players()
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 400 * n
	}
	cooling := cfg.Cooling
	if cooling <= 0 || cooling > 1 {
		cooling = 0.999
	}

	profile := make(Profile, n)
	for i := range profile {
		profile[i] = src.Intn(g.StrategyCount(i))
	}
	loads := g.Loads(profile)
	cur := g.SocialCost(profile)

	temp := cfg.Temperature
	if temp <= 0 {
		temp = 0.1
	}
	temp *= cur + 1 // scale to the objective

	best := profile.Clone()
	bestObj := cur
	for it := 0; it < iters; it++ {
		i := src.Intn(n)
		count := g.StrategyCount(i)
		if count == 1 {
			continue
		}
		s := src.Intn(count)
		if s == profile[i] {
			continue
		}
		old := profile[i]
		// Δ objective of the unilateral move: because the social cost is
		// Σ_r m_r p_r², the delta equals the mover's cost change times 2
		// minus the self-term corrections; recompute incrementally via
		// player costs against updated loads.
		before := g.PlayerCost(profile, loads, i)
		g.applyMove(profile, loads, i, s)
		after := g.PlayerCost(profile, loads, i)
		// ΔΦ = after − before, and ΔSocial = 2·ΔΦ − Δ(self terms) where
		// the self terms Σ m p² differ between the two strategies.
		delta := 2 * (after - before)
		for _, u := range g.strategies[i][s] {
			delta -= g.weights[u.Resource] * u.Weight * u.Weight
		}
		for _, u := range g.strategies[i][old] {
			delta += g.weights[u.Resource] * u.Weight * u.Weight
		}
		accept := delta <= 0 || src.Float64() < math.Exp(-delta/temp)
		if accept {
			cur += delta
			if cur < bestObj {
				bestObj = cur
				best = profile.Clone()
			}
		} else {
			g.applyMove(profile, loads, i, old)
		}
		temp *= cooling
	}
	return Result{Profile: best, Objective: g.SocialCost(best), Iterations: iters}, nil
}

// RandomProfile implements the ROPT baseline's selection step: every
// player picks a strategy uniformly at random (the bandwidth and compute
// allocations on top are the closed-form optimal ones, applied by the
// caller).
func RandomProfile(g *Game, src *rng.Source) Result {
	profile := make(Profile, g.Players())
	for i := range profile {
		profile[i] = src.Intn(g.StrategyCount(i))
	}
	return Result{Profile: profile, Objective: g.SocialCost(profile), Iterations: 0}
}

// bnbView adapts a Game to solver.Problem so BranchAndBound can compute
// the exact optimum (the Gurobi-replacement baseline of Figures 4 and 5).
// Players are searched in descending order of their cheapest self-cost
// (the classic "hardest variable first" ordering), which tightens pruning
// substantially relative to input order; order maps search items to
// player indices.
type bnbView struct {
	g     *Game
	order []int
	loads []float64
	cost  float64
}

var _ solver.Problem = (*bnbView)(nil)

func newBnBView(g *Game) *bnbView {
	order := make([]int, g.Players())
	keys := make([]float64, g.Players())
	for i := range order {
		order[i] = i
		best := math.Inf(1)
		for _, uses := range g.strategies[i] {
			m := 0.0
			for _, u := range uses {
				m += g.weights[u.Resource] * u.Weight * u.Weight
			}
			if m < best {
				best = m
			}
		}
		keys[i] = best
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] > keys[order[b]] })
	return &bnbView{g: g, order: order, loads: make([]float64, g.Resources())}
}

func (v *bnbView) Items() int               { return v.g.Players() }
func (v *bnbView) OptionCount(item int) int { return v.g.StrategyCount(v.order[item]) }
func (v *bnbView) Cost() float64            { return v.cost }

func (v *bnbView) Assign(item, option int) {
	for _, u := range v.g.strategies[v.order[item]][option] {
		l := v.loads[u.Resource]
		v.cost += v.g.weights[u.Resource] * ((l+u.Weight)*(l+u.Weight) - l*l)
		v.loads[u.Resource] = l + u.Weight
	}
}

func (v *bnbView) Unassign(item, option int) {
	for _, u := range v.g.strategies[v.order[item]][option] {
		l := v.loads[u.Resource]
		v.cost -= v.g.weights[u.Resource] * (l*l - (l-u.Weight)*(l-u.Weight))
		v.loads[u.Resource] = l - u.Weight
	}
}

// LowerBound: every unassigned player pays at least its cheapest marginal
// cost against the current loads, which only grow as the search deepens.
func (v *bnbView) LowerBound(assigned int) float64 {
	total := 0.0
	for item := assigned; item < v.g.Players(); item++ {
		i := v.order[item]
		best := math.Inf(1)
		for _, uses := range v.g.strategies[i] {
			m := 0.0
			for _, u := range uses {
				l := v.loads[u.Resource]
				m += v.g.weights[u.Resource] * (u.Weight*u.Weight + 2*u.Weight*l)
			}
			if m < best {
				best = m
			}
		}
		total += best
	}
	return total
}

// toSearchOrder converts a player-indexed assignment into search order.
func (v *bnbView) toSearchOrder(profile Profile) solver.Assignment {
	out := make(solver.Assignment, len(profile))
	for item, player := range v.order {
		out[item] = profile[player]
	}
	return out
}

// fromSearchOrder converts a search-ordered assignment back to players.
func (v *bnbView) fromSearchOrder(a solver.Assignment) Profile {
	out := make(Profile, len(a))
	for item, player := range v.order {
		out[player] = a[item]
	}
	return out
}

// Optimal computes the exact optimum of the game's social cost by
// branch-and-bound, warm-started with a CGBA incumbent. cfg bounds the
// search; with zero limits the result is provably optimal.
func Optimal(g *Game, cfg solver.BnBConfig, src *rng.Source) (Result, solver.BnBResult, error) {
	if cfg.Incumbent == nil {
		warm, err := CGBA(g, CGBAConfig{}, src)
		if err != nil {
			return Result{}, solver.BnBResult{}, fmt.Errorf("game: warm start failed: %w", err)
		}
		cfg.Incumbent = solver.Assignment(warm.Profile)
		cfg.IncumbentCost = warm.Objective
	}
	view := newBnBView(g)
	// Incumbents arrive player-indexed; the search runs in bnbView order.
	cfg.Incumbent = view.toSearchOrder(Profile(cfg.Incumbent))
	res, err := solver.BranchAndBound(view, cfg)
	if err != nil {
		return Result{}, res, err
	}
	profile := view.fromSearchOrder(res.Best)
	res.Best = solver.Assignment(profile)
	return Result{
		Profile:    profile,
		Objective:  g.SocialCost(profile),
		Iterations: res.Nodes,
	}, res, nil
}
