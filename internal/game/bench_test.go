package game

import (
	"fmt"
	"testing"

	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/solver"
)

func benchGame(b *testing.B, players int) *Game {
	b.Helper()
	return randomGame(b, rng.New(1), players, 24, players/4+6)
}

func BenchmarkCGBA(b *testing.B) {
	for _, players := range []int{25, 50, 100} {
		b.Run(fmt.Sprintf("players=%d", players), func(b *testing.B) {
			g := benchGame(b, players)
			src := rng.New(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := CGBA(g, CGBAConfig{}, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCGBAPar is BenchmarkCGBA on an Engine with a GOMAXPROCS-sized
// worker pool sharding the per-iteration best-response refresh — the
// benchstat pair for the serial run. Results are bit-identical
// (TestEngineCGBAPoolMatrix); only the wall clock may differ.
func BenchmarkCGBAPar(b *testing.B) {
	for _, players := range []int{25, 50, 100, 300} {
		b.Run(fmt.Sprintf("players=%d", players), func(b *testing.B) {
			g := benchGame(b, players)
			e := NewEngine(g)
			pool := par.New(0)
			defer pool.Close()
			e.SetPool(pool)
			src := rng.New(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.CGBA(CGBAConfig{}, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineCGBA measures the BDMA-round reuse pattern: one Engine
// solving the same game repeatedly, so per-call allocations amortize to
// just the Result profile clone.
func BenchmarkEngineCGBA(b *testing.B) {
	for _, players := range []int{25, 50, 100, 300} {
		b.Run(fmt.Sprintf("players=%d", players), func(b *testing.B) {
			g := benchGame(b, players)
			e := NewEngine(g)
			src := rng.New(2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.CGBA(CGBAConfig{}, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCGBAPivotRules(b *testing.B) {
	g := benchGame(b, 50)
	for _, pivot := range []PivotRule{PivotMaxImprovement, PivotRoundRobin, PivotRandom} {
		b.Run(pivot.String(), func(b *testing.B) {
			src := rng.New(3)
			for i := 0; i < b.N; i++ {
				if _, err := CGBA(g, CGBAConfig{Pivot: pivot}, src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMCBA(b *testing.B) {
	g := benchGame(b, 50)
	src := rng.New(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MCBA(g, MCBAConfig{}, src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomProfile(b *testing.B) {
	g := benchGame(b, 100)
	src := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomProfile(g, src)
	}
}

func BenchmarkSocialCost(b *testing.B) {
	g := benchGame(b, 100)
	p := RandomProfile(g, rng.New(6)).Profile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SocialCost(p)
	}
}

func BenchmarkOptimalSmall(b *testing.B) {
	// Exact branch-and-bound on an instance it can finish.
	g := randomGame(b, rng.New(7), 8, 4, 6)
	src := rng.New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Optimal(g, solver.BnBConfig{}, src); err != nil {
			b.Fatal(err)
		}
	}
}
