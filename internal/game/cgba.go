package game

import (
	"errors"
	"fmt"

	"eotora/internal/rng"
)

// Result reports the outcome of a game-solving algorithm.
type Result struct {
	// Profile is the final strategy profile ẑ.
	Profile Profile
	// Objective is the social cost T(ẑ).
	Objective float64
	// Iterations is the number of improvement steps (CGBA) or sampled
	// moves (MCBA) performed.
	Iterations int
	// ObjectiveTrace holds the social cost after each improvement step
	// when CGBAConfig.TrackObjective is set (entry 0 = initial profile);
	// nil otherwise.
	ObjectiveTrace []float64
	// Truncated reports that the solve stopped at a deadline checkpoint
	// (Engine.SetDeadline) before reaching its usual termination. The
	// profile is still feasible — CGBA's current iterate and MCBA's
	// best-so-far are valid profiles at every iteration boundary — but
	// carries no equilibrium or approximation guarantee.
	Truncated bool
}

// PivotRule selects which dissatisfied player moves at each CGBA step.
type PivotRule int

// Pivot rules.
const (
	// PivotMaxImprovement is Algorithm 3's rule: the player with the
	// largest absolute cost improvement moves.
	PivotMaxImprovement PivotRule = iota
	// PivotRoundRobin cycles players in index order, moving the first
	// dissatisfied one.
	PivotRoundRobin
	// PivotRandom moves a uniformly random dissatisfied player.
	PivotRandom
)

// String names the rule for logs and figure labels.
func (p PivotRule) String() string {
	switch p {
	case PivotMaxImprovement:
		return "max-improvement"
	case PivotRoundRobin:
		return "round-robin"
	case PivotRandom:
		return "random"
	default:
		return fmt.Sprintf("PivotRule(%d)", int(p))
	}
}

// CGBAConfig parameterizes the congestion-game-based algorithm.
type CGBAConfig struct {
	// Lambda is the λ ∈ [0, 0.125) tolerance of Algorithm 3: a player is
	// considered satisfied when (1−λ)·T_i(z) ≤ min_ẑ T_i(ẑ, z_−i).
	// λ = 0 converges to an exact Nash equilibrium with the 2.62
	// approximation guarantee; larger λ trades solution quality for
	// fewer iterations (Theorem 2).
	Lambda float64
	// MaxIterations caps the improvement loop as a safety net; 0 selects
	// a generous default proportional to the player count.
	MaxIterations int
	// Initial, when non-nil, seeds the dynamics with a given profile
	// instead of a uniformly random one.
	Initial Profile
	// Pivot selects the mover among dissatisfied players; the zero value
	// is the paper's max-improvement rule. All rules converge (the
	// potential decreases under any improving move); they differ in step
	// count and occasionally in the equilibrium reached.
	Pivot PivotRule
	// Shortlist is the top-k best-response pruning width (see
	// engine_fast.go): 0 selects DefaultShortlist, ShortlistFull (or any
	// negative value) forces the exact path, and a positive value is used
	// as-is. Pruning engages only when k is below some player's strategy
	// count and Pivot is PivotMaxImprovement; the result is then a
	// certified λ-equilibrium of the unpruned game (same approximation
	// guarantee) reached by sweep dynamics, generally not bit-identical
	// to the exact path's equilibrium. All other configurations take the
	// exact path and stay bit-identical to it.
	Shortlist int
	// TrackObjective records the social cost after every improvement step
	// into Result.ObjectiveTrace (index 0 is the initial profile's cost).
	// Costs O(|R|) extra per step; off by default.
	TrackObjective bool
}

// ErrNoConverge is returned when CGBA hits its iteration cap, which under
// the potential-game argument can only happen with a cap far below the
// theoretical convergence bound.
var ErrNoConverge = errors.New("game: CGBA iteration cap reached")

// CGBA runs Algorithm 3, the paper's weighted-game best-response dynamics:
// starting from a random profile, while some player can improve its cost by
// more than a factor (1−λ), the player with the largest absolute
// improvement moves to its best response. For λ ∈ (0, 0.125) the result is
// a 2.62/(1−8λ)-approximation of the optimal social cost after
// O((1/λ)·log(Φ₀/Φ_min)) iterations (Theorem 2); λ = 0 yields the plain
// 2.62 bound.
//
// This entry point builds a fresh Engine per call; hot callers that solve
// the same game repeatedly (BDMA rounds, simulation slots) should hold an
// Engine and call Engine.CGBA to reuse its caches and scratch buffers.
func CGBA(g *Game, cfg CGBAConfig, src *rng.Source) (Result, error) {
	return NewEngine(g).CGBA(cfg, src)
}

// IsEquilibrium reports whether no player can improve its cost by more
// than the relative tolerance tol under unilateral deviation — the λ-Nash
// condition CGBA terminates with.
func (g *Game) IsEquilibrium(p Profile, tol float64) bool {
	loads := g.Loads(p)
	for i := range p {
		cur := g.PlayerCost(p, loads, i)
		if _, c := g.bestResponse(p, loads, i); (1-tol)*cur > c+1e-9*(cur+1) {
			return false
		}
	}
	return true
}
