// Engine: the mutable solve state of a Game. The Game arena is immutable
// structure; an Engine owns a profile, the per-resource loads, and
// per-player cached best responses with dirty-bit invalidation — when
// player j moves, only the players sharing a touched resource (found via
// the game's resource→player incidence index) re-evaluate; everyone else
// reuses their cached current cost and best response. CGBA's
// per-iteration full rescan, O(I·S·u), becomes work proportional to the
// mover's resource neighborhood.
//
// Exact equivalence is the contract: every cached quantity is computed
// with the same floating-point operations, in the same order, as the
// one-shot Game methods (PlayerCost, bestResponse, Loads). A cache entry
// is only reused while all of its inputs are bit-unchanged, so the
// engine-backed CGBA/MCBA reproduce the original implementation
// bit-for-bit. The property and golden tests in engine_test.go enforce
// this.
package game

import (
	"errors"
	"fmt"
	"math"

	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/solver"
)

// Engine is reusable mutable solve state bound to one Game. It is not safe
// for concurrent use; create one Engine per goroutine. (An attached
// par.Pool does not change that contract: the engine drives the pool's
// workers from inside a single Engine call, never the other way around.)
type Engine struct {
	g       *Game
	profile Profile
	loads   []float64

	// Per-player cache, valid when !dirty[i]: curCost[i] = T_i(z) under
	// the current profile, and (brStrat[i], brCost[i]) = player i's best
	// response against the other players' current loads.
	dirty   []bool
	curCost []float64
	brCost  []float64
	brStrat []int32

	// Scratch buffers (hoisted out of the solve loops).
	saveLoad   []float64 // saved load bits during in-place self-removal
	saveRes    []int32
	candidates []int // PivotRandom mover candidates
	candStrats []int
	scratchLds []float64 // fresh-loads scratch for exact SocialCost
	mcbaBest   Profile   // MCBA best-so-far buffer

	// Observability (see instruments.go): instr holds the optional obs
	// handles; tally is the engine-local count state flushed per solve.
	instr Instruments
	tally engineTallies

	// Parallel refresh (see engine_par.go): pool shards the per-iteration
	// best-response rescan; refreshT is the persistent region task and
	// shardTallies the per-shard hit/miss counts merged in shard order.
	pool         *par.Pool
	refreshT     refreshTask
	shardTallies []engineTallies

	// deadline, when non-nil, is polled at iteration boundaries: an
	// expired deadline truncates the solve, returning the current
	// (feasible) iterate with Result.Truncated set. Nil never expires,
	// so the undeadlined path is unchanged (see SetDeadline).
	deadline *solver.Deadline

	// Shortlist fast path (see engine_fast.go): lazily derived top-k
	// tables keyed on the game's weight generation.
	fast fastState

	// Sharded solve (see engine_shard.go): per-shard private solve state
	// and the persistent parallel-region task.
	shardSlv []shardSolve
	shardT   shardSweepTask

	// Mutation scratch (see mutate.go): double buffers for the per-player
	// state permutation of ApplyMutation, the touched-resource set of
	// PrepareMutation, and whether the prepare step found a usable
	// profile to maintain loads through.
	mutProfile Profile
	mutDirty   []bool
	mutCur     []float64
	mutBr      []float64
	mutStrat   []int32
	mutTouched []int32
	mutSeen    []bool
	mutOK      bool
}

// NewEngine returns an Engine bound to g with all caches invalid.
func NewEngine(g *Game) *Engine {
	e := &Engine{}
	e.Bind(g)
	return e
}

// Bind (re)binds the engine to a game, resizing buffers without
// reallocating when capacities suffice — the cross-slot reuse path where
// a Builder rebuilt the arena in place. All caches become invalid; call
// Reset or ResetRandom before querying. The profile is poisoned (every
// entry -1, never a valid strategy) so downstream consumers that use
// Game.Valid as a "has been solved" proxy — PrepareMutation's load-carry
// check — reliably fall back instead of trusting recycled slots.
func (e *Engine) Bind(g *Game) {
	e.g = g
	n, r := g.Players(), g.Resources()
	e.profile = resizeProfile(e.profile, n)
	for i := range e.profile {
		e.profile[i] = -1
	}
	e.loads = resizeFloat(e.loads, r)
	e.dirty = resizeBool(e.dirty, n)
	e.curCost = resizeFloat(e.curCost, n)
	e.brCost = resizeFloat(e.brCost, n)
	e.brStrat = resizeInt32(e.brStrat, n)
	e.saveLoad = resizeFloat(e.saveLoad, g.maxUses)
	e.saveRes = resizeInt32(e.saveRes, g.maxUses)
	e.scratchLds = resizeFloat(e.scratchLds, r)
	e.invalidateAll()
}

// Game returns the bound game.
func (e *Engine) Game() *Game { return e.g }

// SetDeadline attaches a cooperative deadline polled at CGBA/MCBA
// iteration boundaries. When the deadline expires mid-solve the engine
// returns its current feasible iterate (CGBA) or best-so-far profile
// (MCBA) with Result.Truncated set instead of running to termination. A
// nil deadline (the default) never expires and adds only a nil check per
// iteration, keeping the undeadlined solve bit-identical.
func (e *Engine) SetDeadline(dl *solver.Deadline) { e.deadline = dl }

// Profile returns a view of the engine's current profile. The slice is
// owned by the engine; callers must Clone it to retain it across moves.
func (e *Engine) Profile() Profile { return e.profile }

// Loads returns a view of the current per-resource loads.
func (e *Engine) Loads() []float64 { return e.loads }

// Reset sets the engine to the given profile, recomputing loads from
// scratch and invalidating all caches.
func (e *Engine) Reset(p Profile) error {
	if !e.g.Valid(p) {
		return errors.New("game: invalid initial profile")
	}
	copy(e.profile, p)
	e.reload()
	return nil
}

// ResetRandom sets a uniformly random profile, drawing exactly one Intn
// per player in index order (the draw sequence CGBA's one-shot path uses).
func (e *Engine) ResetRandom(src *rng.Source) {
	for i := range e.profile {
		e.profile[i] = src.Intn(e.g.StrategyCount(i))
	}
	e.reload()
}

func (e *Engine) reload() {
	clearFloats(e.loads)
	e.g.loadsInto(e.loads, e.profile)
	e.invalidateAll()
}

func (e *Engine) invalidateAll() {
	for i := range e.dirty {
		e.dirty[i] = true
	}
}

// refresh brings player i's cached costs up to date by full per-player
// recomputation (no partial deltas — only bit-identical full evaluation
// is allowed to reuse). The arithmetic mirrors Game.PlayerCost and
// Game.bestResponse exactly: the current strategy's contribution is
// removed from the loads in place (original bits saved and restored —
// (a−b)+b is not a floating-point identity), so each candidate cost is
// m_r·p_{i,r}·((loads[r]−w_cur)+w), the same expression the one-shot path
// evaluates through its without() closure. The candidate scan streams the
// player's contiguous arena slice once, fusing the strict-less argmin of
// Game.bestResponse into the same pass.
func (e *Engine) refresh(i int) {
	if !e.dirty[i] {
		e.tally.hits++
		return
	}
	e.tally.misses++
	g := e.g
	first, last := g.playerStrategies(i)
	cs := first + int32(e.profile[i])

	cost := 0.0
	for _, u := range g.uses[g.useOff[cs]:g.useOff[cs+1]] {
		cost += u.wm * e.loads[u.res]
	}
	e.curCost[i] = cost

	saved := 0
	for _, u := range g.uses[g.useOff[cs]:g.useOff[cs+1]] {
		e.saveRes[saved] = int32(u.res)
		e.saveLoad[saved] = e.loads[u.res]
		saved++
		e.loads[u.res] -= u.w
	}
	// One flat pass over the player's contiguous arena span; strategy
	// boundaries come from the offset slice, so no per-strategy slice
	// headers are materialized.
	base := g.useOff[first]
	uses := g.uses[base:g.useOff[last]]
	offs := g.useOff[first : last+1]
	best, bestCost := -1, math.Inf(1)
	k := 0
	for s := 0; s < len(offs)-1; s++ {
		end := int(offs[s+1] - base)
		c := 0.0
		for ; k < end; k++ {
			u := &uses[k]
			c += u.wm * (e.loads[u.res] + u.w)
		}
		if c < bestCost {
			best, bestCost = s, c
		}
	}
	for k := 0; k < saved; k++ {
		e.loads[e.saveRes[k]] = e.saveLoad[k]
	}
	e.brStrat[i], e.brCost[i] = int32(best), bestCost
	e.dirty[i] = false
}

// PlayerCost returns T_i under the current profile (cached).
func (e *Engine) PlayerCost(i int) float64 {
	e.refresh(i)
	return e.curCost[i]
}

// BestResponse returns player i's minimum-cost deviation and its cost
// (cached).
func (e *Engine) BestResponse(i int) (strategy int, cost float64) {
	e.refresh(i)
	return int(e.brStrat[i]), e.brCost[i]
}

// SocialCost returns Σ_r m_r p_r(z)² for the current profile, recomputed
// from scratch (not from the incrementally maintained loads) so the value
// is bit-identical to Game.SocialCost.
func (e *Engine) SocialCost() float64 {
	clearFloats(e.scratchLds)
	e.g.loadsInto(e.scratchLds, e.profile)
	obj := 0.0
	for r, l := range e.scratchLds {
		obj += e.g.weights[r] * l * l
	}
	return obj
}

// Move switches player i to strategy s, updating loads incrementally and
// dirtying exactly the players whose cached responses the move could
// change.
func (e *Engine) Move(i, s int) error {
	if i < 0 || i >= e.g.Players() || s < 0 || s >= e.g.StrategyCount(i) {
		return fmt.Errorf("game: move (%d, %d) out of range", i, s)
	}
	e.move(i, s)
	return nil
}

// move is Move without bounds checks — the hot path. Load updates follow
// Game.applyMove's order (all old uses removed, then all new uses added),
// keeping the load bits identical to the one-shot path's. Every player
// incident to a touched resource is dirtied; players sharing no touched
// resource keep bit-unchanged inputs, so their caches stay valid.
func (e *Engine) move(i, s int) {
	e.tally.moves++
	g := e.g
	for _, u := range g.strategyUses(i, e.profile[i]) {
		e.loads[u.res] -= u.w
		e.markTouched(u.res)
	}
	e.profile[i] = s
	for _, u := range g.strategyUses(i, s) {
		e.loads[u.res] += u.w
		e.markTouched(u.res)
	}
	e.dirty[i] = true
}

func (e *Engine) markTouched(r int) {
	g := e.g
	for _, j := range g.incPlayer[g.incOff[r]:g.incOff[r+1]] {
		e.dirty[j] = true
	}
}

// relEps guards against floating-point non-termination at λ = 0: a move
// must improve by more than a vanishing relative amount.
const relEps = 1e-12

// dissatisfied reports whether player i can improve beyond the λ
// tolerance, returning its best response when so.
func (e *Engine) dissatisfied(i int, lambda float64) (strategy int, improve float64, ok bool) {
	e.refresh(i)
	return e.dissatisfiedCached(i, lambda)
}

// dissatisfiedCached is dissatisfied for a player whose cache is known
// fresh: no refresh, no tally. The parallel scan uses it as phase 2,
// after refreshAllParallel has refreshed (and tallied) every player —
// calling dissatisfied there would tally a spurious extra cache hit per
// player per iteration relative to serial.
func (e *Engine) dissatisfiedCached(i int, lambda float64) (strategy int, improve float64, ok bool) {
	cur, c := e.curCost[i], e.brCost[i]
	// Algorithm 3 line 2: (1−λ)·T_i > min T_i.
	if (1-lambda)*cur <= c+relEps*(cur+1) {
		return 0, 0, false
	}
	return int(e.brStrat[i]), cur - c, true
}

// CGBA runs Algorithm 3 on the engine: the best-response dynamics of the
// package-level CGBA, but with cached best responses invalidated
// incrementally instead of recomputed for every player every iteration.
// The result — profile, objective, iteration count, RNG draw sequence —
// is bit-identical to the one-shot path for the same inputs. The engine's
// state is reset on entry, so a stale cache (e.g. after
// Game.SetResourceWeight) is harmless.
func (e *Engine) CGBA(cfg CGBAConfig, src *rng.Source) (Result, error) {
	if cfg.Lambda < 0 || cfg.Lambda >= 0.125 {
		return Result{}, fmt.Errorf("game: λ = %v outside [0, 0.125)", cfg.Lambda)
	}
	g := e.g
	n := g.Players()

	// Shortlist dispatch (see engine_fast.go): when the effective top-k
	// width actually prunes someone and the paper's max-improvement rule
	// is selected, the pruned sweep path runs instead. A width covering
	// every player's strategy set falls through to the exact path below —
	// bit-identical to the seed, pools and all.
	if k := effectiveShortlist(cfg.Shortlist); k > 0 && cfg.Pivot == PivotMaxImprovement && k < g.maxStrategyCount() {
		return e.cgbaPruned(cfg, src, k)
	}

	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 200*n + 10000
	}

	if cfg.Initial != nil {
		if err := e.Reset(cfg.Initial); err != nil {
			return Result{}, err
		}
	} else {
		e.ResetRandom(src)
	}

	var objTrace []float64
	if cfg.TrackObjective {
		objTrace = append(objTrace, g.SocialCost(e.profile))
	}

	// The full-scan pivots (max-improvement, random) refresh every
	// player each iteration; with a pool attached and enough players the
	// refreshes run in parallel shards, then the pivot scan reads the
	// caches serially in index order (see engine_par.go). Round-robin
	// stops its scan at the first dissatisfied player, so a full parallel
	// refresh would do work — and tally cache traffic — serial wouldn't;
	// it stays serial.
	usePar := cfg.Pivot != PivotRoundRobin && e.pool.Size() > 1 && n >= parRefreshMinPlayers

	iterations := 0
	rrCursor := 0
	for ; iterations < maxIter; iterations++ {
		// Deadline checkpoint: one poll per iteration, before any refresh
		// work. The checkpoint count is a function of the iteration count
		// alone — identical at every pool size — so counted budgets
		// degrade deterministically. The current iterate is always a
		// feasible profile, so truncation can return it directly.
		if e.deadline.Expired() {
			e.recordCGBA(iterations)
			return Result{
				Profile:        e.profile.Clone(),
				Objective:      g.SocialCost(e.profile),
				Iterations:     iterations,
				ObjectiveTrace: objTrace,
				Truncated:      true,
			}, nil
		}
		mover, strategy := -1, -1
		if usePar {
			e.refreshAllParallel()
		}
		switch cfg.Pivot {
		case PivotRoundRobin:
			for scanned := 0; scanned < n; scanned++ {
				i := (rrCursor + scanned) % n
				if s, _, ok := e.dissatisfied(i, cfg.Lambda); ok {
					mover, strategy = i, s
					rrCursor = (i + 1) % n
					break
				}
			}
		case PivotRandom:
			e.candidates = e.candidates[:0]
			e.candStrats = e.candStrats[:0]
			for i := 0; i < n; i++ {
				var s int
				var ok bool
				if usePar {
					s, _, ok = e.dissatisfiedCached(i, cfg.Lambda)
				} else {
					s, _, ok = e.dissatisfied(i, cfg.Lambda)
				}
				if ok {
					e.candidates = append(e.candidates, i)
					e.candStrats = append(e.candStrats, s)
				}
			}
			if len(e.candidates) > 0 {
				pick := src.Intn(len(e.candidates))
				mover, strategy = e.candidates[pick], e.candStrats[pick]
			}
		default: // PivotMaxImprovement — Algorithm 3 line 3
			bestImprove := 0.0
			for i := 0; i < n; i++ {
				var s int
				var improve float64
				var ok bool
				if usePar {
					s, improve, ok = e.dissatisfiedCached(i, cfg.Lambda)
				} else {
					s, improve, ok = e.dissatisfied(i, cfg.Lambda)
				}
				if ok && improve > bestImprove {
					bestImprove = improve
					mover, strategy = i, s
				}
			}
		}
		if mover < 0 {
			e.recordCGBA(iterations)
			return Result{
				Profile:        e.profile.Clone(),
				Objective:      g.SocialCost(e.profile),
				Iterations:     iterations,
				ObjectiveTrace: objTrace,
			}, nil
		}
		e.move(mover, strategy)
		if cfg.TrackObjective {
			objTrace = append(objTrace, g.SocialCost(e.profile))
		}
	}
	e.recordCGBA(iterations)
	return Result{
		Profile:        e.profile.Clone(),
		Objective:      g.SocialCost(e.profile),
		Iterations:     iterations,
		ObjectiveTrace: objTrace,
	}, ErrNoConverge
}

// recordCGBA flushes the solve's tallies and records its iteration count.
func (e *Engine) recordCGBA(iterations int) {
	e.instr.CGBASolves.Inc()
	e.instr.CGBAIterations.Observe(float64(iterations))
	e.flushInstr()
}

// IsEquilibrium reports whether the engine's current profile is a λ-Nash
// equilibrium under the given tolerance, using the cached best responses.
func (e *Engine) IsEquilibrium(tol float64) bool {
	for i := range e.profile {
		e.refresh(i)
		cur, c := e.curCost[i], e.brCost[i]
		if (1-tol)*cur > c+1e-9*(cur+1) {
			return false
		}
	}
	return true
}

// MCBA runs the Markov chain Monte Carlo baseline on the engine, reusing
// its profile/loads buffers as the walk state. Draw sequence and result
// are bit-identical to the package-level MCBA. The best-response caches
// are left invalid (the walk does not maintain them).
func (e *Engine) MCBA(cfg MCBAConfig, src *rng.Source) (Result, error) {
	g := e.g
	n := g.Players()
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 400 * n
	}
	cooling := cfg.Cooling
	if cooling <= 0 || cooling > 1 {
		cooling = 0.999
	}

	e.ResetRandom(src)
	profile, loads := e.profile, e.loads
	cur := g.SocialCost(profile)

	temp := cfg.Temperature
	if temp <= 0 {
		temp = 0.1
	}
	temp *= cur + 1 // scale to the objective

	e.mcbaBest = resizeProfile(e.mcbaBest, n)
	best := e.mcbaBest
	copy(best, profile)
	bestObj := cur
	for it := 0; it < iters; it++ {
		// Deadline checkpoint every 64 moves: the walk is too hot to pay a
		// time.Now() per iteration, and 64 keeps the counted-checkpoint
		// sequence deterministic (it depends only on the iteration index).
		if it&63 == 0 && e.deadline.Expired() {
			e.invalidateAll()
			e.instr.MCBAIterations.Observe(float64(it))
			e.flushInstr()
			return Result{Profile: best.Clone(), Objective: g.SocialCost(best), Iterations: it, Truncated: true}, nil
		}
		i := src.Intn(n)
		count := g.StrategyCount(i)
		if count == 1 {
			continue
		}
		s := src.Intn(count)
		if s == profile[i] {
			continue
		}
		old := profile[i]
		oldUses := g.strategyUses(i, old)
		newUses := g.strategyUses(i, s)
		// Δ objective of the unilateral move: because the social cost is
		// Σ_r m_r p_r², the delta equals the mover's cost change times 2
		// minus the self-term corrections; recompute incrementally via
		// player costs against updated loads. The loops below are
		// Game.PlayerCost and Game.applyMove inlined by hand (the walk is
		// too hot for the call overhead), with identical operation order.
		before := 0.0
		for _, u := range oldUses {
			before += u.wm * loads[u.res]
		}
		for _, u := range oldUses {
			loads[u.res] -= u.w
		}
		profile[i] = s
		for _, u := range newUses {
			loads[u.res] += u.w
		}
		after := 0.0
		for _, u := range newUses {
			after += u.wm * loads[u.res]
		}
		// ΔΦ = after − before, and ΔSocial = 2·ΔΦ − Δ(self terms) where
		// the self terms Σ m p² differ between the two strategies.
		delta := 2 * (after - before)
		for _, u := range newUses {
			delta -= u.wm * u.w
		}
		for _, u := range oldUses {
			delta += u.wm * u.w
		}
		accept := delta <= 0 || src.Float64() < math.Exp(-delta/temp)
		if accept {
			cur += delta
			if cur < bestObj {
				bestObj = cur
				copy(best, profile)
			}
		} else {
			for _, u := range newUses {
				loads[u.res] -= u.w
			}
			profile[i] = old
			for _, u := range oldUses {
				loads[u.res] += u.w
			}
		}
		temp *= cooling
	}
	// The walk moved profile/loads behind the caches' back.
	e.invalidateAll()
	e.instr.MCBAIterations.Observe(float64(iters))
	e.flushInstr()
	return Result{Profile: best.Clone(), Objective: g.SocialCost(best), Iterations: iters}, nil
}

// resizeProfile and resizeBool grow a recycled slice to n entries with
// make-parity semantics: slots beyond the previous length are zeroed, so
// a shrink-then-grow cycle (population churn) never resurfaces stale
// strategy indices or dirty bits from an earlier, larger binding.
func resizeProfile(p Profile, n int) Profile {
	if cap(p) < n {
		return make(Profile, n)
	}
	old := len(p)
	p = p[:n]
	for i := old; i < n; i++ {
		p[i] = 0
	}
	return p
}

func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	old := len(s)
	s = s[:n]
	for i := old; i < n; i++ {
		s[i] = false
	}
	return s
}
