// Pruned best-response dynamics: the sub-quadratic half of the Engine.
//
// The exact CGBA path re-scores every player's full strategy set each
// iteration and dirties every incident player on each move. On the
// paper's topology the resource set is small and shared (a handful of
// stations and servers cover the whole area), so each move dirties
// nearly everyone and the solve cost grows quadratically with the
// population. Related work (arXiv 1701.07405, arXiv 2501.02952) argues
// offloading decisions localize to a few nearby cells — a player's best
// response almost never needs the whole (station, server) grid.
//
// The fast path exploits both observations:
//
//   - Incremental congestion sums. The per-resource loads p_r(z) are
//     already maintained in O(resources-touched) per move; the pruned
//     loop scores candidates directly against them (fastMove) and skips
//     the exact path's incidence-walk invalidation entirely — no O(n)
//     dirty fan-out per move.
//
//   - Top-k shortlists. Each player ranks its strategies by the static
//     self-congestion score Σ_r m_r·p_{i,r}² (the congestion it would
//     add to an empty system — small scores mean strong channels and
//     fast servers) and keeps the k best in a flat arena. Best-response
//     scans stream only those k candidates. Shortlists are rebuilt
//     lazily, keyed on the game's weight generation: Builder.Build,
//     Mutation.Commit, and Game.SetResourceWeight all advance it, so
//     channel/σ changes and population churn invalidate exactly once,
//     and a game reached via mutations yields bit-identical shortlists
//     to a fresh build of the same content.
//
//   - Sweep dynamics with exact certification. The pruned loop runs
//     Gauss–Seidel sweeps (players in index order, each dissatisfied
//     player moves to its shortlist best response immediately). When a
//     sweep makes no move the loop switches to a full-width sweep that
//     evaluates every strategy with the exact path's arithmetic; only a
//     quiet full-width sweep terminates the solve. The returned profile
//     is therefore a certified λ-equilibrium of the *unpruned* game —
//     the shortlist is a heuristic for speed, never for correctness —
//     so Theorem 2's 2.62/(1−8λ) approximation bound still applies.
//
// Equivalence contract: when the effective shortlist width covers every
// player's strategy set (small games, or Shortlist ≥ max strategies, or
// ShortlistFull), Engine.CGBA routes to the unmodified exact path and
// results stay bit-identical to the seed at every pool size. The pruned
// path is serial by construction — identical results at every pool size
// for free — and deterministic: same game bits, config, and RNG state
// give the same profile. engine_fast_test.go and
// FuzzIncrementalBestResponseEquivalence enforce all of this.
package game

import (
	"math"

	"eotora/internal/rng"
)

// DefaultShortlist is the top-k width the zero-valued CGBAConfig.Shortlist
// selects. 16 covers every strategy of the package's small test games
// (keeping them on the bit-identical exact path) while pruning the
// paper's 6-station × 16-server grid (up to 96 pairs) ~6x. See
// OPERATIONS.md for tuning guidance.
const DefaultShortlist = 16

// ShortlistFull disables pruning: CGBA always takes the exact path. Any
// negative Shortlist value behaves the same; the named constant is the
// documented escape hatch.
const ShortlistFull = -1

// fastSweepCheckMask throttles deadline polls inside a pruned sweep: one
// poll every 256 players (plus one at each sweep start). The poll count
// is a function of the player count and sweep structure alone, so
// counted checkpoint budgets stay deterministic.
const fastSweepCheckMask = 255

// fastState holds the Engine's lazily derived shortlist tables. The
// tables depend only on the game's structure and premultiplied weight
// factors, both tracked by Game.weightGen; they survive solves, profile
// resets, and pool attachment.
type fastState struct {
	game *Game  // game the tables were derived from
	wgen uint64 // Game.weightGen at derivation (0 = never built)
	k    int    // shortlist width the tables were built for

	// Shortlist CSR: player i's entries are slStrat[slOff[i]:slOff[i+1]]
	// (strategy indices, ascending), and entry e's uses are
	// slUses[slUseOff[e]:slUseOff[e+1]] — a flat copy so the hot scan
	// streams one array exactly like the exact path's arena pass.
	slOff    []int32
	slStrat  []int32
	slUseOff []int32
	slUses   []use

	// rho[i] bounds how fast player i's costs can drift: the largest
	// premultiplied factor m_r·p_{i,r} over all of i's uses. A total
	// absolute load drift of ΔD since i was last scored can move its
	// current cost and its best-response cost by at most rho[i]·ΔD each.
	rho []float64

	// Per-solve sweep-skip state (reset by cgbaPruned): slack[i] is how
	// far player i was from dissatisfaction when last scored (-1 = never
	// scored this solve), lastD[i] the drift accumulator at that moment,
	// and drift the running Σ_r |Δload_r| over all moves this solve.
	slack []float64
	lastD []float64
	drift float64

	// Selection scratch for rebuildShortlists (top-k by score).
	topScore []float64
	topStrat []int32
}

// effectiveShortlist resolves the CGBAConfig.Shortlist knob.
func effectiveShortlist(v int) int {
	if v == 0 {
		return DefaultShortlist
	}
	if v < 0 {
		return 0 // exact
	}
	return v
}

// maxStrategyCount returns the largest strategy set of any player.
func (g *Game) maxStrategyCount() int {
	max := 0
	for i := 0; i+1 < len(g.strOff); i++ {
		if n := int(g.strOff[i+1] - g.strOff[i]); n > max {
			max = n
		}
	}
	return max
}

// rebuildShortlists derives the top-k tables for the bound game. Cost is
// one arena pass plus an O(S·k) insertion select per player; it runs
// once per (game structure, weights) generation, not per solve.
func (e *Engine) rebuildShortlists(k int) {
	g := e.g
	f := &e.fast
	n := g.Players()

	f.slOff = resizeInt32(f.slOff, n+1)
	f.rho = resizeFloat(f.rho, n)
	f.slStrat = f.slStrat[:0]
	f.slUseOff = append(f.slUseOff[:0], 0)
	f.slUses = f.slUses[:0]
	if cap(f.topScore) < k {
		f.topScore = make([]float64, k)
		f.topStrat = make([]int32, k)
	}
	top, topStrat := f.topScore[:k], f.topStrat[:k]

	f.slOff[0] = 0
	for i := 0; i < n; i++ {
		first, last := g.playerStrategies(i)
		rho := 0.0
		for _, u := range g.uses[g.useOff[first]:g.useOff[last]] {
			if u.wm > rho {
				rho = u.wm
			}
		}
		f.rho[i] = rho
		count := int(last - first)
		if count <= k {
			// Full width: every strategy, index order — the pruned scan
			// then visits the same candidates in the same order as the
			// exact argmin.
			for s := 0; s < count; s++ {
				e.appendShortlistEntry(int32(s), g.uses[g.useOff[first+int32(s)]:g.useOff[first+int32(s)+1]])
			}
			f.slOff[i+1] = int32(len(f.slStrat))
			continue
		}
		// Top-k smallest static self-cost Σ wm·w, ties broken by lower
		// strategy index (insertion keeps the selection stable and
		// deterministic).
		filled := 0
		for s := 0; s < count; s++ {
			score := 0.0
			for _, u := range g.uses[g.useOff[first+int32(s)]:g.useOff[first+int32(s)+1]] {
				score += u.wm * u.w
			}
			if filled == k && score >= top[filled-1] {
				continue
			}
			at := filled
			if filled < k {
				filled++
			} else {
				at = k - 1
			}
			for at > 0 && top[at-1] > score {
				top[at], topStrat[at] = top[at-1], topStrat[at-1]
				at--
			}
			top[at], topStrat[at] = score, int32(s)
		}
		// Emit in ascending strategy index so cost ties inside the
		// shortlist resolve exactly as the full-width argmin would.
		sel := topStrat[:filled]
		for a := 1; a < len(sel); a++ {
			v := sel[a]
			b := a
			for b > 0 && sel[b-1] > v {
				sel[b] = sel[b-1]
				b--
			}
			sel[b] = v
		}
		for _, s := range sel {
			e.appendShortlistEntry(s, g.uses[g.useOff[first+s]:g.useOff[first+s+1]])
		}
		f.slOff[i+1] = int32(len(f.slStrat))
	}
	f.game, f.wgen, f.k = g, g.weightGen, k
}

func (e *Engine) appendShortlistEntry(s int32, uses []use) {
	f := &e.fast
	f.slStrat = append(f.slStrat, s)
	f.slUses = append(f.slUses, uses...)
	f.slUseOff = append(f.slUseOff, int32(len(f.slUses)))
}

// fastMove switches player i to strategy s, updating only the loads —
// O(resources-touched), no incidence-walk invalidation. The load updates
// follow Game.applyMove's order (all old uses removed, then all new
// added) so the load bits match the exact path's. Callers own cache
// consistency: the pruned loop never reads the per-player caches and
// invalidates them before any early return.
func (e *Engine) fastMove(i, s int) {
	e.tally.moves++
	g := e.g
	f := &e.fast
	drift := 0.0
	for _, u := range g.strategyUses(i, e.profile[i]) {
		e.loads[u.res] -= u.w
		drift += u.w
	}
	e.profile[i] = s
	for _, u := range g.strategyUses(i, s) {
		e.loads[u.res] += u.w
		drift += u.w
	}
	f.drift += drift
}

// sweepScore evaluates player i against the current loads: its current
// cost and its best response over either the shortlist (full=false) or
// the whole strategy set (full=true). The full-width branch performs the
// exact same floating-point operations in the same order as refresh, so
// certification agrees bit-for-bit with the exact path's equilibrium
// test. Loads are restored before returning.
func (e *Engine) sweepScore(i int, full bool) (cur float64, best int32, bestCost float64) {
	g := e.g
	first, last := g.playerStrategies(i)
	cs := first + int32(e.profile[i])

	cur = 0.0
	for _, u := range g.uses[g.useOff[cs]:g.useOff[cs+1]] {
		cur += u.wm * e.loads[u.res]
	}

	saved := 0
	for _, u := range g.uses[g.useOff[cs]:g.useOff[cs+1]] {
		e.saveRes[saved] = int32(u.res)
		e.saveLoad[saved] = e.loads[u.res]
		saved++
		e.loads[u.res] -= u.w
	}

	best, bestCost = -1, math.Inf(1)
	if full {
		base := g.useOff[first]
		uses := g.uses[base:g.useOff[last]]
		offs := g.useOff[first : last+1]
		k := 0
		for s := 0; s < len(offs)-1; s++ {
			end := int(offs[s+1] - base)
			c := 0.0
			for ; k < end; k++ {
				u := &uses[k]
				c += u.wm * (e.loads[u.res] + u.w)
			}
			if c < bestCost {
				best, bestCost = int32(s), c
			}
		}
	} else {
		f := &e.fast
		lo, hi := f.slOff[i], f.slOff[i+1]
		k := f.slUseOff[lo]
		for en := lo; en < hi; en++ {
			end := f.slUseOff[en+1]
			c := 0.0
			for ; k < end; k++ {
				u := &f.slUses[k]
				c += u.wm * (e.loads[u.res] + u.w)
			}
			if c < bestCost {
				best, bestCost = f.slStrat[en], c
			}
		}
	}

	for k := 0; k < saved; k++ {
		e.loads[e.saveRes[k]] = e.saveLoad[k]
	}
	return cur, best, bestCost
}

// greedyFill seeds the pruned dynamics: loads start empty and players
// 0..n−1 place sequentially on their shortlist best response against the
// players placed so far. Each player adds its uses exactly once in index
// order, so the resulting loads carry the same bits as a from-scratch
// reload of the final profile. Caches are left invalid, matching Reset.
func (e *Engine) greedyFill() {
	g := e.g
	f := &e.fast
	clearFloats(e.loads)
	for i := range e.profile {
		lo, hi := f.slOff[i], f.slOff[i+1]
		k := f.slUseOff[lo]
		best, bestCost := int32(0), math.Inf(1)
		for en := lo; en < hi; en++ {
			end := f.slUseOff[en+1]
			c := 0.0
			for ; k < end; k++ {
				u := &f.slUses[k]
				c += u.wm * (e.loads[u.res] + u.w)
			}
			if c < bestCost {
				best, bestCost = f.slStrat[en], c
			}
		}
		e.profile[i] = int(best)
		for _, u := range g.strategyUses(i, int(best)) {
			e.loads[u.res] += u.w
		}
	}
	e.invalidateAll()
}

// cgbaPruned is the shortlist fast path of Engine.CGBA: Gauss–Seidel
// sweeps over pruned best responses, terminated only by a quiet
// full-width certification sweep. λ has been validated and k < the
// game's max strategy count when this runs. Serial by construction —
// results are identical at every pool size.
func (e *Engine) cgbaPruned(cfg CGBAConfig, src *rng.Source, k int) (Result, error) {
	g := e.g
	n := g.Players()
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 200*n + 10000
	}

	f := &e.fast
	if f.game != g || f.wgen != g.weightGen || f.k != k {
		e.rebuildShortlists(k)
	}

	if cfg.Initial != nil {
		if err := e.Reset(cfg.Initial); err != nil {
			return Result{}, err
		}
	} else {
		// Congestion-aware greedy fill instead of the exact path's random
		// profile: players place sequentially, each best-responding (over
		// its shortlist) to the load of the players already placed. The
		// fill is one sweep's work, lands near an equilibrium, and draws
		// no RNG — deterministic given the game bits. Like any initial
		// profile it only affects which λ-equilibrium the certified
		// dynamics select, never the guarantee.
		e.greedyFill()
	}

	var objTrace []float64
	if cfg.TrackObjective {
		objTrace = append(objTrace, g.SocialCost(e.profile))
	}

	f.slack = resizeFloat(f.slack, n)
	f.lastD = resizeFloat(f.lastD, n)
	for i := range f.slack {
		f.slack[i] = -1
	}
	f.drift = 0

	moves := 0
	result := func(truncated bool) Result {
		return Result{
			Profile:        e.profile.Clone(),
			Objective:      g.SocialCost(e.profile),
			Iterations:     moves,
			ObjectiveTrace: objTrace,
			Truncated:      truncated,
		}
	}

	full := false
	for {
		moved := false
		for i := 0; i < n; i++ {
			// Deadline checkpoint at each sweep start and every 256
			// players: deterministic poll count, and the current iterate
			// is always a feasible profile.
			if i&fastSweepCheckMask == 0 && e.deadline.Expired() {
				e.invalidateAll()
				e.recordCGBA(moves)
				return result(true), nil
			}
			// Drift-bound skip (pruned sweeps only): when the total load
			// drift since player i was last scored cannot have closed its
			// dissatisfaction slack, the rescore is a no-op — skip it.
			// The bound is a heuristic (floating-point drift is not an
			// exact science); a wrongly skipped player is caught by the
			// full-width certification sweep, which never skips.
			if !full && f.slack[i] >= 0 && 2*f.rho[i]*(f.drift-f.lastD[i]) < f.slack[i] {
				e.tally.hits++
				continue
			}
			cur, br, brCost := e.sweepScore(i, full)
			e.tally.misses++
			if full {
				// Certification doubles as a cache refresh; the values
				// stay valid only if the sweep finishes quiet (any early
				// return below invalidates).
				e.curCost[i], e.brCost[i], e.brStrat[i] = cur, brCost, br
				e.dirty[i] = false
			}
			// Algorithm 3 line 2 with the exact path's relEps guard.
			if (1-cfg.Lambda)*cur > brCost+relEps*(cur+1) {
				e.fastMove(i, int(br))
				// The mover now sits on its best response: zero slack, so
				// any further drift triggers a rescore.
				f.slack[i], f.lastD[i] = 0, f.drift
				moves++
				moved = true
				if cfg.TrackObjective {
					objTrace = append(objTrace, g.SocialCost(e.profile))
				}
				if moves >= maxIter {
					e.invalidateAll()
					e.recordCGBA(moves)
					return result(false), ErrNoConverge
				}
			} else {
				f.slack[i] = brCost + relEps*(cur+1) - (1-cfg.Lambda)*cur
				f.lastD[i] = f.drift
			}
		}
		if moved {
			// Progress was made; go back to cheap pruned sweeps (a
			// full-width sweep that moved perturbs loads, so shortlist
			// opportunities may have reopened).
			full = false
			continue
		}
		if full {
			break // quiet full-width sweep: certified λ-equilibrium
		}
		full = true
	}
	// The final quiet full-width sweep refreshed every player's cache
	// against the terminal loads, so the engine's caches are left fully
	// consistent (IsEquilibrium and PlayerCost are cheap afterwards).
	e.recordCGBA(moves)
	return result(false), nil
}
