package game

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"eotora/internal/par"
	"eotora/internal/rng"
)

// runCGBAPooled solves g with a fresh engine and an attached pool of the
// given size (0 = no pool).
func runCGBAPooled(t testing.TB, g *Game, cfg CGBAConfig, seed int64, size int) Result {
	t.Helper()
	e := NewEngine(g)
	if size > 0 {
		pool := par.New(size)
		defer pool.Close()
		e.SetPool(pool)
	}
	res, err := e.CGBA(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func requireSameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
		t.Errorf("%s: objective bits %#x, want %#x",
			label, math.Float64bits(got.Objective), math.Float64bits(want.Objective))
	}
	if got.Iterations != want.Iterations {
		t.Errorf("%s: iterations %d, want %d", label, got.Iterations, want.Iterations)
	}
	if !reflect.DeepEqual(got.Profile, want.Profile) {
		t.Fatalf("%s: profile %v, want %v", label, got.Profile, want.Profile)
	}
}

// TestCGBAShortlistFullWidthBitIdentical is the first half of the
// equivalence contract: whenever the effective shortlist width covers
// every player's strategy set — small games under the default width, an
// explicit width ≥ the max strategy count, or ShortlistFull — CGBA must
// take the exact path and return bit-identical results at every pool
// size (the ISSUE's 0/1/4 matrix).
func TestCGBAShortlistFullWidthBitIdentical(t *testing.T) {
	cases := []struct {
		name       string
		strategies int
		cfg        CGBAConfig
	}{
		// DefaultShortlist (16) covers a 6-strategy set: zero-valued
		// configs stay on the exact path (the goldens' regime).
		{"default-covers-small", 6, CGBAConfig{}},
		{"explicit-width-at-max", 20, CGBAConfig{Shortlist: 20}},
		{"explicit-width-above-max", 20, CGBAConfig{Shortlist: 64}},
		{"shortlist-full", 20, CGBAConfig{Shortlist: ShortlistFull}},
		// Non-max-improvement pivots never prune, however small k is.
		{"round-robin-ignores-k", 20, CGBAConfig{Shortlist: 4, Pivot: PivotRoundRobin}},
		{"random-ignores-k", 20, CGBAConfig{Shortlist: 4, Pivot: PivotRandom}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			build := func() *Game {
				return randomGame(t, rng.New(501), 30, tc.strategies, 12)
			}
			exactCfg := tc.cfg
			exactCfg.Shortlist = ShortlistFull
			want := runCGBAPooled(t, build(), exactCfg, 502, 0)
			for _, size := range []int{0, 1, 4} {
				got := runCGBAPooled(t, build(), tc.cfg, 502, size)
				requireSameResult(t, fmt.Sprintf("pool %d", size), got, want)
			}
		})
	}
}

// TestCGBAPrunedCertifiedEquilibrium is the second half of the contract:
// with k below the strategy count the pruned sweep path runs, and its
// result must be a certified λ-equilibrium of the unpruned game,
// deterministic, and identical at every pool size (the path is serial by
// construction).
func TestCGBAPrunedCertifiedEquilibrium(t *testing.T) {
	for _, lambda := range []float64{0, 0.05, 0.1} {
		for _, k := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("lambda=%v/k=%d", lambda, k), func(t *testing.T) {
				build := func() *Game {
					return randomGame(t, rng.New(601), 40, 24, 10)
				}
				cfg := CGBAConfig{Lambda: lambda, Shortlist: k}
				g := build()
				want := runCGBAPooled(t, g, cfg, 602, 0)
				if !g.IsEquilibrium(want.Profile, lambda) {
					t.Fatalf("pruned k=%d result is not a λ=%v equilibrium of the unpruned game", k, lambda)
				}
				// Pool invariance and determinism: fresh engines, every
				// pool size, bit-identical.
				for _, size := range []int{0, 1, 4} {
					got := runCGBAPooled(t, build(), cfg, 602, size)
					requireSameResult(t, fmt.Sprintf("pool %d", size), got, want)
				}
				// Engine reuse (the BDMA-round pattern) must match fresh.
				e := NewEngine(build())
				for rep := 0; rep < 3; rep++ {
					got, err := e.CGBA(cfg, rng.New(602))
					if err != nil {
						t.Fatal(err)
					}
					requireSameResult(t, fmt.Sprintf("reuse %d", rep), got, want)
				}
			})
		}
	}
}

// TestCGBAPrunedInitialProfile checks the warm-start entry: a supplied
// Initial seeds the pruned dynamics (instead of the greedy fill) and the
// result is still a certified equilibrium; an already-certified profile
// terminates with zero moves.
func TestCGBAPrunedInitialProfile(t *testing.T) {
	g := randomGame(t, rng.New(611), 25, 24, 9)
	cfg := CGBAConfig{Shortlist: 5}
	first, err := CGBA(g, cfg, rng.New(612))
	if err != nil {
		t.Fatal(err)
	}
	warmCfg := cfg
	warmCfg.Initial = first.Profile
	warm, err := CGBA(g, warmCfg, rng.New(613))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations != 0 {
		t.Errorf("warm start from an equilibrium made %d moves, want 0", warm.Iterations)
	}
	if !reflect.DeepEqual(warm.Profile, first.Profile) {
		t.Fatalf("warm start moved off the equilibrium: %v, want %v", warm.Profile, first.Profile)
	}
	// An arbitrary initial profile must still converge to a certified
	// equilibrium.
	arb := make(Profile, g.Players())
	warmCfg.Initial = arb
	res, err := CGBA(g, warmCfg, rng.New(614))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsEquilibrium(res.Profile, 0) {
		t.Fatal("pruned solve from arbitrary initial profile is not an equilibrium")
	}
}

// TestCGBAPrunedTrackObjective: the pruned path's objective trace is one
// entry per move plus the initial profile, strictly decreasing under the
// improving-move dynamics.
func TestCGBAPrunedTrackObjective(t *testing.T) {
	g := randomGame(t, rng.New(621), 20, 24, 8)
	res, err := CGBA(g, CGBAConfig{Shortlist: 4, TrackObjective: true}, rng.New(622))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ObjectiveTrace) != res.Iterations+1 {
		t.Fatalf("trace length %d, want %d", len(res.ObjectiveTrace), res.Iterations+1)
	}
	if math.Float64bits(res.ObjectiveTrace[len(res.ObjectiveTrace)-1]) != math.Float64bits(res.Objective) {
		t.Error("trace tail differs from the final objective")
	}
}

// TestCGBAPrunedMutationMatchesFreshBuild: shortlists are keyed on the
// game's weight generation, so a churned game must solve exactly like a
// fresh build of the same content — through the same reused engine that
// solved (and cached shortlists for) the pre-churn game.
func TestCGBAPrunedMutationMatchesFreshBuild(t *testing.T) {
	src := rng.New(631)
	weights := make([]float64, 8)
	for r := range weights {
		weights[r] = src.Uniform(0.5, 2)
	}
	strats := randomStrategies(src, 12, 24, len(weights))
	news := randomStrategies(src, 3, 24, len(weights))

	b := NewBuilder()
	g := streamInto(t, b, weights, strats)
	e := NewEngine(g)
	cfg := CGBAConfig{Shortlist: 6}
	if _, err := e.CGBA(cfg, rng.New(632)); err != nil {
		t.Fatal(err)
	}

	// Churn: drop players 2 and 7, append three new ones.
	m := b.BeginMutation()
	var want [][][]Use
	for i := range strats {
		if i == 2 || i == 7 {
			continue
		}
		m.KeepPlayer(i)
		want = append(want, strats[i])
	}
	for _, p := range news {
		m.NextPlayer()
		for _, strat := range p {
			m.NextStrategy()
			for _, u := range strat {
				m.AddUse(u.Resource, u.Weight)
			}
		}
		want = append(want, p)
	}
	e.PrepareMutation(m.Removed())
	g2, err := m.Commit()
	if err != nil {
		t.Fatal(err)
	}
	e.ApplyMutation(g2, m.Remap(), nil)

	got, err := e.CGBA(cfg, rng.New(633))
	if err != nil {
		t.Fatal(err)
	}
	fresh := streamInto(t, NewBuilder(), weights, want)
	wantRes, err := CGBA(fresh, cfg, rng.New(633))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "churned vs fresh", got, wantRes)
	if !g2.IsEquilibrium(got.Profile, 0) {
		t.Fatal("post-churn pruned result is not an equilibrium")
	}
}

// TestCGBAPrunedReweightInvalidatesShortlists: SetResourceWeight advances
// the weight generation, so a reused engine must rebuild its shortlist
// ranking and solve exactly like a fresh build with the new weights —
// even when the reweight inverts the ranking the stale tables encoded.
func TestCGBAPrunedReweightInvalidatesShortlists(t *testing.T) {
	src := rng.New(641)
	weights := []float64{1.0, 1.1, 0.9, 1.2, 1.05, 0.95}
	strats := randomStrategies(src, 15, 24, len(weights))
	g, err := New(weights, strats)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	cfg := CGBAConfig{Shortlist: 4}
	before, err := e.CGBA(cfg, rng.New(642))
	if err != nil {
		t.Fatal(err)
	}

	// Invert the weight landscape: formerly cheap resources become 50x
	// more expensive, so stale shortlists would steer into congestion.
	newWeights := []float64{50, 1.1, 45, 1.2, 55, 0.95}
	for r, w := range newWeights {
		if err := g.SetResourceWeight(r, w); err != nil {
			t.Fatal(err)
		}
	}
	got, err := e.CGBA(cfg, rng.New(643))
	if err != nil {
		t.Fatal(err)
	}
	freshG, err := New(newWeights, strats)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := CGBA(freshG, cfg, rng.New(643))
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "reweighted vs fresh", got, wantRes)
	if reflect.DeepEqual(got.Profile, before.Profile) && got.Iterations == before.Iterations {
		t.Log("note: reweight left the equilibrium unchanged (legal but suspicious)")
	}
	if !freshG.IsEquilibrium(got.Profile, 0) {
		t.Fatal("post-reweight pruned result is not an equilibrium of the reweighted game")
	}
}

// TestResizeShrinkGrowZeroesTail pins the make-parity semantics of the
// recycled-slice helpers: a shrink-then-grow cycle (population churn)
// must hand back zeroed tail slots, never stale strategy indices or
// dirty bits from an earlier, larger binding.
func TestResizeShrinkGrowZeroesTail(t *testing.T) {
	p := Profile{7, 8, 9, 6}
	p = resizeProfile(p, 2)
	p = resizeProfile(p, 4)
	if len(p) != 4 || p[0] != 7 || p[1] != 8 {
		t.Fatalf("resizeProfile clobbered live slots: %v", p)
	}
	if p[2] != 0 || p[3] != 0 {
		t.Fatalf("resizeProfile resurfaced stale tail slots: %v", p)
	}
	b := []bool{true, true, true, true}
	b = resizeBool(b, 1)
	b = resizeBool(b, 3)
	if len(b) != 3 || !b[0] {
		t.Fatalf("resizeBool clobbered live slots: %v", b)
	}
	if b[1] || b[2] {
		t.Fatalf("resizeBool resurfaced stale tail slots: %v", b)
	}
	// Growth past capacity allocates fresh (and therefore zero) storage.
	p = resizeProfile(p, 100)
	for i := 4; i < 100; i++ {
		if p[i] != 0 {
			t.Fatalf("resizeProfile slot %d not zeroed on realloc", i)
		}
	}
}

// TestBindPoisonsProfile: Bind must leave a profile that Game.Valid
// rejects, so PrepareMutation's "has been solved" proxy cannot be fooled
// by a recycled profile that happens to be valid for the new game.
func TestBindPoisonsProfile(t *testing.T) {
	gA := randomGame(t, rng.New(651), 6, 4, 5)
	e := NewEngine(gA)
	e.ResetRandom(rng.New(652))
	if !gA.Valid(e.Profile()) {
		t.Fatal("solved profile should be valid")
	}
	// Same shape: without poisoning, the recycled profile would be valid
	// for gB too and PrepareMutation would carry garbage loads.
	gB := randomGame(t, rng.New(653), 6, 4, 5)
	e.Bind(gB)
	if gB.Valid(e.Profile()) {
		t.Fatal("recycled profile still valid after Bind")
	}
	e.PrepareMutation(nil)
	if e.mutOK {
		t.Fatal("PrepareMutation trusted an unsolved engine after Bind")
	}
}

// TestChurnShrinkGrowMatchesFreshBuild drives the full shrink-then-grow
// churn cycle through one reused engine — the buffer-recycling pattern
// the resize zeroing protects — and requires every post-churn solve to
// match a fresh build of the same content bit-for-bit.
func TestChurnShrinkGrowMatchesFreshBuild(t *testing.T) {
	src := rng.New(661)
	weights := make([]float64, 6)
	for r := range weights {
		weights[r] = src.Uniform(0.5, 2)
	}
	strats := randomStrategies(src, 10, 3, len(weights))
	extra := randomStrategies(src, 5, 3, len(weights))

	b := NewBuilder()
	g := streamInto(t, b, weights, strats)
	e := NewEngine(g)
	for _, cfg := range []CGBAConfig{{}, {Shortlist: 2}} {
		if _, err := e.CGBA(cfg, rng.New(662)); err != nil {
			t.Fatal(err)
		}

		// Shrink: keep only players 0..2.
		m := b.BeginMutation()
		for i := 0; i < 3; i++ {
			m.KeepPlayer(i)
		}
		e.PrepareMutation(m.Removed())
		g2, err := m.Commit()
		if err != nil {
			t.Fatal(err)
		}
		e.ApplyMutation(g2, m.Remap(), nil)
		small, err := e.CGBA(cfg, rng.New(663))
		if err != nil {
			t.Fatal(err)
		}
		wantSmall, err := CGBA(streamInto(t, NewBuilder(), weights, strats[:3]), cfg, rng.New(663))
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "shrunk vs fresh", small, wantSmall)

		// Grow back to 8 players (within the recycled buffers' capacity),
		// so the resize path reuses tails written by the 10-player binding.
		m = b.BeginMutation()
		for i := 0; i < 3; i++ {
			m.KeepPlayer(i)
		}
		grown := append(append([][][]Use(nil), strats[:3]...), extra...)
		for _, p := range extra {
			m.NextPlayer()
			for _, strat := range p {
				m.NextStrategy()
				for _, u := range strat {
					m.AddUse(u.Resource, u.Weight)
				}
			}
		}
		e.PrepareMutation(m.Removed())
		g3, err := m.Commit()
		if err != nil {
			t.Fatal(err)
		}
		e.ApplyMutation(g3, m.Remap(), nil)
		big, err := e.CGBA(cfg, rng.New(664))
		if err != nil {
			t.Fatal(err)
		}
		wantBig, err := CGBA(streamInto(t, NewBuilder(), weights, grown), cfg, rng.New(664))
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, "regrown vs fresh", big, wantBig)

		// Restore the 10-player arena for the next config's round.
		g = streamInto(t, b, weights, strats)
		e.Bind(g)
	}
}

// FuzzIncrementalBestResponseEquivalence fuzzes the fast path's whole
// equivalence contract: for arbitrary games, widths, and tolerances the
// pruned solve must return a certified λ-equilibrium of the unpruned
// game, deterministically; and whenever the width covers every strategy
// set it must be bit-identical to the exact path.
func FuzzIncrementalBestResponseEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(4), uint8(0))
	f.Add(int64(42), int64(43), uint8(1), uint8(5))
	f.Add(int64(-7), int64(99), uint8(200), uint8(11))
	f.Fuzz(func(t *testing.T, gameSeed, solveSeed int64, kRaw, lamRaw uint8) {
		gsrc := rng.New(gameSeed)
		players := 2 + gsrc.Intn(12)
		strategies := 2 + gsrc.Intn(22)
		resources := 3 + gsrc.Intn(8)
		g := randomGame(t, gsrc, players, strategies, resources)
		k := 1 + int(kRaw)%(strategies+4) // sometimes covering, mostly pruning
		lambda := float64(lamRaw%12) / 100
		cfg := CGBAConfig{Lambda: lambda, Shortlist: k}

		res, err := CGBA(g, cfg, rng.New(solveSeed))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsEquilibrium(res.Profile, lambda) {
			t.Fatalf("k=%d λ=%v: result is not a certified equilibrium of the unpruned game", k, lambda)
		}
		again, err := CGBA(g, cfg, rng.New(solveSeed))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(again.Objective) != math.Float64bits(res.Objective) ||
			again.Iterations != res.Iterations || !reflect.DeepEqual(again.Profile, res.Profile) {
			t.Fatalf("k=%d λ=%v: non-deterministic result", k, lambda)
		}
		if k >= g.maxStrategyCount() {
			exact, err := CGBA(g, CGBAConfig{Lambda: lambda, Shortlist: ShortlistFull}, rng.New(solveSeed))
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(exact.Objective) != math.Float64bits(res.Objective) ||
				exact.Iterations != res.Iterations || !reflect.DeepEqual(exact.Profile, res.Profile) {
				t.Fatalf("k=%d covers every strategy set but diverged from the exact path", k)
			}
		}
	})
}
