// Sharded best-response scoring: the parallel half of the Engine.
//
// CGBA's full-scan pivots (max-improvement, random) refresh every
// player's cached cost and best response each iteration before a serial
// argmin/collection pass. The refreshes are independent — player i's
// recomputation reads the game arena and the shared loads and writes
// only player i's cache slots — so they shard across a par.Pool:
//
//	phase 1 (parallel): each shard refreshes its Span of players via
//	  refreshShared, a read-only-on-shared-state twin of refresh, and
//	  tallies hits/misses into its own shardTallies slot;
//	phase 2 (serial):   the pivot scan walks players 0..n−1 in index
//	  order reading the now-fresh caches (dissatisfiedCached), exactly
//	  the comparisons the serial scan performs.
//
// Equivalence is bit-exact: refreshShared evaluates the same floating-
// point expressions in the same order as refresh (see its comment), the
// phase-2 reduction order equals the serial scan order, no RNG is drawn
// in phase 1, and the per-shard tallies merge in shard order so even the
// observability counters match serial runs. The pool-matrix tests in
// engine_par_test.go enforce all of this.
package game

import (
	"math"

	"eotora/internal/par"
)

// parRefreshMinPlayers gates the parallel refresh: below this many
// players a region's wake/join overhead outweighs the scan. Correctness
// never depends on the gate — it is a pure perf threshold.
const parRefreshMinPlayers = 32

// SetPool attaches a worker pool for sharded best-response scoring
// (nil detaches it — the default, fully serial). The pool only changes
// where refreshes execute, never their results: solves are bit-identical
// for every pool size. The engine must not share a pool region with
// another engine concurrently (one Run at a time per pool).
func (e *Engine) SetPool(p *par.Pool) { e.pool = p }

// refreshTask is the persistent region task (a pointer to it converts to
// par.Task without allocating).
type refreshTask struct {
	e      *Engine
	shards int
}

func (t *refreshTask) Run(shard int) {
	e := t.e
	lo, hi := par.Span(e.g.Players(), t.shards, shard)
	tl := &e.shardTallies[shard]
	for i := lo; i < hi; i++ {
		if !e.dirty[i] {
			tl.hits++
			continue
		}
		tl.misses++
		e.refreshShared(i)
	}
}

// refreshAllParallel brings every player's cache up to date using the
// attached pool, with hit/miss tallies identical to n serial refresh
// calls.
func (e *Engine) refreshAllParallel() {
	n := e.g.Players()
	shards := e.pool.Size()
	if shards > n {
		shards = n
	}
	if cap(e.shardTallies) < shards {
		e.shardTallies = make([]engineTallies, shards)
	} else {
		e.shardTallies = e.shardTallies[:shards]
		for s := range e.shardTallies {
			e.shardTallies[s] = engineTallies{}
		}
	}
	e.refreshT.e = e
	e.refreshT.shards = shards
	e.pool.Run(shards, &e.refreshT)
	for s := range e.shardTallies {
		e.tally.hits += e.shardTallies[s].hits
		e.tally.misses += e.shardTallies[s].misses
	}
}

// refreshShared is refresh for concurrent shards: same recomputation,
// but player i's current-strategy contribution is subtracted per
// candidate use instead of being removed from the shared loads in place
// (refresh's approach — a write other shards would observe). Both paths
// evaluate each candidate term as m_r·p_{i,r}·((loads[r]−w_cur)+w) with
// the same operations in the same order, so the cached bits are
// identical; the pool-matrix tests enforce this. Writes touch only
// player i's cache slots (curCost, brCost, brStrat, dirty), which are
// disjoint across shards.
func (e *Engine) refreshShared(i int) {
	g := e.g
	first, last := g.playerStrategies(i)
	cs := first + int32(e.profile[i])
	cur := g.uses[g.useOff[cs]:g.useOff[cs+1]]

	cost := 0.0
	for ci := range cur {
		cost += cur[ci].wm * e.loads[cur[ci].res]
	}
	e.curCost[i] = cost

	base := g.useOff[first]
	uses := g.uses[base:g.useOff[last]]
	offs := g.useOff[first : last+1]
	best, bestCost := -1, math.Inf(1)
	k := 0
	for s := 0; s < len(offs)-1; s++ {
		end := int(offs[s+1] - base)
		c := 0.0
		for ; k < end; k++ {
			u := &uses[k]
			l := e.loads[u.res]
			for ci := range cur {
				if cur[ci].res == u.res {
					l -= cur[ci].w
					break
				}
			}
			c += u.wm * (l + u.w)
		}
		if c < bestCost {
			best, bestCost = s, c
		}
	}
	e.brStrat[i], e.brCost[i] = int32(best), bestCost
	e.dirty[i] = false
}
