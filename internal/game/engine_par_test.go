package game

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"

	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/rng"
)

// testPoolSizes is the pool-size matrix every equivalence test runs:
// size 0 stands for "no pool attached" (the exact pre-pool serial path),
// 1 a pool that degrades to serial, then genuinely parallel sizes.
func testPoolSizes() []int {
	return []int{0, 1, 2, 3, runtime.NumCPU() + 1}
}

func instrumentedEngine(g *Game, reg *obs.Registry) *Engine {
	e := NewEngine(g)
	e.SetInstruments(Instruments{
		CGBASolves:     reg.Counter("cgba.solves"),
		CGBAIterations: reg.Histogram("cgba.iterations"),
		CacheHits:      reg.Counter("engine.cache_hits"),
		CacheMisses:    reg.Counter("engine.cache_miss"),
		Moves:          reg.Counter("engine.moves"),
	})
	return e
}

// TestEngineCGBAPoolMatrix is the core determinism contract: CGBA's
// profile, objective bits, iteration count, RNG draw sequence, and even
// its cache-hit/miss/move tallies are identical for every pool size.
func TestEngineCGBAPoolMatrix(t *testing.T) {
	configs := []CGBAConfig{
		{},                   // max-improvement, λ=0
		{Lambda: 0.1},        // max-improvement, λ>0
		{Pivot: PivotRandom}, // draws from src: trajectory must match
		{Pivot: PivotRoundRobin},
		{Pivot: PivotRandom, Lambda: 0.05},
	}
	shapes := []struct{ players, strategies, resources int }{
		{parRefreshMinPlayers - 2, 5, 11}, // below the gate: serial fallback
		{parRefreshMinPlayers + 1, 5, 11}, // just above
		{80, 7, 23},                       // comfortably parallel
	}
	for gi, shape := range shapes {
		for ci, cfg := range configs {
			t.Run(fmt.Sprintf("shape%d/cfg%d", gi, ci), func(t *testing.T) {
				buildGame := func() *Game {
					return randomGame(t, rng.New(int64(100+gi)), shape.players, shape.strategies, shape.resources)
				}
				serialReg := obs.New()
				serial := instrumentedEngine(buildGame(), serialReg)
				want, err := serial.CGBA(cfg, rng.New(int64(7+ci)))
				if err != nil {
					t.Fatal(err)
				}
				wantSnap := serialReg.Snapshot()

				for _, size := range testPoolSizes()[1:] {
					pool := par.New(size)
					reg := obs.New()
					e := instrumentedEngine(buildGame(), reg)
					e.SetPool(pool)
					got, err := e.CGBA(cfg, rng.New(int64(7+ci)))
					pool.Close()
					if err != nil {
						t.Fatalf("pool %d: %v", size, err)
					}
					if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
						t.Errorf("pool %d: objective bits %#x, want %#x",
							size, math.Float64bits(got.Objective), math.Float64bits(want.Objective))
					}
					if got.Iterations != want.Iterations {
						t.Errorf("pool %d: iterations %d, want %d", size, got.Iterations, want.Iterations)
					}
					if !reflect.DeepEqual(got.Profile, want.Profile) {
						t.Errorf("pool %d: profile diverged", size)
					}
					snap := reg.Snapshot()
					if !reflect.DeepEqual(snap.Counters, wantSnap.Counters) {
						t.Errorf("pool %d: tallies %v, want %v", size, snap.Counters, wantSnap.Counters)
					}
					if !reflect.DeepEqual(snap.Histograms, wantSnap.Histograms) {
						t.Errorf("pool %d: histograms diverged", size)
					}
				}
			})
		}
	}
}

// TestEngineCGBAPoolReuse runs several solves on one pooled engine
// (random restarts, as BDMA rounds do) and checks each against a fresh
// serial engine fed the same RNG stream.
func TestEngineCGBAPoolReuse(t *testing.T) {
	pool := par.New(3)
	defer pool.Close()
	g := randomGame(t, rng.New(5), 64, 6, 17)
	e := NewEngine(g)
	e.SetPool(pool)
	srcPar, srcSerial := rng.New(91), rng.New(91)
	for round := 0; round < 5; round++ {
		got, err := e.CGBA(CGBAConfig{}, srcPar)
		if err != nil {
			t.Fatal(err)
		}
		want, err := NewEngine(randomGame(t, rng.New(5), 64, 6, 17)).CGBA(CGBAConfig{}, srcSerial)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) ||
			got.Iterations != want.Iterations || !reflect.DeepEqual(got.Profile, want.Profile) {
			t.Fatalf("round %d diverged: got (%v, %d), want (%v, %d)",
				round, got.Objective, got.Iterations, want.Objective, want.Iterations)
		}
	}
}

// TestRefreshSharedMatchesRefresh drives the two refresh variants over
// random move sequences and demands bit-identical caches.
func TestRefreshSharedMatchesRefresh(t *testing.T) {
	src := rng.New(31)
	g := randomGame(t, src, 40, 6, 13)
	a, b := NewEngine(g), NewEngine(g)
	a.ResetRandom(rng.New(8))
	b.ResetRandom(rng.New(8))
	moves := rng.New(9)
	for step := 0; step < 200; step++ {
		i := moves.Intn(g.Players())
		s := moves.Intn(g.StrategyCount(i))
		a.move(i, s)
		b.move(i, s)
		for j := 0; j < g.Players(); j++ {
			if b.dirty[j] {
				b.refreshShared(j)
			}
		}
		for j := 0; j < g.Players(); j++ {
			a.refresh(j)
			if math.Float64bits(a.curCost[j]) != math.Float64bits(b.curCost[j]) ||
				math.Float64bits(a.brCost[j]) != math.Float64bits(b.brCost[j]) ||
				a.brStrat[j] != b.brStrat[j] {
				t.Fatalf("step %d player %d: refresh (%v, %v, %d) vs refreshShared (%v, %v, %d)",
					step, j, a.curCost[j], a.brCost[j], a.brStrat[j],
					b.curCost[j], b.brCost[j], b.brStrat[j])
			}
		}
	}
}
