// Sharded slot solve: per-cluster games in parallel plus serial boundary
// reconciliation (DESIGN.md §13).
//
// The congestion game couples players only through shared resources, so
// a topology whose resources split into disjoint clusters factorizes the
// game: players whose every strategy stays inside one cluster (interior
// players) interact only with each other, and the few players whose
// strategy sets span clusters (boundary players) are the sole coupling.
// A ShardPlan declares that factorization; Engine.CGBASharded exploits
// it with an outer reconciliation loop:
//
//	round:
//	 1. parallel  — each shard runs pruned Gauss–Seidel sweeps (the PR 6
//	    fast path, per-shard drift accounting) over its interior players
//	    to a locally certified full-width quiescence, with boundary
//	    players' load contributions frozen;
//	 2. serial    — full-width Gauss–Seidel sweeps over the boundary
//	    players against the shards' congestion sums, until quiet;
//	 3. serial    — a full-width certification sweep over every player
//	    with the exact path's arithmetic (refresh); only a quiet sweep
//	    terminates the solve, so the result is a certified λ-equilibrium
//	    of the *global, unpruned* game — sharding, like the shortlist, is
//	    a heuristic for speed, never for correctness.
//
// Determinism and pool-invariance: shards touch disjoint state (their
// players' profile entries and slack slots, their clusters' loads), draw
// no RNG, and merge tallies in shard order, so the result is identical
// at every pool size; phases 2 and 3 are serial. Wall-clock deadlines
// are polled inside shard sweeps against a read-only snapshot
// (solver.Deadline.ExpireTime) so a shard that blows the budget degrades
// alone — it stops moving its own players and the slot still commits a
// feasible global profile; counted checkpoints are consumed only at
// serial boundaries, keeping deterministic budgets pool-invariant.
package game

import (
	"fmt"
	"math"
	"time"

	"eotora/internal/rng"
)

// ShardPlan assigns each player of a game to a shard or to the boundary
// set. Interior players of one shard must use only resources no other
// shard's interior players use (CGBASharded verifies this before its
// first parallel region); boundary players may use anything. Plans are
// built by the caller — core derives them from a topology partition
// (internal/shard) — and are reusable across solves and, via Reset,
// across churn.
type ShardPlan struct {
	shards int
	player []int32 // player → shard, −1 = boundary

	// Compiled CSR: shard s's interior players are
	// order[off[s]:off[s+1]], ascending; boundary players ascending.
	order    []int32
	off      []int32
	boundary []int32

	// Disjointness-check memo: the game and structure generation the plan
	// was last verified against, plus the resource→shard scratch.
	checkedGame *Game
	checkedGen  uint64
	resShard    []int32
}

// NewShardPlan returns a plan assigning player i to shard player[i]
// (−1 = boundary). See Reset for validation rules.
func NewShardPlan(shards int, player []int32) (*ShardPlan, error) {
	p := &ShardPlan{}
	if err := p.Reset(shards, player); err != nil {
		return nil, err
	}
	return p, nil
}

// Reset refills the plan in place (the churn path — no reallocation when
// capacities suffice). shards must be at least 1 and every entry of
// player must lie in [−1, shards). The player slice is copied.
func (p *ShardPlan) Reset(shards int, player []int32) error {
	if shards < 1 {
		return fmt.Errorf("game: shard plan needs at least 1 shard, got %d", shards)
	}
	for i, s := range player {
		if s < -1 || int(s) >= shards {
			return fmt.Errorf("game: player %d assigned to shard %d outside [-1, %d)", i, s, shards)
		}
	}
	p.shards = shards
	p.player = append(p.player[:0], player...)
	p.checkedGame, p.checkedGen = nil, 0

	// Counting sort into the CSR (stable: players ascending per shard).
	p.off = resizeInt32(p.off, shards+1)
	for s := range p.off {
		p.off[s] = 0
	}
	p.boundary = p.boundary[:0]
	for _, s := range player {
		if s >= 0 {
			p.off[s+1]++
		}
	}
	for s := 0; s < shards; s++ {
		p.off[s+1] += p.off[s]
	}
	p.order = resizeInt32(p.order, int(p.off[shards]))
	cursor := append([]int32(nil), p.off[:shards]...)
	if cap(p.resShard) >= shards {
		cursor = p.resShard[:0] // borrow scratch to avoid the alloc
		cursor = append(cursor, p.off[:shards]...)
	}
	for i, s := range player {
		if s < 0 {
			p.boundary = append(p.boundary, int32(i))
			continue
		}
		p.order[cursor[s]] = int32(i)
		cursor[s]++
	}
	return nil
}

// Shards returns the number of shards in the plan.
func (p *ShardPlan) Shards() int {
	if p == nil {
		return 0
	}
	return p.shards
}

// Players returns the number of players the plan covers.
func (p *ShardPlan) Players() int { return len(p.player) }

// Boundary returns how many players are in the boundary set.
func (p *ShardPlan) Boundary() int { return len(p.boundary) }

// check verifies the plan against the bound game: the player count must
// match, and interior players' resources must be disjoint across shards
// (the property that makes the parallel region race-free). The result is
// memoized per game structure generation — one arena pass per build or
// churn, not per solve.
func (p *ShardPlan) check(g *Game) error {
	if len(p.player) != g.Players() {
		return fmt.Errorf("game: shard plan covers %d players, game has %d", len(p.player), g.Players())
	}
	if p.checkedGame == g && p.checkedGen == g.structGen {
		return nil
	}
	p.resShard = resizeInt32(p.resShard, g.Resources())
	for r := range p.resShard {
		p.resShard[r] = -1
	}
	for i, s := range p.player {
		if s < 0 {
			continue
		}
		first, last := g.playerStrategies(i)
		for _, u := range g.uses[g.useOff[first]:g.useOff[last]] {
			switch p.resShard[u.res] {
			case -1:
				p.resShard[u.res] = s
			case s:
			default:
				return fmt.Errorf("game: resource %d used by interior players of shards %d and %d — plan is not resource-disjoint",
					u.res, p.resShard[u.res], s)
			}
		}
	}
	p.checkedGame, p.checkedGen = g, g.structGen
	return nil
}

// shardSolve is one shard's private solve state for a parallel region:
// scratch the sweeps need (sweepScore's in-place removal save slots),
// the shard's drift accumulator, and its tallies, merged in shard order
// after the region.
type shardSolve struct {
	saveRes   []int32
	saveLoad  []float64
	drift     float64
	moves     int64
	hits      int64
	misses    int64
	truncated bool
	overrun   bool
}

// shardSweepTask is the persistent parallel-region task (a pointer to it
// converts to par.Task without allocating).
type shardSweepTask struct {
	e      *Engine
	plan   *ShardPlan
	lambda float64
	budget int64 // per-shard move cap for this region
	expire time.Time
	timed  bool
}

// Run solves shard sIdx's interior game to a locally certified
// quiescence: pruned sweeps with per-shard drift-bound skipping, then a
// full-width sweep; only a quiet full-width sweep ends the shard's
// region (mirroring cgbaPruned, restricted to the shard's players).
func (t *shardSweepTask) Run(sIdx int) {
	e := t.e
	f := &e.fast
	ss := &e.shardSlv[sIdx]
	players := t.plan.order[t.plan.off[sIdx]:t.plan.off[sIdx+1]]

	full := false
	for {
		moved := false
		for idx, pi := range players {
			i := int(pi)
			// Wall-clock-only poll against the pre-region snapshot: no
			// shared deadline state is touched, and a blown budget stops
			// this shard alone.
			if idx&fastSweepCheckMask == 0 && t.timed && !time.Now().Before(t.expire) {
				ss.truncated = true
				return
			}
			// Drift-bound skip against the *shard's* drift: moves in other
			// shards cannot touch this shard's resources, so they never
			// invalidate the bound — the isolation that makes metro-scale
			// sweeps cheap even on one core.
			if !full && f.slack[i] >= 0 && 2*f.rho[i]*(ss.drift-f.lastD[i]) < f.slack[i] {
				ss.hits++
				continue
			}
			cur, br, brCost := e.shardSweepScore(i, full, ss)
			ss.misses++
			if (1-t.lambda)*cur > brCost+relEps*(cur+1) {
				e.shardMove(i, int(br), ss)
				f.slack[i], f.lastD[i] = 0, ss.drift
				moved = true
				if ss.moves >= t.budget {
					ss.overrun = true
					return
				}
			} else {
				f.slack[i] = brCost + relEps*(cur+1) - (1-t.lambda)*cur
				f.lastD[i] = ss.drift
			}
		}
		if moved {
			full = false
			continue
		}
		if full {
			return // quiet full-width sweep: locally converged
		}
		full = true
	}
}

// shardSweepScore is sweepScore with the save scratch taken from the
// shard's private state instead of the engine's shared buffers — the
// only change; the arithmetic is identical. The in-place load removal
// touches only the shard's own resources (guaranteed by ShardPlan.check)
// and is restored before returning.
func (e *Engine) shardSweepScore(i int, full bool, ss *shardSolve) (cur float64, best int32, bestCost float64) {
	g := e.g
	first, last := g.playerStrategies(i)
	cs := first + int32(e.profile[i])

	cur = 0.0
	for _, u := range g.uses[g.useOff[cs]:g.useOff[cs+1]] {
		cur += u.wm * e.loads[u.res]
	}

	saved := 0
	for _, u := range g.uses[g.useOff[cs]:g.useOff[cs+1]] {
		ss.saveRes[saved] = int32(u.res)
		ss.saveLoad[saved] = e.loads[u.res]
		saved++
		e.loads[u.res] -= u.w
	}

	best, bestCost = -1, math.Inf(1)
	if full {
		base := g.useOff[first]
		uses := g.uses[base:g.useOff[last]]
		offs := g.useOff[first : last+1]
		k := 0
		for s := 0; s < len(offs)-1; s++ {
			end := int(offs[s+1] - base)
			c := 0.0
			for ; k < end; k++ {
				u := &uses[k]
				c += u.wm * (e.loads[u.res] + u.w)
			}
			if c < bestCost {
				best, bestCost = int32(s), c
			}
		}
	} else {
		f := &e.fast
		lo, hi := f.slOff[i], f.slOff[i+1]
		k := f.slUseOff[lo]
		for en := lo; en < hi; en++ {
			end := f.slUseOff[en+1]
			c := 0.0
			for ; k < end; k++ {
				u := &f.slUses[k]
				c += u.wm * (e.loads[u.res] + u.w)
			}
			if c < bestCost {
				best, bestCost = f.slStrat[en], c
			}
		}
	}

	for k := 0; k < saved; k++ {
		e.loads[ss.saveRes[k]] = ss.saveLoad[k]
	}
	return cur, best, bestCost
}

// shardMove is fastMove with the move count and drift accumulated into
// the shard's private state.
func (e *Engine) shardMove(i, s int, ss *shardSolve) {
	ss.moves++
	g := e.g
	drift := 0.0
	for _, u := range g.strategyUses(i, e.profile[i]) {
		e.loads[u.res] -= u.w
		drift += u.w
	}
	e.profile[i] = s
	for _, u := range g.strategyUses(i, s) {
		e.loads[u.res] += u.w
		drift += u.w
	}
	ss.drift += drift
}

// CGBASharded runs CGBA factorized by the plan: parallel per-shard
// interior solves, serial boundary reconciliation, and a serial global
// certification sweep that alone may terminate the solve. The returned
// profile is a certified λ-equilibrium of the global unpruned game —
// the same guarantee Engine.CGBA provides — and the result is identical
// at every pool size. A nil or single-shard plan delegates to CGBA
// outright (bit-identical to the unsharded path by construction), as do
// configurations the sharded loop does not model: non-default pivots
// (its dynamics are Gauss–Seidel, the shortlist path's rule) and
// per-move objective tracking.
func (e *Engine) CGBASharded(cfg CGBAConfig, plan *ShardPlan, src *rng.Source) (Result, error) {
	if plan == nil || plan.Shards() <= 1 {
		return e.CGBA(cfg, src)
	}
	if cfg.Pivot != PivotMaxImprovement || cfg.TrackObjective {
		return e.CGBA(cfg, src)
	}
	if cfg.Lambda < 0 || cfg.Lambda >= 0.125 {
		return Result{}, fmt.Errorf("game: λ = %v outside [0, 0.125)", cfg.Lambda)
	}
	g := e.g
	n := g.Players()
	if err := plan.check(g); err != nil {
		return Result{}, err
	}

	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 200*n + 10000
	}

	// Shortlists drive the pruned shard sweeps; an exact-width request
	// (ShortlistFull) widens them to cover every strategy set, which makes
	// the pruned scan the exact argmin in index order.
	k := effectiveShortlist(cfg.Shortlist)
	if k == 0 || k > g.maxStrategyCount() {
		k = g.maxStrategyCount()
	}
	f := &e.fast
	if f.game != g || f.wgen != g.weightGen || f.k != k {
		e.rebuildShortlists(k)
	}

	if cfg.Initial != nil {
		if err := e.Reset(cfg.Initial); err != nil {
			return Result{}, err
		}
	} else {
		// Same deterministic, RNG-free seed as the pruned path.
		e.greedyFill()
	}

	f.slack = resizeFloat(f.slack, n)
	f.lastD = resizeFloat(f.lastD, n)

	shards := plan.shards
	if cap(e.shardSlv) < shards {
		e.shardSlv = make([]shardSolve, shards)
	} else {
		e.shardSlv = e.shardSlv[:shards]
	}

	moves := 0
	result := func(truncated bool) Result {
		return Result{
			Profile:    e.profile.Clone(),
			Objective:  g.SocialCost(e.profile),
			Iterations: moves,
			Truncated:  truncated,
		}
	}

	for {
		// Serial checkpoint once per round: the counted budget is consumed
		// at the same points regardless of pool size.
		if e.deadline.Expired() {
			e.invalidateAll()
			e.recordCGBA(moves)
			return result(true), nil
		}

		// Phase 1 — parallel interior solves. Slack state restarts each
		// round: boundary and certification moves since the last region
		// are not in any shard's drift accumulator, so stale bounds could
		// wrongly skip; a reset is cheap and safe.
		for i := range f.slack {
			f.slack[i] = -1
		}
		expire, timed := e.deadline.ExpireTime()
		for s := range e.shardSlv {
			e.shardSlv[s] = shardSolve{
				saveRes:  resizeInt32(e.shardSlv[s].saveRes, g.maxUses),
				saveLoad: resizeFloat(e.shardSlv[s].saveLoad, g.maxUses),
			}
		}
		e.shardT = shardSweepTask{
			e:      e,
			plan:   plan,
			lambda: cfg.Lambda,
			budget: int64(maxIter - moves),
			expire: expire,
			timed:  timed,
		}
		e.pool.Run(shards, &e.shardT)
		overrun := false
		for s := range e.shardSlv {
			ss := &e.shardSlv[s]
			moves += int(ss.moves)
			e.tally.moves += ss.moves
			e.tally.hits += ss.hits
			e.tally.misses += ss.misses
			overrun = overrun || ss.overrun
		}
		if overrun || moves >= maxIter {
			e.invalidateAll()
			e.recordCGBA(moves)
			return result(false), ErrNoConverge
		}

		// Phase 2 — serial boundary reconciliation: full-width sweeps over
		// the boundary players against the shards' frozen congestion sums,
		// until a quiet pass.
		for {
			moved := false
			for idx, pi := range plan.boundary {
				i := int(pi)
				if idx&fastSweepCheckMask == 0 && e.deadline.Expired() {
					e.invalidateAll()
					e.recordCGBA(moves)
					return result(true), nil
				}
				cur, br, brCost := e.sweepScore(i, true)
				e.tally.misses++
				if (1-cfg.Lambda)*cur > brCost+relEps*(cur+1) {
					e.fastMove(i, int(br))
					moves++
					moved = true
					if moves >= maxIter {
						e.invalidateAll()
						e.recordCGBA(moves)
						return result(false), ErrNoConverge
					}
				}
			}
			if !moved {
				break
			}
		}

		// Phase 3 — serial global certification with the exact path's
		// refresh arithmetic. A quiet sweep proves every player (interior
		// and boundary) is within λ of its true best response — a
		// certified λ-equilibrium of the global game — and leaves the
		// caches fully consistent. Any move sends the solve into another
		// round: the sharded decomposition converges because every phase
		// only ever applies λ-improving moves to the one global potential.
		e.invalidateAll()
		moved := false
		for i := 0; i < n; i++ {
			if i&fastSweepCheckMask == 0 && e.deadline.Expired() {
				e.invalidateAll()
				e.recordCGBA(moves)
				return result(true), nil
			}
			if s, _, ok := e.dissatisfied(i, cfg.Lambda); ok {
				e.move(i, s)
				moves++
				moved = true
				if moves >= maxIter {
					e.invalidateAll()
					e.recordCGBA(moves)
					return result(false), ErrNoConverge
				}
			}
		}
		if !moved {
			e.recordCGBA(moves)
			return result(false), nil
		}
	}
}
