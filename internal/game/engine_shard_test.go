package game

import (
	"math"
	"reflect"
	"testing"

	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/solver"
)

// clusteredGame builds a game whose resources split into `clusters`
// disjoint blocks of resPerCluster resources: every interior player's
// strategies stay inside its cluster's block, and `boundary` players
// have strategies spanning several blocks. Returns the game and the
// player → shard assignment (−1 = boundary) for a one-shard-per-cluster
// plan. Players are interleaved across clusters so the plan's CSR
// compilation is exercised on a non-contiguous assignment.
func clusteredGame(t testing.TB, src *rng.Source, clusters, perCluster, boundary, strategies, resPerCluster int) (*Game, []int32) {
	t.Helper()
	if resPerCluster < 3 {
		t.Fatal("clusteredGame needs at least 3 resources per cluster")
	}
	resources := clusters * resPerCluster
	weights := make([]float64, resources)
	for r := range weights {
		weights[r] = src.Uniform(0.5, 2)
	}
	n := clusters*perCluster + boundary
	strats := make([][][]Use, n)
	assign := make([]int32, n)
	blockStrategies := func(block int) [][]Use {
		base := block * resPerCluster
		out := make([][]Use, 0, strategies)
		for s := 0; s < strategies; s++ {
			perm := src.Perm(resPerCluster)
			out = append(out, []Use{
				{Resource: base + perm[0], Weight: src.Uniform(0.2, 3)},
				{Resource: base + perm[1], Weight: src.Uniform(0.2, 3)},
				{Resource: base + perm[2], Weight: src.Uniform(0.2, 3)},
			})
		}
		return out
	}
	for i := 0; i < clusters*perCluster; i++ {
		c := i % clusters // interleaved
		assign[i] = int32(c)
		strats[i] = blockStrategies(c)
	}
	for i := clusters * perCluster; i < n; i++ {
		assign[i] = -1
		var all [][]Use
		// One strategy batch per block: the boundary player genuinely
		// couples every cluster.
		for c := 0; c < clusters; c++ {
			all = append(all, blockStrategies(c)...)
		}
		strats[i] = all
	}
	g, err := New(weights, strats)
	if err != nil {
		t.Fatal(err)
	}
	return g, assign
}

func runCGBASharded(t testing.TB, g *Game, cfg CGBAConfig, plan *ShardPlan, seed int64, size int) Result {
	t.Helper()
	e := NewEngine(g)
	if size > 0 {
		pool := par.New(size)
		defer pool.Close()
		e.SetPool(pool)
	}
	res, err := e.CGBASharded(cfg, plan, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestShardPlanValidation(t *testing.T) {
	if _, err := NewShardPlan(0, []int32{0}); err == nil {
		t.Error("0 shards should be rejected")
	}
	if _, err := NewShardPlan(2, []int32{0, 2}); err == nil {
		t.Error("shard index == shards should be rejected")
	}
	if _, err := NewShardPlan(2, []int32{0, -2}); err == nil {
		t.Error("shard index below -1 should be rejected")
	}
	plan, err := NewShardPlan(3, []int32{2, -1, 0, 1, 0, -1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shards() != 3 || plan.Players() != 7 || plan.Boundary() != 2 {
		t.Fatalf("Shards/Players/Boundary = %d/%d/%d, want 3/7/2",
			plan.Shards(), plan.Players(), plan.Boundary())
	}
	// CSR groups interior players by shard, ascending inside each.
	wantOrder := []int32{2, 4, 3, 0, 6}
	if !reflect.DeepEqual(plan.order, wantOrder) {
		t.Errorf("order = %v, want %v", plan.order, wantOrder)
	}
	if !reflect.DeepEqual(plan.boundary, []int32{1, 5}) {
		t.Errorf("boundary = %v, want [1 5]", plan.boundary)
	}
	// Reset reuses the plan for a different assignment.
	if err := plan.Reset(2, []int32{1, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if plan.Shards() != 2 || plan.Players() != 3 || plan.Boundary() != 0 {
		t.Fatalf("after Reset: %d/%d/%d, want 2/3/0", plan.Shards(), plan.Players(), plan.Boundary())
	}
	var nilPlan *ShardPlan
	if nilPlan.Shards() != 0 {
		t.Error("nil plan should report 0 shards")
	}
}

// A plan whose "interior" players actually share resources across shards
// must be rejected before any parallel work touches the loads.
func TestCGBAShardedRejectsNonDisjointPlan(t *testing.T) {
	g := randomGame(t, rng.New(701), 12, 4, 6) // every player roams all 6 resources
	assign := make([]int32, 12)
	for i := range assign {
		assign[i] = int32(i % 2)
	}
	plan, err := NewShardPlan(2, assign)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	if _, err := e.CGBASharded(CGBAConfig{Lambda: 0.01}, plan, rng.New(1)); err == nil {
		t.Fatal("non-disjoint plan should be rejected")
	}
	// Player-count mismatch is rejected too.
	small, err := NewShardPlan(2, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CGBASharded(CGBAConfig{Lambda: 0.01}, small, rng.New(1)); err == nil {
		t.Fatal("player-count mismatch should be rejected")
	}
}

// The sharded solve must return a certified λ-equilibrium of the global
// game, identical at every pool size and on every repeat.
func TestCGBAShardedCertifiedEquilibrium(t *testing.T) {
	for _, tc := range []struct {
		name               string
		shortlist          int
		clusters, boundary int
	}{
		{"pruned", 0, 4, 6},
		{"exact-width", ShortlistFull, 4, 6},
		{"narrow", 4, 3, 5},
		{"no-boundary", 0, 4, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, assign := clusteredGame(t, rng.New(711), tc.clusters, 12, tc.boundary, 8, 6)
			plan, err := NewShardPlan(tc.clusters, assign)
			if err != nil {
				t.Fatal(err)
			}
			cfg := CGBAConfig{Lambda: 0.01, Shortlist: tc.shortlist}
			base := runCGBASharded(t, g, cfg, plan, 1, 0)

			// Certified: the profile is a λ-equilibrium of the unpruned game.
			e := NewEngine(g)
			if err := e.Reset(base.Profile); err != nil {
				t.Fatal(err)
			}
			if !e.IsEquilibrium(cfg.Lambda) {
				t.Fatal("sharded result is not a λ-equilibrium of the global game")
			}
			if math.Float64bits(base.Objective) != math.Float64bits(g.SocialCost(base.Profile)) {
				t.Error("objective does not match the returned profile")
			}

			// Pool-invariant and deterministic.
			for _, size := range []int{1, 2, 4} {
				requireSameResult(t, tc.name, runCGBASharded(t, g, cfg, plan, 1, size), base)
			}
			requireSameResult(t, tc.name+"/repeat", runCGBASharded(t, g, cfg, plan, 1, 0), base)
		})
	}
}

// A nil or single-shard plan must delegate to the unsharded path
// bit-for-bit — the shards=1 half of the equivalence contract.
func TestCGBAShardedSingleShardBitIdentical(t *testing.T) {
	g, assign := clusteredGame(t, rng.New(721), 3, 10, 4, 8, 6)
	for _, shortlist := range []int{0, ShortlistFull} {
		cfg := CGBAConfig{Lambda: 0.01, Shortlist: shortlist}
		want := runCGBAPooled(t, g, cfg, 7, 0)
		one := make([]int32, len(assign))
		plan, err := NewShardPlan(1, one)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{0, 1, 4} {
			requireSameResult(t, "plan=1", runCGBASharded(t, g, cfg, plan, 7, size), want)
			requireSameResult(t, "plan=nil", runCGBASharded(t, g, cfg, nil, 7, size), want)
		}
	}
}

// Warm starts: an initial profile is honored, and the solve still ends
// certified.
func TestCGBAShardedInitialProfile(t *testing.T) {
	g, assign := clusteredGame(t, rng.New(731), 3, 10, 4, 8, 6)
	plan, err := NewShardPlan(3, assign)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CGBAConfig{Lambda: 0.01}
	first := runCGBASharded(t, g, cfg, plan, 1, 0)
	cfg.Initial = first.Profile
	e := NewEngine(g)
	res, err := e.CGBASharded(cfg, plan, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Warm-starting from an equilibrium converges with zero moves.
	if res.Iterations != 0 {
		t.Errorf("warm start from equilibrium made %d moves, want 0", res.Iterations)
	}
	if !reflect.DeepEqual(res.Profile, first.Profile) {
		t.Error("warm start from equilibrium changed the profile")
	}
	cfg.Initial = Profile{0} // wrong length
	if _, err := e.CGBASharded(cfg, plan, rng.New(1)); err == nil {
		t.Error("invalid initial profile should be rejected")
	}
}

// An exhausted counted deadline truncates the sharded solve at a serial
// checkpoint, still returning a feasible profile.
func TestCGBAShardedDeadline(t *testing.T) {
	g, assign := clusteredGame(t, rng.New(741), 3, 12, 4, 8, 6)
	plan, err := NewShardPlan(3, assign)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	var dl solver.Deadline
	dl.Start(0, 1) // one checkpoint: expires at the first round boundary
	e.SetDeadline(&dl)
	res, err := e.CGBASharded(CGBAConfig{Lambda: 0.01}, plan, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("exhausted deadline should truncate")
	}
	if !g.Valid(res.Profile) {
		t.Fatal("truncated result is not a feasible profile")
	}
}

// FuzzShardedEquivalence fuzzes the sharded solve's whole contract: for
// arbitrary clustered games, widths, tolerances, and pool sizes the
// sharded result must be a certified λ-equilibrium of the global
// unpruned game, deterministic, pool-invariant, and — with a one-shard
// plan — bit-identical to the unsharded path.
func FuzzShardedEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(3), uint8(2), uint8(0), uint8(0), uint8(2))
	f.Add(int64(42), int64(43), uint8(2), uint8(0), uint8(4), uint8(5), uint8(1))
	f.Add(int64(-7), int64(99), uint8(5), uint8(6), uint8(19), uint8(11), uint8(4))
	f.Fuzz(func(t *testing.T, gameSeed, solveSeed int64, clustersRaw, boundaryRaw, kRaw, lamRaw, poolRaw uint8) {
		gsrc := rng.New(gameSeed)
		clusters := 2 + int(clustersRaw)%4
		perCluster := 2 + gsrc.Intn(8)
		boundary := int(boundaryRaw) % 5
		strategies := 2 + gsrc.Intn(6)
		g, assign := clusteredGame(t, gsrc, clusters, perCluster, boundary, strategies, 3+gsrc.Intn(4))
		lambda := float64(lamRaw%12) / 100
		shortlist := int(kRaw) % 20 // 0 = default width
		if shortlist == 19 {
			shortlist = ShortlistFull // sometimes the exact path
		}
		cfg := CGBAConfig{Lambda: lambda, Shortlist: shortlist}
		plan, err := NewShardPlan(clusters, assign)
		if err != nil {
			t.Fatal(err)
		}

		res := runCGBASharded(t, g, cfg, plan, solveSeed, 0)
		if !g.IsEquilibrium(res.Profile, lambda) {
			t.Fatalf("clusters=%d boundary=%d k=%d λ=%v: not a certified global equilibrium",
				clusters, boundary, shortlist, lambda)
		}
		size := 1 + int(poolRaw)%4
		requireSameResult(t, "pooled repeat", runCGBASharded(t, g, cfg, plan, solveSeed, size), res)

		// shards=1 must stay bit-identical to the unsharded path.
		planOne, err := NewShardPlan(1, make([]int32, len(assign)))
		if err != nil {
			t.Fatal(err)
		}
		want := runCGBAPooled(t, g, cfg, solveSeed, 0)
		requireSameResult(t, "shards=1", runCGBASharded(t, g, cfg, planOne, solveSeed, 0), want)
	})
}

// Churn: after a structural mutation the plan is re-verified (the memo
// keys on the structure generation), and a stale plan that no longer
// matches the new player count is rejected.
func TestCGBAShardedAfterMutation(t *testing.T) {
	g, assign := clusteredGame(t, rng.New(751), 3, 8, 3, 6, 6)
	plan, err := NewShardPlan(3, assign)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	if _, err := e.CGBASharded(CGBAConfig{Lambda: 0.01}, plan, rng.New(1)); err != nil {
		t.Fatal(err)
	}

	// Rebuild the same content through a Builder to get a fresh game; the
	// plan must be re-checked (different *Game pointer) and still work.
	b := NewBuilder()
	b.Reset(g.Resources())
	copy(b.Weights(), g.weights)
	for i := 0; i < g.Players(); i++ {
		b.NextPlayer()
		for s := 0; s < g.StrategyCount(i); s++ {
			b.NextStrategy()
			for _, u := range g.strategyUses(i, s) {
				b.AddUse(int(u.res), u.w)
			}
		}
	}
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine(g2)
	res2, err := e2.CGBASharded(CGBAConfig{Lambda: 0.01}, plan, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	eq := NewEngine(g2)
	if err := eq.Reset(res2.Profile); err != nil {
		t.Fatal(err)
	}
	if !eq.IsEquilibrium(0.01) {
		t.Error("post-rebuild sharded result is not an equilibrium")
	}
}
