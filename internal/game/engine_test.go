package game

import (
	"math"
	"testing"

	"eotora/internal/rng"
)

// checkEngineAgainstShadow asserts the engine's cached quantities are
// bit-identical to the seed implementation's path: a shadow profile whose
// loads are maintained through Game.applyMove (exactly as the pre-Engine
// CGBA loop did), with costs evaluated by the one-shot Game methods on
// those loads. It also cross-checks against a full from-scratch load
// recomputation within a small relative tolerance (incremental loads
// accumulate in move order, so from-scratch bits may legitimately differ
// in the last ulp — the seed path had the same property).
func checkEngineAgainstShadow(t *testing.T, e *Engine, g *Game, shadow Profile, loads []float64) {
	t.Helper()
	p := e.Profile()
	for i := range p {
		if p[i] != shadow[i] {
			t.Fatalf("profile diverged: engine %v, shadow %v", p, shadow)
		}
	}
	for r, want := range loads {
		if got := e.Loads()[r]; math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("resource %d load: engine %v (bits %#x), shadow %v (bits %#x)",
				r, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	if got, want := e.SocialCost(), g.SocialCost(p); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("social cost: engine %v, recomputed %v", got, want)
	}
	fresh := g.Loads(p)
	for i := range p {
		if got, want := e.PlayerCost(i), g.PlayerCost(shadow, loads, i); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("player %d cost: engine %v, shadow %v", i, got, want)
		}
		gotS, gotC := e.BestResponse(i)
		wantS, wantC := g.bestResponse(shadow, loads, i)
		if gotS != wantS || math.Float64bits(gotC) != math.Float64bits(wantC) {
			t.Fatalf("player %d best response: engine (%d, %v), shadow (%d, %v)", i, gotS, gotC, wantS, wantC)
		}
		// Full recomputation agrees up to accumulation-order rounding.
		if _, fullBR := g.bestResponse(p, fresh, i); math.Abs(gotC-fullBR) > 1e-9*(math.Abs(fullBR)+1) {
			t.Fatalf("player %d: engine best response %v far from recomputed %v", i, gotC, fullBR)
		}
	}
}

// TestEngineMatchesRecomputation drives engines through random move
// sequences and checks every cached quantity against the seed
// implementation's incremental dynamics and against full recomputation —
// the exact-equivalence contract of the incremental solve path.
func TestEngineMatchesRecomputation(t *testing.T) {
	src := rng.New(1001)
	for trial := 0; trial < 20; trial++ {
		players := 2 + src.Intn(10)
		strategies := 1 + src.Intn(6)
		resources := 3 + src.Intn(8)
		g := randomGame(t, src, players, strategies, resources)
		e := NewEngine(g)
		e.ResetRandom(src)
		shadow := e.Profile().Clone()
		loads := g.Loads(shadow)
		checkEngineAgainstShadow(t, e, g, shadow, loads)
		for step := 0; step < 50; step++ {
			i := src.Intn(players)
			s := src.Intn(g.StrategyCount(i))
			if err := e.Move(i, s); err != nil {
				t.Fatal(err)
			}
			g.applyMove(shadow, loads, i, s)
			checkEngineAgainstShadow(t, e, g, shadow, loads)
		}
	}
}

// FuzzEngineEquivalence fuzzes the move-sequence equivalence: arbitrary
// seeds generate a game, a starting profile, and a walk; the engine must
// agree with recomputation at every step.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(42), int64(43))
	f.Add(int64(-7), int64(99))
	f.Fuzz(func(t *testing.T, gameSeed, walkSeed int64) {
		gsrc := rng.New(gameSeed)
		players := 2 + gsrc.Intn(6)
		strategies := 1 + gsrc.Intn(5)
		resources := 3 + gsrc.Intn(6)
		weights := make([]float64, resources)
		for r := range weights {
			weights[r] = gsrc.Uniform(0.5, 2)
		}
		strats := make([][][]Use, players)
		for i := range strats {
			strats[i] = make([][]Use, strategies)
			for s := range strats[i] {
				perm := gsrc.Perm(resources)
				n := 1 + gsrc.Intn(3)
				for u := 0; u < n; u++ {
					strats[i][s] = append(strats[i][s], Use{Resource: perm[u], Weight: gsrc.Uniform(0.2, 3)})
				}
			}
		}
		g, err := New(weights, strats)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEngine(g)
		wsrc := rng.New(walkSeed)
		e.ResetRandom(wsrc)
		shadow := e.Profile().Clone()
		loads := g.Loads(shadow)
		for step := 0; step < 25; step++ {
			i := wsrc.Intn(players)
			s := wsrc.Intn(g.StrategyCount(i))
			if err := e.Move(i, s); err != nil {
				t.Fatal(err)
			}
			g.applyMove(shadow, loads, i, s)
			for j := 0; j < players; j++ {
				if got, want := e.PlayerCost(j), g.PlayerCost(shadow, loads, j); math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("step %d player %d cost: engine %v, shadow %v", step, j, got, want)
				}
				gotS, gotC := e.BestResponse(j)
				wantS, wantC := g.bestResponse(shadow, loads, j)
				if gotS != wantS || math.Float64bits(gotC) != math.Float64bits(wantC) {
					t.Fatalf("step %d player %d best response: engine (%d, %v), shadow (%d, %v)", step, j, gotS, gotC, wantS, wantC)
				}
			}
			if got, want := e.SocialCost(), g.SocialCost(shadow); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("step %d social cost: engine %v, recomputed %v", step, got, want)
			}
		}
	})
}

// TestCGBAGoldenSeed pins CGBA to byte-identical results captured from the
// seed implementation (pre-refactor [][][]Use + full rescan): same
// profiles, same objective bits, same iteration counts, same RNG draw
// sequence. Any divergence means the incremental engine broke the
// exact-equivalence contract.
func TestCGBAGoldenSeed(t *testing.T) {
	wantProfile := Profile{3, 3, 3, 0, 5, 2, 1, 0, 3, 0, 0, 4}
	const wantObjBits = 0x405f86dfa42598ee
	cases := []struct {
		name      string
		cfg       CGBAConfig
		wantIters int
	}{
		{"max-improvement", CGBAConfig{}, 9},
		{"round-robin", CGBAConfig{Pivot: PivotRoundRobin}, 12},
		{"random", CGBAConfig{Pivot: PivotRandom}, 12},
		{"lambda=0.1", CGBAConfig{Lambda: 0.1}, 9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := randomGame(t, rng.New(42), 12, 6, 9)
			res, err := CGBA(g, tc.cfg, rng.New(43))
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(res.Objective) != wantObjBits {
				t.Errorf("objective bits %#x, want %#x", math.Float64bits(res.Objective), uint64(wantObjBits))
			}
			if res.Iterations != tc.wantIters {
				t.Errorf("iterations %d, want %d", res.Iterations, tc.wantIters)
			}
			for i := range wantProfile {
				if res.Profile[i] != wantProfile[i] {
					t.Fatalf("profile %v, want %v", res.Profile, wantProfile)
				}
			}
		})
	}

	t.Run("big", func(t *testing.T) {
		want := Profile{7, 4, 5, 6, 4, 5, 0, 6, 1, 3, 7, 0, 5, 2, 5, 6, 3, 4, 3, 2, 5, 0, 1, 4, 5, 1, 5, 6, 3, 7, 7, 6, 6, 6, 2, 4, 3, 2, 4, 3}
		g := randomGame(t, rng.New(7), 40, 8, 16)
		res, err := CGBA(g, CGBAConfig{}, rng.New(8))
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(res.Objective) != 0x40907f044a702a39 {
			t.Errorf("objective bits %#x, want 0x40907f044a702a39", math.Float64bits(res.Objective))
		}
		if res.Iterations != 36 {
			t.Errorf("iterations %d, want 36", res.Iterations)
		}
		for i := range want {
			if res.Profile[i] != want[i] {
				t.Fatalf("profile %v, want %v", res.Profile, want)
			}
		}
	})

	t.Run("track-objective", func(t *testing.T) {
		g := randomGame(t, rng.New(21), 8, 4, 7)
		res, err := CGBA(g, CGBAConfig{TrackObjective: true}, rng.New(22))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.ObjectiveTrace) != 5 {
			t.Fatalf("trace length %d, want 5", len(res.ObjectiveTrace))
		}
		sum := 0.0
		for _, o := range res.ObjectiveTrace {
			sum += o
		}
		if math.Float64bits(sum) != 0x408bf0e110cd03a2 {
			t.Errorf("trace sum bits %#x, want 0x408bf0e110cd03a2", math.Float64bits(sum))
		}
	})
}

// TestMCBAGoldenSeed pins the MCBA walk (draw sequence, accept/reject
// arithmetic, best-so-far tracking) to seed-captured values.
func TestMCBAGoldenSeed(t *testing.T) {
	want := Profile{3, 3, 4, 2, 3, 0, 1, 2, 1, 2}
	g := randomGame(t, rng.New(11), 10, 5, 8)
	res, err := MCBA(g, MCBAConfig{Iterations: 500}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(res.Objective) != 0x4066e149820e5815 {
		t.Errorf("objective bits %#x, want 0x4066e149820e5815", math.Float64bits(res.Objective))
	}
	if res.Iterations != 500 {
		t.Errorf("iterations %d, want 500", res.Iterations)
	}
	for i := range want {
		if res.Profile[i] != want[i] {
			t.Fatalf("profile %v, want %v", res.Profile, want)
		}
	}
}

// TestEngineReuseMatchesFresh solves several games through one reused
// engine and through fresh per-call engines, with identical RNG streams;
// results must match bit-for-bit (the BDMA-round reuse pattern).
func TestEngineReuseMatchesFresh(t *testing.T) {
	gsrc := rng.New(71)
	games := make([]*Game, 6)
	for k := range games {
		games[k] = randomGame(t, gsrc, 4+k, 3, 5+k)
	}
	var e *Engine
	fresh := rng.New(72)
	reused := rng.New(72)
	for k, g := range games {
		want, err := CGBA(g, CGBAConfig{}, fresh)
		if err != nil {
			t.Fatal(err)
		}
		if e == nil {
			e = NewEngine(g)
		} else {
			e.Bind(g)
		}
		got, err := e.CGBA(CGBAConfig{}, reused)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) || got.Iterations != want.Iterations {
			t.Fatalf("game %d: reused engine (%v, %d), fresh (%v, %d)", k, got.Objective, got.Iterations, want.Objective, want.Iterations)
		}
		for i := range want.Profile {
			if got.Profile[i] != want.Profile[i] {
				t.Fatalf("game %d: profile %v, want %v", k, got.Profile, want.Profile)
			}
		}
	}
}

// TestSetResourceWeightMatchesFresh checks the Reweight fast path's
// foundation: swapping m_r in place must leave the game bit-identical to
// one built from scratch with the new weights.
func TestSetResourceWeightMatchesFresh(t *testing.T) {
	src := rng.New(81)
	weights := []float64{1.5, 0.75, 2.25, 0.5, 1.25}
	strats := make([][][]Use, 6)
	for i := range strats {
		strats[i] = make([][]Use, 4)
		for s := range strats[i] {
			perm := src.Perm(len(weights))
			strats[i][s] = []Use{
				{Resource: perm[0], Weight: src.Uniform(0.2, 3)},
				{Resource: perm[1], Weight: src.Uniform(0.2, 3)},
			}
		}
	}
	g, err := New(weights, strats)
	if err != nil {
		t.Fatal(err)
	}
	newWeights := []float64{1.5, 3.125, 2.25, 0.875, 1.25}
	for r, m := range newWeights {
		if err := g.SetResourceWeight(r, m); err != nil {
			t.Fatal(err)
		}
	}
	freshG, err := New(newWeights, strats)
	if err != nil {
		t.Fatal(err)
	}
	a, err := CGBA(g, CGBAConfig{}, rng.New(82))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CGBA(freshG, CGBAConfig{}, rng.New(82))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.Objective) != math.Float64bits(b.Objective) || a.Iterations != b.Iterations {
		t.Fatalf("reweighted (%v, %d), fresh (%v, %d)", a.Objective, a.Iterations, b.Objective, b.Iterations)
	}
	for i := range a.Profile {
		if a.Profile[i] != b.Profile[i] {
			t.Fatalf("profile %v, want %v", a.Profile, b.Profile)
		}
	}

	if err := g.SetResourceWeight(-1, 1); err == nil {
		t.Error("expected error for resource -1")
	}
	if err := g.SetResourceWeight(0, math.NaN()); err == nil {
		t.Error("expected error for NaN weight")
	}
	if err := g.SetResourceWeight(0, 0); err == nil {
		t.Error("expected error for zero weight")
	}
}

// TestEngineMoveValidation covers Move's bounds checking and Reset's
// profile validation.
func TestEngineMoveValidation(t *testing.T) {
	g := randomGame(t, rng.New(5), 3, 2, 4)
	e := NewEngine(g)
	e.ResetRandom(rng.New(6))
	for _, move := range [][2]int{{-1, 0}, {3, 0}, {0, -1}, {0, 2}} {
		if err := e.Move(move[0], move[1]); err == nil {
			t.Errorf("Move(%d, %d): expected error", move[0], move[1])
		}
	}
	if err := e.Reset(Profile{0, 0}); err == nil {
		t.Error("Reset with short profile: expected error")
	}
	if err := e.Reset(Profile{0, 0, 5}); err == nil {
		t.Error("Reset with out-of-range strategy: expected error")
	}
	if err := e.Reset(Profile{1, 0, 1}); err != nil {
		t.Errorf("Reset with valid profile: %v", err)
	}
	// Reset reloads from scratch, so the shadow is just the fresh state.
	shadow := Profile{1, 0, 1}
	checkEngineAgainstShadow(t, e, g, shadow, g.Loads(shadow))
}

// TestEngineIsEquilibrium checks the cached equilibrium test against the
// Game-level one on CGBA outputs and on perturbed non-equilibria.
func TestEngineIsEquilibrium(t *testing.T) {
	g := randomGame(t, rng.New(31), 8, 4, 6)
	res, err := CGBA(g, CGBAConfig{}, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(g)
	if err := e.Reset(res.Profile); err != nil {
		t.Fatal(err)
	}
	if !e.IsEquilibrium(0) {
		t.Error("CGBA(0) output not an engine equilibrium")
	}
	if !g.IsEquilibrium(res.Profile, 0) {
		t.Error("CGBA(0) output not a game equilibrium")
	}
	// Engine and Game must agree on arbitrary profiles.
	src := rng.New(33)
	for trial := 0; trial < 30; trial++ {
		p := make(Profile, g.Players())
		for i := range p {
			p[i] = src.Intn(g.StrategyCount(i))
		}
		if err := e.Reset(p); err != nil {
			t.Fatal(err)
		}
		if got, want := e.IsEquilibrium(0), g.IsEquilibrium(p, 0); got != want {
			t.Fatalf("profile %v: engine says %v, game says %v", p, got, want)
		}
	}
}
