package game_test

import (
	"fmt"
	"log"

	"eotora/internal/game"
	"eotora/internal/rng"
)

// ExampleCGBA solves a small load-balancing game with the paper's
// best-response dynamics: two unit-weight players and two unit-weight
// resources spread out at equilibrium.
func ExampleCGBA() {
	g, err := game.New(
		[]float64{1, 1}, // resource weights m_r
		[][][]game.Use{
			{{{Resource: 0, Weight: 1}}, {{Resource: 1, Weight: 1}}}, // player 0
			{{{Resource: 0, Weight: 1}}, {{Resource: 1, Weight: 1}}}, // player 1
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := game.CGBA(g, game.CGBAConfig{Initial: game.Profile{0, 0}}, rng.New(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("social cost:", res.Objective)
	fmt.Println("spread out:", res.Profile[0] != res.Profile[1])
	// Output:
	// social cost: 2
	// spread out: true
}

// ExampleGame_PriceOfAnarchy measures the worst-equilibrium-to-optimum
// ratio on a micro instance — always within Theorem 2's 2.62 bound.
func ExampleGame_PriceOfAnarchy() {
	g, err := game.New(
		[]float64{1, 1},
		[][][]game.Use{
			{{{Resource: 0, Weight: 1}}, {{Resource: 1, Weight: 1}}},
			{{{Resource: 0, Weight: 1}}, {{Resource: 1, Weight: 1}}},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	poa, err := g.PriceOfAnarchy(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PoA = %.2f (bound 2.62)\n", poa)
	// Output:
	// PoA = 1.00 (bound 2.62)
}
