// Package game implements the weighted congestion game at the heart of the
// paper's P2-A subproblem (the WCG problem of Section V-B) together with
// the algorithms compared in the evaluation: the paper's CGBA(λ)
// best-response dynamics, the MCBA Markov-chain Monte Carlo baseline of
// [36], random play (the ROPT baseline), and an exact branch-and-bound
// view for the Gurobi-replacement optimal baseline.
//
// A game instance has resources r with weights m_r and players i whose
// strategies each use a set of resources with player-resource weights
// p_{i,r}. Player i's cost under profile z is
//
//	T_i(z) = Σ_{r ∈ R_i(z_i)} m_r · p_{i,r} · p_r(z),   p_r(z) = Σ_{j uses r} p_{j,r},
//
// and the social objective Σ_i T_i(z) telescopes to Σ_r m_r p_r(z)² —
// exactly the reduced latency T_t of equations (18)–(19).
//
// Internally a Game stores its strategies in a flat CSR-style arena (one
// backing []Use plus per-player/per-strategy offsets) instead of a
// [][][]Use pointer forest, and carries a resource→player incidence index.
// The structure is immutable; mutable solve state (profile, loads, cached
// best responses) lives in Engine.
package game

import (
	"errors"
	"fmt"
	"math"
)

// Use is one resource consumed by a strategy, with the player-resource
// weight p_{i,r}.
type Use struct {
	// Resource indexes into the game's resource weights.
	Resource int
	// Weight is p_{i,r} > 0.
	Weight float64
}

// use is the arena element: a Use plus the premultiplied cost factor.
type use struct {
	w, wm float64 // p_{i,r} and m_r·p_{i,r}
	res   int     // resource index
}

// Game is a weighted congestion game instance. Its strategy structure is
// immutable after construction; resource weights may be swapped through
// SetResourceWeight (the P2-A Reweight fast path), which invalidates any
// Engine caches until the next Engine reset.
type Game struct {
	weights []float64 // m_r

	// Flat CSR arena: strategy su of player i occupies
	// uses[useOff[strOff[i]+s] : useOff[strOff[i]+s+1]]. Each use carries
	// the premultiplied wm = m_r·p_{i,r} factor alongside resource and
	// weight so the Engine's hot loops stream one array with no extra
	// lookups. Cost expressions are left-associative (m·w)·x, so using the
	// premultiplied factor is bit-identical to the naive evaluation;
	// SetResourceWeight keeps wm in sync via the incidence index.
	uses   []use
	useOff []int32 // len = total strategies + 1
	strOff []int32 // len = players + 1

	// Player incidence: the distinct players with at least one strategy
	// using resource r are incPlayer[incOff[r]:incOff[r+1]]. Engines walk
	// it to invalidate exactly the players whose cached best responses a
	// move could change.
	incOff    []int32
	incPlayer []int32

	// Use incidence: the arena positions of the uses of resource r are
	// useIncPos[useIncOff[r]:useIncOff[r+1]] — the SetResourceWeight fast
	// path for re-deriving premultiplied factors without an arena sweep.
	useIncOff []int32
	useIncPos []int32

	// maxUses is the largest use count of any single strategy (Engine
	// scratch sizing).
	maxUses int

	// Generation counters for derived-table invalidation (the Engine's
	// shortlist and drift-bound tables, see engine_fast.go). structGen
	// advances whenever the strategy arena changes (Build, Commit);
	// weightGen advances whenever any premultiplied wm factor may have
	// changed (Build, Commit, SetResourceWeight). Both start at 1 so a
	// zero-valued cache marker is always stale.
	structGen uint64
	weightGen uint64
}

// strategyUses returns the uses of player i's strategy s.
func (g *Game) strategyUses(i, s int) []use {
	su := g.strOff[i] + int32(s)
	return g.uses[g.useOff[su]:g.useOff[su+1]]
}

// totalStrategies returns the number of strategies across all players.
func (g *Game) totalStrategies() int { return len(g.useOff) - 1 }

// Builder assembles a Game into reusable flat arrays. A zero-allocation
// rebuild path for hot callers (the per-slot P2-A construction): Reset,
// fill Weights, stream players/strategies/uses, then Build.
//
// Build returns a *Game that aliases the Builder's memory; calling Reset
// again invalidates every Game previously returned by this Builder. The
// returned pointer is stable across rebuilds, so long-lived references
// (e.g. an Engine bound to it) observe the refreshed structure.
type Builder struct {
	g Game

	// seenStrategy[r] holds the global strategy serial that last used r,
	// for duplicate detection without a per-strategy map; seenPlayer[r]
	// likewise dedups players while building the incidence index.
	seenStrategy []int32
	seenPlayer   []int32
	// incCursor is the fill cursor per resource while building incidence.
	incCursor []int32

	// Spare arena: the double buffer mutations stream into. Commit swaps
	// it with the live arena, so the displaced arrays become the free
	// buffer for the next mutation (see mutate.go).
	spareUses   []use
	spareUseOff []int32
	spareStrOff []int32

	// mut is the Builder-owned Mutation BeginMutation recycles, so the
	// churn hot path allocates nothing per slot.
	mut Mutation
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Reset prepares the builder for a game over the given number of
// resources, discarding any previously streamed structure. Weights()
// returns a zeroed slice to be filled before Build.
func (b *Builder) Reset(resources int) {
	b.g.weights = resizeFloat(b.g.weights, resources)
	clearFloats(b.g.weights)
	b.g.uses = b.g.uses[:0]
	b.g.useOff = append(b.g.useOff[:0], 0)
	b.g.strOff = append(b.g.strOff[:0], 0)
	b.g.maxUses = 0
	b.seenStrategy = resizeInt32(b.seenStrategy, resources)
	for r := range b.seenStrategy {
		b.seenStrategy[r] = -1
	}
}

// Weights returns the mutable resource-weight slice (length = resources).
func (b *Builder) Weights() []float64 { return b.g.weights }

// NextPlayer starts a new player.
func (b *Builder) NextPlayer() {
	b.g.strOff = append(b.g.strOff, int32(len(b.g.useOff)-1))
}

// NextStrategy starts a new strategy for the current player.
func (b *Builder) NextStrategy() {
	b.g.useOff = append(b.g.useOff, int32(len(b.g.uses)))
	b.g.strOff[len(b.g.strOff)-1] = int32(len(b.g.useOff) - 1)
}

// AddUse appends one resource use to the current strategy. Validation is
// deferred to Build.
func (b *Builder) AddUse(resource int, weight float64) {
	b.g.uses = append(b.g.uses, use{res: resource, w: weight})
	b.g.useOff[len(b.g.useOff)-1] = int32(len(b.g.uses))
}

// Build validates the streamed game and returns it. The validation rules
// and error messages match New exactly.
func (b *Builder) Build() (*Game, error) {
	g := &b.g
	if len(g.weights) == 0 {
		return nil, errors.New("game: no resources")
	}
	for r, m := range g.weights {
		if !(m > 0) || math.IsInf(m, 0) {
			return nil, fmt.Errorf("game: resource %d has invalid weight %v", r, m)
		}
	}
	players := len(g.strOff) - 1
	if players == 0 {
		return nil, errors.New("game: no players")
	}
	for i := 0; i < players; i++ {
		first, last := g.playerStrategies(i)
		if first == last {
			return nil, fmt.Errorf("game: player %d has no strategies", i)
		}
		for su := first; su < last; su++ {
			lo, hi := int(g.useOff[su]), int(g.useOff[su+1])
			if lo == hi {
				return nil, fmt.Errorf("game: player %d strategy %d uses no resources", i, int(su-first))
			}
			if hi-lo > g.maxUses {
				g.maxUses = hi - lo
			}
			for _, u := range g.uses[lo:hi] {
				if u.res < 0 || u.res >= len(g.weights) {
					return nil, fmt.Errorf("game: player %d strategy %d references resource %d of %d", i, int(su-first), u.res, len(g.weights))
				}
				if !(u.w > 0) || math.IsInf(u.w, 0) {
					return nil, fmt.Errorf("game: player %d strategy %d has invalid weight %v", i, int(su-first), u.w)
				}
				if b.seenStrategy[u.res] == su {
					return nil, fmt.Errorf("game: player %d strategy %d uses resource %d twice", i, int(su-first), u.res)
				}
				b.seenStrategy[u.res] = su
			}
		}
	}
	b.buildIncidence()
	for k := range g.uses {
		u := &g.uses[k]
		u.wm = g.weights[u.res] * u.w
	}
	g.structGen++
	g.weightGen++
	return g, nil
}

// playerStrategies returns the [first, last) global strategy serials of
// player i.
func (g *Game) playerStrategies(i int) (first, last int32) {
	return g.strOff[i], g.strOff[i+1]
}

// buildIncidence fills the two resource incidence indexes by counting
// sort over the arena: deduplicated players per resource (Engine
// invalidation) and use positions per resource (SetResourceWeight).
func (b *Builder) buildIncidence() {
	g := &b.g
	resources := len(g.weights)
	players := len(g.strOff) - 1

	g.useIncOff = resizeInt32(g.useIncOff, resources+1)
	for r := range g.useIncOff {
		g.useIncOff[r] = 0
	}
	for _, u := range g.uses {
		g.useIncOff[u.res+1]++
	}
	for r := 0; r < resources; r++ {
		g.useIncOff[r+1] += g.useIncOff[r]
	}
	g.useIncPos = resizeInt32(g.useIncPos, len(g.uses))
	b.incCursor = resizeInt32(b.incCursor, resources)
	copy(b.incCursor, g.useIncOff[:resources])
	for k, u := range g.uses {
		at := b.incCursor[u.res]
		g.useIncPos[at] = int32(k)
		b.incCursor[u.res] = at + 1
	}

	// Distinct players per resource, deduplicated with a last-seen marker.
	g.incOff = resizeInt32(g.incOff, resources+1)
	for r := range g.incOff {
		g.incOff[r] = 0
	}
	b.seenPlayer = resizeInt32(b.seenPlayer, resources)
	for r := range b.seenPlayer {
		b.seenPlayer[r] = -1
	}
	for i := 0; i < players; i++ {
		first, last := g.playerStrategies(i)
		for _, u := range g.uses[g.useOff[first]:g.useOff[last]] {
			if b.seenPlayer[u.res] != int32(i) {
				b.seenPlayer[u.res] = int32(i)
				g.incOff[u.res+1]++
			}
		}
	}
	total := int32(0)
	for r := 0; r < resources; r++ {
		g.incOff[r+1] += g.incOff[r]
	}
	total = g.incOff[resources]
	g.incPlayer = resizeInt32(g.incPlayer, int(total))
	copy(b.incCursor, g.incOff[:resources])
	for r := range b.seenPlayer {
		b.seenPlayer[r] = -1
	}
	for i := 0; i < players; i++ {
		first, last := g.playerStrategies(i)
		for _, u := range g.uses[g.useOff[first]:g.useOff[last]] {
			if b.seenPlayer[u.res] != int32(i) {
				b.seenPlayer[u.res] = int32(i)
				at := b.incCursor[u.res]
				g.incPlayer[at] = int32(i)
				b.incCursor[u.res] = at + 1
			}
		}
	}
}

func resizeFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func clearFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// New validates and builds a game. Every player needs at least one
// strategy; resource indices must be in range; all weights must be
// positive and finite. The weights slice is copied, not retained.
func New(resourceWeights []float64, strategies [][][]Use) (*Game, error) {
	b := NewBuilder()
	b.Reset(len(resourceWeights))
	copy(b.Weights(), resourceWeights)
	for _, strats := range strategies {
		b.NextPlayer()
		for _, uses := range strats {
			b.NextStrategy()
			for _, u := range uses {
				b.AddUse(u.Resource, u.Weight)
			}
		}
	}
	return b.Build()
}

// Players returns the number of players I.
func (g *Game) Players() int { return len(g.strOff) - 1 }

// Resources returns the number of resources |R|.
func (g *Game) Resources() int { return len(g.weights) }

// StrategyCount returns the size of player i's strategy set.
func (g *Game) StrategyCount(i int) int { return int(g.strOff[i+1] - g.strOff[i]) }

// ResourceWeight returns m_r.
func (g *Game) ResourceWeight(r int) float64 { return g.weights[r] }

// SetResourceWeight swaps m_r in place — the P2-A Reweight fast path,
// where only the compute-resource weights 1/ω_n change between BDMA
// rounds. Any Engine bound to the game holds stale caches afterwards and
// must be reset before further incremental queries (Engine.CGBA and
// Engine.MCBA reset unconditionally, so the solver entry points are safe).
func (g *Game) SetResourceWeight(r int, m float64) error {
	if r < 0 || r >= len(g.weights) {
		return fmt.Errorf("game: resource %d of %d", r, len(g.weights))
	}
	if !(m > 0) || math.IsInf(m, 0) {
		return fmt.Errorf("game: resource %d has invalid weight %v", r, m)
	}
	g.weights[r] = m
	// Re-derive the premultiplied factors of every use of r through the
	// use incidence index.
	for _, k := range g.useIncPos[g.useIncOff[r]:g.useIncOff[r+1]] {
		g.uses[k].wm = m * g.uses[k].w
	}
	g.weightGen++
	return nil
}

// Profile is one strategy index per player.
type Profile []int

// Clone returns a copy of the profile.
func (p Profile) Clone() Profile { return append(Profile(nil), p...) }

// Valid reports whether the profile is complete and within every player's
// strategy set.
func (g *Game) Valid(p Profile) bool {
	if len(p) != g.Players() {
		return false
	}
	for i, s := range p {
		if s < 0 || s >= g.StrategyCount(i) {
			return false
		}
	}
	return true
}

// Loads returns p_r(z) for every resource under the profile.
func (g *Game) Loads(p Profile) []float64 {
	loads := make([]float64, len(g.weights))
	g.loadsInto(loads, p)
	return loads
}

// loadsInto accumulates the profile's loads into a zeroed slice, summing
// in player order (the canonical order every load computation uses).
func (g *Game) loadsInto(loads []float64, p Profile) {
	for i, s := range p {
		for _, u := range g.strategyUses(i, s) {
			loads[u.res] += u.w
		}
	}
}

// SocialCost returns the objective Σ_r m_r p_r(z)² — the total latency
// T(z) of the WCG problem.
func (g *Game) SocialCost(p Profile) float64 {
	loads := g.Loads(p)
	obj := 0.0
	for r, l := range loads {
		obj += g.weights[r] * l * l
	}
	return obj
}

// PlayerCost returns T_i(z) given precomputed loads.
func (g *Game) PlayerCost(p Profile, loads []float64, i int) float64 {
	cost := 0.0
	for _, u := range g.strategyUses(i, p[i]) {
		cost += u.wm * loads[u.res]
	}
	return cost
}

// Potential returns the weighted Rosenthal potential
//
//	Φ(z) = ½ Σ_r m_r (p_r(z)² + Σ_{i uses r} p_{i,r}²),
//
// whose change under a unilateral move equals the mover's cost change —
// the property that makes CGBA's best-response dynamics converge.
func (g *Game) Potential(p Profile) float64 {
	loads := g.Loads(p)
	phi := 0.0
	for r, l := range loads {
		phi += g.weights[r] * l * l
	}
	for i, s := range p {
		for _, u := range g.strategyUses(i, s) {
			phi += u.wm * u.w
		}
	}
	return phi / 2
}

// bestResponse returns player i's minimum-cost strategy against the other
// players' contributions. loads must include player i's current strategy;
// the function internally removes it. Engine.refresh computes the same
// quantity incrementally from cached state; the two must stay
// bit-identical (see TestEngineMatchesRecomputation).
func (g *Game) bestResponse(p Profile, loads []float64, i int) (strategy int, cost float64) {
	// Loads without player i.
	cur := g.strategyUses(i, p[i])
	without := func(r int) float64 {
		l := loads[r]
		for _, u := range cur {
			if u.res == r {
				return l - u.w
			}
		}
		return l
	}
	best, bestCost := -1, math.Inf(1)
	for s := 0; s < g.StrategyCount(i); s++ {
		c := 0.0
		for _, u := range g.strategyUses(i, s) {
			c += u.wm * (without(u.res) + u.w)
		}
		if c < bestCost {
			best, bestCost = s, c
		}
	}
	return best, bestCost
}

// applyMove switches player i to strategy s, updating loads in place.
func (g *Game) applyMove(p Profile, loads []float64, i, s int) {
	for _, u := range g.strategyUses(i, p[i]) {
		loads[u.res] -= u.w
	}
	p[i] = s
	for _, u := range g.strategyUses(i, s) {
		loads[u.res] += u.w
	}
}

// EnumerateEquilibria exhaustively enumerates pure Nash equilibria of the
// game, up to maxProfiles enumerated profiles (0 = no cap). It returns the
// equilibria found and whether enumeration completed. Exponential in the
// player count — a research tool for micro instances, used to measure the
// empirical price of anarchy against Theorem 2's 2.62 bound.
func (g *Game) EnumerateEquilibria(maxProfiles int) (equilibria []Profile, complete bool) {
	n := g.Players()
	current := make(Profile, n)
	visited := 0
	complete = true
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			visited++
			if maxProfiles > 0 && visited > maxProfiles {
				complete = false
				return false
			}
			if g.IsEquilibrium(current, 0) {
				equilibria = append(equilibria, current.Clone())
			}
			return true
		}
		for s := 0; s < g.StrategyCount(i); s++ {
			current[i] = s
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return equilibria, complete
}

// PriceOfAnarchy returns worst-equilibrium cost / optimal cost over the
// game's pure Nash equilibria, found by exhaustive enumeration (bounded by
// maxProfiles; 0 = unbounded). The optimum is the minimum social cost over
// all profiles. It returns an error when enumeration was truncated or no
// equilibrium exists within the bound.
func (g *Game) PriceOfAnarchy(maxProfiles int) (float64, error) {
	equilibria, complete := g.EnumerateEquilibria(maxProfiles)
	if !complete {
		return 0, fmt.Errorf("game: equilibrium enumeration truncated at %d profiles", maxProfiles)
	}
	if len(equilibria) == 0 {
		return 0, errors.New("game: no pure Nash equilibrium found (finite potential games always have one — check tolerances)")
	}
	worst := 0.0
	for _, eq := range equilibria {
		if c := g.SocialCost(eq); c > worst {
			worst = c
		}
	}
	// Optimal social cost by enumeration.
	best := math.Inf(1)
	current := make(Profile, g.Players())
	var rec func(i int)
	rec = func(i int) {
		if i == g.Players() {
			if c := g.SocialCost(current); c < best {
				best = c
			}
			return
		}
		for s := 0; s < g.StrategyCount(i); s++ {
			current[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	if best <= 0 {
		return 0, errors.New("game: non-positive optimal cost")
	}
	return worst / best, nil
}
