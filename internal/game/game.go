// Package game implements the weighted congestion game at the heart of the
// paper's P2-A subproblem (the WCG problem of Section V-B) together with
// the algorithms compared in the evaluation: the paper's CGBA(λ)
// best-response dynamics, the MCBA Markov-chain Monte Carlo baseline of
// [36], random play (the ROPT baseline), and an exact branch-and-bound
// view for the Gurobi-replacement optimal baseline.
//
// A game instance has resources r with weights m_r and players i whose
// strategies each use a set of resources with player-resource weights
// p_{i,r}. Player i's cost under profile z is
//
//	T_i(z) = Σ_{r ∈ R_i(z_i)} m_r · p_{i,r} · p_r(z),   p_r(z) = Σ_{j uses r} p_{j,r},
//
// and the social objective Σ_i T_i(z) telescopes to Σ_r m_r p_r(z)² —
// exactly the reduced latency T_t of equations (18)–(19).
package game

import (
	"errors"
	"fmt"
	"math"
)

// Use is one resource consumed by a strategy, with the player-resource
// weight p_{i,r}.
type Use struct {
	// Resource indexes into the game's resource weights.
	Resource int
	// Weight is p_{i,r} > 0.
	Weight float64
}

// Game is an immutable weighted congestion game instance.
type Game struct {
	weights    []float64 // m_r
	strategies [][][]Use // [player][strategy] → resource uses
}

// New validates and builds a game. Every player needs at least one
// strategy; resource indices must be in range; all weights must be
// positive and finite.
func New(resourceWeights []float64, strategies [][][]Use) (*Game, error) {
	if len(resourceWeights) == 0 {
		return nil, errors.New("game: no resources")
	}
	for r, m := range resourceWeights {
		if !(m > 0) || math.IsInf(m, 0) {
			return nil, fmt.Errorf("game: resource %d has invalid weight %v", r, m)
		}
	}
	if len(strategies) == 0 {
		return nil, errors.New("game: no players")
	}
	for i, strats := range strategies {
		if len(strats) == 0 {
			return nil, fmt.Errorf("game: player %d has no strategies", i)
		}
		for s, uses := range strats {
			if len(uses) == 0 {
				return nil, fmt.Errorf("game: player %d strategy %d uses no resources", i, s)
			}
			seen := make(map[int]bool, len(uses))
			for _, u := range uses {
				if u.Resource < 0 || u.Resource >= len(resourceWeights) {
					return nil, fmt.Errorf("game: player %d strategy %d references resource %d of %d", i, s, u.Resource, len(resourceWeights))
				}
				if !(u.Weight > 0) || math.IsInf(u.Weight, 0) {
					return nil, fmt.Errorf("game: player %d strategy %d has invalid weight %v", i, s, u.Weight)
				}
				if seen[u.Resource] {
					return nil, fmt.Errorf("game: player %d strategy %d uses resource %d twice", i, s, u.Resource)
				}
				seen[u.Resource] = true
			}
		}
	}
	return &Game{weights: resourceWeights, strategies: strategies}, nil
}

// Players returns the number of players I.
func (g *Game) Players() int { return len(g.strategies) }

// Resources returns the number of resources |R|.
func (g *Game) Resources() int { return len(g.weights) }

// StrategyCount returns the size of player i's strategy set.
func (g *Game) StrategyCount(i int) int { return len(g.strategies[i]) }

// Profile is one strategy index per player.
type Profile []int

// Clone returns a copy of the profile.
func (p Profile) Clone() Profile { return append(Profile(nil), p...) }

// Valid reports whether the profile is complete and within every player's
// strategy set.
func (g *Game) Valid(p Profile) bool {
	if len(p) != g.Players() {
		return false
	}
	for i, s := range p {
		if s < 0 || s >= len(g.strategies[i]) {
			return false
		}
	}
	return true
}

// Loads returns p_r(z) for every resource under the profile.
func (g *Game) Loads(p Profile) []float64 {
	loads := make([]float64, len(g.weights))
	for i, s := range p {
		for _, u := range g.strategies[i][s] {
			loads[u.Resource] += u.Weight
		}
	}
	return loads
}

// SocialCost returns the objective Σ_r m_r p_r(z)² — the total latency
// T(z) of the WCG problem.
func (g *Game) SocialCost(p Profile) float64 {
	loads := g.Loads(p)
	obj := 0.0
	for r, l := range loads {
		obj += g.weights[r] * l * l
	}
	return obj
}

// PlayerCost returns T_i(z) given precomputed loads.
func (g *Game) PlayerCost(p Profile, loads []float64, i int) float64 {
	cost := 0.0
	for _, u := range g.strategies[i][p[i]] {
		cost += g.weights[u.Resource] * u.Weight * loads[u.Resource]
	}
	return cost
}

// Potential returns the weighted Rosenthal potential
//
//	Φ(z) = ½ Σ_r m_r (p_r(z)² + Σ_{i uses r} p_{i,r}²),
//
// whose change under a unilateral move equals the mover's cost change —
// the property that makes CGBA's best-response dynamics converge.
func (g *Game) Potential(p Profile) float64 {
	loads := g.Loads(p)
	phi := 0.0
	for r, l := range loads {
		phi += g.weights[r] * l * l
	}
	for i, s := range p {
		for _, u := range g.strategies[i][s] {
			phi += g.weights[u.Resource] * u.Weight * u.Weight
		}
	}
	return phi / 2
}

// bestResponse returns player i's minimum-cost strategy against the other
// players' contributions. loads must include player i's current strategy;
// the function internally removes it.
func (g *Game) bestResponse(p Profile, loads []float64, i int) (strategy int, cost float64) {
	// Loads without player i.
	cur := g.strategies[i][p[i]]
	without := func(r int) float64 {
		l := loads[r]
		for _, u := range cur {
			if u.Resource == r {
				return l - u.Weight
			}
		}
		return l
	}
	best, bestCost := -1, math.Inf(1)
	for s, uses := range g.strategies[i] {
		c := 0.0
		for _, u := range uses {
			c += g.weights[u.Resource] * u.Weight * (without(u.Resource) + u.Weight)
		}
		if c < bestCost {
			best, bestCost = s, c
		}
	}
	return best, bestCost
}

// applyMove switches player i to strategy s, updating loads in place.
func (g *Game) applyMove(p Profile, loads []float64, i, s int) {
	for _, u := range g.strategies[i][p[i]] {
		loads[u.Resource] -= u.Weight
	}
	p[i] = s
	for _, u := range g.strategies[i][s] {
		loads[u.Resource] += u.Weight
	}
}

// EnumerateEquilibria exhaustively enumerates pure Nash equilibria of the
// game, up to maxProfiles enumerated profiles (0 = no cap). It returns the
// equilibria found and whether enumeration completed. Exponential in the
// player count — a research tool for micro instances, used to measure the
// empirical price of anarchy against Theorem 2's 2.62 bound.
func (g *Game) EnumerateEquilibria(maxProfiles int) (equilibria []Profile, complete bool) {
	n := g.Players()
	current := make(Profile, n)
	visited := 0
	complete = true
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			visited++
			if maxProfiles > 0 && visited > maxProfiles {
				complete = false
				return false
			}
			if g.IsEquilibrium(current, 0) {
				equilibria = append(equilibria, current.Clone())
			}
			return true
		}
		for s := 0; s < g.StrategyCount(i); s++ {
			current[i] = s
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return equilibria, complete
}

// PriceOfAnarchy returns worst-equilibrium cost / optimal cost over the
// game's pure Nash equilibria, found by exhaustive enumeration (bounded by
// maxProfiles; 0 = unbounded). The optimum is the minimum social cost over
// all profiles. It returns an error when enumeration was truncated or no
// equilibrium exists within the bound.
func (g *Game) PriceOfAnarchy(maxProfiles int) (float64, error) {
	equilibria, complete := g.EnumerateEquilibria(maxProfiles)
	if !complete {
		return 0, fmt.Errorf("game: equilibrium enumeration truncated at %d profiles", maxProfiles)
	}
	if len(equilibria) == 0 {
		return 0, errors.New("game: no pure Nash equilibrium found (finite potential games always have one — check tolerances)")
	}
	worst := 0.0
	for _, eq := range equilibria {
		if c := g.SocialCost(eq); c > worst {
			worst = c
		}
	}
	// Optimal social cost by enumeration.
	best := math.Inf(1)
	current := make(Profile, g.Players())
	var rec func(i int)
	rec = func(i int) {
		if i == g.Players() {
			if c := g.SocialCost(current); c < best {
				best = c
			}
			return
		}
		for s := 0; s < g.StrategyCount(i); s++ {
			current[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	if best <= 0 {
		return 0, errors.New("game: non-positive optimal cost")
	}
	return worst / best, nil
}
