package game

import (
	"math"
	"testing"
	"testing/quick"

	"eotora/internal/rng"
	"eotora/internal/solver"
)

// twoPlayerGame builds a classic 2-player, 2-resource load-balancing game:
// each player picks resource 0 or 1 with unit weight.
func twoPlayerGame(t *testing.T) *Game {
	t.Helper()
	strategies := [][][]Use{
		{{{Resource: 0, Weight: 1}}, {{Resource: 1, Weight: 1}}},
		{{{Resource: 0, Weight: 1}}, {{Resource: 1, Weight: 1}}},
	}
	g, err := New([]float64{1, 1}, strategies)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomGame builds a random instance shaped like P2-A: each strategy uses
// exactly three resources (access link, fronthaul, server), mirroring
// R_i(z_i) = {B_k^A, B_k^F, C_n}.
func randomGame(t testing.TB, src *rng.Source, players, strategies, resources int) *Game {
	t.Helper()
	if resources < 3 {
		t.Fatal("randomGame needs at least 3 resources")
	}
	weights := make([]float64, resources)
	for r := range weights {
		weights[r] = src.Uniform(0.5, 2)
	}
	strats := make([][][]Use, players)
	for i := range strats {
		strats[i] = make([][]Use, strategies)
		for s := range strats[i] {
			perm := src.Perm(resources)
			strats[i][s] = []Use{
				{Resource: perm[0], Weight: src.Uniform(0.2, 3)},
				{Resource: perm[1], Weight: src.Uniform(0.2, 3)},
				{Resource: perm[2], Weight: src.Uniform(0.2, 3)},
			}
		}
	}
	g, err := New(weights, strats)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	valid := [][][]Use{{{{Resource: 0, Weight: 1}}}}
	tests := []struct {
		name       string
		weights    []float64
		strategies [][][]Use
	}{
		{"no resources", nil, valid},
		{"zero weight resource", []float64{0}, valid},
		{"negative weight resource", []float64{-1}, valid},
		{"infinite weight resource", []float64{math.Inf(1)}, valid},
		{"no players", []float64{1}, nil},
		{"player without strategies", []float64{1}, [][][]Use{{}}},
		{"strategy without resources", []float64{1}, [][][]Use{{{}}}},
		{"resource out of range", []float64{1}, [][][]Use{{{{Resource: 3, Weight: 1}}}}},
		{"negative resource index", []float64{1}, [][][]Use{{{{Resource: -1, Weight: 1}}}}},
		{"zero use weight", []float64{1}, [][][]Use{{{{Resource: 0, Weight: 0}}}}},
		{"duplicate resource in strategy", []float64{1, 1}, [][][]Use{{{{Resource: 0, Weight: 1}, {Resource: 0, Weight: 2}}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.weights, tt.strategies); err == nil {
				t.Error("New accepted invalid game")
			}
		})
	}
	if _, err := New([]float64{1}, valid); err != nil {
		t.Errorf("New rejected valid game: %v", err)
	}
}

func TestSocialCostTelescopes(t *testing.T) {
	// Σ_i T_i(z) must equal Σ_r m_r p_r(z)².
	src := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		g := randomGame(t, src, 2+src.Intn(6), 2+src.Intn(3), 4+src.Intn(4))
		p := make(Profile, g.Players())
		for i := range p {
			p[i] = src.Intn(g.StrategyCount(i))
		}
		loads := g.Loads(p)
		sum := 0.0
		for i := range p {
			sum += g.PlayerCost(p, loads, i)
		}
		social := g.SocialCost(p)
		if math.Abs(sum-social) > 1e-9*(social+1) {
			t.Fatalf("Σ T_i = %v ≠ social %v", sum, social)
		}
	}
}

func TestPotentialMovePropertyExact(t *testing.T) {
	// ΔΦ under a unilateral move must equal the mover's cost change.
	src := rng.New(2)
	for trial := 0; trial < 30; trial++ {
		g := randomGame(t, src, 3+src.Intn(5), 2+src.Intn(3), 5)
		p := make(Profile, g.Players())
		for i := range p {
			p[i] = src.Intn(g.StrategyCount(i))
		}
		i := src.Intn(g.Players())
		s := src.Intn(g.StrategyCount(i))
		loadsBefore := g.Loads(p)
		costBefore := g.PlayerCost(p, loadsBefore, i)
		phiBefore := g.Potential(p)

		q := p.Clone()
		q[i] = s
		loadsAfter := g.Loads(q)
		costAfter := g.PlayerCost(q, loadsAfter, i)
		phiAfter := g.Potential(q)

		dPhi := phiAfter - phiBefore
		dCost := costAfter - costBefore
		if math.Abs(dPhi-dCost) > 1e-9*(math.Abs(dCost)+1) {
			t.Fatalf("trial %d: ΔΦ = %v ≠ ΔT_i = %v", trial, dPhi, dCost)
		}
	}
}

func TestValidProfile(t *testing.T) {
	g := twoPlayerGame(t)
	if !g.Valid(Profile{0, 1}) {
		t.Error("valid profile rejected")
	}
	if g.Valid(Profile{0}) {
		t.Error("short profile accepted")
	}
	if g.Valid(Profile{0, 2}) {
		t.Error("out-of-range strategy accepted")
	}
	if g.Valid(Profile{-1, 0}) {
		t.Error("negative strategy accepted")
	}
}

func TestCGBAOnLoadBalancing(t *testing.T) {
	// Two unit players, two unit resources: equilibrium spreads them out,
	// social cost 2 (vs 4 when colliding).
	g := twoPlayerGame(t)
	res, err := CGBA(g, CGBAConfig{Initial: Profile{0, 0}}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-2) > 1e-9 {
		t.Errorf("objective = %v, want 2", res.Objective)
	}
	if res.Profile[0] == res.Profile[1] {
		t.Errorf("players collided: %v", res.Profile)
	}
	if !g.IsEquilibrium(res.Profile, 0) {
		t.Error("CGBA result is not an equilibrium")
	}
}

func TestCGBATerminatesAtEquilibrium(t *testing.T) {
	src := rng.New(4)
	for trial := 0; trial < 15; trial++ {
		g := randomGame(t, src, 10, 4, 6)
		res, err := CGBA(g, CGBAConfig{}, src)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsEquilibrium(res.Profile, 0) {
			t.Fatalf("trial %d: result not an equilibrium", trial)
		}
		if !g.Valid(res.Profile) {
			t.Fatalf("trial %d: invalid profile", trial)
		}
	}
}

func TestCGBALambdaTradeoff(t *testing.T) {
	// Larger λ must not increase iteration count (on the same instance
	// and start), matching Figure 6.
	src := rng.New(5)
	g := randomGame(t, src, 40, 6, 10)
	initial := make(Profile, g.Players())
	for i := range initial {
		initial[i] = src.Intn(g.StrategyCount(i))
	}
	var prevIters int
	for idx, lambda := range []float64{0, 0.04, 0.08, 0.12} {
		res, err := CGBA(g, CGBAConfig{Lambda: lambda, Initial: initial}, rng.New(6))
		if err != nil {
			t.Fatal(err)
		}
		if idx > 0 && res.Iterations > prevIters {
			t.Errorf("λ=%v used %d iterations, more than smaller λ's %d", lambda, res.Iterations, prevIters)
		}
		prevIters = res.Iterations
	}
}

func TestCGBAConfigValidation(t *testing.T) {
	g := twoPlayerGame(t)
	if _, err := CGBA(g, CGBAConfig{Lambda: 0.125}, rng.New(1)); err == nil {
		t.Error("λ = 0.125 accepted")
	}
	if _, err := CGBA(g, CGBAConfig{Lambda: -0.1}, rng.New(1)); err == nil {
		t.Error("negative λ accepted")
	}
	if _, err := CGBA(g, CGBAConfig{Initial: Profile{0}}, rng.New(1)); err == nil {
		t.Error("short initial profile accepted")
	}
}

func TestCGBAIterationCap(t *testing.T) {
	src := rng.New(7)
	g := randomGame(t, src, 30, 5, 8)
	_, err := CGBA(g, CGBAConfig{MaxIterations: 1, Initial: worstProfile(t, g)}, src)
	if err == nil {
		t.Skip("instance converged in one step; cap not exercised")
	}
	if err != ErrNoConverge {
		t.Errorf("err = %v, want ErrNoConverge", err)
	}
}

// worstProfile returns a profile that is very likely not an equilibrium:
// everyone picks strategy 0.
func worstProfile(t *testing.T, g *Game) Profile {
	t.Helper()
	p := make(Profile, g.Players())
	return p
}

func TestCGBANearOptimalOnSmallInstances(t *testing.T) {
	// Theorem 2 guarantees 2.62× at λ=0; empirically the paper reports
	// ≈1.02×. Verify the hard bound on random small instances.
	src := rng.New(8)
	for trial := 0; trial < 20; trial++ {
		g := randomGame(t, src, 6, 3, 5)
		res, err := CGBA(g, CGBAConfig{}, src)
		if err != nil {
			t.Fatal(err)
		}
		opt, bnb, err := Optimal(g, solver.BnBConfig{}, src)
		if err != nil {
			t.Fatal(err)
		}
		if !bnb.Optimal {
			t.Fatal("unbudgeted BnB not optimal")
		}
		if res.Objective > 2.62*opt.Objective+1e-9 {
			t.Errorf("trial %d: CGBA %v > 2.62 × optimal %v", trial, res.Objective, opt.Objective)
		}
		if opt.Objective > res.Objective+1e-9 {
			t.Errorf("trial %d: optimal %v above CGBA %v", trial, opt.Objective, res.Objective)
		}
	}
}

func TestMCBAImprovesOverRandom(t *testing.T) {
	src := rng.New(9)
	g := randomGame(t, src, 20, 5, 8)
	randomSum, mcbaSum := 0.0, 0.0
	for trial := 0; trial < 5; trial++ {
		randomSum += RandomProfile(g, src).Objective
		res, err := MCBA(g, MCBAConfig{}, src)
		if err != nil {
			t.Fatal(err)
		}
		mcbaSum += res.Objective
		if !g.Valid(res.Profile) {
			t.Fatal("MCBA returned invalid profile")
		}
	}
	if mcbaSum >= randomSum {
		t.Errorf("MCBA average %v not better than random %v", mcbaSum/5, randomSum/5)
	}
}

func TestMCBABestSeenConsistency(t *testing.T) {
	// The reported objective must equal the social cost of the reported
	// profile (best-seen bookkeeping).
	src := rng.New(10)
	g := randomGame(t, src, 10, 4, 6)
	res, err := MCBA(g, MCBAConfig{Iterations: 500}, src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-g.SocialCost(res.Profile)) > 1e-9*(res.Objective+1) {
		t.Errorf("objective %v ≠ recomputed %v", res.Objective, g.SocialCost(res.Profile))
	}
	if res.Iterations != 500 {
		t.Errorf("iterations = %d, want 500", res.Iterations)
	}
}

func TestMCBASinglePlayerSingleStrategy(t *testing.T) {
	g, err := New([]float64{1}, [][][]Use{{{{Resource: 0, Weight: 1}}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MCBA(g, MCBAConfig{Iterations: 10}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != 1 {
		t.Errorf("objective = %v, want 1", res.Objective)
	}
}

func TestRandomProfileValid(t *testing.T) {
	src := rng.New(11)
	g := randomGame(t, src, 15, 4, 6)
	for trial := 0; trial < 10; trial++ {
		res := RandomProfile(g, src)
		if !g.Valid(res.Profile) {
			t.Fatal("random profile invalid")
		}
		if math.Abs(res.Objective-g.SocialCost(res.Profile)) > 1e-9 {
			t.Fatal("random profile objective mismatch")
		}
	}
}

func TestOptimalMatchesExhaustiveSearch(t *testing.T) {
	// Brute-force over all profiles on tiny instances.
	src := rng.New(12)
	for trial := 0; trial < 10; trial++ {
		g := randomGame(t, src, 4, 3, 4)
		opt, bnb, err := Optimal(g, solver.BnBConfig{}, src)
		if err != nil {
			t.Fatal(err)
		}
		if !bnb.Optimal {
			t.Fatal("BnB truncated on tiny instance")
		}
		best := math.Inf(1)
		var rec func(i int, p Profile)
		rec = func(i int, p Profile) {
			if i == g.Players() {
				if c := g.SocialCost(p); c < best {
					best = c
				}
				return
			}
			for s := 0; s < g.StrategyCount(i); s++ {
				p[i] = s
				rec(i+1, p)
			}
		}
		rec(0, make(Profile, g.Players()))
		if math.Abs(opt.Objective-best) > 1e-9*(best+1) {
			t.Fatalf("trial %d: Optimal = %v, brute force = %v", trial, opt.Objective, best)
		}
	}
}

func TestOptimalWithBudgetReportsGap(t *testing.T) {
	src := rng.New(13)
	g := randomGame(t, src, 25, 6, 10)
	_, bnb, err := Optimal(g, solver.BnBConfig{MaxNodes: 200}, src)
	if err != nil {
		t.Fatal(err)
	}
	if bnb.Optimal && bnb.Nodes > 200 {
		t.Error("budget exceeded yet marked optimal")
	}
	if bnb.Bound > bnb.Cost+1e-9 {
		t.Errorf("bound %v above cost %v", bnb.Bound, bnb.Cost)
	}
}

// Property: CGBA from any random start lands within the Theorem 2 factor
// of the exact optimum on small random instances.
func TestCGBAApproximationProperty(t *testing.T) {
	src := rng.New(14)
	prop := func(seed int64) bool {
		g := randomGame(t, src, 3+src.Intn(3), 2+src.Intn(2), 4)
		res, err := CGBA(g, CGBAConfig{}, src)
		if err != nil {
			return false
		}
		opt, bnb, err := Optimal(g, solver.BnBConfig{}, src)
		if err != nil || !bnb.Optimal {
			return false
		}
		return res.Objective <= 2.62*opt.Objective+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the potential strictly decreases along CGBA's improvement path
// (checked indirectly: the final potential never exceeds the initial one).
func TestCGBAPotentialDecreases(t *testing.T) {
	src := rng.New(15)
	for trial := 0; trial < 10; trial++ {
		g := randomGame(t, src, 12, 4, 6)
		initial := make(Profile, g.Players())
		for i := range initial {
			initial[i] = src.Intn(g.StrategyCount(i))
		}
		phi0 := g.Potential(initial)
		res, err := CGBA(g, CGBAConfig{Initial: initial}, src)
		if err != nil {
			t.Fatal(err)
		}
		if g.Potential(res.Profile) > phi0+1e-9 {
			t.Fatalf("trial %d: potential increased", trial)
		}
	}
}

func TestPivotRuleStrings(t *testing.T) {
	if PivotMaxImprovement.String() != "max-improvement" ||
		PivotRoundRobin.String() != "round-robin" ||
		PivotRandom.String() != "random" {
		t.Error("pivot rule strings wrong")
	}
	if PivotRule(9).String() != "PivotRule(9)" {
		t.Error("unknown pivot rule string wrong")
	}
}

func TestAllPivotRulesReachEquilibrium(t *testing.T) {
	src := rng.New(40)
	for trial := 0; trial < 8; trial++ {
		g := randomGame(t, src, 15, 4, 7)
		initial := make(Profile, g.Players())
		for i := range initial {
			initial[i] = src.Intn(g.StrategyCount(i))
		}
		for _, pivot := range []PivotRule{PivotMaxImprovement, PivotRoundRobin, PivotRandom} {
			res, err := CGBA(g, CGBAConfig{Initial: initial, Pivot: pivot}, rng.New(int64(trial)))
			if err != nil {
				t.Fatalf("pivot %v: %v", pivot, err)
			}
			if !g.IsEquilibrium(res.Profile, 0) {
				t.Errorf("trial %d pivot %v: not an equilibrium", trial, pivot)
			}
			if res.Iterations <= 0 && !g.IsEquilibrium(initial, 0) {
				t.Errorf("trial %d pivot %v: zero iterations from non-equilibrium start", trial, pivot)
			}
		}
	}
}

func TestPivotRulesApproximationHolds(t *testing.T) {
	// Theorem 2's bound relies only on reaching an equilibrium, so every
	// pivot rule must satisfy it.
	src := rng.New(41)
	for trial := 0; trial < 6; trial++ {
		g := randomGame(t, src, 5, 3, 5)
		opt, bnb, err := Optimal(g, solver.BnBConfig{}, src)
		if err != nil || !bnb.Optimal {
			t.Fatal(err)
		}
		for _, pivot := range []PivotRule{PivotRoundRobin, PivotRandom} {
			res, err := CGBA(g, CGBAConfig{Pivot: pivot}, rng.New(int64(trial)))
			if err != nil {
				t.Fatal(err)
			}
			if res.Objective > 2.62*opt.Objective+1e-9 {
				t.Errorf("trial %d pivot %v: %v > 2.62 × %v", trial, pivot, res.Objective, opt.Objective)
			}
		}
	}
}

func TestEnumerateEquilibria(t *testing.T) {
	// The 2-player load-balancing game has exactly two pure equilibria:
	// (0,1) and (1,0).
	g := twoPlayerGame(t)
	eqs, complete := g.EnumerateEquilibria(0)
	if !complete {
		t.Fatal("enumeration truncated without a cap")
	}
	if len(eqs) != 2 {
		t.Fatalf("equilibria = %v, want exactly 2", eqs)
	}
	for _, eq := range eqs {
		if eq[0] == eq[1] {
			t.Errorf("colliding profile %v reported as equilibrium", eq)
		}
	}
	// Cap below the profile count truncates.
	if _, complete := g.EnumerateEquilibria(2); complete {
		t.Error("cap of 2 on 4 profiles reported complete")
	}
}

func TestPriceOfAnarchyWithinTheorem2(t *testing.T) {
	// The empirical PoA on random micro instances must respect the 2.62
	// bound of Theorem 2 (which holds for every equilibrium CGBA reaches).
	src := rng.New(60)
	for trial := 0; trial < 10; trial++ {
		g := randomGame(t, src, 4, 3, 4)
		poa, err := g.PriceOfAnarchy(0)
		if err != nil {
			t.Fatal(err)
		}
		if poa < 1-1e-9 {
			t.Errorf("trial %d: PoA %v below 1", trial, poa)
		}
		if poa > 2.62+1e-9 {
			t.Errorf("trial %d: PoA %v breaks the 2.62 bound", trial, poa)
		}
	}
}

func TestPriceOfAnarchyErrors(t *testing.T) {
	g := twoPlayerGame(t)
	if _, err := g.PriceOfAnarchy(1); err == nil {
		t.Error("truncated enumeration accepted")
	}
}

func TestCGBAObjectiveTrace(t *testing.T) {
	src := rng.New(45)
	g := randomGame(t, src, 12, 4, 6)
	res, err := CGBA(g, CGBAConfig{TrackObjective: true}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ObjectiveTrace) != res.Iterations+1 {
		t.Fatalf("trace length %d, want iterations+1 = %d", len(res.ObjectiveTrace), res.Iterations+1)
	}
	// Final trace entry matches the reported objective.
	if last := res.ObjectiveTrace[len(res.ObjectiveTrace)-1]; math.Abs(last-res.Objective) > 1e-9 {
		t.Errorf("trace end %v ≠ objective %v", last, res.Objective)
	}
	// Untracked runs carry no trace.
	res2, err := CGBA(g, CGBAConfig{}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ObjectiveTrace != nil {
		t.Error("trace recorded without TrackObjective")
	}
}
