package game

import "eotora/internal/obs"

// Instruments are the observability hooks of an Engine. Every field is
// optional; nil instruments record nothing (obs handles are nil-safe),
// so the zero Instruments value is "observability off".
//
// The Engine tallies cache hits/misses and moves in plain per-engine
// fields during a solve — the Engine is single-goroutine by contract, so
// the hot loops pay no atomic operations — and flushes the tallies to
// the shared obs instruments once per CGBA/MCBA call. Tallies from
// direct PlayerCost/BestResponse queries outside a solve are flushed by
// the next solve on the same engine.
type Instruments struct {
	// CGBASolves counts Engine.CGBA calls.
	CGBASolves *obs.Counter
	// CGBAIterations records each CGBA call's improvement-step count (the
	// Figure 5/6 complexity metric, bounded by Theorem 2).
	CGBAIterations *obs.Histogram
	// MCBAIterations records each Engine.MCBA call's walk length.
	MCBAIterations *obs.Histogram
	// CacheHits counts refreshes that found a player's cached cost and
	// best response still valid.
	CacheHits *obs.Counter
	// CacheMisses counts refreshes that required full per-player
	// recomputation.
	CacheMisses *obs.Counter
	// Moves counts strategy switches applied to the engine's profile.
	Moves *obs.Counter
}

// SetInstruments installs observability hooks on the engine. Passing the
// zero Instruments turns recording off.
func (e *Engine) SetInstruments(in Instruments) { e.instr = in }

// engineTallies are the engine-local counters flushed per solve.
type engineTallies struct {
	hits, misses, moves int64
}

// flushInstr publishes and resets the engine-local tallies.
func (e *Engine) flushInstr() {
	if e.tally.hits != 0 {
		e.instr.CacheHits.Add(e.tally.hits)
	}
	if e.tally.misses != 0 {
		e.instr.CacheMisses.Add(e.tally.misses)
	}
	if e.tally.moves != 0 {
		e.instr.Moves.Add(e.tally.moves)
	}
	e.tally = engineTallies{}
}
