// Incremental population mutation: the churn half of the game arena.
//
// A Mutation streams the next slot's player set against the Builder's
// current arena, bulk-copying unchanged players (KeepPlayer) and
// restreaming changed or new ones (NextPlayer/NextStrategy/AddUse), into
// a spare double buffer. Commit validates the streamed players with
// Build's exact rules, swaps the spare arena into the stable *Game the
// Builder owns (the old arena becomes the next mutation's free buffer —
// a two-buffer free list with compaction on every commit), rebuilds the
// incidence indexes, and re-derives the stale premultiplied factors
// (every one of them, unless SetReweighted narrows the recompute to
// streamed players and declared resources). The
// committed game is bit-identical to a fresh Build of the same content,
// so solvers that reset on entry cannot observe whether a game was built
// or mutated.
//
// Engine.PrepareMutation / Engine.ApplyMutation carry the engine's
// per-player caches across a commit: kept players keep their cached
// costs and best responses unless a resource their strategies touch
// changed load or weight; removed players' load contributions are
// subtracted and streamed players' strategy-0 contributions added, so
// only the delta's resource neighborhood is re-evaluated on the next
// query.
package game

import (
	"errors"
	"fmt"
	"math"
)

// Mutation is an in-flight population change against a Builder's current
// game. Players are emitted in their new index order by interleaving
// KeepPlayer (old players, ascending) and NextPlayer streams; Commit
// finalizes. The Mutation is owned by its Builder and recycled by the
// next BeginMutation; it must not outlive the next Reset, BeginMutation,
// or Build call.
type Mutation struct {
	b             *Builder
	kept          []bool
	remap         []int32
	removed       []int32
	removedDone   bool
	reweighted    []int32
	hasReweighted bool
	maxUses       int
	lastOld       int
	err           error
}

// BeginMutation starts a population mutation against the Builder's
// current game, recycling the Builder-owned Mutation and its scratch (the
// churn hot path allocates nothing per slot). The caller may refill
// Weights() before Commit — declaring the edited resources via
// SetReweighted — and the resource count must stay fixed (Reset instead
// to change it).
func (b *Builder) BeginMutation() *Mutation {
	old := b.g.Players()
	m := &b.mut
	m.b = b
	m.kept = resizeBool(m.kept, old)
	for i := range m.kept {
		m.kept[i] = false
	}
	m.remap = m.remap[:0]
	m.removed = m.removed[:0]
	m.removedDone = false
	m.reweighted = nil
	m.hasReweighted = false
	m.maxUses = 0
	m.lastOld = -1
	m.err = nil
	b.spareUses = b.spareUses[:0]
	b.spareUseOff = append(b.spareUseOff[:0], 0)
	b.spareStrOff = append(b.spareStrOff[:0], 0)
	return m
}

// KeepPlayer copies old player old's strategies verbatim as the next new
// player. Old players must be kept in ascending order, each at most once.
func (m *Mutation) KeepPlayer(old int) {
	b := m.b
	g := &b.g
	if old < 0 || old >= g.Players() {
		m.fail(fmt.Errorf("game: keep player %d of %d", old, g.Players()))
		return
	}
	if old <= m.lastOld {
		m.fail(fmt.Errorf("game: keep player %d after %d (must ascend)", old, m.lastOld))
		return
	}
	m.lastOld = old
	first, last := g.playerStrategies(old)
	// The player's strategies occupy one contiguous use span; copy it with
	// a single append and rebase the per-strategy end offsets.
	useLo, useHi := g.useOff[first], g.useOff[last]
	base := int32(len(b.spareUses)) - useLo
	b.spareUses = append(b.spareUses, g.uses[useLo:useHi]...)
	for su := first; su < last; su++ {
		b.spareUseOff = append(b.spareUseOff, g.useOff[su+1]+base)
		if n := int(g.useOff[su+1] - g.useOff[su]); n > m.maxUses {
			m.maxUses = n
		}
	}
	b.spareStrOff = append(b.spareStrOff, int32(len(b.spareUseOff)-1))
	m.kept[old] = true
	m.remap = append(m.remap, int32(old))
}

// NextPlayer starts streaming a new (or restreamed) player, mirroring
// Builder.NextPlayer against the spare arena.
func (m *Mutation) NextPlayer() {
	b := m.b
	b.spareStrOff = append(b.spareStrOff, int32(len(b.spareUseOff)-1))
	m.remap = append(m.remap, -1)
}

// NextStrategy starts a new strategy for the player being streamed.
func (m *Mutation) NextStrategy() {
	b := m.b
	b.spareUseOff = append(b.spareUseOff, int32(len(b.spareUses)))
	b.spareStrOff[len(b.spareStrOff)-1] = int32(len(b.spareUseOff) - 1)
}

// AddUse appends one resource use to the strategy being streamed.
// Validation is deferred to Commit, matching Builder.AddUse.
func (m *Mutation) AddUse(resource int, weight float64) {
	b := m.b
	b.spareUses = append(b.spareUses, use{res: resource, w: weight})
	b.spareUseOff[len(b.spareUseOff)-1] = int32(len(b.spareUses))
}

// fail records the first streaming misuse; Commit reports it.
func (m *Mutation) fail(err error) {
	if m.err == nil {
		m.err = err
	}
}

// Remap returns the new→old player index map: Remap()[i] is the old
// index of new player i, or -1 when the player was streamed fresh. Valid
// after the final player has been emitted.
func (m *Mutation) Remap() []int32 { return m.remap }

// Removed returns the old player indices not kept by this mutation
// (departed players and restreamed ones alike), ascending. Valid after
// the final player has been emitted, before or after Commit.
func (m *Mutation) Removed() []int32 {
	if !m.removedDone {
		m.removedDone = true
		for i, k := range m.kept {
			if !k {
				m.removed = append(m.removed, int32(i))
			}
		}
	}
	return m.removed
}

// SetReweighted declares which resources had their Weights() entries
// edited since BeginMutation. With the declaration in place, Commit
// re-derives premultiplied factors only for streamed players and the
// declared resources — kept players' factors for untouched resources were
// copied bit-for-bit and stay exact. Without it, Commit conservatively
// recomputes every factor. The slice is aliased, not copied, and must
// stay unchanged until Commit returns.
func (m *Mutation) SetReweighted(resources []int32) {
	m.reweighted = resources
	m.hasReweighted = true
}

// Commit validates the streamed players under Build's exact rules and
// swaps the mutated arena into the Builder's stable *Game (the same
// pointer Build returns, so bound Engines observe the new structure).
// On error the previous arena is left intact — though Weights() edits
// made since BeginMutation persist, so callers falling back to a full
// rebuild must refill them.
func (m *Mutation) Commit() (*Game, error) {
	b := m.b
	g := &b.g
	if m.err != nil {
		return nil, m.err
	}
	if len(g.weights) == 0 {
		return nil, errors.New("game: no resources")
	}
	for r, w := range g.weights {
		if !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("game: resource %d has invalid weight %v", r, w)
		}
	}
	players := len(b.spareStrOff) - 1
	if players == 0 {
		return nil, errors.New("game: no players")
	}
	// Validate only the streamed players: kept spans passed these checks
	// at their original Build and were copied bit-for-bit. seenStrategy
	// carries serials from the previous Build, so clear it first.
	b.seenStrategy = resizeInt32(b.seenStrategy, len(g.weights))
	for r := range b.seenStrategy {
		b.seenStrategy[r] = -1
	}
	maxUses := m.maxUses
	for i := 0; i < players; i++ {
		if m.remap[i] >= 0 {
			continue
		}
		first, last := b.spareStrOff[i], b.spareStrOff[i+1]
		if first == last {
			return nil, fmt.Errorf("game: player %d has no strategies", i)
		}
		for su := first; su < last; su++ {
			lo, hi := int(b.spareUseOff[su]), int(b.spareUseOff[su+1])
			if lo == hi {
				return nil, fmt.Errorf("game: player %d strategy %d uses no resources", i, int(su-first))
			}
			if hi-lo > maxUses {
				maxUses = hi - lo
			}
			for _, u := range b.spareUses[lo:hi] {
				if u.res < 0 || u.res >= len(g.weights) {
					return nil, fmt.Errorf("game: player %d strategy %d references resource %d of %d", i, int(su-first), u.res, len(g.weights))
				}
				if !(u.w > 0) || math.IsInf(u.w, 0) {
					return nil, fmt.Errorf("game: player %d strategy %d has invalid weight %v", i, int(su-first), u.w)
				}
				if b.seenStrategy[u.res] == su {
					return nil, fmt.Errorf("game: player %d strategy %d uses resource %d twice", i, int(su-first), u.res)
				}
				b.seenStrategy[u.res] = su
			}
		}
	}
	g.uses, b.spareUses = b.spareUses, g.uses
	g.useOff, b.spareUseOff = b.spareUseOff, g.useOff
	g.strOff, b.spareStrOff = b.spareStrOff, g.strOff
	g.maxUses = maxUses
	g.structGen++
	g.weightGen++
	b.buildIncidence()
	if !m.hasReweighted {
		for k := range g.uses {
			u := &g.uses[k]
			u.wm = g.weights[u.res] * u.w
		}
		return g, nil
	}
	// Kept players carried their premultiplied factors bit-for-bit; only
	// streamed players and the declared reweighted resources are stale.
	for i := 0; i < players; i++ {
		if m.remap[i] >= 0 {
			continue
		}
		first, last := g.playerStrategies(i)
		for k := g.useOff[first]; k < g.useOff[last]; k++ {
			u := &g.uses[k]
			u.wm = g.weights[u.res] * u.w
		}
	}
	for _, r := range m.reweighted {
		for _, pos := range g.useIncPos[g.useIncOff[r]:g.useIncOff[r+1]] {
			u := &g.uses[pos]
			u.wm = g.weights[u.res] * u.w
		}
	}
	return g, nil
}

// AddPlayer appends one player with the given strategies to the built
// game through a single-player mutation (every existing player kept, the
// new one streamed last). It returns the new player's index. The arena
// is compacted on commit; the displaced buffer becomes the free spare
// for the next mutation.
func (b *Builder) AddPlayer(strategies [][]Use) (int, error) {
	m := b.BeginMutation()
	old := b.g.Players()
	for i := 0; i < old; i++ {
		m.KeepPlayer(i)
	}
	m.NextPlayer()
	for _, uses := range strategies {
		m.NextStrategy()
		for _, u := range uses {
			m.AddUse(u.Resource, u.Weight)
		}
	}
	if _, err := m.Commit(); err != nil {
		return 0, err
	}
	return old, nil
}

// RemovePlayer drops player i from the built game through a mutation
// that keeps everyone else, compacting the arena (players above i shift
// down by one).
func (b *Builder) RemovePlayer(i int) error {
	if i < 0 || i >= b.g.Players() {
		return fmt.Errorf("game: remove player %d of %d", i, b.g.Players())
	}
	m := b.BeginMutation()
	for j := 0; j < b.g.Players(); j++ {
		if j != i {
			m.KeepPlayer(j)
		}
	}
	_, err := m.Commit()
	return err
}

// StrategyUses returns a copy of player i's strategy s as exported Use
// values — the structural view equivalence tests compare across builds.
func (g *Game) StrategyUses(i, s int) []Use {
	uses := g.strategyUses(i, s)
	out := make([]Use, len(uses))
	for k, u := range uses {
		out[k] = Use{Resource: u.res, Weight: u.w}
	}
	return out
}

// PrepareMutation readies the engine for a mutation commit on its bound
// game: the current-strategy load contributions of the players about to
// be removed (Mutation.Removed — departures and restreams alike) are
// subtracted from the incrementally maintained loads, and the touched
// resources recorded for ApplyMutation's cache invalidation. Must be
// called before Mutation.Commit (it reads the old arena). When the
// engine's profile is not valid for the old game — nothing has been
// solved since Bind — there is no load state worth carrying and the
// engine falls back to a full rebind in ApplyMutation.
func (e *Engine) PrepareMutation(removed []int32) {
	e.mutTouched = e.mutTouched[:0]
	e.mutOK = e.g.Valid(e.profile)
	if !e.mutOK {
		return
	}
	g := e.g
	e.mutSeen = resizeBool(e.mutSeen, g.Resources())
	for r := range e.mutSeen {
		e.mutSeen[r] = false
	}
	for _, i := range removed {
		for _, u := range g.strategyUses(int(i), e.profile[i]) {
			e.loads[u.res] -= u.w
			if !e.mutSeen[u.res] {
				e.mutSeen[u.res] = true
				e.mutTouched = append(e.mutTouched, int32(u.res))
			}
		}
	}
}

// ApplyMutation rebinds the engine to the committed game, permuting the
// per-player caches through remap (new→old, -1 = streamed fresh) so kept
// players carry their cached costs and best responses across the commit.
// Streamed players enter on strategy 0 with their loads added and caches
// dirty; every player incident (in the new game) to a resource whose
// load or weight changed — the prepare step's touched set plus the
// caller-supplied extra set, e.g. resources reweighted since the last
// solve — is invalidated. Untouched resources keep bit-identical loads,
// so surviving caches remain exact. Resource-count changes or a skipped
// prepare degrade to Bind (all caches invalid, Reset before querying).
func (e *Engine) ApplyMutation(g *Game, remap []int32, extraTouched []int32) {
	if !e.mutOK || g.Resources() != len(e.loads) || len(remap) != g.Players() {
		e.Bind(g)
		return
	}
	n := g.Players()
	newProf := resizeProfile(e.mutProfile, n)
	newDirty := resizeBool(e.mutDirty, n)
	newCur := resizeFloat(e.mutCur, n)
	newBr := resizeFloat(e.mutBr, n)
	newStrat := resizeInt32(e.mutStrat, n)
	e.g = g
	for newi, old := range remap {
		if old >= 0 {
			newProf[newi] = e.profile[old]
			newDirty[newi] = e.dirty[old]
			newCur[newi] = e.curCost[old]
			newBr[newi] = e.brCost[old]
			newStrat[newi] = e.brStrat[old]
			continue
		}
		newProf[newi] = 0
		newDirty[newi] = true
		newCur[newi], newBr[newi], newStrat[newi] = 0, 0, 0
		for _, u := range g.strategyUses(newi, 0) {
			e.loads[u.res] += u.w
			if !e.mutSeen[u.res] {
				e.mutSeen[u.res] = true
				e.mutTouched = append(e.mutTouched, int32(u.res))
			}
		}
	}
	e.profile, e.mutProfile = newProf, e.profile
	e.dirty, e.mutDirty = newDirty, e.dirty
	e.curCost, e.mutCur = newCur, e.curCost
	e.brCost, e.mutBr = newBr, e.brCost
	e.brStrat, e.mutStrat = newStrat, e.brStrat
	e.saveLoad = resizeFloat(e.saveLoad, g.maxUses)
	e.saveRes = resizeInt32(e.saveRes, g.maxUses)
	for _, r := range e.mutTouched {
		e.markTouched(int(r))
	}
	for _, r := range extraTouched {
		e.markTouched(int(r))
	}
	e.mutOK = false
}
