package game

import (
	"math"
	"strings"
	"testing"

	"eotora/internal/rng"
)

// randomStrategies draws P2-A-shaped strategy sets (three uses per
// strategy, distinct resources) as raw Use lists, so the same content can
// be streamed through a Builder, a Mutation, or New.
func randomStrategies(src *rng.Source, players, strategies, resources int) [][][]Use {
	strats := make([][][]Use, players)
	for i := range strats {
		strats[i] = make([][]Use, strategies)
		for s := range strats[i] {
			perm := src.Perm(resources)
			strats[i][s] = []Use{
				{Resource: perm[0], Weight: src.Uniform(0.2, 3)},
				{Resource: perm[1], Weight: src.Uniform(0.2, 3)},
				{Resource: perm[2], Weight: src.Uniform(0.2, 3)},
			}
		}
	}
	return strats
}

// streamInto streams weights and strategies into the builder and builds.
func streamInto(t *testing.T, b *Builder, weights []float64, strats [][][]Use) *Game {
	t.Helper()
	b.Reset(len(weights))
	copy(b.Weights(), weights)
	for _, player := range strats {
		b.NextPlayer()
		for _, strat := range player {
			b.NextStrategy()
			for _, u := range strat {
				b.AddUse(u.Resource, u.Weight)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// requireGamesEqual compares two games structurally — weights, strategy
// sets, and the derived costs on a shared profile must be bit-identical,
// the mutation path's build-equivalence contract.
func requireGamesEqual(t *testing.T, got, want *Game) {
	t.Helper()
	if got.Players() != want.Players() || got.Resources() != want.Resources() {
		t.Fatalf("shape: got %d players x %d resources, want %d x %d",
			got.Players(), got.Resources(), want.Players(), want.Resources())
	}
	for r := 0; r < want.Resources(); r++ {
		if math.Float64bits(got.ResourceWeight(r)) != math.Float64bits(want.ResourceWeight(r)) {
			t.Fatalf("resource %d weight: got %v, want %v", r, got.ResourceWeight(r), want.ResourceWeight(r))
		}
	}
	profile := make(Profile, want.Players())
	for i := 0; i < want.Players(); i++ {
		if got.StrategyCount(i) != want.StrategyCount(i) {
			t.Fatalf("player %d: got %d strategies, want %d", i, got.StrategyCount(i), want.StrategyCount(i))
		}
		for s := 0; s < want.StrategyCount(i); s++ {
			gu, wu := got.StrategyUses(i, s), want.StrategyUses(i, s)
			if len(gu) != len(wu) {
				t.Fatalf("player %d strategy %d: got %d uses, want %d", i, s, len(gu), len(wu))
			}
			for k := range wu {
				if gu[k].Resource != wu[k].Resource ||
					math.Float64bits(gu[k].Weight) != math.Float64bits(wu[k].Weight) {
					t.Fatalf("player %d strategy %d use %d: got %+v, want %+v", i, s, k, gu[k], wu[k])
				}
			}
		}
		profile[i] = s0ForBoth(got, want, i)
	}
	// The premultiplied factors must match too: identical social cost and
	// potential on a shared profile, bit for bit.
	if math.Float64bits(got.SocialCost(profile)) != math.Float64bits(want.SocialCost(profile)) {
		t.Fatalf("social cost: got %v, want %v", got.SocialCost(profile), want.SocialCost(profile))
	}
	if math.Float64bits(got.Potential(profile)) != math.Float64bits(want.Potential(profile)) {
		t.Fatalf("potential: got %v, want %v", got.Potential(profile), want.Potential(profile))
	}
}

// s0ForBoth picks a strategy valid in both games (0 always is).
func s0ForBoth(got, want *Game, i int) int {
	_ = got
	_ = want
	_ = i
	return 0
}

// TestAddPlayerMatchesFreshBuild: AddPlayer must leave the game
// bit-identical to a fresh build that included the player from the start,
// at the same *Game address the Builder already handed out.
func TestAddPlayerMatchesFreshBuild(t *testing.T) {
	src := rng.New(41)
	weights := []float64{1.5, 0.7, 2.1, 1.0, 0.9}
	strats := randomStrategies(src, 4, 3, len(weights))
	extra := randomStrategies(src, 1, 2, len(weights))[0]

	b := NewBuilder()
	g := streamInto(t, b, weights, strats)
	idx, err := b.AddPlayer(extra)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 4 {
		t.Fatalf("new player index %d, want 4", idx)
	}
	if b2g, _ := b.Build, g; b2g == nil || g != &b.g {
		t.Fatal("AddPlayer did not commit into the Builder's stable game")
	}
	want := streamInto(t, NewBuilder(), weights, append(append([][][]Use(nil), strats...), extra))
	requireGamesEqual(t, g, want)
}

// TestRemovePlayerMatchesFreshBuild: removing any player compacts the
// arena into the fresh build without that player.
func TestRemovePlayerMatchesFreshBuild(t *testing.T) {
	src := rng.New(42)
	weights := []float64{1.2, 0.8, 1.7, 1.1}
	strats := randomStrategies(src, 5, 3, len(weights))
	for remove := 0; remove < len(strats); remove++ {
		b := NewBuilder()
		g := streamInto(t, b, weights, strats)
		if err := b.RemovePlayer(remove); err != nil {
			t.Fatal(err)
		}
		var rest [][][]Use
		for i, p := range strats {
			if i != remove {
				rest = append(rest, p)
			}
		}
		requireGamesEqual(t, g, streamInto(t, NewBuilder(), weights, rest))
	}
	b := NewBuilder()
	streamInto(t, b, weights, strats)
	if err := b.RemovePlayer(-1); err == nil {
		t.Error("RemovePlayer(-1) accepted")
	}
	if err := b.RemovePlayer(5); err == nil {
		t.Error("RemovePlayer past the end accepted")
	}
}

// TestMutationRestreamEquivalence is the double-buffer property test:
// random keep/drop/restream/append mutations with interleaved emission and
// a concurrent reweight must commit to exactly the fresh build of the same
// content — Build and Commit are indistinguishable to any reader.
func TestMutationRestreamEquivalence(t *testing.T) {
	src := rng.New(43)
	for trial := 0; trial < 30; trial++ {
		resources := 3 + src.Intn(6)
		oldPlayers := 2 + src.Intn(8)
		weights := make([]float64, resources)
		for r := range weights {
			weights[r] = src.Uniform(0.5, 2)
		}
		strats := randomStrategies(src, oldPlayers, 1+src.Intn(4), resources)
		b := NewBuilder()
		g := streamInto(t, b, weights, strats)

		// Choose keeps (random subset, order preserved) and new players.
		var keeps []int
		for i := 0; i < oldPlayers; i++ {
			if src.Float64() < 0.6 {
				keeps = append(keeps, i)
			}
		}
		newCount := src.Intn(4)
		if len(keeps) == 0 && newCount == 0 {
			newCount = 1
		}
		news := randomStrategies(src, newCount, 1+src.Intn(3), resources)

		// Optionally reweight mid-mutation.
		newWeights := append([]float64(nil), weights...)
		if src.Float64() < 0.5 {
			for r := range newWeights {
				newWeights[r] = src.Uniform(0.5, 2)
			}
		}

		m := b.BeginMutation()
		copy(b.Weights(), newWeights)
		var want [][][]Use
		ki, ni := 0, 0
		for ki < len(keeps) || ni < len(news) {
			takeKeep := ki < len(keeps) && (ni >= len(news) || src.Float64() < 0.5)
			if takeKeep {
				m.KeepPlayer(keeps[ki])
				want = append(want, strats[keeps[ki]])
				ki++
				continue
			}
			m.NextPlayer()
			for _, strat := range news[ni] {
				m.NextStrategy()
				for _, u := range strat {
					m.AddUse(u.Resource, u.Weight)
				}
			}
			want = append(want, news[ni])
			ni++
		}
		remap := append([]int32(nil), m.Remap()...)
		removed := append([]int32(nil), m.Removed()...)
		g2, err := m.Commit()
		if err != nil {
			t.Fatal(err)
		}
		if g2 != g {
			t.Fatal("Commit returned a different *Game than Build")
		}
		requireGamesEqual(t, g2, streamInto(t, NewBuilder(), newWeights, want))

		// Remap/Removed bookkeeping: every kept player maps to its old
		// index, every old index is kept xor removed.
		kept := make(map[int32]bool)
		for newi, old := range remap {
			if old >= 0 {
				kept[old] = true
				if int(old) != keeps[indexOf(remapKeeps(remap), newi)] {
					// (cross-checked below via the kept set instead)
					_ = newi
				}
			}
		}
		for i := 0; i < oldPlayers; i++ {
			isRemoved := contains32(removed, int32(i))
			if kept[int32(i)] == isRemoved {
				t.Fatalf("old player %d: kept=%v removed=%v", i, kept[int32(i)], isRemoved)
			}
		}
	}
}

// remapKeeps lists the new indices whose remap entry is a keep.
func remapKeeps(remap []int32) []int {
	var out []int
	for newi, old := range remap {
		if old >= 0 {
			out = append(out, newi)
		}
	}
	return out
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return 0
}

func contains32(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestMutationErrors: streaming misuse and invalid streamed content must
// fail Commit with Build's messages and leave the old arena readable.
func TestMutationErrors(t *testing.T) {
	src := rng.New(44)
	weights := []float64{1, 1, 1, 1}
	strats := randomStrategies(src, 3, 2, len(weights))
	build := func() (*Builder, *Game) {
		b := NewBuilder()
		return b, streamInto(t, b, weights, strats)
	}
	cases := []struct {
		name   string
		stream func(m *Mutation)
		substr string
	}{
		{"keep out of range", func(m *Mutation) { m.KeepPlayer(3) }, "keep player 3 of 3"},
		{"keep descending", func(m *Mutation) { m.KeepPlayer(1); m.KeepPlayer(0) }, "must ascend"},
		{"keep twice", func(m *Mutation) { m.KeepPlayer(1); m.KeepPlayer(1) }, "must ascend"},
		{"no players", func(m *Mutation) {}, "no players"},
		{"empty player", func(m *Mutation) { m.NextPlayer() }, "no strategies"},
		{"empty strategy", func(m *Mutation) { m.NextPlayer(); m.NextStrategy() }, "uses no resources"},
		{"bad resource", func(m *Mutation) {
			m.NextPlayer()
			m.NextStrategy()
			m.AddUse(9, 1)
		}, "references resource 9"},
		{"bad weight", func(m *Mutation) {
			m.NextPlayer()
			m.NextStrategy()
			m.AddUse(0, math.Inf(1))
		}, "invalid weight"},
		{"duplicate resource", func(m *Mutation) {
			m.NextPlayer()
			m.NextStrategy()
			m.AddUse(0, 1)
			m.AddUse(0, 2)
		}, "uses resource 0 twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, g := build()
			m := b.BeginMutation()
			tc.stream(m)
			if _, err := m.Commit(); err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("Commit error = %v, want substring %q", err, tc.substr)
			}
			// The old arena must still read back intact.
			requireGamesEqual(t, g, streamInto(t, NewBuilder(), weights, strats))
		})
	}
}

// TestEngineMutationCarry: PrepareMutation/ApplyMutation must leave the
// engine consistent with the committed game — loads within accumulation
// tolerance of a from-scratch recomputation, kept players carrying their
// profile, streamed players on strategy 0 — and solvable to equilibrium.
func TestEngineMutationCarry(t *testing.T) {
	src := rng.New(45)
	for trial := 0; trial < 20; trial++ {
		resources := 4 + src.Intn(5)
		players := 3 + src.Intn(8)
		weights := make([]float64, resources)
		for r := range weights {
			weights[r] = src.Uniform(0.5, 2)
		}
		strats := randomStrategies(src, players, 2+src.Intn(3), resources)
		b := NewBuilder()
		g := streamInto(t, b, weights, strats)
		e := NewEngine(g)
		e.ResetRandom(src)
		// Warm the caches with a few moves.
		for step := 0; step < 10; step++ {
			i := src.Intn(players)
			if err := e.Move(i, src.Intn(g.StrategyCount(i))); err != nil {
				t.Fatal(err)
			}
		}
		oldProfile := e.Profile().Clone()

		// Drop one player, keep the rest, stream one new player.
		drop := src.Intn(players)
		extra := randomStrategies(src, 1, 2, resources)[0]
		m := b.BeginMutation()
		for i := 0; i < players; i++ {
			if i != drop {
				m.KeepPlayer(i)
			}
		}
		m.NextPlayer()
		for _, strat := range extra {
			m.NextStrategy()
			for _, u := range strat {
				m.AddUse(u.Resource, u.Weight)
			}
		}
		e.PrepareMutation(m.Removed())
		g2, err := m.Commit()
		if err != nil {
			t.Fatal(err)
		}
		e.ApplyMutation(g2, m.Remap(), nil)

		if e.Game() != g2 {
			t.Fatal("engine not bound to the committed game")
		}
		p := e.Profile()
		if len(p) != g2.Players() {
			t.Fatalf("profile has %d entries, want %d", len(p), g2.Players())
		}
		for newi, old := range m.Remap() {
			want := 0
			if old >= 0 {
				want = oldProfile[old]
			}
			if p[newi] != want {
				t.Fatalf("player %d carries strategy %d, want %d", newi, p[newi], want)
			}
		}
		fresh := g2.Loads(p)
		for r := range fresh {
			if diff := math.Abs(e.Loads()[r] - fresh[r]); diff > 1e-9*(math.Abs(fresh[r])+1) {
				t.Fatalf("resource %d load %v drifted from recomputed %v", r, e.Loads()[r], fresh[r])
			}
		}
		for i := 0; i < g2.Players(); i++ {
			want := g2.PlayerCost(p, fresh, i)
			if diff := math.Abs(e.PlayerCost(i) - want); diff > 1e-9*(math.Abs(want)+1) {
				t.Fatalf("player %d cost %v drifted from recomputed %v", i, e.PlayerCost(i), want)
			}
		}
		if _, err := e.CGBA(CGBAConfig{}, src); err != nil {
			t.Fatal(err)
		}
		if !e.IsEquilibrium(0) {
			t.Fatal("CGBA after mutation did not reach equilibrium")
		}
	}
}

// TestApplyMutationFallsBackToBind: without a PrepareMutation (or after a
// resource-count change) ApplyMutation must degrade to a plain Bind.
func TestApplyMutationFallsBackToBind(t *testing.T) {
	src := rng.New(46)
	weights := []float64{1, 1, 1}
	b := NewBuilder()
	g := streamInto(t, b, weights, randomStrategies(src, 3, 2, len(weights)))
	e := NewEngine(g)
	e.ResetRandom(src)
	if _, err := b.AddPlayer(randomStrategies(src, 1, 2, len(weights))[0]); err != nil {
		t.Fatal(err)
	}
	// No PrepareMutation ran, so this must take the Bind path and leave
	// the engine queryable after a Reset.
	e.ApplyMutation(g, make([]int32, g.Players()), nil)
	if e.Game() != g {
		t.Fatal("fallback did not bind the new game")
	}
	e.ResetRandom(src)
	if _, err := e.CGBA(CGBAConfig{}, src); err != nil {
		t.Fatal(err)
	}
}
