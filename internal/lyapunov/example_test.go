package lyapunov_test

import (
	"fmt"
	"log"

	"eotora/internal/lyapunov"
)

// ExampleDPP shows one drift-plus-penalty slot: score candidate decisions
// with Objective, perform the best, then Commit the realized violation.
func ExampleDPP() {
	dpp, err := lyapunov.NewDPP(100 /* V */, 0 /* Q(1) */)
	if err != nil {
		log.Fatal(err)
	}
	// Slot 1: cheap power, overspend a little to win latency.
	fmt.Printf("objective: %.0f\n", dpp.Objective(2.0 /* latency */, 0.3 /* θ */))
	dpp.Commit(0.3)
	// Slot 2: the queue now charges for overspending.
	fmt.Printf("backlog: %.1f\n", dpp.Queue.Backlog())
	fmt.Printf("objective: %.2f\n", dpp.Objective(2.0, 0.3))
	// Output:
	// objective: 200
	// backlog: 0.3
	// objective: 200.09
}
