// Package lyapunov provides the virtual-queue machinery of the paper's
// drift-plus-penalty (DPP) scheme: a scalar virtual queue tracking
// accumulated budget violation, and the per-slot objective weights that
// trade the penalty (latency) against the drift (energy-cost slack).
package lyapunov

import (
	"errors"
	"math"
	"sort"
)

// Queue is the virtual queue of equation (21):
//
//	Q(t+1) = max{Q(t) + θ(t), 0},
//
// where θ(t) = C_t − C̄ is the slot's budget violation. The zero value is
// a queue starting at Q(1) = 0.
type Queue struct {
	backlog float64
}

// NewQueue returns a queue with the given initial backlog Q(1);
// negative initial backlogs are clamped to zero.
func NewQueue(initial float64) *Queue {
	if initial < 0 || math.IsNaN(initial) {
		initial = 0
	}
	return &Queue{backlog: initial}
}

// Backlog returns the current Q(t).
func (q *Queue) Backlog() float64 { return q.backlog }

// Update applies equation (21) with violation θ(t) and returns the new
// backlog.
func (q *Queue) Update(theta float64) float64 {
	q.backlog = math.Max(q.backlog+theta, 0)
	return q.backlog
}

// DPP bundles the drift-plus-penalty weights: the per-slot objective is
// V·penalty + Q(t)·θ(t), minimized jointly over the slot's decisions.
type DPP struct {
	// V is the penalty weight: larger V favors lower latency at the price
	// of a larger converged backlog (Theorem 4's O(1/V) vs O(V) tradeoff).
	V     float64
	Queue *Queue
}

// CheckV validates a penalty weight: V must be positive and finite for
// the drift-plus-penalty objective to trade latency against backlog at
// all (shared by NewDPP and the online V retuning paths).
func CheckV(v float64) error {
	if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
		return errors.New("lyapunov: V must be positive and finite")
	}
	return nil
}

// NewDPP returns a DPP with the given V and initial backlog.
func NewDPP(v, initialBacklog float64) (*DPP, error) {
	if err := CheckV(v); err != nil {
		return nil, err
	}
	return &DPP{V: v, Queue: NewQueue(initialBacklog)}, nil
}

// Objective returns the drift-plus-penalty value V·penalty + Q·θ for a
// candidate decision's penalty and constraint violation.
func (d *DPP) Objective(penalty, theta float64) float64 {
	return d.V*penalty + d.Queue.Backlog()*theta
}

// Commit advances the queue with the realized violation θ(t) and returns
// the new backlog.
func (d *DPP) Commit(theta float64) float64 {
	return d.Queue.Update(theta)
}

// QueueSet maintains one virtual queue per named constraint — the
// multi-constraint generalization of the paper's single energy-cost
// budget (e.g. one budget per edge-server room). Keys are arbitrary
// integer identifiers.
type QueueSet struct {
	queues map[int]*Queue
}

// NewQueueSet creates a set with a zero-backlog queue per key.
func NewQueueSet(keys []int) *QueueSet {
	qs := &QueueSet{queues: make(map[int]*Queue, len(keys))}
	for _, k := range keys {
		qs.queues[k] = NewQueue(0)
	}
	return qs
}

// Keys returns the sorted constraint identifiers.
func (qs *QueueSet) Keys() []int {
	keys := make([]int, 0, len(qs.queues))
	for k := range qs.queues {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Backlog returns the backlog of queue k, or zero for unknown keys.
func (qs *QueueSet) Backlog(k int) float64 {
	q, ok := qs.queues[k]
	if !ok {
		return 0
	}
	return q.Backlog()
}

// Backlogs returns a copy of all backlogs.
func (qs *QueueSet) Backlogs() map[int]float64 {
	out := make(map[int]float64, len(qs.queues))
	for k, q := range qs.queues {
		out[k] = q.Backlog()
	}
	return out
}

// Update applies θ_k(t) to queue k; unknown keys are ignored and report 0.
func (qs *QueueSet) Update(k int, theta float64) float64 {
	q, ok := qs.queues[k]
	if !ok {
		return 0
	}
	return q.Update(theta)
}

// Set forces queue k to the given backlog (checkpoint restore).
func (qs *QueueSet) Set(k int, backlog float64) {
	qs.queues[k] = NewQueue(backlog)
}

// TotalBacklog returns Σ_k Q_k(t).
func (qs *QueueSet) TotalBacklog() float64 {
	total := 0.0
	for _, q := range qs.queues {
		total += q.Backlog()
	}
	return total
}

// Penalty returns Σ_k Q_k·θ_k for candidate violations (keys absent from
// thetas contribute nothing).
func (qs *QueueSet) Penalty(thetas map[int]float64) float64 {
	total := 0.0
	for k, theta := range thetas {
		if q, ok := qs.queues[k]; ok {
			total += q.Backlog() * theta
		}
	}
	return total
}
