package lyapunov

import (
	"math"
	"testing"
	"testing/quick"

	"eotora/internal/rng"
)

func TestQueueUpdate(t *testing.T) {
	tests := []struct {
		name   string
		init   float64
		thetas []float64
		want   float64
	}{
		{name: "accumulates positive violations", init: 0, thetas: []float64{1, 2, 3}, want: 6},
		{name: "clamps at zero", init: 0, thetas: []float64{5, -10}, want: 0},
		{name: "recovers after clamp", init: 0, thetas: []float64{-3, 4}, want: 4},
		{name: "initial backlog", init: 10, thetas: []float64{-4}, want: 6},
		{name: "negative initial clamped", init: -5, thetas: nil, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := NewQueue(tt.init)
			for _, th := range tt.thetas {
				q.Update(th)
			}
			if got := q.Backlog(); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("backlog = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestQueueNaNInitialClamped(t *testing.T) {
	if got := NewQueue(math.NaN()).Backlog(); got != 0 {
		t.Errorf("NaN initial backlog = %v, want 0", got)
	}
}

func TestQueueZeroValueUsable(t *testing.T) {
	var q Queue
	if q.Backlog() != 0 {
		t.Error("zero-value queue has non-zero backlog")
	}
	if got := q.Update(2.5); got != 2.5 {
		t.Errorf("Update = %v, want 2.5", got)
	}
}

// Property: backlog is always ≥ 0 and matches the explicit recursion.
func TestQueueProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		q := NewQueue(0)
		ref := 0.0
		for _, th := range raw {
			if math.IsNaN(th) || math.Abs(th) > 1e12 {
				continue
			}
			got := q.Update(th)
			ref = math.Max(ref+th, 0)
			if got < 0 || math.Abs(got-ref) > 1e-9*(ref+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Stability: with negative-mean violations the time-averaged backlog stays
// bounded (Q/T → 0), the feasibility condition of Assumption 1.
func TestQueueStability(t *testing.T) {
	src := rng.New(1)
	q := NewQueue(0)
	const slots = 50000
	for i := 0; i < slots; i++ {
		q.Update(src.Normal(-0.2, 1)) // E[θ] = −0.2 < 0
	}
	if avg := q.Backlog() / slots; avg > 0.01 {
		t.Errorf("Q(T)/T = %v, want ≈ 0 for stable queue", avg)
	}
}

func TestNewDPPValidation(t *testing.T) {
	for _, v := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewDPP(v, 0); err == nil {
			t.Errorf("NewDPP(%v) accepted", v)
		}
	}
	d, err := NewDPP(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.V != 50 || d.Queue.Backlog() != 3 {
		t.Errorf("DPP = %+v", d)
	}
}

func TestDPPObjective(t *testing.T) {
	d, err := NewDPP(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(2) // Q = 2
	// V·penalty + Q·θ = 100·1.5 + 2·0.5 = 151.
	if got := d.Objective(1.5, 0.5); math.Abs(got-151) > 1e-12 {
		t.Errorf("Objective = %v, want 151", got)
	}
}

func TestDPPCommitAdvancesQueue(t *testing.T) {
	d, err := NewDPP(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Commit(3); got != 3 {
		t.Errorf("Commit = %v, want 3", got)
	}
	if got := d.Commit(-5); got != 0 {
		t.Errorf("Commit = %v, want 0", got)
	}
}

// Property: larger V weights the penalty more for any fixed (penalty, θ)
// with positive penalty.
func TestDPPMonotoneInV(t *testing.T) {
	prop := func(penalty, theta float64) bool {
		if math.IsNaN(penalty) || math.IsNaN(theta) || math.Abs(penalty) > 1e12 || math.Abs(theta) > 1e12 {
			return true
		}
		penalty = math.Abs(penalty)
		d1, err1 := NewDPP(10, 5)
		d2, err2 := NewDPP(20, 5)
		if err1 != nil || err2 != nil {
			return false
		}
		d1.Queue.Update(5)
		d2.Queue.Update(5)
		return d2.Objective(penalty, theta) >= d1.Objective(penalty, theta)-1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQueueSetBasics(t *testing.T) {
	qs := NewQueueSet([]int{2, 0, 1})
	if got := qs.Keys(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("Keys = %v", got)
	}
	qs.Update(0, 5)
	qs.Update(1, -3)
	qs.Update(2, 2)
	if qs.Backlog(0) != 5 || qs.Backlog(1) != 0 || qs.Backlog(2) != 2 {
		t.Errorf("backlogs = %v", qs.Backlogs())
	}
	if qs.TotalBacklog() != 7 {
		t.Errorf("TotalBacklog = %v", qs.TotalBacklog())
	}
	// Unknown key: ignored.
	if qs.Update(9, 10) != 0 || qs.Backlog(9) != 0 {
		t.Error("unknown key not ignored")
	}
	// Penalty: Σ Q·θ = 5·1 + 0·1 + 2·(−2) = 1.
	p := qs.Penalty(map[int]float64{0: 1, 1: 1, 2: -2, 9: 100})
	if math.Abs(p-1) > 1e-12 {
		t.Errorf("Penalty = %v, want 1", p)
	}
	qs.Set(0, 42)
	if qs.Backlog(0) != 42 {
		t.Error("Set did not take effect")
	}
}

func TestQueueSetStability(t *testing.T) {
	// Each queue independently stable under negative-mean violations.
	qs := NewQueueSet([]int{0, 1})
	src := rng.New(9)
	const slots = 20000
	for i := 0; i < slots; i++ {
		qs.Update(0, src.Normal(-0.3, 1))
		qs.Update(1, src.Normal(-0.1, 1))
	}
	if avg := qs.TotalBacklog() / slots; avg > 0.02 {
		t.Errorf("queue set not stable: total/T = %v", avg)
	}
}
