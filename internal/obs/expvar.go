package obs

import (
	"expvar"
	"fmt"
	"sync"
)

// published tracks expvar names this package owns, so a name can be
// re-pointed at a new registry (expvar itself forbids re-publication).
var published = struct {
	sync.Mutex
	m map[string]*publishedVar
}{m: make(map[string]*publishedVar)}

type publishedVar struct {
	mu sync.Mutex
	r  *Registry
}

func (p *publishedVar) get() *Registry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.r
}

func (p *publishedVar) set(r *Registry) {
	p.mu.Lock()
	p.r = r
	p.mu.Unlock()
}

// PublishExpvar exposes the registry's live snapshot under the given
// expvar name (served by /debug/vars). Publishing the same name again —
// e.g. a fresh registry for a new run — re-points the existing expvar at
// the new registry. Publishing a name already taken by a non-obs expvar
// is an error. Nil registries publish as empty snapshots.
func (r *Registry) PublishExpvar(name string) error {
	published.Lock()
	defer published.Unlock()
	if p, ok := published.m[name]; ok {
		p.set(r)
		return nil
	}
	if expvar.Get(name) != nil {
		return fmt.Errorf("obs: expvar name %q already in use", name)
	}
	p := &publishedVar{r: r}
	published.m[name] = p
	expvar.Publish(name, expvar.Func(func() any { return p.get().Snapshot() }))
	return nil
}
