// Package obs is the solver observability layer: allocation-free
// instrumentation primitives (atomic counters, fixed-bucket log-scale
// histograms, gauges) collected in a Registry that the solver stack
// threads through its hot paths.
//
// Three invariants make it safe to leave instrumentation wired in
// permanently (DESIGN.md §8):
//
//  1. Nil-safe: every method on a nil *Registry, *Counter, *Gauge, or
//     *Histogram is a no-op, so instrumented code needs no "is
//     observability on?" branches — an unset registry costs one nil
//     check per record.
//  2. Alloc-free on the hot path: Counter.Add, Gauge.Set, and
//     Histogram.Observe perform only atomic operations on preallocated
//     memory. All allocation happens at registration (Registry.Counter
//     et al.) or snapshot time.
//  3. Mergeable: Registry.Merge folds another registry into this one
//     (counters and histogram buckets add, gauges keep the maximum), so
//     per-worker registries from a parameter sweep combine into one
//     fleet view without any cross-worker synchronization during the run.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Safe for
// concurrent use; all methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge holds the latest value of an instantaneous quantity (e.g. the
// virtual-queue backlog Q(t)). Safe for concurrent use; no-op when nil.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// max folds v into the gauge, keeping the larger value (merge semantics).
func (g *Gauge) max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Histogram bucket layout: numBuckets fixed power-of-two buckets.
// Bucket i (0 < i < numBuckets−1) counts values in [2^(i−32), 2^(i−31));
// bucket 0 is the underflow bucket (v < 2^−31, including zero, negative,
// and NaN observations — Θ_t can be negative when the slot runs under
// budget); the last bucket is the overflow bucket (v ≥ 2^31). The layout
// spans nanoseconds to gigaunits with ~1 significant bit of resolution,
// enough to see the shape of iteration counts, latencies, and backlogs
// without any per-histogram configuration.
const (
	numBuckets = 64
	minExp     = -31 // exponent of bucket 1's lower bound
)

// bucketIndex maps an observation to its bucket.
func bucketIndex(v float64) int {
	if !(v > 0) { // negative, zero, or NaN
		return 0
	}
	if math.IsInf(v, 1) {
		return numBuckets - 1
	}
	// Frexp: v = frac·2^exp with frac ∈ [0.5, 1), so v ∈ [2^(exp−1), 2^exp).
	_, exp := math.Frexp(v)
	idx := exp - 1 - minExp + 1 // bucket 1 holds [2^minExp, 2^(minExp+1))
	if idx < 0 {
		return 0
	}
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// BucketUpperBound returns the exclusive upper bound of bucket i
// (+Inf for the overflow bucket).
func BucketUpperBound(i int) float64 {
	if i >= numBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, minExp+i) // bucket 0 → 2^minExp, bucket 1 → 2^(minExp+1), …
}

// Histogram is a fixed-bucket log₂-scale histogram with running count,
// sum, min, and max. Safe for concurrent use; no-op when nil. Observe
// performs only atomic operations — no allocation, no locks.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // float64 bits; initialized to +Inf
	maxBits atomic.Uint64 // float64 bits; initialized to −Inf
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.addSum(v)
	h.updateMin(v)
	h.updateMax(v)
}

func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (h *Histogram) updateMin(v float64) {
	for {
		old := h.minBits.Load()
		if !(v < math.Float64frombits(old)) {
			return
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (h *Histogram) updateMax(v float64) {
	for {
		old := h.maxBits.Load()
		if !(v > math.Float64frombits(old)) {
			return
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// merge folds src's state into h.
func (h *Histogram) merge(src *Histogram) {
	for i := range src.buckets {
		if n := src.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	h.addSum(src.Sum())
	h.updateMin(math.Float64frombits(src.minBits.Load()))
	h.updateMax(math.Float64frombits(src.maxBits.Load()))
}

// Registry names and owns a set of instruments. The zero value is not
// usable; call New. A nil *Registry is the "observability off" state:
// every accessor returns a nil instrument whose methods are no-ops.
//
// Instrument lookup takes a mutex and may allocate; hot paths should
// resolve instruments once (at controller/engine construction) and hold
// the typed handles.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Merge folds src into r: counters and histogram buckets/counts/sums
// add, histogram min/max combine, and gauges keep the maximum of the two
// values (the peak across merged workers). Merging a nil src, or calling
// on a nil receiver, is a no-op. src should be quiescent; concurrent
// writes to src during a merge may be partially included.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil || r == src {
		return
	}
	// Snapshot src's instrument tables under its lock, then fold without
	// holding both locks at once (avoids lock-order trouble).
	src.mu.Lock()
	counters := make(map[string]*Counter, len(src.counters))
	for k, v := range src.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(src.gauges))
	for k, v := range src.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for k, v := range src.hists {
		hists[k] = v
	}
	src.mu.Unlock()

	for name, c := range counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range gauges {
		r.Gauge(name).max(g.Value())
	}
	for name, h := range hists {
		if h.Count() == 0 {
			continue
		}
		r.Histogram(name).merge(h)
	}
}
