package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{math.Inf(-1), 0},
		{-1, 0},
		{0, 0},
		{math.NaN(), 0},
		{math.SmallestNonzeroFloat64, 0}, // far below 2^-31
		{math.Ldexp(1, -32), 0},          // just under bucket 1's lower bound
		{math.Ldexp(1, -31), 1},          // bucket 1 lower bound, inclusive
		{math.Ldexp(1.5, -31), 1},
		{math.Ldexp(1, -30), 2}, // bucket 1 upper bound is exclusive
		{0.5, 31},               // [2^-1, 2^0)
		{1, 32},                 // [2^0, 2^1)
		{1.999, 32},
		{2, 33},
		{3, 33},
		{1e9, 61}, // 2^29.9 ∈ [2^29, 2^30)
		{math.Ldexp(1, 30), 62},
		{math.Ldexp(1, 31), 63}, // overflow bucket
		{math.MaxFloat64, 63},
		{math.Inf(1), 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every finite positive observation lands in a bucket whose bounds
	// contain it: lower = BucketUpperBound(i-1), upper = BucketUpperBound(i).
	for _, v := range []float64{1e-9, 3.7e-4, 0.25, 1, 42, 1e6, 2.9e9} {
		i := bucketIndex(v)
		lo, hi := BucketUpperBound(i-1), BucketUpperBound(i)
		if i == 0 {
			lo = math.Inf(-1)
		}
		if !(v >= lo && v < hi) {
			t.Errorf("v=%g in bucket %d with bounds [%g, %g)", v, i, lo, hi)
		}
	}
}

func TestBucketUpperBound(t *testing.T) {
	if got := BucketUpperBound(0); got != math.Ldexp(1, -31) {
		t.Errorf("BucketUpperBound(0) = %g, want 2^-31", got)
	}
	if got := BucketUpperBound(32); got != 2 {
		t.Errorf("BucketUpperBound(32) = %g, want 2", got)
	}
	if !math.IsInf(BucketUpperBound(numBuckets-1), 1) {
		t.Error("overflow bucket upper bound should be +Inf")
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	h := r.Histogram("lat")
	g := r.Gauge("q")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i%7) + 0.5)
				g.Set(float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	wantSum := float64(workers) * (1000.0/7*21 + float64(per)*0.5)
	_ = wantSum // sum is CAS-accumulated; just check it is sane
	if s := h.Sum(); s <= 0 || s > float64(workers*per)*7 {
		t.Errorf("histogram sum %g out of range", s)
	}
	if v := g.Value(); v < 0 || v >= workers {
		t.Errorf("gauge = %g, want a worker index", v)
	}
}

func TestNilRegistryNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// None of these may panic, and all reads are zero values.
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments must read as zero")
	}
	r.Merge(New())
	New().Merge(r)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestObserveAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1.5)
		h.Observe(2.5)
	})
	if allocs != 0 {
		t.Errorf("hot-path record allocated %.1f times per op, want 0", allocs)
	}
	var nilC *Counter
	var nilH *Histogram
	allocs = testing.AllocsPerRun(1000, func() {
		nilC.Inc()
		nilH.Observe(2.5)
	})
	if allocs != 0 {
		t.Errorf("nil-instrument record allocated %.1f times per op, want 0", allocs)
	}
}

func TestMergeSemantics(t *testing.T) {
	a, b := New(), New()
	a.Counter("n").Add(3)
	b.Counter("n").Add(4)
	b.Counter("only_b").Add(1)
	a.Gauge("peak").Set(2)
	b.Gauge("peak").Set(5)
	for i := 0; i < 3; i++ {
		a.Histogram("h").Observe(1)
	}
	b.Histogram("h").Observe(100)

	a.Merge(b)
	if got := a.Counter("n").Value(); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("only_b").Value(); got != 1 {
		t.Errorf("counter created by merge = %d, want 1", got)
	}
	if got := a.Gauge("peak").Value(); got != 5 {
		t.Errorf("merged gauge = %g, want max 5", got)
	}
	h := a.Snapshot().Histograms["h"]
	if h.Count != 4 || h.Sum != 103 || h.Min != 1 || h.Max != 100 {
		t.Errorf("merged histogram = %+v, want count 4 sum 103 min 1 max 100", h)
	}
	// Self-merge must not double anything.
	a.Merge(a)
	if got := a.Counter("n").Value(); got != 7 {
		t.Errorf("self-merge changed counter to %d", got)
	}
}

func TestSnapshotStats(t *testing.T) {
	r := New()
	h := r.Histogram("h")
	for _, v := range []float64{1, 2, 4, 8, 1000} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != 5 || s.Sum != 1015 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if m := s.Mean(); m != 203 {
		t.Errorf("mean = %g, want 203", m)
	}
	// p50 falls in the bucket of the 3rd observation (value 4 → le 8).
	if q := s.Quantile(0.5); q != 8 {
		t.Errorf("p50 = %g, want 8", q)
	}
	if q := s.Quantile(1); q != s.Max {
		t.Errorf("p100 = %g, want max %g", q, s.Max)
	}
	if !math.IsNaN(HistogramSnapshot{}.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	if !math.IsNaN(HistogramSnapshot{}.Mean()) {
		t.Error("empty histogram mean should be NaN")
	}
}

func TestSnapshotWriteJSONCSV(t *testing.T) {
	r := New()
	r.Counter("slots").Add(10)
	r.Gauge("backlog").Set(1.25)
	r.Histogram("t").Observe(0.5)
	snap := r.Snapshot()

	var jsonBuf bytes.Buffer
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(jsonBuf.Bytes(), &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, jsonBuf.String())
	}

	var csvBuf bytes.Buffer
	if err := snap.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	out := csvBuf.String()
	for _, want := range []string{
		"kind,name,field,value\n",
		"counter,slots,value,10\n",
		"gauge,backlog,value,1.25\n",
		"histogram,t,count,1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestPublishExpvar(t *testing.T) {
	r := New()
	r.Counter("c").Add(2)
	if err := r.PublishExpvar("obs_test_registry"); err != nil {
		t.Fatal(err)
	}
	v := expvar.Get("obs_test_registry")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if !strings.Contains(v.String(), `"c":2`) {
		t.Errorf("expvar value missing counter: %s", v.String())
	}
	// Re-publishing re-points the same name at a new registry.
	r2 := New()
	r2.Counter("c").Add(9)
	if err := r2.PublishExpvar("obs_test_registry"); err != nil {
		t.Fatalf("re-publish: %v", err)
	}
	if !strings.Contains(expvar.Get("obs_test_registry").String(), `"c":9`) {
		t.Error("re-publish did not re-point the expvar")
	}
	// A name owned by someone else is an error.
	expvar.NewInt("obs_test_foreign")
	if err := New().PublishExpvar("obs_test_foreign"); err == nil {
		t.Error("publishing over a foreign expvar should fail")
	}
}
