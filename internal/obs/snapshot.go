package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Bucket is one non-empty histogram bucket in a snapshot. Le is the
// bucket's exclusive upper bound (+Inf for the overflow bucket).
type Bucket struct {
	// Le is the bucket's exclusive upper bound.
	Le float64 `json:"le"`
	// Count is the number of observations below Le and above the
	// previous bucket's bound.
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Min and Max
// are NaN when the histogram has no observations.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Min is the smallest observation.
	Min float64 `json:"min"`
	// Max is the largest observation.
	Max float64 `json:"max"`
	// Buckets holds the non-empty buckets in ascending bound order.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observation (NaN when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile: the upper
// bound of the bucket in which the cumulative count crosses q·Count.
// Within a bucket the true value is at most one octave lower. Returns
// NaN when the histogram is empty or q is outside [0, 1].
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for _, b := range h.Buckets {
		cum += b.Count
		if float64(cum) >= rank {
			// The exact Max is a tighter upper bound than the last
			// bucket's bound (and the only finite one for overflow).
			return math.Min(b.Le, h.Max)
		}
	}
	return h.Max
}

// Snapshot is a point-in-time copy of a registry, ordered and
// JSON-serializable. Produced by Registry.Snapshot; safe to retain and
// marshal after the registry keeps mutating.
type Snapshot struct {
	// Counters maps counter names to their totals.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges maps gauge names to their last-set values.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms maps histogram names to their distribution copies.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. On a nil registry it
// returns an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	s.Counters = make(map[string]int64, len(counters))
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	s.Gauges = make(map[string]float64, len(gauges))
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(hists))
	for name, h := range hists {
		s.Histograms[name] = snapshotHistogram(h)
	}
	return s
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.Sum(),
		Min:   math.Float64frombits(h.minBits.Load()),
		Max:   math.Float64frombits(h.maxBits.Load()),
	}
	if out.Count == 0 {
		out.Min, out.Max = math.NaN(), math.NaN()
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			out.Buckets = append(out.Buckets, Bucket{Le: BucketUpperBound(i), Count: n})
		}
	}
	return out
}

// jsonSafe maps NaN/±Inf (invalid in JSON) to string-free sentinels:
// NaN → 0 count histograms keep their NaN min/max out of the wire format
// by omission at the call site; ±Inf bucket bounds become the largest
// finite float. Kept tiny on purpose — the snapshot is diagnostic data.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return math.MaxFloat64
	}
	if math.IsInf(v, -1) {
		return -math.MaxFloat64
	}
	return v
}

// MarshalJSON renders the snapshot with NaN/Inf made JSON-safe.
func (h HistogramSnapshot) MarshalJSON() ([]byte, error) {
	type bucketJSON struct {
		Le    float64 `json:"le"`
		Count int64   `json:"count"`
	}
	buckets := make([]bucketJSON, len(h.Buckets))
	for i, b := range h.Buckets {
		buckets[i] = bucketJSON{Le: jsonSafe(b.Le), Count: b.Count}
	}
	return json.Marshal(struct {
		Count   int64        `json:"count"`
		Sum     float64      `json:"sum"`
		Min     float64      `json:"min"`
		Max     float64      `json:"max"`
		Mean    float64      `json:"mean"`
		P50     float64      `json:"p50"`
		P99     float64      `json:"p99"`
		Buckets []bucketJSON `json:"buckets,omitempty"`
	}{
		Count:   h.Count,
		Sum:     jsonSafe(h.Sum),
		Min:     jsonSafe(h.Min),
		Max:     jsonSafe(h.Max),
		Mean:    jsonSafe(h.Mean()),
		P50:     jsonSafe(h.Quantile(0.5)),
		P99:     jsonSafe(h.Quantile(0.99)),
		Buckets: buckets,
	})
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as long-format CSV:
// kind,name,field,value — one row per counter/gauge value and per
// histogram summary statistic, in sorted name order.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "kind,name,field,value\n"); err != nil {
		return err
	}
	row := func(kind, name, field string, value float64) error {
		_, err := io.WriteString(w, kind+","+name+","+field+","+
			strconv.FormatFloat(jsonSafe(value), 'g', 10, 64)+"\n")
		return err
	}
	for _, name := range sortedKeys(s.Counters) {
		if err := row("counter", name, "value", float64(s.Counters[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if err := row("gauge", name, "value", s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fields := []struct {
			field string
			value float64
		}{
			{"count", float64(h.Count)},
			{"sum", h.Sum},
			{"min", h.Min},
			{"max", h.Max},
			{"mean", h.Mean()},
			{"p50", h.Quantile(0.5)},
			{"p99", h.Quantile(0.99)},
		}
		for _, f := range fields {
			if err := row("histogram", name, f.field, f.value); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders a compact single-line summary, handy for logs.
func (s Snapshot) String() string {
	return fmt.Sprintf("obs.Snapshot{%d counters, %d gauges, %d histograms}",
		len(s.Counters), len(s.Gauges), len(s.Histograms))
}
