// Package par provides a fixed-size, reusable worker pool for
// deterministic intra-slot parallelism. The per-slot solve of the online
// controller fans three embarrassingly parallel loops — the per-server
// P2-B minimizations, the CGBA best-response rescans, and the Lemma-1
// accumulators — across a Pool whose workers persist for the life of the
// run: no goroutine is spawned per slot, per round, or per region.
//
// Determinism is the contract, not a best effort. A Pool never changes
// *what* is computed, only *where*: a parallel region is a set of shards
// whose work items write disjoint, preallocated output slots, and every
// reduction over those slots happens on the caller in fixed shard order
// after Run returns. Combined with Span's fixed shard boundaries and the
// rule that no RNG is drawn inside a region, results are bit-identical
// for every pool size — including nil (no pool at all), which the hot
// paths treat as "run the exact serial code". DESIGN.md §9 carries the
// full argument; the pool-matrix tests in game and core enforce it.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"eotora/internal/obs"
)

// Metric names recorded by an instrumented Pool (see Instrument).
const (
	// MetricRegions counts parallel regions dispatched through the pool
	// (serial fallbacks — nil pool, size 1, single shard — don't count).
	MetricRegions = "par.regions"
	// MetricRegionShards is a histogram of shards per region — the shard
	// utilization: regions with fewer shards than workers leave workers
	// idle.
	MetricRegionShards = "par.region_shards"
	// MetricWorkers is a gauge holding the pool size (caller + helpers).
	MetricWorkers = "par.workers"
)

// Task is one parallel region's work, split into shards. Run(shard) must
// touch only state owned by that shard (typically a Span of a shared
// output slice); shards of one region run concurrently on the pool's
// workers and on the caller.
//
// Task is an interface rather than a func value so hot paths can hand
// the pool a pointer to a persistent struct: converting a pointer to an
// interface does not allocate, keeping parallel regions off the heap in
// steady state.
type Task interface {
	// Run executes one shard's slice of the region; shard ranges over
	// [0, shards) as passed to Pool.Run.
	Run(shard int)
}

// Pool is a fixed-size set of reusable workers. The zero-value-adjacent
// states degrade gracefully: a nil *Pool and a size-1 Pool both execute
// Run entirely on the caller, exercising the same code path as the
// serial solver. A Pool is reusable across regions, rounds, and slots,
// but regions must not overlap: one Run at a time, and Run must not be
// called from inside a Task (regions do not nest).
type Pool struct {
	size int // workers including the caller; >= 1

	// Region state, written by Run before waking helpers (the channel
	// send/receive pair publishes it) and read-only during the region.
	task   Task
	shards int
	next   atomic.Int64 // next shard to claim

	wake chan struct{} // one token wakes one helper
	wg   sync.WaitGroup

	instr Instruments
}

// New returns a Pool of the given size (caller + size−1 helper
// goroutines). size <= 0 selects runtime.GOMAXPROCS(0); size 1 returns a
// pool with no helpers that runs every region on the caller. Call Close
// when done to release the helpers.
func New(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{size: size}
	if size > 1 {
		p.wake = make(chan struct{})
		for w := 0; w < size-1; w++ {
			go p.worker(p.wake)
		}
	}
	return p
}

// Size returns the pool's worker count (including the caller). A nil
// pool has size 1: the caller alone.
func (p *Pool) Size() int {
	if p == nil {
		return 1
	}
	return p.size
}

// Run executes t.Run(s) for every shard s in [0, shards), distributing
// shards across the helpers and the calling goroutine, and returns when
// all shards are done. Shards are claimed dynamically (load-balanced),
// which is safe precisely because shard identity, not claim order,
// determines what a shard computes and where it writes.
//
// On a nil pool, a size-1 pool, or a single-shard region, Run degrades
// to a plain serial loop on the caller.
func (p *Pool) Run(shards int, t Task) {
	if shards <= 0 {
		return
	}
	if p == nil || p.size == 1 || shards == 1 {
		for s := 0; s < shards; s++ {
			t.Run(s)
		}
		return
	}
	p.task = t
	p.shards = shards
	p.next.Store(0)
	helpers := p.size - 1
	if helpers > shards-1 {
		helpers = shards - 1
	}
	p.wg.Add(helpers)
	for w := 0; w < helpers; w++ {
		p.wake <- struct{}{}
	}
	p.drain()
	p.wg.Wait()
	p.task = nil
	p.instr.Regions.Inc()
	p.instr.RegionShards.Observe(float64(shards))
}

// drain claims and runs shards until none remain.
func (p *Pool) drain() {
	for {
		s := int(p.next.Add(1)) - 1
		if s >= p.shards {
			return
		}
		p.task.Run(s)
	}
}

// worker receives the wake channel as an argument rather than reading
// p.wake, which Close nils out (possibly before a freshly spawned
// worker's first receive).
func (p *Pool) worker(wake <-chan struct{}) {
	for range wake {
		p.drain()
		p.wg.Done()
	}
}

// Close releases the helper goroutines. The pool remains usable: after
// Close it behaves as a size-1 pool, running regions serially on the
// caller. Close must not race with Run and is not idempotent-safe from
// multiple goroutines; call it once from the owner.
func (p *Pool) Close() {
	if p == nil || p.size == 1 {
		return
	}
	close(p.wake)
	p.size = 1
	p.wake = nil
}

// Span returns the half-open range [lo, hi) of items shard s of shards
// owns out of n items: fixed boundaries, contiguous, in order, differing
// by at most one in length. Every caller that shards the same n the same
// way gets the same decomposition — part of the determinism contract
// (reductions walk shards 0..shards−1, which is items 0..n−1 in order).
func Span(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// Instruments are the pool's observability hooks; all fields are
// optional (obs handles are nil-safe).
type Instruments struct {
	// Regions counts parallel regions executed (Pool.Run calls).
	Regions *obs.Counter
	// RegionShards records each region's shard count.
	RegionShards *obs.Histogram
}

// Instrument resolves the pool's instruments from a registry (nil
// detaches them). It must not be called concurrently with Run.
func (p *Pool) Instrument(reg *obs.Registry) {
	if p == nil {
		return
	}
	if reg == nil {
		p.instr = Instruments{}
		return
	}
	p.instr = Instruments{
		Regions:      reg.Counter(MetricRegions),
		RegionShards: reg.Histogram(MetricRegionShards),
	}
	reg.Gauge(MetricWorkers).Set(float64(p.size))
}
