package par

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"eotora/internal/obs"
)

// fillTask writes shard indices into disjoint spans of out — the shape
// every real region has: per-shard work, preallocated slots.
type fillTask struct {
	out    []int
	shards int
}

func (t *fillTask) Run(shard int) {
	lo, hi := Span(len(t.out), t.shards, shard)
	for i := lo; i < hi; i++ {
		t.out[i] = shard
	}
}

// countTask counts Run invocations (atomically: shards run concurrently).
type countTask struct{ n atomic.Int64 }

func (t *countTask) Run(int) { t.n.Add(1) }

func poolSizes() []int {
	return []int{1, 2, 3, runtime.NumCPU(), runtime.NumCPU() + 2}
}

func TestSpanPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 16, 100, 1023} {
		for shards := 1; shards <= 9; shards++ {
			prev := 0
			for s := 0; s < shards; s++ {
				lo, hi := Span(n, shards, s)
				if lo != prev {
					t.Fatalf("Span(%d, %d, %d): lo = %d, want %d (contiguous)", n, shards, s, lo, prev)
				}
				if hi < lo {
					t.Fatalf("Span(%d, %d, %d): hi %d < lo %d", n, shards, s, hi, lo)
				}
				if d := hi - lo; d > n/shards+1 {
					t.Fatalf("Span(%d, %d, %d): span length %d unbalanced", n, shards, s, d)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("Span(%d, %d, ·): covers %d items", n, shards, prev)
			}
		}
	}
}

func TestRunCoversAllShards(t *testing.T) {
	for _, size := range poolSizes() {
		p := New(size)
		for _, shards := range []int{1, 2, size, 3 * size, 17} {
			task := &fillTask{out: make([]int, 101), shards: shards}
			for i := range task.out {
				task.out[i] = -1
			}
			p.Run(shards, task)
			for i, got := range task.out {
				lo, _ := Span(len(task.out), shards, got)
				_, hi := Span(len(task.out), shards, got)
				if got < 0 || got >= shards || i < lo || i >= hi {
					t.Fatalf("size %d shards %d: out[%d] = %d", size, shards, i, got)
				}
			}
		}
		p.Close()
	}
}

func TestRunNilPool(t *testing.T) {
	var p *Pool
	if got := p.Size(); got != 1 {
		t.Fatalf("nil pool Size() = %d, want 1", got)
	}
	task := &countTask{}
	p.Run(5, task)
	if got := task.n.Load(); got != 5 {
		t.Fatalf("nil pool ran %d shards, want 5", got)
	}
	p.Close()         // no-op
	p.Instrument(nil) // no-op
}

func TestRunZeroShards(t *testing.T) {
	p := New(4)
	defer p.Close()
	task := &countTask{}
	p.Run(0, task)
	p.Run(-3, task)
	if got := task.n.Load(); got != 0 {
		t.Fatalf("ran %d shards for empty regions", got)
	}
}

func TestPoolReuse(t *testing.T) {
	p := New(3)
	defer p.Close()
	task := &countTask{}
	const regions, shards = 200, 7
	for r := 0; r < regions; r++ {
		p.Run(shards, task)
	}
	if got := task.n.Load(); got != regions*shards {
		t.Fatalf("ran %d shard executions, want %d", got, regions*shards)
	}
}

func TestCloseDegradesToSerial(t *testing.T) {
	p := New(4)
	p.Close()
	if got := p.Size(); got != 1 {
		t.Fatalf("Size after Close = %d, want 1", got)
	}
	task := &countTask{}
	p.Run(6, task) // must run on the caller, no helpers left
	if got := task.n.Load(); got != 6 {
		t.Fatalf("closed pool ran %d shards, want 6", got)
	}
	p.Close() // second Close is a no-op
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	p := New(0)
	defer p.Close()
	if got, want := p.Size(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Size() = %d, want %d", got, want)
	}
}

// sumTask accumulates per-shard partial sums into preallocated slots;
// the caller reduces in shard order — the canonical deterministic
// reduction.
type sumTask struct {
	in     []float64
	part   []float64
	shards int
}

func (t *sumTask) Run(shard int) {
	lo, hi := Span(len(t.in), t.shards, shard)
	s := 0.0
	for i := lo; i < hi; i++ {
		s += t.in[i]
	}
	t.part[shard] = s
}

// TestShardedReductionDeterministic locks the pattern the solvers rely
// on: identical shard counts yield bit-identical reductions regardless
// of pool size or scheduling.
func TestShardedReductionDeterministic(t *testing.T) {
	in := make([]float64, 1000)
	x := 0.5
	for i := range in {
		x = 4 * x * (1 - x) // chaotic but deterministic values
		in[i] = x
	}
	const shards = 8
	want := math.NaN()
	for _, size := range poolSizes() {
		p := New(size)
		for rep := 0; rep < 5; rep++ {
			task := &sumTask{in: in, part: make([]float64, shards), shards: shards}
			p.Run(shards, task)
			total := 0.0
			for _, s := range task.part {
				total += s
			}
			if math.IsNaN(want) {
				want = total
			} else if math.Float64bits(total) != math.Float64bits(want) {
				t.Fatalf("size %d rep %d: sum bits %x, want %x",
					size, rep, math.Float64bits(total), math.Float64bits(want))
			}
		}
		p.Close()
	}
}

func TestInstruments(t *testing.T) {
	reg := obs.New()
	p := New(2)
	defer p.Close()
	p.Instrument(reg)
	task := &countTask{}
	p.Run(4, task) // parallel region: recorded
	p.Run(1, task) // single shard: serial fallback, not recorded
	snap := reg.Snapshot()
	if got := snap.Counters[MetricRegions]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricRegions, got)
	}
	if got := snap.Gauges[MetricWorkers]; got != 2 {
		t.Fatalf("%s = %v, want 2", MetricWorkers, got)
	}
	h, ok := snap.Histograms[MetricRegionShards]
	if !ok || h.Count != 1 || h.Sum != 4 {
		t.Fatalf("%s = %+v, want count 1 sum 4", MetricRegionShards, h)
	}
	p.Instrument(nil) // detach: further regions don't record
	p.Run(4, task)
	if got := reg.Snapshot().Counters[MetricRegions]; got != 1 {
		t.Fatalf("detached pool still recorded: %d", got)
	}
}
