// Package plot renders numeric series as plain-text charts for terminal
// output: multi-series line charts on a character grid and compact
// sparklines. cmd/experiments uses it to preview figures without leaving
// the shell; nothing here affects the recorded data.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// markers label up to eight overlaid series on one grid.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Series is one named line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Config sizes a chart.
type Config struct {
	// Width and Height are the plot-area dimensions in characters;
	// non-positive values select 72×20.
	Width, Height int
	// Title is printed above the grid.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// LogY plots log10(y); non-positive values are dropped.
	LogY bool
}

func (c *Config) normalize() {
	if c.Width <= 0 {
		c.Width = 72
	}
	if c.Height <= 0 {
		c.Height = 20
	}
	if c.Width < 16 {
		c.Width = 16
	}
	if c.Height < 4 {
		c.Height = 4
	}
}

// Lines renders the series overlaid on one grid with a shared scale,
// axis annotations, and a legend.
func Lines(w io.Writer, cfg Config, series ...Series) error {
	cfg.normalize()
	if len(series) == 0 {
		_, err := io.WriteString(w, "(no series)\n")
		return err
	}
	if len(series) > len(markers) {
		return fmt.Errorf("plot: %d series exceeds the %d-marker limit", len(series), len(markers))
	}

	// Global ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			y := s.Y[i]
			if cfg.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(s.X[i]) || math.IsNaN(y) || math.IsInf(s.X[i], 0) || math.IsInf(y, 0) {
				continue
			}
			points++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if points == 0 {
		_, err := io.WriteString(w, "(no finite points)\n")
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	for si, s := range series {
		mark := markers[si]
		for i := range s.X {
			y := s.Y[i]
			if cfg.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if math.IsNaN(s.X[i]) || math.IsNaN(y) || math.IsInf(s.X[i], 0) || math.IsInf(y, 0) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(cfg.Width-1))
			row := cfg.Height - 1 - int((y-ymin)/(ymax-ymin)*float64(cfg.Height-1))
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	yTop, yBottom := ymax, ymin
	suffix := ""
	if cfg.LogY {
		suffix = " (log10)"
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", yTop, string(grid[0]))
	for r := 1; r < cfg.Height-1; r++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", yBottom, string(grid[cfg.Height-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", cfg.Width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", cfg.Width/2, xmin, cfg.Width-cfg.Width/2, xmax)
	if cfg.XLabel != "" || cfg.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s%s\n", "", cfg.XLabel, cfg.YLabel, suffix)
	}
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", markers[si], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sparkLevels are the eight block glyphs of a sparkline.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline returns a one-line block-glyph rendering of ys, or an empty
// string for empty input. NaN/Inf values render as spaces.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			continue
		}
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(ys))
	}
	span := hi - lo
	var b strings.Builder
	for _, y := range ys {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			b.WriteByte(' ')
			continue
		}
		level := 0
		if span > 0 {
			level = int((y - lo) / span * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[level])
	}
	return b.String()
}
