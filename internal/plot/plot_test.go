package plot

import (
	"math"
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	var sb strings.Builder
	err := Lines(&sb, Config{Width: 40, Height: 8, Title: "demo", XLabel: "t", YLabel: "v"},
		Series{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		Series{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "* up", "o down", "x: t", "y: v"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The increasing series must put a '*' in the top row and one in the
	// bottom row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") {
		t.Errorf("no marker in top row: %q", lines[1])
	}
}

func TestLinesEmptyAndDegenerate(t *testing.T) {
	var sb strings.Builder
	if err := Lines(&sb, Config{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no series") {
		t.Error("empty call should say no series")
	}
	sb.Reset()
	// All-NaN series.
	if err := Lines(&sb, Config{}, Series{Name: "nan", X: []float64{1}, Y: []float64{math.NaN()}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no finite points") {
		t.Error("NaN-only series should report no finite points")
	}
	// Constant series must not divide by zero.
	sb.Reset()
	if err := Lines(&sb, Config{}, Series{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}); err != nil {
		t.Fatal(err)
	}
}

func TestLinesErrors(t *testing.T) {
	var sb strings.Builder
	err := Lines(&sb, Config{}, Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}})
	if err == nil {
		t.Error("length mismatch accepted")
	}
	many := make([]Series, 9)
	for i := range many {
		many[i] = Series{Name: "s", X: []float64{1}, Y: []float64{1}}
	}
	if err := Lines(&sb, Config{}, many...); err == nil {
		t.Error("9 series accepted with 8 markers")
	}
}

func TestLinesLogY(t *testing.T) {
	var sb strings.Builder
	err := Lines(&sb, Config{Width: 30, Height: 6, LogY: true, YLabel: "ms"},
		Series{Name: "time", X: []float64{1, 2, 3}, Y: []float64{0.01, 1, 10000}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(log10)") {
		t.Error("log axis not labeled")
	}
	// Non-positive values under LogY must be dropped, not crash.
	sb.Reset()
	err = Lines(&sb, Config{LogY: true}, Series{Name: "z", X: []float64{1, 2}, Y: []float64{-1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no finite points") {
		t.Error("all-nonpositive LogY should report no finite points")
	}
}

func TestLinesTinyDimensionsClamped(t *testing.T) {
	var sb strings.Builder
	err := Lines(&sb, Config{Width: 1, Height: 1},
		Series{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Error("no output")
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("Sparkline = %q", got)
	}
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty Sparkline = %q", got)
	}
	// Constant input renders the lowest level everywhere.
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("flat Sparkline = %q", got)
	}
	// NaN becomes a space.
	if got := Sparkline([]float64{0, math.NaN(), 1}); got != "▁ █" {
		t.Errorf("NaN Sparkline = %q", got)
	}
	// All-NaN yields spaces.
	if got := Sparkline([]float64{math.NaN(), math.NaN()}); got != "  " {
		t.Errorf("all-NaN Sparkline = %q", got)
	}
}
