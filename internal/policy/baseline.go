package policy

import (
	"errors"
	"fmt"
	"time"

	"eotora/internal/core"
	"eotora/internal/game"
	"eotora/internal/lyapunov"
	"eotora/internal/obs"
	"eotora/internal/rng"
	"eotora/internal/trace"
)

// pickFunc chooses a slot's selection. src is the slot's derived RNG
// source; deterministic policies ignore it.
type pickFunc func(b *baseline, st *trace.State, src *rng.Source) (core.Selection, error)

// baseline is the shared frame of the comparison policies: a fixed
// frequency operating point (Ω^L or Ω^U), a per-policy selection rule,
// and the same virtual-queue accounting the controller runs, so
// backlogs and objectives are comparable across policies. Baselines
// never degrade: every slot is RungFull or a hard error.
type baseline struct {
	name  string
	sys   *core.System
	dpp   *lyapunov.DPP
	rooms *lyapunov.QueueSet // per-room queues; nil in global-budget mode
	seed  int64
	slot  int
	freq  core.Frequencies
	pick  pickFunc

	// p2a is the reusable game arena of the profile-based baselines
	// (greedy-*/random); the churn-mutation fast path applies between
	// slots exactly as it does for the controller.
	p2a core.P2A

	obs   *obs.Registry
	instr baselineInstr
}

// baselineInstr mirrors the controller's per-slot instrument set
// (core.Metric* names) so dashboards and merged sweeps read identically
// across policies. All handles are nil-safe.
type baselineInstr struct {
	slots    *obs.Counter
	decision *obs.Histogram
	latency  *obs.Histogram
	theta    *obs.Histogram
	backlog  *obs.Histogram
	backlogG *obs.Gauge
}

// newBaseline builds one of the non-BDMA comparison policies.
func newBaseline(name string, sys *core.System, cfg Config) (*baseline, error) {
	if sys == nil {
		return nil, errors.New("policy: nil system")
	}
	dpp, err := lyapunov.NewDPP(cfg.V, cfg.InitialBacklog)
	if err != nil {
		return nil, fmt.Errorf("policy: %w", err)
	}
	b := &baseline{
		name: name,
		sys:  sys,
		dpp:  dpp,
		seed: cfg.Seed,
	}
	switch name {
	case GreedyEnergy:
		b.freq, b.pick = sys.LowestFrequencies(), pickGreedy
	case GreedyDeadline:
		b.freq, b.pick = sys.HighestFrequencies(), pickGreedy
	case Random:
		b.freq, b.pick = sys.LowestFrequencies(), pickRandom
	case LocalOnly:
		b.freq, b.pick = sys.LowestFrequencies(), pickLocalOnly
	case EdgeOnly:
		b.freq, b.pick = sys.HighestFrequencies(), pickEdgeOnly
	default:
		return nil, fmt.Errorf("policy: %q is not a baseline", name)
	}
	if sys.RoomBudgets != nil {
		if err := sys.ValidateRoomBudgets(); err != nil {
			return nil, err
		}
		keys := make([]int, 0, len(sys.Net.Rooms))
		for _, r := range sys.Net.Rooms {
			keys = append(keys, r.ID)
		}
		b.rooms = lyapunov.NewQueueSet(keys)
	}
	return b, nil
}

// Name identifies the baseline policy.
func (b *baseline) Name() string { return b.name }

// System returns the system the baseline decides for.
func (b *baseline) System() *core.System { return b.sys }

// Slot returns the last decided slot index.
func (b *baseline) Slot() int { return b.slot }

// V returns the penalty weight pricing the baseline's objective.
func (b *baseline) V() float64 { return b.dpp.V }

// Backlog returns the current virtual-queue backlog Q(t).
func (b *baseline) Backlog() float64 {
	if b.rooms != nil {
		return b.rooms.TotalBacklog()
	}
	return b.dpp.Queue.Backlog()
}

// Decide makes one slot's decision: the per-policy selection rule at the
// policy's fixed frequency point, the Lemma-1 allocation materialized,
// and the same pricing and queue update Algorithm 1 performs — so the
// recorded latency/cost/backlog series are apples-to-apples with BDMA's.
func (b *baseline) Decide(slot int, st *trace.State) (*core.SlotResult, error) {
	start := time.Now()
	if slot != b.slot+1 {
		return nil, fmt.Errorf("policy: Decide slot %d, %s expects %d", slot, b.name, b.slot+1)
	}
	b.slot++
	if err := b.sys.CheckState(st); err != nil {
		return nil, fmt.Errorf("policy: %s slot %d: %w", b.name, b.slot, err)
	}
	src := rng.New(b.seed).Derive(fmt.Sprintf("policy-%s-slot-%d", b.name, b.slot))
	sel, err := b.pick(b, st, src)
	if err != nil {
		return nil, fmt.Errorf("policy: %s slot %d: %w", b.name, b.slot, err)
	}
	if err := b.sys.Validate(sel, st); err != nil {
		return nil, fmt.Errorf("policy: %s slot %d: %w", b.name, b.slot, err)
	}

	alloc := b.sys.OptimalAllocation(sel, st)
	decision := core.Decision{Selection: sel, Allocation: alloc, Freq: b.freq}
	total, perDevice := b.sys.LatencyOf(decision, st)
	out := &core.SlotResult{
		Slot:       b.slot,
		Decision:   decision,
		Latency:    total,
		PerDevice:  perDevice,
		EnergyCost: b.sys.EnergyCostActive(b.freq, st.Price, st.ServerActive),
		Rung:       core.RungFull,
	}
	// Price the objective against Q(t) before committing θ(t).
	if b.rooms != nil {
		out.Objective = b.sys.P2ObjectiveRooms(sel, b.freq, st, b.dpp.V, b.rooms.Backlogs())
		for room, theta := range b.sys.RoomThetasActive(b.freq, st.Price, st.ServerActive) {
			b.rooms.Update(room, theta)
			out.Theta += theta
		}
		out.RoomBacklogs = b.rooms.Backlogs()
		out.Backlog = b.rooms.TotalBacklog()
	} else {
		out.Objective = b.sys.P2Objective(sel, b.freq, st, b.dpp.V, b.dpp.Queue.Backlog())
		out.Theta = b.sys.ThetaActive(b.freq, st.Price, st.ServerActive)
		out.Backlog = b.dpp.Commit(out.Theta)
	}
	out.Elapsed = time.Since(start)
	b.instr.record(out)
	return out, nil
}

// record captures one slot in the attached instruments (nil-safe).
func (in *baselineInstr) record(res *core.SlotResult) {
	in.slots.Inc()
	in.decision.Observe(res.Elapsed.Seconds())
	in.latency.Observe(res.Latency.Value())
	in.theta.Observe(res.Theta)
	in.backlog.Observe(res.Backlog)
	in.backlogG.Set(res.Backlog)
}

// Checkpoint captures the baseline's resume state. Solver carries the
// policy name, so a checkpoint restored into a different policy fails
// the same guard that protects mismatched controller restores.
func (b *baseline) Checkpoint() core.Checkpoint {
	cp := core.Checkpoint{
		Slot:    b.slot,
		Backlog: b.dpp.Queue.Backlog(),
		V:       b.dpp.V,
		Solver:  b.name,
		Seed:    b.seed,
	}
	if b.rooms != nil {
		cp.RoomBacklogs = b.rooms.Backlogs()
		cp.Backlog = b.rooms.TotalBacklog()
	}
	return cp
}

// Restore rewinds the baseline to a checkpoint taken from an identically
// configured baseline. Selection randomness is derived from (seed, slot),
// so the restored policy continues bit-identically.
func (b *baseline) Restore(cp core.Checkpoint) error {
	switch {
	case cp.Slot < 0:
		return fmt.Errorf("policy: checkpoint slot %d negative", cp.Slot)
	case cp.Backlog < 0:
		return fmt.Errorf("policy: checkpoint backlog %v negative", cp.Backlog)
	case cp.Solver != b.name:
		return fmt.Errorf("policy: checkpoint policy %q, this policy %q", cp.Solver, b.name)
	case cp.V != b.dpp.V:
		return fmt.Errorf("policy: checkpoint V = %v, policy V = %v", cp.V, b.dpp.V)
	case cp.Seed != b.seed:
		return fmt.Errorf("policy: checkpoint seed %d, policy seed %d", cp.Seed, b.seed)
	case len(cp.Extra) != 0:
		return fmt.Errorf("policy: checkpoint carries tuner state, %q has none", b.name)
	}
	if (cp.RoomBacklogs != nil) != (b.rooms != nil) {
		return errors.New("policy: checkpoint budget mode differs from policy")
	}
	if b.rooms != nil {
		for room, backlog := range cp.RoomBacklogs {
			if backlog < 0 {
				return fmt.Errorf("policy: checkpoint room %d backlog %v negative", room, backlog)
			}
			b.rooms.Set(room, backlog)
		}
	}
	b.slot = cp.Slot
	b.dpp.Queue = lyapunov.NewQueue(cp.Backlog)
	return nil
}

// SetObs attaches an observability registry: baselines record the same
// controller.* per-slot series the flagship does (nil detaches).
func (b *baseline) SetObs(reg *obs.Registry) {
	b.obs = reg
	b.instr = baselineInstr{
		slots:    reg.Counter(core.MetricSlots),
		decision: reg.Histogram(core.MetricDecisionSeconds),
		latency:  reg.Histogram(core.MetricLatencySeconds),
		theta:    reg.Histogram(core.MetricTheta),
		backlog:  reg.Histogram(core.MetricBacklog),
		backlogG: reg.Gauge(core.MetricBacklogNow),
	}
}

// pickGreedy is greedy-energy/greedy-deadline: the deterministic one-pass
// congestion-greedy profile on the slot's P2-A game at the policy's fixed
// frequency point — the generalization of the controller's RungGreedy
// ladder rung into a standalone policy (energy cost depends only on the
// frequencies of active servers, so the frequency point alone separates
// the energy-first and deadline-first variants).
func pickGreedy(b *baseline, st *trace.State, _ *rng.Source) (core.Selection, error) {
	if err := b.sys.ApplyChurn(&b.p2a, st, b.freq); err != nil {
		return core.Selection{}, err
	}
	res := game.GreedyProfile(b.p2a.Game())
	return b.p2a.Selection(res.Profile), nil
}

// pickRandom assigns every active device a uniformly random feasible
// (station, server) pair. The draw sequence comes from the slot's
// (seed, slot)-derived source, so runs replay bit-identically.
func pickRandom(b *baseline, st *trace.State, src *rng.Source) (core.Selection, error) {
	if err := b.sys.ApplyChurn(&b.p2a, st, b.freq); err != nil {
		return core.Selection{}, err
	}
	res := game.RandomProfile(b.p2a.Game(), src)
	return b.p2a.Selection(res.Profile), nil
}

// pickLocalOnly pins every active device to its lowest-indexed feasible
// pair — the "stay on your home cell" floor with no load awareness.
func pickLocalOnly(b *baseline, st *trace.State, _ *rng.Source) (core.Selection, error) {
	_, _, _, devices := b.sys.Net.Counts()
	sel := emptySelection(devices)
	for i := 0; i < devices; i++ {
		if !st.ActiveDevice(i) {
			continue
		}
		k, n, ok := b.sys.FirstFeasiblePair(i, st)
		if !ok {
			return core.Selection{}, fmt.Errorf("device %d has no feasible (station, server) pair this slot", i)
		}
		sel.Station[i], sel.Server[i] = k, n
	}
	return sel, nil
}

// pickEdgeOnly sends every active device to its strongest-channel covered
// station and the least-loaded usable server reachable from it (load =
// devices already placed this slot, ties to the lower index). Like the
// game builder it honors ServerDown advisories first and re-admits
// down-but-present servers only when a station would otherwise strand
// its devices; a device whose best station has no usable server at all
// falls back to its first feasible pair anywhere.
func pickEdgeOnly(b *baseline, st *trace.State, _ *rng.Source) (core.Selection, error) {
	_, _, servers, devices := b.sys.Net.Counts()
	sel := emptySelection(devices)
	load := make([]int, servers)
	for i := 0; i < devices; i++ {
		if !st.ActiveDevice(i) {
			continue
		}
		bestK, bestSE := -1, 0.0
		for k := range b.sys.Net.BaseStations {
			if se := float64(st.Channels[i][k]); se > bestSE {
				bestK, bestSE = k, se
			}
		}
		if bestK < 0 {
			return core.Selection{}, fmt.Errorf("device %d out of coverage this slot", i)
		}
		n := leastLoaded(b.sys, st, bestK, load)
		if n < 0 {
			k, srv, ok := b.sys.FirstFeasiblePair(i, st)
			if !ok {
				return core.Selection{}, fmt.Errorf("device %d has no feasible (station, server) pair this slot", i)
			}
			bestK, n = k, srv
		}
		sel.Station[i], sel.Server[i] = bestK, n
		load[n]++
	}
	return sel, nil
}

// leastLoaded returns the least-loaded usable server reachable from
// station k (pass 0 honors Down advisories, pass 1 re-admits), or -1
// when the station reaches no present server.
func leastLoaded(sys *core.System, st *trace.State, k int, load []int) int {
	for pass := 0; pass < 2; pass++ {
		honorDown := pass == 0
		best := -1
		for _, n := range sys.Net.ReachableServers(k) {
			if !st.ActiveServer(n) || (honorDown && st.Down(n)) {
				continue
			}
			if best < 0 || load[n] < load[best] {
				best = n
			}
		}
		if best >= 0 {
			return best
		}
	}
	return -1
}

// emptySelection returns an all-inactive (-1, -1) selection.
func emptySelection(devices int) core.Selection {
	sel := core.Selection{
		Station: make([]int, devices),
		Server:  make([]int, devices),
	}
	for i := range sel.Station {
		sel.Station[i], sel.Server[i] = -1, -1
	}
	return sel
}
