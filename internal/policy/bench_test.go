package policy

import (
	"fmt"
	"testing"

	"eotora/internal/core"
	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// benchSystem mirrors internal/core's bench fixture: the default
// topology at the given population, budget midway between the all-min
// and all-max frequency cost.
func benchSystem(b *testing.B, devices int) (*core.System, *trace.Generator) {
	b.Helper()
	src := rng.New(1)
	net, err := topology.Generate(topology.DefaultSpec(devices), src.Derive("net"))
	if err != nil {
		b.Fatal(err)
	}
	models := core.DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
	sys, err := core.NewSystem(net, models, 3600, 1)
	if err != nil {
		b.Fatal(err)
	}
	low := sys.EnergyCost(sys.LowestFrequencies(), units.Price(50))
	high := sys.EnergyCost(sys.HighestFrequencies(), units.Price(50))
	sys.Budget = (low + high) / 2
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return sys, gen
}

// BenchmarkPolicyStep times one slot of every selectable policy at the
// 1000-device operating point — the policy-roster companion to core's
// BenchmarkControllerStep, through the same seam every driver uses. The
// bdma family carries the full BDMA/CGBA solve; the baselines bound the
// floor a selection rule alone costs (greedy-* still builds the slot's
// game, random draws per device, local-only/edge-only are pure scans).
func BenchmarkPolicyStep(b *testing.B) {
	const devices = 1000
	for _, name := range Names() {
		b.Run(fmt.Sprintf("%s/devices=%d", name, devices), func(b *testing.B) {
			sys, gen := benchSystem(b, devices)
			pol, err := New(name, sys, Config{V: 100, Rounds: 5, Lambda: 0.05, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			states := trace.Record(gen, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pol.Decide(pol.Slot()+1, states[i%len(states)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
