// Package policy defines the decision-policy seam between state
// ingestion and decision publication: everything that drives slots — the
// simulator, the sweep runner, the serve-mode daemon, and the CLIs —
// programs against the Policy interface instead of a concrete
// controller. The paper's DPP + BDMA controller (core.Controller) is the
// flagship implementation; this package adds the deterministic
// comparison baselines every related evaluation ships (greedy-energy,
// greedy-deadline, random, local-only, edge-only) and an online
// auto-tuner that adapts the DPP knob V and the CGBA λ/shortlist
// schedule across slots (DESIGN.md §15).
//
// Every policy is deterministic from (seed, slot): two policies built
// with the same name, system, and configuration produce bit-identical
// decision sequences over the same state trace, and a policy restored
// from its Checkpoint resumes exactly where the original would have
// continued.
package policy

import (
	"fmt"
	"sort"
	"time"

	"eotora/internal/core"
	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/trace"
)

// Policy decides slots: one Decide call per slot index, strictly in
// order. Implementations own their internal state (virtual queues, game
// scratch, RNG derivation) and must be deterministic from (seed, slot).
type Policy interface {
	// Name identifies the policy ("bdma", "greedy-energy", ...).
	Name() string
	// System returns the system the policy decides for.
	System() *core.System
	// Slot returns the last decided slot index (0 before the first).
	Slot() int
	// V returns the penalty weight the policy prices decisions with.
	V() float64
	// Backlog returns the current virtual-queue backlog Q(t).
	Backlog() float64
	// Decide makes slot's decision against st. slot must be Slot()+1 —
	// the caller owns the numbering (the daemon's tick counter, the
	// simulator's loop) and a desynchronized restore must fail loudly.
	Decide(slot int, st *trace.State) (*core.SlotResult, error)
	// Checkpoint captures the policy's serializable resume state.
	Checkpoint() core.Checkpoint
	// Restore rewinds the policy to a checkpoint taken from an
	// identically configured policy.
	Restore(cp core.Checkpoint) error
	// SetObs attaches an observability registry (nil detaches).
	SetObs(reg *obs.Registry)
}

// DeadlineSetter is the optional capability of policies with a slot
// budget and degradation ladder (the bdma family). Drivers that arm
// deadlines or backpressure escalation probe for it; policies without
// the capability simply never degrade.
type DeadlineSetter interface {
	// SetSlotDeadline (re)configures the per-slot wall-clock and counted
	// budgets (core.Controller.SetSlotDeadline).
	SetSlotDeadline(budget time.Duration, checks int)
}

// PoolSetter is the optional capability of policies whose slot solve can
// run over an intra-slot worker pool without changing any decision bit.
type PoolSetter interface {
	// SetPool attaches the pool (nil detaches).
	SetPool(p *par.Pool)
}

// SolverNamer is the optional capability of policies backed by a P2-A
// solver ("CGBA", "MCBA", ...); baselines without a solver lack it.
type SolverNamer interface {
	// SolverName identifies the backing P2-A solver.
	SolverName() string
}

// The flagship implementation: core.Controller satisfies the seam (and
// every capability) structurally, without core importing this package.
var (
	_ Policy         = (*core.Controller)(nil)
	_ DeadlineSetter = (*core.Controller)(nil)
	_ PoolSetter     = (*core.Controller)(nil)
	_ SolverNamer    = (*core.Controller)(nil)
)

// Policy names constructible through New.
const (
	// BDMA is the paper's controller: DPP + BDMA alternation with CGBA.
	BDMA = "bdma"
	// BDMATuned is BDMA wrapped in the online V/λ auto-tuner (Tuner).
	BDMATuned = "bdma-tuned"
	// GreedyEnergy picks the congestion-greedy assignment at the lowest
	// frequencies Ω^L — minimal energy, latency as it falls.
	GreedyEnergy = "greedy-energy"
	// GreedyDeadline picks the congestion-greedy assignment at the
	// highest frequencies Ω^U — minimal latency, energy as it falls.
	GreedyDeadline = "greedy-deadline"
	// Random assigns every device a uniformly random feasible pair,
	// derived from (seed, slot), at Ω^L.
	Random = "random"
	// LocalOnly pins every device to its lowest-indexed feasible
	// (station, server) pair at Ω^L — the no-optimization floor.
	LocalOnly = "local-only"
	// EdgeOnly sends every device to its strongest-channel station and
	// that station's least-loaded server at Ω^U — the
	// max-edge-resources baseline.
	EdgeOnly = "edge-only"
)

// Config parameterizes New. The zero value of every optional field
// selects a sensible default; V and Seed are shared by all policies.
type Config struct {
	// V is the penalty weight pricing latency against backlog (also used
	// by the baselines so their objectives are comparable to BDMA's).
	V float64
	// InitialBacklog is Q(1); the paper initializes it to 0.
	InitialBacklog float64
	// Rounds is the BDMA alternation count z (bdma family; 0 = 5).
	Rounds int
	// Lambda is the CGBA approximation slack λ (bdma family; the tuner
	// treats it as the refined target of its coarse-to-fine schedule).
	Lambda float64
	// Seed drives every policy's (seed, slot)-derived randomness.
	Seed int64
	// Tuner overrides the auto-tuner schedule (bdma-tuned only).
	Tuner TunerConfig
}

// defaultRounds is the BDMA alternation count z when Config.Rounds is 0.
const defaultRounds = 5

// New constructs the named policy over sys. See the name constants for
// the selectable policies; unknown names error with the full list.
func New(name string, sys *core.System, cfg Config) (Policy, error) {
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = defaultRounds
	}
	switch name {
	case BDMA, BDMATuned:
		ctrl, err := core.NewController(sys, core.ControllerConfig{
			V:              cfg.V,
			InitialBacklog: cfg.InitialBacklog,
			BDMA:           core.BDMAConfig{Iterations: rounds, Solver: core.CGBASolver{Lambda: cfg.Lambda}},
			Seed:           cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		if name == BDMA {
			return ctrl, nil
		}
		tc := cfg.Tuner
		if tc.LambdaTarget == 0 {
			tc.LambdaTarget = cfg.Lambda
		}
		return NewTuner(ctrl, tc)
	case GreedyEnergy, GreedyDeadline, Random, LocalOnly, EdgeOnly:
		return newBaseline(name, sys, cfg)
	}
	return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names())
}

// Names returns the selectable policy names in sorted order.
func Names() []string {
	names := []string{BDMA, BDMATuned, GreedyEnergy, GreedyDeadline, Random, LocalOnly, EdgeOnly}
	sort.Strings(names)
	return names
}
