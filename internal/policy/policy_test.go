package policy

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"eotora/internal/core"
	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// testSpec returns a reduced topology for fast tests.
func testSpec(devices int) topology.Spec {
	spec := topology.DefaultSpec(devices)
	spec.Stations = 3
	spec.UmbrellaStations = 1
	spec.ServersPerRoom = 2
	return spec
}

// buildSystem constructs a small test system plus a matching state
// generator, with the budget midway between the all-min and all-max
// frequency cost — feasible but binding, like internal/core's helper.
func buildSystem(t testing.TB, spec topology.Spec, seed int64) (*core.System, *trace.Generator) {
	t.Helper()
	src := rng.New(seed)
	net, err := topology.Generate(spec, src.Derive("net"))
	if err != nil {
		t.Fatal(err)
	}
	models := core.DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
	sys, err := core.NewSystem(net, models, 3600, 1)
	if err != nil {
		t.Fatal(err)
	}
	meanPrice := units.Price(50)
	low := sys.EnergyCost(sys.LowestFrequencies(), meanPrice)
	high := sys.EnergyCost(sys.HighestFrequencies(), meanPrice)
	sys.Budget = (low + high) / 2
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

// decisionKey flattens every decision-relevant quantity of a slot result
// into comparable values (float bits, ints) — the same flattening the
// core pool/shard equivalence tests use.
type decisionKey struct {
	Stations, Servers []int
	FreqBits          []uint64
	LatencyBits       uint64
	CostBits          uint64
	ThetaBits         uint64
	BacklogBits       uint64
	ObjectiveBits     uint64
	SolverIterations  int
	Rung              int
}

func keyOf(r *core.SlotResult) decisionKey {
	freqBits := make([]uint64, len(r.Decision.Freq))
	for n, f := range r.Decision.Freq {
		freqBits[n] = math.Float64bits(float64(f))
	}
	return decisionKey{
		Stations:         append([]int(nil), r.Decision.Station...),
		Servers:          append([]int(nil), r.Decision.Server...),
		FreqBits:         freqBits,
		LatencyBits:      math.Float64bits(r.Latency.Value()),
		CostBits:         math.Float64bits(float64(r.EnergyCost)),
		ThetaBits:        math.Float64bits(r.Theta),
		BacklogBits:      math.Float64bits(r.Backlog),
		ObjectiveBits:    math.Float64bits(r.Objective),
		SolverIterations: r.SolverIterations,
		Rung:             r.Rung,
	}
}

// decide runs a policy over states from its current slot, failing the
// test on any error.
func decide(t *testing.T, p Policy, states []*trace.State) []decisionKey {
	t.Helper()
	out := make([]decisionKey, 0, len(states))
	for _, st := range states {
		r, err := p.Decide(p.Slot()+1, st)
		if err != nil {
			t.Fatalf("%s slot %d: %v", p.Name(), p.Slot()+1, err)
		}
		out = append(out, keyOf(r))
	}
	return out
}

func TestNewRegistry(t *testing.T) {
	sys, _ := buildSystem(t, testSpec(8), 1)
	for _, name := range Names() {
		p, err := New(name, sys, Config{V: 100, Rounds: 2, Lambda: 0.05, Seed: 3})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("New(%s).Name() = %s", name, p.Name())
		}
		if p.System() != sys {
			t.Errorf("New(%s).System() is not the given system", name)
		}
		if p.V() != 100 {
			t.Errorf("New(%s).V() = %v", name, p.V())
		}
		if p.Slot() != 0 {
			t.Errorf("New(%s).Slot() = %d before any decision", name, p.Slot())
		}
	}
	if _, err := New("no-such-policy", sys, Config{V: 100, Seed: 3}); err == nil {
		t.Error("unknown policy name accepted")
	} else if !strings.Contains(err.Error(), BDMA) {
		t.Errorf("unknown-policy error %q does not list the valid names", err)
	}
}

// TestBaselineDeterminism: two identically configured instances of every
// policy produce bit-identical decision sequences over the same trace —
// the (seed, slot) determinism contract of the package doc.
func TestBaselineDeterminism(t *testing.T) {
	const slots = 12
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			run := func() []decisionKey {
				sys, gen := buildSystem(t, testSpec(10), 2)
				p, err := New(name, sys, Config{V: 80, Rounds: 2, Lambda: 0.05, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				return decide(t, p, trace.Record(gen, slots))
			}
			if a, b := run(), run(); !reflect.DeepEqual(a, b) {
				t.Error("two identical runs diverged")
			}
		})
	}
}

// TestDecideSlotContract: Decide must reject out-of-order slot numbers.
func TestDecideSlotContract(t *testing.T) {
	for _, name := range []string{BDMA, GreedyEnergy} {
		sys, gen := buildSystem(t, testSpec(6), 3)
		p, err := New(name, sys, Config{V: 100, Rounds: 1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		st := gen.Next()
		if _, err := p.Decide(2, st); err == nil {
			t.Errorf("%s: Decide(2) accepted before slot 1", name)
		}
		if _, err := p.Decide(1, st); err != nil {
			t.Fatalf("%s: Decide(1): %v", name, err)
		}
		if _, err := p.Decide(1, gen.Next()); err == nil {
			t.Errorf("%s: Decide(1) accepted twice", name)
		}
	}
}

// TestBaselineSelectionsValid: every baseline's selection passes the
// system validator on every slot, including slots with churn masks.
func TestBaselineSelectionsValid(t *testing.T) {
	const slots = 16
	sys, gen := buildSystem(t, testSpec(12), 4)
	sched, err := trace.NewChurnSchedule(trace.DefaultChurnConfig(4), sys.Net, gen)
	if err != nil {
		t.Fatal(err)
	}
	states := trace.Record(sched, slots)
	for _, name := range []string{GreedyEnergy, GreedyDeadline, Random, LocalOnly, EdgeOnly} {
		t.Run(name, func(t *testing.T) {
			sysB, _ := buildSystem(t, testSpec(12), 4)
			p, err := New(name, sysB, Config{V: 100, Seed: 4})
			if err != nil {
				t.Fatal(err)
			}
			for i, st := range states {
				r, err := p.Decide(i+1, st)
				if err != nil {
					t.Fatalf("slot %d: %v", i+1, err)
				}
				sel := core.Selection{Station: r.Decision.Station, Server: r.Decision.Server}
				if err := sysB.Validate(sel, st); err != nil {
					t.Fatalf("slot %d: invalid selection: %v", i+1, err)
				}
				if r.Rung != core.RungFull || r.Degraded {
					t.Fatalf("slot %d: baseline reported rung %d degraded=%v", i+1, r.Rung, r.Degraded)
				}
			}
		})
	}
}

// TestBaselineCheckpointRestore: a baseline restored mid-run resumes the
// exact decision sequence of an uninterrupted run.
func TestBaselineCheckpointRestore(t *testing.T) {
	const slots, cut = 14, 6
	for _, name := range []string{GreedyEnergy, GreedyDeadline, Random, LocalOnly, EdgeOnly} {
		t.Run(name, func(t *testing.T) {
			sysA, gen := buildSystem(t, testSpec(10), 5)
			states := trace.Record(gen, slots)
			pa, err := New(name, sysA, Config{V: 90, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			want := decide(t, pa, states)

			sysB, _ := buildSystem(t, testSpec(10), 5)
			pb, err := New(name, sysB, Config{V: 90, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			decide(t, pb, states[:cut])
			cp := pb.Checkpoint()
			if cp.Solver != name {
				t.Fatalf("checkpoint solver %q, want the policy name", cp.Solver)
			}

			sysC, _ := buildSystem(t, testSpec(10), 5)
			pc, err := New(name, sysC, Config{V: 90, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if err := pc.Restore(cp); err != nil {
				t.Fatal(err)
			}
			got := decide(t, pc, states[cut:])
			if !reflect.DeepEqual(got, want[cut:]) {
				t.Error("restored run diverged from the uninterrupted one")
			}

			// Restore guards: wrong V, wrong policy, tuner state.
			if err := pc.Restore(core.Checkpoint{Slot: 1, V: 91, Solver: name, Seed: 5}); err == nil {
				t.Error("V mismatch accepted")
			}
			if err := pc.Restore(core.Checkpoint{Slot: 1, V: 90, Solver: "bdma", Seed: 5}); err == nil {
				t.Error("solver mismatch accepted")
			}
			withExtra := cp
			withExtra.Extra = map[string]float64{"tuner_lambda": 0.1}
			if err := pc.Restore(withExtra); err == nil {
				t.Error("tuner-state checkpoint accepted by a baseline")
			}
		})
	}
}

// TestControllerRejectsExtra: the flagship controller must refuse a
// checkpoint carrying policy-wrapper state rather than silently dropping
// the tuner's knobs.
func TestControllerRejectsExtra(t *testing.T) {
	sys, _ := buildSystem(t, testSpec(6), 6)
	ctrl, err := core.NewBDMAController(sys, 100, 2, 0.05, 6)
	if err != nil {
		t.Fatal(err)
	}
	cp := ctrl.Checkpoint()
	cp.Extra = map[string]float64{"tuner_lambda": 0.1}
	if err := ctrl.Restore(cp); err == nil {
		t.Error("controller accepted a checkpoint with policy-wrapper state")
	}
}

// TestEdgeOnlyCoverage: a device out of coverage fails edge-only with a
// clean error, never a panic or an invalid selection.
func TestEdgeOnlyCoverage(t *testing.T) {
	sys, gen := buildSystem(t, testSpec(6), 7)
	p, err := New(EdgeOnly, sys, Config{V: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	st := gen.Next()
	for k := range st.Channels[2] {
		st.Channels[2][k] = 0
	}
	if _, err := p.Decide(1, st); err == nil {
		t.Error("edge-only decided a device with no coverage")
	}
}
