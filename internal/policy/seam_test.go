package policy

import (
	"fmt"
	"reflect"
	"testing"

	"eotora/internal/core"
	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// shardSetter is the controller's shard knob, probed the way drivers do.
type shardSetter interface{ SetShards(int) error }

// comparableSnapshot strips the metrics that legitimately differ between
// runs: wall-clock timings, the pool's own series, and never-observed
// histograms (whose NaN Min/Max is never DeepEqual to itself). Mirrors
// the unexported helper in internal/core's pool tests.
func comparableSnapshot(reg *obs.Registry) obs.Snapshot {
	snap := reg.Snapshot()
	delete(snap.Histograms, core.MetricDecisionSeconds)
	delete(snap.Counters, par.MetricRegions)
	delete(snap.Histograms, par.MetricRegionShards)
	delete(snap.Gauges, par.MetricWorkers)
	for name, h := range snap.Histograms {
		if h.Count == 0 {
			delete(snap.Histograms, name)
		}
	}
	return snap
}

// TestSeamBitIdentity is the policy-seam regression contract: "bdma"
// constructed through policy.New and driven through Decide must be
// bit-identical to a directly constructed core controller driven through
// Step — decisions, queue trajectory, solver work, and observability —
// on a churned, sharded, deadline-armed metro run at every pool size.
// A drift here means the seam is no longer a pure pass-through and every
// sweep/serve result produced through it stops being comparable to the
// paper pipeline.
func TestSeamBitIdentity(t *testing.T) {
	const (
		devices = 40
		seed    = 9
		slots   = 200
		v       = 110
		rounds  = 2
		lambda  = 0.05
	)
	slotsN := slots
	if testing.Short() {
		slotsN = 40
	}

	// One churned metro trace shared by every run.
	sysT, gen := buildSystem(t, topology.MetroSpec(devices), seed)
	sched, err := trace.NewChurnSchedule(trace.DefaultChurnConfig(seed), sysT.Net, gen)
	if err != nil {
		t.Fatal(err)
	}
	states := trace.Record(sched, slotsN)

	// arm applies the matrix legs both paths must share: auto shards and
	// an effectively unlimited counted slot budget (deterministic, keeps
	// every slot on RungFull while exercising the deadline-armed path).
	arm := func(s shardSetter, d DeadlineSetter) {
		if err := s.SetShards(core.ShardsAuto); err != nil {
			t.Fatal(err)
		}
		d.SetSlotDeadline(0, 1<<30)
	}

	// Reference: the direct controller, serial.
	refSys, _ := buildSystem(t, topology.MetroSpec(devices), seed)
	ctrl, err := core.NewBDMAController(refSys, v, rounds, lambda, seed)
	if err != nil {
		t.Fatal(err)
	}
	arm(ctrl, ctrl)
	refReg := obs.New()
	ctrl.SetObs(refReg)
	want := make([]decisionKey, 0, slotsN)
	for _, st := range states {
		r, err := ctrl.Step(st)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, keyOf(r))
	}
	wantSnap := comparableSnapshot(refReg)

	for _, size := range []int{0, 1, 4} {
		t.Run(fmt.Sprintf("pool=%d", size), func(t *testing.T) {
			sys, _ := buildSystem(t, topology.MetroSpec(devices), seed)
			pol, err := New(BDMA, sys, Config{V: v, Rounds: rounds, Lambda: lambda, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			arm(pol.(shardSetter), pol.(DeadlineSetter))
			if size > 0 {
				pool := par.New(size)
				defer pool.Close()
				pol.(PoolSetter).SetPool(pool)
			}
			reg := obs.New()
			pol.SetObs(reg)
			got := decide(t, pol, states)
			if !reflect.DeepEqual(got, want) {
				for i := range got {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("slot %d diverged from the direct controller", i+1)
					}
				}
				t.Fatal("slot trace diverged from the direct controller")
			}
			if snap := comparableSnapshot(reg); !reflect.DeepEqual(snap, wantSnap) {
				t.Errorf("obs snapshot diverged:\n got %+v\nwant %+v", snap, wantSnap)
			}
		})
	}
}

// FuzzPolicySeamEquivalence drives random small topologies and traces
// through both construction paths — policy.New("bdma") + Decide versus
// core.NewBDMAController + Step, with a randomly sized pool on the seam
// side — and requires bit-identical slot traces.
func FuzzPolicySeamEquivalence(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(0), uint8(40))
	f.Add(int64(3), int64(4), uint8(3), uint8(12))
	f.Add(int64(7), int64(8), uint8(5), uint8(70))
	f.Fuzz(func(t *testing.T, topoSeed, traceSeed int64, poolSize, deviceByte uint8) {
		devices := 6 + int(deviceByte)%90
		size := int(poolSize) % 6 // 0 = serial seam side
		build := func() *core.System {
			src := rng.New(topoSeed)
			net, err := topology.Generate(testSpec(devices), src.Derive("net"))
			if err != nil {
				t.Skip() // infeasible random topology
			}
			sys, err := core.NewSystem(net, core.DefaultEnergyModels(len(net.Servers), src.Derive("energy")), 3600, 1)
			if err != nil {
				t.Skip()
			}
			low := sys.EnergyCost(sys.LowestFrequencies(), units.Price(50))
			high := sys.EnergyCost(sys.HighestFrequencies(), units.Price(50))
			sys.Budget = (low + high) / 2
			return sys
		}
		sysA := build()
		gen, err := trace.NewGenerator(sysA.Net, trace.DefaultGeneratorConfig(), traceSeed)
		if err != nil {
			t.Skip()
		}
		states := trace.Record(gen, 2)

		ctrl, err := core.NewBDMAController(sysA, 100, 2, 0.05, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]decisionKey, 0, len(states))
		for _, st := range states {
			r, err := ctrl.Step(st)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, keyOf(r))
		}

		pol, err := New(BDMA, build(), Config{V: 100, Rounds: 2, Lambda: 0.05, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if size > 0 {
			pool := par.New(size)
			defer pool.Close()
			pol.(PoolSetter).SetPool(pool)
		}
		if got := decide(t, pol, states); !reflect.DeepEqual(got, want) {
			t.Fatalf("seam diverged from direct controller (devices=%d, pool=%d)", devices, size)
		}
	})
}
