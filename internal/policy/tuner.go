package policy

import (
	"errors"
	"fmt"
	"math"
	"time"

	"eotora/internal/core"
	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/trace"
)

// Tuner metric names (obs gauges/counters) reporting the auto-tuner's
// trajectory; DESIGN.md §15 documents the control loop.
const (
	// MetricTunerV is the current penalty weight V (gauge).
	MetricTunerV = "tuner.v"
	// MetricTunerLambda is the current CGBA λ (gauge).
	MetricTunerLambda = "tuner.lambda"
	// MetricTunerIters is the iteration EMA the λ schedule tracks (gauge).
	MetricTunerIters = "tuner.iterations_ema"
	// MetricTunerVRaised counts upward V steps (counter).
	MetricTunerVRaised = "tuner.v_raised"
	// MetricTunerVLowered counts downward V steps (counter).
	MetricTunerVLowered = "tuner.v_lowered"
	// MetricTunerRefined counts λ refinement steps (counter).
	MetricTunerRefined = "tuner.lambda_refinements"
)

// TunerConfig parameterizes the online auto-tuner. Every zero field
// selects the default named in its comment.
type TunerConfig struct {
	// Window is the adaptation cadence in slots: statistics accumulate
	// over a window and the knobs move at its boundary. 0 = 16.
	Window int
	// VStep is the multiplicative V step per adaptation. 0 = 1.5.
	VStep float64
	// VMin/VMax clamp the adapted V. 0 = V₀/16 and 16·V₀ respectively,
	// where V₀ is the wrapped controller's initial V.
	VMin float64
	// VMax is the upper V clamp (see VMin).
	VMax float64
	// BacklogHigh is the backlog-vs-reference factor above which V is
	// lowered (drain the virtual queue; O(V) backlog, Theorem 4). 0 = 2.
	BacklogHigh float64
	// BacklogLow is the factor below which V is raised (spend the slack
	// on latency; O(1/V) penalty gap). 0 = 0.5.
	BacklogLow float64
	// LambdaStart is the coarse λ of the first windows — a loose
	// equilibrium tolerance that certifies in fewer CGBA iterations
	// while the queue is still in its transient. 0 = 0.1.
	LambdaStart float64
	// LambdaTarget is the refined λ the schedule converges to once the
	// iteration EMA stabilizes (typically the run's configured λ; 0 is a
	// valid target and the default).
	LambdaTarget float64
	// ShortlistStart, when positive, narrows the CGBA best-response
	// shortlist to this width for the coarse windows; refinement
	// restores the library default. 0 leaves the shortlist untouched —
	// the default, because a narrow shortlist shrinks per-iteration work
	// but lengthens the sweep dynamics, so it only pays on games whose
	// strategy sets dwarf the width.
	ShortlistStart int
	// StableFrac is the relative iteration-EMA change below which the
	// solve counts as stabilized and λ refines one step. 0 = 0.1.
	StableFrac float64
}

// withDefaults fills the zero-value defaults (V clamps need v0).
func (c TunerConfig) withDefaults(v0 float64) TunerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.VStep <= 1 {
		c.VStep = 1.5
	}
	if c.VMin <= 0 {
		c.VMin = v0 / 16
	}
	if c.VMax <= 0 {
		c.VMax = v0 * 16
	}
	if c.BacklogHigh <= 0 {
		c.BacklogHigh = 2
	}
	if c.BacklogLow <= 0 {
		c.BacklogLow = 0.5
	}
	if c.LambdaStart <= 0 {
		c.LambdaStart = 0.1
	}
	if c.StableFrac <= 0 {
		c.StableFrac = 0.1
	}
	return c
}

// Tuner is the online auto-tuning policy ("bdma-tuned"): it wraps the
// flagship controller and adapts two knob families across slots.
//
// V (the latency-vs-backlog dial, cf. the power-delay tradeoff of arXiv
// 1609.06027): the first window's average backlog becomes the reference;
// when a later window's backlog exceeds BacklogHigh× the reference the
// tuner lowers V to drain the queue, and when it falls below BacklogLow×
// it raises V to spend the slack on latency. Steps are multiplicative
// and clamped to [VMin, VMax].
//
// λ/shortlist (the CGBA work dial): windows start coarse — LambdaStart
// slack (and, when ShortlistStart is set, a narrow shortlist), fewer
// best-response iterations while the virtual queue is in its transient —
// and refine once the per-window iteration EMA stabilizes, halving the
// gap to LambdaTarget per stable window until the target (and the
// default shortlist) is restored. The equilibrium quality the run
// settles at is the target's; only the transient is solved loosely.
//
// The trajectory is exported through the tuner.* obs series.
type Tuner struct {
	ctrl *core.Controller
	cfg  TunerConfig

	lambda  float64
	refined bool

	refBacklog float64
	haveRef    bool
	emaIters   float64
	prevEma    float64

	winN       int
	winBacklog float64
	winIters   float64

	instr tunerInstr
}

// tunerInstr holds the tuner's pre-resolved obs handles (nil-safe).
type tunerInstr struct {
	v, lambda, ema           *obs.Gauge
	vRaised, vLowered, refin *obs.Counter
}

// NewTuner wraps a CGBA-driven controller in the auto-tuner and arms the
// coarse schedule (LambdaStart, ShortlistStart) for the first window.
// The controller must be exclusively owned by the tuner from here on.
func NewTuner(ctrl *core.Controller, cfg TunerConfig) (*Tuner, error) {
	if ctrl == nil {
		return nil, errors.New("policy: nil controller")
	}
	if ctrl.SolverName() != "CGBA" {
		return nil, fmt.Errorf("policy: the tuner drives CGBA's λ schedule, not %s", ctrl.SolverName())
	}
	cfg = cfg.withDefaults(ctrl.V())
	if cfg.LambdaTarget < 0 || cfg.LambdaTarget >= 0.125 ||
		cfg.LambdaStart >= 0.125 || cfg.LambdaStart < cfg.LambdaTarget {
		return nil, fmt.Errorf("policy: tuner λ schedule %v → %v outside [target, 0.125)", cfg.LambdaStart, cfg.LambdaTarget)
	}
	t := &Tuner{ctrl: ctrl, cfg: cfg, lambda: cfg.LambdaStart}
	if err := ctrl.SetLambda(t.lambda); err != nil {
		return nil, err
	}
	if cfg.ShortlistStart > 0 {
		if err := ctrl.SetShortlist(cfg.ShortlistStart); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Name identifies the policy.
func (t *Tuner) Name() string { return BDMATuned }

// System returns the wrapped controller's system.
func (t *Tuner) System() *core.System { return t.ctrl.System() }

// Slot returns the last decided slot index.
func (t *Tuner) Slot() int { return t.ctrl.Slot() }

// V returns the current (adapted) penalty weight.
func (t *Tuner) V() float64 { return t.ctrl.V() }

// Backlog returns the controller's virtual-queue backlog Q(t).
func (t *Tuner) Backlog() float64 { return t.ctrl.Backlog() }

// Lambda returns the current λ of the coarse-to-fine schedule.
func (t *Tuner) Lambda() float64 { return t.lambda }

// Controller returns the wrapped controller — for configuration (pools,
// shards, deadlines) before stepping starts, like serve.Daemon's
// accessor; stepping it directly desynchronizes the tuner's windows.
func (t *Tuner) Controller() *core.Controller { return t.ctrl }

// SetPool forwards the intra-slot worker pool to the controller.
func (t *Tuner) SetPool(p *par.Pool) { t.ctrl.SetPool(p) }

// SetSlotDeadline forwards the slot budgets to the controller.
func (t *Tuner) SetSlotDeadline(budget time.Duration, checks int) {
	t.ctrl.SetSlotDeadline(budget, checks)
}

// SolverName identifies the backing P2-A solver.
func (t *Tuner) SolverName() string { return t.ctrl.SolverName() }

// Decide runs the controller's slot and then feeds the adaptation loop:
// window statistics accumulate every slot, and the knobs move at window
// boundaries (see the type comment for the control law).
func (t *Tuner) Decide(slot int, st *trace.State) (*core.SlotResult, error) {
	res, err := t.ctrl.Decide(slot, st)
	if err != nil {
		return nil, err
	}
	t.winN++
	t.winBacklog += res.Backlog
	t.winIters += float64(res.SolverIterations)
	if t.winN >= t.cfg.Window {
		t.adapt()
	}
	t.instr.v.Set(t.ctrl.V())
	t.instr.lambda.Set(t.lambda)
	t.instr.ema.Set(t.emaIters)
	return res, nil
}

// adapt closes a window: update the iteration EMA, refine λ when the
// solve has stabilized, and step V against the backlog reference band.
func (t *Tuner) adapt() {
	avgBacklog := t.winBacklog / float64(t.winN)
	avgIters := t.winIters / float64(t.winN)
	t.winN, t.winBacklog, t.winIters = 0, 0, 0

	t.prevEma = t.emaIters
	if t.emaIters == 0 {
		t.emaIters = avgIters
	} else {
		t.emaIters = 0.5*t.emaIters + 0.5*avgIters
	}

	if !t.haveRef {
		// The first window calibrates the backlog reference; the knobs
		// hold so the reference reflects the configured V.
		t.refBacklog = avgBacklog
		t.haveRef = true
		return
	}

	if !t.refined && t.prevEma > 0 &&
		math.Abs(t.emaIters-t.prevEma) <= t.cfg.StableFrac*t.prevEma {
		next := t.cfg.LambdaTarget + (t.lambda-t.cfg.LambdaTarget)/2
		if next-t.cfg.LambdaTarget < 1e-4 {
			next = t.cfg.LambdaTarget
			t.refined = true
		}
		// The wrapped solver is CGBA by construction, λ stays in range by
		// the schedule invariant, and the shortlist reset is the library
		// default — none of these can fail.
		_ = t.ctrl.SetLambda(next)
		if t.refined && t.cfg.ShortlistStart > 0 {
			_ = t.ctrl.SetShortlist(0)
		}
		t.lambda = next
		t.instr.refin.Inc()
	}

	ref := math.Max(t.refBacklog, 1e-9)
	switch {
	case avgBacklog > ref*t.cfg.BacklogHigh:
		if v := math.Max(t.ctrl.V()/t.cfg.VStep, t.cfg.VMin); v < t.ctrl.V() {
			_ = t.ctrl.SetV(v)
			t.instr.vLowered.Inc()
		}
	case avgBacklog < ref*t.cfg.BacklogLow:
		if v := math.Min(t.ctrl.V()*t.cfg.VStep, t.cfg.VMax); v > t.ctrl.V() {
			_ = t.ctrl.SetV(v)
			t.instr.vRaised.Inc()
		}
	}
}

// boolToFloat encodes a flag into the checkpoint's Extra map.
func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Checkpoint captures the controller checkpoint plus the tuner's knob
// and window state in the Extra map, so a restored tuner resumes the
// same trajectory (windows included).
func (t *Tuner) Checkpoint() core.Checkpoint {
	cp := t.ctrl.Checkpoint()
	cp.Extra = map[string]float64{
		"tuner_lambda":      t.lambda,
		"tuner_refined":     boolToFloat(t.refined),
		"tuner_ref_backlog": t.refBacklog,
		"tuner_have_ref":    boolToFloat(t.haveRef),
		"tuner_ema":         t.emaIters,
		"tuner_prev_ema":    t.prevEma,
		"tuner_win_n":       float64(t.winN),
		"tuner_win_backlog": t.winBacklog,
		"tuner_win_iters":   t.winIters,
	}
	return cp
}

// Restore rewinds the tuner: the adapted knobs (V, λ, shortlist) are
// re-applied to the controller before its own restore so the V guard
// compares adapted-to-adapted, then the window state resumes from Extra.
func (t *Tuner) Restore(cp core.Checkpoint) error {
	if len(cp.Extra) == 0 {
		return errors.New("policy: checkpoint has no tuner state (taken from plain bdma?)")
	}
	lambda, ok := cp.Extra["tuner_lambda"]
	if !ok {
		return errors.New("policy: checkpoint tuner state lacks λ")
	}
	if err := t.ctrl.SetV(cp.V); err != nil {
		return err
	}
	if err := t.ctrl.SetLambda(lambda); err != nil {
		return err
	}
	t.lambda = lambda
	t.refined = cp.Extra["tuner_refined"] != 0
	if t.cfg.ShortlistStart > 0 {
		shortlist := t.cfg.ShortlistStart
		if t.refined {
			shortlist = 0
		}
		if err := t.ctrl.SetShortlist(shortlist); err != nil {
			return err
		}
	}
	inner := cp
	inner.Extra = nil
	if err := t.ctrl.Restore(inner); err != nil {
		return err
	}
	t.refBacklog = cp.Extra["tuner_ref_backlog"]
	t.haveRef = cp.Extra["tuner_have_ref"] != 0
	t.emaIters = cp.Extra["tuner_ema"]
	t.prevEma = cp.Extra["tuner_prev_ema"]
	t.winN = int(cp.Extra["tuner_win_n"])
	t.winBacklog = cp.Extra["tuner_win_backlog"]
	t.winIters = cp.Extra["tuner_win_iters"]
	return nil
}

// SetObs attaches an observability registry: the controller's series
// plus the tuner.* trajectory series (nil detaches).
func (t *Tuner) SetObs(reg *obs.Registry) {
	t.ctrl.SetObs(reg)
	t.instr = tunerInstr{
		v:        reg.Gauge(MetricTunerV),
		lambda:   reg.Gauge(MetricTunerLambda),
		ema:      reg.Gauge(MetricTunerIters),
		vRaised:  reg.Counter(MetricTunerVRaised),
		vLowered: reg.Counter(MetricTunerVLowered),
		refin:    reg.Counter(MetricTunerRefined),
	}
}

// The tuner satisfies the seam and the optional capabilities.
var (
	_ Policy         = (*Tuner)(nil)
	_ DeadlineSetter = (*Tuner)(nil)
	_ PoolSetter     = (*Tuner)(nil)
	_ SolverNamer    = (*Tuner)(nil)
)
