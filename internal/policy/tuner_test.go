package policy

import (
	"math"
	"reflect"
	"testing"

	"eotora/internal/core"
	"eotora/internal/obs"
	"eotora/internal/trace"
)

// newTestTuner builds a tuner over a small system with an explicit
// schedule, returning both for direct adapt() driving.
func newTestTuner(t *testing.T, cfg TunerConfig) *Tuner {
	t.Helper()
	sys, _ := buildSystem(t, testSpec(8), 11)
	ctrl, err := core.NewBDMAController(sys, 100, 2, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTuner(ctrl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// window feeds one synthetic window of statistics through adapt().
func (t *Tuner) window(avgBacklog, avgIters float64) {
	t.winN = t.cfg.Window
	t.winBacklog = avgBacklog * float64(t.cfg.Window)
	t.winIters = avgIters * float64(t.cfg.Window)
	t.adapt()
}

func TestNewTunerValidation(t *testing.T) {
	if _, err := NewTuner(nil, TunerConfig{}); err == nil {
		t.Error("nil controller accepted")
	}
	sys, _ := buildSystem(t, testSpec(8), 11)
	mcba, err := core.NewMCBAController(sys, 100, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTuner(mcba, TunerConfig{}); err == nil {
		t.Error("non-CGBA controller accepted")
	}
	bad := []TunerConfig{
		{LambdaStart: 0.2},                      // ≥ the 1/8 CGBA bound
		{LambdaStart: 0.02, LambdaTarget: 0.05}, // coarse below the target
		{LambdaStart: 0.1, LambdaTarget: -0.01}, // negative target
		{LambdaStart: 0.1, LambdaTarget: 0.125}, // target at the bound
	}
	for _, cfg := range bad {
		ctrl, err := core.NewBDMAController(sys, 100, 2, 0.05, 11)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewTuner(ctrl, cfg); err == nil {
			t.Errorf("λ schedule %v → %v accepted", cfg.LambdaStart, cfg.LambdaTarget)
		}
	}
}

// TestTunerVAdaptation drives the V control law through its bands: the
// first window only calibrates the backlog reference; later windows
// lower V multiplicatively above BacklogHigh×ref, raise it below
// BacklogLow×ref, hold it inside the band, and clamp at [VMin, VMax].
func TestTunerVAdaptation(t *testing.T) {
	tn := newTestTuner(t, TunerConfig{LambdaStart: 0.1, LambdaTarget: 0.05, VStep: 2, VMin: 50, VMax: 200})
	reg := obs.New()
	tn.SetObs(reg)
	v0 := tn.V()

	tn.window(10, 1000) // calibrate: ref = 10
	if tn.V() != v0 {
		t.Fatalf("calibration window moved V to %v", tn.V())
	}
	tn.window(25, 1000) // 25 > 2×10 → lower
	if tn.V() != v0/2 {
		t.Fatalf("high-backlog window: V = %v, want %v", tn.V(), v0/2)
	}
	tn.window(25, 1000) // lower again, clamped at VMin=50
	if tn.V() != 50 {
		t.Fatalf("VMin clamp: V = %v, want 50", tn.V())
	}
	tn.window(2, 1000) // 2 < 0.5×10 → raise
	if tn.V() != 100 {
		t.Fatalf("low-backlog window: V = %v, want 100", tn.V())
	}
	tn.window(10, 1000) // inside the band → hold
	if tn.V() != 100 {
		t.Fatalf("in-band window moved V to %v", tn.V())
	}
	tn.window(2, 1000)
	tn.window(2, 1000) // raise, clamped at VMax=200
	if tn.V() != 200 {
		t.Fatalf("VMax clamp: V = %v, want 200", tn.V())
	}
	// At-the-clamp windows take no step, so the counters see one lower
	// (100→50; the second was already at VMin) and two raises (50→100→200).
	snap := reg.Snapshot()
	if snap.Counters[MetricTunerVLowered] != 1 || snap.Counters[MetricTunerVRaised] != 2 {
		t.Errorf("step counters lowered=%d raised=%d, want 1/2",
			snap.Counters[MetricTunerVLowered], snap.Counters[MetricTunerVRaised])
	}
}

// TestTunerLambdaRefinement: stable iteration EMAs halve λ's gap to the
// target per window until it snaps onto the target exactly; an unstable
// EMA holds the schedule.
func TestTunerLambdaRefinement(t *testing.T) {
	tn := newTestTuner(t, TunerConfig{LambdaStart: 0.1, LambdaTarget: 0.05})
	reg := obs.New()
	tn.SetObs(reg)

	tn.window(10, 1000) // calibration; no prevEma yet
	if tn.Lambda() != 0.1 {
		t.Fatalf("λ moved during calibration: %v", tn.Lambda())
	}
	tn.window(10, 400) // EMA jumps 1000→700: unstable, hold
	if tn.Lambda() != 0.1 {
		t.Fatalf("unstable window refined λ to %v", tn.Lambda())
	}
	tn.window(10, 700) // EMA holds at 700: refine one step
	if math.Abs(tn.Lambda()-0.075) > 1e-12 {
		t.Fatalf("first refinement: λ = %v, want 0.075", tn.Lambda())
	}
	for i := 0; i < 20 && !tn.refined; i++ {
		tn.window(10, 700)
	}
	if !tn.refined || tn.Lambda() != 0.05 {
		t.Fatalf("schedule never converged: refined=%v λ=%v", tn.refined, tn.Lambda())
	}
	before := reg.Snapshot().Counters[MetricTunerRefined]
	tn.window(10, 700) // refined: no further steps
	if got := reg.Snapshot().Counters[MetricTunerRefined]; got != before {
		t.Errorf("refinement counter moved after convergence: %d → %d", before, got)
	}
}

// TestTunerLambdaZeroTarget: the default target (the exact equilibrium,
// λ = 0) is reachable — the snap threshold must close the gap rather
// than asymptote above zero.
func TestTunerLambdaZeroTarget(t *testing.T) {
	tn := newTestTuner(t, TunerConfig{LambdaStart: 0.1})
	tn.window(10, 1000)
	for i := 0; i < 30 && !tn.refined; i++ {
		tn.window(10, 1000)
	}
	if !tn.refined || tn.Lambda() != 0 {
		t.Fatalf("zero target never reached: refined=%v λ=%v", tn.refined, tn.Lambda())
	}
}

// TestTunerCheckpointRestore: a tuner restored mid-run — mid-window, so
// the partial window statistics matter — resumes the exact decision and
// knob trajectory of an uninterrupted run.
func TestTunerCheckpointRestore(t *testing.T) {
	const slots, cut = 14, 6 // Window 4: the cut lands mid-window
	cfg := Config{V: 90, Rounds: 2, Lambda: 0.05, Seed: 5, Tuner: TunerConfig{Window: 4}}
	build := func() (Policy, []*trace.State) {
		sys, gen := buildSystem(t, testSpec(10), 5)
		p, err := New(BDMATuned, sys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p, trace.Record(gen, slots)
	}

	pa, states := build()
	want := decide(t, pa, states)

	pb, _ := build()
	decide(t, pb, states[:cut])
	cp := pb.Checkpoint()
	if len(cp.Extra) == 0 {
		t.Fatal("tuner checkpoint carries no Extra state")
	}

	pc, _ := build()
	if err := pc.Restore(cp); err != nil {
		t.Fatal(err)
	}
	got := decide(t, pc, states[cut:])
	if !reflect.DeepEqual(got, want[cut:]) {
		t.Error("restored tuner diverged from the uninterrupted run")
	}
	if pcT, paT := pc.(*Tuner), pa.(*Tuner); pcT.Lambda() != paT.Lambda() || pcT.V() != paT.V() {
		t.Errorf("knobs diverged: λ %v vs %v, V %v vs %v",
			pcT.Lambda(), paT.Lambda(), pcT.V(), paT.V())
	}

	// Restore guards: a plain-bdma checkpoint (no Extra) and an Extra map
	// without the λ key must both fail.
	plain := cp
	plain.Extra = nil
	if err := pc.Restore(plain); err == nil {
		t.Error("tuner accepted a checkpoint without tuner state")
	}
	missing := cp
	missing.Extra = map[string]float64{"tuner_refined": 1}
	if err := pc.Restore(missing); err == nil {
		t.Error("tuner accepted tuner state without λ")
	}
}

// TestTunerShortlistUntouchedByDefault: with ShortlistStart zero the
// tuner must never touch the controller's shortlist — narrowing it
// lengthens CGBA's sweep dynamics, which is exactly the work the tuner
// exists to save.
func TestTunerShortlistUntouchedByDefault(t *testing.T) {
	sys, gen := buildSystem(t, testSpec(8), 11)
	ctrl, err := core.NewBDMAController(sys, 100, 2, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewBDMAController(sys, 100, 2, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetLambda(0.1); err != nil {
		t.Fatal(err)
	}
	tn, err := NewTuner(ctrl, TunerConfig{LambdaStart: 0.1, LambdaTarget: 0.05, Window: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	// With an unreachable window boundary the tuner holds the coarse λ, so
	// its slots must be bit-identical to a plain controller at λ = 0.1 —
	// any shortlist narrowing would change the iteration counts.
	states := trace.Record(gen, 6)
	var want []decisionKey
	for _, st := range states {
		r, err := ref.Step(st)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, keyOf(r))
	}
	if got := decide(t, tn, states); !reflect.DeepEqual(got, want) {
		t.Error("coarse-window tuner diverged from a plain λ=0.1 controller")
	}
}
