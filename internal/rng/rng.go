// Package rng provides deterministic random-number utilities for the EOTORA
// simulator: named sub-streams derived from a root seed, and the bounded
// distributions the paper's simulation section uses (uniform ranges,
// standard-normal perturbations, lognormal noise, truncated normals).
//
// Every stochastic component of the simulator draws from its own named
// stream so that (a) experiments are reproducible bit-for-bit from a single
// seed, and (b) adding a new consumer of randomness does not perturb the
// draws seen by existing components.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand with the
// distribution helpers used across the simulator.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Derive returns a new independent Source whose seed is a hash of the
// parent seed-stream and the given name. Derivation consumes one draw from
// the parent, so derivation order matters but later direct draws from the
// parent do not affect the child.
func (s *Source) Derive(name string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	mix := int64(h.Sum64()) ^ s.r.Int63()
	return New(mix)
}

// Float64 returns a uniform draw in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Normal returns a draw from N(mean, stddev²).
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// StdNormal returns a draw from the standard normal distribution.
func (s *Source) StdNormal() float64 { return s.r.NormFloat64() }

// LogNormal returns exp(N(mu, sigma²)).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// TruncNormal returns a draw from N(mean, stddev²) truncated to [lo, hi]
// by rejection sampling, falling back to clamping after a bounded number
// of rejections so pathological bounds cannot hang the simulator.
func (s *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	const maxTries = 64
	for i := 0; i < maxTries; i++ {
		v := s.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return Clamp(s.Normal(mean, stddev), lo, hi)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool { return s.r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Choice returns a uniformly random index weighted by the non-negative
// weights. If all weights are zero it falls back to uniform choice. It
// panics if weights is empty.
func (s *Source) Choice(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Choice on empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return s.r.Intn(len(weights))
	}
	target := s.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w > 0 {
			acc += w
		}
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle pseudo-randomly permutes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}
