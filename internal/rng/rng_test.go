package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same-seed sources diverged at draw %d", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Children derived under different names must produce different streams.
	root1 := New(7)
	root2 := New(7)
	c1 := root1.Derive("price")
	c2 := root2.Derive("channel")
	same := 0
	for i := 0; i < 50; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("differently named children matched on %d/50 draws", same)
	}
}

func TestDeriveReproducible(t *testing.T) {
	c1 := New(7).Derive("price")
	c2 := New(7).Derive("price")
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatalf("same-name children diverged at draw %d", i)
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	lo, hi := 50.0, 200.0
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.Uniform(lo, hi)
		if v < lo || v >= hi {
			t.Fatalf("Uniform(%v,%v) = %v out of range", lo, hi, v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-125) > 2 {
		t.Errorf("Uniform mean = %v, want ≈125", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(2)
	const n = 50000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("Normal mean = %v, want ≈10", mean)
	}
	if math.Abs(variance-9) > 0.5 {
		t.Errorf("Normal variance = %v, want ≈9", variance)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 0.5); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	s := New(4)
	tests := []struct {
		name             string
		mean, sd, lo, hi float64
	}{
		{name: "centered", mean: 0, sd: 1, lo: -1, hi: 1},
		{name: "tight band far from mean", mean: 0, sd: 1, lo: 8, hi: 8.5},
		{name: "inverted bounds are swapped", mean: 5, sd: 2, lo: 7, hi: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lo, hi := tt.lo, tt.hi
			if lo > hi {
				lo, hi = hi, lo
			}
			for i := 0; i < 200; i++ {
				v := s.TruncNormal(tt.mean, tt.sd, tt.lo, tt.hi)
				if v < lo || v > hi {
					t.Fatalf("TruncNormal = %v outside [%v,%v]", v, lo, hi)
				}
			}
		})
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(5)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) frequency = %v", freq)
	}
}

func TestChoiceWeighted(t *testing.T) {
	s := New(6)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.Choice(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight-3 / weight-1 ratio = %v, want ≈3", ratio)
	}
}

func TestChoiceAllZeroFallsBackToUniform(t *testing.T) {
	s := New(7)
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[s.Choice([]float64{0, 0, 0, 0})]++
	}
	for i, c := range counts {
		if c < 1500 {
			t.Errorf("index %d chosen only %d/8000 times under uniform fallback", i, c)
		}
	}
}

func TestChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Choice on empty weights did not panic")
		}
	}()
	New(8).Choice(nil)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

// Property: Clamp output is always within bounds and idempotent.
func TestClampProperty(t *testing.T) {
	prop := func(v, a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(v, lo, hi)
		return c >= lo && c <= hi && Clamp(c, lo, hi) == c
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Uniform stays inside its interval for arbitrary bounds.
func TestUniformProperty(t *testing.T) {
	s := New(11)
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e150 || math.Abs(b) > 1e150 {
			return true // hi−lo overflows beyond this; not a range concern
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		if lo == hi {
			return true
		}
		v := s.Uniform(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
