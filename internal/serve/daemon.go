// Package serve turns the batch EOTORA controller into a long-running
// streaming service: it ingests state-update events (device churn, channel
// reports, demand moves, price ticks, server lifecycle), batches them into
// slot ticks on a configurable cadence, drives the incremental slot solve,
// and publishes each slot's decision to poll/long-poll consumers.
//
// The pipeline is ingest → batch → tick → publish (DESIGN.md §14): ingest
// appends to a bounded queue (overflow is shed and counted, never
// blocking the producer), every tick drains the queue in arrival order
// into the daemon's working copy of β_t, the decision policy decides the
// slot, and the decision lands in a ring buffer that long-pollers wait
// on. A single tick goroutine owns the working state, so a replayed
// event stream reproduces the identical decision sequence — the property
// the snapshot/restore and loadgen-equivalence tests pin down.
//
// The daemon drives any policy.Policy (DESIGN.md §15) — the default BDMA
// controller, a comparison baseline like greedy-energy, or the bdma-tuned
// auto-tuner. Slot budgets and backpressure escalation require the
// DeadlineSetter capability (the bdma family); configuring them for a
// baseline fails at construction rather than silently never degrading.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"eotora/internal/core"
	"eotora/internal/obs"
	"eotora/internal/policy"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// Config parameterizes a Daemon. The zero value of every field selects a
// sensible default (see the field comments); Tick = 0 selects manual mode
// where slots advance only through Tick / POST /v1/tick.
type Config struct {
	// Tick is the slot cadence for Run. Zero means manual ticking — the
	// lockstep mode cmd/loadgen and the tests drive.
	Tick time.Duration
	// QueueCap bounds the ingest queue in events; arrivals beyond it are
	// shed and counted, so daemon memory stays bounded no matter how far
	// ingest outruns the slot budget. Zero selects 65536.
	QueueCap int
	// MaxBatch bounds the events applied per tick; the remainder stays
	// queued for the next tick (and counts toward escalation pressure).
	// Zero applies the whole queue each tick.
	MaxBatch int
	// DecisionBuffer is the published-decision ring size — how far a slow
	// poller may lag before it can only observe the latest slot. Zero
	// selects 64.
	DecisionBuffer int
	// DegradeAt is the queue-occupancy fraction (pending/QueueCap,
	// sampled at tick time) at which the daemon escalates: the slot is
	// solved under the tighter Escalate* budget so the queue can drain
	// through faster (degraded-rung) decisions instead of growing. Zero
	// disables escalation.
	DegradeAt float64
	// EscalateDeadline is the wall-clock slot budget armed while
	// escalated (see core.ControllerConfig.SlotDeadline).
	EscalateDeadline time.Duration
	// EscalateChecks is the deterministic counted slot budget armed while
	// escalated (see core.ControllerConfig.SlotChecks). Either or both
	// Escalate* fields may be set.
	EscalateChecks int
	// SlotDeadline is the steady-state wall-clock slot budget (the
	// controller's degradation ladder; 0 = none).
	SlotDeadline time.Duration
	// SlotChecks is the steady-state counted slot budget (0 = none).
	SlotChecks int
}

// withDefaults fills the zero-value defaults.
func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 65536
	}
	if c.DecisionBuffer <= 0 {
		c.DecisionBuffer = 64
	}
	return c
}

// Decision is one published slot decision — the wire form of
// core.SlotResult that /v1/decisions serves.
type Decision struct {
	// Slot is the slot index t.
	Slot int `json:"slot"`
	// Rung is the fallback-ladder rung that decided the slot (0 = full).
	Rung int `json:"rung"`
	// Degraded reports a below-full-rung decision.
	Degraded bool `json:"degraded"`
	// Escalated reports that backpressure armed the tighter slot budget
	// for this tick.
	Escalated bool `json:"escalated"`
	// Backlog is the virtual-queue backlog Q(t+1) after the slot.
	Backlog float64 `json:"backlog"`
	// LatencySeconds is the slot's overall latency T_t.
	LatencySeconds float64 `json:"latency_seconds"`
	// EnergyCostUSD is the slot's energy cost C_t.
	EnergyCostUSD float64 `json:"energy_cost_usd"`
	// Objective is the P2 objective of the performed decision.
	Objective float64 `json:"objective"`
	// ElapsedMicros is the slot's decision wall time in microseconds.
	ElapsedMicros int64 `json:"elapsed_micros"`
	// Station[i] is device i's chosen base station (-1 = inactive).
	Station []int `json:"station"`
	// Server[i] is device i's chosen server (-1 = inactive).
	Server []int `json:"server"`
	// FreqHz[n] is server n's chosen clock frequency in Hz.
	FreqHz []float64 `json:"freq_hz"`
	// EventsApplied counts the ingest events folded into this slot.
	EventsApplied int `json:"events_applied"`
	// EventsInvalid counts the malformed events shed at apply time.
	EventsInvalid int `json:"events_invalid"`
}

// Status is the daemon's live health summary served by /v1/status.
type Status struct {
	// Slot is the last completed slot index.
	Slot int `json:"slot"`
	// Backlog is the controller's current virtual-queue backlog.
	Backlog float64 `json:"backlog"`
	// QueueDepth is the current ingest-queue occupancy in events.
	QueueDepth int `json:"queue_depth"`
	// QueueCap is the configured ingest-queue bound.
	QueueCap int `json:"queue_cap"`
	// EventsIngested counts events accepted into the queue.
	EventsIngested int64 `json:"events_ingested"`
	// EventsShed counts events dropped because the queue was full.
	EventsShed int64 `json:"events_shed"`
	// EventsApplied counts events folded into slot states.
	EventsApplied int64 `json:"events_applied"`
	// EventsInvalid counts malformed events shed at apply time.
	EventsInvalid int64 `json:"events_invalid"`
	// Ticks counts completed slot ticks.
	Ticks int64 `json:"ticks"`
	// TickErrors counts ticks whose solve returned a hard error.
	TickErrors int64 `json:"tick_errors"`
	// Escalations counts ticks solved under the backpressure budget.
	Escalations int64 `json:"escalations"`
	// DegradedSlots counts slots decided below the full rung.
	DegradedSlots int64 `json:"degraded_slots"`
	// LastRung is the most recent slot's fallback-ladder rung.
	LastRung int `json:"last_rung"`
	// ActiveDevices is the current active-device population.
	ActiveDevices int `json:"active_devices"`
	// ActiveServers is the count of structurally present servers.
	ActiveServers int `json:"active_servers"`
}

// instruments holds the pre-resolved obs handles of the serve.* series.
// Every field is nil-safe per the obs contract, so an uninstrumented
// daemon records through nil handles for free.
type instruments struct {
	ingested, shed, applied, invalid *obs.Counter
	ticks, tickErrors, escalations   *obs.Counter
	degraded, snapshots, restores    *obs.Counter
	queueDepth, queueHighWater       *obs.Gauge
	rung, backlog                    *obs.Gauge
	slotSeconds, batchSize           *obs.Histogram
}

// Daemon is the streaming controller service. Construct with NewDaemon,
// feed events through Ingest (or the HTTP handler), and advance slots
// either manually with Tick or on a cadence with Run.
type Daemon struct {
	cfg Config
	pol policy.Policy
	// deadline is pol's DeadlineSetter capability; nil for policies
	// without a slot budget (construction rejects budgeted configs for
	// those, so a nil deadline is only ever paired with a zero budget).
	deadline policy.DeadlineSetter

	devices  int
	stations int
	servers  int

	// qmu guards the ingest queue and the ingest-side counters. Ingest
	// never touches the tick state, so producers are never blocked by an
	// in-flight solve.
	qmu      sync.Mutex
	queue    []Event
	ingested int64
	shedN    int64

	// tickMu serializes ticks, snapshots, and restores; it owns the
	// working state and the tick-side counters.
	tickMu       sync.Mutex
	st           *trace.State
	deviceActive []bool
	serverActive []bool
	serverDown   []bool
	capScale     []float64
	ticks        int64
	tickErrors   int64
	escalations  int64
	degraded     int64
	applied      int64
	invalid      int64
	lastRung     int

	pub publisher

	obs   *obs.Registry
	instr instruments
}

// NewDaemon builds a daemon around a decision policy and the initial slot
// state (the full β_1 of the daemon's fixed universe — typically the
// first state of the deterministic generator both daemon and load source
// derive from the shared seed). The initial state is deep-copied; the
// caller keeps ownership of its copy. The policy must be exclusively
// owned by the daemon from here on. Slot budgets and escalation require
// a policy with the DeadlineSetter capability (the bdma family).
func NewDaemon(pol policy.Policy, initial *trace.State, cfg Config) (*Daemon, error) {
	if pol == nil {
		return nil, errors.New("serve: nil policy")
	}
	if initial == nil {
		return nil, errors.New("serve: nil initial state")
	}
	cfg = cfg.withDefaults()
	ds, _ := pol.(policy.DeadlineSetter)
	if ds == nil && (cfg.SlotDeadline > 0 || cfg.SlotChecks > 0 ||
		cfg.EscalateDeadline > 0 || cfg.EscalateChecks > 0) {
		return nil, fmt.Errorf("serve: policy %q has no slot-deadline capability; clear the Slot*/Escalate* budgets",
			pol.Name())
	}
	stations, _, servers, devices := pol.System().Net.Counts()
	if len(initial.TaskSizes) != devices || len(initial.Channels) != devices {
		return nil, fmt.Errorf("serve: initial state has %d devices, topology %d", len(initial.TaskSizes), devices)
	}
	d := &Daemon{
		cfg:      cfg,
		pol:      pol,
		deadline: ds,
		devices:  devices,
		stations: stations,
		servers:  servers,
		queue:    make([]Event, 0, cfg.QueueCap),
	}
	d.pub.init(cfg.DecisionBuffer)
	d.loadState(initial)
	if cfg.SlotDeadline > 0 || cfg.SlotChecks > 0 {
		ds.SetSlotDeadline(cfg.SlotDeadline, cfg.SlotChecks)
	}
	return d, nil
}

// loadState deep-copies src into the daemon's working state and expands
// its optional masks to full universe length.
func (d *Daemon) loadState(src *trace.State) {
	st := &trace.State{
		Slot:        src.Slot,
		TaskSizes:   append([]units.Cycles(nil), src.TaskSizes...),
		DataLengths: append([]units.DataSize(nil), src.DataLengths...),
		Channels:    make([][]units.SpectralEfficiency, len(src.Channels)),
		FronthaulSE: append([]units.SpectralEfficiency(nil), src.FronthaulSE...),
		Price:       src.Price,
	}
	for i := range src.Channels {
		st.Channels[i] = append([]units.SpectralEfficiency(nil), src.Channels[i]...)
	}
	d.st = st
	d.deviceActive = fullMask(d.devices, src.DeviceActive)
	d.serverActive = fullMask(d.servers, src.ServerActive)
	d.serverDown = make([]bool, d.servers)
	copy(d.serverDown, src.ServerDown)
	d.capScale = make([]float64, d.servers)
	for n := range d.capScale {
		d.capScale[n] = src.Cap(n)
	}
}

// fullMask expands an optional activity mask (nil = all active) to a
// full-length mutable mask.
func fullMask(n int, src []bool) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = i >= len(src) || src[i]
	}
	return out
}

// SetObs attaches an observability registry: the serve.* series land
// there, and the policy's own instruments are threaded through
// (policy.Policy.SetObs). Nil detaches.
func (d *Daemon) SetObs(reg *obs.Registry) {
	d.obs = reg
	d.pol.SetObs(reg)
	if reg == nil {
		d.instr = instruments{}
		return
	}
	d.instr = instruments{
		ingested:       reg.Counter("serve.events_ingested"),
		shed:           reg.Counter("serve.events_shed"),
		applied:        reg.Counter("serve.events_applied"),
		invalid:        reg.Counter("serve.events_invalid"),
		ticks:          reg.Counter("serve.ticks"),
		tickErrors:     reg.Counter("serve.tick_errors"),
		escalations:    reg.Counter("serve.escalations"),
		degraded:       reg.Counter("serve.degraded_slots"),
		snapshots:      reg.Counter("serve.snapshots"),
		restores:       reg.Counter("serve.restores"),
		queueDepth:     reg.Gauge("serve.queue_depth"),
		queueHighWater: reg.Gauge("serve.queue_high_water"),
		rung:           reg.Gauge("serve.rung"),
		backlog:        reg.Gauge("serve.backlog"),
		slotSeconds:    reg.Histogram("serve.slot_seconds"),
		batchSize:      reg.Histogram("serve.batch_size"),
	}
}

// Obs returns the registry attached with SetObs, or nil.
func (d *Daemon) Obs() *obs.Registry { return d.obs }

// Policy returns the daemon's decision policy. Callers must not step it
// concurrently with the daemon; the accessor exists for configuration
// (pools, shards) before the daemon starts ticking.
func (d *Daemon) Policy() policy.Policy { return d.pol }

// Controller returns the daemon's controller when the policy is (or
// wraps, for nothing so far) a *core.Controller, and nil for baseline
// policies. Same exclusivity caveat as Policy.
func (d *Daemon) Controller() *core.Controller {
	ctrl, _ := d.pol.(*core.Controller)
	return ctrl
}

// Ingest appends events to the bounded queue in arrival order and
// returns how many were accepted and how many were shed because the
// queue was full. It never blocks on an in-flight solve and is safe for
// concurrent producers.
func (d *Daemon) Ingest(events []Event) (accepted, shed int) {
	d.qmu.Lock()
	room := d.cfg.QueueCap - len(d.queue)
	if room < 0 {
		room = 0
	}
	accepted = len(events)
	if accepted > room {
		accepted = room
	}
	shed = len(events) - accepted
	d.queue = append(d.queue, events[:accepted]...)
	d.ingested += int64(accepted)
	d.shedN += int64(shed)
	depth := len(d.queue)
	d.qmu.Unlock()

	d.instr.ingested.Add(int64(accepted))
	d.instr.shed.Add(int64(shed))
	d.instr.queueDepth.Set(float64(depth))
	if hw := d.instr.queueHighWater; hw != nil && float64(depth) > hw.Value() {
		hw.Set(float64(depth))
	}
	return accepted, shed
}

// takeBatch removes this tick's batch (bounded by MaxBatch) from the
// queue and returns it with the queue occupancy observed before the
// take — the escalation pressure signal.
func (d *Daemon) takeBatch() (batch []Event, occupancy float64) {
	d.qmu.Lock()
	defer d.qmu.Unlock()
	occupancy = float64(len(d.queue)) / float64(d.cfg.QueueCap)
	n := len(d.queue)
	if d.cfg.MaxBatch > 0 && n > d.cfg.MaxBatch {
		n = d.cfg.MaxBatch
	}
	batch = append([]Event(nil), d.queue[:n]...)
	rest := copy(d.queue, d.queue[n:])
	d.queue = d.queue[:rest]
	d.instr.queueDepth.Set(float64(rest))
	return batch, occupancy
}

// Tick advances one slot: it drains (up to MaxBatch of) the ingest queue
// into the working state in arrival order, solves the slot — under the
// escalation budget when queue occupancy crossed DegradeAt — and
// publishes the decision. Manual callers (lockstep drivers, tests) and
// Run share this path. A solve error is counted and returned; the
// working state and queue survive it, so a later tick can recover once
// corrective events arrive.
func (d *Daemon) Tick() (*Decision, error) {
	d.tickMu.Lock()
	defer d.tickMu.Unlock()

	batch, occupancy := d.takeBatch()
	applied, invalid := 0, 0
	for _, ev := range batch {
		if err := d.validate(ev); err != nil {
			invalid++
			continue
		}
		d.apply(ev)
		applied++
	}
	d.applied += int64(applied)
	d.invalid += int64(invalid)
	d.instr.applied.Add(int64(applied))
	d.instr.invalid.Add(int64(invalid))
	d.instr.batchSize.Observe(float64(applied))

	escalated := d.cfg.DegradeAt > 0 && occupancy >= d.cfg.DegradeAt &&
		(d.cfg.EscalateDeadline > 0 || d.cfg.EscalateChecks > 0)
	if escalated {
		d.escalations++
		d.instr.escalations.Inc()
		d.deadline.SetSlotDeadline(d.cfg.EscalateDeadline, d.cfg.EscalateChecks)
	}

	d.st.Slot = int(d.ticks) + 1
	d.st.DeviceActive = maskOrNil(d.deviceActive)
	d.st.ServerActive = maskOrNil(d.serverActive)
	d.st.ServerDown = downOrNil(d.serverDown)
	d.st.CapScale = capOrNil(d.capScale)

	res, err := d.pol.Decide(d.st.Slot, d.st)
	if escalated {
		d.deadline.SetSlotDeadline(d.cfg.SlotDeadline, d.cfg.SlotChecks)
	}
	d.ticks++
	d.instr.ticks.Inc()
	if err != nil {
		d.tickErrors++
		d.instr.tickErrors.Inc()
		return nil, fmt.Errorf("serve: tick %d: %w", d.ticks, err)
	}

	if res.Degraded {
		d.degraded++
		d.instr.degraded.Inc()
	}
	d.lastRung = res.Rung
	d.instr.rung.Set(float64(res.Rung))
	d.instr.backlog.Set(res.Backlog)
	d.instr.slotSeconds.Observe(res.Elapsed.Seconds())

	dec := &Decision{
		Slot:           res.Slot,
		Rung:           res.Rung,
		Degraded:       res.Degraded,
		Escalated:      escalated,
		Backlog:        res.Backlog,
		LatencySeconds: res.Latency.Value(),
		EnergyCostUSD:  res.EnergyCost.Dollars(),
		Objective:      res.Objective,
		ElapsedMicros:  res.Elapsed.Microseconds(),
		Station:        append([]int(nil), res.Decision.Station...),
		Server:         append([]int(nil), res.Decision.Server...),
		FreqHz:         make([]float64, len(res.Decision.Freq)),
		EventsApplied:  applied,
		EventsInvalid:  invalid,
	}
	for n, f := range res.Decision.Freq {
		dec.FreqHz[n] = float64(f)
	}
	d.pub.publish(dec)
	return dec, nil
}

// Run ticks the daemon on the configured cadence until ctx is canceled.
// Solve errors are counted (Status.TickErrors) and reported through errf
// when non-nil; they do not stop the loop — the streaming producers own
// state repair. It returns an error only when Tick is zero (manual mode).
func (d *Daemon) Run(ctx context.Context, errf func(error)) error {
	if d.cfg.Tick <= 0 {
		return errors.New("serve: Run needs a positive Config.Tick (manual mode ticks via Tick)")
	}
	tk := time.NewTicker(d.cfg.Tick)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-tk.C:
			if _, err := d.Tick(); err != nil && errf != nil {
				errf(err)
			}
		}
	}
}

// Status returns the daemon's live health summary.
func (d *Daemon) Status() Status {
	d.tickMu.Lock()
	activeDev := 0
	for _, a := range d.deviceActive {
		if a {
			activeDev++
		}
	}
	activeSrv := 0
	for _, a := range d.serverActive {
		if a {
			activeSrv++
		}
	}
	s := Status{
		Slot:          int(d.ticks),
		Backlog:       d.pol.Backlog(),
		QueueCap:      d.cfg.QueueCap,
		EventsApplied: d.applied,
		EventsInvalid: d.invalid,
		Ticks:         d.ticks,
		TickErrors:    d.tickErrors,
		Escalations:   d.escalations,
		DegradedSlots: d.degraded,
		LastRung:      d.lastRung,
		ActiveDevices: activeDev,
		ActiveServers: activeSrv,
	}
	d.tickMu.Unlock()

	d.qmu.Lock()
	s.QueueDepth = len(d.queue)
	s.EventsIngested = d.ingested
	s.EventsShed = d.shedN
	d.qmu.Unlock()
	return s
}

// Latest returns the newest published decision with Slot > since, and
// whether one exists.
func (d *Daemon) Latest(since int) (*Decision, bool) { return d.pub.latest(since) }

// WaitDecision blocks until a decision with Slot > since is published or
// ctx expires, returning the decision or ctx's error — the long-poll
// primitive behind GET /v1/decisions?wait=.
func (d *Daemon) WaitDecision(ctx context.Context, since int) (*Decision, error) {
	return d.pub.wait(ctx, since)
}

// maskOrNil returns the mask to publish on the slot state: nil when every
// entry is true, matching trace.ChurnSchedule's convention so a
// full-population daemon slot takes the exact legacy solve path.
func maskOrNil(mask []bool) []bool {
	for _, a := range mask {
		if !a {
			return mask
		}
	}
	return nil
}

// downOrNil returns the drain mask to publish: nil when no server is
// drained (all-up states take the drain-free path).
func downOrNil(mask []bool) []bool {
	for _, down := range mask {
		if down {
			return mask
		}
	}
	return nil
}

// capOrNil returns the capacity-scale vector to publish: nil when every
// server is at nominal capacity (scale 1 is bit-exact, but nil keeps the
// fault-free fast path).
func capOrNil(scale []float64) []float64 {
	for _, s := range scale {
		if s != 1 {
			return scale
		}
	}
	return nil
}

// publisher is the decision ring buffer plus the long-poll wake channel.
type publisher struct {
	mu   sync.Mutex
	ring []*Decision
	n    int
	wake chan struct{}
}

// init sizes the ring.
func (p *publisher) init(size int) {
	p.ring = make([]*Decision, size)
	p.wake = make(chan struct{})
}

// publish stores the decision and wakes every long-poller.
func (p *publisher) publish(d *Decision) {
	p.mu.Lock()
	p.ring[p.n%len(p.ring)] = d
	p.n++
	close(p.wake)
	p.wake = make(chan struct{})
	p.mu.Unlock()
}

// latest returns the newest decision with Slot > since.
func (p *publisher) latest(since int) (*Decision, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.n == 0 {
		return nil, false
	}
	d := p.ring[(p.n-1)%len(p.ring)]
	if d.Slot <= since {
		return nil, false
	}
	return d, true
}

// wait blocks until latest(since) succeeds or ctx expires.
func (p *publisher) wait(ctx context.Context, since int) (*Decision, error) {
	for {
		p.mu.Lock()
		var d *Decision
		if p.n > 0 {
			d = p.ring[(p.n-1)%len(p.ring)]
		}
		wake := p.wake
		p.mu.Unlock()
		if d != nil && d.Slot > since {
			return d, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-wake:
		}
	}
}
