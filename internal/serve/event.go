package serve

import (
	"fmt"
	"math"

	"eotora/internal/trace"
	"eotora/internal/units"
)

// Kind names one streaming state-update event the daemon can ingest. The
// string values are the wire format of the /v1/events endpoint.
type Kind string

// The event kinds, covering every field of the slot state β_t plus the
// churn and fault masks. Fields not named by a kind are ignored on that
// kind's events.
const (
	// KindPrice sets the slot electricity price p_t ($/MWh) from Value.
	KindPrice Kind = "price"
	// KindDemand sets device Device's task size (Task, cycles) and input
	// data length (Data, bits).
	KindDemand Kind = "demand"
	// KindChannel sets the access-link spectral efficiency between Device
	// and Station to Value (0 = out of coverage).
	KindChannel Kind = "channel"
	// KindFronthaul sets Station's fronthaul spectral efficiency to Value.
	KindFronthaul Kind = "fronthaul"
	// KindDeviceJoin activates Device (churn join).
	KindDeviceJoin Kind = "device-join"
	// KindDeviceLeave deactivates Device (churn leave).
	KindDeviceLeave Kind = "device-leave"
	// KindHandover zeroes the (Device, Station) channel entry, forcing the
	// device off that station (the streaming form of trace.Handover).
	KindHandover Kind = "handover"
	// KindServerAdd re-activates Server (churn server add).
	KindServerAdd Kind = "server-add"
	// KindServerRemove structurally removes Server (churn server remove).
	KindServerRemove Kind = "server-remove"
	// KindServerDown advisorily drains Server (maintenance window; see
	// trace.State.ServerDown).
	KindServerDown Kind = "server-down"
	// KindServerUp clears Server's advisory drain.
	KindServerUp Kind = "server-up"
	// KindCapScale scales Server's effective capacity to Value in (0, 1].
	KindCapScale Kind = "cap-scale"
)

// Event is one streaming state update. The zero indices are valid targets,
// so producers must fill every field their Kind reads; the daemon
// validates ranges and counts (rather than applies) malformed events.
type Event struct {
	// Kind selects the update; see the Kind constants.
	Kind Kind `json:"kind"`
	// Device is the target device index (KindDemand, KindChannel,
	// KindDeviceJoin, KindDeviceLeave, KindHandover).
	Device int `json:"device,omitempty"`
	// Station is the target base-station index (KindChannel,
	// KindFronthaul, KindHandover).
	Station int `json:"station,omitempty"`
	// Server is the target server index (KindServerAdd, KindServerRemove,
	// KindServerDown, KindServerUp, KindCapScale).
	Server int `json:"server,omitempty"`
	// Value carries the scalar payload: price in $/MWh, spectral
	// efficiency in bps/Hz, or the capacity scale in (0, 1].
	Value float64 `json:"value,omitempty"`
	// Task is the device task size in CPU cycles (KindDemand).
	Task float64 `json:"task,omitempty"`
	// Data is the device input data length in bits (KindDemand).
	Data float64 `json:"data,omitempty"`
}

// validate range-checks ev against the daemon's fixed universe. Malformed
// events are shed at apply time, never at ingest time, so the ingest path
// stays a bounds-free append.
func (d *Daemon) validate(ev Event) error {
	devOK := ev.Device >= 0 && ev.Device < d.devices
	staOK := ev.Station >= 0 && ev.Station < d.stations
	srvOK := ev.Server >= 0 && ev.Server < d.servers
	finite := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
	switch ev.Kind {
	case KindPrice:
		if !finite(ev.Value) || ev.Value <= 0 {
			return fmt.Errorf("serve: price %v not positive", ev.Value)
		}
	case KindDemand:
		if !devOK {
			return fmt.Errorf("serve: device %d outside universe", ev.Device)
		}
		if !finite(ev.Task) || ev.Task <= 0 || !finite(ev.Data) || ev.Data <= 0 {
			return fmt.Errorf("serve: demand (%v cycles, %v bits) not positive", ev.Task, ev.Data)
		}
	case KindChannel:
		if !devOK || !staOK {
			return fmt.Errorf("serve: channel (%d, %d) outside universe", ev.Device, ev.Station)
		}
		if !finite(ev.Value) || ev.Value < 0 {
			return fmt.Errorf("serve: spectral efficiency %v negative", ev.Value)
		}
	case KindFronthaul:
		if !staOK {
			return fmt.Errorf("serve: station %d outside universe", ev.Station)
		}
		if !finite(ev.Value) || ev.Value <= 0 {
			return fmt.Errorf("serve: fronthaul efficiency %v not positive", ev.Value)
		}
	case KindDeviceJoin, KindDeviceLeave:
		if !devOK {
			return fmt.Errorf("serve: device %d outside universe", ev.Device)
		}
	case KindHandover:
		if !devOK || !staOK {
			return fmt.Errorf("serve: handover (%d, %d) outside universe", ev.Device, ev.Station)
		}
	case KindServerAdd, KindServerRemove, KindServerDown, KindServerUp:
		if !srvOK {
			return fmt.Errorf("serve: server %d outside universe", ev.Server)
		}
	case KindCapScale:
		if !srvOK {
			return fmt.Errorf("serve: server %d outside universe", ev.Server)
		}
		if !finite(ev.Value) || ev.Value <= 0 || ev.Value > 1 {
			return fmt.Errorf("serve: capacity scale %v outside (0, 1]", ev.Value)
		}
	default:
		return fmt.Errorf("serve: unknown event kind %q", ev.Kind)
	}
	return nil
}

// apply folds one validated event into the daemon's working state. Called
// with the tick lock held, in arrival order, so a replayed event stream
// reconstructs the identical state sequence.
func (d *Daemon) apply(ev Event) {
	switch ev.Kind {
	case KindPrice:
		d.st.Price = units.Price(ev.Value)
	case KindDemand:
		d.st.TaskSizes[ev.Device] = units.Cycles(ev.Task)
		d.st.DataLengths[ev.Device] = units.DataSize(ev.Data)
	case KindChannel:
		d.st.Channels[ev.Device][ev.Station] = units.SpectralEfficiency(ev.Value)
	case KindFronthaul:
		d.st.FronthaulSE[ev.Station] = units.SpectralEfficiency(ev.Value)
	case KindDeviceJoin:
		d.deviceActive[ev.Device] = true
	case KindDeviceLeave:
		d.deviceActive[ev.Device] = false
	case KindHandover:
		d.st.Channels[ev.Device][ev.Station] = 0
	case KindServerAdd:
		d.serverActive[ev.Server] = true
	case KindServerRemove:
		d.serverActive[ev.Server] = false
	case KindServerDown:
		d.serverDown[ev.Server] = true
	case KindServerUp:
		d.serverDown[ev.Server] = false
	case KindCapScale:
		d.capScale[ev.Server] = ev.Value
	}
}

// DiffStates converts the transition prev → next into the event batch
// that reproduces it: price and fronthaul moves, per-device demand moves,
// every changed channel entry, and the activity/drain/capacity mask
// transitions. Feeding a daemon initialized at state 1 the diffs of each
// consecutive state pair replays the exact batch trace — the invariant the
// equivalence tests and cmd/loadgen are built on. Events are emitted in a
// fixed order (price, fronthaul, demand, channels, device masks, server
// masks, drains, capacity) so a replayed stream is byte-stable.
func DiffStates(prev, next *trace.State) []Event {
	var out []Event
	if next.Price != prev.Price {
		out = append(out, Event{Kind: KindPrice, Value: float64(next.Price)})
	}
	for k := range next.FronthaulSE {
		if next.FronthaulSE[k] != prev.FronthaulSE[k] {
			out = append(out, Event{Kind: KindFronthaul, Station: k, Value: float64(next.FronthaulSE[k])})
		}
	}
	for i := range next.TaskSizes {
		if next.TaskSizes[i] != prev.TaskSizes[i] || next.DataLengths[i] != prev.DataLengths[i] {
			out = append(out, Event{
				Kind:   KindDemand,
				Device: i,
				Task:   float64(next.TaskSizes[i]),
				Data:   float64(next.DataLengths[i]),
			})
		}
	}
	for i := range next.Channels {
		for k := range next.Channels[i] {
			if next.Channels[i][k] != prev.Channels[i][k] {
				out = append(out, Event{Kind: KindChannel, Device: i, Station: k, Value: float64(next.Channels[i][k])})
			}
		}
	}
	for i := 0; i < len(next.TaskSizes); i++ {
		was, is := prev.ActiveDevice(i), next.ActiveDevice(i)
		if was != is {
			kind := KindDeviceLeave
			if is {
				kind = KindDeviceJoin
			}
			out = append(out, Event{Kind: kind, Device: i})
		}
	}
	// Server indices beyond every mask read as active/up/nominal on both
	// sides, so the longest mask bounds the diff.
	servers := len(next.ServerActive)
	if len(prev.ServerActive) > servers {
		servers = len(prev.ServerActive)
	}
	if len(next.ServerDown) > servers {
		servers = len(next.ServerDown)
	}
	if len(prev.ServerDown) > servers {
		servers = len(prev.ServerDown)
	}
	if len(next.CapScale) > servers {
		servers = len(next.CapScale)
	}
	if len(prev.CapScale) > servers {
		servers = len(prev.CapScale)
	}
	for n := 0; n < servers; n++ {
		was, is := prev.ActiveServer(n), next.ActiveServer(n)
		if was != is {
			kind := KindServerRemove
			if is {
				kind = KindServerAdd
			}
			out = append(out, Event{Kind: kind, Server: n})
		}
		if prev.Down(n) != next.Down(n) {
			kind := KindServerUp
			if next.Down(n) {
				kind = KindServerDown
			}
			out = append(out, Event{Kind: kind, Server: n})
		}
		if prev.Cap(n) != next.Cap(n) {
			out = append(out, Event{Kind: KindCapScale, Server: n, Value: next.Cap(n)})
		}
	}
	return out
}
