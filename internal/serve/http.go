package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// IngestResponse is the reply of POST /v1/events: how the batch fared
// against the bounded queue.
type IngestResponse struct {
	// Accepted counts events admitted to the queue.
	Accepted int `json:"accepted"`
	// Shed counts events dropped because the queue was full.
	Shed int `json:"shed"`
	// QueueDepth is the queue occupancy after the batch.
	QueueDepth int `json:"queue_depth"`
}

// maxIngestBody bounds a single /v1/events request body (16 MiB, roughly
// 100k events) so a misbehaving producer cannot balloon daemon memory
// before the bounded queue even sees the batch.
const maxIngestBody = 16 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /v1/events     ingest a JSON array of events (shed-and-count on overflow)
//	POST /v1/tick       advance one slot (lockstep drivers; any time, also with Run active)
//	GET  /v1/decisions  latest decision; ?since=N + ?wait=5s long-polls for a newer slot
//	GET  /v1/status     live health summary (queue depth, shed, rungs, escalations)
//	GET  /v1/snapshot   full resume snapshot (the kill/restore drill input)
//	GET  /metrics       obs registry snapshot as JSON (404 without SetObs)
//
// The handler is safe to mount alongside expvar/pprof on the same mux, as
// cmd/eotorad does.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/events", d.handleEvents)
	mux.HandleFunc("/v1/tick", d.handleTick)
	mux.HandleFunc("/v1/decisions", d.handleDecisions)
	mux.HandleFunc("/v1/status", d.handleStatus)
	mux.HandleFunc("/v1/snapshot", d.handleSnapshot)
	mux.HandleFunc("/metrics", d.handleMetrics)
	return mux
}

// handleEvents ingests a JSON event batch.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var events []Event
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	if err := dec.Decode(&events); err != nil {
		http.Error(w, fmt.Sprintf("decoding events: %v", err), http.StatusBadRequest)
		return
	}
	accepted, shed := d.Ingest(events)
	d.qmu.Lock()
	depth := len(d.queue)
	d.qmu.Unlock()
	writeJSON(w, IngestResponse{Accepted: accepted, Shed: shed, QueueDepth: depth})
}

// handleTick advances one slot on demand.
func (d *Daemon) handleTick(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	dec, err := d.Tick()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, dec)
}

// handleDecisions serves the latest decision, long-polling when asked.
func (d *Daemon) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	since := 0
	if s := r.URL.Query().Get("since"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &since); err != nil {
			http.Error(w, "since must be a slot index", http.StatusBadRequest)
			return
		}
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil || wait <= 0 {
			http.Error(w, "wait must be a positive duration", http.StatusBadRequest)
			return
		}
		// Derive from the request context so a dropped client releases
		// its waiter immediately.
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		defer cancel()
		dec, err := d.WaitDecision(ctx, since)
		if err != nil {
			// Timeout without a newer slot: 204 tells the poller to retry.
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, dec)
		return
	}
	dec, ok := d.Latest(since)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, dec)
}

// handleStatus serves the live health summary.
func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, d.Status())
}

// handleSnapshot serves the full resume snapshot.
func (d *Daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := d.WriteSnapshot(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetrics serves the obs registry snapshot.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reg := d.Obs()
	if reg == nil {
		http.Error(w, "observability not attached (run with -metrics)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := reg.Snapshot().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
