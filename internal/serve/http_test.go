package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"eotora/internal/obs"
	"eotora/internal/serve"
)

// postJSON posts v as JSON and decodes the reply into out when non-nil.
func postJSON(t *testing.T, url string, v, out any) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if v != nil {
		if err := json.NewEncoder(&body).Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// getJSON fetches url and decodes the reply into out when the status is
// 2xx and out is non-nil.
func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

// TestHTTPAPI exercises the full endpoint surface over a live server:
// ingest, lockstep ticking, latest/long-poll decisions, status, snapshot
// download, and the metrics gate.
func TestHTTPAPI(t *testing.T) {
	sys, gen := buildSystem(t, 8, 71)
	daemon, err := serve.NewDaemon(newController(t, sys), gen.Next(), serve.Config{QueueCap: 128})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(daemon.Handler())
	defer srv.Close()

	// No decision yet: latest polls get 204, status shows slot 0.
	if resp := getJSON(t, srv.URL+"/v1/decisions", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("decisions before any tick: %s", resp.Status)
	}
	var st serve.Status
	getJSON(t, srv.URL+"/v1/status", &st)
	if st.Slot != 0 || st.QueueCap != 128 {
		t.Fatalf("initial status: slot %d, cap %d", st.Slot, st.QueueCap)
	}

	// Ingest a batch, one invalid event included.
	var ing serve.IngestResponse
	postJSON(t, srv.URL+"/v1/events", []serve.Event{
		{Kind: serve.KindPrice, Value: 61},
		{Kind: serve.KindDemand, Device: -1, Task: 1, Data: 1},
	}, &ing)
	if ing.Accepted != 2 || ing.Shed != 0 || ing.QueueDepth != 2 {
		t.Fatalf("ingest response: %+v", ing)
	}

	// Lockstep tick applies the batch and returns the decision.
	var dec serve.Decision
	postJSON(t, srv.URL+"/v1/tick", nil, &dec)
	if dec.Slot != 1 || dec.EventsApplied != 1 || dec.EventsInvalid != 1 {
		t.Fatalf("tick decision: slot %d, applied %d, invalid %d", dec.Slot, dec.EventsApplied, dec.EventsInvalid)
	}

	// Latest honors since; long-poll returns the published slot and times
	// out with 204 when nothing newer arrives.
	var latest serve.Decision
	if resp := getJSON(t, srv.URL+"/v1/decisions?since=0", &latest); resp.StatusCode != http.StatusOK || latest.Slot != 1 {
		t.Fatalf("latest since=0: %s slot %d", resp.Status, latest.Slot)
	}
	if resp := getJSON(t, srv.URL+"/v1/decisions?since=1", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("latest since=1: %s", resp.Status)
	}
	if resp := getJSON(t, srv.URL+"/v1/decisions?since=1&wait=10ms", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("long-poll timeout: %s", resp.Status)
	}
	if resp := getJSON(t, srv.URL+"/v1/decisions?since=0&wait=1s", &latest); resp.StatusCode != http.StatusOK {
		t.Fatalf("long-poll with published slot: %s", resp.Status)
	}

	// Snapshot downloads, parses, and restores.
	resp, err := http.Get(srv.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.ReadSnapshot(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Ticks != 1 {
		t.Fatalf("snapshot ticks %d", snap.Ticks)
	}
	if err := daemon.Restore(snap); err != nil {
		t.Fatal(err)
	}

	// Metrics: 404 without a registry, live JSON with one.
	if resp := getJSON(t, srv.URL+"/metrics", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("metrics without registry: %s", resp.Status)
	}
	daemon.SetObs(obs.New())
	postJSON(t, srv.URL+"/v1/tick", nil, nil)
	var metrics obs.Snapshot
	if resp := getJSON(t, srv.URL+"/metrics", &metrics); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics with registry: %s", resp.Status)
	}
	if metrics.Counters["serve.ticks"] != 1 {
		t.Fatalf("serve.ticks = %d, want 1", metrics.Counters["serve.ticks"])
	}

	// Wrong methods are rejected.
	for _, bad := range []struct{ method, path string }{
		{http.MethodGet, "/v1/events"},
		{http.MethodGet, "/v1/tick"},
		{http.MethodPost, "/v1/decisions"},
		{http.MethodPost, "/v1/status"},
		{http.MethodPost, "/v1/snapshot"},
		{http.MethodPost, "/metrics"},
	} {
		req, err := http.NewRequest(bad.method, srv.URL+bad.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: %s", bad.method, bad.path, resp.Status)
		}
	}

	// Malformed ingest bodies are a client error, not a daemon fault.
	if resp := postJSON(t, srv.URL+"/v1/events", "not an array", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ingest: %s", resp.Status)
	}
	if resp := getJSON(t, srv.URL+"/v1/decisions?since=banana", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed since: %s", resp.Status)
	}
	if resp := getJSON(t, srv.URL+"/v1/decisions?wait=-1s", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed wait: %s", resp.Status)
	}
}

// TestHTTPIngestBodyBound asserts the 16 MiB request-body bound rejects an
// oversized batch before it reaches the queue.
func TestHTTPIngestBodyBound(t *testing.T) {
	sys, gen := buildSystem(t, 8, 73)
	daemon, err := serve.NewDaemon(newController(t, sys), gen.Next(), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(daemon.Handler())
	defer srv.Close()

	// One giant event whose JSON body alone crosses the bound.
	huge := fmt.Sprintf(`[{"kind":"price","value":1%s}]`, bytes.Repeat([]byte("0"), 17<<20))
	resp, err := http.Post(srv.URL+"/v1/events", "application/json", bytes.NewReader([]byte(huge)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: %s", resp.Status)
	}
	if st := daemon.Status(); st.EventsIngested != 0 {
		t.Fatalf("oversized body reached the queue: %d", st.EventsIngested)
	}
}
