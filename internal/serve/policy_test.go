package serve_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"eotora/internal/policy"
	"eotora/internal/serve"
	"eotora/internal/trace"
)

// newPolicy builds the named policy over a fresh fixture system with the
// shared test game parameters.
func newPolicy(t testing.TB, name string, devices int, seed int64) (policy.Policy, *trace.Generator) {
	t.Helper()
	sys, gen := buildSystem(t, devices, seed)
	pol, err := policy.New(name, sys, policy.Config{V: 120, Rounds: 3, Lambda: 0.05, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	return pol, gen
}

// TestDaemonBaselinePolicy: the daemon boots and streams with a baseline
// policy — no degradation ladder, no budgets — and its decisions match
// the same policy driven directly over the same states.
func TestDaemonBaselinePolicy(t *testing.T) {
	polA, genA := newPolicy(t, policy.GreedyEnergy, 12, 31)
	polB, genB := newPolicy(t, policy.GreedyEnergy, 12, 31)

	daemon, err := serve.NewDaemon(polB, genB.Next(), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if daemon.Controller() != nil {
		t.Error("Controller() non-nil for a baseline policy")
	}
	if daemon.Policy() != polB {
		t.Error("Policy() is not the constructed policy")
	}

	prev := genA.Next()
	res, err := polA.Decide(1, prev)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := daemon.Tick()
	if err != nil {
		t.Fatal(err)
	}
	requireSameDecision(t, dec, res)
	for slot := 2; slot <= 8; slot++ {
		next := genA.Next()
		res, err := polA.Decide(slot, next)
		if err != nil {
			t.Fatal(err)
		}
		requireSameDecision(t, stream(t, daemon, prev, next), res)
		prev = next
	}
	if st := daemon.Status(); st.Slot != 8 || st.Backlog != polA.Backlog() {
		t.Errorf("status slot %d backlog %v, want 8/%v", st.Slot, st.Backlog, polA.Backlog())
	}
}

// TestDaemonBaselineBudgetsRejected: slot budgets and escalation need the
// degradation ladder (policy.DeadlineSetter); constructing a daemon that
// couples them with a capability-less baseline must fail loudly instead
// of silently never degrading.
func TestDaemonBaselineBudgetsRejected(t *testing.T) {
	cfgs := map[string]serve.Config{
		"slot deadline":     {SlotDeadline: time.Second},
		"slot checks":       {SlotChecks: 100},
		"escalate deadline": {EscalateDeadline: time.Second},
		"escalate checks":   {EscalateChecks: 50},
	}
	for name, cfg := range cfgs {
		pol, gen := newPolicy(t, policy.EdgeOnly, 8, 5)
		if _, err := serve.NewDaemon(pol, gen.Next(), cfg); err == nil {
			t.Errorf("%s: accepted for a policy with no slot-deadline capability", name)
		} else if !strings.Contains(err.Error(), policy.EdgeOnly) {
			t.Errorf("%s: error %q does not name the policy", name, err)
		}
	}
	// The bdma family keeps the capability.
	pol, gen := newPolicy(t, policy.BDMATuned, 8, 5)
	if _, err := serve.NewDaemon(pol, gen.Next(), serve.Config{SlotChecks: 1 << 30}); err != nil {
		t.Errorf("budgets rejected for bdma-tuned: %v", err)
	}
}

// TestBaselineSnapshotRestore: kill/restore with a baseline policy — the
// snapshot carries the policy name in the Solver field, restores into an
// identically configured daemon, and the stitched decision sequence is
// bit-identical to an uninterrupted run.
func TestBaselineSnapshotRestore(t *testing.T) {
	const slots, killAt = 10, 5
	run := func() ([]*serve.Decision, *serve.Daemon, *trace.Generator, *trace.State) {
		pol, gen := newPolicy(t, policy.GreedyDeadline, 10, 41)
		prev := gen.Next()
		d, err := serve.NewDaemon(pol, prev, serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := d.Tick()
		if err != nil {
			t.Fatal(err)
		}
		return []*serve.Decision{dec}, d, gen, prev
	}

	reference, daemonA, genA, prevA := run()
	for slot := 2; slot <= slots; slot++ {
		next := genA.Next()
		reference = append(reference, stream(t, daemonA, prevA, next))
		prevA = next
	}

	got, daemonB, genB, prevB := run()
	for slot := 2; slot <= killAt; slot++ {
		next := genB.Next()
		got = append(got, stream(t, daemonB, prevB, next))
		prevB = next
	}
	var buf bytes.Buffer
	if err := daemonB.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := serve.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Controller.Solver != policy.GreedyDeadline {
		t.Fatalf("snapshot solver %q, want the policy name", snap.Controller.Solver)
	}

	polC, genC := newPolicy(t, policy.GreedyDeadline, 10, 41)
	daemonC, err := serve.NewDaemon(polC, genC.Next(), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := daemonC.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for slot := killAt + 1; slot <= slots; slot++ {
		next := genB.Next()
		got = append(got, stream(t, daemonC, prevB, next))
		prevB = next
	}
	if len(got) != len(reference) {
		t.Fatalf("stitched run has %d decisions, want %d", len(got), len(reference))
	}
	for i := range got {
		requireSameDecisions(t, got[i], reference[i])
	}
	// A baseline daemon must refuse a tuner snapshot: the Extra state has
	// no owner there.
	snap.Controller.Extra = map[string]float64{"tuner_lambda": 0.1}
	if err := daemonC.Restore(snap); err == nil {
		t.Error("baseline daemon restored a checkpoint with tuner state")
	}
}

// TestTunerSnapshotRoundTrip: the tuner's Extra state survives the JSON
// wire format (WriteSnapshot → ReadSnapshot) and the restored daemon
// continues bit-identically — with a window small enough that the knobs
// have already moved before the kill.
func TestTunerSnapshotRoundTrip(t *testing.T) {
	const slots, killAt = 12, 7
	build := func() (policy.Policy, *trace.Generator) {
		sys, gen := buildSystem(t, 10, 43)
		pol, err := policy.New(policy.BDMATuned, sys, policy.Config{
			V: 120, Rounds: 3, Lambda: 0.05, Seed: 17,
			Tuner: policy.TunerConfig{Window: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		return pol, gen
	}

	polA, genA := build()
	prevA := genA.Next()
	daemonA, err := serve.NewDaemon(polA, prevA, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := daemonA.Tick()
	if err != nil {
		t.Fatal(err)
	}
	reference := []*serve.Decision{dec}
	for slot := 2; slot <= slots; slot++ {
		next := genA.Next()
		reference = append(reference, stream(t, daemonA, prevA, next))
		prevA = next
	}

	polB, genB := build()
	prevB := genB.Next()
	daemonB, err := serve.NewDaemon(polB, prevB, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err = daemonB.Tick()
	if err != nil {
		t.Fatal(err)
	}
	got := []*serve.Decision{dec}
	for slot := 2; slot <= killAt; slot++ {
		next := genB.Next()
		got = append(got, stream(t, daemonB, prevB, next))
		prevB = next
	}
	var buf bytes.Buffer
	if err := daemonB.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := serve.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Controller.Extra) == 0 {
		t.Fatal("tuner snapshot lost the Extra state on the wire")
	}

	polC, genC := build()
	daemonC, err := serve.NewDaemon(polC, genC.Next(), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := daemonC.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for slot := killAt + 1; slot <= slots; slot++ {
		next := genB.Next()
		got = append(got, stream(t, daemonC, prevB, next))
		prevB = next
	}
	for i := range got {
		requireSameDecisions(t, got[i], reference[i])
	}
}
