package serve_test

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"eotora/internal/core"
	"eotora/internal/par"
	"eotora/internal/rng"
	"eotora/internal/serve"
	"eotora/internal/topology"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// buildSystem constructs a small test system plus a matching state
// generator, mirroring the core package's test fixture: the budget sits
// midway between the all-min and all-max frequency cost so it is feasible
// but binding.
func buildSystem(t testing.TB, devices int, seed int64) (*core.System, *trace.Generator) {
	t.Helper()
	spec := topology.DefaultSpec(devices)
	spec.Stations = 3
	spec.UmbrellaStations = 1
	spec.ServersPerRoom = 2
	src := rng.New(seed)
	net, err := topology.Generate(spec, src.Derive("net"))
	if err != nil {
		t.Fatal(err)
	}
	models := core.DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
	sys, err := core.NewSystem(net, models, 3600, 1)
	if err != nil {
		t.Fatal(err)
	}
	meanPrice := units.Price(50)
	low := sys.EnergyCost(sys.LowestFrequencies(), meanPrice)
	high := sys.EnergyCost(sys.HighestFrequencies(), meanPrice)
	sys.Budget = (low + high) / 2
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

// testChurn is a churn regime hot enough that a short run exercises joins,
// leaves, handovers, and server add/remove through the streaming path.
func testChurn(seed int64) trace.ChurnConfig {
	return trace.ChurnConfig{
		Seed:                  seed,
		DeviceJoinProb:        0.30,
		DeviceLeaveProb:       0.30,
		HandoverProb:          0.20,
		ServerRemoveProb:      0.25,
		ServerAddProb:         0.25,
		MinActiveDevices:      1,
		InitialActiveFraction: 0.8,
	}
}

// newController builds a controller over sys with the fixed test game
// parameters shared by every equivalence run in this file.
func newController(t testing.TB, sys *core.System) *core.Controller {
	t.Helper()
	ctrl, err := core.NewBDMAController(sys, 120, 3, 0.05, 17)
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// requireSameDecision asserts the daemon decision matches the batch slot
// result bit for bit on every solver-visible output.
func requireSameDecision(t *testing.T, dec *serve.Decision, res *core.SlotResult) {
	t.Helper()
	if dec.Slot != res.Slot {
		t.Fatalf("daemon slot %d, batch slot %d", dec.Slot, res.Slot)
	}
	if dec.Rung != res.Rung || dec.Degraded != res.Degraded {
		t.Fatalf("slot %d: daemon rung %d (degraded %v), batch rung %d (degraded %v)",
			dec.Slot, dec.Rung, dec.Degraded, res.Rung, res.Degraded)
	}
	if math.Float64bits(dec.Backlog) != math.Float64bits(res.Backlog) {
		t.Fatalf("slot %d: daemon backlog %v, batch %v", dec.Slot, dec.Backlog, res.Backlog)
	}
	if math.Float64bits(dec.LatencySeconds) != math.Float64bits(res.Latency.Value()) {
		t.Fatalf("slot %d: daemon latency %v, batch %v", dec.Slot, dec.LatencySeconds, res.Latency.Value())
	}
	if math.Float64bits(dec.EnergyCostUSD) != math.Float64bits(res.EnergyCost.Dollars()) {
		t.Fatalf("slot %d: daemon cost %v, batch %v", dec.Slot, dec.EnergyCostUSD, res.EnergyCost.Dollars())
	}
	if math.Float64bits(dec.Objective) != math.Float64bits(res.Objective) {
		t.Fatalf("slot %d: daemon objective %v, batch %v", dec.Slot, dec.Objective, res.Objective)
	}
	if len(dec.Station) != len(res.Decision.Station) || len(dec.Server) != len(res.Decision.Server) {
		t.Fatalf("slot %d: decision dims differ", dec.Slot)
	}
	for i := range dec.Station {
		if dec.Station[i] != res.Decision.Station[i] || dec.Server[i] != res.Decision.Server[i] {
			t.Fatalf("slot %d: device %d daemon (%d, %d), batch (%d, %d)", dec.Slot, i,
				dec.Station[i], dec.Server[i], res.Decision.Station[i], res.Decision.Server[i])
		}
	}
	for n := range dec.FreqHz {
		if math.Float64bits(dec.FreqHz[n]) != math.Float64bits(float64(res.Decision.Freq[n])) {
			t.Fatalf("slot %d: server %d daemon freq %v, batch %v", dec.Slot, n,
				dec.FreqHz[n], float64(res.Decision.Freq[n]))
		}
	}
}

// requireSameDecisions asserts two daemon decisions are bit-identical.
func requireSameDecisions(t *testing.T, a, b *serve.Decision) {
	t.Helper()
	if a.Slot != b.Slot || a.Rung != b.Rung || a.Degraded != b.Degraded {
		t.Fatalf("decisions differ: slot %d rung %d vs slot %d rung %d", a.Slot, a.Rung, b.Slot, b.Rung)
	}
	if math.Float64bits(a.Backlog) != math.Float64bits(b.Backlog) ||
		math.Float64bits(a.Objective) != math.Float64bits(b.Objective) ||
		math.Float64bits(a.LatencySeconds) != math.Float64bits(b.LatencySeconds) ||
		math.Float64bits(a.EnergyCostUSD) != math.Float64bits(b.EnergyCostUSD) {
		t.Fatalf("slot %d: scalar outputs differ: backlog (%v, %v), objective (%v, %v)",
			a.Slot, a.Backlog, b.Backlog, a.Objective, b.Objective)
	}
	for i := range a.Station {
		if a.Station[i] != b.Station[i] || a.Server[i] != b.Server[i] {
			t.Fatalf("slot %d: device %d decisions diverge", a.Slot, i)
		}
	}
	for n := range a.FreqHz {
		if math.Float64bits(a.FreqHz[n]) != math.Float64bits(b.FreqHz[n]) {
			t.Fatalf("slot %d: server %d frequencies diverge", a.Slot, n)
		}
	}
}

// stream drives one daemon slot from the diff of two consecutive states:
// ingest the event batch, tick, return the decision.
func stream(t *testing.T, d *serve.Daemon, prev, next *trace.State) *serve.Decision {
	t.Helper()
	events := serve.DiffStates(prev, next)
	if accepted, shed := d.Ingest(events); shed != 0 || accepted != len(events) {
		t.Fatalf("ingest accepted %d, shed %d of %d", accepted, shed, len(events))
	}
	dec, err := d.Tick()
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// TestDaemonMatchesBatchRun is the serve-mode equivalence invariant: a
// daemon initialized at β_1 and fed DiffStates batches of each consecutive
// state pair reproduces the batch controller's decision sequence bit for
// bit.
func TestDaemonMatchesBatchRun(t *testing.T) {
	sysA, genA := buildSystem(t, 12, 31)
	sysB, genB := buildSystem(t, 12, 31)
	batch := newController(t, sysA)
	// Same seed, so genB's β_1 is bitwise the state genA yields first; the
	// daemon never consumes genB again — diffs come from genA's sequence.
	daemon, err := serve.NewDaemon(newController(t, sysB), genB.Next(), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prev := genA.Next()
	res, err := batch.Step(prev)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := daemon.Tick()
	if err != nil {
		t.Fatal(err)
	}
	requireSameDecision(t, dec, res)
	for slot := 2; slot <= 10; slot++ {
		next := genA.Next()
		res, err := batch.Step(next)
		if err != nil {
			t.Fatal(err)
		}
		requireSameDecision(t, stream(t, daemon, prev, next), res)
		prev = next
	}
}

// TestDaemonMatchesBatchRunChurn repeats the equivalence run through an
// aggressive churn schedule, so joins, leaves, handovers, and server
// add/remove all cross the streaming path as mask events.
func TestDaemonMatchesBatchRunChurn(t *testing.T) {
	sysA, genA := buildSystem(t, 12, 33)
	sysB, genB := buildSystem(t, 12, 33)
	schedA, err := trace.NewChurnSchedule(testChurn(7), sysA.Net, genA)
	if err != nil {
		t.Fatal(err)
	}
	schedB, err := trace.NewChurnSchedule(testChurn(7), sysB.Net, genB)
	if err != nil {
		t.Fatal(err)
	}
	batch := newController(t, sysA)
	prevB := schedB.Next()
	daemon, err := serve.NewDaemon(newController(t, sysB), prevB, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prevA := schedA.Next()
	res, err := batch.Step(prevA)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := daemon.Tick()
	if err != nil {
		t.Fatal(err)
	}
	requireSameDecision(t, dec, res)
	for slot := 2; slot <= 12; slot++ {
		nextA, nextB := schedA.Next(), schedB.Next()
		res, err := batch.Step(nextA)
		if err != nil {
			t.Fatal(err)
		}
		requireSameDecision(t, stream(t, daemon, prevB, nextB), res)
		prevA, prevB = nextA, nextB
	}
}

// TestSnapshotRestoreBitIdentity is the kill/restore drill: run one daemon
// uninterrupted, kill a twin mid-run (snapshot — with events already
// pending in the queue), restore the snapshot into a fresh daemon, and
// assert the stitched decision sequence is bit-identical to the
// uninterrupted one — at every pool size, with churn and a counted slot
// budget armed so the RungPrevious continuity state crosses the restart
// too.
func TestSnapshotRestoreBitIdentity(t *testing.T) {
	const slots, killAt = 12, 6
	cfg := serve.Config{SlotChecks: 1 << 30}
	for _, workers := range []int{0, 1, 4} {
		// Uninterrupted reference run.
		sysA, genA := buildSystem(t, 12, 37)
		schedA, err := trace.NewChurnSchedule(testChurn(11), sysA.Net, genA)
		if err != nil {
			t.Fatal(err)
		}
		ctrlA := newController(t, sysA)
		if workers > 0 {
			pool := par.New(workers)
			defer pool.Close()
			ctrlA.SetPool(pool)
		}
		prevA := schedA.Next()
		daemonA, err := serve.NewDaemon(ctrlA, prevA, cfg)
		if err != nil {
			t.Fatal(err)
		}
		reference := make([]*serve.Decision, 0, slots)
		dec, err := daemonA.Tick()
		if err != nil {
			t.Fatal(err)
		}
		reference = append(reference, dec)
		for slot := 2; slot <= slots; slot++ {
			next := schedA.Next()
			reference = append(reference, stream(t, daemonA, prevA, next))
			prevA = next
		}

		// Interrupted run: identical through killAt, then snapshot with the
		// next slot's events already queued, restore into a fresh daemon,
		// and continue the same stream.
		sysB, genB := buildSystem(t, 12, 37)
		schedB, err := trace.NewChurnSchedule(testChurn(11), sysB.Net, genB)
		if err != nil {
			t.Fatal(err)
		}
		ctrlB := newController(t, sysB)
		if workers > 0 {
			pool := par.New(workers)
			defer pool.Close()
			ctrlB.SetPool(pool)
		}
		prevB := schedB.Next()
		daemonB, err := serve.NewDaemon(ctrlB, prevB, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]*serve.Decision, 0, slots)
		dec, err = daemonB.Tick()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, dec)
		for slot := 2; slot <= killAt; slot++ {
			next := schedB.Next()
			got = append(got, stream(t, daemonB, prevB, next))
			prevB = next
		}
		// Queue slot killAt+1's events, then kill: the pending batch must
		// survive the snapshot and decide the first restored slot.
		next := schedB.Next()
		if _, shed := daemonB.Ingest(serve.DiffStates(prevB, next)); shed != 0 {
			t.Fatal("unexpected shed while queueing the pending batch")
		}
		prevB = next
		var buf bytes.Buffer
		if err := daemonB.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		snap, err := serve.ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}

		sysC, genC := buildSystem(t, 12, 37)
		ctrlC := newController(t, sysC)
		if workers > 0 {
			pool := par.New(workers)
			defer pool.Close()
			ctrlC.SetPool(pool)
		}
		daemonC, err := serve.NewDaemon(ctrlC, genC.Next(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := daemonC.Restore(snap); err != nil {
			t.Fatal(err)
		}
		dec, err = daemonC.Tick() // decides killAt+1 from the restored queue
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, dec)
		for slot := killAt + 2; slot <= slots; slot++ {
			next := schedB.Next()
			got = append(got, stream(t, daemonC, prevB, next))
			prevB = next
		}

		if len(got) != len(reference) {
			t.Fatalf("workers %d: %d decisions, reference %d", workers, len(got), len(reference))
		}
		for i := range reference {
			requireSameDecisions(t, reference[i], got[i])
		}
	}
}

// TestBackpressureShedAccounting overloads a tiny queue and asserts the
// bound holds with exact shed accounting: accepted + shed always equals
// sent, the queue never exceeds its cap, and draining reopens admission.
func TestBackpressureShedAccounting(t *testing.T) {
	sys, gen := buildSystem(t, 8, 41)
	daemon, err := serve.NewDaemon(newController(t, sys), gen.Next(), serve.Config{QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	events := make([]serve.Event, 200)
	for i := range events {
		events[i] = serve.Event{Kind: serve.KindPrice, Value: 50 + float64(i)}
	}
	accepted, shed := daemon.Ingest(events)
	if accepted != 64 || shed != 136 {
		t.Fatalf("accepted %d, shed %d; want 64, 136", accepted, shed)
	}
	st := daemon.Status()
	if st.QueueDepth != 64 || st.EventsIngested != 64 || st.EventsShed != 136 {
		t.Fatalf("status depth %d, ingested %d, shed %d", st.QueueDepth, st.EventsIngested, st.EventsShed)
	}
	// A full queue sheds everything.
	if accepted, shed = daemon.Ingest(events[:10]); accepted != 0 || shed != 10 {
		t.Fatalf("full queue accepted %d, shed %d", accepted, shed)
	}
	// Draining reopens admission and the applied counter picks the batch up.
	if _, err := daemon.Tick(); err != nil {
		t.Fatal(err)
	}
	st = daemon.Status()
	if st.QueueDepth != 0 || st.EventsApplied != 64 {
		t.Fatalf("after tick: depth %d, applied %d", st.QueueDepth, st.EventsApplied)
	}
	if accepted, _ = daemon.Ingest(events[:10]); accepted != 10 {
		t.Fatalf("drained queue accepted %d of 10", accepted)
	}
}

// TestBackpressureMaxBatch asserts MaxBatch carries the remainder across
// ticks in arrival order instead of applying the whole queue at once.
func TestBackpressureMaxBatch(t *testing.T) {
	sys, gen := buildSystem(t, 8, 43)
	daemon, err := serve.NewDaemon(newController(t, sys), gen.Next(), serve.Config{QueueCap: 64, MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	events := make([]serve.Event, 8)
	for i := range events {
		events[i] = serve.Event{Kind: serve.KindPrice, Value: 50 + float64(i)}
	}
	daemon.Ingest(events)
	for tick, want := range []int{3, 3, 2, 0} {
		dec, err := daemon.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if dec.EventsApplied != want {
			t.Fatalf("tick %d applied %d events, want %d", tick+1, dec.EventsApplied, want)
		}
	}
}

// TestBackpressureEscalation asserts the occupancy trigger: a queue past
// DegradeAt arms the tighter counted budget for that tick (degrading the
// slot deterministically), and an idle queue solves at the full rung with
// no budget armed.
func TestBackpressureEscalation(t *testing.T) {
	sys, gen := buildSystem(t, 8, 47)
	daemon, err := serve.NewDaemon(newController(t, sys), gen.Next(), serve.Config{
		QueueCap:       8,
		DegradeAt:      0.5,
		EscalateChecks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := make([]serve.Event, 6)
	for i := range events {
		events[i] = serve.Event{Kind: serve.KindPrice, Value: 50 + float64(i)}
	}
	daemon.Ingest(events)
	dec, err := daemon.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Escalated || !dec.Degraded || dec.Rung == core.RungFull {
		t.Fatalf("overloaded tick: escalated %v, degraded %v, rung %d", dec.Escalated, dec.Degraded, dec.Rung)
	}
	if st := daemon.Status(); st.Escalations != 1 || st.DegradedSlots != 1 {
		t.Fatalf("status escalations %d, degraded %d", st.Escalations, st.DegradedSlots)
	}
	// The empty queue solves the next slot at the full rung: the
	// escalation budget was restored after the overloaded tick.
	dec, err = daemon.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Escalated || dec.Rung != core.RungFull {
		t.Fatalf("idle tick: escalated %v, rung %d", dec.Escalated, dec.Rung)
	}
	if st := daemon.Status(); st.Escalations != 1 {
		t.Fatalf("idle tick escalated: %d", st.Escalations)
	}
}

// TestInvalidEventsShedAtApply asserts malformed events are counted and
// skipped at apply time without failing the slot.
func TestInvalidEventsShedAtApply(t *testing.T) {
	sys, gen := buildSystem(t, 8, 53)
	daemon, err := serve.NewDaemon(newController(t, sys), gen.Next(), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	daemon.Ingest([]serve.Event{
		{Kind: "no-such-kind"},
		{Kind: serve.KindPrice, Value: math.NaN()},
		{Kind: serve.KindDemand, Device: 999, Task: 1, Data: 1},
		{Kind: serve.KindChannel, Device: 0, Station: -1, Value: 1},
		{Kind: serve.KindCapScale, Server: 0, Value: 1.5},
		{Kind: serve.KindPrice, Value: 77},
	})
	dec, err := daemon.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if dec.EventsApplied != 1 || dec.EventsInvalid != 5 {
		t.Fatalf("applied %d, invalid %d; want 1, 5", dec.EventsApplied, dec.EventsInvalid)
	}
	if st := daemon.Status(); st.EventsInvalid != 5 {
		t.Fatalf("status invalid %d", st.EventsInvalid)
	}
}

// TestRestoreGuards asserts Restore rejects wrong wire versions and
// mismatched universes instead of silently resuming a different
// experiment.
func TestRestoreGuards(t *testing.T) {
	sys, gen := buildSystem(t, 8, 59)
	daemon, err := serve.NewDaemon(newController(t, sys), gen.Next(), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := daemon.Tick(); err != nil {
		t.Fatal(err)
	}
	snap := daemon.Snapshot()

	bad := snap
	bad.Version = serve.SnapshotVersion + 1
	if err := daemon.Restore(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version accepted: %v", err)
	}

	sysO, genO := buildSystem(t, 10, 59) // different universe: 10 devices
	other, err := serve.NewDaemon(newController(t, sysO), genO.Next(), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snap); err == nil || !strings.Contains(err.Error(), "devices") {
		t.Fatalf("mismatched universe accepted: %v", err)
	}

	// Round trip through the JSON codec preserves the snapshot, and a
	// truncated payload is rejected.
	var buf bytes.Buffer
	if err := daemon.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := serve.ReadSnapshot(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	rt, err := serve.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := daemon.Restore(rt); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreClampsPendingToQueueCap asserts a snapshot from a larger
// queue configuration sheds the pending tail on restore, keeping memory
// bounded and the shed counted.
func TestRestoreClampsPendingToQueueCap(t *testing.T) {
	sys, gen := buildSystem(t, 8, 61)
	big, err := serve.NewDaemon(newController(t, sys), gen.Next(), serve.Config{QueueCap: 1000})
	if err != nil {
		t.Fatal(err)
	}
	events := make([]serve.Event, 10)
	for i := range events {
		events[i] = serve.Event{Kind: serve.KindPrice, Value: 50 + float64(i)}
	}
	big.Ingest(events)
	snap := big.Snapshot()

	sysS, genS := buildSystem(t, 8, 61)
	small, err := serve.NewDaemon(newController(t, sysS), genS.Next(), serve.Config{QueueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Restore(snap); err != nil {
		t.Fatal(err)
	}
	st := small.Status()
	if st.QueueDepth != 4 || st.EventsShed != 6 {
		t.Fatalf("restored depth %d, shed %d; want 4, 6", st.QueueDepth, st.EventsShed)
	}
}

// TestRunTicksOnCadence covers timer mode: Run advances slots until the
// context ends, and WaitDecision long-polls the published stream.
func TestRunTicksOnCadence(t *testing.T) {
	sys, gen := buildSystem(t, 8, 67)
	daemon, err := serve.NewDaemon(newController(t, sys), gen.Next(), serve.Config{Tick: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	runDone := make(chan struct{})
	runCtx, stopRun := context.WithCancel(ctx)
	go func() {
		defer close(runDone)
		_ = daemon.Run(runCtx, nil)
	}()
	dec, err := daemon.WaitDecision(ctx, 1) // blocks until slot 2 or later
	if err != nil {
		t.Fatal(err)
	}
	if dec.Slot < 2 {
		t.Fatalf("long-poll returned slot %d", dec.Slot)
	}
	stopRun()
	<-runDone
	if got, ok := daemon.Latest(0); !ok || got.Slot < dec.Slot {
		t.Fatalf("latest after run: %v, %v", got, ok)
	}
	// Manual mode refuses Run.
	manual, err := serve.NewDaemon(newController(t, sys), gen.Next(), serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := manual.Run(ctx, nil); err == nil {
		t.Fatal("Run accepted manual mode")
	}
}
