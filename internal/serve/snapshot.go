package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"eotora/internal/core"
	"eotora/internal/trace"
	"eotora/internal/units"
)

// SnapshotVersion is the wire version of Snapshot. ReadSnapshot rejects
// other versions: the snapshot carries solver-visible state, so a silent
// cross-version restore could silently change decisions.
const SnapshotVersion = 1

// Snapshot is the daemon's full serializable resume state: the
// controller checkpoint (Q(t), slot counter, configuration guards, and
// the previous decision backing the RungPrevious fallback), the working
// copy of β_t including churn masks and fault overlays, the events
// queued but not yet applied, and the ingest/shed accounting. Restoring
// it into a fresh daemon with identical configuration resumes the
// decision sequence bit-identically — caches and shortlists are rebuilt
// lazily on the first restored slot and never change a decision bit
// (DESIGN.md §11–§12).
type Snapshot struct {
	// Version is the snapshot wire version (SnapshotVersion).
	Version int `json:"version"`
	// Ticks is the number of completed slot ticks.
	Ticks int64 `json:"ticks"`
	// Controller is the decision policy's resume state. The field name
	// (and wire key) predate the policy seam; for baseline policies the
	// checkpoint's Solver field carries the policy name, and for
	// bdma-tuned its Extra map carries the tuner state.
	Controller core.Checkpoint `json:"controller"`
	// State is the working slot state at snapshot time.
	State SnapshotState `json:"state"`
	// Pending holds the ingest queue (accepted, not yet applied).
	Pending []Event `json:"pending,omitempty"`
	// Counters carries the ingest/shed accounting across the restart.
	Counters SnapshotCounters `json:"counters"`
}

// SnapshotState is the serialized working state: every field of β_t plus
// the full-length churn masks and fault overlays.
type SnapshotState struct {
	// TaskSizes holds f_{i,t} in cycles.
	TaskSizes []float64 `json:"task_sizes"`
	// DataLengths holds d_{i,t} in bits.
	DataLengths []float64 `json:"data_lengths"`
	// Channels holds h_{i,k,t} in bps/Hz (0 = out of coverage).
	Channels [][]float64 `json:"channels"`
	// FronthaulSE holds h_k^F per station in bps/Hz.
	FronthaulSE []float64 `json:"fronthaul_se"`
	// Price is p_t in $/MWh.
	Price float64 `json:"price"`
	// DeviceActive is the full-length device activity mask.
	DeviceActive []bool `json:"device_active"`
	// ServerActive is the full-length server presence mask.
	ServerActive []bool `json:"server_active"`
	// ServerDown is the full-length advisory drain mask.
	ServerDown []bool `json:"server_down"`
	// CapScale is the full-length capacity-scale vector.
	CapScale []float64 `json:"cap_scale"`
}

// SnapshotCounters carries the daemon's cumulative accounting across a
// restart, so shed/ingest totals on a restored daemon keep meaning "since
// the stream began", not "since the last restart".
type SnapshotCounters struct {
	// Ingested counts events accepted into the queue.
	Ingested int64 `json:"ingested"`
	// Shed counts events dropped at a full queue.
	Shed int64 `json:"shed"`
	// Applied counts events folded into slot states.
	Applied int64 `json:"applied"`
	// Invalid counts malformed events shed at apply time.
	Invalid int64 `json:"invalid"`
	// TickErrors counts hard solve errors.
	TickErrors int64 `json:"tick_errors"`
	// Escalations counts backpressure-escalated ticks.
	Escalations int64 `json:"escalations"`
	// Degraded counts below-full-rung slots.
	Degraded int64 `json:"degraded"`
}

// Snapshot captures the daemon's resume state between ticks. It is safe
// to call concurrently with Ingest and Run: the tick lock is held, so the
// snapshot always lands on a slot boundary.
func (d *Daemon) Snapshot() Snapshot {
	d.tickMu.Lock()
	defer d.tickMu.Unlock()

	st := SnapshotState{
		TaskSizes:    make([]float64, len(d.st.TaskSizes)),
		DataLengths:  make([]float64, len(d.st.DataLengths)),
		Channels:     make([][]float64, len(d.st.Channels)),
		FronthaulSE:  make([]float64, len(d.st.FronthaulSE)),
		Price:        float64(d.st.Price),
		DeviceActive: append([]bool(nil), d.deviceActive...),
		ServerActive: append([]bool(nil), d.serverActive...),
		ServerDown:   append([]bool(nil), d.serverDown...),
		CapScale:     append([]float64(nil), d.capScale...),
	}
	for i, v := range d.st.TaskSizes {
		st.TaskSizes[i] = float64(v)
	}
	for i, v := range d.st.DataLengths {
		st.DataLengths[i] = float64(v)
	}
	for i, row := range d.st.Channels {
		st.Channels[i] = make([]float64, len(row))
		for k, v := range row {
			st.Channels[i][k] = float64(v)
		}
	}
	for k, v := range d.st.FronthaulSE {
		st.FronthaulSE[k] = float64(v)
	}

	d.qmu.Lock()
	pending := append([]Event(nil), d.queue...)
	counters := SnapshotCounters{
		Ingested:    d.ingested,
		Shed:        d.shedN,
		Applied:     d.applied,
		Invalid:     d.invalid,
		TickErrors:  d.tickErrors,
		Escalations: d.escalations,
		Degraded:    d.degraded,
	}
	d.qmu.Unlock()

	d.instr.snapshots.Inc()
	return Snapshot{
		Version:    SnapshotVersion,
		Ticks:      d.ticks,
		Controller: d.pol.Checkpoint(),
		State:      st,
		Pending:    pending,
		Counters:   counters,
	}
}

// Restore rewinds the daemon to a snapshot taken from a daemon with the
// same universe and controller configuration. The controller checkpoint
// restore enforces the V/solver/seed guards; this method enforces the
// version and universe dimensions. On success the next Tick decides slot
// Ticks+1 exactly as the snapshotted daemon would have.
func (d *Daemon) Restore(s Snapshot) error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("serve: snapshot version %d, this build reads %d", s.Version, SnapshotVersion)
	}
	switch {
	case len(s.State.TaskSizes) != d.devices,
		len(s.State.DataLengths) != d.devices,
		len(s.State.Channels) != d.devices,
		len(s.State.DeviceActive) != d.devices:
		return fmt.Errorf("serve: snapshot universe has %d devices, daemon %d", len(s.State.TaskSizes), d.devices)
	case len(s.State.FronthaulSE) != d.stations:
		return fmt.Errorf("serve: snapshot universe has %d stations, daemon %d", len(s.State.FronthaulSE), d.stations)
	case len(s.State.ServerActive) != d.servers,
		len(s.State.ServerDown) != d.servers,
		len(s.State.CapScale) != d.servers:
		return fmt.Errorf("serve: snapshot universe has %d servers, daemon %d", len(s.State.ServerActive), d.servers)
	case s.Ticks < 0:
		return fmt.Errorf("serve: snapshot tick count %d negative", s.Ticks)
	}
	for i, row := range s.State.Channels {
		if len(row) != d.stations {
			return fmt.Errorf("serve: snapshot channel row %d has %d stations, daemon %d", i, len(row), d.stations)
		}
	}

	d.tickMu.Lock()
	defer d.tickMu.Unlock()
	if err := d.pol.Restore(s.Controller); err != nil {
		return err
	}

	st := &trace.State{
		TaskSizes:   make([]units.Cycles, d.devices),
		DataLengths: make([]units.DataSize, d.devices),
		Channels:    make([][]units.SpectralEfficiency, d.devices),
		FronthaulSE: make([]units.SpectralEfficiency, d.stations),
		Price:       units.Price(s.State.Price),
	}
	for i, v := range s.State.TaskSizes {
		st.TaskSizes[i] = units.Cycles(v)
	}
	for i, v := range s.State.DataLengths {
		st.DataLengths[i] = units.DataSize(v)
	}
	for i, row := range s.State.Channels {
		st.Channels[i] = make([]units.SpectralEfficiency, len(row))
		for k, v := range row {
			st.Channels[i][k] = units.SpectralEfficiency(v)
		}
	}
	for k, v := range s.State.FronthaulSE {
		st.FronthaulSE[k] = units.SpectralEfficiency(v)
	}
	d.st = st
	d.deviceActive = append([]bool(nil), s.State.DeviceActive...)
	d.serverActive = append([]bool(nil), s.State.ServerActive...)
	d.serverDown = append([]bool(nil), s.State.ServerDown...)
	d.capScale = append([]float64(nil), s.State.CapScale...)
	d.ticks = s.Ticks
	d.tickErrors = s.Counters.TickErrors
	d.escalations = s.Counters.Escalations
	d.degraded = s.Counters.Degraded
	d.applied = s.Counters.Applied
	d.invalid = s.Counters.Invalid

	d.qmu.Lock()
	d.queue = d.queue[:0]
	if len(s.Pending) > d.cfg.QueueCap {
		// A snapshot from a larger queue configuration sheds the tail —
		// bounded memory wins over completeness, and the shed is counted.
		d.queue = append(d.queue, s.Pending[:d.cfg.QueueCap]...)
		d.shedN = s.Counters.Shed + int64(len(s.Pending)-d.cfg.QueueCap)
	} else {
		d.queue = append(d.queue, s.Pending...)
		d.shedN = s.Counters.Shed
	}
	d.ingested = s.Counters.Ingested
	d.qmu.Unlock()

	d.instr.restores.Inc()
	return nil
}

// WriteSnapshot serializes the daemon's snapshot as indented JSON.
func (d *Daemon) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d.Snapshot())
}

// ReadSnapshot parses a snapshot written by WriteSnapshot, rejecting
// unknown fields and wire versions this build does not read.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("serve: decoding snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return Snapshot{}, fmt.Errorf("serve: snapshot version %d, this build reads %d", s.Version, SnapshotVersion)
	}
	return s, nil
}
