// Package shard partitions a topology into resource-disjoint clusters for
// the sharded metro-scale slot solve (DESIGN.md §13).
//
// The P2-A congestion game couples devices only through shared resources:
// a server's compute capacity and a station's access/fronthaul links. Two
// devices that can never select the same station or reach the same server
// are independent — their best responses commute. The coupling structure
// is exactly the station–room graph: station k shares resources with
// station k' iff some chain of stations and rooms connects them (a room is
// shared whenever two stations' fronthauls reach it, and a station's
// access/fronthaul links are its own). Connected components of that
// bipartite graph are therefore resource-disjoint clusters, and a slot
// solve factorizes into per-cluster games plus a boundary set of devices
// covered by stations of more than one cluster.
//
// Partition computes the components with a union-find over stations and
// rooms, then bins them into at most `target` shards by greedy
// weight-balancing (heaviest component first onto the lightest bin). The
// result is a pure function of the network's wiring and the target — no
// RNG, no map iteration — so the same topology always yields the same
// partition, on every machine and at every pool size. The shard-package
// tests and the core shard×pool matrix tests enforce this.
package shard

import (
	"sort"

	"eotora/internal/topology"
)

// Partition is a deterministic decomposition of a network's stations,
// rooms, and servers into resource-disjoint shards.
type Partition struct {
	// Shards is the number of bins actually used: min(target, Clusters),
	// and at least 1.
	Shards int
	// Clusters is the number of connected components of the station–room
	// graph — the finest decomposition available; requesting more shards
	// than clusters cannot help.
	Clusters int
	// StationShard maps station index → shard.
	StationShard []int32
	// ServerShard maps server index → shard (via the server's room).
	ServerShard []int32
}

// New computes the partition of net into at most target shards. target
// values below 1 are treated as 1 (everything in one shard). The network
// must be finalized (topology.Network.Finalize).
func New(net *topology.Network, target int) Partition {
	stations := len(net.BaseStations)
	rooms := len(net.Rooms)
	if target < 1 {
		target = 1
	}

	// Union-find over stations [0, K) and rooms [K, K+M). Room IDs are
	// arbitrary ints; index them by position with a dense remap.
	roomIdx := make(map[int]int, rooms)
	for m := range net.Rooms {
		roomIdx[net.Rooms[m].ID] = m
	}
	parent := make([]int32, stations+rooms)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Deterministic orientation: the smaller root wins, so component
		// roots are the lowest member index regardless of union order.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for k := range net.BaseStations {
		for _, room := range net.BaseStations[k].Rooms {
			union(int32(k), int32(stations+roomIdx[room]))
		}
	}

	// Enumerate components in first-appearance order over stations then
	// rooms (roots are minimal member indices, so this order is stable).
	comp := make([]int32, stations+rooms)
	compOf := make(map[int32]int32)
	for i := range parent {
		root := find(int32(i))
		c, ok := compOf[root]
		if !ok {
			c = int32(len(compOf))
			compOf[root] = c
		}
		comp[i] = c
	}
	clusters := len(compOf)

	// Component weight: a proxy for solve cost. Servers dominate strategy
	// counts (each covered station contributes its reachable servers), so
	// weight by servers with stations as tie-mass.
	weight := make([]int, clusters)
	for k := 0; k < stations; k++ {
		weight[comp[k]]++
	}
	for n := range net.Servers {
		weight[comp[stations+roomIdx[net.Servers[n].Room]]] += 4
	}

	shards := target
	if shards > clusters {
		shards = clusters
	}
	if shards < 1 {
		shards = 1
	}

	// Greedy balanced binning: components sorted by weight descending
	// (ties: lower component index first), each assigned to the lightest
	// bin (ties: lowest bin index). Deterministic by construction.
	order := make([]int, clusters)
	for c := range order {
		order[c] = c
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weight[order[a]] > weight[order[b]]
	})
	binOf := make([]int32, clusters)
	binWeight := make([]int, shards)
	for _, c := range order {
		lightest := 0
		for s := 1; s < shards; s++ {
			if binWeight[s] < binWeight[lightest] {
				lightest = s
			}
		}
		binOf[c] = int32(lightest)
		binWeight[lightest] += weight[c]
	}

	p := Partition{
		Shards:       shards,
		Clusters:     clusters,
		StationShard: make([]int32, stations),
		ServerShard:  make([]int32, len(net.Servers)),
	}
	for k := 0; k < stations; k++ {
		p.StationShard[k] = binOf[comp[k]]
	}
	for n := range net.Servers {
		p.ServerShard[n] = binOf[comp[stations+roomIdx[net.Servers[n].Room]]]
	}
	return p
}
