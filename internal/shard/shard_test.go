package shard

import (
	"reflect"
	"testing"

	"eotora/internal/rng"
	"eotora/internal/topology"
)

func metroNet(t *testing.T, devices int) *topology.Network {
	t.Helper()
	net, err := topology.Generate(topology.MetroSpec(devices), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// Same topology, same target → identical partition, call after call.
func TestPartitionDeterministic(t *testing.T) {
	net := metroNet(t, 50)
	a := New(net, 8)
	for i := 0; i < 5; i++ {
		b := New(net, 8)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("partition %d differs:\n%+v\n%+v", i, b, a)
		}
	}
	// And the same spec regenerated from the same seed partitions the same.
	c := New(metroNet(t, 50), 8)
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("regenerated topology partitions differently:\n%+v\n%+v", c, a)
	}
}

// Stations that share a room (directly or transitively) must land in the
// same shard; servers follow their room's shard.
func TestPartitionRespectsAdjacency(t *testing.T) {
	net := metroNet(t, 50)
	p := New(net, 6)
	roomShard := map[int]int32{}
	for k, bs := range net.BaseStations {
		for _, room := range bs.Rooms {
			if prev, ok := roomShard[room]; ok {
				if prev != p.StationShard[k] {
					t.Fatalf("station %d in shard %d but room %d already in shard %d",
						k, p.StationShard[k], room, prev)
				}
			} else {
				roomShard[room] = p.StationShard[k]
			}
		}
	}
	for n, srv := range net.Servers {
		if want, ok := roomShard[srv.Room]; ok && p.ServerShard[n] != want {
			t.Fatalf("server %d in shard %d, its room %d's stations in shard %d",
				n, p.ServerShard[n], srv.Room, want)
		}
	}
}

// The metro spec is built to decompose: many clusters, and a target below
// the cluster count bins them with every shard non-empty.
func TestPartitionBinning(t *testing.T) {
	net := metroNet(t, 50)
	p := New(net, 4)
	if p.Clusters < 8 {
		t.Fatalf("metro spec yields %d clusters, want a decomposable topology (≥ 8)", p.Clusters)
	}
	if p.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", p.Shards)
	}
	seen := make([]bool, p.Shards)
	for _, s := range p.StationShard {
		if s < 0 || int(s) >= p.Shards {
			t.Fatalf("station shard %d outside [0, %d)", s, p.Shards)
		}
		seen[s] = true
	}
	for s, ok := range seen {
		if !ok {
			t.Fatalf("shard %d has no stations", s)
		}
	}
}

// A target beyond the cluster count clamps; a target below 1 means one
// shard; an umbrella topology (DefaultSpec) is a single cluster.
func TestPartitionClamping(t *testing.T) {
	net := metroNet(t, 50)
	p := New(net, 1<<20)
	if p.Shards != p.Clusters {
		t.Fatalf("Shards = %d, want clamp to Clusters = %d", p.Shards, p.Clusters)
	}
	if one := New(net, 0); one.Shards != 1 {
		t.Fatalf("target 0: Shards = %d, want 1", one.Shards)
	}

	campus, err := topology.Generate(topology.CampusSpec(20), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	pc := New(campus, 8)
	if pc.Clusters != 1 || pc.Shards != 1 {
		t.Fatalf("campus topology: Clusters = %d, Shards = %d, want 1, 1 (wireless fronthaul couples every station)",
			pc.Clusters, pc.Shards)
	}
}
