package sim

import (
	"errors"
	"fmt"

	"eotora/internal/stats"
)

// Replication summarizes one scalar metric across independent seeded runs:
// mean, population standard deviation, and the per-run values.
type Replication struct {
	Name   string
	Values []float64
	Mean   float64
	StdDev float64
}

// relativeSpread returns σ/μ, or 0 for a zero mean.
func (r Replication) RelativeSpread() float64 {
	if r.Mean == 0 {
		return 0
	}
	return r.StdDev / r.Mean
}

// ReplicateResult aggregates the standard summary metrics across seeds.
type ReplicateResult struct {
	Latency Replication
	Cost    Replication
	Backlog Replication
}

// Replicate runs the experiment built by build for every seed and returns
// cross-seed statistics of the summary metrics, quantifying how sensitive
// a reported number is to the random scenario draw. build must create a
// fresh controller and source per call (seeds are passed through).
func Replicate(seeds []int64, build func(seed int64) (Job, error)) (ReplicateResult, error) {
	if len(seeds) == 0 {
		return ReplicateResult{}, errors.New("sim: no seeds")
	}
	if build == nil {
		return ReplicateResult{}, errors.New("sim: nil builder")
	}
	jobs := make([]Job, 0, len(seeds))
	for _, seed := range seeds {
		job, err := build(seed)
		if err != nil {
			return ReplicateResult{}, fmt.Errorf("sim: building seed %d: %w", seed, err)
		}
		if job.Name == "" {
			job.Name = fmt.Sprintf("seed-%d", seed)
		}
		jobs = append(jobs, job)
	}
	results, err := Sweep(jobs, 0)
	if err != nil {
		return ReplicateResult{}, err
	}
	lat := make([]float64, len(results))
	cost := make([]float64, len(results))
	backlog := make([]float64, len(results))
	for i, r := range results {
		lat[i] = r.Metrics.AvgLatency()
		cost[i] = r.Metrics.AvgCost()
		backlog[i] = r.Metrics.AvgBacklog()
	}
	mk := func(name string, vals []float64) Replication {
		return Replication{
			Name:   name,
			Values: vals,
			Mean:   stats.Mean(vals),
			StdDev: stats.StdDev(vals),
		}
	}
	return ReplicateResult{
		Latency: mk("avg latency", lat),
		Cost:    mk("avg cost", cost),
		Backlog: mk("avg backlog", backlog),
	}, nil
}
