// Package sim drives slot-by-slot online simulations of EOTORA
// controllers and records the metric time series the paper's evaluation
// plots: overall latency, energy cost, virtual-queue backlog, electricity
// price, decision wall-clock time, and solver work.
package sim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"eotora/internal/policy"
	"eotora/internal/stats"
	"eotora/internal/trace"
)

// Config bounds a simulation run.
type Config struct {
	// Slots is the number of slots to simulate.
	Slots int
	// Warmup is the number of leading slots excluded from the summary
	// averages (the queue's convergence transient in Figure 7).
	Warmup int
	// RecordPerDevice additionally stores every device's latency each
	// slot (Metrics.PerDevice), enabling tail-latency analysis at the
	// price of O(slots × devices) memory.
	RecordPerDevice bool
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Slots <= 0 {
		return fmt.Errorf("sim: need at least one slot, got %d", c.Slots)
	}
	if c.Warmup < 0 || c.Warmup >= c.Slots {
		return fmt.Errorf("sim: warmup %d outside [0, %d)", c.Warmup, c.Slots)
	}
	return nil
}

// Metrics holds per-slot series from one run. All slices share the same
// length (the number of simulated slots).
type Metrics struct {
	// Policy identifies the decision policy that produced the run
	// ("bdma", "greedy-energy", ...; see internal/policy).
	Policy string
	// Solver identifies the policy's P2-A algorithm, or "" for baseline
	// policies that run no solver.
	Solver string
	// V is the controller's penalty weight.
	V float64
	// Budget is the system's per-slot cost budget C̄ in dollars.
	Budget float64
	// Warmup is the number of slots excluded from summary averages.
	Warmup int

	Latency          []float64       // T_t seconds
	CommLatency      []float64       // communication part of T_t
	ProcLatency      []float64       // processing part of T_t
	Fairness         []float64       // Jain index over per-device latencies
	EnergyCost       []float64       // C_t dollars
	Theta            []float64       // C_t − C̄
	Backlog          []float64       // Q(t+1)
	Price            []float64       // p_t $/MWh
	SolverIterations []int           // P2-A work per slot
	DecisionTime     []time.Duration // wall clock per slot
	Rung             []int           // fallback-ladder rung (0 = full solve)
	ActiveDevices    []int           // population size after the slot's churn
	ActiveServers    []int           // servers present after the slot's churn
	ChurnEvents      []int           // churn events applied this slot
	ShardGap         []float64       // sharded-vs-unsharded gap (NaN = slot not audited)

	// PerDevice[t][i] is device i's latency at slot t; non-nil only when
	// Config.RecordPerDevice was set.
	PerDevice [][]float64

	recordPerDevice bool
}

// Slots returns the number of recorded slots.
func (m *Metrics) Slots() int { return len(m.Latency) }

func (m *Metrics) steady(series []float64) []float64 {
	if m.Warmup >= len(series) {
		return nil
	}
	return series[m.Warmup:]
}

// AvgLatency returns the post-warmup time-average latency.
func (m *Metrics) AvgLatency() float64 { return stats.Mean(m.steady(m.Latency)) }

// AvgCost returns the post-warmup time-average energy cost.
func (m *Metrics) AvgCost() float64 { return stats.Mean(m.steady(m.EnergyCost)) }

// AvgBacklog returns the post-warmup time-average backlog.
func (m *Metrics) AvgBacklog() float64 { return stats.Mean(m.steady(m.Backlog)) }

// AvgCommLatency returns the post-warmup average communication latency.
func (m *Metrics) AvgCommLatency() float64 { return stats.Mean(m.steady(m.CommLatency)) }

// AvgProcLatency returns the post-warmup average processing latency.
func (m *Metrics) AvgProcLatency() float64 { return stats.Mean(m.steady(m.ProcLatency)) }

// AvgFairness returns the post-warmup average Jain fairness index of the
// per-device latencies.
func (m *Metrics) AvgFairness() float64 { return stats.Mean(m.steady(m.Fairness)) }

// AvgShardGap returns the mean sharded-vs-unsharded optimality gap over
// the audited slots (core.Controller.SetShardAudit), or NaN when no slot
// was audited.
func (m *Metrics) AvgShardGap() float64 {
	sum, n := 0.0, 0
	for _, g := range m.ShardGap {
		if !math.IsNaN(g) {
			sum += g
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// AuditedSlots returns how many recorded slots ran the shard audit.
func (m *Metrics) AuditedSlots() int {
	n := 0
	for _, g := range m.ShardGap {
		if !math.IsNaN(g) {
			n++
		}
	}
	return n
}

// AvgDecisionTime returns the mean per-slot decision wall time.
func (m *Metrics) AvgDecisionTime() time.Duration {
	if len(m.DecisionTime) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range m.DecisionTime {
		total += d
	}
	return total / time.Duration(len(m.DecisionTime))
}

// DegradedSlots returns how many recorded slots were decided below the
// full-solve rung (SlotResult.Degraded), the headline degradation rate of
// a deadline or fault study.
func (m *Metrics) DegradedSlots() int {
	n := 0
	for _, r := range m.Rung {
		if r > 0 {
			n++
		}
	}
	return n
}

// BudgetSatisfied reports whether the post-warmup average cost stays
// within (1+slack) of the budget.
func (m *Metrics) BudgetSatisfied(slack float64) bool {
	return m.AvgCost() <= m.Budget*(1+slack)
}

// WindowAvgLatency returns window means of the latency series (the 48-slot
// averages of Figure 9).
func (m *Metrics) WindowAvgLatency(window int) []float64 {
	return stats.WindowMeans(m.Latency, window)
}

// WriteCSV streams the per-slot series as CSV (the schema table in
// OPERATIONS.md §1 documents every column). The trailing policy column
// makes comparison runs self-describing when their CSVs are
// concatenated.
func (m *Metrics) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "slot,latency_s,cost_usd,theta,backlog,price_mwh,solver_iters,decision_us,degraded,rung,active_devices,active_servers,churn_events,policy\n"); err != nil {
		return err
	}
	for i := range m.Latency {
		degraded := 0
		if m.Rung[i] > 0 {
			degraded = 1
		}
		row := strconv.Itoa(i+1) + "," +
			strconv.FormatFloat(m.Latency[i], 'g', 10, 64) + "," +
			strconv.FormatFloat(m.EnergyCost[i], 'g', 10, 64) + "," +
			strconv.FormatFloat(m.Theta[i], 'g', 10, 64) + "," +
			strconv.FormatFloat(m.Backlog[i], 'g', 10, 64) + "," +
			strconv.FormatFloat(m.Price[i], 'g', 10, 64) + "," +
			strconv.Itoa(m.SolverIterations[i]) + "," +
			strconv.FormatInt(m.DecisionTime[i].Microseconds(), 10) + "," +
			strconv.Itoa(degraded) + "," +
			strconv.Itoa(m.Rung[i]) + "," +
			strconv.Itoa(m.ActiveDevices[i]) + "," +
			strconv.Itoa(m.ActiveServers[i]) + "," +
			strconv.Itoa(m.ChurnEvents[i]) + "," +
			m.Policy + "\n"
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// Run simulates the policy against the state source for cfg.Slots
// slots. Any policy.Policy drives — the flagship *core.Controller, the
// comparison baselines, or the auto-tuner. Steady-state slots of the
// controller are allocation-light: it reuses one P2A instance (the game
// arena is rebuilt in place each slot and only reweighted between BDMA
// rounds) and one solve engine, and the Lemma-1 accumulators come from a
// pooled scratch, so per-slot heap work is dominated by the recorded
// metrics, not the solve.
func Run(p policy.Policy, src trace.Source, cfg Config) (*Metrics, error) {
	if p == nil {
		return nil, errors.New("sim: nil policy")
	}
	if src == nil {
		return nil, errors.New("sim: nil state source")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := newMetrics(p, cfg)
	for s := 0; s < cfg.Slots; s++ {
		if err := m.step(p, src, s); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func newMetrics(p policy.Policy, cfg Config) *Metrics {
	solver := ""
	if sn, ok := p.(policy.SolverNamer); ok {
		solver = sn.SolverName()
	}
	return &Metrics{
		Policy:           p.Name(),
		Solver:           solver,
		V:                p.V(),
		Budget:           p.System().Budget.Dollars(),
		Warmup:           cfg.Warmup,
		Latency:          make([]float64, 0, cfg.Slots),
		CommLatency:      make([]float64, 0, cfg.Slots),
		ProcLatency:      make([]float64, 0, cfg.Slots),
		Fairness:         make([]float64, 0, cfg.Slots),
		EnergyCost:       make([]float64, 0, cfg.Slots),
		Theta:            make([]float64, 0, cfg.Slots),
		Backlog:          make([]float64, 0, cfg.Slots),
		Price:            make([]float64, 0, cfg.Slots),
		SolverIterations: make([]int, 0, cfg.Slots),
		DecisionTime:     make([]time.Duration, 0, cfg.Slots),
		Rung:             make([]int, 0, cfg.Slots),
		ActiveDevices:    make([]int, 0, cfg.Slots),
		ActiveServers:    make([]int, 0, cfg.Slots),
		ChurnEvents:      make([]int, 0, cfg.Slots),
		ShardGap:         make([]float64, 0, cfg.Slots),
		recordPerDevice:  cfg.RecordPerDevice,
	}
}

// step advances one slot and records its metrics. The slot index passed
// to Decide continues the policy's own numbering, so a policy restored
// from a checkpoint resumes mid-sequence without renumbering.
func (m *Metrics) step(p policy.Policy, src trace.Source, s int) error {
	st := src.Next()
	res, err := p.Decide(p.Slot()+1, st)
	if err != nil {
		return fmt.Errorf("sim: slot %d: %w", s+1, err)
	}
	m.Latency = append(m.Latency, res.Latency.Value())
	comm, proc := res.Split()
	m.CommLatency = append(m.CommLatency, comm.Value())
	m.ProcLatency = append(m.ProcLatency, proc.Value())
	m.Fairness = append(m.Fairness, res.Fairness())
	m.EnergyCost = append(m.EnergyCost, res.EnergyCost.Dollars())
	m.Theta = append(m.Theta, res.Theta)
	m.Backlog = append(m.Backlog, res.Backlog)
	m.Price = append(m.Price, st.Price.PerMWh())
	m.SolverIterations = append(m.SolverIterations, res.SolverIterations)
	m.DecisionTime = append(m.DecisionTime, res.Elapsed)
	m.Rung = append(m.Rung, res.Rung)
	_, _, servers, devices := p.System().Net.Counts()
	m.ActiveDevices = append(m.ActiveDevices, st.ActiveDevices(devices))
	m.ActiveServers = append(m.ActiveServers, st.ActiveServers(servers))
	m.ChurnEvents = append(m.ChurnEvents, len(st.Churn))
	gap := math.NaN()
	if res.ShardAudited {
		gap = res.ShardGap
	}
	m.ShardGap = append(m.ShardGap, gap)
	if m.recordPerDevice {
		row := make([]float64, len(res.PerDevice))
		for i, lb := range res.PerDevice {
			row[i] = lb.Total().Value()
		}
		m.PerDevice = append(m.PerDevice, row)
	}
	return nil
}

// DeviceLatencyQuantile returns the q-quantile of all recorded per-device
// latencies after warmup. It returns NaN unless RecordPerDevice was set.
func (m *Metrics) DeviceLatencyQuantile(q float64) float64 {
	if len(m.PerDevice) == 0 {
		return math.NaN()
	}
	var all []float64
	for t := m.Warmup; t < len(m.PerDevice); t++ {
		all = append(all, m.PerDevice[t]...)
	}
	return stats.Quantile(all, q)
}

// RunAll simulates several policies over the *same* recorded state
// sequence, the apples-to-apples setup of Figure 9 and the policy
// comparison figure. The source is drawn once and replayed for every
// policy.
func RunAll(policies []policy.Policy, src trace.Source, cfg Config) ([]*Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	states := trace.Record(src, cfg.Slots)
	out := make([]*Metrics, 0, len(policies))
	for i, p := range policies {
		replay, err := trace.NewReplay(states, src.Period())
		if err != nil {
			return nil, err
		}
		m, err := Run(p, replay, cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: policy %d (%s): %w", i, p.Name(), err)
		}
		out = append(out, m)
	}
	return out, nil
}

// Summary writes a human-readable run report: configuration, averages,
// latency split, fairness, and budget verdict.
func (m *Metrics) Summary(w io.Writer) error {
	var b strings.Builder
	if m.Solver != "" {
		fmt.Fprintf(&b, "run: policy %s (%s-based DPP), V=%g, %d slots (%d warmup)\n", m.Policy, m.Solver, m.V, m.Slots(), m.Warmup)
	} else {
		fmt.Fprintf(&b, "run: policy %s, V=%g, %d slots (%d warmup)\n", m.Policy, m.V, m.Slots(), m.Warmup)
	}
	fmt.Fprintf(&b, "  avg latency:        %.4f s/slot", m.AvgLatency())
	if comm, proc := m.AvgCommLatency(), m.AvgProcLatency(); !math.IsNaN(comm) && !math.IsNaN(proc) {
		fmt.Fprintf(&b, "  (comm %.4f + proc %.4f)", comm, proc)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  avg energy cost:    $%.4f/slot (budget $%.4f, ratio %.3f)\n",
		m.AvgCost(), m.Budget, m.AvgCost()/m.Budget)
	fmt.Fprintf(&b, "  avg queue backlog:  %.3f\n", m.AvgBacklog())
	if f := m.AvgFairness(); !math.IsNaN(f) {
		fmt.Fprintf(&b, "  avg Jain fairness:  %.3f\n", f)
	}
	fmt.Fprintf(&b, "  avg decision time:  %v/slot\n", m.AvgDecisionTime())
	if a := m.AuditedSlots(); a > 0 {
		fmt.Fprintf(&b, "  avg shard gap:      %+.4f%% over %d audited slots (DESIGN.md §13)\n",
			m.AvgShardGap()*100, a)
	}
	if d := m.DegradedSlots(); d > 0 {
		fmt.Fprintf(&b, "  degraded slots:     %d of %d (fallback ladder; see OPERATIONS.md)\n", d, m.Slots())
	}
	if m.BudgetSatisfied(0.02) {
		b.WriteString("  budget:             satisfied ✓\n")
	} else {
		b.WriteString("  budget:             NOT satisfied within 2% (lengthen the horizon or lower V)\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RunContext is Run with cooperative cancellation: it checks ctx between
// slots and returns ctx.Err() (with partial metrics) once canceled.
// Long paper-scale runs should prefer it.
func RunContext(ctx context.Context, p policy.Policy, src trace.Source, cfg Config) (*Metrics, error) {
	if p == nil {
		return nil, errors.New("sim: nil policy")
	}
	if src == nil {
		return nil, errors.New("sim: nil state source")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := newMetrics(p, cfg)
	for s := 0; s < cfg.Slots; s++ {
		if err := ctx.Err(); err != nil {
			return m, fmt.Errorf("sim: canceled at slot %d: %w", s+1, err)
		}
		if err := m.step(p, src, s); err != nil {
			return nil, err
		}
	}
	return m, nil
}
