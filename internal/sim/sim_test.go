package sim

import (
	"math"
	"strings"
	"testing"

	"eotora/internal/core"
	"eotora/internal/policy"
	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/trace"
)

func buildFixture(t testing.TB, devices int, seed int64) (*core.System, *trace.Generator) {
	t.Helper()
	src := rng.New(seed)
	spec := topology.DefaultSpec(devices)
	spec.Stations = 3
	spec.UmbrellaStations = 1
	spec.ServersPerRoom = 2
	net, err := topology.Generate(spec, src.Derive("net"))
	if err != nil {
		t.Fatal(err)
	}
	models := core.DefaultEnergyModels(len(net.Servers), src.Derive("energy"))
	sys, err := core.NewSystem(net, models, 3600, 1)
	if err != nil {
		t.Fatal(err)
	}
	low := sys.EnergyCost(sys.LowestFrequencies(), 50)
	high := sys.EnergyCost(sys.HighestFrequencies(), 50)
	sys.Budget = (low + high) / 2
	gen, err := trace.NewGenerator(net, trace.DefaultGeneratorConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return sys, gen
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Slots: 10, Warmup: 2}, true},
		{"zero slots", Config{Slots: 0}, false},
		{"negative warmup", Config{Slots: 10, Warmup: -1}, false},
		{"warmup swallows run", Config{Slots: 10, Warmup: 10}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, ok = %v", err, tt.ok)
			}
		})
	}
}

func TestRunRecordsAllSeries(t *testing.T) {
	sys, gen := buildFixture(t, 10, 1)
	ctrl, err := core.NewBDMAController(sys, 50, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(ctrl, gen, Config{Slots: 30, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots() != 30 {
		t.Fatalf("Slots = %d, want 30", m.Slots())
	}
	if m.Solver != "CGBA" || m.V != 50 {
		t.Errorf("metadata = %q/%v", m.Solver, m.V)
	}
	for i := 0; i < 30; i++ {
		if m.Latency[i] <= 0 || m.EnergyCost[i] <= 0 || m.Price[i] <= 0 {
			t.Fatalf("non-positive metric at slot %d", i)
		}
		if m.Backlog[i] < 0 {
			t.Fatalf("negative backlog at slot %d", i)
		}
	}
	if m.AvgLatency() <= 0 || m.AvgCost() <= 0 || m.AvgBacklog() < 0 {
		t.Error("summary averages inconsistent")
	}
	if m.AvgDecisionTime() <= 0 {
		t.Error("no decision time recorded")
	}
}

func TestRunValidation(t *testing.T) {
	sys, gen := buildFixture(t, 5, 2)
	ctrl, err := core.NewBDMAController(sys, 50, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nil, gen, Config{Slots: 5}); err == nil {
		t.Error("nil controller accepted")
	}
	if _, err := Run(ctrl, nil, Config{Slots: 5}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Run(ctrl, gen, Config{Slots: 0}); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestWarmupExcludedFromAverages(t *testing.T) {
	m := &Metrics{
		Warmup:     2,
		Latency:    []float64{100, 100, 1, 1},
		EnergyCost: []float64{100, 100, 2, 2},
		Backlog:    []float64{100, 100, 3, 3},
	}
	if got := m.AvgLatency(); got != 1 {
		t.Errorf("AvgLatency = %v, want 1", got)
	}
	if got := m.AvgCost(); got != 2 {
		t.Errorf("AvgCost = %v, want 2", got)
	}
	if got := m.AvgBacklog(); got != 3 {
		t.Errorf("AvgBacklog = %v, want 3", got)
	}
}

func TestBudgetSatisfied(t *testing.T) {
	m := &Metrics{Budget: 10, EnergyCost: []float64{9, 11}}
	if !m.BudgetSatisfied(0.01) {
		t.Error("average cost 10 within budget 10 rejected")
	}
	m2 := &Metrics{Budget: 5, EnergyCost: []float64{9, 11}}
	if m2.BudgetSatisfied(0.1) {
		t.Error("average cost 10 accepted for budget 5")
	}
}

func TestWindowAvgLatency(t *testing.T) {
	m := &Metrics{Latency: []float64{1, 3, 5, 7}}
	got := m.WindowAvgLatency(2)
	if len(got) != 2 || got[0] != 2 || got[1] != 6 {
		t.Errorf("WindowAvgLatency = %v, want [2 6]", got)
	}
}

func TestWriteCSV(t *testing.T) {
	sys, gen := buildFixture(t, 5, 3)
	ctrl, err := core.NewBDMAController(sys, 50, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(ctrl, gen, Config{Slots: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "slot,latency_s") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestRunAllSharesTrace(t *testing.T) {
	sys, gen := buildFixture(t, 8, 4)
	bdma, err := core.NewBDMAController(sys, 50, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ropt, err := core.NewROPTController(sys, 50, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunAll([]policy.Policy{bdma, ropt}, gen, Config{Slots: 20, Warmup: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("got %d metric sets", len(ms))
	}
	// Same trace → identical price series for both controllers.
	for i := range ms[0].Price {
		if ms[0].Price[i] != ms[1].Price[i] {
			t.Fatalf("price series diverged at slot %d — trace not shared", i)
		}
	}
	// CGBA should not lose to random selection on average latency.
	if ms[0].AvgLatency() > ms[1].AvgLatency()*1.05 {
		t.Errorf("BDMA latency %v above ROPT %v", ms[0].AvgLatency(), ms[1].AvgLatency())
	}
}

func TestRunAllPropagatesBudgetMeta(t *testing.T) {
	sys, gen := buildFixture(t, 5, 5)
	ctrl, err := core.NewBDMAController(sys, 25, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := RunAll([]policy.Policy{ctrl}, gen, Config{Slots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms[0].Budget-sys.Budget.Dollars()) > 1e-12 {
		t.Errorf("budget metadata %v, want %v", ms[0].Budget, sys.Budget.Dollars())
	}
	if ms[0].V != 25 {
		t.Errorf("V metadata %v, want 25", ms[0].V)
	}
}

func TestMetricsEmptyDecisionTime(t *testing.T) {
	var m Metrics
	if m.AvgDecisionTime() != 0 {
		t.Error("empty decision time average should be 0")
	}
}

// Regression guard: the simulated system's latency and cost magnitudes
// stay in physically plausible ranges for the paper's parameterization.
func TestPhysicalScales(t *testing.T) {
	sys, gen := buildFixture(t, 20, 6)
	ctrl, err := core.NewBDMAController(sys, 50, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(ctrl, gen, Config{Slots: 24})
	if err != nil {
		t.Fatal(err)
	}
	if avg := m.AvgLatency(); avg < 1e-4 || avg > 1e3 {
		t.Errorf("average total latency %v s implausible", avg)
	}
	if avg := m.AvgCost(); avg < 1e-4 || avg > 1e3 {
		t.Errorf("average slot cost $%v implausible", avg)
	}
}

func TestLatencySplitAndFairnessSeries(t *testing.T) {
	sys, gen := buildFixture(t, 10, 7)
	ctrl, err := core.NewBDMAController(sys, 50, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(ctrl, gen, Config{Slots: 10, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.CommLatency) != 10 || len(m.ProcLatency) != 10 || len(m.Fairness) != 10 {
		t.Fatal("split/fairness series not recorded")
	}
	for i := range m.Latency {
		sum := m.CommLatency[i] + m.ProcLatency[i]
		if math.Abs(sum-m.Latency[i]) > 1e-9*m.Latency[i] {
			t.Fatalf("slot %d: comm %v + proc %v ≠ total %v", i, m.CommLatency[i], m.ProcLatency[i], m.Latency[i])
		}
		if m.Fairness[i] <= 0 || m.Fairness[i] > 1+1e-9 {
			t.Fatalf("slot %d: fairness %v", i, m.Fairness[i])
		}
	}
	if m.AvgCommLatency() <= 0 || m.AvgProcLatency() <= 0 {
		t.Error("split averages not positive")
	}
	if f := m.AvgFairness(); f <= 0 || f > 1+1e-9 {
		t.Errorf("AvgFairness = %v", f)
	}
}

func TestSummary(t *testing.T) {
	sys, gen := buildFixture(t, 8, 8)
	ctrl, err := core.NewBDMAController(sys, 50, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(ctrl, gen, Config{Slots: 10, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.Summary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"CGBA-based DPP", "avg latency", "avg energy cost", "Jain fairness", "budget:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q in:\n%s", want, out)
		}
	}
}

func TestRecordPerDevice(t *testing.T) {
	sys, gen := buildFixture(t, 7, 12)
	ctrl, err := core.NewBDMAController(sys, 50, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(ctrl, gen, Config{Slots: 10, Warmup: 2, RecordPerDevice: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerDevice) != 10 {
		t.Fatalf("PerDevice rows = %d", len(m.PerDevice))
	}
	for t2, row := range m.PerDevice {
		if len(row) != 7 {
			t.Fatalf("slot %d has %d device entries", t2, len(row))
		}
		for i, v := range row {
			if v <= 0 || math.IsInf(v, 0) {
				t.Fatalf("device %d latency %v", i, v)
			}
		}
	}
	p50 := m.DeviceLatencyQuantile(0.5)
	p99 := m.DeviceLatencyQuantile(0.99)
	if math.IsNaN(p50) || p99 < p50 {
		t.Errorf("quantiles p50=%v p99=%v", p50, p99)
	}
	// Without recording: NaN.
	m2, err := Run(ctrl, gen, Config{Slots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(m2.DeviceLatencyQuantile(0.5)) {
		t.Error("quantile without recording should be NaN")
	}
}

// TestWriteCSVPolicyColumn: every per-slot row carries the policy name
// in the trailing column (OPERATIONS.md §1 schema), for both a baseline
// policy and the flagship controller.
func TestWriteCSVPolicyColumn(t *testing.T) {
	sys, gen := buildFixture(t, 5, 3)
	pol, err := policy.New(policy.GreedyEnergy, sys, policy.Config{V: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(pol, gen, Config{Slots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy != policy.GreedyEnergy || m.Solver != "" {
		t.Fatalf("metadata policy=%q solver=%q", m.Policy, m.Solver)
	}
	var sb strings.Builder
	if err := m.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if !strings.HasSuffix(lines[0], ",policy") {
		t.Errorf("header %q does not end with the policy column", lines[0])
	}
	for _, row := range lines[1:] {
		if !strings.HasSuffix(row, ","+policy.GreedyEnergy) {
			t.Errorf("row %q does not carry the policy name", row)
		}
	}
	var sum strings.Builder
	if err := m.Summary(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "policy "+policy.GreedyEnergy) {
		t.Errorf("summary %q does not name the policy", sum.String())
	}

	ctrl, err := core.NewBDMAController(sys, 50, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, gen2 := buildFixture(t, 5, 3)
	m2, err := Run(ctrl, gen2, Config{Slots: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Policy != policy.BDMA || m2.Solver != "CGBA" {
		t.Fatalf("controller metadata policy=%q solver=%q", m2.Policy, m2.Solver)
	}
	var sb2 strings.Builder
	if err := m2.WriteCSV(&sb2); err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(sb2.String()), "\n")
	if !strings.HasSuffix(rows[1], ","+policy.BDMA) {
		t.Errorf("controller row %q does not carry the policy name", rows[1])
	}
	var sum2 strings.Builder
	if err := m2.Summary(&sum2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum2.String(), "policy bdma (CGBA-based DPP)") {
		t.Errorf("controller summary %q does not name policy and solver", sum2.String())
	}
}
