package sim

import (
	"math"
	"os"
	"strconv"
	"testing"
	"time"

	"eotora/internal/core"
	"eotora/internal/faults"
	"eotora/internal/trace"
)

// soakSlots returns the fault-soak length: a quick default for regular CI,
// 10k slots when FAULT_SOAK_SLOTS says so (the nightly configuration).
func soakSlots(t *testing.T) int {
	if s := os.Getenv("FAULT_SOAK_SLOTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("FAULT_SOAK_SLOTS=%q: want a positive integer", s)
		}
		return n
	}
	if testing.Short() {
		return 128
	}
	return 512
}

// TestFaultSoak drives the full robustness stack — seeded fault injector,
// repairing sanitizer, slot deadline with the fallback ladder — for many
// slots and requires the controller to survive: a feasible decision every
// slot, Q(t) finite throughout, and the decision stream still moving
// (degraded slots happen but do not take over permanently once faults
// allow recovery). This is the nightly soak leg; FAULT_SOAK_SLOTS=10000
// selects the long run, and FAULT_SOAK_CHURN=1 superimposes population
// churn (joins, leaves, handovers, server add/remove) under the faults.
func TestFaultSoak(t *testing.T) {
	slots := soakSlots(t)
	sys, gen := buildFixture(t, 24, 77)
	ctrl, err := core.NewBDMAController(sys, 100, 3, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	// A timed budget (generous, so healthy slots complete) plus injected
	// hour-long stalls forces real deadline misses without sleeping.
	ctrl.SetSlotDeadline(5*time.Second, 0)

	// Churn sits between the raw source and the fault injector, exactly
	// as Job wires it: faults corrupt the churned states.
	var src trace.Source = gen
	if os.Getenv("FAULT_SOAK_CHURN") != "" {
		src, err = trace.NewChurnSchedule(trace.DefaultChurnConfig(31), sys.Net, gen)
		if err != nil {
			t.Fatal(err)
		}
	}

	cfg := faults.DefaultConfig(123)
	inj, err := faults.NewInjector(cfg, len(sys.Net.Servers), src)
	if err != nil {
		t.Fatal(err)
	}
	inj.Attach(ctrl)
	san := trace.NewSanitizer(inj)

	degraded := 0
	for slot := 0; slot < slots; slot++ {
		st := san.Next()
		res, err := ctrl.Step(st)
		if err != nil {
			t.Fatalf("slot %d: %v (after %d injections, %d repairs)",
				slot, err, inj.Injections(), san.Repairs())
		}
		if q := res.Backlog; math.IsNaN(q) || math.IsInf(q, 0) || q < 0 {
			t.Fatalf("slot %d: backlog Q = %v", slot, q)
		}
		if l := res.Latency.Value(); math.IsNaN(l) || math.IsInf(l, 0) || l < 0 {
			t.Fatalf("slot %d: latency %v", slot, l)
		}
		if err := sys.Validate(res.Decision.Selection, st); err != nil {
			t.Fatalf("slot %d: infeasible decision at rung %d: %v", slot, res.Rung, err)
		}
		if res.Degraded {
			degraded++
		}
	}
	if inj.Injections() == 0 {
		t.Fatal("soak injected no faults; profile or seeding is broken")
	}
	if san.Repairs() == 0 {
		t.Fatal("soak repaired nothing; corruption is not reaching the sanitizer")
	}
	if degraded == 0 {
		t.Fatal("soak produced no degraded slots; stalls are not reaching the deadline")
	}
	if degraded == slots {
		t.Fatalf("every one of %d slots degraded; the controller never recovered", slots)
	}
	t.Logf("soak: %d slots, %d injections, %d repairs, %d degraded slots",
		slots, inj.Injections(), san.Repairs(), degraded)
}
