package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"eotora/internal/core"
	"eotora/internal/faults"
	"eotora/internal/obs"
	"eotora/internal/par"
	"eotora/internal/policy"
	"eotora/internal/trace"
)

// Job is one point of a parameter sweep: factories produce the policy
// and state source when (and on whichever goroutine) the job runs, so
// jobs never share mutable state. Exactly one of Policy and Controller
// must be set; mixing job kinds within one Sweep is fine, so a single
// sweep can race the BDMA controller against the baseline policies over
// the same recorded trace and emit side-by-side metrics.
type Job struct {
	// Name labels the job in results and errors.
	Name string
	// Policy builds the job's decision policy (internal/policy).
	Policy func() (policy.Policy, error)
	// Controller builds the job's controller — the pre-policy-seam
	// shorthand for bdma jobs, equivalent to a Policy factory returning
	// the same *core.Controller.
	Controller func() (*core.Controller, error)
	// Source builds the job's state source.
	Source func() (trace.Source, error)
	// Config bounds the job's run.
	Config Config
	// Obs, when non-nil, is the job's observability registry. Give each
	// job its own registry and attach it to the job's policy inside the
	// factory (policy.Policy.SetObs); the sweep carries it into the
	// JobResult, and MergedObs folds the per-worker registries into one
	// fleet view after the sweep.
	Obs *obs.Registry
	// Faults, when non-nil, wraps the job's source in a seeded fault
	// injector (and, when Faults.Sanitize is set, a repairing
	// trace.Sanitizer on top) and attaches the injector's stall channel to
	// the policy when it accepts stalls (faults.Staller); baselines
	// without a timed solve simply skip the stall leg while still seeing
	// the corrupted traces. See the faults package for the fault model.
	Faults *faults.Config
	// Churn, when non-nil, wraps the job's source in a deterministic
	// population process (trace.ChurnSchedule): device joins and leaves,
	// forced handovers, and server add/remove events. The churn layer sits
	// between the raw source and the fault injector, so faults act on the
	// churned states.
	Churn *trace.ChurnConfig
}

// JobResult pairs a job's name with its metrics and, when the job was
// instrumented, its observability registry.
type JobResult struct {
	Name    string
	Metrics *Metrics
	Obs     *obs.Registry
}

// Sweep runs the jobs concurrently on up to workers goroutines (0 selects
// GOMAXPROCS) and returns results in job order. The first error cancels
// the remaining jobs; already-running jobs finish.
//
// The simulator itself is single-threaded per run — the determinism
// guarantees hold per job — but independent sweep points (the V values of
// Figure 8, the budgets of Figure 9) parallelize perfectly. Leftover
// cores (GOMAXPROCS beyond the worker count) are handed to each worker as
// an intra-slot pool (core.Controller.SetPool), so a 2-point sweep on an
// 8-core box still uses all 8 cores without oversubscribing.
func Sweep(jobs []Job, workers int) ([]JobResult, error) {
	if len(jobs) == 0 {
		return nil, errors.New("sim: empty sweep")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]JobResult, len(jobs))
	jobCh := make(chan int)
	errCh := make(chan error, len(jobs))

	// Split the machine between sweep-level and slot-level parallelism:
	// workers × slotWorkers never exceeds GOMAXPROCS. The per-worker pools
	// don't change any job's decisions — pooled slot solves are
	// bit-identical to serial (core.Controller.SetPool).
	slotWorkers := runtime.GOMAXPROCS(0) / workers

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var pool *par.Pool
			if slotWorkers > 1 {
				pool = par.New(slotWorkers)
				defer pool.Close()
			}
			for idx := range jobCh {
				if err := runJob(jobs[idx], &results[idx], pool); err != nil {
					errCh <- fmt.Errorf("sim: job %q: %w", jobs[idx].Name, err)
					return
				}
			}
		}()
	}

	// Feed jobs until a worker reports an error (workers that returned
	// stop draining, so stop feeding once errCh has something).
	fed := 0
feed:
	for ; fed < len(jobs); fed++ {
		select {
		case jobCh <- fed:
		case err := <-errCh:
			errCh <- err // put it back for the final collection
			break feed
		}
	}
	close(jobCh)
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	return results, nil
}

func runJob(job Job, out *JobResult, pool *par.Pool) error {
	if job.Source == nil {
		return errors.New("nil source factory")
	}
	var pol policy.Policy
	switch {
	case job.Policy != nil && job.Controller != nil:
		return errors.New("both Policy and Controller factories set")
	case job.Policy != nil:
		p, err := job.Policy()
		if err != nil {
			return err
		}
		if p == nil {
			return errors.New("policy factory returned nil")
		}
		pol = p
	case job.Controller != nil:
		ctrl, err := job.Controller()
		if err != nil {
			return err
		}
		pol = ctrl
	default:
		return errors.New("nil factory")
	}
	if pool != nil {
		if ps, ok := pol.(policy.PoolSetter); ok {
			ps.SetPool(pool)
		}
	}
	src, err := job.Source()
	if err != nil {
		return err
	}
	if job.Churn != nil {
		src, err = trace.NewChurnSchedule(*job.Churn, pol.System().Net, src)
		if err != nil {
			return err
		}
	}
	if job.Faults != nil {
		inj, err := faults.NewInjector(*job.Faults, len(pol.System().Net.Servers), src)
		if err != nil {
			return err
		}
		if st, ok := pol.(faults.Staller); ok {
			inj.Attach(st)
		}
		src = inj
		if job.Faults.Sanitize {
			src = trace.NewSanitizer(src)
		}
	}
	m, err := Run(pol, src, job.Config)
	if err != nil {
		return err
	}
	out.Name = job.Name
	out.Metrics = m
	out.Obs = job.Obs
	return nil
}

// MergedObs merges the per-job observability registries of a sweep into
// one new registry: counters and histograms add, gauges keep the maximum
// (the peak across workers — e.g. the largest backlog any sweep point
// reached). Jobs without a registry are skipped; the result is empty when
// no job was instrumented.
func MergedObs(results []JobResult) *obs.Registry {
	merged := obs.New()
	for _, r := range results {
		merged.Merge(r.Obs)
	}
	return merged
}
