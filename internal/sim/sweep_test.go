package sim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"eotora/internal/core"
	"eotora/internal/obs"
	"eotora/internal/policy"
	"eotora/internal/trace"
)

func sweepJobs(t *testing.T, vs []float64) []Job {
	t.Helper()
	jobs := make([]Job, 0, len(vs))
	for _, v := range vs {
		v := v
		jobs = append(jobs, Job{
			Name: fmt.Sprintf("V=%g", v),
			Controller: func() (*core.Controller, error) {
				sys, _ := buildFixture(t, 6, 9)
				return core.NewBDMAController(sys, v, 1, 0, 1)
			},
			Source: func() (trace.Source, error) {
				_, gen := buildFixture(t, 6, 9)
				return gen, nil
			},
			Config: Config{Slots: 12, Warmup: 2},
		})
	}
	return jobs
}

func TestSweepRunsAllJobs(t *testing.T) {
	vs := []float64{10, 50, 100, 200}
	results, err := Sweep(sweepJobs(t, vs), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(vs) {
		t.Fatalf("results = %d, want %d", len(results), len(vs))
	}
	for i, r := range results {
		if r.Name != fmt.Sprintf("V=%g", vs[i]) {
			t.Errorf("result %d name = %q — order not preserved", i, r.Name)
		}
		if r.Metrics == nil || r.Metrics.Slots() != 12 {
			t.Errorf("result %d metrics missing", i)
		}
		if r.Metrics.V != vs[i] {
			t.Errorf("result %d ran V=%v, want %v", i, r.Metrics.V, vs[i])
		}
	}
}

func TestSweepMatchesSequential(t *testing.T) {
	// The same jobs run with 1 worker and 4 workers must agree exactly
	// (determinism is per job).
	seq, err := Sweep(sweepJobs(t, []float64{10, 100}), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Sweep(sweepJobs(t, []float64{10, 100}), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].Metrics.AvgLatency() != par[i].Metrics.AvgLatency() {
			t.Errorf("job %d: sequential %v ≠ parallel %v", i,
				seq[i].Metrics.AvgLatency(), par[i].Metrics.AvgLatency())
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	jobs := sweepJobs(t, []float64{10, 50, 100})
	jobs[1].Controller = func() (*core.Controller, error) { return nil, boom }
	_, err := Sweep(jobs, 2)
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

// TestSweepFirstErrorCancelsRemaining pins the cancellation contract with
// a single worker, where scheduling is fully deterministic: job 0
// completes, job 1 fails, and job 2 — still unfed when the only worker
// died — is never started. The completed job's registry survives and
// still merges.
func TestSweepFirstErrorCancelsRemaining(t *testing.T) {
	boom := errors.New("boom")
	jobs := sweepJobs(t, []float64{10, 50, 100})

	reg0 := obs.New()
	inner := jobs[0].Controller
	jobs[0].Obs = reg0
	jobs[0].Controller = func() (*core.Controller, error) {
		ctrl, err := inner()
		if err != nil {
			return nil, err
		}
		ctrl.SetObs(reg0)
		return ctrl, nil
	}
	jobs[1].Controller = func() (*core.Controller, error) { return nil, boom }
	var ranLast atomic.Bool
	inner2 := jobs[2].Controller
	jobs[2].Controller = func() (*core.Controller, error) {
		ranLast.Store(true)
		return inner2()
	}

	_, err := Sweep(jobs, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if ranLast.Load() {
		t.Error("job after the failure still ran — cancellation broken")
	}
	if got := reg0.Counter(core.MetricSlots).Value(); got != 12 {
		t.Errorf("completed job recorded %d slots, want 12", got)
	}
	merged := obs.New()
	merged.Merge(reg0)
	if got := merged.Counter(core.MetricSlots).Value(); got != 12 {
		t.Errorf("merged registry lost the completed job: %d slots", got)
	}
}

// TestSweepInFlightJobFinishes forces the failure to land while another
// job is mid-run: job 0 blocks inside its Source factory until job 1 has
// failed, then must still run to completion (full slot count in its
// registry) before Sweep returns the error.
func TestSweepInFlightJobFinishes(t *testing.T) {
	boom := errors.New("boom")
	jobs := sweepJobs(t, []float64{10, 50})

	started0 := make(chan struct{})
	release0 := make(chan struct{})
	reg0 := obs.New()
	innerCtrl := jobs[0].Controller
	jobs[0].Obs = reg0
	jobs[0].Controller = func() (*core.Controller, error) {
		ctrl, err := innerCtrl()
		if err != nil {
			return nil, err
		}
		ctrl.SetObs(reg0)
		return ctrl, nil
	}
	innerSrc := jobs[0].Source
	jobs[0].Source = func() (trace.Source, error) {
		close(started0)
		<-release0
		return innerSrc()
	}
	jobs[1].Controller = func() (*core.Controller, error) {
		<-started0       // wait until job 0 is provably in flight
		close(release0)  // let it proceed...
		return nil, boom // ...and fail while it runs
	}

	_, err := Sweep(jobs, 2)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if got := reg0.Counter(core.MetricSlots).Value(); got != 12 {
		t.Errorf("in-flight job recorded %d slots, want 12 — it was cut short", got)
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Sweep(nil, 2); err == nil {
		t.Error("empty sweep accepted")
	}
	jobs := []Job{{Name: "nil factories"}}
	if _, err := Sweep(jobs, 1); err == nil {
		t.Error("nil factories accepted")
	}
}

func TestSweepDefaultWorkers(t *testing.T) {
	// workers = 0 selects GOMAXPROCS; must still complete.
	results, err := Sweep(sweepJobs(t, []float64{25}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatal("missing result")
	}
}

func TestRunContextCancellation(t *testing.T) {
	sys, gen := buildFixture(t, 6, 10)
	ctrl, err := core.NewBDMAController(sys, 50, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the first slot
	m, err := RunContext(ctx, ctrl, gen, Config{Slots: 100})
	if err == nil {
		t.Fatal("canceled run succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if m == nil || m.Slots() != 0 {
		t.Errorf("partial metrics = %v", m)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	sysA, genA := buildFixture(t, 6, 11)
	sysB, genB := buildFixture(t, 6, 11)
	a, err := core.NewBDMAController(sysA, 50, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewBDMAController(sysB, 50, 1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := Run(a, genA, Config{Slots: 10})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := RunContext(context.Background(), b, genB, Config{Slots: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.Latency {
		if m1.Latency[i] != m2.Latency[i] {
			t.Fatalf("RunContext diverged at slot %d", i)
		}
	}
}

func TestReplicate(t *testing.T) {
	build := func(seed int64) (Job, error) {
		return Job{
			Controller: func() (*core.Controller, error) {
				sys, _ := buildFixture(t, 6, seed)
				return core.NewBDMAController(sys, 50, 1, 0, seed)
			},
			Source: func() (trace.Source, error) {
				_, gen := buildFixture(t, 6, seed)
				return gen, nil
			},
			Config: Config{Slots: 12, Warmup: 2},
		}, nil
	}
	res, err := Replicate([]int64{1, 2, 3}, build)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latency.Values) != 3 {
		t.Fatalf("values = %d", len(res.Latency.Values))
	}
	if res.Latency.Mean <= 0 || res.Cost.Mean <= 0 {
		t.Errorf("means = %v/%v", res.Latency.Mean, res.Cost.Mean)
	}
	// Different seeds give different scenarios → non-zero spread.
	if res.Latency.StdDev == 0 {
		t.Error("zero latency spread across different seeds")
	}
	if res.Latency.RelativeSpread() <= 0 {
		t.Error("zero relative spread")
	}
	// Errors propagate.
	if _, err := Replicate(nil, build); err == nil {
		t.Error("empty seeds accepted")
	}
	if _, err := Replicate([]int64{1}, nil); err == nil {
		t.Error("nil builder accepted")
	}
	boom := errors.New("nope")
	if _, err := Replicate([]int64{1}, func(int64) (Job, error) { return Job{}, boom }); !errors.Is(err, boom) {
		t.Errorf("builder error not propagated: %v", err)
	}
}

func TestSweepMergedObs(t *testing.T) {
	vs := []float64{10, 100, 200}
	jobs := sweepJobs(t, vs)
	for i := range jobs {
		reg := obs.New()
		inner := jobs[i].Controller
		jobs[i].Obs = reg
		jobs[i].Controller = func() (*core.Controller, error) {
			ctrl, err := inner()
			if err != nil {
				return nil, err
			}
			ctrl.SetObs(reg)
			return ctrl, nil
		}
	}
	// Leave one job uninstrumented: MergedObs must skip it gracefully.
	jobs[2].Obs = nil

	results, err := Sweep(jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if results[i].Obs == nil {
			t.Fatalf("result %d lost its registry", i)
		}
		if got := results[i].Obs.Counter(core.MetricSlots).Value(); got != 12 {
			t.Errorf("job %d recorded %d slots, want 12", i, got)
		}
	}
	if results[2].Obs != nil {
		t.Error("uninstrumented job gained a registry")
	}

	merged := MergedObs(results)
	if got := merged.Counter(core.MetricSlots).Value(); got != 24 {
		t.Errorf("merged slots = %d, want 24 (two instrumented jobs × 12)", got)
	}
	snap := merged.Snapshot()
	h, ok := snap.Histograms[core.MetricLatencySeconds]
	if !ok || h.Count != 24 {
		t.Errorf("merged latency histogram = %+v, want 24 observations", h)
	}
	if snap.Counters[core.MetricCGBASolves] == 0 {
		t.Error("merged registry missing CGBA solve counts")
	}
}

// TestSweepMixedPolicyJobs races a bdma Controller job, a bdma Policy
// job, and a baseline Policy job in one sweep: mixing job kinds works,
// and the two bdma jobs — identical configuration through either
// factory — agree bit-for-bit.
func TestSweepMixedPolicyJobs(t *testing.T) {
	src := func() (trace.Source, error) {
		_, gen := buildFixture(t, 6, 9)
		return gen, nil
	}
	cfg := Config{Slots: 12, Warmup: 2}
	jobs := []Job{
		{
			Name: "bdma-controller",
			Controller: func() (*core.Controller, error) {
				sys, _ := buildFixture(t, 6, 9)
				return core.NewBDMAController(sys, 50, 1, 0, 1)
			},
			Source: src, Config: cfg,
		},
		{
			Name: "bdma-policy",
			Policy: func() (policy.Policy, error) {
				sys, _ := buildFixture(t, 6, 9)
				return policy.New(policy.BDMA, sys, policy.Config{V: 50, Rounds: 1, Seed: 1})
			},
			Source: src, Config: cfg,
		},
		{
			Name: "greedy-energy",
			Policy: func() (policy.Policy, error) {
				sys, _ := buildFixture(t, 6, 9)
				return policy.New(policy.GreedyEnergy, sys, policy.Config{V: 50, Seed: 1})
			},
			Source: src, Config: cfg,
		},
	}
	results, err := Sweep(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Metrics.Policy != "bdma" || results[2].Metrics.Policy != "greedy-energy" {
		t.Errorf("policy labels %q/%q", results[0].Metrics.Policy, results[2].Metrics.Policy)
	}
	a, b := results[0].Metrics, results[1].Metrics
	for i := range a.Latency {
		if a.Latency[i] != b.Latency[i] || a.Backlog[i] != b.Backlog[i] {
			t.Fatalf("slot %d: bdma job diverged across factories", i)
		}
	}
}

// TestSweepJobFactoryValidation: a job with both factories, with
// neither, or whose policy factory returns nil fails cleanly.
func TestSweepJobFactoryValidation(t *testing.T) {
	src := func() (trace.Source, error) {
		_, gen := buildFixture(t, 6, 9)
		return gen, nil
	}
	cases := map[string]Job{
		"both": {
			Name: "both",
			Controller: func() (*core.Controller, error) {
				sys, _ := buildFixture(t, 6, 9)
				return core.NewBDMAController(sys, 50, 1, 0, 1)
			},
			Policy: func() (policy.Policy, error) {
				sys, _ := buildFixture(t, 6, 9)
				return policy.New(policy.BDMA, sys, policy.Config{V: 50, Seed: 1})
			},
			Source: src, Config: Config{Slots: 2},
		},
		"neither": {Name: "neither", Source: src, Config: Config{Slots: 2}},
		"nil policy": {
			Name:   "nil policy",
			Policy: func() (policy.Policy, error) { return nil, nil },
			Source: src, Config: Config{Slots: 2},
		},
	}
	for name, job := range cases {
		if _, err := Sweep([]Job{job}, 1); err == nil {
			t.Errorf("%s: sweep accepted the invalid job", name)
		}
	}
}
