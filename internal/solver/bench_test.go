package solver

import (
	"testing"

	"eotora/internal/rng"
)

func BenchmarkMinimize1D(b *testing.B) {
	f := func(x float64) float64 { return (x - 2.345) * (x - 2.345) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Minimize1D(f, 0, 10, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimizeConvexGrad(b *testing.B) {
	grad := func(x float64) float64 { return 2 * (x - 2.345) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinimizeConvexGrad(grad, 0, 10, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoordinateDescent(b *testing.B) {
	f := func(v []float64) float64 {
		s := 0.0
		for i, x := range v {
			d := x - float64(i)
			s += d * d
		}
		return s
	}
	lo := make([]float64, 16)
	hi := make([]float64, 16)
	for i := range hi {
		lo[i] = -20
		hi[i] = 20
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CoordinateDescent(f, lo, hi, 8, 1e-10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBranchAndBound(b *testing.B) {
	src := rng.New(1)
	q := randomQCAP(src, 10, 4, 6)
	inc, incCost, err := Greedy(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BranchAndBound(q, BnBConfig{Incumbent: inc, IncumbentCost: incCost}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	src := rng.New(2)
	q := randomQCAP(src, 50, 8, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Greedy(q); err != nil {
			b.Fatal(err)
		}
	}
}
