package solver

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Assignment is a choice of one option per item.
type Assignment []int

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// Problem is a sequential assignment problem solvable by branch-and-bound:
// items 0..Items()−1 each pick one option; the engine explores partial
// assignments depth-first in item order.
//
// Implementations carry mutable search state: Assign and Unassign push and
// pop one item's choice, and Cost/LowerBound read the current partial
// assignment. LowerBound must be admissible: no completion of the current
// partial assignment may cost less than Cost() + LowerBound().
type Problem interface {
	// Items returns the number of items to assign.
	Items() int
	// OptionCount returns how many options the given item has.
	OptionCount(item int) int
	// Assign applies option to item (item's previous state is unassigned).
	Assign(item, option int)
	// Unassign reverts the most recent Assign of this item.
	Unassign(item, option int)
	// Cost returns the objective contribution of the currently assigned
	// items.
	Cost() float64
	// LowerBound returns an admissible lower bound on the *additional*
	// cost of assigning all remaining items, given items 0..assigned−1
	// are already assigned.
	LowerBound(assigned int) float64
}

// BnBConfig bounds a branch-and-bound run.
type BnBConfig struct {
	// MaxNodes caps the number of explored nodes; 0 means unlimited.
	MaxNodes int
	// TimeLimit caps wall-clock time; 0 means unlimited.
	TimeLimit time.Duration
	// Incumbent, if non-nil, seeds the search with a known feasible
	// assignment and its cost; a good incumbent (e.g. from CGBA) prunes
	// aggressively, matching how warm starts are used with MIP solvers.
	Incumbent Assignment
	// IncumbentCost is the objective of Incumbent; required when
	// Incumbent is set.
	IncumbentCost float64
}

// BnBResult reports the outcome of a branch-and-bound run.
type BnBResult struct {
	// Best is the best complete assignment found.
	Best Assignment
	// Cost is the objective of Best.
	Cost float64
	// Bound is a global lower bound on the optimum. When the search
	// completes, Bound == Cost.
	Bound float64
	// Optimal is true when the search space was exhausted (the result is
	// provably optimal), false when a node or time budget stopped it.
	Optimal bool
	// Nodes is the number of explored search nodes.
	Nodes int
}

// Gap returns the relative optimality gap (Cost − Bound)/Bound, or zero
// when proven optimal.
func (r BnBResult) Gap() float64 {
	if r.Optimal || r.Bound <= 0 {
		return 0
	}
	return (r.Cost - r.Bound) / r.Bound
}

// ErrNoFeasible is returned when an item has no options.
var ErrNoFeasible = errors.New("solver: item with no options")

// BranchAndBound performs depth-first branch-and-bound over the problem.
// At each node the children (options of the next item) are explored in
// ascending order of their immediate cost increase, which keeps good
// incumbents early and pruning effective — the same child-ordering
// heuristic MIP solvers apply to binary assignment structures.
func BranchAndBound(p Problem, cfg BnBConfig) (BnBResult, error) {
	n := p.Items()
	res := BnBResult{Cost: math.Inf(1)}
	if n == 0 {
		res.Best = Assignment{}
		res.Cost = p.Cost()
		res.Bound = res.Cost
		res.Optimal = true
		return res, nil
	}
	for i := 0; i < n; i++ {
		if p.OptionCount(i) == 0 {
			return res, fmt.Errorf("%w: item %d", ErrNoFeasible, i)
		}
	}
	if cfg.Incumbent != nil {
		if len(cfg.Incumbent) != n {
			return res, fmt.Errorf("solver: incumbent has %d items, want %d", len(cfg.Incumbent), n)
		}
		res.Best = cfg.Incumbent.Clone()
		res.Cost = cfg.IncumbentCost
	}

	var deadline time.Time
	if cfg.TimeLimit > 0 {
		deadline = time.Now().Add(cfg.TimeLimit)
	}
	current := make(Assignment, n)
	truncated := false
	// prunedBound tracks the smallest lower bound among pruned-by-budget
	// subtrees so the final Bound stays valid even when truncated.
	prunedBound := math.Inf(1)

	var dfs func(item int)
	dfs = func(item int) {
		if truncated {
			return
		}
		res.Nodes++
		if cfg.MaxNodes > 0 && res.Nodes > cfg.MaxNodes {
			truncated = true
			return
		}
		if cfg.TimeLimit > 0 && res.Nodes%256 == 0 && time.Now().After(deadline) {
			truncated = true
			return
		}
		if item == n {
			cost := p.Cost()
			if cost < res.Cost {
				res.Cost = cost
				res.Best = current.Clone()
			}
			return
		}
		// Order children by immediate cost increase.
		base := p.Cost()
		opts := p.OptionCount(item)
		type child struct {
			option int
			delta  float64
		}
		children := make([]child, 0, opts)
		for o := 0; o < opts; o++ {
			p.Assign(item, o)
			children = append(children, child{option: o, delta: p.Cost() - base})
			p.Unassign(item, o)
		}
		// Insertion sort: opts is small (≤ K·N) and mostly ordered.
		for i := 1; i < len(children); i++ {
			for j := i; j > 0 && children[j].delta < children[j-1].delta; j-- {
				children[j], children[j-1] = children[j-1], children[j]
			}
		}
		for _, ch := range children {
			p.Assign(item, ch.option)
			lb := p.Cost() + p.LowerBound(item+1)
			if lb < res.Cost {
				current[item] = ch.option
				dfs(item + 1)
			} else if truncated && lb < prunedBound {
				prunedBound = lb
			}
			p.Unassign(item, ch.option)
			if truncated {
				// Everything not yet explored may hide the optimum; the
				// root bound below accounts for it.
				if lb < prunedBound {
					prunedBound = lb
				}
				return
			}
		}
	}
	dfs(0)

	if res.Best == nil {
		return res, errors.New("solver: no feasible assignment found")
	}
	if truncated {
		rootBound := p.LowerBound(0)
		res.Bound = math.Min(res.Cost, math.Max(rootBound, 0))
		if prunedBound < res.Bound {
			res.Bound = prunedBound
		}
		res.Optimal = false
	} else {
		res.Bound = res.Cost
		res.Optimal = true
	}
	return res, nil
}

// Exhaustive enumerates every complete assignment and returns the optimum.
// It is exponential and intended for verifying BranchAndBound on small
// instances.
func Exhaustive(p Problem) (BnBResult, error) {
	n := p.Items()
	res := BnBResult{Cost: math.Inf(1)}
	for i := 0; i < n; i++ {
		if p.OptionCount(i) == 0 {
			return res, fmt.Errorf("%w: item %d", ErrNoFeasible, i)
		}
	}
	current := make(Assignment, n)
	var rec func(item int)
	rec = func(item int) {
		if item == n {
			res.Nodes++
			if cost := p.Cost(); cost < res.Cost {
				res.Cost = cost
				res.Best = current.Clone()
			}
			return
		}
		for o := 0; o < p.OptionCount(item); o++ {
			p.Assign(item, o)
			current[item] = o
			rec(item + 1)
			p.Unassign(item, o)
		}
	}
	rec(0)
	if res.Best == nil {
		// n == 0: the empty assignment is the optimum.
		res.Best = Assignment{}
		res.Cost = p.Cost()
	}
	res.Bound = res.Cost
	res.Optimal = true
	return res, nil
}

// Greedy assigns items in order, each picking the option with the smallest
// immediate cost increase. It provides a fast incumbent for
// BranchAndBound.
func Greedy(p Problem) (Assignment, float64, error) {
	n := p.Items()
	out := make(Assignment, n)
	for i := 0; i < n; i++ {
		opts := p.OptionCount(i)
		if opts == 0 {
			return nil, 0, fmt.Errorf("%w: item %d", ErrNoFeasible, i)
		}
		best, bestCost := -1, math.Inf(1)
		for o := 0; o < opts; o++ {
			p.Assign(i, o)
			if c := p.Cost(); c < bestCost {
				best, bestCost = o, c
			}
			p.Unassign(i, o)
		}
		p.Assign(i, best)
		out[i] = best
	}
	cost := p.Cost()
	// Restore the problem to its unassigned state.
	for i := n - 1; i >= 0; i-- {
		p.Unassign(i, out[i])
	}
	return out, cost, nil
}
