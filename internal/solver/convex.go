// Package solver is the numerical-optimization substrate of the EOTORA
// reproduction. The paper solves its continuous subproblem P2-B with the
// CVX convex-programming toolbox and its integer subproblem P2-A's optimal
// baseline with the Gurobi branch-and-bound MIP solver; neither is
// available to a stdlib-only Go library, so this package provides
// guaranteed 1-D convex minimization (P2-B is separable into per-server
// 1-D problems) and a best-first branch-and-bound engine with admissible
// lower bounds (the optimal baseline of Figures 4 and 5).
package solver

import (
	"errors"
	"math"
)

// invPhi is 1/φ, the golden-section step ratio.
var invPhi = (math.Sqrt(5) - 1) / 2

// ErrBadInterval is returned when a minimization interval is empty or
// inverted.
var ErrBadInterval = errors.New("solver: invalid interval")

// Minimize1D minimizes a unimodal (in particular, convex) function on
// [lo, hi] by golden-section search, stopping when the bracket is below
// tol or after maxIter shrink steps. It returns the minimizer and the
// function value there. A non-positive tol defaults to 1e-9·(hi−lo).
func Minimize1D(f func(float64) float64, lo, hi, tol float64) (x, fx float64, err error) {
	x, fx, _, err = Minimize1DSteps(f, lo, hi, tol)
	return x, fx, err
}

// Minimize1DSteps is Minimize1D, additionally reporting the number of
// bracket-shrink steps performed — the per-solve work metric the
// observability layer records for P2-B (each step costs one function
// evaluation).
func Minimize1DSteps(f func(float64) float64, lo, hi, tol float64) (x, fx float64, steps int, err error) {
	if hi < lo || math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, 0, 0, ErrBadInterval
	}
	if hi == lo {
		return lo, f(lo), 0, nil
	}
	if tol <= 0 {
		tol = 1e-9 * (hi - lo)
	}
	const maxIter = 200
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for ; steps < maxIter && b-a > tol; steps++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x = (a + b) / 2
	fx = f(x)
	// The endpoints can win when the minimizer is on the boundary; check
	// them explicitly so boundary optima are exact.
	if flo := f(lo); flo < fx {
		x, fx = lo, flo
	}
	if fhi := f(hi); fhi < fx {
		x, fx = hi, fhi
	}
	return x, fx, steps, nil
}

// MinimizeConvexGrad minimizes a differentiable convex function on
// [lo, hi] by bisection on its derivative. It is used to cross-validate
// the golden-section solver in tests and as a faster alternative when a
// derivative is cheap.
func MinimizeConvexGrad(grad func(float64) float64, lo, hi, tol float64) (float64, error) {
	if hi < lo || math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, ErrBadInterval
	}
	if tol <= 0 {
		tol = 1e-12 * math.Max(1, hi-lo)
	}
	if grad(lo) >= 0 {
		return lo, nil // increasing everywhere: boundary minimum
	}
	if grad(hi) <= 0 {
		return hi, nil // decreasing everywhere: boundary minimum
	}
	a, b := lo, hi
	const maxIter = 200
	for i := 0; i < maxIter && b-a > tol; i++ {
		mid := (a + b) / 2
		if grad(mid) < 0 {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2, nil
}

// CoordinateDescent minimizes f(x) over a box by cyclically applying
// Minimize1D to each coordinate until the objective improvement over a
// full sweep drops below tol or maxSweeps is reached. For separable
// convex objectives one sweep is exact; for coupled convex objectives it
// converges to the optimum. It is the joint-P2-B solver used by the
// ablation bench.
func CoordinateDescent(f func([]float64) float64, lo, hi []float64, maxSweeps int, tol float64) ([]float64, float64, error) {
	n := len(lo)
	if len(hi) != n {
		return nil, 0, errors.New("solver: box bound length mismatch")
	}
	if n == 0 {
		return nil, f(nil), nil
	}
	for i := range lo {
		if hi[i] < lo[i] {
			return nil, 0, ErrBadInterval
		}
	}
	if maxSweeps <= 0 {
		maxSweeps = 32
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = (lo[i] + hi[i]) / 2
	}
	cur := f(x)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		prev := cur
		for i := 0; i < n; i++ {
			xi := x[i]
			coord := func(v float64) float64 {
				x[i] = v
				defer func() { x[i] = xi }()
				return f(x)
			}
			best, _, err := Minimize1D(coord, lo[i], hi[i], 0)
			if err != nil {
				return nil, 0, err
			}
			x[i] = best
		}
		cur = f(x)
		if prev-cur <= tol*(math.Abs(prev)+1) {
			break
		}
	}
	return x, cur, nil
}
