package solver

import "time"

// Deadline is a cooperative per-solve budget shared by the layers of a
// slot solve (BDMA rounds, CGBA/MCBA iterations, P2-B calls). It supports
// two independent budgets, whichever exhausts first wins:
//
//   - a timed budget (Start with budget > 0): the solve expires when
//     wall-clock time runs out;
//   - a counted checkpoint budget (Start with checks > 0): the solve
//     expires after the given number of Expired checkpoints, a
//     deterministic, machine-independent alternative for reproducible
//     degraded runs (identical at every pool size, because the
//     checkpoint sequence is part of the bit-identical solve contract).
//
// A nil *Deadline never expires, so unconditional Expired checks cost a
// nil test on the undeadlined path. Deadlines are single-goroutine state:
// exactly one solve may poll a Deadline at a time (the parallel slot
// solve drives pool workers from inside a single solver call, so this
// holds throughout the stack).
type Deadline struct {
	expireAt time.Time
	checks   int
	timed    bool
	counted  bool
	expired  bool
}

// Start arms the deadline with a wall-clock budget from now and/or a
// checkpoint budget. Non-positive budgets disarm their dimension; calling
// with both non-positive fully disarms the deadline. Any sticky expiry
// from a previous solve is cleared.
func (d *Deadline) Start(budget time.Duration, checks int) {
	*d = Deadline{}
	if budget > 0 {
		d.timed = true
		d.expireAt = time.Now().Add(budget)
	}
	if checks > 0 {
		d.counted = true
		d.checks = checks
	}
}

// Consume deducts dt from the timed budget — the hook fault injection
// uses to model a solver stall without sleeping. It has no effect on the
// checkpoint budget, on an unarmed deadline, or on a nil receiver.
func (d *Deadline) Consume(dt time.Duration) {
	if d == nil || !d.timed || dt <= 0 {
		return
	}
	d.expireAt = d.expireAt.Add(-dt)
}

// Expire forces the deadline into the expired state immediately. A no-op
// on a nil or unarmed receiver.
func (d *Deadline) Expire() {
	if d == nil || !(d.timed || d.counted) {
		return
	}
	d.expired = true
}

// Active reports whether the deadline is armed (nil-safe).
func (d *Deadline) Active() bool {
	return d != nil && (d.timed || d.counted)
}

// ExpireTime returns the wall-clock expiry instant and whether a timed
// budget is armed. Unlike Expired it mutates nothing — no checkpoint is
// consumed and expiry does not stick — so the snapshot may be compared
// against the clock from concurrent shard workers while the owning
// goroutine keeps sole use of the stateful polls. Nil-safe.
func (d *Deadline) ExpireTime() (time.Time, bool) {
	if d == nil || !d.timed {
		return time.Time{}, false
	}
	return d.expireAt, true
}

// Expired is the per-checkpoint poll: it reports whether either budget is
// exhausted, consuming one checkpoint from the counted budget when armed.
// Expiry is sticky until the next Start. Nil or unarmed deadlines never
// expire.
func (d *Deadline) Expired() bool {
	if d == nil || d.expired {
		return d != nil && d.expired
	}
	if d.counted {
		if d.checks == 0 {
			d.expired = true
			return true
		}
		d.checks--
	}
	if d.timed && !time.Now().Before(d.expireAt) {
		d.expired = true
	}
	return d.expired
}
