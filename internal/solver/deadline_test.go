package solver

import (
	"testing"
	"time"
)

func TestNilDeadlineNeverExpires(t *testing.T) {
	var d *Deadline
	for i := 0; i < 10; i++ {
		if d.Expired() {
			t.Fatal("nil deadline expired")
		}
	}
	if d.Active() {
		t.Fatal("nil deadline active")
	}
	d.Consume(time.Hour) // must not panic
	d.Expire()
}

func TestUnarmedDeadlineNeverExpires(t *testing.T) {
	var d Deadline
	for i := 0; i < 10; i++ {
		if d.Expired() {
			t.Fatal("unarmed deadline expired")
		}
	}
	d.Start(0, 0)
	if d.Active() || d.Expired() {
		t.Fatal("Start(0, 0) armed the deadline")
	}
	d.Expire()
	if d.Expired() {
		t.Fatal("Expire armed an unarmed deadline")
	}
}

func TestTimedDeadline(t *testing.T) {
	var d Deadline
	d.Start(time.Hour, 0)
	if !d.Active() {
		t.Fatal("not active after Start")
	}
	if d.Expired() {
		t.Fatal("expired immediately with an hour budget")
	}
	d.Consume(2 * time.Hour)
	if !d.Expired() {
		t.Fatal("not expired after consuming past the budget")
	}
	if !d.Expired() {
		t.Fatal("expiry not sticky")
	}
	d.Start(time.Hour, 0)
	if d.Expired() {
		t.Fatal("Start did not clear the sticky expiry")
	}
}

func TestCountedDeadline(t *testing.T) {
	var d Deadline
	const checks = 5
	d.Start(0, checks)
	for i := 0; i < checks; i++ {
		if d.Expired() {
			t.Fatalf("expired at checkpoint %d of %d", i, checks)
		}
	}
	if !d.Expired() {
		t.Fatalf("not expired after %d checkpoints", checks+1)
	}
}

func TestForcedExpire(t *testing.T) {
	var d Deadline
	d.Start(time.Hour, 0)
	d.Expire()
	if !d.Expired() {
		t.Fatal("Expire did not take effect")
	}
}

func TestConsumeIgnoresCountedBudget(t *testing.T) {
	var d Deadline
	d.Start(0, 3)
	d.Consume(time.Hour)
	if d.Expired() {
		t.Fatal("Consume affected a purely counted deadline")
	}
}
