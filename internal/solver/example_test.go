package solver_test

import (
	"fmt"
	"log"

	"eotora/internal/solver"
)

// ExampleMinimize1D minimizes a convex frequency/energy tradeoff like the
// per-server P2-B subproblem: latency falls in ω, energy rises.
func ExampleMinimize1D() {
	objective := func(w float64) float64 {
		return 10/w + 0.5*w*w // V·A/ω + Q·p·g(ω)
	}
	w, fw, err := solver.Minimize1D(objective, 1, 4, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ω* = %.3f, objective %.3f\n", w, fw)
	// Output:
	// ω* = 2.154, objective 6.962
}
